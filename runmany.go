package gmp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"gmp/internal/runner"
	"gmp/internal/stats"
)

// MetricSummary aggregates one metric across repeated runs: mean,
// sample standard deviation, Student-t 95% confidence half-width
// (interval = Mean ± CI95), and extremes.
type MetricSummary = stats.Summary

// RunManyOptions configures a RunMany batch.
type RunManyOptions struct {
	// Workers is the number of simulations executed concurrently. Zero
	// means GOMAXPROCS. The worker count never affects results — only
	// wall-clock time. Every simulation is single-threaded; parallelism
	// is across independent runs.
	Workers int
	// Timeout bounds each run's wall-clock execution (0 = unbounded).
	// A run that overruns fails with context.DeadlineExceeded. Timeouts
	// are inherently load-dependent: a batch that completes on an idle
	// machine may time out on a loaded one, so leave this zero when
	// byte-identical reruns matter more than bounded latency.
	Timeout time.Duration
	// BaseSeed seeds the deterministic per-run derivation: a config
	// with Seed == 0 at index i runs with splitmix64(BaseSeed, i)
	// (see internal/runner.DeriveSeed). Zero means base seed 1.
	// Configs with an explicit Seed keep it.
	BaseSeed int64
	// KeepGoing reports all per-run errors at the end instead of
	// returning after the batch with the first one. Regardless of this
	// flag every run is attempted and successful results are returned.
	KeepGoing bool
	// OnResult, when non-nil, is called once per successful run as it
	// completes, with the run's config index and its Result, before
	// RunMany returns. Calls happen on worker goroutines in completion
	// order (not index order) and may be concurrent with each other; the
	// callback must synchronize its own state. Failed runs produce no
	// callback. Services streaming per-run progress (gmpd's telemetry
	// endpoint) hang off this hook; it has no effect on the returned
	// slice or on determinism.
	OnResult func(index int, res *Result)
}

// RunMany executes the configurations across a worker pool and returns
// one Result per config, in config order. It is the batch counterpart
// of Run for seed sweeps and parameter studies.
//
// Determinism: results are byte-identical to calling Run serially on
// the same (seed-resolved) configs, regardless of Workers and of the
// order in which runs happen to finish. Seeds for configs that leave
// Seed zero are derived from BaseSeed and the config's index only.
//
// Errors: a run that fails (invalid config, panic, timeout) yields a
// nil entry in the returned slice; the error describes the first
// failure (all of them with KeepGoing). The slice is returned even on
// error so callers can use the successful runs.
func RunMany(ctx context.Context, cfgs []Config, opts RunManyOptions) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	base := opts.BaseSeed
	if base == 0 {
		base = 1
	}
	jobs := make([]runner.Job[*Result], len(cfgs))
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		if cfg.Seed == 0 {
			cfg.Seed = runner.DeriveSeed(base, i)
		}
		jobs[i] = func(ctx context.Context) (*Result, error) {
			res, err := RunContext(ctx, cfg)
			if err == nil && opts.OnResult != nil {
				opts.OnResult(i, res)
			}
			return res, err
		}
	}
	raw, ctxErr := runner.Map(ctx, jobs, runner.Options{
		Workers: opts.Workers,
		Timeout: opts.Timeout,
	})

	results := make([]*Result, len(cfgs))
	var errs []error
	for i, r := range raw {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("run %d: %w", i, r.Err))
			continue
		}
		results[i] = r.Value
	}
	switch {
	case ctxErr != nil:
		return results, fmt.Errorf("gmp: batch cancelled: %w", ctxErr)
	case len(errs) == 0:
		return results, nil
	case opts.KeepGoing:
		return results, fmt.Errorf("gmp: %d of %d runs failed: %w", len(errs), len(cfgs), errors.Join(errs...))
	default:
		return results, fmt.Errorf("gmp: %d of %d runs failed; first: %w", len(errs), len(cfgs), errs[0])
	}
}

// SeedSweep returns n copies of cfg with Seed set to 1..n — the
// conventional replication set used by the paper-table tools. Feed the
// result to RunMany (the explicit seeds make BaseSeed irrelevant, so
// serial and parallel executions agree with the historical serial
// sweep output).
func SeedSweep(cfg Config, n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = int64(i + 1)
	}
	return cfgs
}

// SweepSummary holds cross-seed statistics for the paper's evaluation
// metrics over a batch of runs of one scenario.
type SweepSummary struct {
	// Runs is the number of (non-nil) results aggregated.
	Runs int
	// Imm, Ieq and U summarize the §7.2 fairness indices and the
	// effective network throughput across runs.
	Imm MetricSummary
	Ieq MetricSummary
	U   MetricSummary
	// MinRate summarizes each run's smallest flow rate (the quantity
	// maxmin allocation raises).
	MinRate MetricSummary
	// ControlOverhead summarizes the control-airtime fraction
	// (meaningful under Config.InBandControl only).
	ControlOverhead MetricSummary
	// FlowRates and FlowNormRates summarize each flow's rate and
	// weight-normalized rate across runs, indexed like Result.Flows.
	FlowRates     []MetricSummary
	FlowNormRates []MetricSummary
}

// Summarize aggregates a batch of results (for example the output of
// RunMany) into cross-seed statistics. Nil results — failed runs — are
// skipped. All aggregated results must describe the same flow set;
// mixing scenarios with different flow counts panics.
func Summarize(results []*Result) SweepSummary {
	var (
		imm, ieq, u, minRate, ctrl []float64
		perFlow, perNorm           [][]float64
	)
	for _, res := range results {
		if res == nil {
			continue
		}
		if perFlow == nil {
			perFlow = make([][]float64, len(res.Flows))
			perNorm = make([][]float64, len(res.Flows))
		}
		if len(res.Flows) != len(perFlow) {
			panic(fmt.Sprintf("gmp: Summarize mixing %d-flow and %d-flow results", len(perFlow), len(res.Flows)))
		}
		imm = append(imm, res.Imm)
		ieq = append(ieq, res.Ieq)
		u = append(u, res.U)
		ctrl = append(ctrl, res.ControlOverhead)
		mr := math.Inf(1)
		for i, f := range res.Flows {
			perFlow[i] = append(perFlow[i], f.Rate)
			perNorm[i] = append(perNorm[i], f.NormRate)
			if f.Rate < mr {
				mr = f.Rate
			}
		}
		if len(res.Flows) == 0 {
			mr = 0
		}
		minRate = append(minRate, mr)
	}
	sum := SweepSummary{
		Runs:            len(imm),
		Imm:             stats.Summarize(imm),
		Ieq:             stats.Summarize(ieq),
		U:               stats.Summarize(u),
		MinRate:         stats.Summarize(minRate),
		ControlOverhead: stats.Summarize(ctrl),
	}
	for i := range perFlow {
		sum.FlowRates = append(sum.FlowRates, stats.Summarize(perFlow[i]))
		sum.FlowNormRates = append(sum.FlowNormRates, stats.Summarize(perNorm[i]))
	}
	return sum
}
