package gmp

// The determinism gate pins the simulator's observable behavior across
// performance work: for a fixed Config the full Result — every flow
// rate, fairness index, trace round, channel counter, and fault-recovery
// field — must stay byte-identical to the committed golden files. Any
// optimization of the hot path (adjacency precomputation, event pooling,
// airtime memoization, ...) must not change a single simulated outcome;
// if it does, this test fails with a diff.
//
// Regenerate the goldens only for intentional behavior changes:
//
//	go test -run TestDeterminismGate -update-golden .

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"gmp/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite determinism-gate golden files")

// gateCases is the pinned workload set: the paper scenarios behind
// Tables 1-4 (Fig2/Fig3/Fig4) under every compared protocol, plus one
// fault-schedule run and two mobility runs (random-waypoint chain,
// group-mobility grid). Durations are shorter than the paper sessions so
// the gate stays fast; determinism does not depend on session length.
func gateCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	t.Helper()
	grid, err := GridScenario(2, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	grid = grid.WithFlows([][3]int{{0, 2, 1}, {3, 5, 1}})
	chain, err := ChainScenario(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	mobGrid, err := GridScenario(3, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	mobGrid = mobGrid.WithFlows([][3]int{{0, 8, 1}, {6, 2, 1}})
	mesh, err := MeshGatewayScenario(3, 3, 3, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	short := func(cfg Config) Config {
		cfg.Duration = 60 * time.Second
		cfg.Warmup = 30 * time.Second
		cfg.Seed = 1
		return cfg
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"fig2_gmp", short(Config{Scenario: Fig2Scenario(), Protocol: ProtocolGMP})},
		{"fig2w_gmp", short(Config{Scenario: Fig2WeightedScenario(), Protocol: ProtocolGMP})},
		{"fig3_80211", short(Config{Scenario: Fig3Scenario(), Protocol: Protocol80211})},
		{"fig3_2pp", short(Config{Scenario: Fig3Scenario(), Protocol: Protocol2PP})},
		{"fig3_gmp", short(Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP})},
		{"fig4_80211", short(Config{Scenario: Fig4Scenario(), Protocol: Protocol80211})},
		{"fig4_2pp", short(Config{Scenario: Fig4Scenario(), Protocol: Protocol2PP})},
		{"fig4_gmp", short(Config{Scenario: Fig4Scenario(), Protocol: ProtocolGMP})},
		{"faults_grid_gmp", short(Config{
			Scenario: grid,
			Protocol: ProtocolGMP,
			Faults: []FaultEvent{
				{At: 30 * time.Second, Kind: FaultNodeDown, Node: 1},
				{At: 40 * time.Second, Kind: FaultNodeUp, Node: 1},
			},
		})},
		{"mob_rwp_chain_gmp", short(Config{
			Scenario: chain,
			Protocol: ProtocolGMP,
			Mobility: &MobilityConfig{
				Model:    MobilityRandomWaypoint,
				Epoch:    2 * time.Second,
				MinSpeed: 1, MaxSpeed: 10,
				MinX: 0, MaxX: 800, MinY: -200, MaxY: 200,
			},
		})},
		{"mob_group_grid_gmp", short(Config{
			Scenario: mobGrid,
			Protocol: ProtocolGMP,
			Mobility: &MobilityConfig{
				Model:    MobilityGroup,
				Epoch:    2 * time.Second,
				MinSpeed: 1, MaxSpeed: 5,
				MinX: 0, MaxX: 400, MinY: 0, MaxY: 400,
				Groups: 3, GroupRadius: 100,
			},
		})},
		{"churn_fig3_gmp", short(Config{
			Scenario: Fig3Scenario(),
			Protocol: ProtocolGMP,
			Churn: &ChurnConfig{
				Process:   ChurnPoisson,
				Rate:      0.2,
				Matrix:    ChurnRandom,
				Admission: &AdmissionParams{MinShare: 50},
			},
		})},
		{"churn_mesh_diurnal_gmp", short(Config{
			Scenario: mesh,
			Protocol: ProtocolGMP,
			Churn: &ChurnConfig{
				Process:          ChurnDiurnal,
				Rate:             0.3,
				DiurnalPeriod:    30 * time.Second,
				DiurnalAmplitude: 0.8,
				Matrix:           ChurnGateway,
				Admission:        &AdmissionParams{MinShare: 50},
			},
		})},
	}
}

func TestDeterminismGate(t *testing.T) {
	for _, tc := range gateCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := dumpResult(res)
			path := filepath.Join("testdata", "determinism", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("result diverged from golden %s:\n%s", path, firstDiff(string(want), got))
			}
		})
	}
}

// TestTelemetryGate extends the determinism gate to the telemetry
// layer: enabling Config.Telemetry must reproduce the telemetry-off
// Result byte-for-byte (the committed goldens above, which exclude the
// Telemetry field), and the recorded telemetry itself must be schema-
// valid and byte-identical across repeated runs.
func TestTelemetryGate(t *testing.T) {
	for _, tc := range gateCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Telemetry = &TelemetryConfig{}
			res1, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res1.Telemetry == nil {
				t.Fatal("telemetry enabled but Result.Telemetry is nil")
			}

			want, err := os.ReadFile(filepath.Join("testdata", "determinism", tc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got := dumpResult(res1); got != string(want) {
				t.Fatalf("telemetry-on result diverged from telemetry-off golden:\n%s",
					firstDiff(string(want), got))
			}

			var j1 bytes.Buffer
			if err := res1.Telemetry.WriteJSONL(&j1); err != nil {
				t.Fatal(err)
			}
			if _, err := obs.ValidateJSONL(bytes.NewReader(j1.Bytes())); err != nil {
				t.Fatalf("telemetry JSONL fails its schema: %v", err)
			}

			res2, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var j2 bytes.Buffer
			if err := res2.Telemetry.WriteJSONL(&j2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Error("telemetry JSONL differs between identical runs")
			}
		})
	}
}

// dumpResult renders every behavior-relevant field of a Result as
// deterministic text. Floats use the shortest round-trip representation,
// so two dumps are equal iff the underlying values are bit-identical.
func dumpResult(res *Result) string {
	var b strings.Builder
	g := func(x float64) string {
		if math.IsInf(x, 1) {
			return "+Inf"
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
	fmt.Fprintf(&b, "scenario %s protocol %s\n", res.Scenario, res.Protocol)
	fmt.Fprintf(&b, "Imm %s Ieq %s U %s\n", g(res.Imm), g(res.Ieq), g(res.U))
	for i, f := range res.Flows {
		fmt.Fprintf(&b, "flow %d src %d dst %d w %s hops %d rate %s norm %s del %d drop %d limit %s ref %s\n",
			i, f.Spec.Src, f.Spec.Dst, g(f.Spec.Weight), f.Hops,
			g(f.Rate), g(f.NormRate), f.Delivered, f.Dropped, g(f.Limit), g(res.Reference[i]))
		reasons := make([]string, 0, len(f.DropsByReason))
		for r, n := range f.DropsByReason {
			reasons = append(reasons, fmt.Sprintf("%v=%d", r, n))
		}
		sort.Strings(reasons)
		if len(reasons) > 0 {
			fmt.Fprintf(&b, "  drops %s\n", strings.Join(reasons, " "))
		}
	}
	for _, tgt := range res.TwoPPTarget {
		fmt.Fprintf(&b, "2pp-target %s\n", g(tgt))
	}
	fmt.Fprintf(&b, "channel tx %d corrupt %d deliver %d loss %d downskip %d ctrl %d ctrlair %d\n",
		res.Channel.Transmissions, res.Channel.Corrupted, res.Channel.Delivered,
		res.Channel.InjectedLosses, res.Channel.DownSkipped,
		res.Channel.ControlFrames, int64(res.Channel.ControlAirtime))
	for i, m := range res.MAC {
		fmt.Fprintf(&b, "mac %d sent %d acked %d recv %d dup %d rts %d retry %d drop %d bcast %d\n",
			i, m.DataSent, m.DataAcked, m.DataReceived, m.Duplicates,
			m.RTSSent, m.Retries, m.Drops, m.Broadcasts)
	}
	for _, r := range res.Trace {
		fmt.Fprintf(&b, "round %d req %d sat %d", int64(r.Time), r.Requests, r.SaturatedVNodes)
		for _, x := range r.Rates {
			fmt.Fprintf(&b, " r=%s", g(x))
		}
		for _, x := range r.Limits {
			fmt.Fprintf(&b, " l=%s", g(x))
		}
		for _, n := range r.DownNodes {
			fmt.Fprintf(&b, " down=%d", n)
		}
		b.WriteByte('\n')
	}
	for _, ev := range res.FaultEvents {
		fmt.Fprintf(&b, "fault %v\n", ev)
	}
	if res.MobilityEpochs > 0 {
		// Gated so the static goldens predating mobility stay
		// byte-identical.
		fmt.Fprintf(&b, "mobility epochs %d\n", res.MobilityEpochs)
	}
	if res.Churn != nil {
		// Gated so the goldens predating churn stay byte-identical.
		c := res.Churn
		fmt.Fprintf(&b, "churn arrivals %d admitted %d rejected %d shed %d stale %d\n",
			c.Arrivals, c.Admitted, c.Rejected, c.Shed, c.StaleLimits)
		for i, d := range c.Decisions {
			fmt.Fprintf(&b, "admit flow %d at %d ok %v reason %q ttfs %d\n",
				d.Flow, int64(d.At), d.Admitted, d.Reason, int64(c.TimeToFairShare[i]))
		}
	}
	fmt.Fprintf(&b, "recovered %v recovery %d\n", res.Recovered, int64(res.RecoveryTime))
	return b.String()
}

// firstDiff returns a readable excerpt around the first differing line.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(no line diff; lengths differ)"
}
