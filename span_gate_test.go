package gmp

// The span gate extends the determinism gate to the causal tracing
// layer: enabling Config.Spans must reproduce the spans-off Result
// byte-for-byte against every committed golden, and the recorded trace
// itself must be schema-valid and byte-identical across repeated runs
// and across serial vs parallel RunMany batches. Content tests pin the
// semantics: critical paths must tile end-to-end latency exactly, and
// on Fig. 3 the chain flow must show MAC-contention wait at a
// bottleneck relay.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gmp/internal/span"
)

func spanJSONL(t *testing.T, tr *SpanTrace) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSpanGate runs every determinism-gate case with spans enabled: the
// Result must match the spans-off golden byte for byte, and the span
// JSONL must validate and reproduce across runs.
func TestSpanGate(t *testing.T) {
	for _, tc := range gateCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Spans = &SpanConfig{}
			res1, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res1.Spans == nil {
				t.Fatal("spans enabled but Result.Spans is nil")
			}

			want, err := os.ReadFile(filepath.Join("testdata", "determinism", tc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got := dumpResult(res1); got != string(want) {
				t.Fatalf("spans-on result diverged from spans-off golden:\n%s",
					firstDiff(string(want), got))
			}

			j1 := spanJSONL(t, res1.Spans)
			if _, err := span.ValidateJSONL(bytes.NewReader(j1)); err != nil {
				t.Fatalf("span JSONL fails its schema: %v", err)
			}

			res2, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, spanJSONL(t, res2.Spans)) {
				t.Error("span JSONL differs between identical runs")
			}
		})
	}
}

// TestSpanRunManySerialVsParallel pins that the span stream is
// independent of RunMany's worker count.
func TestSpanRunManySerialVsParallel(t *testing.T) {
	mk := func() []Config {
		var cfgs []Config
		for _, proto := range []Protocol{Protocol80211, ProtocolGMP} {
			cfgs = append(cfgs, Config{
				Scenario: Fig3Scenario(),
				Protocol: proto,
				Duration: 30 * time.Second,
				Warmup:   15 * time.Second,
				Spans:    &SpanConfig{SampleEvery: 16},
			})
		}
		return cfgs
	}
	serial, err := RunMany(context.Background(), mk(), RunManyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(context.Background(), mk(), RunManyOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !bytes.Equal(spanJSONL(t, serial[i].Spans), spanJSONL(t, parallel[i].Spans)) {
			t.Errorf("run %d: span JSONL differs between serial and parallel batches", i)
		}
	}
}

// TestSpanCriticalPathTiling pins the tiling invariant behind traceq's
// critical paths: for every sampled delivered packet, the hop windows
// tile [created, delivered) with no gaps or overlaps, so the per-hop
// wait+airtime+other breakdown sums exactly to the recorded end-to-end
// latency, and no breakdown component is negative.
func TestSpanCriticalPathTiling(t *testing.T) {
	res, err := Run(Config{
		Scenario: Fig3Scenario(),
		Protocol: ProtocolGMP,
		Duration: 60 * time.Second,
		Warmup:   30 * time.Second,
		Seed:     1,
		Spans:    &SpanConfig{SampleEvery: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := span.CriticalPaths(res.Spans, -1)
	delivered := 0
	for _, p := range paths {
		if p.Outcome != "delivered" {
			continue
		}
		delivered++
		if !p.Exact {
			t.Fatalf("flow %d seq %d: hops do not tile e2e latency: created %v done %v hops %+v",
				p.Flow, p.Seq, p.Created, p.Done, p.Hops)
		}
		var sum time.Duration
		for _, h := range p.Hops {
			if h.Queue < 0 || h.Backoff < 0 || h.Defer < 0 || h.Airtime < 0 || h.Other < 0 {
				t.Fatalf("flow %d seq %d node %d: negative breakdown component: %+v", p.Flow, p.Seq, h.Node, h)
			}
			sum += h.Queue + h.Backoff + h.Defer + h.Airtime + h.Other
		}
		if sum != p.E2E {
			t.Fatalf("flow %d seq %d: breakdown sums to %v, e2e is %v", p.Flow, p.Seq, sum, p.E2E)
		}
	}
	if delivered == 0 {
		t.Fatal("no sampled delivered packets to check")
	}
}

// TestSpanFig3BottleneckAttribution pins the content check from the
// issue: on Fig. 3, the chain flow (0→3, relayed by nodes 1 and 2 under
// hidden-terminal contention) must have a critical path attributing MAC
// contention wait — deferral to a busy neighbor — at a bottleneck relay.
func TestSpanFig3BottleneckAttribution(t *testing.T) {
	res, err := Run(Config{
		Scenario: Fig3Scenario(),
		Protocol: ProtocolGMP,
		Duration: 60 * time.Second,
		Warmup:   30 * time.Second,
		Seed:     1,
		Spans:    &SpanConfig{SampleEvery: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	attributed := false
	for _, p := range span.CriticalPaths(res.Spans, 0) {
		for _, h := range p.Hops {
			if (h.Node == 1 || h.Node == 2) && h.Defer > 0 {
				for peer, d := range h.DeferBy {
					if peer >= 0 && d > 0 {
						attributed = true
					}
				}
			}
		}
	}
	if !attributed {
		t.Fatal("chain flow's critical paths never attribute MAC-contention wait to a bottleneck relay (nodes 1/2)")
	}
}
