package gmp

import (
	"io"

	"gmp/internal/mac"
	"gmp/internal/radio"
	"gmp/internal/scenario"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// LoadScenario reads a scenario from its JSON representation (see the
// format documented in internal/scenario: nodes as [x,y] meter pairs,
// flows with optional weight/rate/size/start/stop).
func LoadScenario(r io.Reader) (Scenario, error) { return scenario.Load(r) }

// SaveScenario writes a scenario as indented JSON, loadable by
// LoadScenario.
func SaveScenario(w io.Writer, s Scenario) error { return s.Save(w) }

// Fig1Scenario returns Figure 1's two-flow topology demonstrating why
// per-destination queueing is necessary (§5.1). Run it under
// ProtocolBackpressureShared vs ProtocolBackpressure to reproduce the
// isolation effect.
func Fig1Scenario() Scenario { return scenario.Fig1() }

// Fig2Scenario returns Figure 2's six-node topology with unit weights
// (Table 1).
func Fig2Scenario() Scenario { return scenario.Fig2([4]float64{1, 1, 1, 1}) }

// Fig2WeightedScenario returns Figure 2's topology with Table 2's weights
// (1, 2, 1, 3).
func Fig2WeightedScenario() Scenario { return scenario.Fig2([4]float64{1, 2, 1, 3}) }

// Fig2CustomScenario returns Figure 2's topology with caller-chosen
// weights for the four flows.
func Fig2CustomScenario(weights [4]float64) Scenario { return scenario.Fig2(weights) }

// Fig3Scenario returns Figure 3's three-link chain (Table 3).
func Fig3Scenario() Scenario { return scenario.Fig3() }

// Fig4Scenario returns Figure 4's four-cell topology (Table 4).
func Fig4Scenario() Scenario { return scenario.Fig4() }

// ChainScenario returns an n-node chain with one end-to-end flow.
func ChainScenario(n int, spacingMeters float64) (Scenario, error) {
	return scenario.Chain(n, spacingMeters)
}

// GridScenario returns a rows×cols grid with no flows; attach flows with
// Scenario.WithFlows.
func GridScenario(rows, cols int, spacingMeters float64) (Scenario, error) {
	return scenario.Grid(rows, cols, spacingMeters)
}

// MeshGatewayScenario returns a grid mesh with k flows converging on a
// gateway node (the §1 motivation workload).
func MeshGatewayScenario(rows, cols, k int, spacingMeters float64, seed int64) (Scenario, error) {
	return scenario.MeshGateway(rows, cols, k, spacingMeters, seed)
}

// CityScenario returns an n-node city-scale mesh at the given street
// pitch with g gateways and k client flows, each routed to its nearest
// gateway — the scaling workload for the spatial-grid topology pipeline.
func CityScenario(n, g, k int, spacingMeters float64, seed int64) (Scenario, error) {
	return scenario.City(n, g, k, spacingMeters, seed)
}

// RandomScenario returns n nodes placed uniformly (re-sampled until
// connected) with k random flows.
func RandomScenario(n, k int, width, height float64, seed int64) (Scenario, error) {
	return scenario.RandomConnected(n, k, width, height, seed)
}

// newStation builds and registers the MAC for one node.
func newStation(id topology.NodeID, sched *sim.Scheduler, medium *radio.Medium, cfg mac.Config, seed int64, client mac.Client) *mac.Station {
	return mac.NewStation(id, sched, medium, cfg, sim.NewRand(seed), client)
}

// mac2Config derives the MAC configuration from the run config.
func mac2Config(cfg Config) mac.Config {
	return mac.Config{UseRTS: !cfg.DisableRTS}
}

// ParallelChainsScenario returns k disjoint chains of n nodes with one
// end-to-end flow each; gap controls whether adjacent chains contend.
func ParallelChainsScenario(k, n int, spacingMeters, gapMeters float64) (Scenario, error) {
	return scenario.ParallelChains(k, n, spacingMeters, gapMeters)
}

// CrossScenario returns two flows crossing at a shared center node.
func CrossScenario(armLen int, spacingMeters float64) (Scenario, error) {
	return scenario.Cross(armLen, spacingMeters)
}

// StarScenario returns k one-hop flows converging on a hub.
func StarScenario(k int, radiusMeters float64) (Scenario, error) {
	return scenario.Star(k, radiusMeters)
}

// VehicularScenario returns n vehicles on a highway chain with a pinned
// roadside unit, moving under random waypoint in a lane-shaped field.
func VehicularScenario(n int, spacingMeters, maxSpeedMPS float64) (Scenario, error) {
	return scenario.Vehicular(n, spacingMeters, maxSpeedMPS)
}

// DroneSwarmScenario returns n drones in cohesive groups around a
// pinned ground station, one telemetry flow per group.
func DroneSwarmScenario(n, groups int, groupRadiusMeters float64) (Scenario, error) {
	return scenario.DroneSwarm(n, groups, groupRadiusMeters)
}

// NamedScenario builds a scenario from the registry by name — the
// lookup behind gmpd's scenario-by-name job submissions. ScenarioNames
// lists the accepted names.
func NamedScenario(name string) (Scenario, error) { return scenario.Named(name) }

// ScenarioNames lists the scenario registry's names in sorted order.
func ScenarioNames() []string { return scenario.Names() }
