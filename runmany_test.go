package gmp

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// shortCfg returns a test-friendly configuration of the given scenario.
func shortCfg(sc Scenario) Config {
	return Config{
		Scenario: sc,
		Protocol: ProtocolGMP,
		Duration: 24 * time.Second,
		Warmup:   12 * time.Second,
	}
}

// assertIdenticalResults fails unless a and b are byte-identical. Both
// reflect.DeepEqual (exact, field by field, including NaN/Inf-free
// float equality) and the printed representation are compared so a
// mismatch reports where the structs diverged.
func assertIdenticalResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if reflect.DeepEqual(a, b) {
		return
	}
	av, bv := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if av == bv {
		t.Fatalf("%s: results differ in a way %%+v does not show (DeepEqual false)", label)
	}
	t.Fatalf("%s: results diverged:\n serial:   %.400s\n parallel: %.400s", label, av, bv)
}

// TestRunManyMatchesSerial is the determinism regression test: the same
// configurations executed serially via Run and concurrently via RunMany
// with 8 workers must produce byte-identical Result structs. A failure
// here means runs share mutable state (a package-level variable, a
// cached slice, a shared rand.Rand) and the parallel runner is corrupting
// experiments.
func TestRunManyMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"Fig2", Fig2Scenario()},
		{"Fig3", Fig3Scenario()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfgs := SeedSweep(shortCfg(tc.sc), 8)
			serial := make([]*Result, len(cfgs))
			for i, cfg := range cfgs {
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = res
			}
			parallel, err := RunMany(context.Background(), cfgs, RunManyOptions{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				assertIdenticalResults(t, fmt.Sprintf("seed %d", cfgs[i].Seed), serial[i], parallel[i])
			}
		})
	}
}

// TestRunManyWorkerCountInvariant asserts the acceptance criterion
// directly: with derived seeds (Seed left zero) and the same base seed,
// Workers: 8 and Workers: 1 produce identical results.
func TestRunManyWorkerCountInvariant(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = cfg // Seed stays 0: derived from BaseSeed and index
	}
	opts := func(w int) RunManyOptions { return RunManyOptions{Workers: w, BaseSeed: 17} }
	one, err := RunMany(context.Background(), cfgs, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunMany(context.Background(), cfgs, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		assertIdenticalResults(t, fmt.Sprintf("index %d", i), one[i], eight[i])
	}

	// The derivation must separate runs: same config, different index,
	// different outcome (else the "sweep" is one run repeated).
	if reflect.DeepEqual(one[0].Rates, one[1].Rates) {
		t.Error("indices 0 and 1 produced identical rates: seed derivation is not separating runs")
	}

	// And a different base seed must change the outcomes.
	other, err := RunMany(context.Background(), cfgs[:2], RunManyOptions{Workers: 2, BaseSeed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(one[0].Rates, other[0].Rates) {
		t.Error("base seeds 17 and 18 produced identical rates (suspicious)")
	}
}

func TestRunManyReportsFailures(t *testing.T) {
	good := shortCfg(Fig3Scenario())
	bad := good
	bad.LossProb = 2 // rejected by validation
	results, err := RunMany(context.Background(), []Config{good, bad, good}, RunManyOptions{Workers: 3})
	if err == nil {
		t.Fatal("invalid config did not fail the batch")
	}
	if !strings.Contains(err.Error(), "run 1") {
		t.Errorf("error does not name the failing run: %v", err)
	}
	if results[0] == nil || results[2] == nil {
		t.Error("healthy runs were dropped alongside the failing one")
	}
	if results[1] != nil {
		t.Error("failed run produced a result")
	}

	// KeepGoing reports every failure, not just the first.
	_, err = RunMany(context.Background(), []Config{bad, good, bad}, RunManyOptions{KeepGoing: true})
	if err == nil || !strings.Contains(err.Error(), "run 0") || !strings.Contains(err.Error(), "run 2") {
		t.Errorf("KeepGoing error missing failures: %v", err)
	}
}

// TestRunManyOnResult checks the per-run completion hook: one call per
// successful run with the matching index and result, none for failed
// runs, and no effect on the returned slice.
func TestRunManyOnResult(t *testing.T) {
	good := shortCfg(Fig3Scenario())
	bad := good
	bad.LossProb = 2 // rejected by validation
	cfgs := []Config{good, bad, good, good}

	var mu sync.Mutex
	seen := make(map[int]*Result)
	results, err := RunMany(context.Background(), cfgs, RunManyOptions{
		Workers:   4,
		KeepGoing: true,
		OnResult: func(i int, res *Result) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[i]; dup {
				t.Errorf("OnResult called twice for run %d", i)
			}
			seen[i] = res
		},
	})
	if err == nil {
		t.Fatal("invalid config did not fail the batch")
	}
	if len(seen) != 3 {
		t.Fatalf("OnResult fired %d times, want 3 (one per successful run)", len(seen))
	}
	if _, ok := seen[1]; ok {
		t.Error("OnResult fired for the failed run")
	}
	for i, res := range seen {
		if results[i] != res {
			t.Errorf("run %d: hook saw a different *Result than the returned slice", i)
		}
	}
}

func TestRunManyTimeout(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Duration = time.Hour // far more simulated time than the timeout allows
	cfg.Warmup = 30 * time.Minute
	results, err := RunMany(context.Background(), []Config{cfg}, RunManyOptions{
		Workers: 1,
		Timeout: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("hour-long run finished within 50ms timeout")
	}
	if !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Errorf("timeout error = %v", err)
	}
	if results[0] != nil {
		t.Error("timed-out run produced a result")
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, shortCfg(Fig3Scenario())); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Seed = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A context with a (generous) deadline enables the cancellation
	// poll; it must not perturb the simulation.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, "poll events", a, b)
}

func TestSeedSweep(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfgs := SeedSweep(cfg, 4)
	if len(cfgs) != 4 {
		t.Fatalf("len = %d", len(cfgs))
	}
	for i, c := range cfgs {
		if c.Seed != int64(i+1) {
			t.Errorf("cfg %d seed = %d", i, c.Seed)
		}
		c.Seed = cfg.Seed
		if !reflect.DeepEqual(c, cfg) {
			t.Errorf("cfg %d mutated beyond the seed", i)
		}
	}
}

func TestSummarizeSweep(t *testing.T) {
	cfgs := SeedSweep(shortCfg(Fig3Scenario()), 4)
	results, err := RunMany(context.Background(), cfgs, RunManyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.Runs != 4 {
		t.Fatalf("runs = %d", sum.Runs)
	}
	if len(sum.FlowRates) != len(Fig3Scenario().Flows) {
		t.Fatalf("flow summaries = %d", len(sum.FlowRates))
	}
	if sum.U.Mean <= 0 || sum.Imm.Mean <= 0 || sum.Imm.Mean > 1 {
		t.Errorf("implausible summary %+v", sum)
	}
	if sum.MinRate.Min > sum.MinRate.Mean || sum.MinRate.Mean > sum.MinRate.Max {
		t.Errorf("min rate summary out of order: %+v", sum.MinRate)
	}
	for i, fr := range sum.FlowRates {
		if fr.N != 4 || fr.Min > fr.Max {
			t.Errorf("flow %d summary %+v", i, fr)
		}
	}

	// Nil results (failed runs) are skipped, not counted.
	sum = Summarize([]*Result{nil, results[0], nil})
	if sum.Runs != 1 || sum.Imm.N != 1 {
		t.Errorf("nil-tolerant summary %+v", sum)
	}
	if empty := Summarize(nil); empty.Runs != 0 {
		t.Errorf("empty summary %+v", empty)
	}
}
