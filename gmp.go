// Package gmp is a from-scratch reproduction of "Achieving Global
// End-to-End Maxmin in Multihop Wireless Networks" (Zhang, Chen, Jian —
// ICDCS 2008): a packet-level IEEE 802.11 DCF simulator plus the paper's
// distributed Global Maxmin Protocol (GMP) and its two evaluation
// baselines (plain 802.11 and the two-phase protocol 2PP of Li,
// ICDCS'05).
//
// The entry point is Run: give it a Scenario (a topology plus a set of
// weighted end-to-end flows — the paper's figures are available from
// Fig1Scenario through Fig4Scenario) and a Protocol, and it simulates the
// network and reports per-flow end-to-end rates, the fairness indices
// I_mm and I_eq, the effective network throughput U, and a centralized
// weighted-maxmin reference allocation for comparison.
//
//	res, err := gmp.Run(gmp.Config{
//		Scenario: gmp.Fig3Scenario(),
//		Protocol: gmp.ProtocolGMP,
//	})
package gmp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gmp/internal/admission"
	"gmp/internal/baseline"
	"gmp/internal/churn"
	"gmp/internal/clique"
	"gmp/internal/core"
	"gmp/internal/dissemination"
	"gmp/internal/faults"
	"gmp/internal/flow"
	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/mac"
	"gmp/internal/maxminref"
	"gmp/internal/measure"
	"gmp/internal/metrics"
	"gmp/internal/mobility"
	"gmp/internal/obs"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/scenario"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
	"gmp/internal/trace"
)

// Re-exported building blocks so users of the library never import
// internal packages directly.
type (
	// Point is a node position in meters.
	Point = geom.Point
	// NodeID identifies a physical node.
	NodeID = topology.NodeID
	// FlowID identifies an end-to-end flow.
	FlowID = packet.FlowID
	// FlowSpec declares one end-to-end flow (source, destination,
	// weight, desired rate, packet size).
	FlowSpec = flow.Spec
	// Scenario couples a topology with a set of flows.
	Scenario = scenario.Scenario
	// RadioConfig carries transmission and carrier-sense ranges.
	RadioConfig = topology.Config
	// Round is one recorded GMP adjustment round (convergence trace).
	Round = core.Round
	// MACStats are per-station 802.11 DCF counters.
	MACStats = mac.Stats
	// TraceEvent is one recorded channel/network event (see
	// Config.EventTrace).
	TraceEvent = trace.Event
	// FaultEvent is one scheduled fault (node churn or loss episode; see
	// internal/faults).
	FaultEvent = faults.Event
	// FaultKind selects a fault event's type.
	FaultKind = faults.Kind
	// MobilityConfig parameterizes node motion during the run (see
	// Config.Mobility and internal/mobility).
	MobilityConfig = mobility.Config
	// MobilityModel selects the motion model.
	MobilityModel = mobility.Model
	// DropReason classifies packet losses.
	DropReason = forwarding.DropReason
	// TelemetryConfig enables the telemetry layer for a run (see
	// Config.Telemetry and internal/obs).
	TelemetryConfig = obs.Config
	// Telemetry is a run's recorded telemetry (Result.Telemetry):
	// per-flow latency histograms, per-node hop/MAC-service histograms,
	// periodic queue/utilization/limit samples, and the GMP
	// condition-state timeline. Export with WriteJSONL/WriteSamplesCSV.
	Telemetry = obs.Telemetry
	// TelemetryCondition names one of the paper's four local conditions
	// in the condition timeline.
	TelemetryCondition = obs.Condition
	// TelemetrySummary compresses one run's telemetry to a single
	// record (Telemetry.Summarize) for per-seed sweep reporting.
	TelemetrySummary = obs.RunSummary
	// TelemetryFlowSummary is one flow's row in a TelemetrySummary.
	TelemetryFlowSummary = obs.FlowSummary
	// SpanConfig enables the causal tracing layer for a run (see
	// Config.Spans and internal/span).
	SpanConfig = span.Config
	// SpanTrace is a run's recorded causal trace (Result.Spans): span
	// trees for sampled packets and §5.3 decision-provenance records.
	// Export with WriteJSONL (schema-validated) or WriteTraceEvent
	// (Chrome trace-event JSON, loadable in Perfetto).
	SpanTrace = span.Trace
	// ChurnConfig parameterizes a flow-churn workload: a deterministic
	// arrival process, heavy-tailed flow sizes, a traffic matrix, and an
	// optional admission-control policy (see Config.Churn and
	// internal/churn).
	ChurnConfig = churn.Config
	// ChurnProcess selects the arrival process (Poisson or diurnal).
	ChurnProcess = churn.Process
	// ChurnMatrix selects the traffic matrix (gateway-oriented or random).
	ChurnMatrix = churn.Matrix
	// AdmissionParams parameterizes distributed admission control and the
	// overload watchdog (see internal/admission).
	AdmissionParams = admission.Params
	// AdmissionReason classifies a refused arrival (zero = admitted).
	AdmissionReason = admission.Reason
)

// Churn arrival processes and traffic matrices, re-exported.
const (
	ChurnPoisson = churn.Poisson
	ChurnDiurnal = churn.Diurnal
	ChurnGateway = churn.Gateway
	ChurnRandom  = churn.Random
)

// Admission refusal reasons, re-exported for AdmissionDecision handling.
const (
	AdmitNoRoute        = admission.NoRoute
	AdmitCliqueOverload = admission.CliqueOverload
	AdmitShed           = admission.Shed
)

// ParseChurnProcess parses an arrival-process name: "poisson" or
// "diurnal".
func ParseChurnProcess(s string) (ChurnProcess, error) { return churn.ParseProcess(s) }

// ParseChurnMatrix parses a traffic-matrix name: "gateway" or "random".
func ParseChurnMatrix(s string) (ChurnMatrix, error) { return churn.ParseMatrix(s) }

// The four local conditions of the telemetry timeline, re-exported.
const (
	CondSource    = obs.CondSource
	CondBuffer    = obs.CondBuffer
	CondBandwidth = obs.CondBandwidth
	CondRateLimit = obs.CondRateLimit
)

// Fault kinds, re-exported for schedule construction.
const (
	FaultNodeDown    = faults.NodeDown
	FaultNodeUp      = faults.NodeUp
	FaultLinkDegrade = faults.LinkDegrade
	FaultLinkRestore = faults.LinkRestore
	FaultNodeDegrade = faults.NodeDegrade
	FaultNodeRestore = faults.NodeRestore
)

// Mobility models, re-exported for MobilityConfig construction.
const (
	MobilityRandomWaypoint = mobility.RandomWaypoint
	MobilityRandomWalk     = mobility.RandomWalk
	MobilityGroup          = mobility.Group
)

// ParseMobilityModel parses a mobility model name: "random-waypoint",
// "random-walk" or "group" ("rwp" and "walk" are accepted shorthands).
func ParseMobilityModel(s string) (MobilityModel, error) { return mobility.ParseModel(s) }

// Drop reasons, re-exported for FlowResult.DropsByReason.
const (
	DropOverflow = forwarding.DropOverflow
	DropTail     = forwarding.DropTail
	DropRetry    = forwarding.DropRetry
	DropNoRoute  = forwarding.DropNoRoute
	DropNodeDown = forwarding.DropNodeDown
)

// Protocol selects the end-to-end bandwidth allocation mechanism.
type Protocol int

// Supported protocols.
const (
	// ProtocolGMP is the paper's distributed Global Maxmin Protocol:
	// per-destination queueing, backpressure, and rate adaptation driven
	// by the four local conditions.
	ProtocolGMP Protocol = iota + 1
	// Protocol80211 is plain IEEE 802.11 DCF: shared FIFO with tail
	// overwrite, no backpressure, no rate control.
	Protocol80211
	// Protocol2PP is the two-phase protocol of ref [11]: per-flow
	// queueing with a precomputed basic-fair-share + short-flow-biased
	// allocation.
	Protocol2PP
	// ProtocolBackpressure is GMP's substrate without rate adaptation:
	// per-destination queues and congestion avoidance only (Fig. 1(c)).
	ProtocolBackpressure
	// ProtocolBackpressureShared is the single-queue variant of
	// ProtocolBackpressure (Fig. 1(b)), kept to reproduce §5.1's
	// motivation for per-destination queueing.
	ProtocolBackpressureShared
	// ProtocolGMPDistributed runs GMP as §6 literally describes: one
	// agent per node acting only on local measurements plus two-hop
	// link state received through in-band broadcasts (which consume
	// airtime and can be lost). ProtocolGMP is the centrally-evaluated
	// variant with identical condition logic and oracle information.
	ProtocolGMPDistributed
)

// String names the protocol as in the paper's tables.
func (p Protocol) String() string {
	switch p {
	case ProtocolGMP:
		return "GMP"
	case Protocol80211:
		return "802.11"
	case Protocol2PP:
		return "2PP"
	case ProtocolBackpressure:
		return "backpressure/per-dest"
	case ProtocolBackpressureShared:
		return "backpressure/shared"
	case ProtocolGMPDistributed:
		return "GMP/distributed"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config parameterizes one simulation run. The zero value of every field
// except Scenario and Protocol is replaced by the paper's defaults (§7).
type Config struct {
	Scenario Scenario
	Protocol Protocol

	// Duration is the simulated session length (default 400 s).
	Duration time.Duration
	// Warmup excludes initial convergence from the reported rates;
	// rates are measured over [Warmup, Duration] (default Duration/2).
	Warmup time.Duration
	// Seed drives every random choice; equal seeds reproduce runs
	// exactly (default 1).
	Seed int64

	// Period is GMP's measurement/adjustment period (default 4 s).
	Period time.Duration
	// Beta is GMP's equality tolerance and step size (default 0.10).
	Beta float64
	// AdditiveIncrease is GMP's upward probe in pkt/s (default 4).
	AdditiveIncrease float64
	// OmegaThreshold is the buffer-saturation threshold (default 0.25).
	OmegaThreshold float64

	// QueueSlots is the per-queue capacity for GMP and 2PP (default 10).
	QueueSlots int
	// SharedQueueSlots is the shared FIFO capacity for plain 802.11
	// (default 300, the paper's node buffer).
	SharedQueueSlots int
	// StaleAfter bounds trust in an unrefreshed "buffer full"
	// advertisement (default 50 ms).
	StaleAfter time.Duration

	// FairAggregation serves shared queues round-robin by packet origin
	// (local source vs each upstream neighbor) instead of FIFO — an
	// extension beyond the paper, in the spirit of its ref [4], that
	// removes the local source's structural advantage at a shared
	// per-destination queue. Applies to the GMP and backpressure
	// protocols.
	FairAggregation bool
	// GeographicRouting replaces shortest-path tables with greedy
	// position-based forwarding (GPSR's greedy mode, the paper's §2.1
	// "implicit [routing table] under geographic routing"). Run fails
	// with an error if greedy forwarding dead-ends anywhere.
	GeographicRouting bool
	// CBRSources switches flow sources from Poisson arrivals (default)
	// to strict constant-bit-rate generation.
	CBRSources bool
	// DisableRTS turns off the RTS/CTS handshake.
	DisableRTS bool
	// LossProb injects uniform frame loss (failure injection; default 0).
	LossProb float64
	// Radio overrides the PHY constants (default radio.DefaultParams
	// adjusted for LossProb).
	Radio *radio.Params
	// EventTrace, when positive, records the most recent N channel
	// events (transmissions, deliveries, collisions, drops) into
	// Result.Events — an ns-2-style debugging trace.
	EventTrace int
	// InBandControl runs the link-state dissemination protocol (§6.2
	// step 2: per-period broadcasts relayed by dominating sets) on the
	// channel itself, so control traffic consumes real airtime. The
	// engine's information is unchanged (see DESIGN.md substitution 2);
	// this option makes the protocol's control cost measurable as
	// Result.ControlOverhead.
	InBandControl bool
	// Faults schedules node churn and loss episodes during the run (see
	// internal/faults). When empty, the scenario's own Faults (loadable
	// from scenario JSON) apply; setting this field overrides them. The
	// engine draws no randomness, so the same schedule with the same
	// seed reproduces the run byte for byte.
	Faults []FaultEvent
	// Mobility moves nodes during the run (see internal/mobility). On
	// every motion epoch the topology's precomputed structures update
	// incrementally from the moved set, the clique decomposition is
	// repaired, in-flight carrier-sense state is re-indexed, and routes
	// are rebuilt (composing with any crashed nodes from Faults). When
	// nil, the scenario's own Mobility (loadable from scenario JSON)
	// applies; setting this field overrides it. Mobility-off runs draw
	// the identical random sequence as before this field existed, so
	// they reproduce byte for byte.
	Mobility *MobilityConfig
	// Churn, when non-nil, overlays a dynamic flow workload on the
	// scenario's static flows: arrivals drawn from a seedable process
	// (Poisson or diurnal) with heavy-tailed sizes, each admitted flow
	// running for size/rate seconds before departing. When Admission is
	// set inside it, every arrival faces the distributed admission test
	// and an overload watchdog sheds the newest flows of persistently
	// overloaded cliques (central GMP only). When nil, the scenario's own
	// Churn (loadable from scenario JSON) applies; setting this field
	// overrides it. Churn-off runs draw the identical random sequence as
	// before this field existed, so they reproduce byte for byte.
	Churn *ChurnConfig
	// Telemetry, when non-nil, enables the telemetry layer: per-packet
	// lifecycle histograms, periodic queue/utilization/limit samples,
	// and the GMP condition-state timeline, surfaced as
	// Result.Telemetry. The recorder only observes — it draws no
	// randomness and mutates no protocol state — so enabling it does
	// not change any other Result field. When nil (the default) every
	// hook is a nil pointer check and the hot paths stay allocation-free.
	Telemetry *TelemetryConfig
	// Spans, when non-nil, enables the causal tracing layer: every
	// sampled packet (deterministic 1-in-k per-flow sampling, seeded
	// from Config.Seed) gets a span tree following it through source,
	// queues, MAC contention, and airtime, and every rate-limit change
	// gets a provenance record naming the condition and clique that
	// triggered it, surfaced as Result.Spans. Like Telemetry, the
	// recorder only observes — it draws no randomness and mutates no
	// protocol state — so enabling it does not change any other Result
	// field. When nil (the default) every hook is a nil pointer check
	// and the hot paths stay allocation-free.
	Spans *SpanConfig
}

// faultSchedule returns the effective fault schedule: Config.Faults
// when set, else the scenario's.
func (c *Config) faultSchedule() []FaultEvent {
	if len(c.Faults) > 0 {
		return c.Faults
	}
	return c.Scenario.Faults
}

// mobilityConfig returns the effective mobility model: Config.Mobility
// when set, else the scenario's (nil when neither is set).
func (c *Config) mobilityConfig() *MobilityConfig {
	if c.Mobility != nil {
		return c.Mobility
	}
	return c.Scenario.Mobility
}

// churnConfig returns the effective churn workload: Config.Churn when
// set, else the scenario's (nil when neither is set).
func (c *Config) churnConfig() *ChurnConfig {
	if c.Churn != nil {
		return c.Churn
	}
	return c.Scenario.Churn
}

func (c *Config) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 400 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Period == 0 {
		c.Period = 4 * time.Second
	}
	if c.Beta == 0 {
		c.Beta = 0.10
	}
	if c.AdditiveIncrease == 0 {
		c.AdditiveIncrease = 4
	}
	if c.OmegaThreshold == 0 {
		c.OmegaThreshold = measure.DefaultOmegaThreshold
	}
	if c.QueueSlots == 0 {
		c.QueueSlots = 10
	}
	if c.SharedQueueSlots == 0 {
		c.SharedQueueSlots = 300
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 50 * time.Millisecond
	}
}

func (c *Config) validate() error {
	if len(c.Scenario.Positions) == 0 {
		return errors.New("gmp: config has no scenario")
	}
	if len(c.Scenario.Flows) == 0 {
		return errors.New("gmp: scenario has no flows")
	}
	if c.Protocol < ProtocolGMP || c.Protocol > ProtocolGMPDistributed {
		return fmt.Errorf("gmp: unknown protocol %d", int(c.Protocol))
	}
	if c.Warmup >= c.Duration {
		return fmt.Errorf("gmp: warmup %v is not before duration %v", c.Warmup, c.Duration)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("gmp: loss probability %v outside [0,1)", c.LossProb)
	}
	if err := faults.ValidateSchedule(c.faultSchedule(), len(c.Scenario.Positions)); err != nil {
		return fmt.Errorf("gmp: fault schedule: %w", err)
	}
	if mob := c.mobilityConfig(); mob != nil {
		if err := mob.Validate(len(c.Scenario.Positions)); err != nil {
			return fmt.Errorf("gmp: %w", err)
		}
	}
	if ch := c.churnConfig(); ch != nil {
		if err := ch.Validate(len(c.Scenario.Positions)); err != nil {
			return fmt.Errorf("gmp: %w", err)
		}
	}
	return nil
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	Spec FlowSpec
	// Rate is the end-to-end delivery rate in pkt/s over the
	// measurement window.
	Rate float64
	// NormRate is Rate divided by the flow's weight (μ(f), §2.1).
	NormRate float64
	// Hops is the routing path length l_f.
	Hops int
	// Delivered and Dropped count packets over the whole session.
	Delivered int64
	Dropped   int64
	// DropsByReason classifies Dropped by cause (overflow, retry limit,
	// no route, node crash, ...), so fault experiments can separate
	// crash losses from congestion losses.
	DropsByReason map[DropReason]int64
	// Limit is the final self-imposed rate limit (+Inf when none).
	Limit float64
}

// Result is the outcome of one simulation run.
type Result struct {
	Scenario string
	Protocol Protocol
	Flows    []FlowResult
	// Rates collects Flows[i].Rate (convenience for the metrics).
	Rates []float64
	// Imm and Ieq are the §7.2 fairness indices; U is the effective
	// network throughput Σ r(f)·l_f.
	Imm float64
	Ieq float64
	U   float64
	// Reference is the centralized weighted water-filling allocation on
	// estimated clique capacities — the maxmin ground truth GMP should
	// approach (shape, not absolute values).
	Reference []float64
	// TwoPPTarget is 2PP's precomputed allocation (Protocol2PP only).
	TwoPPTarget []float64
	// Trace is GMP's adjustment-round history (ProtocolGMP only).
	Trace []Round
	// Channel reports medium-level counters.
	Channel radio.Stats
	// MAC reports per-node DCF counters, indexed by node ID.
	MAC []MACStats
	// Events holds the recorded trace (Config.EventTrace > 0 only),
	// oldest first.
	Events []TraceEvent
	// ControlOverhead is the fraction of the session's airtime consumed
	// by link-state broadcasts (Config.InBandControl only).
	ControlOverhead float64
	// FaultEvents is the applied fault schedule, sorted by time (nil in
	// fault-free runs).
	FaultEvents []FaultEvent
	// MobilityEpochs counts the motion epochs that fired (mobility runs
	// only; zero in static runs).
	MobilityEpochs int
	// RecoveryTime measures re-convergence after the last disturbance —
	// the last fault or the last topology-changing motion epoch,
	// whichever is later: how long after it the trace settled back into
	// a steady allocation (RecoveryReport with DefaultRecoveryTol).
	// Recovered is false when the post-disturbance trace never settled,
	// was too short to judge, or the protocol records no trace.
	RecoveryTime time.Duration
	Recovered    bool
	// Churn reports the dynamic-workload outcome (Config.Churn or the
	// scenario's churn block only; nil in static runs).
	Churn *ChurnOutcome
	// Telemetry holds the run's recorded telemetry (Config.Telemetry
	// non-nil only).
	Telemetry *Telemetry
	// Spans holds the run's causal trace (Config.Spans non-nil only).
	Spans *SpanTrace
}

// AdmissionDecision is one recorded churn admission event: an arrival
// admitted or refused, or an admitted flow shed later by the overload
// watchdog (Admitted false, Reason "shed").
type AdmissionDecision struct {
	Flow     FlowID
	At       time.Duration
	Admitted bool
	// Reason is the refusal class ("no-route", "clique-overload",
	// "shed"); empty when admitted.
	Reason string
}

// ChurnOutcome reports a churn run's workload-level results.
type ChurnOutcome struct {
	// Arrivals counts the scheduled arrivals that fired; Admitted,
	// Rejected and Shed partition their fates (a shed flow counts under
	// both Admitted and Shed).
	Arrivals int
	Admitted int
	Rejected int
	Shed     int
	// StaleLimits counts churn flows that departed still holding a
	// self-imposed rate limit — the teardown bug class this field
	// regression-tests; always 0 when teardown is correct.
	StaleLimits int
	// Decisions is every admission event in simulation order.
	Decisions []AdmissionDecision
	// TimeToFairShare is parallel to Decisions: for each admitted
	// arrival, how long after it the flow's rate first settled into the
	// band it held for the rest of its life (-1 for refused arrivals and
	// whenever the trace is too short to judge). Requires a protocol
	// that records a trace (GMP).
	TimeToFairShare []time.Duration
}

// Run simulates the scenario under the selected protocol and reports the
// resulting allocation. It is deterministic for a given Config.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the simulation checks
// ctx once per simulated second (a no-op event that consumes no
// randomness, so results are byte-identical to Run) and aborts with
// ctx's error when it is cancelled or times out. RunMany uses it to
// enforce per-run timeouts.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gmp: run aborted before start: %w", err)
	}
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	topo, err := cfg.Scenario.Topology()
	if err != nil {
		return nil, fmt.Errorf("gmp: building topology: %w", err)
	}
	// Static runs (no mobility) never mutate the topology, so the
	// shortest-path tables can materialize per-destination rows lazily:
	// only the flow destinations actually routed to pay for a BFS, which
	// is what makes the 10k-node city scenario start in milliseconds.
	// Mobility forces eager builds — a lazy row computed after MoveNodes
	// would see the wrong topology. Geographic tables are always eager:
	// their dead-end detection must run up front to drive the
	// GPSR-fallback error contract.
	lazyRoutes := cfg.mobilityConfig() == nil
	var routes *routing.Table
	if cfg.GeographicRouting {
		routes, err = routing.BuildGeographic(topo)
		if err != nil {
			return nil, fmt.Errorf("gmp: %w", err)
		}
	} else if lazyRoutes {
		routes = routing.BuildLazy(topo)
	} else {
		routes = routing.Build(topo)
	}
	for _, spec := range cfg.Scenario.Flows {
		if !topo.Valid(spec.Src) || !topo.Valid(spec.Dst) {
			return nil, fmt.Errorf("gmp: flow %d endpoints (%d,%d) outside topology", spec.ID, spec.Src, spec.Dst)
		}
		if routes.HopCount(spec.Src, spec.Dst) <= 0 {
			return nil, fmt.Errorf("gmp: flow %d has no route from %d to %d", spec.ID, spec.Src, spec.Dst)
		}
	}

	par := radio.DefaultParams()
	if cfg.Radio != nil {
		par = *cfg.Radio
	}
	par.LossProb = cfg.LossProb

	sched := sim.NewScheduler()
	master := sim.NewRand(cfg.Seed)

	// Churn workload. Its randomness is drawn first and only when churn
	// is enabled, so churn-off runs consume the identical random sequence
	// they always did (the static determinism goldens pin this).
	var ccfg *churn.Config
	var churnFlows []churn.Flow
	if c := cfg.churnConfig(); c != nil {
		cc := c.WithDefaults()
		ccfg = &cc
		churnFlows = churn.Generate(cc, len(cfg.Scenario.Positions), cfg.Duration, sim.NewRand(master.Int63()))
	}
	staticN := len(cfg.Scenario.Flows)
	allFlows := append([]flow.Spec(nil), cfg.Scenario.Flows...)
	for i, cf := range churnFlows {
		allFlows = append(allFlows, flow.Spec{
			ID:          packet.FlowID(staticN + i),
			Src:         cf.Src,
			Dst:         cf.Dst,
			Weight:      cf.Weight,
			DesiredRate: cf.DesiredRate,
			SizeBytes:   cf.SizeBytes,
			Start:       cf.At,
			Stop:        cf.At + cf.Lifetime,
		})
	}

	medium := radio.NewMedium(sched, topo, par, sim.NewRand(master.Int63()))

	fwdCfg, err := forwardingConfig(cfg)
	if err != nil {
		return nil, err
	}

	registry, err := flow.NewRegistry(allFlows)
	if err != nil {
		return nil, fmt.Errorf("gmp: %w", err)
	}

	// Telemetry (see internal/obs). The recorder only observes, and the
	// sampler below draws no randomness and touches no protocol state,
	// so a telemetry-on run reproduces a telemetry-off run exactly.
	var rec *obs.Recorder
	sinkFn := forwarding.SinkFunc(registry.OnDeliver)
	if cfg.Telemetry != nil {
		interval := cfg.Telemetry.SampleInterval
		if interval <= 0 {
			interval = cfg.Period
		}
		rec = obs.NewRecorder(topo, len(allFlows), interval, sched.Now)
		medium.SetRecorder(rec)
		sinkFn = func(p *packet.Packet, from topology.NodeID) {
			rec.Delivered(p.Flow, sched.Now()-p.Created)
			registry.OnDeliver(p, from)
		}
	}

	// Causal tracing (see internal/span). Sampling is a pure function of
	// (Config.Seed, flow, stride) — no randomness is drawn — and the
	// recorder only observes, so a spans-on run reproduces a spans-off
	// run exactly.
	var spanRec *span.Recorder
	if cfg.Spans != nil {
		spanRec = span.NewRecorder(topo.NumNodes(), len(allFlows), cfg.Seed, cfg.Spans.SampleEvery, sched.Now)
		medium.SetSpans(spanRec)
		prevSink := sinkFn
		sinkFn = func(p *packet.Packet, from topology.NodeID) {
			spanRec.Delivered(p)
			prevSink(p, from)
		}
	}

	var ring *trace.Ring
	dropFn := registry.OnDrop
	if cfg.EventTrace > 0 {
		ring = trace.NewRing(cfg.EventTrace)
		medium.SetObserver(ring.Record)
		dropFn = func(p *packet.Packet, reason forwarding.DropReason) {
			ring.Record(trace.Event{
				At:     sched.Now(),
				Kind:   trace.KindDrop,
				Node:   p.Src,
				Peer:   p.Dst,
				Detail: fmt.Sprintf("%s %s", p, reason),
			})
			registry.OnDrop(p, reason)
		}
	}

	nodes := make([]*forwarding.Node, topo.NumNodes())
	stations := make([]*mac.Station, topo.NumNodes())
	macCfg := mac2Config(cfg)
	for _, id := range topo.Nodes() {
		n := forwarding.NewNode(id, sched, fwdCfg, routes, sinkFn, dropFn)
		st := newStation(id, sched, medium, macCfg, master.Int63(), n)
		n.SetMAC(st)
		if rec != nil {
			n.SetRecorder(rec)
			st.SetRecorder(rec)
		}
		if spanRec != nil {
			n.SetSpans(spanRec)
			st.SetSpans(spanRec)
		}
		nodes[id] = n
		stations[id] = st
	}

	for _, spec := range allFlows {
		src := flow.NewSource(spec, sched, nodes[spec.Src], cfg.Period, sim.NewRand(master.Int63()))
		src.SetCBR(cfg.CBRSources)
		if spanRec != nil {
			src.SetSpans(spanRec)
		}
		registry.AttachSource(spec.ID, src)
		// Static flows start immediately; churn flows wait for their
		// arrival's admission decision (StartNow in the admit hook).
		if int(spec.ID) < staticN {
			src.Start()
		}
	}

	var dissAgents []*dissemination.Agent
	if cfg.InBandControl && cfg.Protocol != ProtocolGMPDistributed {
		// The distributed runtime's own dissemination is already
		// in-band; this path covers the other protocols.
		dissAgents = startInBandControl(sched, topo, nodes, stations, cfg.Period, sim.NewRand(master.Int63()))
	}

	// rebuildRoutes repairs the routing tables against the live topology,
	// excluding crashed nodes. Shared by fault-driven and motion-driven
	// route repair (which compose: a motion epoch must keep excluding
	// nodes a fault already crashed). liveRoutes tracks the latest table
	// so churn admission tests arrivals against current reachability.
	liveRoutes := routes
	rebuildRoutes := func(down []bool) *routing.Table {
		var t *routing.Table
		if cfg.GeographicRouting {
			if gt, gerr := routing.BuildGeographicExcluding(topo, down); gerr == nil {
				t = gt
			}
			// A crash or motion opened a greedy void: GPSR-style
			// fallback to shortest-path repair.
		}
		if t == nil {
			if lazyRoutes {
				// Fault/churn repair without mobility: the topology is
				// still immutable, so repaired tables stay lazy too (the
				// down set is copied at build time).
				t = routing.BuildLazyExcluding(topo, down)
			} else {
				t = routing.BuildExcluding(topo, down)
			}
		}
		liveRoutes = t
		return t
	}

	// Fault injection. The engine draws no randomness and registers all
	// events up front, so a run with an empty schedule is byte-identical
	// to one without this block.
	var fengine *faults.Engine
	if events := cfg.faultSchedule(); len(events) > 0 {
		fengine, err = faults.Start(sched, topo.NumNodes(), events, faults.Hooks{
			Medium:   medium,
			Stations: stations,
			Nodes:    nodes,
			Sources:  registry.Sources(),
			Rebuild:  rebuildRoutes,
		})
		if err != nil {
			return nil, fmt.Errorf("gmp: fault schedule: %w", err)
		}
	}

	cliques := clique.Build(topo)
	liveCliques := cliques
	capacity := par.SaturationRate(packetBytes(allFlows), !cfg.DisableRTS)
	refFlows := make([]maxminref.FlowSpec, len(cfg.Scenario.Flows))
	for i, spec := range cfg.Scenario.Flows {
		refFlows[i] = maxminref.FlowSpec{Src: spec.Src, Dst: spec.Dst, Weight: spec.Weight, Demand: spec.DesiredRate}
	}

	var engine *core.Engine
	var dist *core.Distributed
	var twoPPTarget []float64
	switch cfg.Protocol {
	case ProtocolGMPDistributed:
		// Control messaging defaults to the out-of-band bus (reliable,
		// zero airtime, identical two-hop scoping); InBandControl runs
		// it over real 802.11 broadcasts instead — which have no
		// collision recovery and can starve under the very congestion
		// GMP exists to control (see EXPERIMENTS.md).
		dissAgents = make([]*dissemination.Agent, topo.NumNodes())
		if cfg.InBandControl {
			for _, id := range topo.Nodes() {
				dissAgents[id] = dissemination.NewAgent(id, topo, stations[id])
			}
		} else {
			bus := dissemination.NewBus(topo)
			for _, id := range topo.Nodes() {
				dissAgents[id] = bus.NewAgent(id, topo)
			}
		}
		board := measure.NewOccupancyBoard(medium, cfg.Period)
		dist, err = core.StartDistributed(sched, topo, cliques, board, nodes, dissAgents,
			registry, core.Params{
				Period:           cfg.Period,
				Beta:             cfg.Beta,
				OmegaThreshold:   cfg.OmegaThreshold,
				AdditiveIncrease: cfg.AdditiveIncrease,
				HalveGap:         3,
			}, sim.NewRand(master.Int63()))
		if err != nil {
			return nil, fmt.Errorf("gmp: %w", err)
		}
	case ProtocolGMP:
		collector := measure.NewCollector(nodes, medium, cfg.OmegaThreshold)
		engine, err = core.NewEngine(sched, topo, cliques, registry, collector, core.Params{
			Period:           cfg.Period,
			Beta:             cfg.Beta,
			OmegaThreshold:   cfg.OmegaThreshold,
			AdditiveIncrease: cfg.AdditiveIncrease,
			HalveGap:         3,
		})
		if err != nil {
			return nil, fmt.Errorf("gmp: %w", err)
		}
		engine.Start()
	case Protocol2PP:
		twoPPTarget, err = baseline.TwoPPAllocation(refFlows, routes, cliques, baseline.UniformCliqueCapacity(capacity))
		if err != nil {
			return nil, fmt.Errorf("gmp: 2PP allocation: %w", err)
		}
		for i, r := range twoPPTarget {
			registry.Source(packet.FlowID(i)).SetLimit(r)
		}
	}

	if fengine != nil {
		if engine != nil {
			engine.SetFaultProbe(fengine.DownNodes)
		}
		if dist != nil {
			dist.SetFaultProbe(fengine.DownNodes)
		}
	}

	// admCtrl is the churn admission controller (set further below, when
	// churn runs with admission); mobility epochs re-book its clique
	// budgets against the repaired decomposition.
	var admCtrl *admission.Controller

	// Node motion. The engine's seed is drawn only when mobility is on
	// and after every unconditional draw above, so a mobility-off run
	// consumes the identical random sequence it always did (the nine
	// static determinism goldens pin this).
	var mobEngine *mobility.Engine
	var lastTopoChange time.Duration
	if mob := cfg.mobilityConfig(); mob != nil {
		onEpoch := func(moved []topology.NodeID, newPos []geom.Point) {
			// In-flight transmissions hold carrier-sense counts against
			// the old neighbor lists: unwind them before mutating the
			// topology in place, re-key the per-link accounting after.
			medium.BeginTopologyChange()
			diff, merr := topo.MoveNodes(moved, newPos)
			if merr != nil {
				panic(fmt.Sprintf("gmp: mobility epoch at %v: %v", sched.Now(), merr))
			}
			medium.EndTopologyChange(diff.OldLinks)
			if rec != nil {
				rec.OnTopologyChange(diff.OldLinks)
			}
			if diff.Changed() {
				lastTopoChange = sched.Now()
				liveCliques = clique.Update(topo, liveCliques, diff.Moved)
				if engine != nil {
					engine.SetCliques(liveCliques)
				}
				if dist != nil {
					dist.RefreshCliques(liveCliques)
				}
				if admCtrl != nil {
					admCtrl.SetCliques(liveCliques)
				}
				for _, a := range dissAgents {
					if a != nil {
						a.RefreshTopology(topo)
					}
				}
			}
			// Greedy geographic next hops depend on raw positions, not
			// just the link set, so they re-resolve on every epoch.
			if diff.Changed() || cfg.GeographicRouting {
				var down []bool
				if fengine != nil {
					down = fengine.DownSet()
				}
				table := rebuildRoutes(down)
				for _, n := range nodes {
					n.ResetNeighborState()
					n.SetRoutes(table)
				}
			}
		}
		mobEngine, err = mobility.Start(sched, cfg.Scenario.Positions, *mob, sim.NewRand(master.Int63()), onEpoch)
		if err != nil {
			return nil, fmt.Errorf("gmp: %w", err)
		}
	}

	// Flow churn. Every arrival was generated up front from the churn
	// rng; the engine and all hooks below run as scheduled callbacks that
	// draw no randomness, so churn-on runs reproduce byte for byte and
	// churn-off runs are untouched.
	var churnEng *churn.Engine
	if ccfg != nil {
		baseID := packet.FlowID(staticN)
		if ccfg.Admission != nil {
			admCtrl = admission.NewController(*ccfg.Admission, cliques, capacity)
			// Static flows are grandfathered: they book clique budget so
			// arrivals test against the true load, but never face the
			// admission test themselves.
			for _, spec := range cfg.Scenario.Flows {
				if links, lerr := routes.Links(spec.Src, spec.Dst); lerr == nil {
					admCtrl.Book(spec.ID, spec.Weight, links)
				}
			}
		}
		// releaseQueues frees a departed flow's queues along its former
		// path where idle (in-flight stragglers recreate them on demand,
		// so a second sweep one period later catches the tail). The
		// shared FIFO of plain 802.11 belongs to every flow and is never
		// released.
		releaseQueues := func(id packet.FlowID, f churn.Flow) {
			if fwdCfg.Mode == forwarding.Shared {
				return
			}
			path, perr := liveRoutes.Path(f.Src, f.Dst)
			if perr != nil {
				return
			}
			qid := fwdCfg.Mode.QueueKey(&packet.Packet{Flow: id, Dst: f.Dst})
			sweep := func() {
				for _, n := range path[:len(path)-1] {
					nodes[n].ReleaseQueueIfIdle(qid)
				}
			}
			sweep()
			sched.After(cfg.Period, sweep)
		}
		teardown := func(id packet.FlowID, f churn.Flow) {
			registry.Source(id).Teardown()
			if admCtrl != nil {
				admCtrl.Release(id)
			}
			if engine != nil {
				engine.OnFlowDeparted(id)
			}
			if dist != nil {
				dist.OnFlowDeparted(id, f.Src)
			}
			releaseQueues(id, f)
		}
		churnEng = churn.Start(sched, churnFlows, baseID, churn.Hooks{
			Admit: func(id packet.FlowID, f churn.Flow) admission.Reason {
				if fengine != nil && (fengine.Down(f.Src) || fengine.Down(f.Dst)) {
					return admission.NoRoute
				}
				links, lerr := liveRoutes.Links(f.Src, f.Dst)
				if lerr != nil || len(links) == 0 {
					return admission.NoRoute
				}
				if admCtrl == nil {
					return 0
				}
				return admCtrl.Admit(id, f.Weight, links)
			},
			OnAdmit: func(id packet.FlowID, f churn.Flow) {
				registry.Source(id).StartNow()
				rec.Admission(id, true, "")
			},
			OnReject: func(id packet.FlowID, f churn.Flow, reason admission.Reason) {
				rec.Admission(id, false, reason.String())
			},
			OnDepart: teardown,
			OnShed: func(id packet.FlowID, f churn.Flow) {
				teardown(id, f)
				rec.Admission(id, false, admission.Shed.String())
			},
		})
		if engine != nil && admCtrl != nil {
			// Overload watchdog (central GMP only: the distributed
			// runtime has no global view of reduce conditions, see
			// DESIGN.md). When a clique's §5.3 reduce condition persists
			// ShedAfter consecutive periods, the newest churn flow
			// crossing it is shed; static flows are never shed.
			wd := admission.NewWatchdog(ccfg.Admission.ShedAfter)
			engine.SetOverloadNotifier(func(overloaded []clique.ID) {
				for _, q := range wd.Observe(overloaded) {
					if victim, ok := admCtrl.NewestCrossing(q, baseID); ok {
						churnEng.Shed(victim)
					}
				}
			})
		}
	}

	if rec != nil {
		if engine != nil {
			engine.SetRecorder(rec)
		}
		if dist != nil {
			dist.SetRecorder(rec)
		}
		// Periodic sampler: queue depths, per-link channel utilization,
		// per-flow rate limits. Pure observation on the virtual clock.
		interval := rec.SampleInterval()
		var sample func()
		sample = func() {
			s := obs.Sample{At: sched.Now(), Queues: make([]int, len(nodes))}
			for i, n := range nodes {
				s.Queues[i] = n.TotalQueued()
			}
			s.Links = rec.SampleLinkUtil(interval)
			s.Limits = registry.Limits()
			rec.AddSample(s)
			sched.After(interval, sample)
		}
		sched.After(interval, sample)
	}

	if spanRec != nil {
		if engine != nil {
			engine.SetSpans(spanRec)
		}
		if dist != nil {
			dist.SetSpans(spanRec)
		}
	}

	if done := ctx.Done(); done != nil {
		// Poll for cancellation on the virtual clock. The poll event
		// touches no protocol state and no random source, so enabling
		// it cannot change the outcome of an uncancelled run.
		var poll func()
		poll = func() {
			select {
			case <-done:
				sched.Stop()
			default:
				sched.After(time.Second, poll)
			}
		}
		sched.After(time.Second, poll)
	}

	sched.At(cfg.Warmup, func() { registry.Mark(cfg.Warmup) })
	sched.Run(cfg.Duration)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gmp: run aborted at t=%v: %w", sched.Now(), err)
	}

	// The maxmin ground truth. Under churn the reference covers the
	// static flows plus the churn flows still active at the end of the
	// run — the set whose allocation the protocol should approach —
	// scattered into a full-length vector (0 for refused, shed and
	// departed flows).
	refIdx := make([]int, 0, len(allFlows))
	for i := range cfg.Scenario.Flows {
		refIdx = append(refIdx, i)
	}
	if churnEng != nil {
		for i := range churnFlows {
			id := packet.FlowID(staticN + i)
			spec := allFlows[id]
			if churnEng.Active(id) && routes.HopCount(spec.Src, spec.Dst) > 0 {
				refFlows = append(refFlows, maxminref.FlowSpec{Src: spec.Src, Dst: spec.Dst, Weight: spec.Weight, Demand: spec.DesiredRate})
				refIdx = append(refIdx, int(id))
			}
		}
	}
	reference, err := referenceAllocation(refFlows, routes, cliques, capacity)
	if err != nil {
		return nil, err
	}
	if len(allFlows) > staticN {
		full := make([]float64, len(allFlows))
		for j, v := range reference {
			full[refIdx[j]] = v
		}
		reference = full
	}

	rates := registry.MeasuredRates(cfg.Duration)
	res := &Result{
		Scenario:    cfg.Scenario.Name,
		Protocol:    cfg.Protocol,
		Rates:       rates,
		Reference:   reference,
		TwoPPTarget: twoPPTarget,
		Channel:     medium.Stats(),
	}
	for _, st := range stations {
		res.MAC = append(res.MAC, st.Stats())
	}
	if ring != nil {
		res.Events = ring.Events()
	}
	res.ControlOverhead = float64(res.Channel.ControlAirtime) / float64(cfg.Duration)
	hops := make([]int, len(rates))
	for i, spec := range allFlows {
		src := registry.Source(spec.ID)
		limit := math.Inf(1)
		if l, ok := src.Limited(); ok {
			limit = l
		}
		hops[i] = routes.HopCount(spec.Src, spec.Dst)
		res.Flows = append(res.Flows, FlowResult{
			Spec:          spec,
			Rate:          rates[i],
			NormRate:      rates[i] / spec.Weight,
			Hops:          hops[i],
			Delivered:     registry.Delivered(spec.ID),
			Dropped:       registry.Dropped(spec.ID),
			DropsByReason: registry.DroppedBy(spec.ID),
			Limit:         limit,
		})
	}
	// Under churn the fairness indices cover the same set as Reference —
	// static flows plus churn flows active at the end — so refused and
	// departed flows (rate 0 by construction) do not masquerade as
	// starvation.
	mRates, mHops := rates, hops
	if len(allFlows) > staticN {
		mRates = make([]float64, 0, len(refIdx))
		mHops = make([]int, 0, len(refIdx))
		for _, i := range refIdx {
			mRates = append(mRates, rates[i])
			mHops = append(mHops, hops[i])
		}
	}
	res.Imm = metrics.MaxminIndex(mRates)
	res.Ieq = metrics.EqualityIndex(mRates)
	res.U = metrics.EffectiveThroughput(mRates, mHops)
	if engine != nil {
		res.Trace = engine.Trace()
	}
	if dist != nil {
		res.Trace = dist.Trace()
	}
	if churnEng != nil {
		out := &ChurnOutcome{}
		out.Arrivals, out.Admitted, out.Rejected, out.Shed = churnEng.Counts()
		for _, d := range churnEng.Decisions() {
			ad := AdmissionDecision{Flow: d.Flow, At: d.At, Admitted: d.Admitted}
			if !d.Admitted {
				ad.Reason = d.Reason.String()
			}
			out.Decisions = append(out.Decisions, ad)
		}
		out.TimeToFairShare = make([]time.Duration, len(out.Decisions))
		for i, d := range out.Decisions {
			out.TimeToFairShare[i] = -1
			if d.Admitted {
				spec := allFlows[d.Flow]
				if ttfs, ok := FlowTimeToFairShare(res.Trace, int(d.Flow), d.At, spec.Stop, DefaultRecoveryTol); ok {
					out.TimeToFairShare[i] = ttfs
				}
			}
		}
		// Departed flows must leave no rate-limit state behind; a
		// non-zero count here is the teardown bug this field exists to
		// catch.
		for id := packet.FlowID(staticN); int(id) < len(allFlows); id++ {
			src := registry.Source(id)
			if src.Started() && !churnEng.Active(id) {
				if _, limited := src.Limited(); limited {
					out.StaleLimits++
				}
			}
		}
		res.Churn = out
	}
	if fengine != nil {
		res.FaultEvents = fengine.Schedule()
	}
	if mobEngine != nil {
		res.MobilityEpochs = mobEngine.Epochs()
	}
	if (fengine != nil || lastTopoChange > 0) && len(res.Trace) > 0 {
		// Anchor recovery at the last disturbance of either kind.
		anchor := lastTopoChange
		if fengine != nil && fengine.LastFaultTime() > anchor {
			anchor = fengine.LastFaultTime()
		}
		rep := RecoveryReport(res.Trace, anchor, DefaultRecoveryTol)
		res.RecoveryTime, res.Recovered = rep.Time, rep.Settled
	}
	if rec != nil {
		res.Telemetry = rec.Finalize(cfg.Scenario.Name, cfg.Protocol.String())
	}
	if spanRec != nil {
		res.Spans = spanRec.Finalize(cfg.Scenario.Name, cfg.Protocol.String(), cfg.Duration)
	}
	return res, nil
}

func forwardingConfig(cfg Config) (forwarding.Config, error) {
	switch cfg.Protocol {
	case ProtocolGMP, ProtocolGMPDistributed, ProtocolBackpressure:
		return forwarding.Config{
			Mode:                forwarding.PerDestination,
			QueueSlots:          cfg.QueueSlots,
			CongestionAvoidance: true,
			StaleAfter:          cfg.StaleAfter,
			RequeueOnFailure:    true,
			FairAggregation:     cfg.FairAggregation,
		}, nil
	case Protocol2PP:
		fc := baseline.TwoPPForwarding(cfg.QueueSlots)
		fc.StaleAfter = cfg.StaleAfter
		fc.RequeueOnFailure = true
		return fc, nil
	case Protocol80211:
		return baseline.Plain80211Forwarding(cfg.SharedQueueSlots), nil
	case ProtocolBackpressureShared:
		return forwarding.Config{
			Mode:                forwarding.Shared,
			QueueSlots:          cfg.QueueSlots,
			CongestionAvoidance: true,
			StaleAfter:          cfg.StaleAfter,
			RequeueOnFailure:    true,
		}, nil
	default:
		return forwarding.Config{}, fmt.Errorf("gmp: unknown protocol %d", int(cfg.Protocol))
	}
}

func referenceAllocation(flows []maxminref.FlowSpec, routes *routing.Table, cliques *clique.Set, capacity float64) ([]float64, error) {
	problem, err := maxminref.BuildProblem(flows, routes, cliques, baseline.UniformCliqueCapacity(capacity))
	if err != nil {
		return nil, fmt.Errorf("gmp: reference allocation: %w", err)
	}
	ref, err := problem.Solve()
	if err != nil {
		return nil, fmt.Errorf("gmp: reference allocation: %w", err)
	}
	return ref, nil
}

// startInBandControl wires a dissemination agent per node and floods
// every node's link-state records once per period, jittered across the
// first tenth of the period so the group-addressed frames (which have no
// collision recovery) do not all collide at the boundary. It returns the
// agents so mobility epochs can refresh their relay sets.
func startInBandControl(sched *sim.Scheduler, topo *topology.Topology, nodes []*forwarding.Node, stations []*mac.Station, period time.Duration, rng *rand.Rand) []*dissemination.Agent {
	agents := make([]*dissemination.Agent, topo.NumNodes())
	for _, id := range topo.Nodes() {
		agents[id] = dissemination.NewAgent(id, topo, stations[id])
		nodes[id].SetBroadcastHandler(agents[id].OnBroadcast)
	}
	var tick func()
	tick = func() {
		for _, id := range topo.Nodes() {
			id := id
			jitter := time.Duration(rng.Float64() * float64(period) / 10)
			sched.After(jitter, func() {
				n := len(topo.Neighbors(id))
				agents[id].Broadcast(n, n)
			})
		}
		sched.After(period, tick)
	}
	sched.After(period, tick)
	return agents
}

// packetBytes returns the packet size shared by the flows (the largest,
// if they differ) for capacity estimation.
func packetBytes(specs []flow.Spec) int {
	size := scenario.DefaultPacketBytes
	for _, s := range specs {
		if s.SizeBytes > size {
			size = s.SizeBytes
		}
	}
	return size
}
