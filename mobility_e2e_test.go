package gmp

// End-to-end mobility acceptance: a relay walking out of range mid-run
// must trigger route repair and keep the flow alive (mirroring the
// crashed-relay tests in faults_e2e_test.go), motion must compose with
// fault injection, and mobility runs must preserve the serial-vs-parallel
// reproducibility contract.

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// walkOut returns a mobility config in which exactly the given node
// wanders (everyone else is pinned): a random-waypoint walker bound to a
// distant patch of field, fast enough to leave radio range within a few
// epochs, parked there by a pause longer than any run. Motion runs only
// in (start, stop].
func walkOut(numNodes int, node NodeID, start, stop time.Duration) *MobilityConfig {
	cfg := &MobilityConfig{
		Model:    MobilityRandomWaypoint,
		Epoch:    time.Second,
		Start:    start,
		Stop:     stop,
		MinSpeed: 100, MaxSpeed: 200,
		Pause: time.Hour,
		MinX:  2000, MaxX: 2400, MinY: 0, MaxY: 400,
	}
	for i := 0; i < numNodes; i++ {
		if NodeID(i) != node {
			cfg.Pinned = append(cfg.Pinned, NodeID(i))
		}
	}
	return cfg
}

// TestMobilityRelayWalkoutRecovery is the acceptance scenario: on the
// 2x3 grid with flow 0→2 (initial route 0-1-2), relay 1 walks out of
// range between t=10s and t=30s. Motion-driven route repair must shift
// the flow onto 0-3-4-5-2 and keep delivery alive through the entirely
// post-walkout measurement window, and the run must report
// re-convergence after the last topology change.
func TestMobilityRelayWalkoutRecovery(t *testing.T) {
	sc := gridWithFlow(t)
	cfg := Config{
		Scenario: sc,
		Protocol: ProtocolGMP,
		Duration: 120 * time.Second,
		Warmup:   60 * time.Second,
		Mobility: walkOut(len(sc.Positions), 1, 10*time.Second, 30*time.Second),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MobilityEpochs == 0 {
		t.Fatal("no mobility epochs fired")
	}
	if res.Flows[0].Rate <= 1 {
		t.Fatalf("flow rate %.2f pkt/s after the relay left: route repair did not keep the flow alive", res.Flows[0].Rate)
	}
	// Hops reports the initial (pre-motion) 2-hop route by design.
	if res.Flows[0].Hops != 2 {
		t.Errorf("initial hop count %d, want 2", res.Flows[0].Hops)
	}
	if !res.Recovered {
		t.Fatal("run did not report recovery after the walkout")
	}
	if res.RecoveryTime <= 0 || res.RecoveryTime > cfg.Duration {
		t.Errorf("RecoveryTime = %v outside (0, %v]", res.RecoveryTime, cfg.Duration)
	}
}

// TestFaultsAndMobilityCompose crashes one relay and walks another out:
// on the 3x3 grid (spacing 200 m, orthogonal links only) with flow 0→2,
// node 1 crashes at t=12s (repair: 0-3-4-5-2), then node 4 wanders off
// between t=16s and t=40s. The motion-driven rebuild must keep excluding
// the crashed node — if the compositions were independent, the post-
// motion table would route straight back through dead node 1 and the
// flow would starve.
func TestFaultsAndMobilityCompose(t *testing.T) {
	sc, err := GridScenario(3, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	sc = sc.WithFlows([][3]int{{0, 2, 1}})
	cfg := Config{
		Scenario: sc,
		Protocol: ProtocolGMP,
		Duration: 120 * time.Second,
		Warmup:   60 * time.Second,
		Faults:   []FaultEvent{{At: 12 * time.Second, Kind: FaultNodeDown, Node: 1}},
		Mobility: walkOut(len(sc.Positions), 4, 16*time.Second, 40*time.Second),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MobilityEpochs == 0 {
		t.Fatal("no mobility epochs fired")
	}
	if len(res.FaultEvents) != 1 {
		t.Fatalf("FaultEvents = %+v, want the one scheduled crash", res.FaultEvents)
	}
	// The only remaining path is 0-3-6-7-8-5-2 along the grid's rim.
	if res.Flows[0].Rate <= 1 {
		t.Fatalf("flow rate %.2f pkt/s: repair around crash+walkout failed", res.Flows[0].Rate)
	}
}

// TestMobilityRunsAreDeterministic extends the serial-vs-parallel
// regression to moving topologies: random-waypoint runs across a seed
// sweep must produce byte-identical Results between serial Run and
// RunMany with concurrent workers.
func TestMobilityRunsAreDeterministic(t *testing.T) {
	chain, err := ChainScenario(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg(chain)
	cfg.Mobility = &MobilityConfig{
		Model:    MobilityRandomWaypoint,
		Epoch:    2 * time.Second,
		MinSpeed: 1, MaxSpeed: 10,
		MinX: 0, MaxX: 800, MinY: -200, MaxY: 200,
	}
	cfgs := SeedSweep(cfg, 6)
	serial := make([]*Result, len(cfgs))
	for i, c := range cfgs {
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	parallel, err := RunMany(context.Background(), cfgs, RunManyOptions{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		assertIdenticalResults(t, fmt.Sprintf("seed %d", cfgs[i].Seed), serial[i], parallel[i])
		if serial[i].MobilityEpochs == 0 {
			t.Errorf("seed %d: no mobility epochs fired", cfgs[i].Seed)
		}
	}
}

// TestConfigMobilityOverridesScenario pins the precedence rule: a
// scenario-carried mobility model applies only when Config.Mobility is
// nil.
func TestConfigMobilityOverridesScenario(t *testing.T) {
	chain, err := ChainScenario(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	scenarioMob := &MobilityConfig{
		Model: MobilityRandomWalk, Epoch: 2 * time.Second, MaxSpeed: 5,
	}
	cfg := shortCfg(chain.WithMobility(scenarioMob))
	cfg.Mobility = &MobilityConfig{
		Model: MobilityRandomWalk, Epoch: 6 * time.Second, MaxSpeed: 5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 24 s at one epoch per 6 s: the override's cadence, not the
	// scenario's 12 epochs.
	if res.MobilityEpochs != 4 {
		t.Errorf("MobilityEpochs = %d, want 4 (config override at 6s epochs)", res.MobilityEpochs)
	}

	cfg.Mobility = nil
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MobilityEpochs != 12 {
		t.Errorf("MobilityEpochs = %d, want 12 (scenario model at 2s epochs)", res.MobilityEpochs)
	}
}

// TestInvalidMobilityConfigRejected checks Config validation covers the
// mobility block.
func TestInvalidMobilityConfigRejected(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Mobility = &MobilityConfig{Model: MobilityRandomWalk, Epoch: 0, MaxSpeed: 5}
	if _, err := Run(cfg); err == nil {
		t.Error("zero-epoch mobility accepted")
	}
	cfg.Mobility = &MobilityConfig{Model: MobilityRandomWalk, Epoch: time.Second, MaxSpeed: 5, Pinned: []NodeID{99}}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range pinned node accepted")
	}
}
