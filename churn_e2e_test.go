package gmp

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// meshOverload returns the mesh-ISP overload workload behind the
// admission acceptance test: a 3x3 mesh with 3 static senders towards
// the gateway (node 0), plus a burst of gateway-bound churn arrivals in
// the first 12 s. Flow sizes are pinned far above what a 60 s session
// can drain, so every admitted flow stays active to the end and the
// measurement window [30 s, 60 s] sees a stable flow set.
func meshOverload(t *testing.T, adm *AdmissionParams) Config {
	t.Helper()
	sc, err := MeshGatewayScenario(3, 3, 3, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Scenario: sc,
		Protocol: ProtocolGMP,
		Duration: 60 * time.Second,
		Warmup:   30 * time.Second,
		Churn: &ChurnConfig{
			Process:     ChurnPoisson,
			Rate:        1.5,
			Stop:        12 * time.Second,
			Matrix:      ChurnGateway,
			MinSizePkts: 400000,
			MaxSizePkts: 400000,
			Admission:   adm,
		},
	}
}

// TestOverloadAdmissionDemo is the acceptance criterion: under a
// gateway-bound overload, admission control must refuse (or shed) the
// excess arrivals while the accepted flows' rates track the centralized
// maxmin reference over the admitted set; the same workload with
// admission off must admit everything and degrade every flow below
// what the protected run sustains.
func TestOverloadAdmissionDemo(t *testing.T) {
	on, err := Run(meshOverload(t, &AdmissionParams{MinShare: 40}))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(meshOverload(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if on.Churn == nil || off.Churn == nil {
		t.Fatal("churn enabled but Result.Churn is nil")
	}

	// The overload must actually overload: more arrivals than the
	// gateway cliques can carry, so the controller refuses or sheds some.
	if on.Churn.Arrivals < 5 {
		t.Fatalf("only %d arrivals; workload is not an overload", on.Churn.Arrivals)
	}
	if on.Churn.Rejected+on.Churn.Shed == 0 {
		t.Fatalf("admission refused nothing under overload: %+v", on.Churn)
	}
	if off.Churn.Rejected != 0 || off.Churn.Shed != 0 {
		t.Fatalf("admission-off run refused flows: %+v", off.Churn)
	}
	if off.Churn.Admitted != off.Churn.Arrivals {
		t.Fatalf("admission-off run admitted %d of %d arrivals", off.Churn.Admitted, off.Churn.Arrivals)
	}

	// Accepted flows (static + churn flows active at the end; exactly
	// the set Reference covers) must track the maxmin reference: the
	// weakest of them keeps a usable share of its reference allocation
	// instead of starving.
	minOnRate, minOnRef := -1.0, 0.0
	for i, ref := range on.Reference {
		if ref <= 0 {
			continue
		}
		if minOnRate < 0 || on.Rates[i] < minOnRate {
			minOnRate, minOnRef = on.Rates[i], ref
		}
	}
	if minOnRate < 0 {
		t.Fatal("no admitted flows in the protected run")
	}
	t.Logf("admission on:  admitted=%d rejected=%d shed=%d min(rate)=%.1f (ref %.1f)",
		on.Churn.Admitted, on.Churn.Rejected, on.Churn.Shed, minOnRate, minOnRef)
	if minOnRate < 0.25*minOnRef {
		t.Errorf("weakest accepted flow at %.1f pkt/s, below 25%% of its %.1f pkt/s reference share",
			minOnRate, minOnRef)
	}

	// Admission off: everything is admitted, so the same overload is
	// spread across every flow and the weakest flow must end up worse
	// than the weakest protected flow.
	minOffRate := -1.0
	for i, ref := range off.Reference {
		if ref <= 0 {
			continue
		}
		if minOffRate < 0 || off.Rates[i] < minOffRate {
			minOffRate = off.Rates[i]
		}
	}
	t.Logf("admission off: admitted=%d min(rate)=%.1f", off.Churn.Admitted, minOffRate)
	if minOffRate >= minOnRate {
		t.Errorf("unprotected min rate %.1f >= protected min rate %.1f: admission bought nothing",
			minOffRate, minOnRate)
	}

	// Refusals carry a typed reason, and every decision is recorded.
	for _, d := range on.Churn.Decisions {
		if d.Admitted != (d.Reason == "") {
			t.Errorf("decision %+v: admitted/reason disagree", d)
		}
	}
	if got := len(on.Churn.TimeToFairShare); got != len(on.Churn.Decisions) {
		t.Errorf("TimeToFairShare has %d entries for %d decisions", got, len(on.Churn.Decisions))
	}
}

// TestChurnDepartureTeardown is the teardown regression: flows that
// arrive and naturally depart mid-run must leave no rate-limit state
// behind (StaleLimits == 0), and their sources must stop injecting.
func TestChurnDepartureTeardown(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Duration = 60 * time.Second
	cfg.Warmup = 30 * time.Second
	cfg.Churn = &ChurnConfig{
		Process: ChurnPoisson,
		Rate:    0.4,
		Stop:    20 * time.Second,
		Matrix:  ChurnRandom,
		// Small sizes: lifetimes of 5-25 s, so churn flows depart well
		// before the session ends.
		MinSizePkts: 4000,
		MaxSizePkts: 20000,
		Admission:   &AdmissionParams{MinShare: 30},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn == nil || res.Churn.Arrivals == 0 {
		t.Fatalf("expected churn arrivals, got %+v", res.Churn)
	}
	if res.Churn.StaleLimits != 0 {
		t.Errorf("StaleLimits = %d after departures, want 0 (teardown leaked rate limits)", res.Churn.StaleLimits)
	}
	if res.Churn.Admitted+res.Churn.Rejected != res.Churn.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d",
			res.Churn.Admitted, res.Churn.Rejected, res.Churn.Arrivals)
	}
	// Departed flows (admitted, no reference share at the end) must not
	// hold a rate limit in their FlowResult either.
	staticN := len(cfg.Scenario.Flows)
	for i := staticN; i < len(res.Flows); i++ {
		if res.Reference[i] == 0 && res.Flows[i].Delivered > 0 && res.Flows[i].Limit < 1e18 {
			t.Errorf("departed churn flow %d still limited to %.1f pkt/s", i, res.Flows[i].Limit)
		}
	}
}

// TestChurnFaultsMobilityComposition composes all three dynamic layers
// — flow churn with admission, a crash/revival fault schedule, and
// random-waypoint motion — and requires the run to complete with
// consistent accounting and to reproduce byte for byte. CI runs this
// under -race.
func TestChurnFaultsMobilityComposition(t *testing.T) {
	sc, err := GridScenario(3, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Scenario: sc.WithFlows([][3]int{{0, 8, 1}, {6, 2, 1}}),
		Protocol: ProtocolGMP,
		Duration: 48 * time.Second,
		Warmup:   24 * time.Second,
		Churn: &ChurnConfig{
			Process:     ChurnPoisson,
			Rate:        0.5,
			Matrix:      ChurnRandom,
			MinSizePkts: 8000,
			MaxSizePkts: 40000,
			Admission:   &AdmissionParams{MinShare: 25},
		},
		Faults: []FaultEvent{
			{At: 16 * time.Second, Kind: FaultNodeDown, Node: 4},
			{At: 28 * time.Second, Kind: FaultNodeUp, Node: 4},
		},
		Mobility: &MobilityConfig{
			Model:    MobilityRandomWalk,
			Epoch:    2 * time.Second,
			MinSpeed: 1, MaxSpeed: 3,
			MinX: -100, MaxX: 500, MinY: -100, MaxY: 500,
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, "churn+faults+mobility", a, b)
	if a.Churn == nil {
		t.Fatal("Result.Churn is nil")
	}
	if a.Churn.Admitted+a.Churn.Rejected != a.Churn.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d",
			a.Churn.Admitted, a.Churn.Rejected, a.Churn.Arrivals)
	}
	if a.MobilityEpochs == 0 {
		t.Error("mobility never fired")
	}
	if len(a.FaultEvents) != 2 {
		t.Errorf("FaultEvents = %+v, want the 2 scheduled events", a.FaultEvents)
	}
}

// TestChurnRunsAreDeterministic extends the serial-vs-RunMany
// regression to churn runs: the churn engine and admission hooks must
// not introduce any cross-run shared state.
func TestChurnRunsAreDeterministic(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Churn = &ChurnConfig{
		Process:     ChurnPoisson,
		Rate:        0.5,
		Matrix:      ChurnRandom,
		MinSizePkts: 4000,
		MaxSizePkts: 16000,
		Admission:   &AdmissionParams{MinShare: 30},
	}
	cfgs := SeedSweep(cfg, 6)
	serial := make([]*Result, len(cfgs))
	for i, c := range cfgs {
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	parallel, err := RunMany(context.Background(), cfgs, RunManyOptions{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		assertIdenticalResults(t, fmt.Sprintf("seed %d", cfgs[i].Seed), serial[i], parallel[i])
	}
}

// TestChurnConfigOverridesScenario pins the precedence rule: a
// scenario-carried churn block applies only when Config.Churn is nil.
func TestChurnConfigOverridesScenario(t *testing.T) {
	scChurn := &ChurnConfig{Process: ChurnPoisson, Rate: 0.3, Matrix: ChurnRandom}
	sc := Fig3Scenario().WithChurn(scChurn)
	cfg := shortCfg(sc)
	cfg.Churn = &ChurnConfig{Process: ChurnPoisson, Rate: 0.0001, Matrix: ChurnRandom}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At λ = 0.0001/s over 24 s the override workload almost surely
	// schedules nothing; the scenario's λ = 0.3/s would.
	if res.Churn == nil {
		t.Fatal("churn override ignored")
	}
	if res.Churn.Arrivals > 1 {
		t.Errorf("override λ=0.0001 produced %d arrivals; scenario churn leaked through", res.Churn.Arrivals)
	}

	cfg.Churn = nil
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn == nil || res.Churn.Arrivals == 0 {
		t.Errorf("scenario churn block did not apply: %+v", res.Churn)
	}
}
