// Quickstart: simulate the paper's Figure 3 chain under plain IEEE
// 802.11 and under GMP, and print how the bandwidth allocation changes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// Three flows on a 4-node chain, all destined to the last node. The
	// first sender is three hops out and hidden from the third sender —
	// plain 802.11 starves it.
	scenario := gmp.Fig3Scenario()

	for _, protocol := range []gmp.Protocol{gmp.Protocol80211, gmp.ProtocolGMP} {
		res, err := gmp.Run(gmp.Config{
			Scenario: scenario,
			Protocol: protocol,
			Duration: 120 * time.Second,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", protocol)
		for _, f := range res.Flows {
			fmt.Printf("  flow %d->%d (%d hops): %7.2f pkt/s\n",
				f.Spec.Src, f.Spec.Dst, f.Hops, f.Rate)
		}
		fmt.Printf("  fairness: I_mm = %.3f, I_eq = %.3f; throughput U = %.1f pkt/s\n\n",
			res.Imm, res.Ieq, res.U)
	}

	fmt.Println("GMP equalizes the three end-to-end rates (global maxmin);")
	fmt.Println("plain 802.11 starves the hidden-terminal flow <0,3>.")
}
