// Hidden terminal anatomy: drills into the Figure 3 chain to show *why*
// plain 802.11 is unfair — and what each layer of GMP's machinery
// (backpressure, per-destination queues, rate adaptation) contributes.
//
// Four configurations run on the same topology:
//
//  1. plain 802.11           — no queue discipline, no backpressure
//  2. backpressure, 1 queue  — congestion avoidance with a shared FIFO
//  3. backpressure, per-dest — GMP's substrate without rate adaptation
//  4. full GMP               — rate adaptation from the four conditions
//
// Run with:
//
//	go run ./examples/hiddenterminal
package main

import (
	"fmt"
	"log"
	"time"

	"gmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hiddenterminal: ")

	scenario := gmp.Fig3Scenario()
	fmt.Println("Figure 3 chain: 0 - 1 - 2 - 3, flows <0,3>, <1,3>, <2,3>.")
	fmt.Println("Senders 0 and 2 cannot hear each other: node 0 is a hidden")
	fmt.Println("terminal, and its RTS frames die in collisions at node 1.")
	fmt.Println()

	steps := []struct {
		label    string
		protocol gmp.Protocol
	}{
		{"plain 802.11 (no control)", gmp.Protocol80211},
		{"+ backpressure, shared queue", gmp.ProtocolBackpressureShared},
		{"+ per-destination queues", gmp.ProtocolBackpressure},
		{"+ GMP rate adaptation", gmp.ProtocolGMP},
	}

	for _, s := range steps {
		res, err := gmp.Run(gmp.Config{
			Scenario: scenario,
			Protocol: s.protocol,
			Duration: 200 * time.Second,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		var drops int64
		for _, f := range res.Flows {
			drops += f.Dropped
		}
		fmt.Printf("%-32s rates %7.1f %7.1f %7.1f   I_mm %.3f  U %6.1f  drops %d\n",
			s.label, res.Rates[0], res.Rates[1], res.Rates[2], res.Imm, res.U, drops)
	}

	fmt.Println()
	fmt.Println("Reading the steps: backpressure stops packet loss (drops -> 0)")
	fmt.Println("but cannot equalize rates; only the rate-adaptation conditions")
	fmt.Println("pull <0,3> up to its maxmin share by throttling its neighbors.")
}
