// Weighted service classes: the traffic-engineering application from the
// paper's introduction — "we may establish several service classes in
// the network and assign larger weights to applications belonging to
// higher classes" (§2.1).
//
// The example runs the Figure 3 chain (three flows into one sink,
// sharing a single contention clique) under different weight
// assignments and shows that the flows' rates follow the weights:
// weighted global maxmin equalizes the *normalized* rates r(f)/w(f).
//
// Run with:
//
//	go run ./examples/weightedclasses
package main

import (
	"fmt"
	"log"
	"time"

	"gmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("weightedclasses: ")

	cases := []struct {
		name    string
		weights [3]float64
	}{
		{"best effort (all weight 1)", [3]float64{1, 1, 1}},
		{"long flow prioritized (weights 3,1,1)", [3]float64{3, 1, 1}},
		{"gold/silver/bronze (weights 3,2,1)", [3]float64{3, 2, 1}},
	}

	for _, c := range cases {
		sc := gmp.Fig3Scenario()
		for i := range sc.Flows {
			sc.Flows[i].Weight = c.weights[i]
		}
		res, err := gmp.Run(gmp.Config{
			Scenario: sc,
			Protocol: gmp.ProtocolGMP,
			Duration: 400 * time.Second,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", c.name)
		for i, f := range res.Flows {
			fmt.Printf("  <%d,3> (weight %g): %7.2f pkt/s  (normalized %6.2f)\n",
				i, f.Spec.Weight, f.Rate, f.NormRate)
		}
		fmt.Printf("  normalized spread: I_eq over mu = %.3f (1.0 = perfectly weighted)\n\n",
			jain(res.Flows[0].NormRate, res.Flows[1].NormRate, res.Flows[2].NormRate))
	}

	fmt.Println("All three flows share one contention clique, so weighted")
	fmt.Println("maxmin equalizes their normalized rates: tripling a class's")
	fmt.Println("weight roughly triples its bandwidth share.")
}

// jain computes Jain's fairness index over the given values.
func jain(vals ...float64) float64 {
	var sum, sumSq float64
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(vals)) * sumSq)
}
