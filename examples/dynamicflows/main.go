// Dynamic flows: GMP reacting to churn. The paper evaluates static flow
// sets; this example (an extension) lets flows join and leave
// mid-session on the Figure 3 chain and plots the per-round rates so
// the re-convergence is visible:
//
//   - t=0s:    <1,3> and <2,3> start; they share the clique evenly.
//   - t=120s:  <0,3> joins three hops out; GMP squeezes the incumbents
//     until all three normalized rates equalize.
//   - t=260s:  <2,3> leaves; the survivors absorb the freed capacity.
//
// Run with:
//
//	go run ./examples/dynamicflows
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"gmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynamicflows: ")

	sc := gmp.Fig3Scenario()
	sc.Flows[0].Start = 120 * time.Second // <0,3> joins late
	sc.Flows[2].Stop = 260 * time.Second  // <2,3> leaves early

	res, err := gmp.Run(gmp.Config{
		Scenario: sc,
		Protocol: gmp.ProtocolGMP,
		Duration: 400 * time.Second,
		Warmup:   time.Second, // measure nearly everything
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-adjustment-round rates (pkt/s); one bar ≈ 20 pkt/s")
	fmt.Println()
	fmt.Printf("%8s %9s %9s %9s\n", "time", "<0,3>", "<1,3>", "<2,3>")
	for i, round := range res.Trace {
		if i%4 != 0 {
			continue // print every 4th round to keep the plot short
		}
		fmt.Printf("%8s", round.Time)
		for _, r := range round.Rates {
			fmt.Printf(" %5.0f %s", r, strings.Repeat("#", int(r/20)))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Watch the three phases: an even two-way split, the late")
	fmt.Println("joiner pulling everyone to a three-way maxmin, and the")
	fmt.Println("survivors re-absorbing capacity after the departure.")
}
