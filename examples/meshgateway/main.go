// Mesh gateway: the workload that motivates per-destination queueing in
// §1 and §5.1 — many flows in a wireless mesh all converging on the
// Internet gateway. The example builds a 4x4 grid mesh, points six
// user flows at the gateway, and compares plain 802.11 with GMP.
//
// Because every flow shares the gateway destination, GMP's
// per-destination queues collapse to a single virtual network rooted at
// the gateway (the single-destination case of §4), and the protocol
// equalizes the users regardless of how many hops they are from the
// gateway.
//
// Run with:
//
//	go run ./examples/meshgateway
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"gmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshgateway: ")

	scenario, err := gmp.MeshGatewayScenario(4, 4, 6, 200, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4x4 mesh, gateway at node 0, %d user flows\n\n", len(scenario.Flows))

	type outcome struct {
		protocol gmp.Protocol
		result   *gmp.Result
	}
	var outcomes []outcome
	for _, protocol := range []gmp.Protocol{gmp.Protocol80211, gmp.ProtocolGMP} {
		res, err := gmp.Run(gmp.Config{
			Scenario: scenario,
			Protocol: protocol,
			Duration: 300 * time.Second,
			Seed:     42,
		})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{protocol, res})
	}

	for _, o := range outcomes {
		fmt.Printf("%s:\n", o.protocol)
		// Sort flows by hop count so the distance gradient is visible.
		flows := append([]gmp.FlowResult(nil), o.result.Flows...)
		sort.Slice(flows, func(i, j int) bool { return flows[i].Hops < flows[j].Hops })
		for _, f := range flows {
			fmt.Printf("  node %2d -> gateway (%d hops): %7.2f pkt/s\n",
				f.Spec.Src, f.Hops, f.Rate)
		}
		fmt.Printf("  I_mm = %.3f, I_eq = %.3f, U = %.1f pkt/s\n\n",
			o.result.Imm, o.result.Ieq, o.result.U)
	}

	fmt.Println("Under 802.11, users far from the gateway are squeezed out by")
	fmt.Println("closer users (some to ~1 pkt/s); GMP pulls every user into the")
	fmt.Println("same band regardless of distance (global maxmin with a common")
	fmt.Println("destination).")
}
