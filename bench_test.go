package gmp

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§7) plus the ablations listed in DESIGN.md. Each
// benchmark runs the full packet-level simulation and reports the
// paper's metrics through b.ReportMetric:
//
//	Imm       maxmin fairness index  min(r)/max(r)
//	Ieq       equality (Jain) index
//	U_pps     effective network throughput Σ r(f)·l_f
//	minRate   the smallest flow rate (the quantity maxmin raises)
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute pkt/s differ from the paper (different PHY constants); the
// shapes — who wins, by what factor, how the indices order the
// protocols — are the reproduction target. EXPERIMENTS.md records a
// full paper-vs-measured comparison.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gmp/internal/clique"
	"gmp/internal/routing"
	"gmp/internal/stats"
	"gmp/internal/topology"
)

// benchRun executes one simulation per benchmark iteration (seed i+1)
// and reports the cross-iteration mean of the paper's metrics, so the
// reported numbers average over every seed the benchmark ran instead of
// echoing only the last one. It returns the cross-seed summary plus the
// individual results for callers that need per-run fields.
func benchRun(b *testing.B, cfg Config) (SweepSummary, []*Result) {
	b.Helper()
	results := make([]*Result, 0, b.N)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, res)
	}
	sum := Summarize(results)
	b.ReportMetric(sum.Imm.Mean, "Imm")
	b.ReportMetric(sum.Ieq.Mean, "Ieq")
	b.ReportMetric(sum.U.Mean, "U_pps")
	b.ReportMetric(sum.MinRate.Mean, "minRate")
	return sum, results
}

// BenchmarkTable1Fig2Maxmin regenerates Table 1: GMP on the Figure 2
// topology with unit weights. Paper: f1=563.96 with f2..f4 equal around
// 197-221 (f1 opportunistically exceeds the clique-1 flows by ~2.6x).
func BenchmarkTable1Fig2Maxmin(b *testing.B) {
	sum, _ := benchRun(b, Config{Scenario: Fig2Scenario(), Protocol: ProtocolGMP})
	b.ReportMetric(sum.FlowRates[0].Mean/sum.FlowRates[1].Mean, "f1/f2")
}

// BenchmarkTable2Fig2Weighted regenerates Table 2: weighted maxmin with
// weights (1,2,1,3). Paper: clique-1 rates 225/122/377 ~ 2:1:3.
func BenchmarkTable2Fig2Weighted(b *testing.B) {
	sum, _ := benchRun(b, Config{Scenario: Fig2WeightedScenario(), Protocol: ProtocolGMP})
	b.ReportMetric(sum.FlowRates[1].Mean/sum.FlowRates[2].Mean, "f2/f3")
	b.ReportMetric(sum.FlowRates[3].Mean/sum.FlowRates[2].Mean, "f4/f3")
}

// Tables 3 and 4 compare three protocols; one sub-benchmark each so the
// -bench output carries one row per protocol column.

func benchComparison(b *testing.B, sc Scenario) {
	for _, p := range []Protocol{Protocol80211, Protocol2PP, ProtocolGMP} {
		b.Run(p.String(), func(b *testing.B) {
			benchRun(b, Config{Scenario: sc, Protocol: p})
		})
	}
}

// BenchmarkTable3Fig3Comparison regenerates Table 3 (three-link chain).
// Paper: I_mm 0.366 / 0.547 / 0.919 and U 856 / 1014 / 1026 for
// 802.11 / 2PP / GMP.
func BenchmarkTable3Fig3Comparison(b *testing.B) {
	benchComparison(b, Fig3Scenario())
}

// BenchmarkTable4Fig4Comparison regenerates Table 4 (four-cell
// topology). Paper: I_mm 0.476 / 0.125 / 0.888 for 802.11 / 2PP / GMP.
func BenchmarkTable4Fig4Comparison(b *testing.B) {
	benchComparison(b, Fig4Scenario())
}

// BenchmarkFig1QueueIsolation regenerates the Figure 1 experiment (§5.1):
// per-destination queueing isolates f2 from f1's remote bottleneck. The
// reported isolation metric is r(f2)/r(f1); with a shared queue it is ~1
// (f2 wrongly coupled), with per-destination queues it is >> 1.
func BenchmarkFig1QueueIsolation(b *testing.B) {
	for _, tc := range []struct {
		name     string
		protocol Protocol
	}{
		{"SharedQueue", ProtocolBackpressureShared},
		{"PerDestination", ProtocolBackpressure},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sum, _ := benchRun(b, Config{
				Scenario: Fig1Scenario(),
				Protocol: tc.protocol,
				Duration: 200 * time.Second,
			})
			b.ReportMetric(sum.FlowRates[1].Mean/sum.FlowRates[0].Mean, "f2/f1")
		})
	}
}

// BenchmarkAblationBeta sweeps GMP's equality tolerance β (A2 in
// DESIGN.md). The paper fixes β = 10%; smaller values react to noise,
// larger ones leave wider residual unfairness.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{0.05, 0.10, 0.20} {
		b.Run(fmt.Sprintf("beta=%.2f", beta), func(b *testing.B) {
			benchRun(b, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Beta: beta})
		})
	}
}

// BenchmarkAblationPeriod sweeps the measurement/adjustment period (A3).
// The paper uses 4 s.
func BenchmarkAblationPeriod(b *testing.B) {
	for _, period := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second} {
		b.Run(period.String(), func(b *testing.B) {
			benchRun(b, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Period: period})
		})
	}
}

// BenchmarkAblationBuffer sweeps the per-destination queue capacity (A6).
// The paper's comparisons use 10 slots.
func BenchmarkAblationBuffer(b *testing.B) {
	for _, slots := range []int{5, 10, 50} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			benchRun(b, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, QueueSlots: slots})
		})
	}
}

// BenchmarkAblationAdditiveIncrease sweeps the rate-limit probe step:
// larger steps recover utilization faster but overshoot equality.
func BenchmarkAblationAdditiveIncrease(b *testing.B) {
	for _, step := range []float64{2, 4, 8} {
		b.Run(fmt.Sprintf("step=%g", step), func(b *testing.B) {
			benchRun(b, Config{Scenario: Fig4Scenario(), Protocol: ProtocolGMP, AdditiveIncrease: step})
		})
	}
}

// BenchmarkRandomTopologyVsReference (A4) runs GMP on random connected
// topologies and reports how close the distributed outcome gets to the
// centralized water-filling reference: refDist is the mean absolute
// relative deviation of per-flow rates from the reference allocation.
func BenchmarkRandomTopologyVsReference(b *testing.B) {
	sc, err := RandomScenario(15, 5, 900, 900, 3)
	if err != nil {
		b.Fatal(err)
	}
	sum, results := benchRun(b, Config{Scenario: sc, Protocol: ProtocolGMP})
	// The reference allocation is seed-independent; compare it against
	// the cross-seed mean rates.
	reference := results[len(results)-1].Reference
	dev := 0.0
	for i, fr := range sum.FlowRates {
		if ref := reference[i]; ref > 0 {
			d := (fr.Mean - ref) / ref
			if d < 0 {
				d = -d
			}
			dev += d
		}
	}
	b.ReportMetric(dev/float64(len(sum.FlowRates)), "refDist")
}

// BenchmarkMeshGateway (A5) scales GMP to a 4x4 mesh with six flows
// converging on a gateway — the motivating wireless-mesh workload.
func BenchmarkMeshGateway(b *testing.B) {
	sc, err := MeshGatewayScenario(4, 4, 6, 200, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []Protocol{Protocol80211, ProtocolGMP} {
		b.Run(p.String(), func(b *testing.B) {
			benchRun(b, Config{Scenario: sc, Protocol: p})
		})
	}
}

// BenchmarkLossResilience injects uniform frame loss and reports how
// GMP's fairness degrades (failure injection; not in the paper).
func BenchmarkLossResilience(b *testing.B) {
	for _, loss := range []float64{0, 0.01, 0.05} {
		b.Run(fmt.Sprintf("loss=%.2f", loss), func(b *testing.B) {
			benchRun(b, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, LossProb: loss})
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// seconds per wall-clock second on the busiest paper scenario, so
// regressions in the event loop show up. Unlike the table benchmarks it
// uses a short session and reports ns per simulated exchange.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := Config{
		Scenario: Fig4Scenario(),
		Protocol: Protocol80211,
		Duration: 20 * time.Second,
		Warmup:   10 * time.Second,
	}
	var tx int64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tx += res.Channel.Transmissions
	}
	b.ReportMetric(float64(tx)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkChurnOverhead measures what the churn engine and admission
// control cost on top of a comparable static run: the mesh-gateway
// overload demo with Poisson arrivals and admission on. The schedule
// is pre-generated and the admission test is O(path cliques) per
// arrival, so the frames/s metric should track the static throughput
// benchmark, not fall off a cliff.
func BenchmarkChurnOverhead(b *testing.B) {
	sc, err := MeshGatewayScenario(3, 3, 3, 200, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Scenario: sc,
		Protocol: ProtocolGMP,
		Duration: 20 * time.Second,
		Warmup:   10 * time.Second,
		Churn: &ChurnConfig{
			Process:     ChurnPoisson,
			Rate:        1.0,
			Matrix:      ChurnGateway,
			MinSizePkts: 4000,
			MaxSizePkts: 40000,
			Admission:   &AdmissionParams{MinShare: 40},
		},
	}
	var tx int64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Churn == nil || res.Churn.Arrivals == 0 {
			b.Fatal("churn workload produced no arrivals")
		}
		tx += res.Channel.Transmissions
	}
	b.ReportMetric(float64(tx)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkParallelSweep measures the experiment runner's fan-out: one
// op is a complete 16-seed sweep of the Figure 3 scenario, executed
// serially (Workers=1) and across all CPUs. On an N-core machine the
// parallel variant approaches min(N, 16)× speedup because runs are
// independent single-threaded simulations; on one core the two are
// equal. The runs/s metric is the cross-variant comparable number.
func BenchmarkParallelSweep(b *testing.B) {
	cfgs := SeedSweep(Config{
		Scenario: Fig3Scenario(),
		Protocol: ProtocolGMP,
		Duration: 30 * time.Second,
		Warmup:   15 * time.Second,
	}, 16)
	variants := []struct {
		name    string
		workers int
	}{
		{"Serial", 1},
		{fmt.Sprintf("AllCPUs=%d", runtime.GOMAXPROCS(0)), 0},
	}
	for _, tc := range variants {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := RunMany(context.Background(), cfgs, RunManyOptions{Workers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if sum := Summarize(results); sum.Runs != len(cfgs) {
					b.Fatalf("aggregated %d of %d runs", sum.Runs, len(cfgs))
				}
			}
			b.ReportMetric(float64(len(cfgs)*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkFlowChurn measures GMP's adaptivity to dynamic flow sets (an
// extension beyond the paper's static evaluation): the one-hop flow of
// the Figure 3 chain departs mid-session and the metric is the fairness
// of the surviving flows over the post-churn window.
func BenchmarkFlowChurn(b *testing.B) {
	sc := Fig3Scenario()
	sc.Flows[2].Stop = 200 * time.Second
	r0 := make([]float64, 0, b.N)
	r1 := make([]float64, 0, b.N)
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Scenario: sc,
			Protocol: ProtocolGMP,
			Warmup:   250 * time.Second,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		r0 = append(r0, res.Rates[0])
		r1 = append(r1, res.Rates[1])
	}
	b.ReportMetric(stats.Mean(r0), "r0_pps")
	b.ReportMetric(stats.Mean(r1), "r1_pps")
}

// BenchmarkInBandControl runs GMP with the §6.2 link-state dissemination
// executed on the channel itself (dominating-set relays included) and
// reports the measured control overhead as a fraction of airtime.
func BenchmarkInBandControl(b *testing.B) {
	sum, results := benchRun(b, Config{
		Scenario:      Fig4Scenario(),
		Protocol:      ProtocolGMP,
		InBandControl: true,
	})
	b.ReportMetric(sum.ControlOverhead.Mean, "ctrlFrac")
	frames := make([]float64, len(results))
	for i, res := range results {
		frames[i] = float64(res.Channel.ControlFrames)
	}
	b.ReportMetric(stats.Mean(frames), "ctrlFrames")
}

// BenchmarkDistributedRuntime compares the centrally-evaluated engine
// with the per-node distributed runtime (§6 executed literally) on the
// paper's Table 3 and Table 4 scenarios. The "InBand" variants run the
// link-state dissemination over real 802.11 broadcasts.
func BenchmarkDistributedRuntime(b *testing.B) {
	cases := []struct {
		name   string
		sc     Scenario
		proto  Protocol
		inband bool
	}{
		{"Fig3/Central", Fig3Scenario(), ProtocolGMP, false},
		{"Fig3/Distributed", Fig3Scenario(), ProtocolGMPDistributed, false},
		{"Fig3/DistributedInBand", Fig3Scenario(), ProtocolGMPDistributed, true},
		{"Fig4/Central", Fig4Scenario(), ProtocolGMP, false},
		{"Fig4/Distributed", Fig4Scenario(), ProtocolGMPDistributed, false},
		{"Fig4/DistributedInBand", Fig4Scenario(), ProtocolGMPDistributed, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sum, _ := benchRun(b, Config{Scenario: tc.sc, Protocol: tc.proto, InBandControl: tc.inband})
			if tc.inband {
				b.ReportMetric(sum.ControlOverhead.Mean, "ctrlFrac")
			}
		})
	}
}

// BenchmarkConvergenceTime reports how quickly GMP settles on the
// paper's scenarios (seconds of virtual time until per-period rates stay
// within 30% of their settled means).
func BenchmarkConvergenceTime(b *testing.B) {
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"Fig3", Fig3Scenario()},
		{"Fig4", Fig4Scenario()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			secs := make([]float64, 0, b.N)
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Scenario: tc.sc, Protocol: ProtocolGMP, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				at, ok := ConvergenceTime(res.Trace, 0.3)
				if !ok {
					at = res.Trace[len(res.Trace)-1].Time
				}
				secs = append(secs, at.Seconds())
			}
			b.ReportMetric(stats.Mean(secs), "convergeSec")
		})
	}
}

// BenchmarkTopologyZoo runs GMP across structurally distinct topologies
// beyond the paper's figures: crossing flows, parallel contending
// chains, and a pure single-destination star.
func BenchmarkTopologyZoo(b *testing.B) {
	cross, err := CrossScenario(2, 200)
	if err != nil {
		b.Fatal(err)
	}
	chains, err := ParallelChainsScenario(3, 4, 200, 240)
	if err != nil {
		b.Fatal(err)
	}
	star, err := StarScenario(6, 200)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"Cross", cross},
		{"ParallelChains", chains},
		{"Star", star},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchRun(b, Config{Scenario: tc.sc, Protocol: ProtocolGMP})
		})
	}
}

// BenchmarkFairAggregation measures the per-origin round-robin queue
// extension (beyond the paper, in the spirit of its ref [4]) on the
// mesh-gateway workload, with and without GMP's rate adaptation on top.
func BenchmarkFairAggregation(b *testing.B) {
	sc, err := MeshGatewayScenario(4, 4, 6, 200, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		protocol Protocol
		fair     bool
	}{
		{"Backpressure/FIFO", ProtocolBackpressure, false},
		{"Backpressure/FairAggregation", ProtocolBackpressure, true},
		{"GMP/FIFO", ProtocolGMP, false},
		{"GMP/FairAggregation", ProtocolGMP, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchRun(b, Config{Scenario: sc, Protocol: tc.protocol, FairAggregation: tc.fair})
		})
	}
}

// BenchmarkFaultRecovery measures GMP under the fault-injection
// subsystem (beyond the paper): a relay on the 2x3 grid crashes at the
// warmup boundary and revives after the given outage, and the benchmark
// reports how long the allocation takes to re-settle after the revival
// alongside the usual fairness metrics. The recovery_s metric is the
// cross-seed mean over runs whose post-fault trace settled.
func BenchmarkFaultRecovery(b *testing.B) {
	sc, err := GridScenario(2, 3, 200)
	if err != nil {
		b.Fatal(err)
	}
	sc = sc.WithFlows([][3]int{{0, 2, 1}, {3, 5, 1}})
	for _, outage := range []time.Duration{10 * time.Second, 30 * time.Second} {
		b.Run(fmt.Sprintf("outage=%s", outage), func(b *testing.B) {
			cfg := Config{
				Scenario: sc,
				Protocol: ProtocolGMP,
				Duration: 200 * time.Second,
				Warmup:   40 * time.Second,
				Faults: []FaultEvent{
					{At: 40 * time.Second, Kind: FaultNodeDown, Node: 1},
					{At: 40*time.Second + outage, Kind: FaultNodeUp, Node: 1},
				},
			}
			_, results := benchRun(b, cfg)
			var rec []float64
			for _, res := range results {
				if res.Recovered {
					rec = append(rec, res.RecoveryTime.Seconds())
				}
			}
			if len(rec) > 0 {
				b.ReportMetric(stats.Mean(rec), "recovery_s")
			}
			b.ReportMetric(float64(len(rec))/float64(len(results)), "recovered_frac")
		})
	}
}

// BenchmarkTelemetryOverhead measures the telemetry layer's cost: the
// same Fig. 4 802.11 workload as BenchmarkSimulatorThroughput with the
// recorder off (the nil-hook baseline every untelemetered run takes)
// and on. The off arm must stay within noise of BenchmarkSimulatorThroughput;
// the on arm bounds what -telemetry costs a user.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		tcfg *TelemetryConfig
	}{
		{"off", nil},
		{"on", &TelemetryConfig{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{
				Scenario:  Fig4Scenario(),
				Protocol:  Protocol80211,
				Duration:  20 * time.Second,
				Warmup:    10 * time.Second,
				Telemetry: mode.tcfg,
			}
			var tx int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tx += res.Channel.Transmissions
			}
			b.ReportMetric(float64(tx)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkSpanOverhead measures the causal-tracing layer's cost on the
// same Fig. 4 802.11 workload: spans off (the nil-hook baseline — must
// stay within noise of BenchmarkSimulatorThroughput) and spans on at the
// default 1-in-64 sampling stride (bounds what -span costs a user).
func BenchmarkSpanOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		scfg *SpanConfig
	}{
		{"off", nil},
		{"on", &SpanConfig{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{
				Scenario: Fig4Scenario(),
				Protocol: Protocol80211,
				Duration: 20 * time.Second,
				Warmup:   10 * time.Second,
				Spans:    mode.scfg,
			}
			var tx int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tx += res.Channel.Transmissions
			}
			b.ReportMetric(float64(tx)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkScaling measures how the per-frame simulation cost grows with
// network size on random connected topologies of constant density (~10
// expected neighbors per node) and on city-regime street grids (4
// neighbors per node, the spatial-grid pipeline's target workload).
// Before the adjacency precomputation the medium scanned all N nodes per
// transmission, making the per-frame cost O(N); with neighbor lists it
// is O(degree), so ns/op should grow roughly linearly in N (more nodes →
// more flows → more frames) rather than quadratically.
//
// Two metrics are reported separately so setup and steady state cannot
// mask each other: buildms times the static build pipeline (topology,
// contention cliques, eager routes) on its own, and frames/s reports
// kernel throughput of the timed simulation runs.
func BenchmarkScaling(b *testing.B) {
	cases := []struct {
		name string
		make func() (Scenario, error)
	}{
		{"N=50", func() (Scenario, error) { return RandomScenario(50, 5, 1000, 1000, 1) }},
		{"N=100", func() (Scenario, error) { return RandomScenario(100, 10, 1400, 1400, 1) }},
		{"N=200", func() (Scenario, error) { return RandomScenario(200, 20, 2000, 2000, 1) }},
		{"city/N=500", func() (Scenario, error) { return CityScenario(500, 4, 10, 220, 1) }},
		{"city/N=2000", func() (Scenario, error) { return CityScenario(2000, 8, 24, 220, 1) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sc, err := tc.make()
			if err != nil {
				b.Fatal(err)
			}
			// Static build pipeline, timed apart from the kernel loop.
			bs := time.Now()
			topo, err := topology.New(sc.Positions, sc.Radio)
			if err != nil {
				b.Fatal(err)
			}
			clique.Build(topo)
			routing.Build(topo)
			buildMs := time.Since(bs).Seconds() * 1000
			var frames int64
			var simSeconds float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Scenario: sc,
					Protocol: Protocol80211,
					Duration: 30 * time.Second,
					Warmup:   10 * time.Second,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				frames += res.Channel.Transmissions
				simSeconds += 30
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(frames)/elapsed, "frames/s")
			}
			b.ReportMetric(simSeconds/elapsed, "simsec/s")
			// After StopTimer/ResetTimer so the framework does not
			// discard it (ResetTimer deletes user-reported metrics).
			b.ReportMetric(buildMs, "buildms")
		})
	}
}

// BenchmarkCityEndToEnd builds and simulates the 10,000-node city — the
// scale target of the spatial-grid work — in one piece: grid-backed
// topology construction, sparse clique enumeration, lazy routing, and a
// short 802.11 session. Completing at all is the acceptance criterion;
// frames/s tracks the kernel's share of the run.
func BenchmarkCityEndToEnd(b *testing.B) {
	sc, err := CityScenario(10000, 16, 40, 220, 1)
	if err != nil {
		b.Fatal(err)
	}
	var frames int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Scenario: sc,
			Protocol: Protocol80211,
			Duration: 20 * time.Second,
			Warmup:   10 * time.Second,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		frames += res.Channel.Transmissions
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(frames)/s, "frames/s")
	}
}
