package gmp

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// gridWithFlow returns the 2x3 grid (rows y=0 and y=200; columns 200 m
// apart) with a single flow 0→2. The initial route is 0-1-2; with node 1
// down the only remaining path is the long way round, 0-3-4-5-2.
func gridWithFlow(t *testing.T) Scenario {
	t.Helper()
	sc, err := GridScenario(2, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	return sc.WithFlows([][3]int{{0, 2, 1}})
}

// TestFaultRunsAreDeterministic extends the TestRunManyMatchesSerial
// regression to faulted runs: a schedule exercising churn and loss
// episodes must produce byte-identical Results between serial Run and
// parallel RunMany. The fault engine draws no randomness, so a fault
// schedule must never perturb the reproducibility contract.
func TestFaultRunsAreDeterministic(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Faults = []FaultEvent{
		{At: 8 * time.Second, Kind: FaultLinkDegrade, From: 1, To: 2, LossProb: 0.3},
		{At: 12 * time.Second, Kind: FaultLinkRestore, From: 1, To: 2},
		{At: 14 * time.Second, Kind: FaultNodeDown, Node: 1},
		{At: 18 * time.Second, Kind: FaultNodeUp, Node: 1},
	}
	cfgs := SeedSweep(cfg, 6)
	serial := make([]*Result, len(cfgs))
	for i, c := range cfgs {
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	parallel, err := RunMany(context.Background(), cfgs, RunManyOptions{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		assertIdenticalResults(t, fmt.Sprintf("seed %d", cfgs[i].Seed), serial[i], parallel[i])
	}
	if len(serial[0].FaultEvents) != 4 {
		t.Errorf("FaultEvents = %+v, want the 4 scheduled events", serial[0].FaultEvents)
	}
}

// TestCrashedRelayStarvesFlow is the acceptance scenario: on Fig3's
// chain 0-1-2-3, crashing relay 1 at the warmup boundary severs flow
// <0,3> (node 0's only neighbor is gone) and silences source 1, while
// <2,3> keeps its one-hop path. The measurement window is entirely
// post-crash, so the starved flows' delivery rates must be ~0.
func TestCrashedRelayStarvesFlow(t *testing.T) {
	cfg := Config{
		Scenario: Fig3Scenario(),
		Protocol: ProtocolGMP,
		Duration: 48 * time.Second,
		Warmup:   12 * time.Second,
		Faults:   []FaultEvent{{At: 12 * time.Second, Kind: FaultNodeDown, Node: 1}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[2].Rate <= 1 {
		t.Fatalf("surviving flow <2,3> rate %.2f pkt/s, expected healthy delivery", res.Flows[2].Rate)
	}
	for _, f := range []int{0, 1} {
		if res.Flows[f].Rate > 0.05*res.Flows[2].Rate {
			t.Errorf("flow %d rate %.2f pkt/s, expected starvation (survivor at %.2f)",
				f, res.Flows[f].Rate, res.Flows[2].Rate)
		}
	}
	// Flow <0,3>'s packets die at node 0 once no route exists.
	if res.Flows[0].DropsByReason[DropNoRoute] == 0 {
		t.Errorf("flow 0 drops %v, expected no-route drops after the crash", res.Flows[0].DropsByReason)
	}
	// Recovered measures re-convergence after the last fault, not
	// revival: settling into the degraded regime counts, so it may well
	// be true here — but only with a sane recovery duration.
	if res.Recovered && (res.RecoveryTime <= 0 || res.RecoveryTime > cfg.Duration) {
		t.Errorf("RecoveryTime = %v outside (0, %v]", res.RecoveryTime, cfg.Duration)
	}
}

// TestRerouteAroundCrashedRelay crashes relay 1 on the 2x3 grid at the
// warmup boundary: route repair must shift flow 0→2 onto the alternate
// path 0-3-4-5-2, keeping end-to-end delivery alive for the whole
// (entirely post-crash) measurement window.
func TestRerouteAroundCrashedRelay(t *testing.T) {
	cfg := Config{
		Scenario: gridWithFlow(t),
		Protocol: ProtocolGMP,
		Duration: 48 * time.Second,
		Warmup:   12 * time.Second,
		Faults:   []FaultEvent{{At: 12 * time.Second, Kind: FaultNodeDown, Node: 1}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Rate <= 1 {
		t.Fatalf("rerouted flow rate %.2f pkt/s: route repair did not keep the flow alive", res.Flows[0].Rate)
	}
	// Hops reports the initial (pre-fault) 2-hop route by design.
	if res.Flows[0].Hops != 2 {
		t.Errorf("initial hop count %d, want 2", res.Flows[0].Hops)
	}
}

// TestRecoveryAfterCrash crashes relay 1 mid-run and revives it: the
// trace must tag exactly the outage rounds with the down node, and the
// run must report re-convergence (RecoveryTime > 0) after the revival —
// the acceptance criterion for the recovery metric.
func TestRecoveryAfterCrash(t *testing.T) {
	const down, up = 25 * time.Second, 37 * time.Second
	cfg := Config{
		Scenario: gridWithFlow(t),
		Protocol: ProtocolGMP,
		Duration: 120 * time.Second,
		Warmup:   12 * time.Second,
		Faults: []FaultEvent{
			{At: down, Kind: FaultNodeDown, Node: 1},
			{At: up, Kind: FaultNodeUp, Node: 1},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
	for _, r := range res.Trace {
		inOutage := r.Time > down && r.Time < up
		switch {
		case inOutage && (len(r.DownNodes) != 1 || r.DownNodes[0] != 1):
			t.Errorf("round at %v: DownNodes = %v, want [1]", r.Time, r.DownNodes)
		case !inOutage && len(r.DownNodes) != 0:
			t.Errorf("round at %v: DownNodes = %v, want none", r.Time, r.DownNodes)
		}
	}
	if !res.Recovered {
		t.Fatal("run did not report recovery after the revival")
	}
	if res.RecoveryTime <= 0 || res.RecoveryTime > cfg.Duration-up {
		t.Errorf("RecoveryTime = %v outside (0, %v]", res.RecoveryTime, cfg.Duration-up)
	}
}

// TestGeographicRouteRepair runs the same crash with greedy geographic
// routing. On the faulted grid greedy routing from node 0 dead-ends
// (every neighbor is farther from the destination), so route repair
// must fall back to shortest-path tables — the GPSR-style fallback —
// and still deliver.
func TestGeographicRouteRepair(t *testing.T) {
	cfg := Config{
		Scenario:          gridWithFlow(t),
		Protocol:          ProtocolGMP,
		Duration:          48 * time.Second,
		Warmup:            12 * time.Second,
		GeographicRouting: true,
		Faults:            []FaultEvent{{At: 12 * time.Second, Kind: FaultNodeDown, Node: 1}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Rate <= 1 {
		t.Fatalf("flow rate %.2f pkt/s under geographic routing with a void: fallback repair failed", res.Flows[0].Rate)
	}
}

// TestConfigFaultsOverrideScenario pins the precedence rule: a
// scenario-carried schedule applies only when Config.Faults is empty.
func TestConfigFaultsOverrideScenario(t *testing.T) {
	sc := Fig3Scenario().WithFaults([]FaultEvent{{At: 14 * time.Second, Kind: FaultNodeDown, Node: 2}})
	cfg := shortCfg(sc)
	cfg.Faults = []FaultEvent{{At: 14 * time.Second, Kind: FaultNodeDown, Node: 1}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultEvents) != 1 || res.FaultEvents[0].Node != 1 {
		t.Errorf("applied schedule %+v, want the config override on node 1", res.FaultEvents)
	}

	cfg.Faults = nil
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultEvents) != 1 || res.FaultEvents[0].Node != 2 {
		t.Errorf("applied schedule %+v, want the scenario schedule on node 2", res.FaultEvents)
	}
}

// TestInvalidFaultScheduleRejected checks Config validation covers the
// fault schedule.
func TestInvalidFaultScheduleRejected(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	cfg.Faults = []FaultEvent{{At: time.Second, Kind: FaultNodeUp, Node: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("revive-while-up schedule accepted")
	}
	cfg.Faults = []FaultEvent{{At: time.Second, Kind: FaultNodeDown, Node: 99}}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range node accepted")
	}
}
