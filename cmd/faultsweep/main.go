// Command faultsweep measures GMP's resilience: it sweeps a fault
// intensity over repeated seeded simulations and reports the fairness
// indices, the maxmin floor, and the post-fault recovery time with
// Student-t 95% confidence half-widths, as CSV ready for plotting.
//
// Two fault modes share the intensity axis:
//
//   - churn: a relay node crashes at the warmup boundary and is revived
//     after intensity × (duration − warmup) / 2 of outage. Intensity 0
//     is the fault-free baseline; 1 keeps the node down for half the
//     measured session.
//   - loss: a loss episode of probability = intensity opens on one
//     directed link at the warmup boundary and closes after half the
//     measured session. Intensity 0 is again the baseline.
//
// Every run is deterministic: the fault engine draws no randomness, so
// rows depend only on (scenario, mode, intensity, seed).
//
// -churn-rate λ overlays a Poisson flow-churn workload (with optional
// admission control via -admit) on every run, measuring resilience when
// faults and flow dynamics compose; churn rows report min_rate over the
// static flows only and append admitted/rejected/shed CI95 columns.
//
// Usage:
//
//	faultsweep -scenario fig3 -mode churn -node 1 -intensities 0,0.25,0.5,1 -seeds 8
//	faultsweep -scenario grid23 -mode churn -node 1 -seeds 16 -out churn.csv
//	faultsweep -scenario fig3 -mode loss -from 1 -to 2 -intensities 0,0.2,0.4
//	faultsweep -scenario fig3 -mode churn -node 1 -churn-rate 0.5 -admit 40
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"gmp"
	"gmp/internal/prof"
	"gmp/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faultsweep", flag.ContinueOnError)
	pf := prof.Register(fs)
	scenarioName := fs.String("scenario", "fig3", "scenario: fig1|fig2|fig2w|fig3|fig4|grid23")
	mode := fs.String("mode", "churn", "fault mode: churn|loss")
	node := fs.Int("node", 1, "node to crash (churn mode)")
	from := fs.Int("from", 1, "degraded link source (loss mode)")
	to := fs.Int("to", 2, "degraded link destination (loss mode)")
	intensities := fs.String("intensities", "0,0.25,0.5,1", "comma-separated fault intensities in [0,1]")
	seeds := fs.Int("seeds", 5, "seeds per intensity")
	duration := fs.Duration("duration", 200*time.Second, "session length")
	warmup := fs.Duration("warmup", 40*time.Second, "warmup (faults start here)")
	parallel := fs.Int("parallel", 0, "concurrent simulations (0 = all CPUs, 1 = serial)")
	churnRate := fs.Float64("churn-rate", 0, "overlay Poisson flow churn at this arrival rate in flows/s (0 = off)")
	admitShare := fs.Float64("admit", 0, "churn admission control: minimum weighted per-flow share (pkt/s; 0 = admit everything)")
	out := fs.String("out", "", "CSV output path (default stdout)")
	telemetry := fs.String("telemetry", "", "record per-run telemetry; write one summary JSON line per run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := pf.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	sc, err := pickScenario(*scenarioName)
	if err != nil {
		return err
	}
	vals, err := parseIntensities(*intensities)
	if err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("need at least one seed")
	}
	if *warmup >= *duration {
		return fmt.Errorf("warmup %v must be shorter than duration %v", *warmup, *duration)
	}
	if *churnRate < 0 {
		return fmt.Errorf("negative churn rate %v", *churnRate)
	}
	if *admitShare != 0 && *churnRate == 0 {
		return fmt.Errorf("-admit requires -churn-rate")
	}

	var cfgs []gmp.Config
	for _, v := range vals {
		cfg := gmp.Config{
			Scenario: sc,
			Protocol: gmp.ProtocolGMP,
			Duration: *duration,
			Warmup:   *warmup,
		}
		cfg.Faults, err = schedule(*mode, v, *node, *from, *to, *warmup, *duration)
		if err != nil {
			return err
		}
		if *churnRate > 0 {
			cc := &gmp.ChurnConfig{
				Process:     gmp.ChurnPoisson,
				Rate:        *churnRate,
				Matrix:      gmp.ChurnRandom,
				MinSizePkts: 4000,
				MaxSizePkts: 40000,
			}
			if *admitShare > 0 {
				cc.Admission = &gmp.AdmissionParams{MinShare: *admitShare}
			}
			cfg.Churn = cc
		}
		if *telemetry != "" {
			cfg.Telemetry = &gmp.TelemetryConfig{}
		}
		cfgs = append(cfgs, gmp.SeedSweep(cfg, *seeds)...)
	}
	results, err := gmp.RunMany(context.Background(), cfgs, gmp.RunManyOptions{Workers: *parallel})
	if err != nil {
		return err
	}
	if *telemetry != "" {
		if err := writeTelemetrySummaries(*telemetry, *mode, vals, *seeds, results); err != nil {
			return err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "faultsweep: closing output:", cerr)
			}
		}()
		w = f
	}
	cw := csv.NewWriter(w)
	staticN := 0
	if *churnRate > 0 {
		staticN = len(sc.Flows)
	}
	if err := write(cw, sc.Name, *mode, vals, *seeds, staticN, results); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// schedule builds the fault schedule for one intensity. Intensity 0 is
// the fault-free baseline in both modes.
func schedule(mode string, intensity float64, node, from, to int, warmup, duration time.Duration) ([]gmp.FaultEvent, error) {
	if intensity < 0 || intensity > 1 {
		return nil, fmt.Errorf("intensity %v outside [0,1]", intensity)
	}
	if intensity == 0 {
		return nil, nil
	}
	window := time.Duration(intensity * 0.5 * float64(duration-warmup))
	switch mode {
	case "churn":
		return []gmp.FaultEvent{
			{At: warmup, Kind: gmp.FaultNodeDown, Node: gmp.NodeID(node)},
			{At: warmup + window, Kind: gmp.FaultNodeUp, Node: gmp.NodeID(node)},
		}, nil
	case "loss":
		// Loss probabilities live in (0,1); cap just below 1.
		p := intensity
		if p >= 1 {
			p = 0.99
		}
		return []gmp.FaultEvent{
			{At: warmup, Kind: gmp.FaultLinkDegrade, From: gmp.NodeID(from), To: gmp.NodeID(to), LossProb: p},
			{At: warmup + (duration-warmup)/2, Kind: gmp.FaultLinkRestore, From: gmp.NodeID(from), To: gmp.NodeID(to)},
		}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
}

// writeTelemetrySummaries emits one JSON line per run: the fault grid
// coordinates plus the run's telemetry summary.
func writeTelemetrySummaries(path, mode string, vals []float64, seeds int, results []*gmp.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for vi, v := range vals {
		for seed := 1; seed <= seeds; seed++ {
			res := results[vi*seeds+seed-1]
			if res == nil || res.Telemetry == nil {
				continue
			}
			line := struct {
				Mode      string               `json:"mode"`
				Intensity float64              `json:"intensity"`
				Seed      int                  `json:"seed"`
				Summary   gmp.TelemetrySummary `json:"summary"`
			}{mode, v, seed, res.Telemetry.Summarize()}
			if err := enc.Encode(line); err != nil {
				f.Close()
				return err
			}
		}
	}
	return f.Close()
}

// write emits one row per intensity: cross-seed means with 95% CI
// half-widths, plus the fraction of runs whose post-fault trace
// re-settled and the recovery time over those runs. Churn runs
// (staticN > 0) aggregate scalar-by-scalar instead of via gmp.Summarize
// — arrival counts differ between seeds, so the flow counts do too —
// take min_rate over the static prefix only, and append the admission
// counters.
func write(cw *csv.Writer, scenario, mode string, vals []float64, seeds, staticN int, results []*gmp.Result) error {
	header := []string{
		"scenario", "mode", "intensity", "seeds",
		"i_mm", "i_mm_ci95", "i_eq", "i_eq_ci95",
		"u_pps", "u_pps_ci95", "min_rate_pps", "min_rate_ci95",
		"recovered_frac", "recovery_s", "recovery_s_ci95",
	}
	if staticN > 0 {
		header = append(header,
			"arrivals", "arrivals_ci95", "admitted", "admitted_ci95",
			"rejected", "rejected_ci95", "shed", "shed_ci95")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for vi, v := range vals {
		batch := results[vi*seeds : (vi+1)*seeds]
		var rec []float64
		for _, res := range batch {
			if res != nil && res.Recovered {
				rec = append(rec, res.RecoveryTime.Seconds())
			}
		}
		recSum := stats.Summarize(rec)
		row := []string{
			scenario, mode,
			strconv.FormatFloat(v, 'g', -1, 64),
			strconv.Itoa(len(batch)),
		}
		if staticN == 0 {
			sum := gmp.Summarize(batch)
			row = append(row,
				fmt.Sprintf("%.4f", sum.Imm.Mean), fmt.Sprintf("%.4f", sum.Imm.CI95),
				fmt.Sprintf("%.4f", sum.Ieq.Mean), fmt.Sprintf("%.4f", sum.Ieq.CI95),
				fmt.Sprintf("%.2f", sum.U.Mean), fmt.Sprintf("%.2f", sum.U.CI95),
				fmt.Sprintf("%.2f", sum.MinRate.Mean), fmt.Sprintf("%.2f", sum.MinRate.CI95))
		} else {
			cols := make([][]float64, 4)
			for _, res := range batch {
				minRate := res.Rates[0]
				for _, r := range res.Rates[:staticN] {
					if r < minRate {
						minRate = r
					}
				}
				for j, x := range []float64{res.Imm, res.Ieq, res.U, minRate} {
					cols[j] = append(cols[j], x)
				}
			}
			prec := []string{"%.4f", "%.4f", "%.2f", "%.2f"}
			for j, xs := range cols {
				s := stats.Summarize(xs)
				row = append(row, fmt.Sprintf(prec[j], s.Mean), fmt.Sprintf(prec[j], s.CI95))
			}
		}
		row = append(row,
			fmt.Sprintf("%.2f", float64(len(rec))/float64(len(batch))),
			fmt.Sprintf("%.2f", recSum.Mean), fmt.Sprintf("%.2f", recSum.CI95))
		if staticN > 0 {
			churnCols := make([][]float64, 4)
			for _, res := range batch {
				c := res.Churn
				for j, x := range []float64{
					float64(c.Arrivals), float64(c.Admitted),
					float64(c.Rejected), float64(c.Shed),
				} {
					churnCols[j] = append(churnCols[j], x)
				}
			}
			for _, xs := range churnCols {
				s := stats.Summarize(xs)
				row = append(row, fmt.Sprintf("%.2f", s.Mean), fmt.Sprintf("%.2f", s.CI95))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func pickScenario(name string) (gmp.Scenario, error) {
	switch name {
	case "fig1":
		return gmp.Fig1Scenario(), nil
	case "fig2":
		return gmp.Fig2Scenario(), nil
	case "fig2w":
		return gmp.Fig2WeightedScenario(), nil
	case "fig3":
		return gmp.Fig3Scenario(), nil
	case "fig4":
		return gmp.Fig4Scenario(), nil
	case "grid23":
		// The 2x3 grid with flow 0→2: crashing node 1 leaves the
		// alternate path 0-3-4-5-2, so churn exercises route repair
		// rather than a partition.
		sc, err := gmp.GridScenario(2, 3, 200)
		if err != nil {
			return gmp.Scenario{}, err
		}
		return sc.WithFlows([][3]int{{0, 2, 1}}), nil
	default:
		return gmp.Scenario{}, fmt.Errorf("unknown scenario %q", name)
	}
}

func parseIntensities(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	vals := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad intensity %q: %w", p, err)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no intensities")
	}
	return vals, nil
}
