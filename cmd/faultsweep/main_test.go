package main

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func sweep(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fastArgs keeps the sim window small enough for a unit test while
// leaving room for a post-fault trace.
func fastArgs(extra ...string) []string {
	base := []string{"-duration", "48s", "-warmup", "12s", "-seeds", "2"}
	return append(base, extra...)
}

func TestChurnSweepOutput(t *testing.T) {
	out := sweep(t, fastArgs("-scenario", "fig3", "-mode", "churn", "-node", "1", "-intensities", "0,0.5")...)
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want header + 2 intensities:\n%s", len(rows), out)
	}
	if rows[0][0] != "scenario" || rows[0][len(rows[0])-1] != "recovery_s_ci95" {
		t.Errorf("header: %v", rows[0])
	}
	for _, row := range rows[1:] {
		if row[0] != "fig3" || row[1] != "churn" {
			t.Errorf("row labels: %v", row)
		}
		if row[3] != "2" {
			t.Errorf("seed count column: %v", row)
		}
		frac, err := strconv.ParseFloat(row[12], 64)
		if err != nil || frac < 0 || frac > 1 {
			t.Errorf("recovered_frac %q", row[12])
		}
	}
	// The baseline (intensity 0) must run fault-free and keep all flows
	// alive; the faulted row starves <0,3> during the outage, so its
	// maxmin floor cannot exceed the baseline's.
	base, err := strconv.ParseFloat(rows[1][10], 64)
	if err != nil || base <= 0 {
		t.Fatalf("baseline min rate %q", rows[1][10])
	}
	faulted, err := strconv.ParseFloat(rows[2][10], 64)
	if err != nil {
		t.Fatal(err)
	}
	if faulted > base {
		t.Errorf("min rate rose under churn: baseline %.2f, faulted %.2f", base, faulted)
	}
}

func TestLossSweepOutput(t *testing.T) {
	out := sweep(t, fastArgs("-mode", "loss", "-from", "1", "-to", "2", "-intensities", "0.4")...)
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1] != "loss" {
		t.Fatalf("rows: %v", rows)
	}
}

// TestSweepIsDeterministic reruns an identical sweep: the CSV must be
// byte-identical — the acceptance contract extended to the tool.
func TestSweepIsDeterministic(t *testing.T) {
	args := fastArgs("-mode", "churn", "-intensities", "0.5", "-parallel", "2")
	if a, b := sweep(t, args...), sweep(t, args...); a != b {
		t.Errorf("reruns differ:\n%s\n---\n%s", a, b)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scenario", "nope"},
		{"-mode", "meteor", "-intensities", "0.5"},
		{"-intensities", "2"},
		{"-intensities", "x"},
		{"-seeds", "0"},
		{"-duration", "10s", "-warmup", "20s"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
