package main

import (
	"fmt"
	"io"

	"gmp"
)

func printMACStats(stdout io.Writer, res *gmp.Result) {
	for i, s := range res.MAC {
		fmt.Fprintf(stdout, "node %d: rts=%d dataSent=%d acked=%d recv=%d dup=%d retries=%d drops=%d\n",
			i, s.RTSSent, s.DataSent, s.DataAcked, s.DataReceived, s.Duplicates, s.Retries, s.Drops)
	}
}
