package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenOutput pins the CLI's byte-exact output on short paper
// scenarios. Together with the library-level determinism gate this
// catches any behavioral drift introduced by performance work, all the
// way through the text and JSON renderers.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"fig2_gmp_text.golden", []string{
			"-scenario", "fig2", "-protocol", "gmp",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-trace"}},
		{"fig3_80211_json.golden", []string{
			"-scenario", "fig3", "-protocol", "802.11",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-json"}},
		{"fig4_2pp_json.golden", []string{
			"-scenario", "fig4", "-protocol", "2pp",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-json"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s (re-run with -update after intended changes):\n got: %q\nwant: %q",
					path, buf.String(), want)
			}
		})
	}
}
