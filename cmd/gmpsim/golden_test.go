package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenOutput pins the CLI's byte-exact output on short paper
// scenarios. Together with the library-level determinism gate this
// catches any behavioral drift introduced by performance work, all the
// way through the text and JSON renderers.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"fig2_gmp_text.golden", []string{
			"-scenario", "fig2", "-protocol", "gmp",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-trace"}},
		{"fig3_80211_json.golden", []string{
			"-scenario", "fig3", "-protocol", "802.11",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-json"}},
		{"fig4_2pp_json.golden", []string{
			"-scenario", "fig4", "-protocol", "2pp",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-json"}},
		{"fig2_gmp_why.golden", []string{
			"-scenario", "fig2", "-protocol", "gmp",
			"-duration", "60s", "-warmup", "30s", "-seed", "1", "-why", "1"}},
		{"fig3_80211_events.golden", []string{
			"-scenario", "fig3", "-protocol", "802.11",
			"-duration", "60s", "-warmup", "30s", "-seed", "1",
			"-events", "200", "-events-node", "1", "-events-kind", "rx"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, buf.Bytes())
		})
	}
}

// TestTelemetryGolden pins the JSONL telemetry export byte-for-byte:
// the schema and its determinism are part of the CLI contract.
func TestTelemetryGolden(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "telemetry.jsonl")
	var buf bytes.Buffer
	args := []string{
		"-scenario", "fig2", "-protocol", "gmp",
		"-duration", "60s", "-warmup", "30s", "-seed", "1",
		"-telemetry", tmp,
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2_gmp_telemetry.golden", got)
}

// TestSpanGolden pins the span JSONL export byte-for-byte through the
// CLI: the causal-trace schema and its determinism are part of the
// contract traceq and gmpd rely on.
func TestSpanGolden(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "spans.jsonl")
	var buf bytes.Buffer
	args := []string{
		"-scenario", "fig2", "-protocol", "gmp",
		"-duration", "20s", "-warmup", "10s", "-seed", "1",
		"-span", tmp, "-span-sample", "256",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2_gmp_spans.golden", got)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update after intended changes):\n got: %q\nwant: %q",
			path, got, want)
	}
}
