package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestParseProtocol(t *testing.T) {
	for name, want := range map[string]string{
		"gmp":       "GMP",
		"802.11":    "802.11",
		"80211":     "802.11",
		"dcf":       "802.11",
		"2pp":       "2PP",
		"bp":        "backpressure/per-dest",
		"bp-shared": "backpressure/shared",
	} {
		p, err := parseProtocol(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.String() != want {
			t.Errorf("%s -> %s, want %s", name, p, want)
		}
	}
	if _, err := parseProtocol("bogus"); err == nil {
		t.Error("bogus protocol accepted")
	}
}

func TestBuildScenario(t *testing.T) {
	for _, name := range []string{"fig1", "fig2", "fig2w", "fig3", "fig4", "chain", "mesh", "random", "city"} {
		sc, err := buildScenario(name, 10, 2, 3, 3, 4, 4, 200, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sc.Positions) == 0 || len(sc.Flows) == 0 {
			t.Errorf("%s: empty scenario", name)
		}
	}
	if _, err := buildScenario("bogus", 0, 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise the full CLI path, including scenario save + load.
	dir := t.TempDir()
	file := filepath.Join(dir, "sc.json")
	if err := run([]string{"-scenario", "fig3", "-save-scenario", file}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario-file", file, "-protocol", "802.11",
		"-duration", "2s", "-warmup", "1s", "-json"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-protocol", "bogus"}, io.Discard); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run([]string{"-scenario", "bogus"}, io.Discard); err == nil {
		t.Error("bad scenario accepted")
	}
	if err := run([]string{"-scenario-file", "/does/not/exist"}, io.Discard); err == nil {
		t.Error("missing scenario file accepted")
	}
}
