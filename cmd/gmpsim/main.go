// Command gmpsim runs one simulation scenario under a chosen protocol and
// prints per-flow end-to-end rates, fairness indices, and the centralized
// maxmin reference allocation.
//
// Usage:
//
//	gmpsim -scenario fig3 -protocol gmp -duration 400s
//	gmpsim -scenario fig2w -protocol gmp
//	gmpsim -scenario mesh -rows 4 -cols 4 -flows 6 -protocol gmp
//	gmpsim -scenario random -nodes 20 -flows 8 -protocol 802.11
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"gmp"
	"gmp/internal/prof"
	"gmp/internal/span"
	"gmp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gmpsim", flag.ContinueOnError)
	pf := prof.Register(fs)
	var (
		scenarioName = fs.String("scenario", "fig3", "scenario: fig1|fig2|fig2w|fig3|fig4|chain|mesh|random|city")
		scenarioFile = fs.String("scenario-file", "", "load the scenario from a JSON file instead")
		saveScenario = fs.String("save-scenario", "", "write the chosen scenario as JSON and exit")
		jsonOut      = fs.Bool("json", false, "print the result as JSON")
		events       = fs.Int("events", 0, "record and print the last N channel events")
		eventsNode   = fs.Int("events-node", -1, "only print -events rows involving this node")
		eventsKind   = fs.String("events-kind", "", "only print -events rows of this kind: tx|rx|col|drop")
		telemetry    = fs.String("telemetry", "", "record run telemetry and write it as JSONL to this file")
		spanOut      = fs.String("span", "", "record causal span traces and write them as JSONL to this file (query with traceq)")
		spanSample   = fs.Int("span-sample", 0, "span sampling stride: trace 1 in N packets per flow (0 = default 64)")
		why          = fs.Int("why", -1, "explain flow N's allocation from the telemetry condition timeline")
		inband       = fs.Bool("inband-control", false, "run link-state dissemination on the channel")
		fairAgg      = fs.Bool("fair-aggregation", false, "serve queues round-robin by packet origin")
		protocolName = fs.String("protocol", "gmp", "protocol: gmp|gmp-dist|802.11|2pp|bp|bp-shared")
		duration     = fs.Duration("duration", 400*time.Second, "simulated session length")
		warmup       = fs.Duration("warmup", 0, "measurement window start (default duration/2)")
		seed         = fs.Int64("seed", 1, "random seed")
		beta         = fs.Float64("beta", 0.10, "GMP equality tolerance / step size")
		period       = fs.Duration("period", 4*time.Second, "GMP measurement/adjustment period")
		omega        = fs.Float64("omega", 0.25, "buffer-saturation threshold")
		additive     = fs.Float64("additive", 4, "rate-limit probe step (pkt/s)")
		queueSlots   = fs.Int("queue", 10, "per-queue capacity in packets")
		lossProb     = fs.Float64("loss", 0, "injected frame loss probability")
		noRTS        = fs.Bool("no-rts", false, "disable the RTS/CTS handshake")
		traceRounds  = fs.Bool("trace", false, "print GMP adjustment-round trace")
		macStats     = fs.Bool("mac-stats", false, "print per-node MAC counters")
		nodes        = fs.Int("nodes", 20, "node count (random/city scenarios)")
		gateways     = fs.Int("gateways", 4, "gateway count (city scenario)")
		rows         = fs.Int("rows", 4, "grid rows (mesh scenario)")
		cols         = fs.Int("cols", 4, "grid cols (mesh scenario)")
		nflows       = fs.Int("flows", 6, "flow count (mesh/random scenarios)")
		length       = fs.Int("length", 5, "chain length in nodes (chain scenario)")
		spacing      = fs.Float64("spacing", 200, "node spacing in meters (chain/mesh)")
		mobModel     = fs.String("mobility", "", "move nodes during the run: random-waypoint|random-walk|group")
		mobEpoch     = fs.Duration("mob-epoch", time.Second, "mobility position-update interval")
		mobSpeedMin  = fs.Float64("mob-speed-min", 1, "minimum node speed (m/s)")
		mobSpeedMax  = fs.Float64("mob-speed-max", 10, "maximum node speed (m/s)")
		mobPause     = fs.Duration("mob-pause", 0, "random-waypoint pause at each waypoint")
		mobStart     = fs.Duration("mob-start", 0, "delay before motion begins")
		mobStop      = fs.Duration("mob-stop", 0, "time after which motion ceases (0 = never)")
		mobGroups    = fs.Int("mob-groups", 2, "group count (group model)")
		mobRadius    = fs.Float64("mob-radius", 100, "member offset radius in meters (group model)")
		mobPinned    = fs.String("mob-pinned", "", "comma-separated nodes that never move")
		churnProc    = fs.String("churn", "", "overlay a dynamic flow workload: poisson|diurnal")
		churnRate    = fs.Float64("churn-rate", 0.5, "churn mean arrival rate (flows/s)")
		churnStart   = fs.Duration("churn-start", 0, "delay before arrivals begin")
		churnStop    = fs.Duration("churn-stop", 0, "time after which arrivals cease (0 = whole run)")
		churnMinSize = fs.Int64("churn-min-size", 0, "bounded-Pareto minimum flow size in packets (0 = default)")
		churnMaxSize = fs.Int64("churn-max-size", 0, "bounded-Pareto maximum flow size in packets (0 = default)")
		churnAlpha   = fs.Float64("churn-alpha", 0, "bounded-Pareto tail exponent (0 = default 1.5)")
		churnMatrix  = fs.String("churn-matrix", "gateway", "churn traffic matrix: gateway|random")
		churnGateway = fs.Int("churn-gateway", 0, "gateway node for the gateway matrix")
		churnMax     = fs.Int("churn-max-flows", 0, "cap on scheduled arrivals (0 = default)")
		churnPeriod  = fs.Duration("churn-period", 0, "diurnal cycle period (diurnal process)")
		churnAmp     = fs.Float64("churn-amplitude", 0, "diurnal modulation depth in [0,1]")
		admitShare   = fs.Float64("admit", 0, "enable admission control: refuse arrivals that would push any clique's weighted min share below this rate (pkt/s)")
		admitRoom    = fs.Float64("admit-headroom", 0, "fraction of clique capacity admission may book (0 = default 1)")
		admitShed    = fs.Int("admit-shed-after", 0, "overload periods before the watchdog sheds the newest flow (0 = default 3)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := pf.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	var sc gmp.Scenario
	if *scenarioFile != "" {
		f, ferr := os.Open(*scenarioFile)
		if ferr != nil {
			return ferr
		}
		var lerr error
		sc, lerr = gmp.LoadScenario(f)
		if cerr := f.Close(); lerr == nil {
			lerr = cerr
		}
		if lerr != nil {
			return lerr
		}
	} else {
		var berr error
		sc, berr = buildScenario(*scenarioName, *nodes, *gateways, *rows, *cols, *nflows, *length, *spacing, *seed)
		if berr != nil {
			return berr
		}
	}
	if *saveScenario != "" {
		f, ferr := os.Create(*saveScenario)
		if ferr != nil {
			return ferr
		}
		if err := gmp.SaveScenario(f, sc); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	protocol, err := parseProtocol(*protocolName)
	if err != nil {
		return err
	}
	evKind, err := trace.ParseKind(*eventsKind)
	if err != nil {
		return err
	}
	if (*eventsNode >= 0 || evKind != 0) && *events <= 0 {
		return fmt.Errorf("-events-node/-events-kind require -events > 0")
	}
	var tcfg *gmp.TelemetryConfig
	if *telemetry != "" || *why >= 0 {
		tcfg = &gmp.TelemetryConfig{}
	}
	// -why also records spans so the explanation can cite per-hop
	// critical-path numbers, not just condition counts.
	var scfg *gmp.SpanConfig
	if *spanOut != "" || *spanSample > 0 || *why >= 0 {
		scfg = &gmp.SpanConfig{SampleEvery: *spanSample}
	}
	mob, err := buildMobility(*mobModel, *mobEpoch, *mobSpeedMin, *mobSpeedMax,
		*mobPause, *mobStart, *mobStop, *mobGroups, *mobRadius, *mobPinned)
	if err != nil {
		return err
	}
	churnCfg, err := buildChurn(*churnProc, *churnRate, *churnStart, *churnStop,
		*churnMinSize, *churnMaxSize, *churnAlpha, *churnMatrix, *churnGateway,
		*churnMax, *churnPeriod, *churnAmp, *admitShare, *admitRoom, *admitShed)
	if err != nil {
		return err
	}

	res, err := gmp.Run(gmp.Config{
		Scenario:         sc,
		Protocol:         protocol,
		Duration:         *duration,
		Warmup:           *warmup,
		Seed:             *seed,
		Beta:             *beta,
		Period:           *period,
		OmegaThreshold:   *omega,
		AdditiveIncrease: *additive,
		QueueSlots:       *queueSlots,
		LossProb:         *lossProb,
		DisableRTS:       *noRTS,
		EventTrace:       *events,
		InBandControl:    *inband,
		FairAggregation:  *fairAgg,
		Mobility:         mob,
		Churn:            churnCfg,
		Telemetry:        tcfg,
		Spans:            scfg,
	})
	if err != nil {
		return err
	}
	shownEvents := trace.Filter(res.Events, gmp.NodeID(*eventsNode), evKind)
	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, res.Telemetry); err != nil {
			return err
		}
	}
	if *spanOut != "" {
		if err := writeSpans(*spanOut, res.Spans); err != nil {
			return err
		}
	}
	if *jsonOut {
		return printJSON(stdout, res, shownEvents)
	}
	printResult(stdout, res, *traceRounds)
	if *macStats {
		printMACStats(stdout, res)
	}
	if *events > 0 {
		fmt.Fprintf(stdout, "\nlast %d channel events:\n", len(shownEvents))
		for _, e := range shownEvents {
			fmt.Fprintln(stdout, " ", e)
		}
	}
	if *why >= 0 {
		if err := printWhy(stdout, res, *why); err != nil {
			return err
		}
	}
	return nil
}

func writeTelemetry(path string, t *gmp.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if werr := t.WriteJSONL(f); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func writeSpans(path string, t *gmp.SpanTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if werr := t.WriteJSONL(f); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// jsonResult is the machine-readable output shape (rate limits use -1
// for "none" because JSON cannot carry +Inf).
type jsonResult struct {
	Scenario string      `json:"scenario"`
	Protocol string      `json:"protocol"`
	Flows    []jsonFlow  `json:"flows"`
	Imm      float64     `json:"i_mm"`
	Ieq      float64     `json:"i_eq"`
	U        float64     `json:"u_pps"`
	Channel  jsonChannel `json:"channel"`
	MAC      []jsonMAC   `json:"mac"`
	Events   []jsonEvent `json:"events,omitempty"`
	Churn    *jsonChurn  `json:"churn,omitempty"`
}

// jsonChurn is the dynamic-workload outcome (churn runs only).
type jsonChurn struct {
	Arrivals    int            `json:"arrivals"`
	Admitted    int            `json:"admitted"`
	Rejected    int            `json:"rejected"`
	Shed        int            `json:"shed"`
	StaleLimits int            `json:"stale_limits"`
	Decisions   []jsonDecision `json:"decisions"`
}

// jsonDecision is one admission event; TTFSNS is -1 when the flow was
// refused or its time to fair share was unmeasurable.
type jsonDecision struct {
	Flow     int    `json:"flow"`
	AtNS     int64  `json:"at_ns"`
	Admitted bool   `json:"admitted"`
	Reason   string `json:"reason,omitempty"`
	TTFSNS   int64  `json:"ttfs_ns"`
}

// jsonChannel summarizes the medium-level counters.
type jsonChannel struct {
	Transmissions  int64 `json:"transmissions"`
	Delivered      int64 `json:"delivered"`
	Corrupted      int64 `json:"corrupted"`
	InjectedLosses int64 `json:"injected_losses"`
	ControlFrames  int64 `json:"control_frames"`
}

// jsonMAC is one node's DCF counters.
type jsonMAC struct {
	Node     int   `json:"node"`
	RTSSent  int64 `json:"rts_sent"`
	DataSent int64 `json:"data_sent"`
	Acked    int64 `json:"acked"`
	Received int64 `json:"received"`
	Retries  int64 `json:"retries"`
	Drops    int64 `json:"drops"`
}

// jsonEvent is one recorded channel event (Config.EventTrace > 0 only).
type jsonEvent struct {
	AtNS   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Peer   int    `json:"peer"`
	Detail string `json:"detail"`
}

type jsonFlow struct {
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Weight    float64 `json:"weight"`
	Hops      int     `json:"hops"`
	Rate      float64 `json:"rate_pps"`
	NormRate  float64 `json:"normalized_rate"`
	Reference float64 `json:"reference_pps"`
	Limit     float64 `json:"limit_pps"`
	Delivered int64   `json:"delivered"`
	Dropped   int64   `json:"dropped"`
}

func printJSON(stdout io.Writer, res *gmp.Result, events []gmp.TraceEvent) error {
	out := jsonResult{
		Scenario: res.Scenario,
		Protocol: res.Protocol.String(),
		Imm:      res.Imm,
		Ieq:      res.Ieq,
		U:        res.U,
		Channel: jsonChannel{
			Transmissions:  res.Channel.Transmissions,
			Delivered:      res.Channel.Delivered,
			Corrupted:      res.Channel.Corrupted,
			InjectedLosses: res.Channel.InjectedLosses,
			ControlFrames:  res.Channel.ControlFrames,
		},
	}
	for node, s := range res.MAC {
		out.MAC = append(out.MAC, jsonMAC{
			Node: node, RTSSent: s.RTSSent, DataSent: s.DataSent,
			Acked: s.DataAcked, Received: s.DataReceived,
			Retries: s.Retries, Drops: s.Drops,
		})
	}
	for _, e := range events {
		out.Events = append(out.Events, jsonEvent{
			AtNS: int64(e.At), Kind: e.Kind.String(),
			Node: int(e.Node), Peer: int(e.Peer), Detail: e.Detail,
		})
	}
	if c := res.Churn; c != nil {
		jc := &jsonChurn{
			Arrivals: c.Arrivals, Admitted: c.Admitted,
			Rejected: c.Rejected, Shed: c.Shed, StaleLimits: c.StaleLimits,
		}
		for i, d := range c.Decisions {
			jc.Decisions = append(jc.Decisions, jsonDecision{
				Flow: int(d.Flow), AtNS: int64(d.At), Admitted: d.Admitted,
				Reason: d.Reason, TTFSNS: int64(c.TimeToFairShare[i]),
			})
		}
		out.Churn = jc
	}
	for i, f := range res.Flows {
		limit := -1.0
		if !math.IsInf(f.Limit, 1) {
			limit = f.Limit
		}
		out.Flows = append(out.Flows, jsonFlow{
			Src: int(f.Spec.Src), Dst: int(f.Spec.Dst), Weight: f.Spec.Weight,
			Hops: f.Hops, Rate: f.Rate, NormRate: f.NormRate,
			Reference: res.Reference[i], Limit: limit,
			Delivered: f.Delivered, Dropped: f.Dropped,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// buildChurn assembles the -churn-* and -admit-* flags into a
// ChurnConfig (nil when -churn is unset; scenario-file churn then
// applies). Zero-valued optional flags fall through to the package
// defaults.
func buildChurn(process string, rate float64, start, stop time.Duration,
	minSize, maxSize int64, alpha float64, matrix string, gateway, maxFlows int,
	period time.Duration, amplitude, admitShare, admitRoom float64, admitShed int) (*gmp.ChurnConfig, error) {
	if process == "" {
		if admitShare != 0 {
			return nil, fmt.Errorf("-admit requires -churn")
		}
		return nil, nil
	}
	p, err := gmp.ParseChurnProcess(process)
	if err != nil {
		return nil, err
	}
	m, err := gmp.ParseChurnMatrix(matrix)
	if err != nil {
		return nil, err
	}
	cfg := &gmp.ChurnConfig{
		Process:          p,
		Rate:             rate,
		Start:            start,
		Stop:             stop,
		DiurnalPeriod:    period,
		DiurnalAmplitude: amplitude,
		Alpha:            alpha,
		MinSizePkts:      minSize,
		MaxSizePkts:      maxSize,
		Matrix:           m,
		GatewayNode:      gmp.NodeID(gateway),
		MaxFlows:         maxFlows,
	}
	if admitShare != 0 {
		cfg.Admission = &gmp.AdmissionParams{
			MinShare:  admitShare,
			Headroom:  admitRoom,
			ShedAfter: admitShed,
		}
	}
	return cfg, nil
}

// buildMobility assembles the -mob-* flags into a MobilityConfig (nil
// when -mobility is unset; scenario-file mobility then applies). Field
// bounds are always derived from the node placement here; use a scenario
// file for explicit bounds.
func buildMobility(model string, epoch time.Duration, speedMin, speedMax float64,
	pause, start, stop time.Duration, groups int, radius float64, pinned string) (*gmp.MobilityConfig, error) {
	if model == "" {
		return nil, nil
	}
	m, err := gmp.ParseMobilityModel(model)
	if err != nil {
		return nil, err
	}
	cfg := &gmp.MobilityConfig{
		Model:    m,
		Epoch:    epoch,
		Start:    start,
		Stop:     stop,
		MinSpeed: speedMin,
		MaxSpeed: speedMax,
		Pause:    pause,
	}
	if m == gmp.MobilityGroup {
		cfg.Groups = groups
		cfg.GroupRadius = radius
	}
	for _, part := range strings.Split(pinned, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, perr := strconv.Atoi(part)
		if perr != nil {
			return nil, fmt.Errorf("-mob-pinned: %q is not a node", part)
		}
		cfg.Pinned = append(cfg.Pinned, gmp.NodeID(n))
	}
	return cfg, nil
}

func buildScenario(name string, nodes, gateways, rows, cols, nflows, length int, spacing float64, seed int64) (gmp.Scenario, error) {
	switch name {
	case "fig1":
		return gmp.Fig1Scenario(), nil
	case "fig2":
		return gmp.Fig2Scenario(), nil
	case "fig2w":
		return gmp.Fig2WeightedScenario(), nil
	case "fig3":
		return gmp.Fig3Scenario(), nil
	case "fig4":
		return gmp.Fig4Scenario(), nil
	case "chain":
		return gmp.ChainScenario(length, spacing)
	case "mesh":
		return gmp.MeshGatewayScenario(rows, cols, nflows, spacing, seed)
	case "random":
		return gmp.RandomScenario(nodes, nflows, 1000, 1000, seed)
	case "city":
		return gmp.CityScenario(nodes, gateways, nflows, spacing, seed)
	default:
		return gmp.Scenario{}, fmt.Errorf("unknown scenario %q", name)
	}
}

func parseProtocol(name string) (gmp.Protocol, error) {
	switch name {
	case "gmp":
		return gmp.ProtocolGMP, nil
	case "gmp-dist", "gmpd":
		return gmp.ProtocolGMPDistributed, nil
	case "802.11", "80211", "dcf":
		return gmp.Protocol80211, nil
	case "2pp":
		return gmp.Protocol2PP, nil
	case "bp":
		return gmp.ProtocolBackpressure, nil
	case "bp-shared":
		return gmp.ProtocolBackpressureShared, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}

func printResult(stdout io.Writer, res *gmp.Result, trace bool) {
	fmt.Fprintf(stdout, "scenario %s under %s\n\n", res.Scenario, res.Protocol)
	w := tabwriter.NewWriter(stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "flow\troute\tweight\thops\trate(pkt/s)\tnormalized\treference\tlimit\tdropped")
	for i, f := range res.Flows {
		limit := "-"
		if !math.IsInf(f.Limit, 1) {
			limit = fmt.Sprintf("%.1f", f.Limit)
		}
		fmt.Fprintf(w, "f%d\t%d->%d\t%g\t%d\t%.2f\t%.2f\t%.2f\t%s\t%d\n",
			i+1, f.Spec.Src, f.Spec.Dst, f.Spec.Weight, f.Hops,
			f.Rate, f.NormRate, res.Reference[i], limit, f.Dropped)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "gmpsim: flushing table:", err)
	}
	fmt.Fprintf(stdout, "\nU = %.2f pkt/s   I_mm = %.3f   I_eq = %.3f\n", res.U, res.Imm, res.Ieq)
	fmt.Fprintf(stdout, "channel: %d transmissions, %d corrupted deliveries\n",
		res.Channel.Transmissions, res.Channel.Corrupted)
	if res.Channel.ControlFrames > 0 {
		fmt.Fprintf(stdout, "control: %d broadcasts, %.2f%% of airtime\n",
			res.Channel.ControlFrames, 100*res.ControlOverhead)
	}
	if res.MobilityEpochs > 0 {
		fmt.Fprintf(stdout, "mobility: %d motion epochs\n", res.MobilityEpochs)
	}
	if c := res.Churn; c != nil {
		fmt.Fprintf(stdout, "churn: %d arrivals, %d admitted, %d rejected, %d shed\n",
			c.Arrivals, c.Admitted, c.Rejected, c.Shed)
		for i, d := range c.Decisions {
			verdict := "admitted"
			if !d.Admitted {
				verdict = "refused (" + d.Reason + ")"
			}
			ttfs := ""
			if c.TimeToFairShare[i] >= 0 {
				ttfs = fmt.Sprintf(", fair share after %s", c.TimeToFairShare[i].Round(time.Millisecond))
			}
			fmt.Fprintf(stdout, "  t=%6s flow %d %s%s\n",
				d.At.Round(time.Millisecond), d.Flow, verdict, ttfs)
		}
	}
	if trace && len(res.Trace) > 0 {
		fmt.Fprintln(stdout, "\nadjustment rounds (time, per-flow rates, requests):")
		for _, r := range res.Trace {
			fmt.Fprintf(stdout, "  t=%6s rates=%s requests=%d saturated=%d\n",
				r.Time, formatRates(r.Rates), r.Requests, r.SaturatedVNodes)
		}
	}
}

// printWhy explains one flow's allocation from the telemetry condition
// timeline: which of the paper's four local conditions fired for it,
// which one last forced it down, and how its rate limit moved.
func printWhy(stdout io.Writer, res *gmp.Result, flow int) error {
	t := res.Telemetry
	if t == nil {
		return fmt.Errorf("-why %d: run recorded no telemetry", flow)
	}
	if flow < 0 || flow >= len(res.Flows) {
		return fmt.Errorf("-why %d: flow index out of range [0,%d)", flow, len(res.Flows))
	}
	f := res.Flows[flow]
	id := gmp.FlowID(flow)
	fmt.Fprintf(stdout, "\nwhy flow %d (%d->%d):\n", flow, f.Spec.Src, f.Spec.Dst)
	limit := "none"
	if !math.IsInf(f.Limit, 1) {
		limit = fmt.Sprintf("%.2f pkt/s", f.Limit)
	}
	fmt.Fprintf(stdout, "  rate %.2f pkt/s, reference %.2f pkt/s, final limit %s\n",
		f.Rate, res.Reference[flow], limit)
	counts := t.FlowConditionCounts(id)
	fmt.Fprintf(stdout, "  condition events: source %d, buffer %d, bandwidth %d, rate-limit %d\n",
		counts[0], counts[1], counts[2], counts[3])
	if c := t.FinalBottleneck(id); c != 0 {
		for i := len(t.Conditions) - 1; i >= 0; i-- {
			ev := t.Conditions[i]
			if ev.Flow == id && ev.Reduce {
				fmt.Fprintf(stdout, "  final bottleneck: %s (node %d at t=%s, factor %.3f)\n",
					c, ev.Node, ev.At, ev.Factor)
				break
			}
		}
	} else {
		fmt.Fprintln(stdout, "  final bottleneck: none (the flow was never asked to reduce)")
	}
	changes, lastIdx := 0, -1
	for i, l := range t.Limits {
		if l.Flow == id {
			changes++
			lastIdx = i
		}
	}
	if changes > 0 {
		l := t.Limits[lastIdx]
		fmt.Fprintf(stdout, "  limit changes: %d (last: t=%s %s %s -> %s)\n",
			changes, l.At, l.Action, fmtLimit(l.Before), fmtLimit(l.After))
	} else {
		fmt.Fprintln(stdout, "  limit changes: none")
	}
	if fl := t.Flows[flow]; fl.Delivered > 0 {
		fmt.Fprintf(stdout, "  delivered %d packets: latency mean %s, p50 %s, p99 %s; %d MAC retries on route\n",
			fl.Delivered, fl.Latency.Mean(), fl.Latency.Quantile(0.5),
			fl.Latency.Quantile(0.99), fl.Retries)
	}
	if res.Spans != nil {
		printWhyHops(stdout, res.Spans, id)
	}
	return nil
}

// printWhyHops cites the span layer's per-hop evidence: where the flow's
// sampled delivered packets spent their end-to-end latency, averaged per
// hop, and which neighbors' transmissions deferred them.
func printWhyHops(stdout io.Writer, tr *gmp.SpanTrace, id gmp.FlowID) {
	type agg struct {
		node, next                       gmp.NodeID
		queue, backoff, defr, air, other time.Duration
		deferBy                          map[gmp.NodeID]time.Duration
		n                                int
	}
	var hops []*agg
	sampled := 0
	for _, p := range span.CriticalPaths(tr, id) {
		if p.Outcome != "delivered" {
			continue
		}
		sampled++
		for i, h := range p.Hops {
			if i >= len(hops) {
				hops = append(hops, &agg{node: h.Node, next: h.Next, deferBy: make(map[gmp.NodeID]time.Duration)})
			}
			a := hops[i]
			a.queue += h.Queue
			a.backoff += h.Backoff
			a.defr += h.Defer
			a.air += h.Airtime
			a.other += h.Other
			for peer, d := range h.DeferBy {
				a.deferBy[peer] += d
			}
			a.n++
		}
	}
	if sampled == 0 {
		fmt.Fprintln(stdout, "  spans: no sampled delivered packets (lower -span-sample for more)")
		return
	}
	fmt.Fprintf(stdout, "  per-hop latency over %d sampled packets (mean):\n", sampled)
	for _, a := range hops {
		div := time.Duration(a.n)
		fmt.Fprintf(stdout, "    %d→%d queue=%s backoff=%s defer=%s air=%s other=%s",
			a.node, a.next, (a.queue / div).Round(time.Microsecond),
			(a.backoff / div).Round(time.Microsecond), (a.defr / div).Round(time.Microsecond),
			(a.air / div).Round(time.Microsecond), (a.other / div).Round(time.Microsecond))
		var peers []int
		for peer := range a.deferBy {
			if peer >= 0 {
				peers = append(peers, int(peer))
			}
		}
		sort.Ints(peers)
		if len(peers) > 0 {
			fmt.Fprintf(stdout, "  deferred-by:")
			for _, peer := range peers {
				fmt.Fprintf(stdout, " node %d=%s", peer, (a.deferBy[gmp.NodeID(peer)] / div).Round(time.Microsecond))
			}
		}
		fmt.Fprintln(stdout)
	}
}

func fmtLimit(v float64) string {
	if v < 0 {
		return "none"
	}
	return fmt.Sprintf("%.2f", v)
}

func formatRates(rates []float64) string {
	s := "["
	for i, r := range rates {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.0f", r)
	}
	return s + "]"
}
