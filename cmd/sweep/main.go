// Command sweep runs a one-dimensional parameter sweep over repeated
// simulations and writes the results as CSV, ready for plotting. It
// automates the ablation studies listed in DESIGN.md.
//
// The whole value × seed grid executes through the parallel experiment
// runner (gmp.RunMany): -parallel sets the worker count (default all
// CPUs) and results are byte-identical whatever that count is. By
// default the CSV has one row per run; -ci aggregates the seeds of each
// parameter value into one row of mean and Student-t 95% confidence
// half-width columns.
//
// Usage:
//
//	sweep -scenario fig3 -param beta -values 0.05,0.1,0.2 -seeds 5
//	sweep -scenario fig4 -param additive -values 2,4,8 -out fig4_additive.csv
//	sweep -scenario fig3 -param loss -values 0,0.01,0.05 -protocol gmp
//	sweep -scenario fig3 -param beta -values 0.05,0.1 -seeds 16 -ci -parallel 8
//	sweep -scenario fig3 -mobility random-waypoint -param speed -values 1,5,10,20
//	sweep -scenario fig3 -churn poisson -admit 40 -param lambda -values 0.2,0.5,1,2 -ci
//
// Supported parameters: beta, period_s, additive, omega, queue, loss,
// with -mobility set — speed (pins both speed bounds to the value), and
// with -churn set — lambda (the churn arrival rate in flows/s; churn
// runs add admitted/rejected/shed columns and report min_rate over the
// static flows only, since refused arrivals deliver nothing by design).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"gmp"
	"gmp/internal/prof"
	"gmp/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	pf := prof.Register(fs)
	scenarioName := fs.String("scenario", "fig3", "scenario: fig1|fig2|fig2w|fig3|fig4")
	protocolName := fs.String("protocol", "gmp", "protocol: gmp|gmp-dist|802.11|2pp")
	param := fs.String("param", "beta", "parameter to sweep: beta|period_s|additive|omega|queue|loss|speed|lambda")
	mobModel := fs.String("mobility", "", "move nodes during every run: random-waypoint|random-walk|group")
	churnProc := fs.String("churn", "", "overlay a dynamic flow workload on every run: poisson|diurnal")
	admitShare := fs.Float64("admit", 0, "churn admission control: minimum weighted per-flow share (pkt/s; 0 = admit everything)")
	values := fs.String("values", "0.05,0.10,0.20", "comma-separated parameter values")
	seeds := fs.Int("seeds", 3, "seeds per value")
	duration := fs.Duration("duration", 400*time.Second, "session length")
	parallel := fs.Int("parallel", 0, "concurrent simulations (0 = all CPUs, 1 = serial)")
	ci := fs.Bool("ci", false, "aggregate seeds: one row per value with mean and 95% CI columns")
	timeout := fs.Duration("timeout", 0, "per-run wall-clock timeout (0 = none)")
	out := fs.String("out", "", "CSV output path (default stdout)")
	telemetry := fs.String("telemetry", "", "record per-run telemetry; write one summary JSON line per run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := pf.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	sc, err := pickScenario(*scenarioName)
	if err != nil {
		return err
	}
	protocol, err := pickProtocol(*protocolName)
	if err != nil {
		return err
	}
	vals, err := parseValues(*values)
	if err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("need at least one seed")
	}
	if *parallel < 0 {
		return fmt.Errorf("negative parallelism %d", *parallel)
	}

	mob, err := baseMobility(*mobModel)
	if err != nil {
		return err
	}
	if *param == "speed" && mob == nil {
		return fmt.Errorf("the speed parameter needs -mobility")
	}
	ch, err := baseChurn(*churnProc, *admitShare)
	if err != nil {
		return err
	}
	if *param == "lambda" && ch == nil {
		return fmt.Errorf("the lambda parameter needs -churn")
	}

	// Build the full value × seed grid, then fan it out in one batch so
	// the worker pool stays busy across value boundaries.
	var cfgs []gmp.Config
	for _, v := range vals {
		for seed := 1; seed <= *seeds; seed++ {
			cfg := gmp.Config{
				Scenario: sc,
				Protocol: protocol,
				Duration: *duration,
				Seed:     int64(seed),
			}
			if mob != nil {
				m := *mob
				cfg.Mobility = &m
			}
			if ch != nil {
				c := *ch
				if c.Admission != nil {
					a := *c.Admission
					c.Admission = &a
				}
				cfg.Churn = &c
			}
			if err := applyParam(&cfg, *param, v); err != nil {
				return err
			}
			if *telemetry != "" {
				cfg.Telemetry = &gmp.TelemetryConfig{}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := gmp.RunMany(context.Background(), cfgs, gmp.RunManyOptions{
		Workers: *parallel,
		Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	if *telemetry != "" {
		if err := writeTelemetrySummaries(*telemetry, *param, vals, *seeds, results); err != nil {
			return err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweep: closing output:", cerr)
			}
		}()
		w = f
	}
	cw := csv.NewWriter(w)
	staticN := 0
	if ch != nil {
		staticN = len(sc.Flows)
	}
	if *ci {
		err = writeAggregated(cw, sc.Name, protocol.String(), *param, vals, *seeds, staticN, results)
	} else {
		err = writePerRun(cw, sc.Name, protocol.String(), *param, vals, *seeds, staticN, results)
	}
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// writeTelemetrySummaries emits one JSON line per run: the sweep grid
// coordinates plus the run's telemetry summary (latency percentiles,
// condition counts, final bottleneck per flow).
func writeTelemetrySummaries(path, param string, vals []float64, seeds int, results []*gmp.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for vi, v := range vals {
		for seed := 1; seed <= seeds; seed++ {
			res := results[vi*seeds+seed-1]
			if res == nil || res.Telemetry == nil {
				continue
			}
			line := struct {
				Param   string               `json:"param"`
				Value   float64              `json:"value"`
				Seed    int                  `json:"seed"`
				Summary gmp.TelemetrySummary `json:"summary"`
			}{param, v, seed, res.Telemetry.Summarize()}
			if err := enc.Encode(line); err != nil {
				f.Close()
				return err
			}
		}
	}
	return f.Close()
}

// minRate returns the smallest end-of-run rate that the row should
// report. Static runs take the minimum over every flow; churn runs
// (staticN > 0) take it over the static prefix only — refused or
// departed arrivals deliver nothing by design and would always pin the
// column to zero.
func minRate(res *gmp.Result, staticN int) float64 {
	rates := res.Rates
	if staticN > 0 && staticN <= len(rates) {
		rates = rates[:staticN]
	}
	min := rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
	}
	return min
}

// writePerRun emits the historical one-row-per-run format. Churn runs
// (staticN > 0) append the admission counters to every row.
func writePerRun(cw *csv.Writer, scenario, protocol, param string, vals []float64, seeds, staticN int, results []*gmp.Result) error {
	header := []string{"scenario", "protocol", "param", "value", "seed", "i_mm", "i_eq", "u_pps", "min_rate_pps"}
	if staticN > 0 {
		header = append(header, "arrivals", "admitted", "rejected", "shed")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for vi, v := range vals {
		for seed := 1; seed <= seeds; seed++ {
			res := results[vi*seeds+seed-1]
			row := []string{
				scenario, protocol, param,
				strconv.FormatFloat(v, 'g', -1, 64),
				strconv.Itoa(seed),
				fmt.Sprintf("%.4f", res.Imm),
				fmt.Sprintf("%.4f", res.Ieq),
				fmt.Sprintf("%.2f", res.U),
				fmt.Sprintf("%.2f", minRate(res, staticN)),
			}
			if staticN > 0 {
				c := res.Churn
				row = append(row,
					strconv.Itoa(c.Arrivals), strconv.Itoa(c.Admitted),
					strconv.Itoa(c.Rejected), strconv.Itoa(c.Shed))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeAggregated emits one row per parameter value: across-seed means
// with Student-t 95% confidence half-widths. Static runs go through
// gmp.Summarize; churn runs aggregate scalar-by-scalar instead, because
// arrival counts (and therefore flow counts) differ between seeds.
func writeAggregated(cw *csv.Writer, scenario, protocol, param string, vals []float64, seeds, staticN int, results []*gmp.Result) error {
	header := []string{
		"scenario", "protocol", "param", "value", "seeds",
		"i_mm", "i_mm_ci95", "i_eq", "i_eq_ci95",
		"u_pps", "u_pps_ci95", "min_rate_pps", "min_rate_ci95",
	}
	if staticN > 0 {
		header = append(header,
			"arrivals", "arrivals_ci95", "admitted", "admitted_ci95",
			"rejected", "rejected_ci95", "shed", "shed_ci95")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for vi, v := range vals {
		block := results[vi*seeds : (vi+1)*seeds]
		row := []string{
			scenario, protocol, param,
			strconv.FormatFloat(v, 'g', -1, 64),
			strconv.Itoa(len(block)),
		}
		if staticN == 0 {
			sum := gmp.Summarize(block)
			row = append(row,
				fmt.Sprintf("%.4f", sum.Imm.Mean), fmt.Sprintf("%.4f", sum.Imm.CI95),
				fmt.Sprintf("%.4f", sum.Ieq.Mean), fmt.Sprintf("%.4f", sum.Ieq.CI95),
				fmt.Sprintf("%.2f", sum.U.Mean), fmt.Sprintf("%.2f", sum.U.CI95),
				fmt.Sprintf("%.2f", sum.MinRate.Mean), fmt.Sprintf("%.2f", sum.MinRate.CI95))
		} else {
			cols := make([][]float64, 8)
			for _, res := range block {
				c := res.Churn
				for j, x := range []float64{
					res.Imm, res.Ieq, res.U, minRate(res, staticN),
					float64(c.Arrivals), float64(c.Admitted),
					float64(c.Rejected), float64(c.Shed),
				} {
					cols[j] = append(cols[j], x)
				}
			}
			prec := []string{"%.4f", "%.4f", "%.2f", "%.2f", "%.2f", "%.2f", "%.2f", "%.2f"}
			for j, xs := range cols {
				s := stats.Summarize(xs)
				row = append(row, fmt.Sprintf(prec[j], s.Mean), fmt.Sprintf(prec[j], s.CI95))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func pickScenario(name string) (gmp.Scenario, error) {
	switch name {
	case "fig1":
		return gmp.Fig1Scenario(), nil
	case "fig2":
		return gmp.Fig2Scenario(), nil
	case "fig2w":
		return gmp.Fig2WeightedScenario(), nil
	case "fig3":
		return gmp.Fig3Scenario(), nil
	case "fig4":
		return gmp.Fig4Scenario(), nil
	default:
		return gmp.Scenario{}, fmt.Errorf("unknown scenario %q", name)
	}
}

func pickProtocol(name string) (gmp.Protocol, error) {
	switch name {
	case "gmp":
		return gmp.ProtocolGMP, nil
	case "gmp-dist":
		return gmp.ProtocolGMPDistributed, nil
	case "802.11":
		return gmp.Protocol80211, nil
	case "2pp":
		return gmp.Protocol2PP, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}

func parseValues(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	vals := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return vals, nil
}

func applyParam(cfg *gmp.Config, param string, v float64) error {
	switch param {
	case "beta":
		cfg.Beta = v
	case "period_s":
		cfg.Period = time.Duration(v * float64(time.Second))
	case "additive":
		cfg.AdditiveIncrease = v
	case "omega":
		cfg.OmegaThreshold = v
	case "queue":
		cfg.QueueSlots = int(v)
	case "loss":
		cfg.LossProb = v
	case "speed":
		// baseMobility guarantees cfg.Mobility is set on this path.
		cfg.Mobility.MinSpeed = v
		cfg.Mobility.MaxSpeed = v
	case "lambda":
		// baseChurn guarantees cfg.Churn is set on this path.
		cfg.Churn.Rate = v
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	return nil
}

// baseMobility returns the sweep's shared mobility template: the chosen
// model at a 2 s epoch with speeds 1-10 m/s (overridden per value by the
// speed parameter) on the placement-derived field.
func baseMobility(model string) (*gmp.MobilityConfig, error) {
	if model == "" {
		return nil, nil
	}
	m, err := gmp.ParseMobilityModel(model)
	if err != nil {
		return nil, err
	}
	cfg := &gmp.MobilityConfig{
		Model:    m,
		Epoch:    2 * time.Second,
		MinSpeed: 1,
		MaxSpeed: 10,
	}
	if m == gmp.MobilityGroup {
		cfg.Groups = 2
		cfg.GroupRadius = 100
	}
	return cfg, nil
}

// baseChurn returns the sweep's shared churn template: the chosen
// arrival process over random node pairs at λ = 0.5/s (overridden per
// value by the lambda parameter) with mid-sized bounded-Pareto flows,
// and optional admission control when -admit is set.
func baseChurn(process string, admitShare float64) (*gmp.ChurnConfig, error) {
	if process == "" {
		if admitShare != 0 {
			return nil, fmt.Errorf("-admit requires -churn")
		}
		return nil, nil
	}
	p, err := gmp.ParseChurnProcess(process)
	if err != nil {
		return nil, err
	}
	cfg := &gmp.ChurnConfig{
		Process:     p,
		Rate:        0.5,
		Matrix:      gmp.ChurnRandom,
		MinSizePkts: 4000,
		MaxSizePkts: 40000,
	}
	if admitShare > 0 {
		cfg.Admission = &gmp.AdmissionParams{MinShare: admitShare}
	}
	return cfg, nil
}
