package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepProducesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-scenario", "fig3", "-protocol", "802.11",
		"-param", "queue", "-values", "5,10",
		"-seeds", "2", "-duration", "4s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 values x 2 seeds.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,protocol,param,value,seed") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "fig3,802.11,queue,") {
			t.Errorf("row = %q", l)
		}
	}
}

func TestSweepWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.csv"
	err := run([]string{
		"-scenario", "fig3", "-protocol", "802.11",
		"-param", "loss", "-values", "0",
		"-seeds", "1", "-duration", "2s", "-out", path,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	args := func(parallel string) []string {
		return []string{
			"-scenario", "fig3", "-protocol", "gmp",
			"-param", "beta", "-values", "0.1,0.2",
			"-seeds", "2", "-duration", "8s", "-parallel", parallel,
		}
	}
	var serial, parallel bytes.Buffer
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(args("8"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel sweep CSV differs from serial:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
}

func TestSweepAggregatedCI(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-scenario", "fig3", "-protocol", "802.11",
		"-param", "queue", "-values", "5,10",
		"-seeds", "3", "-duration", "4s", "-ci",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + one aggregated row per value.
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,protocol,param,value,seeds,i_mm,i_mm_ci95") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		fields := strings.Split(l, ",")
		if len(fields) != 13 {
			t.Fatalf("row has %d fields, want 13: %q", len(fields), l)
		}
		if fields[4] != "3" {
			t.Errorf("seeds column = %q, want 3", fields[4])
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-scenario", "bogus"},
		{"-protocol", "bogus"},
		{"-param", "bogus", "-duration", "2s"},
		{"-values", "abc"},
		{"-seeds", "0"},
		{"-parallel", "-1"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
