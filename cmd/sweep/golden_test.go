package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenCSV pins the sweep's byte-exact CSV, run through the
// parallel executor: worker scheduling must not leak into the output,
// and the underlying simulations must stay bit-deterministic.
func TestGoldenCSV(t *testing.T) {
	args := []string{
		"-scenario", "fig3", "-protocol", "gmp",
		"-param", "beta", "-values", "0.05,0.10",
		"-seeds", "2", "-duration", "30s", "-parallel", "4",
	}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig3_beta_parallel.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("CSV differs from %s (re-run with -update after intended changes):\n got: %q\nwant: %q",
			path, buf.String(), want)
	}
}
