package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodSpans = `{"type":"meta","scenario":"s","protocol":"gmp","seed":1,"sample_every":64,"nodes":4,"flows":2,"duration_ns":1000}
{"type":"span","id":1,"parent":0,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10}
{"type":"limit","id":1,"at_ns":5,"flow":0,"action":"reduce","before":100,"after":90,"node":3,"cond_at_ns":4}
`

// A span stream whose second record breaks the schema (span id gap).
const badSpans = `{"type":"meta","scenario":"s","protocol":"gmp","seed":1,"sample_every":64,"nodes":4,"flows":2,"duration_ns":1000}
{"type":"span","id":2,"parent":0,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10}
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintSpanSchemaAutoDetect(t *testing.T) {
	good := write(t, "good.jsonl", goodSpans)
	if err := lint(good, "auto"); err != nil {
		t.Fatalf("valid span stream rejected under auto-detection: %v", err)
	}
	if err := lint(good, "spans"); err != nil {
		t.Fatalf("valid span stream rejected under forced schema: %v", err)
	}
	// Forcing the wrong schema must fail: telemetry has no span records.
	if err := lint(good, "telemetry"); err == nil {
		t.Fatal("span stream accepted by the telemetry schema")
	}
}

func TestLintRejectsMalformedSpans(t *testing.T) {
	bad := write(t, "bad.jsonl", badSpans)
	err := lint(bad, "auto")
	if err == nil {
		t.Fatal("malformed span stream accepted")
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("error %q does not name the malformed record", err)
	}
}

func TestLintMissingFile(t *testing.T) {
	if err := lint(filepath.Join(t.TempDir(), "nope.jsonl"), "auto"); err == nil {
		t.Fatal("missing file accepted")
	}
}
