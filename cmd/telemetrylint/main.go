// Command telemetrylint validates telemetry and span JSONL files
// against their schemas (obs.ValidateJSONL and span.ValidateJSONL, the
// schemas' executable definitions) and prints per-type record counts.
// CI runs it on freshly recorded streams so the exported artifacts are
// guaranteed to parse. It exits non-zero on the first malformed record.
//
// The schema is auto-detected per file: span streams open with a meta
// record carrying "sample_every", telemetry streams do not. Use -schema
// to force one.
//
// Usage:
//
//	telemetrylint fig3_gmp.jsonl fig3_gmp_spans.jsonl
//	telemetrylint -schema spans fig3_gmp_spans.jsonl
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"gmp/internal/obs"
	"gmp/internal/span"
)

var schemaFlag = flag.String("schema", "auto", "schema to validate against: auto, telemetry, or spans")

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: telemetrylint [-schema auto|telemetry|spans] file.jsonl [file.jsonl ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	switch *schemaFlag {
	case "auto", "telemetry", "spans":
	default:
		fmt.Fprintf(os.Stderr, "telemetrylint: unknown -schema %q\n", *schemaFlag)
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := lint(path, *schemaFlag); err != nil {
			fmt.Fprintf(os.Stderr, "telemetrylint: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lint(path, schema string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if schema == "auto" {
		br := bufio.NewReader(f)
		head, _ := br.Peek(4096)
		schema = "telemetry"
		if line, _, ok := bytes.Cut(head, []byte("\n")); (ok || len(line) > 0) && bytes.Contains(line, []byte(`"sample_every"`)) {
			schema = "spans"
		}
		r = br
	}
	var counts map[string]int
	if schema == "spans" {
		counts, err = span.ValidateJSONL(r)
	} else {
		counts, err = obs.ValidateJSONL(r)
	}
	if err != nil {
		return err
	}
	types := make([]string, 0, len(counts))
	for k := range counts {
		types = append(types, k)
	}
	sort.Strings(types)
	fmt.Printf("%s: ok (%s)", path, schema)
	for _, k := range types {
		fmt.Printf(" %s=%d", k, counts[k])
	}
	fmt.Println()
	return nil
}
