// Command telemetrylint validates telemetry JSONL files against the
// schema (obs.ValidateJSONL, the schema's executable definition) and
// prints per-type record counts. CI runs it on freshly recorded
// telemetry so the exported artifact is guaranteed to parse.
//
// Usage:
//
//	telemetrylint fig3_gmp.jsonl fig4_gmp.jsonl
package main

import (
	"fmt"
	"os"
	"sort"

	"gmp/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: telemetrylint file.jsonl [file.jsonl ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := lint(path); err != nil {
			fmt.Fprintf(os.Stderr, "telemetrylint: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	counts, err := obs.ValidateJSONL(f)
	if err != nil {
		return err
	}
	types := make([]string, 0, len(counts))
	for k := range counts {
		types = append(types, k)
	}
	sort.Strings(types)
	fmt.Printf("%s: ok", path)
	for _, k := range types {
		fmt.Printf(" %s=%d", k, counts[k])
	}
	fmt.Println()
	return nil
}
