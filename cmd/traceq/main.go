// Command traceq queries span JSONL recordings (gmpsim -span, gmpd
// /v1/jobs/{id}/spans): it reconstructs per-packet critical paths with
// per-hop latency breakdowns, aggregates where sampled packets waited,
// lists the provenance chain behind every §5.3 rate-limit change, and
// converts traces to Chrome trace-event JSON for Perfetto.
//
// Usage:
//
//	traceq critical-path [-flow N] [-verify] trace.jsonl
//	traceq top-waits [-n 10] trace.jsonl
//	traceq limit-chain [-flow N] trace.jsonl
//	traceq perfetto [-o out.json] [-check] trace.jsonl
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"gmp/internal/packet"
	"gmp/internal/span"
	"gmp/internal/topology"
)

func packetFlow(f int) packet.FlowID { return packet.FlowID(f) }

func usage() {
	fmt.Fprintln(os.Stderr, `usage: traceq <command> [flags] trace.jsonl
commands:
  critical-path  per-packet hop-by-hop latency breakdown (-flow N, -verify)
  top-waits      where sampled packets waited, aggregated by node (-n N)
  limit-chain    provenance of every rate-limit change (-flow N)
  perfetto       convert to Chrome trace-event JSON (-o file, -check)`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "critical-path":
		fs := flag.NewFlagSet("critical-path", flag.ExitOnError)
		flow := fs.Int("flow", -1, "restrict to one flow (-1 = all)")
		verify := fs.Bool("verify", false, "fail unless every delivered packet's breakdown sums exactly to its e2e latency")
		fs.Parse(os.Args[2:])
		err = withTrace(fs.Args(), func(t *span.Trace) error {
			return criticalPath(os.Stdout, t, *flow, *verify)
		})
	case "top-waits":
		fs := flag.NewFlagSet("top-waits", flag.ExitOnError)
		n := fs.Int("n", 10, "show the top N wait sites")
		fs.Parse(os.Args[2:])
		err = withTrace(fs.Args(), func(t *span.Trace) error {
			return topWaits(os.Stdout, t, *n)
		})
	case "limit-chain":
		fs := flag.NewFlagSet("limit-chain", flag.ExitOnError)
		flow := fs.Int("flow", -1, "restrict to one flow (-1 = all)")
		fs.Parse(os.Args[2:])
		err = withTrace(fs.Args(), func(t *span.Trace) error {
			return limitChain(os.Stdout, t, *flow)
		})
	case "perfetto":
		fs := flag.NewFlagSet("perfetto", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		check := fs.Bool("check", false, "verify the emitted JSON parses")
		fs.Parse(os.Args[2:])
		err = withTrace(fs.Args(), func(t *span.Trace) error {
			return perfetto(t, *out, *check)
		})
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceq: %v\n", err)
		os.Exit(1)
	}
}

func withTrace(args []string, fn func(*span.Trace) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one trace file, got %d args", len(args))
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	t, _, err := span.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	return fn(t)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// criticalPath prints every sampled packet's hop-by-hop breakdown. With
// verify it exits non-zero unless each delivered packet's hop windows
// tile its lifetime exactly, i.e. queue+backoff+defer+airtime+other sums
// to the recorded end-to-end latency with nothing unaccounted.
func criticalPath(w io.Writer, t *span.Trace, flow int, verify bool) error {
	paths := span.CriticalPaths(t, packetFlow(flow))
	if len(paths) == 0 {
		return fmt.Errorf("no sampled packets (flow filter %d)", flow)
	}
	inexact := 0
	for _, p := range paths {
		fmt.Fprintf(w, "flow %d seq %d: %s e2e=%.3fms", p.Flow, p.Seq, p.Outcome, ms(p.E2E))
		if p.Blocked > 0 {
			fmt.Fprintf(w, " (+%.3fms source-blocked)", ms(p.Blocked))
		}
		if p.Outcome == "delivered" && !p.Exact {
			inexact++
			fmt.Fprintf(w, " [inexact tiling]")
		}
		fmt.Fprintln(w)
		for _, h := range p.Hops {
			next := "·"
			if h.Next >= 0 {
				next = fmt.Sprintf("%d", h.Next)
			}
			fmt.Fprintf(w, "  %d→%s %8.3fms  queue=%.3f backoff=%.3f defer=%.3f air=%.3f other=%.3f",
				h.Node, next, ms(h.End-h.Start), ms(h.Queue), ms(h.Backoff), ms(h.Defer), ms(h.Airtime), ms(h.Other))
			if h.Retries > 0 {
				fmt.Fprintf(w, " retries=%d", h.Retries)
			}
			if len(h.DeferBy) > 0 {
				peers := make([]int, 0, len(h.DeferBy))
				for n := range h.DeferBy {
					peers = append(peers, int(n))
				}
				sort.Ints(peers)
				fmt.Fprintf(w, " deferred-by:")
				for _, n := range peers {
					who := fmt.Sprintf("node %d", n)
					if n < 0 {
						who = "nav/wait"
					}
					fmt.Fprintf(w, " %s=%.3fms", who, ms(h.DeferBy[topology.NodeID(n)]))
				}
			}
			fmt.Fprintln(w)
		}
	}
	if verify && inexact > 0 {
		return fmt.Errorf("%d of %d delivered packets have hop breakdowns that do not tile their e2e latency", inexact, len(paths))
	}
	return nil
}

func topWaits(w io.Writer, t *span.Trace, n int) error {
	waits := span.TopWaits(t)
	if len(waits) == 0 {
		return fmt.Errorf("no wait spans in trace")
	}
	if n > 0 && len(waits) > n {
		waits = waits[:n]
	}
	fmt.Fprintf(w, "%-6s %-8s %12s %8s %12s\n", "node", "kind", "total_ms", "count", "mean_us")
	for _, ws := range waits {
		mean := float64(ws.Total) / float64(ws.Count) / float64(time.Microsecond)
		fmt.Fprintf(w, "%-6d %-8s %12.3f %8d %12.1f\n", ws.Node, ws.Kind, ms(ws.Total), ws.Count, mean)
	}
	return nil
}

// limitChain prints each rate-limit change with the condition, clique,
// and occupancy figures the engine acted on.
func limitChain(w io.Writer, t *span.Trace, flow int) error {
	chain := span.LimitChain(t, packetFlow(flow))
	if len(chain) == 0 {
		return fmt.Errorf("no limit changes in trace (flow filter %d)", flow)
	}
	for _, l := range chain {
		fmt.Fprintf(w, "%10.3fms flow %d %-8s %s → %s", ms(l.At), l.Flow, l.Action, limitStr(l.Before), limitStr(l.After))
		if l.Cond != "" {
			fmt.Fprintf(w, "  ⇐ %s@node %d (%.3fms", l.Cond, l.Node, ms(l.CondAt))
			if l.Factor != 0 {
				fmt.Fprintf(w, ", ×%.2f", l.Factor)
			}
			fmt.Fprintf(w, ")")
		}
		if l.Clique != "" {
			fmt.Fprintf(w, " clique %s max_occ=%.3f occ=%v", l.Clique, l.MaxOcc, l.Occupancy)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func limitStr(v float64) string {
	if v < 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1fpps", v)
}

func perfetto(t *span.Trace, out string, check bool) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if !check {
		return t.WriteTraceEvent(w)
	}
	var b bytes.Buffer
	if err := t.WriteTraceEvent(&b); err != nil {
		return err
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		return fmt.Errorf("emitted trace-event JSON does not parse: %w", err)
	}
	if _, err := w.Write(b.Bytes()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "traceq: perfetto: %d events, JSON ok\n", len(events))
	return nil
}
