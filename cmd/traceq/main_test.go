package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	gmp "gmp"
	"gmp/internal/span"
)

// record runs a short Fig. 3 GMP simulation with aggressive sampling and
// writes its span stream to a temp file.
func record(t *testing.T) (string, *span.Trace) {
	t.Helper()
	res, err := gmp.Run(gmp.Config{
		Scenario: gmp.Fig3Scenario(),
		Protocol: gmp.ProtocolGMP,
		Duration: 30 * time.Second,
		Warmup:   15 * time.Second,
		Seed:     1,
		Spans:    &gmp.SpanConfig{SampleEvery: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Spans.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig3.jsonl")
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, res.Spans
}

func TestCriticalPathVerify(t *testing.T) {
	path, _ := record(t)
	err := withTrace([]string{path}, func(tr *span.Trace) error {
		var out bytes.Buffer
		if err := criticalPath(&out, tr, -1, true); err != nil {
			return err
		}
		s := out.String()
		if !strings.Contains(s, "delivered") {
			t.Fatalf("no delivered packets in output:\n%s", s)
		}
		if !strings.Contains(s, "queue=") || !strings.Contains(s, "defer=") {
			t.Fatalf("per-hop breakdown missing wait columns:\n%s", s)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("critical-path -verify failed (tiling broken): %v", err)
	}
}

func TestTopWaitsAndLimitChain(t *testing.T) {
	path, _ := record(t)
	err := withTrace([]string{path}, func(tr *span.Trace) error {
		var out bytes.Buffer
		if err := topWaits(&out, tr, 5); err != nil {
			return err
		}
		if lines := strings.Count(out.String(), "\n"); lines < 2 || lines > 6 {
			t.Fatalf("top-waits -n 5 printed %d lines:\n%s", lines, out.String())
		}
		out.Reset()
		if err := limitChain(&out, tr, -1); err != nil {
			return err
		}
		// GMP on Fig. 3 must reduce the chain flow via a bandwidth or
		// buffer condition somewhere in the run.
		if !strings.Contains(out.String(), "reduce") {
			t.Fatalf("limit chain has no reduce actions:\n%s", out.String())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerfettoCheck(t *testing.T) {
	path, _ := record(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	err := withTrace([]string{path}, func(tr *span.Trace) error {
		return perfetto(tr, out, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '[' {
		t.Fatal("perfetto output is not a JSON array")
	}
}

func TestWithTraceRejectsMalformed(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"type\":\"span\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := withTrace([]string{bad}, func(*span.Trace) error { return nil }); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
