package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func render(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update after intended changes):\n got: %q\nwant: %q",
			path, got, want)
	}
}

func TestGoldenFig2ASCII(t *testing.T) {
	checkGolden(t, "fig2_ascii.golden", render(t, "-scenario", "fig2"))
}

func TestGoldenFig2SVG(t *testing.T) {
	checkGolden(t, "fig2_svg.golden", render(t, "-scenario", "fig2", "-format", "svg"))
}

func TestGoldenFig3DownASCII(t *testing.T) {
	checkGolden(t, "fig3_down1_ascii.golden", render(t, "-scenario", "fig3", "-down", "1"))
}

func TestGoldenFig3DownSVG(t *testing.T) {
	checkGolden(t, "fig3_down1_svg.golden", render(t, "-scenario", "fig3", "-down", "1", "-format", "svg"))
}

func TestAllScenariosRender(t *testing.T) {
	for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "chain", "mesh"} {
		if out := render(t, "-scenario", name); !strings.Contains(out, "cliques") {
			t.Errorf("%s: missing clique section", name)
		}
	}
}

func TestDownRendering(t *testing.T) {
	out := render(t, "-scenario", "fig3", "-down", "1")
	if !strings.Contains(out, "#1") {
		t.Error("crashed node not marked on the canvas")
	}
	if !strings.Contains(out, "crashed nodes: 1") {
		t.Error("crashed-node summary missing")
	}
	// Node 0's only neighbor is 1, so f1 loses its route; f3 survives.
	if !strings.Contains(out, "f1: no route") {
		t.Errorf("expected f1 to lose its route:\n%s", out)
	}
	if !strings.Contains(out, "f3: 2 -> 3") {
		t.Errorf("expected f3 to survive:\n%s", out)
	}
	if strings.Contains(out, "maxmin reference") {
		t.Error("reference allocation printed despite crashed nodes")
	}
	// f2's source is the crashed node itself.
	if !strings.Contains(out, "f2: endpoint down") {
		t.Errorf("expected f2 flagged endpoint-down:\n%s", out)
	}
}

func TestSVGDownRendering(t *testing.T) {
	out := render(t, "-scenario", "fig3", "-down", "1", "-format", "svg")
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("links to the crashed node are not dashed")
	}
	if !strings.Contains(out, `stroke="#c33"`) {
		t.Error("crashed node not drawn in the fault color")
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-format", "png"},
		{"-scenario", "fig3", "-down", "9"},
		{"-scenario", "fig3", "-down", "x"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
