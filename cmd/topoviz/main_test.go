package main

import "testing"

func TestAllScenariosRender(t *testing.T) {
	for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "chain", "mesh"} {
		if err := run([]string{"-scenario", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRejectsUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "bogus"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}
