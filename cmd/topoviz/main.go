// Command topoviz renders a scenario's topology as ASCII art and prints
// its structural analysis: links, the contention graph, the proper
// contention cliques (with the paper's owner.seq identifiers), routing
// paths, dominating sets, and the water-filling reference allocation.
// It reproduces the structural content of the paper's Figures 1-4.
//
// Usage:
//
//	topoviz -scenario fig2
//	topoviz -scenario fig4 -width 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gmp"
	"gmp/internal/baseline"
	"gmp/internal/clique"
	"gmp/internal/maxminref"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/scenario"
	"gmp/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topoviz", flag.ContinueOnError)
	name := fs.String("scenario", "fig2", "scenario: fig1|fig2|fig3|fig4|chain|mesh")
	width := fs.Int("width", 78, "canvas width in characters")
	seed := fs.Int64("seed", 1, "seed (mesh scenario)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc gmp.Scenario
	switch *name {
	case "fig1":
		sc = gmp.Fig1Scenario()
	case "fig2":
		sc = gmp.Fig2Scenario()
	case "fig3":
		sc = gmp.Fig3Scenario()
	case "fig4":
		sc = gmp.Fig4Scenario()
	case "chain":
		var err error
		sc, err = gmp.ChainScenario(5, 200)
		if err != nil {
			return err
		}
	case "mesh":
		var err error
		sc, err = gmp.MeshGatewayScenario(4, 4, 6, 200, *seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario %q", *name)
	}

	topo, err := sc.Topology()
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s — %s\n\n", sc.Name, sc.Description)
	drawCanvas(sc, topo, *width)

	routes := routing.Build(topo)
	fmt.Println("\nflows:")
	for _, f := range sc.Flows {
		path, err := routes.Path(f.Src, f.Dst)
		if err != nil {
			return err
		}
		fmt.Printf("  f%d: %s  (weight %g, desire %g pkt/s)\n",
			f.ID+1, pathString(path), f.Weight, f.DesiredRate)
	}

	links := undirectedLinks(topo)
	fmt.Printf("\nwireless links (%d):\n  ", len(links))
	for i, l := range links {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Print(l)
	}
	fmt.Println()

	set := clique.Build(topo)
	fmt.Printf("\nproper contention cliques (%d):\n", len(set.All()))
	for _, c := range set.All() {
		parts := make([]string, len(c.Links))
		for i, l := range c.Links {
			parts[i] = l.String()
		}
		fmt.Printf("  clique %s: {%s}\n", c.ID, strings.Join(parts, ", "))
	}

	fmt.Println("\ndominating sets (for two-hop dissemination):")
	for _, n := range topo.Nodes() {
		ds := topo.DominatingSet(n)
		if len(ds) == 0 {
			continue
		}
		fmt.Printf("  node %d -> %v\n", n, ds)
	}

	par := radio.DefaultParams()
	capacity := par.SaturationRate(scenario.DefaultPacketBytes, true)
	refFlows := make([]maxminref.FlowSpec, len(sc.Flows))
	for i, f := range sc.Flows {
		refFlows[i] = maxminref.FlowSpec{Src: f.Src, Dst: f.Dst, Weight: f.Weight, Demand: f.DesiredRate}
	}
	problem, err := maxminref.BuildProblem(refFlows, routes, set, baseline.UniformCliqueCapacity(capacity))
	if err != nil {
		return err
	}
	ref, err := problem.Solve()
	if err != nil {
		return err
	}
	fmt.Printf("\nweighted maxmin reference (clique capacity %.0f pkt/s):\n", capacity)
	for i, r := range ref {
		fmt.Printf("  f%d: %8.2f pkt/s  (normalized %.2f)\n", i+1, r, r/sc.Flows[i].Weight)
	}
	return nil
}

func pathString(path []topology.NodeID) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, " -> ")
}

func undirectedLinks(topo *topology.Topology) []topology.Link {
	seen := make(map[topology.Link]bool)
	var out []topology.Link
	for _, l := range topo.Links() {
		u := l.Undirected()
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// drawCanvas scales node positions onto a character grid and overlays
// node IDs.
func drawCanvas(sc gmp.Scenario, topo *topology.Topology, width int) {
	minX, maxX := sc.Positions[0].X, sc.Positions[0].X
	minY, maxY := sc.Positions[0].Y, sc.Positions[0].Y
	for _, p := range sc.Positions {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	spanX := max(maxX-minX, 1)
	spanY := max(maxY-minY, 1)
	height := int(float64(width) * spanY / spanX / 2.2) // terminal cells are ~2.2x taller
	height = max(height, 1)

	grid := make([][]rune, height+1)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width+4))
	}
	for id, p := range sc.Positions {
		x := int(float64(width-1) * (p.X - minX) / spanX)
		y := int(float64(height) * (p.Y - minY) / spanY)
		label := fmt.Sprint(id)
		for k, r := range label {
			if x+k < len(grid[y]) {
				grid[y][x+k] = r
			}
		}
	}
	fmt.Printf("layout (%.0fx%.0f m, tx range %.0f m):\n", spanX, spanY, topo.Config().TxRange)
	for _, row := range grid {
		line := strings.TrimRight(string(row), " ")
		fmt.Println("  " + line)
	}
}
