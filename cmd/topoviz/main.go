// Command topoviz renders a scenario's topology as ASCII art or SVG and
// prints its structural analysis: links, the contention graph, the
// proper contention cliques (with the paper's owner.seq identifiers),
// routing paths, dominating sets, and the water-filling reference
// allocation. It reproduces the structural content of the paper's
// Figures 1-4.
//
// With -down the named nodes are rendered as crashed and routes are
// recomputed around them (the fault subsystem's route repair), showing
// which flows survive a failure; the reference allocation is omitted
// because severed flows have no path to price.
//
// Usage:
//
//	topoviz -scenario fig2
//	topoviz -scenario fig4 -width 100
//	topoviz -scenario fig3 -down 1
//	topoviz -scenario fig2 -format svg -out fig2.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gmp"
	"gmp/internal/baseline"
	"gmp/internal/clique"
	"gmp/internal/maxminref"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/scenario"
	"gmp/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topoviz", flag.ContinueOnError)
	name := fs.String("scenario", "fig2", "scenario: fig1|fig2|fig3|fig4|chain|mesh")
	width := fs.Int("width", 78, "canvas width in characters")
	seed := fs.Int64("seed", 1, "seed (mesh scenario)")
	downList := fs.String("down", "", "comma-separated crashed nodes to render and route around")
	format := fs.String("format", "ascii", "output format: ascii|svg")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc gmp.Scenario
	switch *name {
	case "fig1":
		sc = gmp.Fig1Scenario()
	case "fig2":
		sc = gmp.Fig2Scenario()
	case "fig3":
		sc = gmp.Fig3Scenario()
	case "fig4":
		sc = gmp.Fig4Scenario()
	case "chain":
		var err error
		sc, err = gmp.ChainScenario(5, 200)
		if err != nil {
			return err
		}
	case "mesh":
		var err error
		sc, err = gmp.MeshGatewayScenario(4, 4, 6, 200, *seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario %q", *name)
	}

	topo, err := sc.Topology()
	if err != nil {
		return err
	}
	down, err := parseDown(*downList, topo.NumNodes())
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "topoviz: closing output:", cerr)
			}
		}()
		w = f
	}

	switch *format {
	case "ascii":
		return renderText(w, sc, topo, down, *width)
	case "svg":
		return renderSVG(w, sc, topo, down)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// parseDown parses the -down list into a down mask (nil when empty).
func parseDown(s string, numNodes int) ([]bool, error) {
	if s == "" {
		return nil, nil
	}
	down := make([]bool, numNodes)
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node %q: %w", part, err)
		}
		if id < 0 || id >= numNodes {
			return nil, fmt.Errorf("node %d outside [0,%d)", id, numNodes)
		}
		down[id] = true
	}
	return down, nil
}

func isDown(down []bool, n topology.NodeID) bool { return down != nil && down[n] }

func renderText(w io.Writer, sc gmp.Scenario, topo *topology.Topology, down []bool, width int) error {
	fmt.Fprintf(w, "scenario %s — %s\n\n", sc.Name, sc.Description)
	drawCanvas(w, sc, topo, down, width)
	if down != nil {
		var ids []string
		for n := range down {
			if down[n] {
				ids = append(ids, fmt.Sprint(n))
			}
		}
		fmt.Fprintf(w, "\ncrashed nodes: %s (routes repaired around them)\n", strings.Join(ids, ", "))
	}

	routes := routing.BuildExcluding(topo, down)
	fmt.Fprintln(w, "\nflows:")
	for _, f := range sc.Flows {
		path, err := routes.Path(f.Src, f.Dst)
		switch {
		case isDown(down, f.Src) || isDown(down, f.Dst):
			fmt.Fprintf(w, "  f%d: endpoint down\n", f.ID+1)
		case err != nil:
			fmt.Fprintf(w, "  f%d: no route\n", f.ID+1)
		default:
			fmt.Fprintf(w, "  f%d: %s  (weight %g, desire %g pkt/s)\n",
				f.ID+1, pathString(path), f.Weight, f.DesiredRate)
		}
	}

	links := undirectedLinks(topo)
	fmt.Fprintf(w, "\nwireless links (%d):\n  ", len(links))
	for i, l := range links {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, l)
	}
	fmt.Fprintln(w)

	set := clique.Build(topo)
	fmt.Fprintf(w, "\nproper contention cliques (%d):\n", len(set.All()))
	for _, c := range set.All() {
		parts := make([]string, len(c.Links))
		for i, l := range c.Links {
			parts[i] = l.String()
		}
		fmt.Fprintf(w, "  clique %s: {%s}\n", c.ID, strings.Join(parts, ", "))
	}

	fmt.Fprintln(w, "\ndominating sets (for two-hop dissemination):")
	for _, n := range topo.Nodes() {
		ds := topo.DominatingSet(n)
		if len(ds) == 0 {
			continue
		}
		fmt.Fprintf(w, "  node %d -> %v\n", n, ds)
	}

	// The reference allocation prices every flow's path; with crashed
	// nodes some flows have none, so the section only applies intact.
	if down != nil {
		return nil
	}
	par := radio.DefaultParams()
	capacity := par.SaturationRate(scenario.DefaultPacketBytes, true)
	refFlows := make([]maxminref.FlowSpec, len(sc.Flows))
	for i, f := range sc.Flows {
		refFlows[i] = maxminref.FlowSpec{Src: f.Src, Dst: f.Dst, Weight: f.Weight, Demand: f.DesiredRate}
	}
	problem, err := maxminref.BuildProblem(refFlows, routes, set, baseline.UniformCliqueCapacity(capacity))
	if err != nil {
		return err
	}
	ref, err := problem.Solve()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nweighted maxmin reference (clique capacity %.0f pkt/s):\n", capacity)
	for i, r := range ref {
		fmt.Fprintf(w, "  f%d: %8.2f pkt/s  (normalized %.2f)\n", i+1, r, r/sc.Flows[i].Weight)
	}
	return nil
}

func pathString(path []topology.NodeID) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, " -> ")
}

func undirectedLinks(topo *topology.Topology) []topology.Link {
	seen := make(map[topology.Link]bool)
	var out []topology.Link
	for _, l := range topo.Links() {
		u := l.Undirected()
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// drawCanvas scales node positions onto a character grid and overlays
// node IDs. Crashed nodes render as #id.
func drawCanvas(w io.Writer, sc gmp.Scenario, topo *topology.Topology, down []bool, width int) {
	minX, maxX := sc.Positions[0].X, sc.Positions[0].X
	minY, maxY := sc.Positions[0].Y, sc.Positions[0].Y
	for _, p := range sc.Positions {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	spanX := max(maxX-minX, 1)
	spanY := max(maxY-minY, 1)
	height := int(float64(width) * spanY / spanX / 2.2) // terminal cells are ~2.2x taller
	height = max(height, 1)

	grid := make([][]rune, height+1)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width+4))
	}
	for id, p := range sc.Positions {
		x := int(float64(width-1) * (p.X - minX) / spanX)
		y := int(float64(height) * (p.Y - minY) / spanY)
		label := fmt.Sprint(id)
		if isDown(down, topology.NodeID(id)) {
			label = "#" + label
		}
		for k, r := range label {
			if x+k < len(grid[y]) {
				grid[y][x+k] = r
			}
		}
	}
	fmt.Fprintf(w, "layout (%.0fx%.0f m, tx range %.0f m):\n", spanX, spanY, topo.Config().TxRange)
	for _, row := range grid {
		line := strings.TrimRight(string(row), " ")
		fmt.Fprintln(w, "  "+line)
	}
}

// renderSVG draws the topology: links as gray lines (dashed when an
// endpoint is crashed), repaired flow paths as green overlays, live
// nodes as filled circles, and crashed nodes as red crossed circles.
func renderSVG(w io.Writer, sc gmp.Scenario, topo *topology.Topology, down []bool) error {
	const pad, scale, r = 40.0, 0.5, 12.0
	minX, maxX := sc.Positions[0].X, sc.Positions[0].X
	minY, maxY := sc.Positions[0].Y, sc.Positions[0].Y
	for _, p := range sc.Positions {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	px := func(x float64) float64 { return pad + (x-minX)*scale }
	py := func(y float64) float64 { return pad + (y-minY)*scale }
	width := px(maxX) + pad
	height := py(maxY) + pad

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, "  <title>%s</title>\n", sc.Name)

	for _, l := range undirectedLinks(topo) {
		a, b := sc.Positions[l.From], sc.Positions[l.To]
		style := `stroke="#999" stroke-width="1.5"`
		if isDown(down, l.From) || isDown(down, l.To) {
			style = `stroke="#ddd" stroke-width="1.5" stroke-dasharray="4 3"`
		}
		fmt.Fprintf(w, `  <line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" %s/>`+"\n",
			px(a.X), py(a.Y), px(b.X), py(b.Y), style)
	}

	routes := routing.BuildExcluding(topo, down)
	for _, f := range sc.Flows {
		if isDown(down, f.Src) || isDown(down, f.Dst) {
			continue
		}
		path, err := routes.Path(f.Src, f.Dst)
		if err != nil {
			continue
		}
		for i := 0; i+1 < len(path); i++ {
			a, b := sc.Positions[path[i]], sc.Positions[path[i+1]]
			fmt.Fprintf(w, `  <line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#2a7" stroke-width="2.5" opacity="0.6"/>`+"\n",
				px(a.X), py(a.Y), px(b.X), py(b.Y))
		}
	}

	for id, p := range sc.Positions {
		x, y := px(p.X), py(p.Y)
		if isDown(down, topology.NodeID(id)) {
			fmt.Fprintf(w, `  <circle cx="%.1f" cy="%.1f" r="%.0f" fill="#fff" stroke="#c33" stroke-width="2"/>`+"\n", x, y, r)
			d := r * 0.7071
			fmt.Fprintf(w, `  <line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#c33" stroke-width="2"/>`+"\n",
				x-d, y-d, x+d, y+d)
			fmt.Fprintf(w, `  <line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#c33" stroke-width="2"/>`+"\n",
				x-d, y+d, x+d, y-d)
			fmt.Fprintf(w, `  <text x="%.1f" y="%.1f" text-anchor="middle" font-size="11" fill="#c33">%d</text>`+"\n",
				x, y+r+12, id)
		} else {
			fmt.Fprintf(w, `  <circle cx="%.1f" cy="%.1f" r="%.0f" fill="#369" stroke="#134" stroke-width="1.5"/>`+"\n", x, y, r)
			fmt.Fprintf(w, `  <text x="%.1f" y="%.1f" text-anchor="middle" font-size="11" fill="#fff">%d</text>`+"\n",
				x, y+4, id)
		}
	}
	fmt.Fprintln(w, "</svg>")
	return nil
}
