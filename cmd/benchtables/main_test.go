package main

import "testing"

func TestTablesRunShort(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration")
	}
	// A short session exercises every code path of all four tables.
	if err := run([]string{"-duration", "4s", "-seeds", "2", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-seeds", "0"}); err == nil {
		t.Error("zero seeds accepted")
	}
	if err := run([]string{"-parallel", "-2"}); err == nil {
		t.Error("negative parallelism accepted")
	}
}
