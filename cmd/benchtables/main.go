// Command benchtables regenerates every table of the paper's evaluation
// (§7) and prints the reproduction side by side with the published
// values. Absolute packet rates differ (our PHY constants are not the
// authors'); the point of comparison is the shape: who wins, by what
// factor, and how the fairness indices order the protocols.
//
// Usage:
//
//	benchtables             # all tables
//	benchtables -table 3    # only Table 3
//	benchtables -duration 100s -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"gmp"
	"gmp/internal/paperdata"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1-4; 0 = all)")
	duration := fs.Duration("duration", 400*time.Second, "simulated session length")
	seeds := fs.Int("seeds", 1, "number of seeds to average over")
	parallel := fs.Int("parallel", 0, "concurrent simulations (0 = all CPUs, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("need at least one seed, got %d", *seeds)
	}
	if *parallel < 0 {
		return fmt.Errorf("negative parallelism %d", *parallel)
	}
	opts := options{duration: *duration, seeds: *seeds, workers: *parallel}

	runs := []struct {
		id int
		fn func(options) error
	}{
		{1, table1}, {2, table2}, {3, table3}, {4, table4},
	}
	for _, r := range runs {
		if *table != 0 && *table != r.id {
			continue
		}
		if err := r.fn(opts); err != nil {
			return fmt.Errorf("table %d: %w", r.id, err)
		}
	}
	return nil
}

// options carries the shared run parameters to the table generators.
type options struct {
	duration time.Duration
	seeds    int
	workers  int
}

// runSeeds executes the scenario under one protocol for seeds 1..N
// through the parallel experiment runner and aggregates the cross-seed
// statistics (Student-t 95% confidence half-widths).
func runSeeds(sc gmp.Scenario, p gmp.Protocol, o options) (*gmp.SweepSummary, error) {
	cfgs := gmp.SeedSweep(gmp.Config{Scenario: sc, Protocol: p, Duration: o.duration}, o.seeds)
	results, err := gmp.RunMany(context.Background(), cfgs, gmp.RunManyOptions{Workers: o.workers})
	if err != nil {
		return nil, err
	}
	sum := gmp.Summarize(results)
	return &sum, nil
}

func withCI(mean, ci float64) string {
	if ci == 0 {
		return fmt.Sprintf("%.3f", mean)
	}
	return fmt.Sprintf("%.3f±%.3f", mean, ci)
}

func table1(o options) error {
	fmt.Println("Table 1 — GMP on the Figure 2 topology, unit weights")
	sc := gmp.Fig2Scenario()
	agg, err := runSeeds(sc, gmp.ProtocolGMP, o)
	if err != nil {
		return err
	}
	ref, err := gmp.Run(gmp.Config{Scenario: sc, Protocol: gmp.ProtocolGMP,
		Duration: time.Second, Warmup: time.Second / 2})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "flow\tpaper(pkt/s)\tmeasured(pkt/s)\treference(water-filling)")
	for i, name := range paperdata.Table1.Flows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n",
			name, paperdata.Table1.Rates[i], agg.FlowRates[i].Mean, ref.Reference[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("shape: paper f1/f2 = %.2f, measured f1/f2 = %.2f\n\n",
		paperdata.Table1.Rates[0]/paperdata.Table1.Rates[1],
		agg.FlowRates[0].Mean/agg.FlowRates[1].Mean)
	return nil
}

func table2(o options) error {
	fmt.Println("Table 2 — weighted maxmin on Figure 2, weights (1,2,1,3)")
	agg, err := runSeeds(gmp.Fig2WeightedScenario(), gmp.ProtocolGMP, o)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "flow\tweight\tpaper(pkt/s)\tmeasured(pkt/s)\tmeasured normalized")
	for i, name := range paperdata.Table2.Flows {
		fmt.Fprintf(w, "%s\t%g\t%.2f\t%.2f\t%.2f\n",
			name, paperdata.Table2.Weights[i], paperdata.Table2.Rates[i],
			agg.FlowRates[i].Mean, agg.FlowNormRates[i].Mean)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("shape: clique-1 rates should split ~2:1:3 (measured %.0f:%.0f:%.0f)\n\n",
		agg.FlowRates[1].Mean, agg.FlowRates[2].Mean, agg.FlowRates[3].Mean)
	return nil
}

func comparisonTable(title string, sc gmp.Scenario, paper struct {
	Flows     []string
	Protocols map[string]paperdata.ProtocolRow
}, o options) error {
	fmt.Println(title)
	protocols := []struct {
		name string
		p    gmp.Protocol
	}{
		{"802.11", gmp.Protocol80211},
		{"2PP", gmp.Protocol2PP},
		{"GMP", gmp.ProtocolGMP},
	}
	results := make(map[string]*gmp.SweepSummary, len(protocols))
	for _, pr := range protocols {
		agg, err := runSeeds(sc, pr.p, o)
		if err != nil {
			return err
		}
		results[pr.name] = agg
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprint(w, "flow")
	for _, pr := range protocols {
		fmt.Fprintf(w, "\t%s paper\t%s meas.", pr.name, pr.name)
	}
	fmt.Fprintln(w)
	for i, name := range paper.Flows {
		fmt.Fprint(w, name)
		for _, pr := range protocols {
			fmt.Fprintf(w, "\t%.2f\t%.2f", paper.Protocols[pr.name].Rates[i], results[pr.name].FlowRates[i].Mean)
		}
		fmt.Fprintln(w)
	}
	for _, row := range []struct {
		label string
		paper func(paperdata.ProtocolRow) float64
		meas  func(*gmp.SweepSummary) string
	}{
		{"U", func(r paperdata.ProtocolRow) float64 { return r.U },
			func(a *gmp.SweepSummary) string { return withCI(a.U.Mean, a.U.CI95) }},
		{"I_mm", func(r paperdata.ProtocolRow) float64 { return r.Imm },
			func(a *gmp.SweepSummary) string { return withCI(a.Imm.Mean, a.Imm.CI95) }},
		{"I_eq", func(r paperdata.ProtocolRow) float64 { return r.Ieq },
			func(a *gmp.SweepSummary) string { return withCI(a.Ieq.Mean, a.Ieq.CI95) }},
	} {
		fmt.Fprint(w, row.label)
		for _, pr := range protocols {
			fmt.Fprintf(w, "\t%.3f\t%s", row.paper(paper.Protocols[pr.name]), row.meas(results[pr.name]))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func table3(o options) error {
	return comparisonTable(
		"Table 3 — Figure 3 three-link chain: 802.11 vs 2PP vs GMP",
		gmp.Fig3Scenario(), paperdata.Table3, o)
}

func table4(o options) error {
	return comparisonTable(
		"Table 4 — Figure 4 four-cell topology: 802.11 vs 2PP vs GMP",
		gmp.Fig4Scenario(), paperdata.Table4, o)
}
