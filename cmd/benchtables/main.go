// Command benchtables regenerates every table of the paper's evaluation
// (§7) and prints the reproduction side by side with the published
// values. Absolute packet rates differ (our PHY constants are not the
// authors'); the point of comparison is the shape: who wins, by what
// factor, and how the fairness indices order the protocols.
//
// Usage:
//
//	benchtables             # all tables
//	benchtables -table 3    # only Table 3
//	benchtables -duration 100s -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"gmp"
	"gmp/internal/paperdata"
	"gmp/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1-4; 0 = all)")
	duration := fs.Duration("duration", 400*time.Second, "simulated session length")
	seeds := fs.Int("seeds", 1, "number of seeds to average over")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("need at least one seed, got %d", *seeds)
	}

	runs := []struct {
		id int
		fn func(time.Duration, int) error
	}{
		{1, table1}, {2, table2}, {3, table3}, {4, table4},
	}
	for _, r := range runs {
		if *table != 0 && *table != r.id {
			continue
		}
		if err := r.fn(*duration, *seeds); err != nil {
			return fmt.Errorf("table %d: %w", r.id, err)
		}
	}
	return nil
}

// aggregate holds per-flow mean rates plus mean and spread of the
// summary metrics over the seeds.
type aggregate struct {
	rates     []float64 // per-flow means
	normRates []float64 // per-flow normalized-rate means
	u, uCI    float64
	imm       float64
	immCI     float64
	ieq       float64
	ieqCI     float64
}

// runSeeds executes the scenario under one protocol for each seed
// 1..seeds and aggregates.
func runSeeds(sc gmp.Scenario, p gmp.Protocol, duration time.Duration, seeds int) (*aggregate, error) {
	n := len(sc.Flows)
	perFlow := make([][]float64, n)
	perNorm := make([][]float64, n)
	var us, imms, ieqs []float64
	for s := 1; s <= seeds; s++ {
		res, err := gmp.Run(gmp.Config{Scenario: sc, Protocol: p, Duration: duration, Seed: int64(s)})
		if err != nil {
			return nil, err
		}
		for i, r := range res.Rates {
			perFlow[i] = append(perFlow[i], r)
			perNorm[i] = append(perNorm[i], res.Flows[i].NormRate)
		}
		us = append(us, res.U)
		imms = append(imms, res.Imm)
		ieqs = append(ieqs, res.Ieq)
	}
	agg := &aggregate{
		u: stats.Mean(us), uCI: stats.CI95(us),
		imm: stats.Mean(imms), immCI: stats.CI95(imms),
		ieq: stats.Mean(ieqs), ieqCI: stats.CI95(ieqs),
	}
	for i := 0; i < n; i++ {
		agg.rates = append(agg.rates, stats.Mean(perFlow[i]))
		agg.normRates = append(agg.normRates, stats.Mean(perNorm[i]))
	}
	return agg, nil
}

func withCI(mean, ci float64) string {
	if ci == 0 {
		return fmt.Sprintf("%.3f", mean)
	}
	return fmt.Sprintf("%.3f±%.3f", mean, ci)
}

func table1(duration time.Duration, seeds int) error {
	fmt.Println("Table 1 — GMP on the Figure 2 topology, unit weights")
	sc := gmp.Fig2Scenario()
	agg, err := runSeeds(sc, gmp.ProtocolGMP, duration, seeds)
	if err != nil {
		return err
	}
	ref, err := gmp.Run(gmp.Config{Scenario: sc, Protocol: gmp.ProtocolGMP,
		Duration: time.Second, Warmup: time.Second / 2})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "flow\tpaper(pkt/s)\tmeasured(pkt/s)\treference(water-filling)")
	for i, name := range paperdata.Table1.Flows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n",
			name, paperdata.Table1.Rates[i], agg.rates[i], ref.Reference[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("shape: paper f1/f2 = %.2f, measured f1/f2 = %.2f\n\n",
		paperdata.Table1.Rates[0]/paperdata.Table1.Rates[1], agg.rates[0]/agg.rates[1])
	return nil
}

func table2(duration time.Duration, seeds int) error {
	fmt.Println("Table 2 — weighted maxmin on Figure 2, weights (1,2,1,3)")
	agg, err := runSeeds(gmp.Fig2WeightedScenario(), gmp.ProtocolGMP, duration, seeds)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "flow\tweight\tpaper(pkt/s)\tmeasured(pkt/s)\tmeasured normalized")
	for i, name := range paperdata.Table2.Flows {
		fmt.Fprintf(w, "%s\t%g\t%.2f\t%.2f\t%.2f\n",
			name, paperdata.Table2.Weights[i], paperdata.Table2.Rates[i],
			agg.rates[i], agg.normRates[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("shape: clique-1 rates should split ~2:1:3 (measured %.0f:%.0f:%.0f)\n\n",
		agg.rates[1], agg.rates[2], agg.rates[3])
	return nil
}

func comparisonTable(title string, sc gmp.Scenario, paper struct {
	Flows     []string
	Protocols map[string]paperdata.ProtocolRow
}, duration time.Duration, seeds int) error {
	fmt.Println(title)
	protocols := []struct {
		name string
		p    gmp.Protocol
	}{
		{"802.11", gmp.Protocol80211},
		{"2PP", gmp.Protocol2PP},
		{"GMP", gmp.ProtocolGMP},
	}
	results := make(map[string]*aggregate, len(protocols))
	for _, pr := range protocols {
		agg, err := runSeeds(sc, pr.p, duration, seeds)
		if err != nil {
			return err
		}
		results[pr.name] = agg
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprint(w, "flow")
	for _, pr := range protocols {
		fmt.Fprintf(w, "\t%s paper\t%s meas.", pr.name, pr.name)
	}
	fmt.Fprintln(w)
	for i, name := range paper.Flows {
		fmt.Fprint(w, name)
		for _, pr := range protocols {
			fmt.Fprintf(w, "\t%.2f\t%.2f", paper.Protocols[pr.name].Rates[i], results[pr.name].rates[i])
		}
		fmt.Fprintln(w)
	}
	for _, row := range []struct {
		label string
		paper func(paperdata.ProtocolRow) float64
		meas  func(*aggregate) string
	}{
		{"U", func(r paperdata.ProtocolRow) float64 { return r.U },
			func(a *aggregate) string { return withCI(a.u, a.uCI) }},
		{"I_mm", func(r paperdata.ProtocolRow) float64 { return r.Imm },
			func(a *aggregate) string { return withCI(a.imm, a.immCI) }},
		{"I_eq", func(r paperdata.ProtocolRow) float64 { return r.Ieq },
			func(a *aggregate) string { return withCI(a.ieq, a.ieqCI) }},
	} {
		fmt.Fprint(w, row.label)
		for _, pr := range protocols {
			fmt.Fprintf(w, "\t%.3f\t%s", row.paper(paper.Protocols[pr.name]), row.meas(results[pr.name]))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func table3(duration time.Duration, seeds int) error {
	return comparisonTable(
		"Table 3 — Figure 3 three-link chain: 802.11 vs 2PP vs GMP",
		gmp.Fig3Scenario(), paperdata.Table3, duration, seeds)
}

func table4(duration time.Duration, seeds int) error {
	return comparisonTable(
		"Table 4 — Figure 4 four-cell topology: 802.11 vs 2PP vs GMP",
		gmp.Fig4Scenario(), paperdata.Table4, duration, seeds)
}
