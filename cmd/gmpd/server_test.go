package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gmp/internal/obs"
	"gmp/internal/span"
)

func newTestServer(t *testing.T, workers int) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(workers, 256, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler(false))
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) statusResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var st statusResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("submit response %s: %v", raw, err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job leaves queued/running.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.Status {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return statusResponse{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, raw)
	}
	return raw
}

const sweepBody = `{"scenario_name":"fig3","duration_s":4,"warmup_s":2,"seeds":3}`

// TestSubmitPollResultAndCacheHit is the service's end-to-end
// acceptance test: a sweep runs to completion and aggregates; an
// identical resubmission is served entirely from the result cache with
// zero simulations and a byte-identical result document; a different
// run spec misses the cache.
func TestSubmitPollResultAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, 2)

	// Follow the telemetry stream from submission time: this client
	// reads records as the sweep emits them, not after it ends.
	first := submit(t, ts, sweepBody)
	streamed := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID + "/telemetry")
		if err != nil {
			streamed <- nil
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		streamed <- raw
	}()

	st := waitTerminal(t, ts, first.ID)
	if st.Status != "done" {
		t.Fatalf("job finished %q (error %q)", st.Status, st.Error)
	}
	if st.SimsExecuted != 3 || st.CacheHits != 0 || st.RunsDone != 3 {
		t.Fatalf("first sweep counters: %+v", st)
	}
	res1 := getResult(t, ts, first.ID)
	var doc jobResult
	if err := json.Unmarshal(res1, &doc); err != nil {
		t.Fatalf("result %s: %v", res1, err)
	}
	if doc.Scenario != "fig3" || doc.Protocol != "gmp" || doc.Seeds != 3 || len(doc.Runs) != 3 {
		t.Fatalf("result document: %+v", doc)
	}
	if doc.Summary.Runs != 3 || doc.Summary.U.Mean <= 0 {
		t.Fatalf("summary: %+v", doc.Summary)
	}
	if bytes.Contains(res1, []byte(first.ID)) {
		t.Fatal("result document leaks the job ID (breaks cache-identity)")
	}

	// The streamed telemetry validates under the obs schema.
	raw := <-streamed
	if raw == nil {
		t.Fatal("telemetry stream failed")
	}
	counts, err := obs.ValidateJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("streamed telemetry invalid: %v\n%s", err, raw)
	}
	if counts["meta"] != 1 || counts["run"] != 3 {
		t.Fatalf("telemetry counts: %v", counts)
	}

	// Identical resubmission: full cache hit, zero simulations,
	// byte-identical result.
	second := submit(t, ts, sweepBody)
	st2 := waitTerminal(t, ts, second.ID)
	if st2.Status != "done" {
		t.Fatalf("cached job finished %q (error %q)", st2.Status, st2.Error)
	}
	if st2.SimsExecuted != 0 {
		t.Fatalf("cached sweep executed %d simulations, want 0", st2.SimsExecuted)
	}
	if st2.CacheHits != 3 || st2.RunsDone != 3 {
		t.Fatalf("cached sweep counters: %+v", st2)
	}
	res2 := getResult(t, ts, second.ID)
	if !bytes.Equal(res1, res2) {
		t.Fatalf("cached result differs from simulated result:\n%s\nvs\n%s", res1, res2)
	}

	// Extending the sweep reuses the cached seeds and only runs new ones.
	third := submit(t, ts, `{"scenario_name":"fig3","duration_s":4,"warmup_s":2,"seeds":5}`)
	st3 := waitTerminal(t, ts, third.ID)
	if st3.Status != "done" || st3.CacheHits != 3 || st3.SimsExecuted != 2 {
		t.Fatalf("extended sweep counters: %+v", st3)
	}

	// A changed run spec addresses different content: no hits.
	fourth := submit(t, ts, `{"scenario_name":"fig3","duration_s":4,"warmup_s":2,"seeds":3,"loss_prob":0.1}`)
	st4 := waitTerminal(t, ts, fourth.ID)
	if st4.Status != "done" || st4.CacheHits != 0 || st4.SimsExecuted != 3 {
		t.Fatalf("changed-spec sweep counters: %+v", st4)
	}
}

// TestInlineScenarioSubmission submits a scenario document instead of
// a registry name, and checks key-order insensitivity: the same
// scenario with reordered JSON fields hits the cache.
func TestInlineScenarioSubmission(t *testing.T) {
	_, ts := newTestServer(t, 1)
	inline := `{"name":"pair","nodes":[[0,0],[200,0]],"flows":[{"src":0,"dst":1}]}`
	reordered := `{"flows":[{"dst":1,"src":0}],"nodes":[[0,0],[200,0]],"name":"pair"}`

	first := submit(t, ts, `{"scenario":`+inline+`,"duration_s":4,"warmup_s":2}`)
	st := waitTerminal(t, ts, first.ID)
	if st.Status != "done" || st.SimsExecuted != 1 {
		t.Fatalf("inline sweep: %+v", st)
	}
	second := submit(t, ts, `{"scenario":`+reordered+`,"duration_s":4,"warmup_s":2}`)
	st2 := waitTerminal(t, ts, second.ID)
	if st2.Status != "done" || st2.CacheHits != 1 || st2.SimsExecuted != 0 {
		t.Fatalf("reordered scenario missed the cache: %+v", st2)
	}
	if a, b := getResult(t, ts, first.ID), getResult(t, ts, second.ID); !bytes.Equal(a, b) {
		t.Fatal("reordered scenario produced a different result document")
	}
}

// TestCancelMidSweep cancels a long sweep while it runs and checks the
// typed partial status.
func TestCancelMidSweep(t *testing.T) {
	_, ts := newTestServer(t, 1)
	// One simulated hour per run: only cancellation ends this sweep.
	st := submit(t, ts, `{"scenario_name":"fig3","duration_s":3600,"warmup_s":10,"seeds":4,"workers":1}`)

	deadline := time.Now().Add(60 * time.Second)
	for getStatus(t, ts, st.ID).Status != "running" {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	final := waitTerminal(t, ts, st.ID)
	if final.Status != "cancelled" {
		t.Fatalf("cancelled job finished %q", final.Status)
	}
	if final.CancelReason != "requested" {
		t.Fatalf("cancel reason %q, want requested", final.CancelReason)
	}
	if final.RunsDone >= 4 {
		t.Fatalf("cancelled sweep reports %d/4 runs done", final.RunsDone)
	}
	// The result endpoint refuses with the cancellation, not a hang.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d", rresp.StatusCode)
	}
}

// TestShutdownDrains checks graceful shutdown: the running job
// finishes, the queued job is cancelled with the typed shutdown
// reason, and new submissions are refused.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, 1)
	// A few hundred simulated seconds: long enough (seconds of wall
	// time) that the drain starts while this job is still running,
	// short enough to finish well inside the drain window.
	running := submit(t, ts, `{"scenario_name":"fig3","duration_s":1200,"warmup_s":600}`)
	queued := submit(t, ts, `{"scenario_name":"fig3","duration_s":1200,"warmup_s":600,"seeds":2}`)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := getStatus(t, ts, running.ID)
	if st.Status != "done" {
		t.Fatalf("running job drained as %q (error %q) — drain killed it", st.Status, st.Error)
	}
	qst := getStatus(t, ts, queued.ID)
	if qst.Status != "cancelled" || qst.CancelReason != "shutdown" {
		t.Fatalf("queued job drained as %q/%q, want cancelled/shutdown", qst.Status, qst.CancelReason)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission after drain: %d, want 503", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, 1)
	for name, body := range map[string]string{
		"no scenario":      `{"seeds":2}`,
		"both scenarios":   `{"scenario_name":"fig3","scenario":{"name":"x","nodes":[[0,0],[1,1]]},"seeds":1}`,
		"unknown scenario": `{"scenario_name":"nope"}`,
		"unknown protocol": `{"scenario_name":"fig3","protocol":"tcp"}`,
		"unknown field":    `{"scenario_name":"fig3","bogus":1}`,
		"too many seeds":   fmt.Sprintf(`{"scenario_name":"fig3","seeds":%d}`, maxSeeds+1),
		"bad loss prob":    `{"scenario_name":"fig3","loss_prob":1.5}`,
		"negative warmup":  `{"scenario_name":"fig3","warmup_s":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/telemetry"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	st := submit(t, ts, `{"scenario_name":"fig3","duration_s":4,"warmup_s":2}`)
	waitTerminal(t, ts, st.ID)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"gmpd_jobs_submitted 1", "gmpd_jobs_done 1", "gmpd_cache_puts 1", "gmpd_cache_misses 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestSpansEndpoint covers the causal-trace stream: a spans job streams
// schema-valid span JSONL with tail-follow semantics, forces its first
// seed to simulate even when cached, and leaves results byte-identical
// to the spans-off document. Jobs without spans 404 on the endpoint.
func TestSpansEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 2)

	// Prime the cache with a spans-off sweep.
	plain := submit(t, ts, `{"scenario_name":"fig3","duration_s":4,"warmup_s":2,"seeds":2}`)
	if st := waitTerminal(t, ts, plain.ID); st.Status != "done" {
		t.Fatalf("plain job: %+v", st)
	}
	plainDoc := getResult(t, ts, plain.ID)

	// No spans requested → the endpoint refuses.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("spans of a spans-less job: %d, want 404", resp.StatusCode)
	}

	// Same sweep with spans: seed 1 must re-simulate (the cache has no
	// trace), seed 2 still hits. Follow the stream from submission.
	withSpans := submit(t, ts, `{"scenario_name":"fig3","duration_s":4,"warmup_s":2,"seeds":2,"spans":true,"span_sample":8}`)
	streamed := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + withSpans.ID + "/spans")
		if err != nil {
			streamed <- nil
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		streamed <- raw
	}()
	st := waitTerminal(t, ts, withSpans.ID)
	if st.Status != "done" {
		t.Fatalf("spans job: %+v", st)
	}
	if st.SimsExecuted != 1 || st.CacheHits != 1 {
		t.Fatalf("spans job must force-simulate exactly the first seed: %+v", st)
	}
	if doc := getResult(t, ts, withSpans.ID); !bytes.Equal(plainDoc, doc) {
		t.Fatal("enabling spans changed the result document")
	}

	raw := <-streamed
	if raw == nil {
		t.Fatal("span stream failed")
	}
	counts, err := span.ValidateJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("streamed spans invalid: %v", err)
	}
	if counts["meta"] != 1 || counts["span"] == 0 {
		t.Fatalf("span stream counts: %v", counts)
	}

	// Invalid span requests are refused at submission.
	for name, body := range map[string]string{
		"negative stride":  `{"scenario_name":"fig3","spans":true,"span_sample":-1}`,
		"stride sans span": `{"scenario_name":"fig3","span_sample":8}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestMetricsPrometheusConformance pins the /metrics exposition format:
// every family carries # HELP and # TYPE annotations with a legal type,
// in order, and the sample values equal the server's own counters.
func TestMetricsPrometheusConformance(t *testing.T) {
	s, ts := newTestServer(t, 1)
	st := submit(t, ts, `{"scenario_name":"fig3","duration_s":4,"warmup_s":2,"spans":true}`)
	waitTerminal(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines)%3 != 0 {
		t.Fatalf("exposition is not HELP/TYPE/sample triplets (%d lines):\n%s", len(lines), body)
	}
	got := make(map[string]int64)
	for i := 0; i < len(lines); i += 3 {
		var helpName, typeName, typ string
		if _, err := fmt.Sscanf(lines[i], "# HELP %s", &helpName); err != nil {
			t.Fatalf("line %d is not a HELP line: %q", i, lines[i])
		}
		if _, err := fmt.Sscanf(lines[i+1], "# TYPE %s %s", &typeName, &typ); err != nil {
			t.Fatalf("line %d is not a TYPE line: %q", i+1, lines[i+1])
		}
		if typ != "counter" && typ != "gauge" {
			t.Fatalf("%s has illegal type %q", typeName, typ)
		}
		var sampleName string
		var value int64
		if _, err := fmt.Sscanf(lines[i+2], "%s %d", &sampleName, &value); err != nil {
			t.Fatalf("line %d is not a sample: %q", i+2, lines[i+2])
		}
		if helpName != typeName || typeName != sampleName {
			t.Fatalf("family name mismatch: HELP %q TYPE %q sample %q", helpName, typeName, sampleName)
		}
		got[sampleName] = value
	}
	// The scraped values must match the server's own snapshot (counters
	// that cannot move between scrape and snapshot in this quiesced test).
	for _, m := range s.metricFamilies() {
		v, ok := got[m.name]
		if !ok {
			t.Errorf("exposition missing %s", m.name)
			continue
		}
		if v != m.value {
			t.Errorf("%s: scraped %d, server has %d", m.name, v, m.value)
		}
	}
	if got["gmpd_span_jobs"] != 1 {
		t.Errorf("gmpd_span_jobs = %d after one spans job, want 1", got["gmpd_span_jobs"])
	}
	if got["gmpd_span_bytes_recorded"] <= 0 {
		t.Errorf("gmpd_span_bytes_recorded = %d, want > 0", got["gmpd_span_bytes_recorded"])
	}
}

// TestPprofGatedAndTopologyMetrics covers the two observability hooks:
// /debug/pprof/* must exist only when enabled, and /metrics must report
// the admission-time topology-build counters after a submission.
func TestPprofGatedAndTopologyMetrics(t *testing.T) {
	s, ts := newTestServer(t, 1)

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled but /debug/pprof/ returned %d", resp.StatusCode)
	}

	on := httptest.NewServer(s.handler(true))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled but /debug/pprof/ returned %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list the goroutine profile")
	}

	submit(t, ts, `{"scenario_name":"fig3","protocol":"802.11","duration_s":1,"warmup_s":0.5}`)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	if !strings.Contains(metrics, "gmpd_topology_builds 1\n") {
		t.Errorf("metrics missing topology build count:\n%s", metrics)
	}
	for _, name := range []string{"gmpd_topology_build_ns_total", "gmpd_topology_build_ns_last"} {
		if !strings.Contains(metrics, name+" ") {
			t.Errorf("metrics missing %s:\n%s", name, metrics)
		}
	}
}
