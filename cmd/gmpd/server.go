// gmpd is simulation-as-a-service for the GMP simulator: an HTTP/JSON
// API that accepts seed-sweep jobs over named or inline scenarios, runs
// them on a bounded worker pool (internal/jobs), deduplicates work
// through a content-addressed result cache (internal/resultcache), and
// streams per-run telemetry summaries as JSONL while a sweep is still
// in flight.
//
//	POST   /v1/jobs                submit a sweep (scenario + run spec)
//	GET    /v1/jobs/{id}           job status and progress counters
//	GET    /v1/jobs/{id}/result    aggregated CI95 summary (done jobs)
//	GET    /v1/jobs/{id}/telemetry live JSONL stream (obs schema)
//	DELETE /v1/jobs/{id}           cancel (cooperative, like RunContext)
//	GET    /healthz                liveness
//	GET    /metrics                text counters (jobs + cache + topology builds)
//	GET    /debug/pprof/*          runtime profiles (only with -pprof)
//
// Caching is per run, not per sweep: each (scenario, run spec, seed)
// triple is hashed — SHA-256 over length-prefixed sections of a version
// salt, the scenario's canonical JSON, the normalized run spec, and the
// seed — and the condensed run record is stored under that key. A
// resubmitted sweep replays entirely from cache (zero simulations), and
// a sweep that extends an earlier one only runs the new seeds. Result
// JSON is built from the records through the same code path either
// way, so cached and live responses are byte-identical.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"gmp"
	"gmp/internal/jobs"
	"gmp/internal/obs"
	"gmp/internal/resultcache"
)

// resultVersion salts every cache key. Bump it when the simulator's
// outputs change meaning (it is why stale records from an older binary
// can never satisfy a new request).
const resultVersion = "gmpd-result-v1"

// maxSeeds bounds a single sweep so a typo cannot queue a year of work.
const maxSeeds = 4096

// jobRequest is the POST /v1/jobs body. Exactly one of ScenarioName
// (registry lookup) and Scenario (inline scenario JSON, the gmpsim file
// format) must be set.
type jobRequest struct {
	ScenarioName string          `json:"scenario_name,omitempty"`
	Scenario     json.RawMessage `json:"scenario,omitempty"`
	Protocol     string          `json:"protocol,omitempty"` // default "gmp"
	DurationS    float64         `json:"duration_s,omitempty"`
	WarmupS      float64         `json:"warmup_s,omitempty"`
	Seeds        int             `json:"seeds,omitempty"` // sweep size, default 1 (seeds 1..n)
	Workers      int             `json:"workers,omitempty"`
	DisableRTS   bool            `json:"disable_rts,omitempty"`
	LossProb     float64         `json:"loss_prob,omitempty"`
	// Spans records causal span traces for the sweep's first seed and
	// streams them on /v1/jobs/{id}/spans. SpanSample is the sampling
	// stride (0 = default). Neither field enters the cache key: spans
	// observe a run without changing its results, but requesting them
	// forces the first seed to simulate even on a cache hit, since the
	// cache stores condensed records without traces.
	Spans      bool `json:"spans,omitempty"`
	SpanSample int  `json:"span_sample,omitempty"`
}

// canonicalSpec is the normalized, defaults-applied run spec that
// enters the cache key. Field order is fixed by the struct, so its
// JSON is deterministic. Workers is deliberately absent: worker count
// never affects results.
type canonicalSpec struct {
	Protocol   string  `json:"protocol"`
	DurationNS int64   `json:"duration_ns"`
	WarmupNS   int64   `json:"warmup_ns"`
	DisableRTS bool    `json:"disable_rts"`
	LossProb   float64 `json:"loss_prob"`
}

// runRecord is the condensed, cacheable outcome of one simulation run:
// exactly the fields the sweep aggregation (gmp.Summarize) and the
// telemetry stream need, a few hundred bytes instead of a full Result.
type runRecord struct {
	Seed            int64          `json:"seed"`
	Imm             float64        `json:"imm"`
	Ieq             float64        `json:"ieq"`
	U               float64        `json:"u"`
	ControlOverhead float64        `json:"control_overhead"`
	FlowRates       []float64      `json:"flow_rates"`
	FlowNormRates   []float64      `json:"flow_norm_rates"`
	Summary         obs.RunSummary `json:"summary"`
}

// skeleton rebuilds the minimal *gmp.Result that Summarize reads, so
// cached and freshly simulated runs aggregate through identical code.
func (r *runRecord) skeleton() *gmp.Result {
	res := &gmp.Result{
		Imm: r.Imm, Ieq: r.Ieq, U: r.U,
		ControlOverhead: r.ControlOverhead,
		Flows:           make([]gmp.FlowResult, len(r.FlowRates)),
	}
	for i := range res.Flows {
		res.Flows[i].Rate = r.FlowRates[i]
		res.Flows[i].NormRate = r.FlowNormRates[i]
	}
	return res
}

func recordFromResult(seed int64, res *gmp.Result) *runRecord {
	rec := &runRecord{
		Seed: seed,
		Imm:  res.Imm, Ieq: res.Ieq, U: res.U,
		ControlOverhead: res.ControlOverhead,
		FlowRates:       make([]float64, len(res.Flows)),
		FlowNormRates:   make([]float64, len(res.Flows)),
	}
	for i, f := range res.Flows {
		rec.FlowRates[i] = f.Rate
		rec.FlowNormRates[i] = f.NormRate
	}
	if res.Telemetry != nil {
		rec.Summary = res.Telemetry.Summarize()
	}
	return rec
}

// jobResult is the GET /v1/jobs/{id}/result body. It intentionally
// carries no job ID, timestamps, or cache counters: identical
// submissions must produce byte-identical result documents whether
// served from simulation or from cache. Per-job bookkeeping lives in
// the status endpoint.
type jobResult struct {
	Scenario string           `json:"scenario"`
	Protocol string           `json:"protocol"`
	Seeds    int              `json:"seeds"`
	Summary  gmp.SweepSummary `json:"summary"`
	Runs     []runMetrics     `json:"runs"`
}

// runMetrics is one run's row in the result document.
type runMetrics struct {
	Seed int64   `json:"seed"`
	Imm  float64 `json:"imm"`
	Ieq  float64 `json:"ieq"`
	U    float64 `json:"u"`
}

// jobState is the server-side record of one job, beyond what the queue
// tracks: cache keys, progress counters, the accumulated telemetry
// stream, and the final result document.
type jobState struct {
	id         string
	scenario   gmp.Scenario
	spec       canonicalSpec
	protocol   gmp.Protocol
	seeds      int
	workers    int
	spans      bool
	spanSample int
	keys       []resultcache.Key
	submitted  time.Time

	mu        sync.Mutex
	runsDone  int // runs accounted for (cache or simulation)
	simsRun   int // simulations actually executed
	cacheHits int
	result    []byte

	stream     bytes.Buffer // telemetry JSONL emitted so far
	streamDone bool
	// spanStream is the span JSONL from the first seed (spans jobs only);
	// it shares the changed channel so followers of either stream wake.
	spanStream bytes.Buffer
	spanDone   bool
	changed    chan struct{} // replaced (and closed) on every append
}

func (st *jobState) bumpLocked() {
	close(st.changed)
	st.changed = make(chan struct{})
}

// Write appends to the telemetry stream and wakes followers. It is the
// io.Writer under the job's obs.StreamWriter.
func (st *jobState) Write(p []byte) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.streamDone {
		return 0, errors.New("gmpd: telemetry stream already closed")
	}
	n, err := st.stream.Write(p)
	st.bumpLocked()
	return n, err
}

func (st *jobState) closeStream() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.streamDone {
		st.streamDone = true
		st.bumpLocked()
	}
}

// appendSpans adds span JSONL to the span stream and wakes followers.
func (st *jobState) appendSpans(p []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.spanDone {
		return
	}
	st.spanStream.Write(p)
	st.bumpLocked()
}

func (st *jobState) closeSpanStream() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.spanDone {
		st.spanDone = true
		st.bumpLocked()
	}
}

type server struct {
	queue  *jobs.Queue
	cache  *resultcache.Cache
	nextID atomic.Int64

	// Topology-build telemetry: every admission builds the scenario's
	// topology once (validation + timing), and /metrics exposes the
	// count, cumulative time, and last-build time so the spatial-grid
	// pipeline's cost is observable per deployment.
	topoBuilds      atomic.Int64
	topoBuildNS     atomic.Int64
	topoBuildLastNS atomic.Int64

	// Span-tracing telemetry: jobs that requested causal traces and the
	// span JSONL bytes recorded across all of them.
	spanJobs  atomic.Int64
	spanBytes atomic.Int64

	mu     sync.Mutex
	states map[string]*jobState
}

// newServer builds a gmpd server: a worker pool of the given size and
// a result cache bounded to cacheEntries in memory, persisted under
// cacheDir when non-empty.
func newServer(workers, cacheEntries int, cacheDir string) (*server, error) {
	cache, err := resultcache.New(cacheEntries, cacheDir)
	if err != nil {
		return nil, err
	}
	return &server{
		queue:  jobs.NewQueue(workers, 0),
		cache:  cache,
		states: make(map[string]*jobState),
	}, nil
}

// Shutdown drains the job queue: running sweeps finish, queued ones are
// cancelled with the typed shutdown reason, new submissions get 503.
func (s *server) Shutdown(ctx context.Context) error {
	return s.queue.Drain(ctx)
}

func (s *server) handler(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	if enablePprof {
		// The profiling routes are opt-in (-pprof): they expose stacks
		// and heap contents, which a metrics-only deployment should not.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleSpans)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// buildJob validates a request into a ready-to-run jobState (without an
// ID — the caller assigns one at submission).
func (s *server) buildJob(req *jobRequest) (*jobState, error) {
	var sc gmp.Scenario
	var err error
	switch {
	case req.ScenarioName != "" && len(req.Scenario) > 0:
		return nil, fmt.Errorf("scenario_name and scenario are mutually exclusive")
	case req.ScenarioName != "":
		if sc, err = gmp.NamedScenario(req.ScenarioName); err != nil {
			return nil, err
		}
	case len(req.Scenario) > 0:
		if sc, err = gmp.LoadScenario(bytes.NewReader(req.Scenario)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("one of scenario_name or scenario is required (names: %v)", gmp.ScenarioNames())
	}

	protoName := req.Protocol
	if protoName == "" {
		protoName = "gmp"
	}
	proto, canonicalProto, err := parseProtocol(protoName)
	if err != nil {
		return nil, err
	}
	if req.Seeds < 0 || req.Seeds > maxSeeds {
		return nil, fmt.Errorf("seeds %d out of range [0, %d]", req.Seeds, maxSeeds)
	}
	seeds := req.Seeds
	if seeds == 0 {
		seeds = 1
	}
	if req.DurationS < 0 || req.WarmupS < 0 || req.WarmupS > req.DurationS && req.DurationS != 0 {
		return nil, fmt.Errorf("invalid duration %gs / warmup %gs", req.DurationS, req.WarmupS)
	}
	duration := time.Duration(req.DurationS * float64(time.Second))
	if duration == 0 {
		duration = 400 * time.Second // gmp.Run's default session length
	}
	warmup := time.Duration(req.WarmupS * float64(time.Second))
	if warmup == 0 {
		warmup = duration / 2 // gmp.Run's default
	}
	if req.LossProb < 0 || req.LossProb > 1 {
		return nil, fmt.Errorf("loss_prob %g outside [0, 1]", req.LossProb)
	}

	spec := canonicalSpec{
		Protocol:   canonicalProto,
		DurationNS: int64(duration),
		WarmupNS:   int64(warmup),
		DisableRTS: req.DisableRTS,
		LossProb:   req.LossProb,
	}
	// Build the topology once at admission: scenarios that cannot build
	// are rejected before they enter the queue, and the timed build
	// feeds the gmpd_topology_build_* counters on /metrics.
	buildStart := time.Now()
	if _, err := sc.Topology(); err != nil {
		return nil, fmt.Errorf("scenario topology: %w", err)
	}
	buildNS := time.Since(buildStart).Nanoseconds()
	s.topoBuilds.Add(1)
	s.topoBuildNS.Add(buildNS)
	s.topoBuildLastNS.Store(buildNS)

	if req.SpanSample < 0 {
		return nil, fmt.Errorf("span_sample %d must be >= 0", req.SpanSample)
	}
	if req.SpanSample > 0 && !req.Spans {
		return nil, fmt.Errorf("span_sample requires spans")
	}
	st := &jobState{
		scenario:   sc,
		spec:       spec,
		protocol:   proto,
		seeds:      seeds,
		workers:    req.Workers,
		spans:      req.Spans,
		spanSample: req.SpanSample,
		changed:    make(chan struct{}),
	}
	st.keys, err = jobKeys(sc, spec, seeds)
	return st, err
}

// jobKeys derives the per-run content addresses: one key per seed over
// (version salt, canonical scenario, canonical spec, seed), with
// section framing supplied by resultcache.Sum.
func jobKeys(sc gmp.Scenario, spec canonicalSpec, seeds int) ([]resultcache.Key, error) {
	scBytes, err := sc.CanonicalJSON()
	if err != nil {
		return nil, fmt.Errorf("scenario does not canonicalize: %w", err)
	}
	specBytes, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	keys := make([]resultcache.Key, seeds)
	for i := range keys {
		var seed [8]byte
		binary.BigEndian.PutUint64(seed[:], uint64(i+1)) // SeedSweep seeds 1..n
		keys[i] = resultcache.Sum([]byte(resultVersion), scBytes, specBytes, seed[:])
	}
	return keys, nil
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st, err := s.buildJob(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st.id = fmt.Sprintf("job-%d", s.nextID.Add(1))
	st.submitted = time.Now()

	s.mu.Lock()
	s.states[st.id] = st
	s.mu.Unlock()

	if _, err := s.queue.Submit(st.id, func(ctx context.Context) error {
		return s.runJob(ctx, st)
	}); err != nil {
		s.mu.Lock()
		delete(s.states, st.id)
		s.mu.Unlock()
		code := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	if st.spans {
		s.spanJobs.Add(1)
	}
	s.writeStatus(w, http.StatusAccepted, st)
}

// runJob executes one sweep: satisfy what it can from the cache,
// simulate the missing seeds, stream per-run summaries in seed order
// as they become available, and store the aggregated result document.
func (s *server) runJob(ctx context.Context, st *jobState) error {
	defer st.closeStream()
	defer st.closeSpanStream()

	sw := obs.NewStreamWriter(st)
	if err := sw.WriteMeta(obs.Meta{
		Scenario:     st.scenario.Name,
		Protocol:     st.spec.Protocol,
		Flows:        len(st.scenario.Flows),
		Nodes:        len(st.scenario.Positions),
		BucketBounds: obs.DefaultLatencyBounds,
	}); err != nil {
		return err
	}

	records := make([]*runRecord, st.seeds)
	var missing []int
	hits := 0
	for i := range records {
		// A spans job must really simulate its first seed: cached records
		// are condensed results without the causal trace.
		if !(st.spans && i == 0) {
			if data, ok := s.cache.Get(st.keys[i]); ok {
				var rec runRecord
				if err := json.Unmarshal(data, &rec); err == nil {
					records[i] = &rec
					hits++
					continue
				}
				// A corrupt cache entry degrades to a miss.
			}
		}
		missing = append(missing, i)
	}
	st.mu.Lock()
	st.cacheHits = hits
	st.mu.Unlock()

	// Stream run records strictly in seed order: release emits every
	// contiguous completed prefix not yet written. relMu serializes it
	// against RunMany's completion-order callbacks.
	var relMu sync.Mutex
	next := 0
	release := func() error {
		for next < len(records) && records[next] != nil {
			if err := sw.WriteRun(records[next].Seed, records[next].Summary); err != nil {
				return err
			}
			st.mu.Lock()
			st.runsDone++
			st.mu.Unlock()
			next++
		}
		return nil
	}
	relMu.Lock()
	err := release()
	relMu.Unlock()
	if err != nil {
		return err
	}

	if len(missing) > 0 {
		base := gmp.Config{
			Scenario:   st.scenario,
			Protocol:   st.protocol,
			Duration:   time.Duration(st.spec.DurationNS),
			Warmup:     time.Duration(st.spec.WarmupNS),
			DisableRTS: st.spec.DisableRTS,
			LossProb:   st.spec.LossProb,
			Telemetry:  &gmp.TelemetryConfig{},
		}
		cfgs := make([]gmp.Config, len(missing))
		for j, idx := range missing {
			cfgs[j] = base
			cfgs[j].Seed = int64(idx + 1)
			if st.spans && idx == 0 {
				cfgs[j].Spans = &gmp.SpanConfig{SampleEvery: st.spanSample}
			}
		}
		_, err := gmp.RunMany(ctx, cfgs, gmp.RunManyOptions{
			Workers: st.workers,
			OnResult: func(j int, res *gmp.Result) {
				idx := missing[j]
				if res.Spans != nil {
					var sb bytes.Buffer
					if werr := res.Spans.WriteJSONL(&sb); werr == nil {
						st.appendSpans(sb.Bytes())
						s.spanBytes.Add(int64(sb.Len()))
					}
					st.closeSpanStream()
				}
				rec := recordFromResult(int64(idx+1), res)
				if data, merr := json.Marshal(rec); merr == nil {
					s.cache.Put(st.keys[idx], data)
				}
				st.mu.Lock()
				st.simsRun++
				st.mu.Unlock()
				relMu.Lock()
				records[idx] = rec
				release()
				relMu.Unlock()
			},
		})
		if err != nil {
			return err
		}
	}

	// Aggregate through the same path for cached and simulated runs.
	doc := jobResult{
		Scenario: st.scenario.Name,
		Protocol: st.spec.Protocol,
		Seeds:    st.seeds,
	}
	skeletons := make([]*gmp.Result, len(records))
	for i, rec := range records {
		skeletons[i] = rec.skeleton()
		doc.Runs = append(doc.Runs, runMetrics{Seed: rec.Seed, Imm: rec.Imm, Ieq: rec.Ieq, U: rec.U})
	}
	doc.Summary = gmp.Summarize(skeletons)
	out, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	st.mu.Lock()
	st.result = out
	st.mu.Unlock()
	return nil
}

// statusResponse is the job status document.
type statusResponse struct {
	ID           string `json:"id"`
	Status       string `json:"status"`
	Scenario     string `json:"scenario"`
	Protocol     string `json:"protocol"`
	Seeds        int    `json:"seeds"`
	RunsDone     int    `json:"runs_done"`
	SimsExecuted int    `json:"sims_executed"`
	CacheHits    int    `json:"cache_hits"`
	Error        string `json:"error,omitempty"`
	CancelReason string `json:"cancel_reason,omitempty"`
}

func (s *server) lookup(r *http.Request) (*jobState, *jobs.Job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.states[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	j, ok := s.queue.Get(id)
	if !ok {
		return nil, nil, false
	}
	return st, j, true
}

func (s *server) status(st *jobState) statusResponse {
	resp := statusResponse{
		ID:       st.id,
		Scenario: st.scenario.Name,
		Protocol: st.spec.Protocol,
		Seeds:    st.seeds,
	}
	if j, ok := s.queue.Get(st.id); ok {
		resp.Status = j.Status().String()
		if err := j.Err(); err != nil {
			resp.Error = err.Error()
		}
		resp.CancelReason = string(j.Reason())
	}
	st.mu.Lock()
	resp.RunsDone = st.runsDone
	resp.SimsExecuted = st.simsRun
	resp.CacheHits = st.cacheHits
	st.mu.Unlock()
	return resp
}

func (s *server) writeStatus(w http.ResponseWriter, code int, st *jobState) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(s.status(st))
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, _, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.writeStatus(w, http.StatusOK, st)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch j.Status() {
	case jobs.Done:
		st.mu.Lock()
		out := st.result
		st.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
	case jobs.Failed:
		httpError(w, http.StatusInternalServerError, "job failed: %v", j.Err())
	case jobs.Cancelled:
		httpError(w, http.StatusConflict, "job cancelled (%s)", j.Reason())
	default:
		httpError(w, http.StatusConflict, "job is %s; poll status until done", j.Status())
	}
}

// handleTelemetry streams the job's telemetry JSONL, following a
// running job until it reaches a terminal state (tail -f semantics).
// Every flushed prefix ends on a record boundary and validates under
// the obs schema.
func (s *server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	st, _, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	offset := 0
	for {
		st.mu.Lock()
		buf := st.stream.Bytes()
		done := st.streamDone
		ch := st.changed
		st.mu.Unlock()
		if offset < len(buf) {
			if _, err := w.Write(buf[offset:]); err != nil {
				return
			}
			offset = len(buf)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSpans streams the job's span JSONL (the first seed's causal
// trace), following a running job until the trace is complete — the
// same tail-f semantics as the telemetry stream. The body validates
// under the span schema once complete.
func (s *server) handleSpans(w http.ResponseWriter, r *http.Request) {
	st, _, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !st.spans {
		httpError(w, http.StatusNotFound, "job %s did not request spans (submit with \"spans\": true)", st.id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	offset := 0
	for {
		st.mu.Lock()
		buf := st.spanStream.Bytes()
		done := st.spanDone
		ch := st.changed
		st.mu.Unlock()
		if offset < len(buf) {
			if _, err := w.Write(buf[offset:]); err != nil {
				return
			}
			offset = len(buf)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.queue.Cancel(st.id, jobs.ReasonRequested) {
		httpError(w, http.StatusConflict, "job already %s", j.Status())
		return
	}
	s.writeStatus(w, http.StatusAccepted, st)
}

// metricFamily is one /metrics family in the Prometheus text exposition
// format: a HELP line, a TYPE line (counter or gauge), and one sample.
type metricFamily struct {
	name  string
	help  string
	typ   string // "counter" | "gauge"
	value int64
}

// metricFamilies snapshots every exported metric. Monotonic totals are
// counters; instantaneous levels (queue depth, running jobs, resident
// cache entries, last build time) are gauges.
func (s *server) metricFamilies() []metricFamily {
	js := s.queue.Stats()
	cs := s.cache.Stats()
	return []metricFamily{
		{"gmpd_jobs_submitted", "Sweep jobs accepted since process start.", "counter", js.Submitted},
		{"gmpd_jobs_done", "Jobs that completed successfully.", "counter", js.Done},
		{"gmpd_jobs_failed", "Jobs that ended in an error.", "counter", js.Failed},
		{"gmpd_jobs_cancelled", "Jobs cancelled before completion.", "counter", js.Cancelled},
		{"gmpd_jobs_queued", "Jobs waiting for a worker right now.", "gauge", int64(js.Depth)},
		{"gmpd_jobs_running", "Jobs executing right now.", "gauge", int64(js.Running)},
		{"gmpd_cache_hits", "Result-cache memory hits.", "counter", cs.Hits},
		{"gmpd_cache_misses", "Result-cache misses.", "counter", cs.Misses},
		{"gmpd_cache_disk_hits", "Result-cache hits served from the disk tier.", "counter", cs.DiskHits},
		{"gmpd_cache_puts", "Result-cache insertions.", "counter", cs.Puts},
		{"gmpd_cache_evictions", "Result-cache entries evicted by the memory bound.", "counter", cs.Evictions},
		{"gmpd_cache_entries", "Result-cache entries resident in memory.", "gauge", int64(cs.Entries)},
		{"gmpd_topology_builds", "Scenario topology builds performed at job admission.", "counter", s.topoBuilds.Load()},
		{"gmpd_topology_build_ns_total", "Cumulative topology build time in nanoseconds.", "counter", s.topoBuildNS.Load()},
		{"gmpd_topology_build_ns_last", "Duration of the most recent topology build in nanoseconds.", "gauge", s.topoBuildLastNS.Load()},
		{"gmpd_span_jobs", "Jobs that requested causal span tracing.", "counter", s.spanJobs.Load()},
		{"gmpd_span_bytes_recorded", "Span JSONL bytes recorded across all jobs.", "counter", s.spanBytes.Load()},
	}
}

// handleMetrics serves the Prometheus text exposition format (text/plain
// version 0.0.4): every family carries # HELP and # TYPE annotations so
// a scrape ingests without relabeling.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, m := range s.metricFamilies() {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		fmt.Fprintf(w, "%s %d\n", m.name, m.value)
	}
}

// parseProtocol accepts cmd/gmpsim's protocol names and returns the
// protocol plus its canonical API spelling. The canonical spelling —
// not the display name from Protocol.String — goes into the cache key,
// so "80211" and "dcf" address the same content as "802.11".
func parseProtocol(name string) (gmp.Protocol, string, error) {
	switch name {
	case "gmp":
		return gmp.ProtocolGMP, "gmp", nil
	case "gmp-dist":
		return gmp.ProtocolGMPDistributed, "gmp-dist", nil
	case "802.11", "80211", "dcf":
		return gmp.Protocol80211, "802.11", nil
	case "2pp":
		return gmp.Protocol2PP, "2pp", nil
	case "bp":
		return gmp.ProtocolBackpressure, "bp", nil
	case "bp-shared":
		return gmp.ProtocolBackpressureShared, "bp-shared", nil
	default:
		return 0, "", fmt.Errorf("unknown protocol %q", name)
	}
}
