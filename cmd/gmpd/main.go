package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8356", "HTTP listen address")
		workers      = flag.Int("workers", 2, "number of jobs executed concurrently")
		cacheEntries = flag.Int("cache-entries", 4096, "in-memory result cache capacity (<=0 = unbounded)")
		cacheDir     = flag.String("cache-dir", "", "persist cached run records under this directory (empty = memory only)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for running jobs")
		pprofDebug   = flag.Bool("pprof", false, "expose /debug/pprof/* runtime profiling endpoints")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: gmpd [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	s, err := newServer(*workers, *cacheEntries, *cacheDir)
	if err != nil {
		log.Fatalf("gmpd: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.handler(*pprofDebug)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("gmpd: shutting down: draining jobs (up to %v)", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(drainCtx); err != nil {
			log.Printf("gmpd: %v", err)
		}
		httpSrv.Shutdown(drainCtx)
	}()

	log.Printf("gmpd: listening on %s (workers=%d, cache=%d entries, dir=%q)",
		*addr, *workers, *cacheEntries, *cacheDir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("gmpd: %v", err)
	}
}
