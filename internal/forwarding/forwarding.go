// Package forwarding implements the network layer of the simulator: packet
// queues, next-hop forwarding, and the buffer-based backpressure scheme
// the paper builds on (§2.2).
//
// Three queueing disciplines are supported, matching the three protocols
// evaluated in §7.2:
//
//   - PerDestination: one queue per served destination (GMP, §5.1) — the
//     "virtual node" i_t is exactly the queue for destination t at node i.
//   - PerFlow: one queue per passing flow (2PP, ref [11]).
//   - Shared: one FIFO for everything, tail overwrite on overflow (plain
//     IEEE 802.11 baseline).
//
// With congestion avoidance enabled (ref [3] of the paper), a node offers
// the MAC only packets whose downstream queue advertised a free slot; the
// advertisement is the buffer-state bit piggybacked on every overheard
// frame. A full downstream queue therefore throttles the upstream node —
// buffer-based backpressure — and the pressure propagates hop by hop to
// the flow source.
package forwarding

import (
	"fmt"
	"time"

	"gmp/internal/mac"
	"gmp/internal/obs"
	"gmp/internal/packet"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
)

// Mode selects the queueing discipline.
type Mode int

// Queueing disciplines.
const (
	PerDestination Mode = iota + 1
	PerFlow
	Shared
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PerDestination:
		return "per-destination"
	case PerFlow:
		return "per-flow"
	case Shared:
		return "shared-fifo"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// QueueKey returns the queue a packet belongs to under the mode.
func (m Mode) QueueKey(p *packet.Packet) packet.QueueID {
	switch m {
	case PerDestination:
		return packet.QueueForDest(p.Dst)
	case PerFlow:
		return packet.QueueForFlow(p.Flow)
	case Shared:
		return packet.SharedQueue
	default:
		panic(fmt.Sprintf("forwarding: unknown mode %d", int(m)))
	}
}

// Config controls a node's forwarding behavior.
type Config struct {
	Mode Mode
	// QueueSlots is the capacity of each queue in packets (§7.2 uses 10).
	QueueSlots int
	// CongestionAvoidance gates transmissions on the downstream buffer
	// state (ref [3]). Disabled for the plain-802.11 baseline.
	CongestionAvoidance bool
	// OverwriteTail drops the tail packet to admit a new arrival when the
	// queue is full (plain-802.11 baseline behavior, §7.2).
	OverwriteTail bool
	// StaleAfter bounds how long a "full" advertisement suppresses
	// transmissions without being refreshed; after it the node attempts
	// anyway (handles failed overhearing, §2.2).
	StaleAfter time.Duration
	// FairAggregation splits each queue into one sub-queue per packet
	// origin (the local source vs each upstream neighbor), each with its
	// own QueueSlots quota, served round-robin. This is an extension
	// beyond the paper, in the spirit of its ref [4] (aggregate fairness
	// toward a common sink): under FIFO with a shared quota the local
	// source instantly refills every freed slot and starves relayed
	// traffic at both admission and service; per-origin quotas and
	// round-robin service remove both advantages.
	FairAggregation bool
	// RequeueOnFailure puts a packet back at the head of its queue when
	// the MAC exhausts its retry limit, instead of dropping it. The
	// congestion-avoidance substrate (ref [3]) is loss-free by design;
	// link-layer persistence keeps backpressure honest about the true
	// delivery capacity of a collision-prone link. The plain-802.11
	// baseline leaves this off (standard drop-on-retry-limit).
	RequeueOnFailure bool
}

// DefaultConfig returns GMP's forwarding configuration.
func DefaultConfig() Config {
	return Config{
		Mode:                PerDestination,
		QueueSlots:          10,
		CongestionAvoidance: true,
		StaleAfter:          50 * time.Millisecond,
	}
}

// VLinkKey identifies a virtual link (i_t, j_t): the directed wireless
// link (From, To) restricted to one queue (destination t under GMP).
type VLinkKey struct {
	From  topology.NodeID
	To    topology.NodeID
	Queue packet.QueueID
}

// String renders the key in the paper's (i_t, j_t) flavor.
func (k VLinkKey) String() string {
	return fmt.Sprintf("(%d_%d,%d_%d)", k.From, k.Queue, k.To, k.Queue)
}

// WirelessLink returns the physical link the virtual link rides on.
func (k VLinkKey) WirelessLink() topology.Link {
	return topology.Link{From: k.From, To: k.To}
}

// PrimaryInfo records the primary flows of a virtual link over one
// measurement period: the flows whose stamped normalized rate equals the
// link's (maximum) normalized rate (§6.1).
type PrimaryInfo struct {
	// NormRate is the largest stamped normalized rate observed; zero if
	// no stamped packet passed.
	NormRate float64
	// Flows maps each primary flow to its source node.
	Flows map[packet.FlowID]topology.NodeID
}

// VLinkMeter accumulates per-virtual-link measurements over one period.
type VLinkMeter struct {
	// Sent counts packets acknowledged by the next hop this period.
	Sent int64
	// Primary tracks the largest stamped normalized rate and its flows.
	Primary PrimaryInfo
}

// SinkFunc consumes a packet that reached its final destination.
type SinkFunc func(p *packet.Packet, from topology.NodeID)

// DropReason classifies packet losses.
type DropReason int

// Drop reasons.
const (
	DropOverflow DropReason = iota + 1 // arrival at a full queue
	DropTail                           // tail overwritten (802.11 baseline)
	DropRetry                          // MAC retry limit exhausted
	DropNoRoute                        // no route to destination
	DropNodeDown                       // queued at a node that crashed
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropOverflow:
		return "overflow"
	case DropTail:
		return "tail-overwrite"
	case DropRetry:
		return "retry-limit"
	case DropNoRoute:
		return "no-route"
	case DropNodeDown:
		return "node-down"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// DropFunc observes packet losses (for statistics).
type DropFunc func(p *packet.Packet, reason DropReason)

type nbrEntry struct {
	free bool
	at   time.Duration
}

// queue is one packet queue. In plain mode it is a single FIFO; with
// fair aggregation it holds one sub-FIFO per packet origin (the local
// source or each upstream neighbor) served round-robin, so a chatty
// local source cannot crowd relayed traffic out of a shared
// per-destination queue.
type queue struct {
	id   packet.QueueID
	fair bool

	// Plain mode.
	pkts []*packet.Packet

	// Fair-aggregation mode.
	subs    map[topology.NodeID][]*packet.Packet
	origins []topology.NodeID
	rr      int
	total   int

	fullSince time.Duration // -1 when not full
	fullAccum time.Duration

	// localWasFull tracks the local origin's quota (fair mode), so the
	// queue-open waiters fire when the *local* sub-queue opens even if
	// other origins keep the queue as a whole busy.
	localWasFull bool
}

func (q *queue) length() int {
	if q.fair {
		return q.total
	}
	return len(q.pkts)
}

func (q *queue) push(p *packet.Packet, origin topology.NodeID) {
	if !q.fair {
		q.pkts = append(q.pkts, p)
		return
	}
	if q.subs == nil {
		q.subs = make(map[topology.NodeID][]*packet.Packet)
	}
	if _, ok := q.subs[origin]; !ok {
		q.origins = append(q.origins, origin)
	}
	q.subs[origin] = append(q.subs[origin], p)
	q.total++
}

// headOrigin returns the origin whose sub-FIFO the next pop serves, or
// false when empty.
func (q *queue) headOrigin() (topology.NodeID, bool) {
	if len(q.origins) == 0 {
		return 0, false
	}
	for k := 0; k < len(q.origins); k++ {
		origin := q.origins[(q.rr+k)%len(q.origins)]
		if len(q.subs[origin]) > 0 {
			return origin, true
		}
	}
	return 0, false
}

func (q *queue) peek() *packet.Packet {
	if !q.fair {
		if len(q.pkts) == 0 {
			return nil
		}
		return q.pkts[0]
	}
	origin, ok := q.headOrigin()
	if !ok {
		return nil
	}
	return q.subs[origin][0]
}

func (q *queue) pop() (*packet.Packet, topology.NodeID) {
	if !q.fair {
		p := q.pkts[0]
		q.pkts = q.pkts[1:]
		return p, p.Src // origin unused in plain mode
	}
	origin, ok := q.headOrigin()
	if !ok {
		panic("forwarding: pop from empty fair queue")
	}
	p := q.subs[origin][0]
	q.subs[origin] = q.subs[origin][1:]
	q.total--
	// Advance round-robin past the origin just served.
	for k, o := range q.origins {
		if o == origin {
			q.rr = (k + 1) % len(q.origins)
			break
		}
	}
	return p, origin
}

// pushFront re-admits a packet at the head of its origin's FIFO (MAC
// retry-exhaustion requeue).
func (q *queue) pushFront(p *packet.Packet, origin topology.NodeID) {
	if !q.fair {
		q.pkts = append([]*packet.Packet{p}, q.pkts...)
		return
	}
	if q.subs == nil {
		q.subs = make(map[topology.NodeID][]*packet.Packet)
	}
	if _, ok := q.subs[origin]; !ok {
		q.origins = append(q.origins, origin)
	}
	q.subs[origin] = append([]*packet.Packet{p}, q.subs[origin]...)
	q.total++
}

// Node is the forwarding engine of one physical node. It implements
// mac.Client.
type Node struct {
	id     topology.NodeID
	sched  *sim.Scheduler
	cfg    Config
	routes *routing.Table
	mac    *mac.Station
	sink   SinkFunc
	drop   DropFunc

	queues   map[packet.QueueID]*queue
	order    []packet.QueueID // round-robin order (creation order)
	rrOffset int

	nbrState map[topology.NodeID]map[packet.QueueID]nbrEntry

	kickTimer sim.Timer

	meters   map[VLinkKey]*VLinkMeter
	received map[VLinkKey]*VLinkMeter

	openWaiters map[packet.QueueID][]func()

	broadcastHandler func(from topology.NodeID, payload any)

	// enqueued counts packets accepted into local queues this period
	// (arrivals + local generation), for tests.
	enqueued int64

	// rec is the telemetry recorder (nil when telemetry is off). When
	// set, admitted packets are stamped with their admission time and
	// acknowledged forwards report their per-hop sojourn.
	rec *obs.Recorder

	// spans is the causal-trace recorder (nil when tracing is off). It
	// observes admissions, requeues, and drops for sampled packets.
	spans *span.Recorder
}

var (
	_ mac.Client            = (*Node)(nil)
	_ mac.BroadcastReceiver = (*Node)(nil)
)

// NewNode builds the forwarding engine for node id. Attach the MAC station
// with SetMAC before the simulation starts.
func NewNode(id topology.NodeID, sched *sim.Scheduler, cfg Config, routes *routing.Table, sink SinkFunc, drop DropFunc) *Node {
	if cfg.QueueSlots <= 0 {
		panic(fmt.Sprintf("forwarding: non-positive queue capacity %d", cfg.QueueSlots))
	}
	if sink == nil {
		sink = func(*packet.Packet, topology.NodeID) {}
	}
	if drop == nil {
		drop = func(*packet.Packet, DropReason) {}
	}
	return &Node{
		id:       id,
		sched:    sched,
		cfg:      cfg,
		routes:   routes,
		sink:     sink,
		drop:     drop,
		queues:   make(map[packet.QueueID]*queue),
		nbrState: make(map[topology.NodeID]map[packet.QueueID]nbrEntry),
		meters:   make(map[VLinkKey]*VLinkMeter),
		received: make(map[VLinkKey]*VLinkMeter),

		openWaiters: make(map[packet.QueueID][]func()),
	}
}

// SetMAC attaches the MAC station (resolves the construction cycle between
// the two layers).
func (n *Node) SetMAC(st *mac.Station) { n.mac = st }

// SetRecorder installs the telemetry recorder (nil disables). The
// recorder only observes admissions, forwards, and drops; it never
// influences queueing decisions, so enabling it cannot change
// simulation behavior.
func (n *Node) SetRecorder(rec *obs.Recorder) { n.rec = rec }

// SetSpans installs the causal-trace recorder (nil disables, the
// default). Like the telemetry recorder it only observes.
func (n *Node) SetSpans(r *span.Recorder) { n.spans = r }

// dropPkt reports a packet loss at this node: the telemetry recorder
// attributes it to the node, then the statistics callback runs.
func (n *Node) dropPkt(p *packet.Packet, reason DropReason) {
	if n.rec != nil {
		n.rec.PacketDropped(n.id, p.Flow)
	}
	if n.spans != nil {
		n.spans.Dropped(n.id, p, reason.String())
	}
	n.drop(p, reason)
}

// SetRoutes swaps in a new routing table (fault-driven route repair).
// The table is consulted live at every dequeue, so already-queued
// packets follow the new routes from their next transmission on. The
// MAC is kicked because packets previously unroutable may have become
// eligible.
func (n *Node) SetRoutes(t *routing.Table) {
	n.routes = t
	if n.mac != nil {
		n.mac.Kick()
	}
}

// DropAll empties every queue, reporting each packet with the given
// reason. Used when the node crashes: a dead node's buffers do not
// survive. Queue-open waiters may fire (the queues just opened); flow
// sources must already be halted so they do not refill a dead node.
func (n *Node) DropAll(reason DropReason) {
	for _, qid := range n.order {
		q := n.queues[qid]
		for q.length() > 0 {
			p, _ := q.pop()
			n.dropPkt(p, reason)
		}
		n.touchFullState(q)
	}
}

// HasQueue reports whether the node currently holds state for the
// queue (teardown-regression tests).
func (n *Node) HasQueue(id packet.QueueID) bool {
	_, ok := n.queues[id]
	return ok
}

// ReleaseQueueIfIdle removes an *empty* queue's bookkeeping: the queue
// struct, its round-robin slot, its piggyback advertisement, and any
// queue-open waiters (a departed flow's waiter must never fire again).
// Called on flow departure so a long run with churn does not leak one
// queue per flow that ever existed; a non-empty queue is left alone
// (the packets still need to drain — call again later). Safe against
// stragglers: queueFor auto-creates, so a late in-flight packet simply
// re-materializes the queue. Returns whether the queue is gone.
func (n *Node) ReleaseQueueIfIdle(id packet.QueueID) bool {
	q, ok := n.queues[id]
	if !ok {
		return true
	}
	if q.length() > 0 {
		return false
	}
	delete(n.queues, id)
	delete(n.openWaiters, id)
	for i, qid := range n.order {
		if qid == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	if len(n.order) == 0 {
		n.rrOffset = 0
	} else {
		n.rrOffset %= len(n.order)
	}
	return true
}

// ResetNeighborState forgets all cached neighbor buffer-state
// advertisements. Used on topology change: stale "full" entries from a
// node that crashed (or from before a reroute) would otherwise suppress
// transmissions toward neighbors whose state is simply unknown now.
func (n *Node) ResetNeighborState() {
	n.nbrState = make(map[topology.NodeID]map[packet.QueueID]nbrEntry)
}

// SetBroadcastHandler routes decoded control broadcasts (link-state
// dissemination) to the given callback.
func (n *Node) SetBroadcastHandler(fn func(from topology.NodeID, payload any)) {
	n.broadcastHandler = fn
}

// OnBroadcast implements mac.BroadcastReceiver.
func (n *Node) OnBroadcast(from topology.NodeID, payload any) {
	if n.broadcastHandler != nil {
		n.broadcastHandler(from, payload)
	}
}

// ID returns the node this engine belongs to.
func (n *Node) ID() topology.NodeID { return n.id }

// Config returns the node's forwarding configuration.
func (n *Node) Config() Config { return n.cfg }

func (n *Node) queueFor(id packet.QueueID) *queue {
	q, ok := n.queues[id]
	if !ok {
		q = &queue{id: id, fair: n.cfg.FairAggregation, fullSince: -1}
		n.queues[id] = q
		n.order = append(n.order, id)
	}
	return q
}

// full reports whether the queue can admit nothing more: in plain mode
// the single FIFO is at capacity; in fair mode every existing sub-queue
// is at its per-origin quota (a new origin can always start a sub-queue,
// which the admission paths handle explicitly).
func (n *Node) full(q *queue) bool {
	if !q.fair {
		return q.length() >= n.cfg.QueueSlots
	}
	if len(q.origins) == 0 {
		return false
	}
	for _, o := range q.origins {
		if len(q.subs[o]) < n.cfg.QueueSlots {
			return false
		}
	}
	return true
}

// fullFor reports whether the queue can admit a packet from origin o.
func (n *Node) fullFor(q *queue, o topology.NodeID) bool {
	if !q.fair {
		return q.length() >= n.cfg.QueueSlots
	}
	return len(q.subs[o]) >= n.cfg.QueueSlots
}

// touchFullState updates the queue's full-time accounting after a
// length change.
func (n *Node) touchFullState(q *queue) {
	now := n.sched.Now()
	if n.full(q) {
		if q.fullSince < 0 {
			q.fullSince = now
		}
	} else if q.fullSince >= 0 {
		q.fullAccum += now - q.fullSince
		q.fullSince = -1
	}
	// Queue-open waiters care about local admission, which under fair
	// aggregation is the local origin's own quota. The flag is updated
	// before firing and recomputed after: a waiter typically refills the
	// freed slot reentrantly (source resumes -> Enqueue -> touch), and a
	// stale write-back here would strand the flag at "not full" while
	// the sub-queue is full again, silencing all future wake-ups.
	localFull := n.fullFor(q, n.id)
	wasFull := q.localWasFull
	q.localWasFull = localFull
	if wasFull && !localFull {
		if waiters := n.openWaiters[q.id]; len(waiters) > 0 {
			delete(n.openWaiters, q.id)
			for _, fn := range waiters {
				fn()
			}
		}
		q.localWasFull = n.fullFor(q, n.id)
	}
}

// NotifyQueueOpen registers a one-shot callback fired the next time queue
// id transitions from full to unfull. Flow sources use it to resume packet
// generation when local backpressure releases (§2.2).
func (n *Node) NotifyQueueOpen(id packet.QueueID, fn func()) {
	n.openWaiters[id] = append(n.openWaiters[id], fn)
}

// QueueLen returns the current length of queue id (0 if absent).
func (n *Node) QueueLen(id packet.QueueID) int {
	if q, ok := n.queues[id]; ok {
		return q.length()
	}
	return 0
}

// TotalQueued returns the total number of packets currently buffered at
// this node across all queues (telemetry sampling).
func (n *Node) TotalQueued() int {
	total := 0
	for _, qid := range n.order {
		total += n.queues[qid].length()
	}
	return total
}

// Queues returns the IDs of the queues this node has instantiated, in
// creation order. Under per-destination queueing these are the node's
// served destinations (its virtual nodes).
func (n *Node) Queues() []packet.QueueID {
	return append([]packet.QueueID(nil), n.order...)
}

// Enqueue admits a locally generated packet into the appropriate queue.
// It reports false when the queue is full: per §2.1 the source always
// slows down when its local buffer is full ("the flow source will
// generate new packets at a smaller rate if the network cannot deliver
// its desirable rate"); tail overwrite applies only to relayed arrivals.
func (n *Node) Enqueue(p *packet.Packet) bool {
	q := n.queueFor(n.cfg.Mode.QueueKey(p))
	if n.fullFor(q, n.id) {
		return false
	}
	if n.rec != nil {
		p.ArrivedAt = n.sched.Now()
	}
	q.push(p, n.id)
	if n.spans != nil {
		n.spans.Admitted(n.id, p)
	}
	n.enqueued++
	n.touchFullState(q)
	if n.mac != nil {
		n.mac.Kick()
	}
	return true
}

// NextOutgoing implements mac.Client: round-robin over queues, skipping
// (under congestion avoidance) queues whose downstream buffer is full.
func (n *Node) NextOutgoing() *mac.Outgoing {
	if len(n.order) == 0 {
		return nil
	}
	var earliestRetry time.Duration = -1
	now := n.sched.Now()
	for k := 0; k < len(n.order); k++ {
		qid := n.order[(n.rrOffset+k)%len(n.order)]
		q := n.queues[qid]
		head := q.peek()
		if head == nil {
			continue
		}
		nh, ok := n.routes.NextHop(n.id, head.Dst)
		if !ok {
			q.pop()
			n.touchFullState(q)
			n.dropPkt(head, DropNoRoute)
			k-- // re-examine the same queue
			continue
		}
		if n.cfg.CongestionAvoidance && nh != head.Dst {
			if entry, known := n.nbrState[nh][qid]; known && !entry.free {
				age := now - entry.at
				if age < n.cfg.StaleAfter {
					retryAt := entry.at + n.cfg.StaleAfter
					if earliestRetry < 0 || retryAt < earliestRetry {
						earliestRetry = retryAt
					}
					continue // blocked by downstream backpressure
				}
			}
		}
		pkt, origin := q.pop()
		n.touchFullState(q)
		n.rrOffset = (n.rrOffset + k + 1) % len(n.order)
		return &mac.Outgoing{Pkt: pkt, NextHop: nh, Queue: qid, Origin: origin}
	}
	if earliestRetry >= 0 {
		n.scheduleKick(earliestRetry)
	}
	return nil
}

func (n *Node) scheduleKick(at time.Duration) {
	if n.kickTimer.Pending() {
		return
	}
	n.kickTimer = n.sched.At(at, func() {
		if n.mac != nil {
			n.mac.Kick()
		}
	})
}

// OnSendComplete implements mac.Client.
func (n *Node) OnSendComplete(out *mac.Outgoing, ok bool) {
	if !ok {
		if n.cfg.RequeueOnFailure {
			// The in-flight packet logically kept its buffer slot, so the
			// prepend may transiently exceed the configured capacity by
			// one if upstream refilled the freed slot meanwhile.
			q := n.queueFor(n.cfg.Mode.QueueKey(out.Pkt))
			q.pushFront(out.Pkt, out.Origin)
			if n.spans != nil {
				n.spans.Requeued(n.id, out.Pkt)
			}
			n.touchFullState(q)
			if n.mac != nil {
				n.mac.Kick()
			}
			return
		}
		n.dropPkt(out.Pkt, DropRetry)
		return
	}
	if n.rec != nil {
		n.rec.HopForwarded(n.id, out.Pkt.Flow, n.sched.Now()-out.Pkt.ArrivedAt)
	}
	key := VLinkKey{From: n.id, To: out.NextHop, Queue: n.cfg.Mode.QueueKey(out.Pkt)}
	m := n.meters[key]
	if m == nil {
		m = &VLinkMeter{}
		n.meters[key] = m
	}
	m.Sent++
	if out.Pkt.Stamped {
		observePrimary(&m.Primary, out.Pkt)
	}
}

// observePrimary folds a stamped packet into the primary-flow tracking of
// a virtual link: strictly larger normalized rates reset the set, equal
// rates join it.
func observePrimary(pi *PrimaryInfo, p *packet.Packet) {
	const eps = 1e-9
	switch {
	case p.NormRate > pi.NormRate+eps:
		pi.NormRate = p.NormRate
		pi.Flows = map[packet.FlowID]topology.NodeID{p.Flow: p.Src}
	case p.NormRate >= pi.NormRate-eps:
		if pi.Flows == nil {
			pi.Flows = make(map[packet.FlowID]topology.NodeID)
		}
		pi.Flows[p.Flow] = p.Src
	}
}

// OnReceive implements mac.Client: consume at the destination or enqueue
// for the next hop. Under congestion avoidance a full queue can still
// receive in rare races (the CTS admission check passed an exchange ago);
// the packet is admitted with transient overflow rather than lost, since
// the scheme is loss-free by design (ref [3]).
func (n *Node) OnReceive(p *packet.Packet, from topology.NodeID) {
	key := VLinkKey{From: from, To: n.id, Queue: n.cfg.Mode.QueueKey(p)}
	m := n.received[key]
	if m == nil {
		m = &VLinkMeter{}
		n.received[key] = m
	}
	m.Sent++
	if p.Stamped {
		observePrimary(&m.Primary, p)
	}
	if p.Dst == n.id {
		n.sink(p, from)
		return
	}
	q := n.queueFor(n.cfg.Mode.QueueKey(p))
	if n.fullFor(q, from) && !n.cfg.CongestionAvoidance {
		// Tail overwrite exists only for the plain-802.11 baseline,
		// which never uses fair aggregation.
		if n.cfg.OverwriteTail {
			tail := q.pkts[len(q.pkts)-1]
			q.pkts[len(q.pkts)-1] = p
			if n.rec != nil {
				p.ArrivedAt = n.sched.Now()
			}
			if n.spans != nil {
				n.spans.Admitted(n.id, p)
			}
			n.dropPkt(tail, DropTail)
		} else {
			n.dropPkt(p, DropOverflow)
		}
		return
	}
	if n.rec != nil {
		p.ArrivedAt = n.sched.Now()
	}
	q.push(p, from)
	if n.spans != nil {
		n.spans.Admitted(n.id, p)
	}
	n.enqueued++
	n.touchFullState(q)
	if n.mac != nil {
		n.mac.Kick()
	}
}

// AcceptQueue implements mac.Client: the congestion-avoidance admission
// check run by a receiver before granting CTS (ref [3]). Without
// congestion avoidance everything is admitted (and overflow handled at
// enqueue time). Under fair aggregation the check applies the sender's
// own per-origin quota.
func (n *Node) AcceptQueue(id packet.QueueID, from topology.NodeID) bool {
	if !n.cfg.CongestionAvoidance {
		return true
	}
	q, ok := n.queues[id]
	if !ok {
		return true
	}
	return !n.fullFor(q, from)
}

// Piggyback implements mac.Client: advertise one free/full bit per owned
// queue (§2.2).
func (n *Node) Piggyback() []packet.QueueState {
	states := make([]packet.QueueState, 0, len(n.order))
	for _, qid := range n.order {
		states = append(states, packet.QueueState{Queue: qid, Free: !n.full(n.queues[qid])})
	}
	return states
}

// OnOverhear implements mac.Client: cache a neighbor's advertised buffer
// states and wake the MAC if new room opened downstream.
func (n *Node) OnOverhear(from topology.NodeID, states []packet.QueueState) {
	if len(states) == 0 {
		return
	}
	cache := n.nbrState[from]
	if cache == nil {
		cache = make(map[packet.QueueID]nbrEntry)
		n.nbrState[from] = cache
	}
	now := n.sched.Now()
	opened := false
	for _, st := range states {
		prev, known := cache[st.Queue]
		cache[st.Queue] = nbrEntry{free: st.Free, at: now}
		if st.Free && (!known || !prev.free) {
			opened = true
		}
	}
	if opened && n.mac != nil {
		n.mac.Kick()
	}
}

// TakeMeters returns the per-virtual-link send meters accumulated since
// the previous call and resets them. Called once per measurement period.
func (n *Node) TakeMeters() map[VLinkKey]*VLinkMeter {
	out := n.meters
	n.meters = make(map[VLinkKey]*VLinkMeter, len(out))
	return out
}

// TakeReceived returns the per-virtual-link receive meters accumulated
// since the previous call and resets them. Per §6.2 both endpoints of a
// virtual link learn its rate, normalized rate, and primary flows from
// the packets themselves; these are the receiver's copies.
func (n *Node) TakeReceived() map[VLinkKey]*VLinkMeter {
	out := n.received
	n.received = make(map[VLinkKey]*VLinkMeter, len(out))
	return out
}

// FullFraction returns the fraction Ω of the elapsed period during which
// queue id was full, and resets the accumulator (§6.2 "Buffer State").
func (n *Node) FullFraction(id packet.QueueID, period time.Duration) float64 {
	q, ok := n.queues[id]
	if !ok || period <= 0 {
		return 0
	}
	now := n.sched.Now()
	acc := q.fullAccum
	if q.fullSince >= 0 {
		acc += now - q.fullSince
		q.fullSince = now
	}
	q.fullAccum = 0
	if acc > period {
		acc = period
	}
	return float64(acc) / float64(period)
}
