package forwarding

import (
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// testNode builds a forwarding node on a 5-node chain (200 m spacing)
// with no MAC attached (Kick calls are nil-guarded).
func testNode(t *testing.T, id topology.NodeID, cfg Config) (*Node, *sim.Scheduler, *dropLog) {
	t.Helper()
	pos := make([]geom.Point, 5)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 200}
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	routes := routing.Build(topo)
	sched := sim.NewScheduler()
	drops := &dropLog{}
	n := NewNode(id, sched, cfg, routes, nil, drops.record)
	return n, sched, drops
}

type dropLog struct {
	pkts    []*packet.Packet
	reasons []DropReason
}

func (d *dropLog) record(p *packet.Packet, r DropReason) {
	d.pkts = append(d.pkts, p)
	d.reasons = append(d.reasons, r)
}

func pk(flow packet.FlowID, src, dst topology.NodeID, seq int64) *packet.Packet {
	return &packet.Packet{Flow: flow, Src: src, Dst: dst, Seq: seq, SizeBytes: 1024, Weight: 1}
}

func TestModeQueueKey(t *testing.T) {
	p := pk(3, 0, 4, 0)
	if PerDestination.QueueKey(p) != packet.QueueForDest(4) {
		t.Error("per-destination key mismatch")
	}
	if PerFlow.QueueKey(p) != packet.QueueForFlow(3) {
		t.Error("per-flow key mismatch")
	}
	if Shared.QueueKey(p) != packet.SharedQueue {
		t.Error("shared key mismatch")
	}
}

func TestEnqueueDequeueFIFO(t *testing.T) {
	n, _, _ := testNode(t, 1, DefaultConfig())
	for i := 0; i < 3; i++ {
		if !n.Enqueue(pk(0, 1, 4, int64(i))) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := 0; i < 3; i++ {
		out := n.NextOutgoing()
		if out == nil || out.Pkt.Seq != int64(i) {
			t.Fatalf("dequeue %d: %+v", i, out)
		}
		if out.NextHop != 2 {
			t.Fatalf("next hop %d, want 2", out.NextHop)
		}
		if out.Queue != packet.QueueForDest(4) {
			t.Fatalf("queue id %d", out.Queue)
		}
	}
	if n.NextOutgoing() != nil {
		t.Error("empty queue returned a packet")
	}
}

func TestEnqueueFullReturnsFalse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 2
	n, _, _ := testNode(t, 1, cfg)
	if !n.Enqueue(pk(0, 1, 4, 0)) || !n.Enqueue(pk(0, 1, 4, 1)) {
		t.Fatal("fill failed")
	}
	if n.Enqueue(pk(0, 1, 4, 2)) {
		t.Error("enqueue into full queue succeeded")
	}
}

func TestNotifyQueueOpen(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	cfg.CongestionAvoidance = false
	n, _, _ := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	fired := 0
	n.NotifyQueueOpen(packet.QueueForDest(4), func() { fired++ })
	if fired != 0 {
		t.Fatal("waiter fired early")
	}
	n.NextOutgoing() // drains, queue transitions full->unfull
	if fired != 1 {
		t.Fatalf("waiter fired %d times, want 1", fired)
	}
	// One-shot: next transition does not re-fire.
	n.Enqueue(pk(0, 1, 4, 1))
	n.NextOutgoing()
	if fired != 1 {
		t.Error("one-shot waiter fired again")
	}
}

func TestRoundRobinAcrossDestinations(t *testing.T) {
	n, _, _ := testNode(t, 1, DefaultConfig())
	// Two destinations, two packets each.
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(0, 1, 4, 1))
	n.Enqueue(pk(1, 1, 3, 0))
	n.Enqueue(pk(1, 1, 3, 1))
	var dsts []topology.NodeID
	for out := n.NextOutgoing(); out != nil; out = n.NextOutgoing() {
		dsts = append(dsts, out.Pkt.Dst)
	}
	want := []topology.NodeID{4, 3, 4, 3}
	for i := range want {
		if dsts[i] != want[i] {
			t.Fatalf("service order %v, want %v", dsts, want)
		}
	}
}

func TestCongestionAvoidanceGating(t *testing.T) {
	n, sched, _ := testNode(t, 1, DefaultConfig())
	n.Enqueue(pk(0, 1, 4, 0))
	// Next hop (node 2) advertises a full queue for destination 4.
	n.OnOverhear(2, []packet.QueueState{{Queue: packet.QueueForDest(4), Free: false}})
	if out := n.NextOutgoing(); out != nil {
		t.Fatal("blocked packet was offered")
	}
	// A fresh free advertisement unblocks.
	n.OnOverhear(2, []packet.QueueState{{Queue: packet.QueueForDest(4), Free: true}})
	if out := n.NextOutgoing(); out == nil {
		t.Fatal("packet not offered after queue opened")
	}
	_ = sched
}

func TestStaleFullStateOverridden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaleAfter = 10 * time.Millisecond
	n, sched, _ := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	n.OnOverhear(2, []packet.QueueState{{Queue: packet.QueueForDest(4), Free: false}})
	if n.NextOutgoing() != nil {
		t.Fatal("fresh full state ignored")
	}
	// After StaleAfter without refresh, the node attempts anyway (§2.2).
	sched.At(20*time.Millisecond, func() {})
	sched.Run(20 * time.Millisecond)
	if n.NextOutgoing() == nil {
		t.Fatal("stale full state still blocking")
	}
}

func TestGatingIgnoredForFinalHop(t *testing.T) {
	// Destination is the direct neighbor: it consumes instantly, no
	// gating applies even if some state claims otherwise.
	n, _, _ := testNode(t, 3, DefaultConfig())
	n.Enqueue(pk(0, 3, 4, 0))
	n.OnOverhear(4, []packet.QueueState{{Queue: packet.QueueForDest(4), Free: false}})
	if n.NextOutgoing() == nil {
		t.Fatal("final-hop packet blocked by destination state")
	}
}

func TestSharedFIFOTailOverwrite(t *testing.T) {
	cfg := Config{Mode: Shared, QueueSlots: 2, OverwriteTail: true}
	n, _, drops := testNode(t, 1, cfg)
	n.OnReceive(pk(0, 0, 4, 0), 0)
	n.OnReceive(pk(0, 0, 4, 1), 0)
	n.OnReceive(pk(0, 0, 4, 2), 0) // overwrites seq 1
	if len(drops.pkts) != 1 || drops.pkts[0].Seq != 1 || drops.reasons[0] != DropTail {
		t.Fatalf("drops = %v %v", drops.pkts, drops.reasons)
	}
	first := n.NextOutgoing()
	second := n.NextOutgoing()
	if first.Pkt.Seq != 0 || second.Pkt.Seq != 2 {
		t.Errorf("queue order %d,%d; want 0,2", first.Pkt.Seq, second.Pkt.Seq)
	}
}

func TestOverflowDropWithoutOverwrite(t *testing.T) {
	cfg := Config{Mode: Shared, QueueSlots: 1}
	n, _, drops := testNode(t, 1, cfg)
	n.OnReceive(pk(0, 0, 4, 0), 0)
	n.OnReceive(pk(0, 0, 4, 1), 0)
	if len(drops.pkts) != 1 || drops.reasons[0] != DropOverflow {
		t.Fatalf("drops = %v", drops.reasons)
	}
}

func TestCAReceiveOverflowAdmitted(t *testing.T) {
	// Under congestion avoidance a race can deliver into a full queue;
	// the packet is admitted with transient overflow, never dropped.
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	n, _, drops := testNode(t, 1, cfg)
	n.OnReceive(pk(0, 0, 4, 0), 0)
	n.OnReceive(pk(0, 0, 4, 1), 0)
	if len(drops.pkts) != 0 {
		t.Fatalf("CA dropped a packet: %v", drops.reasons)
	}
	if n.QueueLen(packet.QueueForDest(4)) != 2 {
		t.Errorf("queue len %d, want 2", n.QueueLen(packet.QueueForDest(4)))
	}
}

func TestSinkDelivery(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 200}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sunk []*packet.Packet
	n := NewNode(1, sim.NewScheduler(), DefaultConfig(), routing.Build(topo),
		func(p *packet.Packet, _ topology.NodeID) { sunk = append(sunk, p) }, nil)
	n.OnReceive(pk(0, 0, 1, 0), 0)
	if len(sunk) != 1 {
		t.Fatal("packet for this node not delivered to sink")
	}
	if n.QueueLen(packet.QueueForDest(1)) != 0 {
		t.Error("sink packet was queued")
	}
}

func TestRequeueOnFailurePreservesOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequeueOnFailure = true
	n, _, drops := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(0, 1, 4, 1))
	out := n.NextOutgoing()
	n.OnSendComplete(out, false)
	if len(drops.pkts) != 0 {
		t.Fatal("requeue mode dropped a packet")
	}
	again := n.NextOutgoing()
	if again.Pkt.Seq != 0 {
		t.Errorf("requeued packet not at head: seq %d", again.Pkt.Seq)
	}
}

func TestRetryDropWithoutRequeue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequeueOnFailure = false
	n, _, drops := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	out := n.NextOutgoing()
	n.OnSendComplete(out, false)
	if len(drops.pkts) != 1 || drops.reasons[0] != DropRetry {
		t.Fatalf("drops = %v", drops.reasons)
	}
}

func TestMetersCountAckedPackets(t *testing.T) {
	n, _, _ := testNode(t, 1, DefaultConfig())
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(0, 1, 4, 1))
	for out := n.NextOutgoing(); out != nil; out = n.NextOutgoing() {
		n.OnSendComplete(out, true)
	}
	meters := n.TakeMeters()
	key := VLinkKey{From: 1, To: 2, Queue: packet.QueueForDest(4)}
	m := meters[key]
	if m == nil || m.Sent != 2 {
		t.Fatalf("meter = %+v", m)
	}
	// TakeMeters resets.
	if len(n.TakeMeters()) != 0 {
		t.Error("meters not reset")
	}
}

func TestPrimaryFlowTracking(t *testing.T) {
	n, _, _ := testNode(t, 1, DefaultConfig())
	stamped := func(flow packet.FlowID, mu float64, seq int64) *packet.Packet {
		p := pk(flow, 1, 4, seq)
		p.NormRate = mu
		p.Stamped = true
		return p
	}
	n.Enqueue(stamped(0, 50, 0))
	n.Enqueue(stamped(1, 80, 0))
	n.Enqueue(stamped(2, 80, 0))
	n.Enqueue(pk(3, 1, 4, 0)) // unstamped: must not affect the primary set
	for out := n.NextOutgoing(); out != nil; out = n.NextOutgoing() {
		n.OnSendComplete(out, true)
	}
	key := VLinkKey{From: 1, To: 2, Queue: packet.QueueForDest(4)}
	m := n.TakeMeters()[key]
	if m.Primary.NormRate != 80 {
		t.Fatalf("primary norm rate %v, want 80", m.Primary.NormRate)
	}
	if len(m.Primary.Flows) != 2 {
		t.Fatalf("primary flows = %v, want flows 1 and 2", m.Primary.Flows)
	}
	if _, ok := m.Primary.Flows[1]; !ok {
		t.Error("flow 1 missing from primaries")
	}
	if _, ok := m.Primary.Flows[2]; !ok {
		t.Error("flow 2 missing from primaries")
	}
}

func TestFullFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	n, sched, _ := testNode(t, 1, cfg)
	period := 100 * time.Millisecond

	// Queue full for the middle half of the period.
	sched.At(25*time.Millisecond, func() { n.Enqueue(pk(0, 1, 4, 0)) })
	sched.At(75*time.Millisecond, func() { n.NextOutgoing() })
	sched.Run(period)
	omega := n.FullFraction(packet.QueueForDest(4), period)
	if omega < 0.49 || omega > 0.51 {
		t.Errorf("omega = %v, want 0.5", omega)
	}
	// Accumulator reset.
	sched.Run(2 * period)
	if got := n.FullFraction(packet.QueueForDest(4), period); got != 0 {
		t.Errorf("omega after reset = %v, want 0", got)
	}
}

func TestFullFractionStillFullAtPeriodEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	n, sched, _ := testNode(t, 1, cfg)
	period := 100 * time.Millisecond
	sched.At(50*time.Millisecond, func() { n.Enqueue(pk(0, 1, 4, 0)) })
	sched.Run(period)
	if got := n.FullFraction(packet.QueueForDest(4), period); got < 0.49 || got > 0.51 {
		t.Errorf("omega = %v, want 0.5", got)
	}
	// The queue stays full across the boundary: the next period should
	// account the full span again from its start.
	sched.Run(2 * period)
	if got := n.FullFraction(packet.QueueForDest(4), period); got < 0.99 {
		t.Errorf("omega = %v, want ~1.0", got)
	}
}

func TestNoRouteDrop(t *testing.T) {
	// Destination 0 unreachable from an isolated island? On the chain
	// everything is reachable, so craft an unreachable dst by using a
	// two-node disconnected topology.
	pos := []geom.Point{{X: 0}, {X: 1000}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	drops := &dropLog{}
	n := NewNode(0, sim.NewScheduler(), DefaultConfig(), routing.Build(topo), nil, drops.record)
	n.Enqueue(pk(0, 0, 1, 0))
	if n.NextOutgoing() != nil {
		t.Fatal("offered a packet with no route")
	}
	if len(drops.reasons) != 1 || drops.reasons[0] != DropNoRoute {
		t.Fatalf("drops = %v", drops.reasons)
	}
}

func TestAcceptQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	n, _, _ := testNode(t, 1, cfg)
	q := packet.QueueForDest(4)
	if !n.AcceptQueue(q, 0) {
		t.Error("empty/unknown queue rejected")
	}
	n.Enqueue(pk(0, 1, 4, 0))
	if n.AcceptQueue(q, 0) {
		t.Error("full queue accepted")
	}
	// Without congestion avoidance everything is accepted.
	cfg2 := Config{Mode: Shared, QueueSlots: 1, OverwriteTail: true}
	n2, _, _ := testNode(t, 1, cfg2)
	n2.OnReceive(pk(0, 0, 4, 0), 0)
	if !n2.AcceptQueue(packet.SharedQueue, 0) {
		t.Error("non-CA node rejected a frame")
	}
}

func TestPiggybackReflectsQueueState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	n, _, _ := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(1, 1, 3, 0))
	n.NextOutgoing() // drains one of them (dest 4 first)
	states := n.Piggyback()
	if len(states) != 2 {
		t.Fatalf("states = %v", states)
	}
	byQueue := make(map[packet.QueueID]bool)
	for _, st := range states {
		byQueue[st.Queue] = st.Free
	}
	if !byQueue[packet.QueueForDest(4)] {
		t.Error("drained queue advertised full")
	}
	if byQueue[packet.QueueForDest(3)] {
		t.Error("full queue advertised free")
	}
}

func TestDropReasonStrings(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropOverflow: "overflow",
		DropTail:     "tail-overwrite",
		DropRetry:    "retry-limit",
		DropNoRoute:  "no-route",
	} {
		if r.String() != want {
			t.Errorf("reason %d = %q", int(r), r.String())
		}
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		PerDestination: "per-destination",
		PerFlow:        "per-flow",
		Shared:         "shared-fifo",
	} {
		if m.String() != want {
			t.Errorf("mode %d = %q", int(m), m.String())
		}
	}
}

func TestPerFlowModeIsolatesFlows(t *testing.T) {
	// Under per-flow queueing (2PP) one flow's backlog cannot crowd out
	// another flow to the same destination.
	cfg := Config{Mode: PerFlow, QueueSlots: 2, CongestionAvoidance: true,
		StaleAfter: 50 * time.Millisecond}
	n, _, _ := testNode(t, 1, cfg)
	// Flow 0 fills its queue.
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(0, 1, 4, 1))
	if n.Enqueue(pk(0, 1, 4, 2)) {
		t.Fatal("flow 0's queue should be full")
	}
	// Flow 1 to the same destination still has room.
	if !n.Enqueue(pk(1, 1, 4, 0)) {
		t.Fatal("flow 1 blocked by flow 0's backlog")
	}
	if n.QueueLen(packet.QueueForFlow(0)) != 2 || n.QueueLen(packet.QueueForFlow(1)) != 1 {
		t.Error("queue key separation broken")
	}
}

func TestPerDestModeSharesQueueAcrossFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 2
	n, _, _ := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(1, 1, 4, 0)) // same destination, different flow
	if n.Enqueue(pk(2, 1, 4, 0)) {
		t.Error("per-destination queue should be shared (and now full)")
	}
}

func TestStaleKickTimerScheduled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaleAfter = 10 * time.Millisecond
	n, sched, _ := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	n.OnOverhear(2, []packet.QueueState{{Queue: packet.QueueForDest(4), Free: false}})
	if n.NextOutgoing() != nil {
		t.Fatal("blocked packet offered")
	}
	// The node must have scheduled a retry kick at the staleness expiry
	// (observable as a pending event).
	if sched.Pending() == 0 {
		t.Error("no kick timer scheduled for the stale-state retry")
	}
}

func TestFairAggregationRoundRobin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FairAggregation = true
	cfg.QueueSlots = 10
	n, _, _ := testNode(t, 1, cfg)
	// Local source floods; one relayed packet arrives from node 0.
	for i := 0; i < 5; i++ {
		n.Enqueue(pk(0, 1, 4, int64(i)))
	}
	n.OnReceive(pk(1, 0, 4, 0), 0)
	// Service must alternate origins: local, upstream, local, ...
	first := n.NextOutgoing()
	second := n.NextOutgoing()
	third := n.NextOutgoing()
	if first.Pkt.Flow != 0 {
		t.Fatalf("first packet from flow %d", first.Pkt.Flow)
	}
	if second.Pkt.Flow != 1 {
		t.Fatalf("relayed packet not served second (flow %d)", second.Pkt.Flow)
	}
	if third.Pkt.Flow != 0 {
		t.Fatalf("third packet from flow %d", third.Pkt.Flow)
	}
}

func TestFairAggregationPerOriginQuota(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FairAggregation = true
	cfg.QueueSlots = 2
	n, _, _ := testNode(t, 1, cfg)
	// The local source fills its own quota...
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(0, 1, 4, 1))
	if n.Enqueue(pk(0, 1, 4, 2)) {
		t.Fatal("local source exceeded its quota")
	}
	// ...but the upstream neighbor still has a full quota of its own:
	// both the CTS admission check and delivery must succeed.
	if !n.AcceptQueue(packet.QueueForDest(4), 0) {
		t.Fatal("admission refused despite free per-origin quota")
	}
	n.OnReceive(pk(1, 0, 4, 0), 0)
	n.OnReceive(pk(1, 0, 4, 1), 0)
	if n.AcceptQueue(packet.QueueForDest(4), 0) {
		t.Error("admission allowed beyond the origin's quota")
	}
	if n.QueueLen(packet.QueueForDest(4)) != 4 {
		t.Errorf("len = %d, want 4 (2 per origin)", n.QueueLen(packet.QueueForDest(4)))
	}
}

func TestFairAggregationRequeuePreservesOrigin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FairAggregation = true
	cfg.RequeueOnFailure = true
	n, _, _ := testNode(t, 1, cfg)
	n.OnReceive(pk(1, 0, 4, 7), 0) // relayed from node 0
	out := n.NextOutgoing()
	if out.Origin != 0 {
		t.Fatalf("origin = %d, want 0", out.Origin)
	}
	n.OnSendComplete(out, false)
	again := n.NextOutgoing()
	if again == nil || again.Pkt.Seq != 7 || again.Origin != 0 {
		t.Fatalf("requeue lost origin: %+v", again)
	}
}

func TestDropAllPurgesEveryQueue(t *testing.T) {
	n, _, drops := testNode(t, 1, DefaultConfig())
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(0, 1, 4, 1))
	n.Enqueue(pk(1, 1, 3, 0))
	n.DropAll(DropNodeDown)
	if got := len(drops.pkts); got != 3 {
		t.Fatalf("dropped %d packets, want 3", got)
	}
	for i, r := range drops.reasons {
		if r != DropNodeDown {
			t.Errorf("drop %d reason %v, want %v", i, r, DropNodeDown)
		}
	}
	if n.NextOutgoing() != nil {
		t.Error("packet survived DropAll")
	}
	if n.QueueLen(packet.QueueForDest(4)) != 0 || n.QueueLen(packet.QueueForDest(3)) != 0 {
		t.Error("queue length nonzero after DropAll")
	}
}

// TestDropAllReleasesFullState fills a 1-slot queue, purges it, and
// checks a registered queue-open waiter fires: DropAll must emit the
// same full->unfull transition a drain would.
func TestDropAllReleasesFullState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1
	cfg.CongestionAvoidance = false
	n, _, _ := testNode(t, 1, cfg)
	n.Enqueue(pk(0, 1, 4, 0))
	fired := 0
	n.NotifyQueueOpen(packet.QueueForDest(4), func() { fired++ })
	n.DropAll(DropNodeDown)
	if fired != 1 {
		t.Fatalf("queue-open waiter fired %d times after DropAll, want 1", fired)
	}
	if !n.Enqueue(pk(0, 1, 4, 1)) {
		t.Error("enqueue failed after DropAll freed the queue")
	}
}

// TestSetRoutesSwitchesNextHop swaps in a table built with a relay
// excluded and checks the very next dequeue uses the repaired path.
func TestSetRoutesSwitchesNextHop(t *testing.T) {
	// Ring of 4 nodes, 200 m apart along the ring so 0-1-2-3-0 are the
	// only links. 0->2 initially routes via a neighbor; excluding it must
	// switch to the other.
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 200, Y: 200}, {X: 0, Y: 200}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	n := NewNode(0, sched, DefaultConfig(), routing.Build(topo), nil, func(*packet.Packet, DropReason) {})
	n.Enqueue(pk(0, 0, 2, 0))
	out := n.NextOutgoing()
	if out == nil {
		t.Fatal("no outgoing")
	}
	first := out.NextHop
	if first != 1 && first != 3 {
		t.Fatalf("next hop %d not a ring neighbor", first)
	}
	down := make([]bool, 4)
	down[first] = true
	n.SetRoutes(routing.BuildExcluding(topo, down))
	n.Enqueue(pk(0, 0, 2, 1))
	out = n.NextOutgoing()
	if out == nil {
		t.Fatal("no outgoing after reroute")
	}
	want := topology.NodeID(4 - first) // the other neighbor: 1<->3
	if out.NextHop != want {
		t.Errorf("next hop after reroute = %d, want %d", out.NextHop, want)
	}
}

func TestResetNeighborState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSlots = 1 // neighbor "full" marks gate sends
	n, _, _ := testNode(t, 1, cfg)
	// Mark next hop 2's queue full: packets to dest 4 are withheld.
	n.OnOverhear(2, []packet.QueueState{{Queue: packet.QueueForDest(4), Free: false}})
	n.Enqueue(pk(0, 1, 4, 0))
	if out := n.NextOutgoing(); out != nil {
		t.Fatalf("sent %+v into a full downstream queue", out.Pkt)
	}
	// A route epoch wipes the stale state; the packet flows again.
	n.ResetNeighborState()
	if out := n.NextOutgoing(); out == nil {
		t.Error("packet still withheld after ResetNeighborState")
	}
}

func TestReleaseQueueIfIdle(t *testing.T) {
	n, _, _ := testNode(t, 1, DefaultConfig())
	qid := packet.QueueForDest(4)
	n.Enqueue(pk(0, 1, 4, 0))
	n.Enqueue(pk(1, 1, 3, 0))
	if !n.HasQueue(qid) {
		t.Fatal("queue not created")
	}
	// Non-empty: refuses, state intact.
	if n.ReleaseQueueIfIdle(qid) {
		t.Fatal("released a non-empty queue")
	}
	if !n.HasQueue(qid) {
		t.Fatal("refused release still removed the queue")
	}
	n.NextOutgoing() // drains dest-4 (round-robin starts at creation order)
	fired := false
	n.NotifyQueueOpen(qid, func() { fired = true })
	if !n.ReleaseQueueIfIdle(qid) {
		t.Fatal("empty queue not released")
	}
	if n.HasQueue(qid) {
		t.Fatal("queue survives release")
	}
	// The departed flow's waiter is gone: no advertisement, no callback.
	for _, st := range n.Piggyback() {
		if st.Queue == qid {
			t.Fatal("released queue still advertised")
		}
	}
	// Round-robin over the survivor still works.
	out := n.NextOutgoing()
	if out == nil || out.Pkt.Dst != 3 {
		t.Fatalf("survivor not served: %+v", out)
	}
	if fired {
		t.Fatal("released queue's waiter fired")
	}
	// Unknown queue: trivially gone.
	if !n.ReleaseQueueIfIdle(packet.QueueForDest(2)) {
		t.Fatal("unknown queue reported as retained")
	}
	// Straggler re-materializes the queue.
	n.Enqueue(pk(0, 1, 4, 1))
	if !n.HasQueue(qid) {
		t.Fatal("straggler did not recreate the queue")
	}
}
