// Package admission implements distributed admission control for flow
// arrivals under the 2-hop interference model, plus the overload
// watchdog that sheds flows when admission's static test proves too
// optimistic at runtime.
//
// The admission test is the per-clique sufficient condition of
// Ganesan's admission-control analysis (see PAPERS.md): under 2-hop
// interference every set of mutually contending links is covered by the
// contention cliques of internal/clique, and a set of flows is
// serveable at per-weight share s if, for every clique Q,
//
//	Σ_f  w(f) · crossings(f, Q) · s  ≤  headroom · capacity(Q)
//
// where crossings(f, Q) counts the flow's path links inside Q — the
// identical accounting internal/maxminref uses to build its capacity
// constraints. A flow's source can evaluate the test locally from the
// clique utilizations the dissemination layer already carries
// (DESIGN.md documents the centralized-oracle substitution used here,
// the same one the ProtocolGMP engine makes).
//
// The test is static: it guarantees the *booked* load fits, not that
// 802.11's imperfect scheduling actually delivers it. The Watchdog
// covers the gap: when a clique's §5.3 reduce-condition persists for K
// consecutive adjustment periods, the newest admitted flow crossing
// that clique is shed — graceful degradation instead of collapse.
package admission

import (
	"fmt"
	"math"
	"sort"

	"gmp/internal/clique"
	"gmp/internal/packet"
	"gmp/internal/topology"
)

// Reason classifies why a flow was refused or removed.
type Reason int

// Refusal reasons. The zero value means "admitted".
const (
	// NoRoute: the flow's source is down or no route to its destination
	// exists at arrival time.
	NoRoute Reason = iota + 1
	// CliqueOverload: admitting the flow would push some path clique's
	// booked load past its capacity budget.
	CliqueOverload
	// Shed: the flow was admitted but later removed by the overload
	// watchdog.
	Shed
)

// String names the reason as in telemetry and CLI output.
func (r Reason) String() string {
	switch r {
	case NoRoute:
		return "no-route"
	case CliqueOverload:
		return "clique-overload"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Params parameterizes the admission test and the overload watchdog.
type Params struct {
	// MinShare is the weighted per-flow share in pkt/s that every
	// admitted flow must remain entitled to: an arrival is admitted only
	// if every clique on its path can still grant MinShare per unit of
	// weighted link-crossing to all booked flows. Required positive.
	MinShare float64
	// Headroom is the fraction of each clique's capacity admission may
	// book, in (0,1]. Zero defaults to 1 (book the full capacity).
	Headroom float64
	// ShedAfter is the watchdog threshold K: a clique whose §5.3
	// reduce-condition persists for K consecutive adjustment periods
	// sheds its newest admitted flow. Zero defaults to 3.
	ShedAfter int
}

// DefaultShedAfter is the watchdog's default persistence threshold.
const DefaultShedAfter = 3

// WithDefaults returns a copy with zero optional fields replaced.
func (p Params) WithDefaults() Params {
	if p.Headroom == 0 {
		p.Headroom = 1
	}
	if p.ShedAfter == 0 {
		p.ShedAfter = DefaultShedAfter
	}
	return p
}

// Validate checks the parameters (after WithDefaults).
func (p Params) Validate() error {
	if math.IsNaN(p.MinShare) || math.IsInf(p.MinShare, 0) || p.MinShare <= 0 {
		return fmt.Errorf("admission: min share %v must be a positive finite rate", p.MinShare)
	}
	if math.IsNaN(p.Headroom) || p.Headroom <= 0 || p.Headroom > 1 {
		return fmt.Errorf("admission: headroom %v outside (0,1]", p.Headroom)
	}
	if p.ShedAfter < 0 {
		return fmt.Errorf("admission: negative shed-after %d", p.ShedAfter)
	}
	return nil
}

// entry is the booked state of one admitted flow.
type entry struct {
	weight float64
	links  []topology.Link // path links, undirected canonical form
	seq    int             // admission order (newest = largest)
}

// Controller books admitted flows against the clique capacities and
// answers the admission test for new arrivals. It is the source-side
// decision logic; the simulator evaluates it centrally (the same oracle
// substitution DESIGN.md documents for ProtocolGMP).
type Controller struct {
	params   Params
	cliques  *clique.Set
	capacity float64 // uniform clique capacity in pkt/s

	booked map[clique.ID]float64 // Σ weight·crossings per clique
	flows  map[packet.FlowID]*entry
	seq    int
}

// NewController builds a controller over the clique decomposition with
// a uniform clique capacity (radio.Params.SaturationRate). Params must
// already be validated.
func NewController(params Params, cliques *clique.Set, capacity float64) *Controller {
	return &Controller{
		params:   params.WithDefaults(),
		cliques:  cliques,
		capacity: capacity,
		booked:   make(map[clique.ID]float64),
		flows:    make(map[packet.FlowID]*entry),
	}
}

// crossings tallies weight·(path links inside each clique) for a path.
func (c *Controller) crossings(weight float64, links []topology.Link) map[clique.ID]float64 {
	out := make(map[clique.ID]float64)
	for _, l := range links {
		for _, q := range c.cliques.Of(l) {
			out[q.ID] += weight
		}
	}
	return out
}

// Admit runs the per-clique test for a new flow and books it when it
// passes. links is the flow's current routing path. Returns zero on
// admission, CliqueOverload when some path clique's budget is exhausted.
func (c *Controller) Admit(id packet.FlowID, weight float64, links []topology.Link) Reason {
	add := c.crossings(weight, links)
	budget := c.params.Headroom * c.capacity
	for q, w := range add {
		if (c.booked[q]+w)*c.params.MinShare > budget {
			return CliqueOverload
		}
	}
	c.book(id, weight, links, add)
	return 0
}

// Book registers a flow without running the test — the grandfathering
// path for a scenario's static flows, which were never subject to
// admission but still consume clique budget.
func (c *Controller) Book(id packet.FlowID, weight float64, links []topology.Link) {
	c.book(id, weight, links, c.crossings(weight, links))
}

func (c *Controller) book(id packet.FlowID, weight float64, links []topology.Link, add map[clique.ID]float64) {
	for q, w := range add {
		c.booked[q] += w
	}
	c.flows[id] = &entry{
		weight: weight,
		links:  append([]topology.Link(nil), links...),
		seq:    c.seq,
	}
	c.seq++
}

// Release unbooks a departed (or shed) flow. Unknown IDs are a no-op.
func (c *Controller) Release(id packet.FlowID) {
	e, ok := c.flows[id]
	if !ok {
		return
	}
	for q, w := range c.crossings(e.weight, e.links) {
		c.booked[q] -= w
		if c.booked[q] <= 1e-12 {
			delete(c.booked, q)
		}
	}
	delete(c.flows, id)
}

// Booked returns the booked weighted crossings of one clique.
func (c *Controller) Booked(q clique.ID) float64 { return c.booked[q] }

// NumFlows returns how many flows are currently booked.
func (c *Controller) NumFlows() int { return len(c.flows) }

// NewestCrossing returns the most recently admitted flow with ID ≥
// minID whose booked path crosses clique q (the watchdog's shedding
// victim: newest first, and minID excludes grandfathered static flows).
func (c *Controller) NewestCrossing(q clique.ID, minID packet.FlowID) (packet.FlowID, bool) {
	best, bestSeq := packet.FlowID(0), -1
	for id, e := range c.flows {
		if id < minID || e.seq <= bestSeq {
			continue
		}
		for _, l := range e.links {
			if crossesClique(c.cliques, l, q) {
				best, bestSeq = id, e.seq
				break
			}
		}
	}
	return best, bestSeq >= 0
}

func crossesClique(s *clique.Set, l topology.Link, q clique.ID) bool {
	for _, c := range s.Of(l) {
		if c.ID == q {
			return true
		}
	}
	return false
}

// SetCliques swaps in a new clique decomposition (mobility epoch) and
// re-books every retained flow against it. Path links that no longer
// exist simply stop consuming budget; the booked paths themselves are
// not re-routed (the flows' packets follow the repaired routing tables
// regardless — the booking is an accounting approximation, tightened
// again as flows depart and arrive).
func (c *Controller) SetCliques(s *clique.Set) {
	c.cliques = s
	c.booked = make(map[clique.ID]float64)
	for _, e := range c.flows {
		for q, w := range c.crossings(e.weight, e.links) {
			c.booked[q] += w
		}
	}
}

// Watchdog tracks per-clique reduce-condition streaks and fires when a
// streak reaches the ShedAfter threshold.
type Watchdog struct {
	k      int
	streak map[clique.ID]int
}

// NewWatchdog builds a watchdog with threshold k (≥1).
func NewWatchdog(k int) *Watchdog {
	if k < 1 {
		k = DefaultShedAfter
	}
	return &Watchdog{k: k, streak: make(map[clique.ID]int)}
}

// Observe folds one adjustment period's overloaded cliques (those whose
// §5.3 reduce-condition fired) into the streaks and returns, sorted,
// the cliques whose streak just reached the threshold. Fired cliques
// have their streak reset so each firing sheds one flow per clique;
// cliques absent from the report reset to zero.
func (w *Watchdog) Observe(overloaded []clique.ID) []clique.ID {
	seen := make(map[clique.ID]bool, len(overloaded))
	var fired []clique.ID
	for _, q := range overloaded {
		seen[q] = true
		w.streak[q]++
		if w.streak[q] >= w.k {
			w.streak[q] = 0
			fired = append(fired, q)
		}
	}
	for q := range w.streak {
		if !seen[q] {
			delete(w.streak, q)
		}
	}
	sort.Slice(fired, func(i, j int) bool {
		if fired[i].Owner != fired[j].Owner {
			return fired[i].Owner < fired[j].Owner
		}
		return fired[i].Seq < fired[j].Seq
	})
	return fired
}
