package admission

import (
	"testing"

	"gmp/internal/clique"
	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/topology"
)

// chain builds a 4-node 200m chain: one clique holding all 3 links.
func chain(t *testing.T) (*topology.Topology, *clique.Set) {
	t.Helper()
	topo, err := topology.New([]geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo, clique.Build(topo)
}

func pathLinks(n int) []topology.Link {
	links := make([]topology.Link, n)
	for i := 0; i < n; i++ {
		links[i] = topology.Link{From: topology.NodeID(i), To: topology.NodeID(i + 1)}
	}
	return links
}

func TestParamsValidate(t *testing.T) {
	good := Params{MinShare: 50, Headroom: 0.9, ShedAfter: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for name, p := range map[string]Params{
		"zero min share":     {MinShare: 0, Headroom: 1},
		"negative min share": {MinShare: -5, Headroom: 1},
		"headroom above 1":   {MinShare: 50, Headroom: 1.5},
		"negative shed":      {MinShare: 50, Headroom: 1, ShedAfter: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
	d := Params{MinShare: 50}.WithDefaults()
	if d.Headroom != 1 || d.ShedAfter != DefaultShedAfter {
		t.Fatalf("WithDefaults gave %+v", d)
	}
}

func TestAdmitUntilBudgetThenReject(t *testing.T) {
	_, set := chain(t)
	// Capacity 1000 pkt/s, min share 100: the single clique sees 3
	// crossings per end-to-end flow, so each flow books 300 and the 4th
	// flow (booked 900 → 1200) must be refused.
	ctrl := NewController(Params{MinShare: 100}, set, 1000)
	for i := 0; i < 3; i++ {
		if r := ctrl.Admit(packet.FlowID(i), 1, pathLinks(3)); r != 0 {
			t.Fatalf("flow %d rejected with %v, want admitted", i, r)
		}
	}
	if r := ctrl.Admit(4, 1, pathLinks(3)); r != CliqueOverload {
		t.Fatalf("4th flow got %v, want CliqueOverload", r)
	}
	if n := ctrl.NumFlows(); n != 3 {
		t.Fatalf("NumFlows = %d, want 3", n)
	}
	// A single-hop flow crosses the clique once: 900+100 = 1000 fits.
	if r := ctrl.Admit(5, 1, pathLinks(1)); r != 0 {
		t.Fatalf("single-hop flow got %v, want admitted", r)
	}
}

func TestReleaseFreesBudget(t *testing.T) {
	_, set := chain(t)
	ctrl := NewController(Params{MinShare: 100}, set, 1000)
	for i := 0; i < 3; i++ {
		if r := ctrl.Admit(packet.FlowID(i), 1, pathLinks(3)); r != 0 {
			t.Fatalf("flow %d rejected: %v", i, r)
		}
	}
	if r := ctrl.Admit(3, 1, pathLinks(3)); r != CliqueOverload {
		t.Fatalf("overload not detected: %v", r)
	}
	ctrl.Release(1)
	if r := ctrl.Admit(3, 1, pathLinks(3)); r != 0 {
		t.Fatalf("after release flow got %v, want admitted", r)
	}
	ctrl.Release(99) // unknown id is a no-op
	// Releasing everything should empty the books entirely.
	for _, id := range []packet.FlowID{0, 2, 3} {
		ctrl.Release(id)
	}
	if n := ctrl.NumFlows(); n != 0 {
		t.Fatalf("NumFlows = %d after releasing all, want 0", n)
	}
	q := set.All()[0].ID
	if b := ctrl.Booked(q); b != 0 {
		t.Fatalf("clique still books %v after releasing all", b)
	}
}

func TestWeightAndHeadroom(t *testing.T) {
	_, set := chain(t)
	// Headroom 0.5 halves the budget to 500; one weight-2 3-hop flow
	// books 600 and must be refused even on an empty controller.
	ctrl := NewController(Params{MinShare: 100, Headroom: 0.5}, set, 1000)
	if r := ctrl.Admit(0, 2, pathLinks(3)); r != CliqueOverload {
		t.Fatalf("weight-2 flow got %v, want CliqueOverload", r)
	}
	if r := ctrl.Admit(0, 1, pathLinks(2)); r != 0 {
		t.Fatalf("2-hop weight-1 flow got %v, want admitted", r)
	}
}

func TestBookGrandfathersWithoutTest(t *testing.T) {
	_, set := chain(t)
	ctrl := NewController(Params{MinShare: 1000}, set, 100)
	// Book skips the test even though this load could never be admitted.
	ctrl.Book(0, 1, pathLinks(3))
	if n := ctrl.NumFlows(); n != 1 {
		t.Fatalf("NumFlows = %d, want 1", n)
	}
	if r := ctrl.Admit(1, 1, pathLinks(1)); r != CliqueOverload {
		t.Fatalf("arrival against grandfathered overload got %v, want CliqueOverload", r)
	}
}

func TestNewestCrossing(t *testing.T) {
	_, set := chain(t)
	ctrl := NewController(Params{MinShare: 1}, set, 1e9)
	q := set.All()[0].ID
	ctrl.Book(0, 1, pathLinks(3)) // static, below minID
	if r := ctrl.Admit(10, 1, pathLinks(3)); r != 0 {
		t.Fatal(r)
	}
	if r := ctrl.Admit(11, 1, pathLinks(1)); r != 0 {
		t.Fatal(r)
	}
	id, ok := ctrl.NewestCrossing(q, 10)
	if !ok || id != 11 {
		t.Fatalf("NewestCrossing = %v,%v, want 11,true", id, ok)
	}
	ctrl.Release(11)
	id, ok = ctrl.NewestCrossing(q, 10)
	if !ok || id != 10 {
		t.Fatalf("after release NewestCrossing = %v,%v, want 10,true", id, ok)
	}
	ctrl.Release(10)
	if _, ok := ctrl.NewestCrossing(q, 10); ok {
		t.Fatal("NewestCrossing found a victim among grandfathered flows")
	}
}

func TestSetCliquesRebooks(t *testing.T) {
	topo, set := chain(t)
	ctrl := NewController(Params{MinShare: 100}, set, 1000)
	if r := ctrl.Admit(0, 1, pathLinks(3)); r != 0 {
		t.Fatal(r)
	}
	before := ctrl.Booked(set.All()[0].ID)
	if before != 3 {
		t.Fatalf("booked %v, want 3", before)
	}
	// Re-decompose over the same topology: bookings must be identical.
	fresh := clique.Build(topo)
	ctrl.SetCliques(fresh)
	if after := ctrl.Booked(fresh.All()[0].ID); after != before {
		t.Fatalf("re-booked %v, want %v", after, before)
	}
}

func TestWatchdogStreaks(t *testing.T) {
	wd := NewWatchdog(3)
	a := clique.ID{Owner: 1, Seq: 0}
	b := clique.ID{Owner: 2, Seq: 0}
	if fired := wd.Observe([]clique.ID{a, b}); len(fired) != 0 {
		t.Fatalf("fired after 1 period: %v", fired)
	}
	if fired := wd.Observe([]clique.ID{a}); len(fired) != 0 {
		t.Fatalf("fired after 2 periods: %v", fired)
	}
	// b's streak reset by its absence above; only a reaches 3.
	fired := wd.Observe([]clique.ID{a, b})
	if len(fired) != 1 || fired[0] != a {
		t.Fatalf("fired = %v, want [%v]", fired, a)
	}
	// a's streak was reset on firing: two more periods to fire again,
	// while b (streak 1 after the reset above) reaches 3 first.
	if fired := wd.Observe([]clique.ID{a, b}); len(fired) != 0 {
		t.Fatalf("refired too soon: %v", fired)
	}
	fired = wd.Observe([]clique.ID{a, b})
	if len(fired) != 1 || fired[0] != b {
		t.Fatalf("fired = %v, want [%v]", fired, b)
	}
	fired = wd.Observe([]clique.ID{a, b})
	if len(fired) != 1 || fired[0] != a {
		t.Fatalf("fired = %v, want [%v]", fired, a)
	}
}

func TestWatchdogFiredSorted(t *testing.T) {
	wd := NewWatchdog(1)
	in := []clique.ID{{Owner: 3, Seq: 1}, {Owner: 1, Seq: 2}, {Owner: 1, Seq: 0}}
	fired := wd.Observe(in)
	want := []clique.ID{{Owner: 1, Seq: 0}, {Owner: 1, Seq: 2}, {Owner: 3, Seq: 1}}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}
