package clique

import (
	"math/rand"
	"reflect"
	"testing"

	"gmp/internal/geom"
	"gmp/internal/topology"
)

// assertEqualSets compares two decompositions clique-by-clique,
// identifiers included, plus the by-link index.
func assertEqualSets(t *testing.T, step int, got, want *Set) {
	t.Helper()
	if len(got.All()) != len(want.All()) {
		t.Fatalf("step %d: %d cliques, want %d\n got: %v\n want %v",
			step, len(got.All()), len(want.All()), render(got), render(want))
	}
	for i, g := range got.All() {
		w := want.All()[i]
		if g.ID != w.ID || !reflect.DeepEqual(g.Links, w.Links) {
			t.Fatalf("step %d: clique %d mismatch: got %v %v, want %v %v",
				step, i, g.ID, g.Links, w.ID, w.Links)
		}
	}
	for _, w := range want.All() {
		for _, l := range w.Links {
			gs, ws := got.Of(l), want.Of(l)
			if len(gs) != len(ws) {
				t.Fatalf("step %d: Of(%v): %d cliques, want %d", step, l, len(gs), len(ws))
			}
			for i := range gs {
				if gs[i].ID != ws[i].ID {
					t.Fatalf("step %d: Of(%v)[%d] = %v, want %v", step, l, i, gs[i].ID, ws[i].ID)
				}
			}
		}
	}
}

func render(s *Set) [][]topology.Link {
	var out [][]topology.Link
	for _, c := range s.All() {
		out = append(out, c.Links)
	}
	return out
}

// TestUpdateMatchesBuild is the clique half of the mobility differential
// oracle: over randomized motion sequences the incremental Update must
// reproduce Build exactly, identifiers and by-link index included.
func TestUpdateMatchesBuild(t *testing.T) {
	const (
		steps = 100
		n     = 18
		w, h  = 900.0, 900.0
	)
	configs := []topology.Config{
		{TxRange: 250, CSRange: 250},
		{TxRange: 250, CSRange: 420},
	}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			pos := make([]geom.Point, n)
			for i := range pos {
				pos[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
			}
			topo := topology.MustNew(pos, cfg)
			inc := Build(topo)
			for step := 0; step < steps; step++ {
				k := 1 + rng.Intn(3)
				perm := rng.Perm(n)
				moved := make([]topology.NodeID, 0, k)
				np := make([]geom.Point, 0, k)
				for _, idx := range perm[:k] {
					moved = append(moved, topology.NodeID(idx))
					np = append(np, geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h})
				}
				if _, err := topo.MoveNodes(moved, np); err != nil {
					t.Fatalf("cfg %+v seed %d step %d: %v", cfg, seed, step, err)
				}
				prevIDs := make([]ID, len(inc.All()))
				for i, c := range inc.All() {
					prevIDs[i] = c.ID
				}
				next := Update(topo, inc, moved)
				assertEqualSets(t, step, next, Build(topo))
				// Update must not write through to its input.
				for i, c := range inc.All() {
					if c.ID != prevIDs[i] {
						t.Fatalf("cfg %+v seed %d step %d: old set mutated", cfg, seed, step)
					}
				}
				inc = next
			}
		}
	}
}
