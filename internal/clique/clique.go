// Package clique builds the link-contention graph of a wireless network
// and enumerates its proper (maximal) contention cliques (§3.3), which
// bound the combined rate of their member links by the channel capacity.
//
// Clique identifiers follow §6.3: each clique is named by the smallest
// node ID appearing in the clique plus a sequence number, which is how the
// paper makes identifiers system-wide unique while assignable by a single
// local node.
package clique

import (
	"fmt"
	"sort"

	"gmp/internal/topology"
)

// ID is a system-wide unique clique identifier (§6.3).
type ID struct {
	// Owner is the smallest node ID among the clique's link endpoints;
	// that node assigns the sequence number.
	Owner topology.NodeID
	Seq   int
}

// String renders the identifier as "owner.seq".
func (id ID) String() string { return fmt.Sprintf("%d.%d", id.Owner, id.Seq) }

// Clique is one proper (maximal) set of mutually contending links. Links
// are stored undirected in canonical (low, high) order, sorted.
type Clique struct {
	ID    ID
	Links []topology.Link
}

// Contains reports whether the clique includes the (undirected) link l.
func (c *Clique) Contains(l topology.Link) bool {
	u := l.Undirected()
	for _, m := range c.Links {
		if m == u {
			return true
		}
	}
	return false
}

// minNode returns the smallest node ID among the clique's endpoints.
func (c *Clique) minNode() topology.NodeID {
	low := c.Links[0].From
	for _, l := range c.Links {
		if l.From < low {
			low = l.From
		}
		if l.To < low {
			low = l.To
		}
	}
	return low
}

// Set is the complete clique decomposition of a topology.
type Set struct {
	cliques []*Clique
	byLink  map[topology.Link][]*Clique
}

// Build enumerates every proper contention clique of the topology's links
// using Bron–Kerbosch with pivoting on the link-contention graph.
// Only links actually usable for routing (between neighbors) participate.
// Each undirected link appears once.
func Build(topo *topology.Topology) *Set {
	// Collect undirected links.
	seen := make(map[topology.Link]bool)
	var links []topology.Link
	for _, l := range topo.Links() {
		u := l.Undirected()
		if !seen[u] {
			seen[u] = true
			links = append(links, u)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})

	// Contention adjacency between link indices.
	n := len(links)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if topo.LinksContend(links[i], links[j]) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}

	var out []*Clique
	for _, r := range maximalCliques(n, adj) {
		out = append(out, cliqueFromIndices(links, r))
	}
	return finish(out)
}

// maximalCliques enumerates every maximal clique of the graph given by
// its adjacency matrix, using Bron–Kerbosch with pivoting.
func maximalCliques(n int, adj [][]bool) [][]int {
	var out [][]int
	var bronKerbosch func(r, p, x []int)
	bronKerbosch = func(r, p, x []int) {
		if len(p) == 0 && len(x) == 0 {
			if len(r) == 0 {
				return // edge-free graph: nothing to emit
			}
			out = append(out, append([]int(nil), r...))
			return
		}
		// Pivot: vertex of p ∪ x with most neighbors in p.
		pivot, best := -1, -1
		for _, v := range append(append([]int(nil), p...), x...) {
			cnt := 0
			for _, w := range p {
				if adj[v][w] {
					cnt++
				}
			}
			if cnt > best {
				best = cnt
				pivot = v
			}
		}
		var candidates []int
		for _, v := range p {
			if pivot == -1 || !adj[pivot][v] {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			bronKerbosch(append(r, v), np, nx)
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	bronKerbosch(nil, all, nil)
	return out
}

// cliqueFromIndices materializes a clique from vertex indices into the
// link table, with the canonical sorted link order.
func cliqueFromIndices(links []topology.Link, r []int) *Clique {
	ls := make([]topology.Link, len(r))
	for i, idx := range r {
		ls[i] = links[idx]
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return &Clique{Links: ls}
}

// finish sorts the cliques into canonical order, assigns the §6.3
// owner.seq identifiers, and indexes them by member link. Both Build and
// the incremental Update funnel through it so identifier assignment is
// identical for identical clique sets.
func finish(out []*Clique) *Set {
	sort.Slice(out, func(i, j int) bool { return cliqueLess(out[i], out[j]) })
	seq := make(map[topology.NodeID]int)
	byLink := make(map[topology.Link][]*Clique)
	for _, c := range out {
		owner := c.minNode()
		c.ID = ID{Owner: owner, Seq: seq[owner]}
		seq[owner]++
		for _, l := range c.Links {
			byLink[l] = append(byLink[l], c)
		}
	}
	return &Set{cliques: out, byLink: byLink}
}

func cliqueLess(a, b *Clique) bool {
	for i := 0; i < len(a.Links) && i < len(b.Links); i++ {
		if a.Links[i] != b.Links[i] {
			if a.Links[i].From != b.Links[i].From {
				return a.Links[i].From < b.Links[i].From
			}
			return a.Links[i].To < b.Links[i].To
		}
	}
	return len(a.Links) < len(b.Links)
}

// All returns every proper contention clique.
func (s *Set) All() []*Clique { return s.cliques }

// Of returns the cliques that contain the (undirected) link l. A
// bandwidth-saturated link always belongs to at least one of these (§3.3).
func (s *Set) Of(l topology.Link) []*Clique { return s.byLink[l.Undirected()] }

// ByID looks a clique up by identifier.
func (s *Set) ByID(id ID) (*Clique, bool) {
	for _, c := range s.cliques {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}
