// Package clique builds the link-contention graph of a wireless network
// and enumerates its proper (maximal) contention cliques (§3.3), which
// bound the combined rate of their member links by the channel capacity.
//
// Clique identifiers follow §6.3: each clique is named by the smallest
// node ID appearing in the clique plus a sequence number, which is how the
// paper makes identifiers system-wide unique while assignable by a single
// local node.
package clique

import (
	"fmt"
	"slices"
	"sort"

	"gmp/internal/topology"
)

// ID is a system-wide unique clique identifier (§6.3).
type ID struct {
	// Owner is the smallest node ID among the clique's link endpoints;
	// that node assigns the sequence number.
	Owner topology.NodeID
	Seq   int
}

// String renders the identifier as "owner.seq".
func (id ID) String() string { return fmt.Sprintf("%d.%d", id.Owner, id.Seq) }

// Clique is one proper (maximal) set of mutually contending links. Links
// are stored undirected in canonical (low, high) order, sorted.
type Clique struct {
	ID    ID
	Links []topology.Link
}

// Contains reports whether the clique includes the (undirected) link l.
func (c *Clique) Contains(l topology.Link) bool {
	u := l.Undirected()
	for _, m := range c.Links {
		if m == u {
			return true
		}
	}
	return false
}

// minNode returns the smallest node ID among the clique's endpoints.
func (c *Clique) minNode() topology.NodeID {
	low := c.Links[0].From
	for _, l := range c.Links {
		if l.From < low {
			low = l.From
		}
		if l.To < low {
			low = l.To
		}
	}
	return low
}

// Set is the complete clique decomposition of a topology.
type Set struct {
	cliques []*Clique
	byLink  map[topology.Link][]*Clique
}

// Build enumerates every proper contention clique of the topology's links
// using Bron–Kerbosch (degeneracy-ordered, with pivoting) on the
// link-contention graph. Only links actually usable for routing (between
// neighbors) participate. Each undirected link appears once.
//
// The contention graph is assembled sparsely: a link's possible
// contenders are exactly the links incident to its endpoints' carrier-
// sense neighborhoods (which the topology derives from its spatial
// grid), so construction costs O(L·density²) rather than the all-pairs
// O(L²). The dense-matrix enumerator is retained as the differential
// oracle (TestSparseMatchesDense).
func Build(topo *topology.Topology) *Set {
	links := undirectedLinks(topo)
	incident := incidentLists(topo.NumNodes(), links)
	nbr := make([][]int32, len(links))
	mark := make([]bool, len(links))
	for i := range links {
		nbr[i] = contentionNeighbors(topo, links, incident, i, mark)
	}
	var out []*Clique
	for _, r := range maximalCliquesSparse(len(links), nbr) {
		out = append(out, cliqueFromIndices32(links, r))
	}
	return finish(out)
}

// undirectedLinks returns each undirected link once, in canonical
// ascending (From, To) order. Radio ranges are symmetric, so every
// undirected edge appears in topo.Links() in both directions and the
// (From < To) filter keeps exactly one.
func undirectedLinks(topo *topology.Topology) []topology.Link {
	var links []topology.Link
	for _, l := range topo.Links() {
		if l.From < l.To {
			links = append(links, l)
		}
	}
	return links
}

// incidentLists maps each node to the ascending indices (into links) of
// the undirected links touching it.
func incidentLists(numNodes int, links []topology.Link) [][]int32 {
	incident := make([][]int32, numNodes)
	for i, l := range links {
		incident[l.From] = append(incident[l.From], int32(i))
		incident[l.To] = append(incident[l.To], int32(i))
	}
	return incident
}

// contentionNeighbors returns the sorted indices of every link
// contending with links[i]. Candidates come from the links incident to
// the endpoints and their carrier-sense neighborhoods: two links contend
// only when they share a node or have endpoints within CS range, so any
// contender is incident to a node of that set — no scan of the full
// link table. mark is an all-false scratch of len(links), restored
// before returning.
func contentionNeighbors(topo *topology.Topology, links []topology.Link, incident [][]int32, i int, mark []bool) []int32 {
	l := links[i]
	var out []int32
	mark[i] = true // exclude self
	consider := func(node topology.NodeID) {
		for _, j := range incident[node] {
			if !mark[j] && topo.LinksContend(l, links[j]) {
				mark[j] = true
				out = append(out, j)
			}
		}
	}
	consider(l.From)
	consider(l.To)
	for _, v := range topo.CSNeighbors(l.From) {
		consider(v)
	}
	for _, v := range topo.CSNeighbors(l.To) {
		consider(v)
	}
	slices.Sort(out)
	mark[i] = false
	for _, j := range out {
		mark[j] = false
	}
	return out
}

// maximalCliques enumerates every maximal clique of the graph given by
// its adjacency matrix, using Bron–Kerbosch with pivoting.
func maximalCliques(n int, adj [][]bool) [][]int {
	var out [][]int
	var bronKerbosch func(r, p, x []int)
	bronKerbosch = func(r, p, x []int) {
		if len(p) == 0 && len(x) == 0 {
			if len(r) == 0 {
				return // edge-free graph: nothing to emit
			}
			out = append(out, append([]int(nil), r...))
			return
		}
		// Pivot: vertex of p ∪ x with most neighbors in p.
		pivot, best := -1, -1
		for _, v := range append(append([]int(nil), p...), x...) {
			cnt := 0
			for _, w := range p {
				if adj[v][w] {
					cnt++
				}
			}
			if cnt > best {
				best = cnt
				pivot = v
			}
		}
		var candidates []int
		for _, v := range p {
			if pivot == -1 || !adj[pivot][v] {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			bronKerbosch(append(r, v), np, nx)
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	bronKerbosch(nil, all, nil)
	return out
}

// maximalCliquesSparse enumerates the same maximal cliques as
// maximalCliques (the dense differential oracle, TestSparseMatchesDense)
// from sorted adjacency lists instead of a matrix. The outer loop visits
// vertices in degeneracy order — each vertex's subproblem is confined to
// its later neighbors — and the recursion uses the standard pivot rule
// on sorted-slice intersections, so the cost tracks the graph's
// degeneracy (bounded by local density in geometric contention graphs)
// rather than its size. Output order is unspecified; callers
// canonicalize via finish.
func maximalCliquesSparse(n int, nbr [][]int32) [][]int32 {
	var out [][]int32
	var bk func(r, p, x []int32)
	bk = func(r, p, x []int32) {
		if len(p) == 0 && len(x) == 0 {
			if len(r) == 0 {
				return
			}
			out = append(out, append([]int32(nil), r...))
			return
		}
		// Pivot: vertex of p ∪ x with most neighbors in p.
		pivot, best := int32(-1), -1
		for _, set := range [2][]int32{p, x} {
			for _, u := range set {
				if c := countIntersect(nbr[u], p); c > best {
					best, pivot = c, u
				}
			}
		}
		candidates := subtractSorted(p, nbr[pivot])
		for _, v := range candidates {
			bk(append(r, v), intersectSorted(p, nbr[v]), intersectSorted(x, nbr[v]))
			p = removeSorted(p, v)
			x = insertSorted(x, v)
		}
	}
	order, pos := degeneracyOrder(n, nbr)
	var p, x []int32
	for _, v := range order {
		p, x = p[:0], x[:0]
		for _, w := range nbr[v] {
			if pos[w] > pos[v] {
				p = append(p, w)
			} else {
				x = append(x, w)
			}
		}
		bk([]int32{v}, p, x)
	}
	return out
}

// degeneracyOrder returns a vertex order built by repeatedly removing a
// minimum-residual-degree vertex (ties toward lower index), plus each
// vertex's position in that order.
func degeneracyOrder(n int, nbr [][]int32) (order []int32, pos []int32) {
	deg := make([]int32, n)
	maxDeg := 0
	for v := range nbr {
		deg[v] = int32(len(nbr[v]))
		if len(nbr[v]) > maxDeg {
			maxDeg = len(nbr[v])
		}
	}
	// Bucket queue over residual degrees.
	buckets := make([][]int32, maxDeg+1)
	for v := n - 1; v >= 0; v-- {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	order = make([]int32, 0, n)
	pos = make([]int32, n)
	cur := 0
	for len(order) < n {
		if cur > 0 && len(buckets[cur-1]) > 0 {
			cur-- // a neighbor removal may have exposed a lower bucket
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != int32(cur) {
			continue // stale bucket entry; v lives in a lower bucket now
		}
		removed[v] = true
		pos[v] = int32(len(order))
		order = append(order, v)
		for _, w := range nbr[v] {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	return order, pos
}

// countIntersect returns |a ∩ b| for sorted slices.
func countIntersect(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			c++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return c
}

// intersectSorted returns a fresh sorted a ∩ b.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// subtractSorted returns a fresh sorted a \ b.
func subtractSorted(a, b []int32) []int32 {
	var out []int32
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// removeSorted returns sorted a with v removed (in place).
func removeSorted(a []int32, v int32) []int32 {
	at := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if at == len(a) || a[at] != v {
		return a
	}
	return append(a[:at], a[at+1:]...)
}

// insertSorted returns sorted a with v inserted (appends then rotates).
func insertSorted(a []int32, v int32) []int32 {
	at := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	a = append(a, 0)
	copy(a[at+1:], a[at:])
	a[at] = v
	return a
}

// cliqueFromIndices32 is cliqueFromIndices for the sparse enumerator's
// index type.
func cliqueFromIndices32(links []topology.Link, r []int32) *Clique {
	ls := make([]topology.Link, len(r))
	for i, idx := range r {
		ls[i] = links[idx]
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return &Clique{Links: ls}
}

// cliqueFromIndices materializes a clique from vertex indices into the
// link table, with the canonical sorted link order.
func cliqueFromIndices(links []topology.Link, r []int) *Clique {
	ls := make([]topology.Link, len(r))
	for i, idx := range r {
		ls[i] = links[idx]
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return &Clique{Links: ls}
}

// finish sorts the cliques into canonical order, assigns the §6.3
// owner.seq identifiers, and indexes them by member link. Both Build and
// the incremental Update funnel through it so identifier assignment is
// identical for identical clique sets.
func finish(out []*Clique) *Set {
	sort.Slice(out, func(i, j int) bool { return cliqueLess(out[i], out[j]) })
	seq := make(map[topology.NodeID]int)
	byLink := make(map[topology.Link][]*Clique)
	for _, c := range out {
		owner := c.minNode()
		c.ID = ID{Owner: owner, Seq: seq[owner]}
		seq[owner]++
		for _, l := range c.Links {
			byLink[l] = append(byLink[l], c)
		}
	}
	return &Set{cliques: out, byLink: byLink}
}

func cliqueLess(a, b *Clique) bool {
	for i := 0; i < len(a.Links) && i < len(b.Links); i++ {
		if a.Links[i] != b.Links[i] {
			if a.Links[i].From != b.Links[i].From {
				return a.Links[i].From < b.Links[i].From
			}
			return a.Links[i].To < b.Links[i].To
		}
	}
	return len(a.Links) < len(b.Links)
}

// All returns every proper contention clique.
func (s *Set) All() []*Clique { return s.cliques }

// Of returns the cliques that contain the (undirected) link l. A
// bandwidth-saturated link always belongs to at least one of these (§3.3).
func (s *Set) Of(l topology.Link) []*Clique { return s.byLink[l.Undirected()] }

// ByID looks a clique up by identifier.
func (s *Set) ByID(id ID) (*Clique, bool) {
	for _, c := range s.cliques {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}
