package clique

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// denseFromSparse converts sorted adjacency lists to the boolean matrix
// the dense oracle consumes.
func denseFromSparse(n int, nbr [][]int32) [][]bool {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for _, j := range nbr[i] {
			adj[i][j] = true
		}
	}
	return adj
}

// canonCliques renders a clique family order-independently so the two
// enumerators can be compared regardless of emission order.
func canonCliques(cs [][]int32) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		s := append([]int32(nil), c...)
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		out[i] = fmt.Sprint(s)
	}
	sort.Strings(out)
	return out
}

// TestSparseMatchesDenseEnumeration is the differential oracle for the
// degeneracy-ordered sparse Bron–Kerbosch: on random graphs across a
// density sweep it must emit exactly the maximal cliques the dense
// matrix-based enumerator finds (including isolated vertices, which both
// report as singletons).
func TestSparseMatchesDenseEnumeration(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		p := rng.Float64() // edge probability: sparse through near-complete
		nbr := make([][]int32, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					nbr[i] = append(nbr[i], int32(j))
					nbr[j] = append(nbr[j], int32(i))
				}
			}
		}
		sparse := canonCliques(maximalCliquesSparse(n, nbr))
		var dense32 [][]int32
		for _, c := range maximalCliques(n, denseFromSparse(n, nbr)) {
			c32 := make([]int32, len(c))
			for i, v := range c {
				c32[i] = int32(v)
			}
			dense32 = append(dense32, c32)
		}
		dense := canonCliques(dense32)
		if len(sparse) != len(dense) {
			t.Fatalf("seed %d (n=%d p=%.2f): sparse found %d cliques, dense %d",
				seed, n, p, len(sparse), len(dense))
		}
		for i := range sparse {
			if sparse[i] != dense[i] {
				t.Fatalf("seed %d (n=%d p=%.2f): clique %d differs\nsparse: %s\n dense: %s",
					seed, n, p, i, sparse[i], dense[i])
			}
		}
	}
}
