package clique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmp/internal/geom"
	"gmp/internal/topology"
)

func build(t *testing.T, pos []geom.Point) (*topology.Topology, *Set) {
	t.Helper()
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo, Build(topo)
}

func TestChainSingleClique(t *testing.T) {
	// 4-node chain at 200 m: all three links mutually contend (nodes 1
	// and 2 are within carrier sense of everything).
	_, set := build(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}})
	all := set.All()
	if len(all) != 1 {
		t.Fatalf("got %d cliques, want 1: %v", len(all), all)
	}
	if len(all[0].Links) != 3 {
		t.Fatalf("clique has %d links, want 3", len(all[0].Links))
	}
}

func TestLongChainSlidingCliques(t *testing.T) {
	// 6-node chain: cliques slide along; every clique holds 3
	// consecutive links except at the ends.
	_, set := build(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}, {X: 800}, {X: 1000}})
	for _, c := range set.All() {
		if len(c.Links) < 2 || len(c.Links) > 3 {
			t.Errorf("unexpected clique size %d: %v", len(c.Links), c.Links)
		}
	}
	// Link (2,3) in the middle must belong to at least two cliques.
	if got := len(set.Of(topology.Link{From: 2, To: 3})); got < 2 {
		t.Errorf("middle link in %d cliques, want >= 2", got)
	}
}

func TestFig2CliqueStructure(t *testing.T) {
	// The Figure 2 geometry (§7.1): cliques {(0,1),(1,2)} and
	// {(1,2),(3,4),(4,5)} — plus the incidental unused link (2,4) that
	// carrier-sense geometry necessarily creates (see DESIGN.md).
	_, set := build(t, []geom.Point{
		{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0},
		{X: 430, Y: 390}, {X: 430, Y: 150}, {X: 650, Y: 80},
	})
	l01 := topology.Link{From: 0, To: 1}
	l12 := topology.Link{From: 1, To: 2}
	l34 := topology.Link{From: 3, To: 4}
	l45 := topology.Link{From: 4, To: 5}

	var clique0, clique1 *Clique
	for _, c := range set.All() {
		if c.Contains(l01) && c.Contains(l12) {
			clique0 = c
		}
		if c.Contains(l12) && c.Contains(l34) && c.Contains(l45) {
			clique1 = c
		}
	}
	if clique0 == nil {
		t.Fatal("missing clique {(0,1),(1,2)}")
	}
	if clique1 == nil {
		t.Fatal("missing clique {(1,2),(3,4),(4,5)}")
	}
	if clique0.Contains(l34) || clique0.Contains(l45) {
		t.Error("clique 0 wrongly contains clique-1 links")
	}
	if clique1.Contains(l01) {
		t.Error("clique 1 wrongly contains (0,1)")
	}
}

func TestCliqueIDsAreUnique(t *testing.T) {
	_, set := build(t, []geom.Point{
		{X: 0}, {X: 200}, {X: 400}, {X: 600}, {X: 800},
		{X: 100, Y: 200}, {X: 300, Y: 200},
	})
	seen := make(map[ID]bool)
	for _, c := range set.All() {
		if seen[c.ID] {
			t.Fatalf("duplicate clique ID %v", c.ID)
		}
		seen[c.ID] = true
		if got, ok := set.ByID(c.ID); !ok || got != c {
			t.Fatalf("ByID(%v) failed", c.ID)
		}
	}
	if _, ok := set.ByID(ID{Owner: 99, Seq: 0}); ok {
		t.Error("ByID found nonexistent clique")
	}
}

func TestCliqueOwnerIsSmallestNode(t *testing.T) {
	_, set := build(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}})
	for _, c := range set.All() {
		low := c.Links[0].From
		for _, l := range c.Links {
			if l.From < low {
				low = l.From
			}
			if l.To < low {
				low = l.To
			}
		}
		if c.ID.Owner != low {
			t.Errorf("clique %v owner %d, want %d", c.Links, c.ID.Owner, low)
		}
	}
}

func TestOfUsesUndirectedLookup(t *testing.T) {
	_, set := build(t, []geom.Point{{X: 0}, {X: 200}})
	fwd := set.Of(topology.Link{From: 0, To: 1})
	rev := set.Of(topology.Link{From: 1, To: 0})
	if len(fwd) != 1 || len(rev) != 1 || fwd[0] != rev[0] {
		t.Error("Of should be direction-insensitive")
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 250, Y: 180}, {X: 50, Y: 220}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := Build(topo), Build(topo)
	if len(a.All()) != len(b.All()) {
		t.Fatal("different clique counts across builds")
	}
	for i := range a.All() {
		ca, cb := a.All()[i], b.All()[i]
		if ca.ID != cb.ID || len(ca.Links) != len(cb.Links) {
			t.Fatal("clique enumeration is not deterministic")
		}
		for j := range ca.Links {
			if ca.Links[j] != cb.Links[j] {
				t.Fatal("clique links differ across builds")
			}
		}
	}
}

// cliqueInvariants verifies the defining properties of a proper-clique
// decomposition: members contend pairwise, cliques are maximal, every
// link is covered, and no clique contains another.
func cliqueInvariants(topo *topology.Topology, set *Set) string {
	links := make(map[topology.Link]bool)
	for _, l := range topo.Links() {
		links[l.Undirected()] = true
	}
	covered := make(map[topology.Link]bool)
	for _, c := range set.All() {
		// Pairwise contention.
		for i := 0; i < len(c.Links); i++ {
			for j := i + 1; j < len(c.Links); j++ {
				if !topo.LinksContend(c.Links[i], c.Links[j]) {
					return "non-contending links in one clique"
				}
			}
		}
		// Maximality: no outside link contends with every member.
		for l := range links {
			if c.Contains(l) {
				continue
			}
			all := true
			for _, m := range c.Links {
				if !topo.LinksContend(l, m) {
					all = false
					break
				}
			}
			if all {
				return "clique is not maximal"
			}
		}
		for _, l := range c.Links {
			covered[l] = true
		}
	}
	for l := range links {
		if !covered[l] {
			return "link not covered by any clique"
		}
	}
	// No clique contained in another.
	for i, a := range set.All() {
		for j, b := range set.All() {
			if i == j {
				continue
			}
			contained := true
			for _, l := range a.Links {
				if !b.Contains(l) {
					contained = false
					break
				}
			}
			if contained {
				return "clique contained in another"
			}
		}
	}
	return ""
}

func TestCliqueInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}
		}
		topo, err := topology.New(pos, topology.DefaultConfig())
		if err != nil {
			return false
		}
		if len(topo.Links()) == 0 {
			return true
		}
		set := Build(topo)
		if msg := cliqueInvariants(topo, set); msg != "" {
			t.Logf("seed %d: %s", seed, msg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
