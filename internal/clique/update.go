// Incremental maintenance of the contention-clique decomposition under
// node motion. Only links incident to a moved node can change their
// contention relation (contention depends solely on endpoint positions),
// so cliques built entirely from non-mover links survive; everything
// else is re-enumerated on the small subgraph around the movers.
package clique

import (
	"fmt"

	"gmp/internal/topology"
)

// Update returns the clique decomposition of topo after the nodes in
// moved changed position, reusing old (the decomposition before the
// move). The result is deep-equal to Build(topo) — identifiers included —
// at a fraction of the cost when few nodes moved; the from-scratch Build
// is kept as the differential oracle (TestUpdateMatchesBuild). old is not
// modified.
//
// Correctness sketch. Every maximal clique of the new contention graph is
// found by one of three routes:
//   - no mover-incident link, maximal before the move: it is a kept old
//     clique, still a clique (its pairwise contention is unchanged); it
//     stays maximal unless some new mover-incident link extends it, which
//     is re-checked here.
//   - at least one mover-incident link a: it lies inside {a} ∪ N(a), so
//     Bron–Kerbosch on the candidate subgraph S ⊇ A ∪ N(A) finds it, and
//     subgraph-maximality implies graph-maximality (any extender contends
//     with a, hence lies in S).
//   - no mover-incident link, NOT maximal before the move: its old
//     extender must have been mover-incident, so it lay inside a dropped
//     (or de-maximalized kept) clique; its links are folded into S and a
//     full-graph maximality check filters the survivors.
func Update(topo *topology.Topology, old *Set, moved []topology.NodeID) *Set {
	isMover := make([]bool, topo.NumNodes())
	for _, m := range moved {
		isMover[m] = true
	}
	moverLink := func(l topology.Link) bool { return isMover[l.From] || isMover[l.To] }

	// All undirected links of the new topology, in Build's canonical
	// order (needed for contention neighborhoods and maximality checks).
	var allLinks []topology.Link
	for _, l := range topo.Links() {
		if l.From < l.To {
			allLinks = append(allLinks, l)
		}
	}

	// New mover-incident undirected links.
	var aNew []topology.Link
	for _, l := range allLinks {
		if moverLink(l) {
			aNew = append(aNew, l)
		}
	}

	contendsAll := func(d topology.Link, links []topology.Link) bool {
		for _, l := range links {
			if !topo.LinksContend(d, l) {
				return false
			}
		}
		return true
	}

	// Partition the old cliques: drop every clique touching a mover (its
	// contention relations may have changed) and every survivor that a
	// new mover-incident link can extend (no longer maximal). The
	// non-mover links of dropped cliques seed the candidate subgraph so
	// newly exposed sub-cliques are re-enumerated.
	var kept []*Clique
	pool := make(map[topology.Link]bool)
	for _, c := range old.cliques {
		dropped := false
		for _, l := range c.Links {
			if moverLink(l) {
				dropped = true
				break
			}
		}
		if !dropped {
			for _, a := range aNew {
				if contendsAll(a, c.Links) {
					dropped = true // extendable: its extensions carry a
					break
				}
			}
		}
		if dropped {
			for _, l := range c.Links {
				if !moverLink(l) {
					pool[l] = true
				}
			}
		} else {
			kept = append(kept, c)
		}
	}

	// Candidate subgraph S = A ∪ N(A) ∪ pool.
	inS := make(map[topology.Link]bool)
	for _, a := range aNew {
		inS[a] = true
	}
	for _, l := range allLinks {
		if inS[l] {
			continue
		}
		for _, a := range aNew {
			if l != a && topo.LinksContend(a, l) {
				inS[l] = true
				break
			}
		}
	}
	for l := range pool {
		inS[l] = true // non-mover links always persist in the new graph
	}
	sub := make([]topology.Link, 0, len(inS))
	for _, l := range allLinks {
		if inS[l] {
			sub = append(sub, l)
		}
	}

	adj := make([][]bool, len(sub))
	for i := range adj {
		adj[i] = make([]bool, len(sub))
	}
	for i := 0; i < len(sub); i++ {
		for j := i + 1; j < len(sub); j++ {
			if topo.LinksContend(sub[i], sub[j]) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}

	keptKeys := make(map[string]bool, len(kept))
	for _, c := range kept {
		keptKeys[linkKey(c.Links)] = true
	}

	// Fresh Clique values throughout: finish reassigns identifiers and
	// must not write through to the caller's old set.
	out := make([]*Clique, 0, len(kept))
	for _, c := range kept {
		out = append(out, &Clique{Links: c.Links})
	}
	for _, r := range maximalCliques(len(sub), adj) {
		c := cliqueFromIndices(sub, r)
		hasMover := false
		for _, l := range c.Links {
			if moverLink(l) {
				hasMover = true
				break
			}
		}
		if !hasMover {
			// Subgraph-maximality does not imply graph-maximality for
			// all-non-mover candidates: verify against the full link set
			// and skip duplicates of kept cliques.
			if keptKeys[linkKey(c.Links)] {
				continue
			}
			if extendable(topo, allLinks, c.Links) {
				continue
			}
		}
		out = append(out, c)
	}
	return finish(out)
}

// extendable reports whether some link outside members contends with
// every member, i.e. the clique is not maximal in the full graph.
func extendable(topo *topology.Topology, allLinks, members []topology.Link) bool {
	inC := make(map[topology.Link]bool, len(members))
	for _, l := range members {
		inC[l] = true
	}
	for _, d := range allLinks {
		if inC[d] {
			continue
		}
		all := true
		for _, l := range members {
			if !topo.LinksContend(d, l) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// linkKey renders a canonical sorted link list as a map key.
func linkKey(links []topology.Link) string {
	return fmt.Sprint(links)
}
