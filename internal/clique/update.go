// Incremental maintenance of the contention-clique decomposition under
// node motion. Only links incident to a moved node can change their
// contention relation (contention depends solely on endpoint positions),
// so cliques built entirely from non-mover links survive; everything
// else is re-enumerated on the small subgraph around the movers.
package clique

import (
	"fmt"
	"sort"

	"gmp/internal/topology"
)

// Update returns the clique decomposition of topo after the nodes in
// moved changed position, reusing old (the decomposition before the
// move). The result is deep-equal to Build(topo) — identifiers included —
// at a fraction of the cost when few nodes moved; the from-scratch Build
// is kept as the differential oracle (TestUpdateMatchesBuild). old is not
// modified.
//
// Correctness sketch. Every maximal clique of the new contention graph is
// found by one of three routes:
//   - no mover-incident link, maximal before the move: it is a kept old
//     clique, still a clique (its pairwise contention is unchanged); it
//     stays maximal unless some new mover-incident link extends it, which
//     is re-checked here.
//   - at least one mover-incident link a: it lies inside {a} ∪ N(a), so
//     Bron–Kerbosch on the candidate subgraph S ⊇ A ∪ N(A) finds it, and
//     subgraph-maximality implies graph-maximality (any extender contends
//     with a, hence lies in S).
//   - no mover-incident link, NOT maximal before the move: its old
//     extender must have been mover-incident, so it lay inside a dropped
//     (or de-maximalized kept) clique; its links are folded into S and a
//     full-graph maximality check filters the survivors.
func Update(topo *topology.Topology, old *Set, moved []topology.NodeID) *Set {
	isMover := make([]bool, topo.NumNodes())
	for _, m := range moved {
		isMover[m] = true
	}
	moverLink := func(l topology.Link) bool { return isMover[l.From] || isMover[l.To] }

	// All undirected links of the new topology, in Build's canonical
	// order (needed for contention neighborhoods and maximality checks),
	// plus the sparse per-node incidence used to localize every
	// contention query below.
	allLinks := undirectedLinks(topo)
	incident := incidentLists(topo.NumNodes(), allLinks)
	mark := make([]bool, len(allLinks))

	// New mover-incident undirected links.
	var aNew []topology.Link
	var aNewIdx []int32
	for i, l := range allLinks {
		if moverLink(l) {
			aNew = append(aNew, l)
			aNewIdx = append(aNewIdx, int32(i))
		}
	}

	contendsAll := func(d topology.Link, links []topology.Link) bool {
		for _, l := range links {
			if !topo.LinksContend(d, l) {
				return false
			}
		}
		return true
	}

	// Partition the old cliques: drop every clique touching a mover (its
	// contention relations may have changed) and every survivor that a
	// new mover-incident link can extend (no longer maximal). The
	// non-mover links of dropped cliques seed the candidate subgraph so
	// newly exposed sub-cliques are re-enumerated.
	var kept []*Clique
	pool := make(map[topology.Link]bool)
	for _, c := range old.cliques {
		dropped := false
		for _, l := range c.Links {
			if moverLink(l) {
				dropped = true
				break
			}
		}
		if !dropped {
			for _, a := range aNew {
				if contendsAll(a, c.Links) {
					dropped = true // extendable: its extensions carry a
					break
				}
			}
		}
		if dropped {
			for _, l := range c.Links {
				if !moverLink(l) {
					pool[l] = true
				}
			}
		} else {
			kept = append(kept, c)
		}
	}

	// Candidate subgraph S = A ∪ N(A) ∪ pool, as indices into allLinks.
	// N(A) comes from the localized contention neighborhoods — no scan
	// of the full link table.
	inS := make([]bool, len(allLinks))
	for _, ai := range aNewIdx {
		inS[ai] = true
	}
	for _, ai := range aNewIdx {
		for _, j := range contentionNeighbors(topo, allLinks, incident, int(ai), mark) {
			inS[j] = true
		}
	}
	for l := range pool {
		if idx := findLink(allLinks, l); idx >= 0 {
			inS[idx] = true // non-mover links always persist in the new graph
		}
	}
	var subIdx []int32
	for i := range allLinks {
		if inS[i] {
			subIdx = append(subIdx, int32(i))
		}
	}
	sub := make([]topology.Link, len(subIdx))
	posInSub := make([]int32, len(allLinks))
	for i := range posInSub {
		posInSub[i] = -1
	}
	for si, i := range subIdx {
		sub[si] = allLinks[i]
		posInSub[i] = int32(si)
	}

	// Sparse contention adjacency restricted to S. Contention
	// neighborhoods are ascending and subIdx is ascending, so the
	// remapped rows come out sorted, as the enumerator requires.
	nbr := make([][]int32, len(sub))
	for si, i := range subIdx {
		var row []int32
		for _, j := range contentionNeighbors(topo, allLinks, incident, int(i), mark) {
			if sj := posInSub[j]; sj >= 0 {
				row = append(row, sj)
			}
		}
		nbr[si] = row
	}

	keptKeys := make(map[string]bool, len(kept))
	for _, c := range kept {
		keptKeys[linkKey(c.Links)] = true
	}

	// Fresh Clique values throughout: finish reassigns identifiers and
	// must not write through to the caller's old set.
	out := make([]*Clique, 0, len(kept))
	for _, c := range kept {
		out = append(out, &Clique{Links: c.Links})
	}
	for _, r := range maximalCliquesSparse(len(sub), nbr) {
		c := cliqueFromIndices32(sub, r)
		hasMover := false
		for _, l := range c.Links {
			if moverLink(l) {
				hasMover = true
				break
			}
		}
		if !hasMover {
			// Subgraph-maximality does not imply graph-maximality for
			// all-non-mover candidates: verify against the full link set
			// and skip duplicates of kept cliques.
			if keptKeys[linkKey(c.Links)] {
				continue
			}
			if extendable(topo, allLinks, incident, mark, c.Links) {
				continue
			}
		}
		out = append(out, c)
	}
	return finish(out)
}

// extendable reports whether some link outside members contends with
// every member, i.e. the clique is not maximal in the full graph. An
// extender must contend with members[0] in particular, so only that
// link's contention neighborhood is searched — not the full link table.
func extendable(topo *topology.Topology, allLinks []topology.Link, incident [][]int32, mark []bool, members []topology.Link) bool {
	inC := make(map[topology.Link]bool, len(members))
	for _, l := range members {
		inC[l] = true
	}
	m0 := findLink(allLinks, members[0])
	for _, j := range contentionNeighbors(topo, allLinks, incident, m0, mark) {
		d := allLinks[j]
		if inC[d] {
			continue
		}
		all := true
		for _, l := range members {
			if !topo.LinksContend(d, l) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// findLink returns l's index in the canonically sorted link table, or
// -1 when absent. O(log L).
func findLink(links []topology.Link, l topology.Link) int {
	at := sort.Search(len(links), func(i int) bool {
		if links[i].From != l.From {
			return links[i].From > l.From
		}
		return links[i].To >= l.To
	})
	if at < len(links) && links[at] == l {
		return at
	}
	return -1
}

// linkKey renders a canonical sorted link list as a map key.
func linkKey(links []topology.Link) string {
	return fmt.Sprint(links)
}
