package mobility

import (
	"math"
	"strings"
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

func baseConfig(model Model) Config {
	c := Config{
		Model:    model,
		Epoch:    time.Second,
		MinSpeed: 1,
		MaxSpeed: 10,
	}
	if model == Group {
		c.Groups = 2
		c.GroupRadius = 50
	}
	return c
}

func linePositions(n int, spacing float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * spacing}
	}
	return pts
}

func TestParseModel(t *testing.T) {
	for _, m := range []Model{RandomWaypoint, RandomWalk, Group} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseModel("rwp"); err != nil || m != RandomWaypoint {
		t.Fatalf("rwp shorthand: %v, %v", m, err)
	}
	if m, err := ParseModel("walk"); err != nil || m != RandomWalk {
		t.Fatalf("walk shorthand: %v, %v", m, err)
	}
	if _, err := ParseModel("teleport"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"unknown model", func(c *Config) { c.Model = 0 }},
		{"zero epoch", func(c *Config) { c.Epoch = 0 }},
		{"negative epoch", func(c *Config) { c.Epoch = -time.Second }},
		{"negative start", func(c *Config) { c.Start = -time.Second }},
		{"negative stop", func(c *Config) { c.Stop = -time.Second }},
		{"stop before start", func(c *Config) { c.Start = 10 * time.Second; c.Stop = 5 * time.Second }},
		{"negative pause", func(c *Config) { c.Pause = -time.Second }},
		{"nan speed", func(c *Config) { c.MaxSpeed = math.NaN() }},
		{"inf speed", func(c *Config) { c.MinSpeed = math.Inf(1) }},
		{"negative min speed", func(c *Config) { c.MinSpeed = -1 }},
		{"zero max speed", func(c *Config) { c.MaxSpeed = 0 }},
		{"max below min", func(c *Config) { c.MinSpeed = 5; c.MaxSpeed = 2 }},
		{"nan bound", func(c *Config) { c.MaxX = math.NaN() }},
		{"empty field", func(c *Config) { c.MinX = 10; c.MaxX = 5; c.MinY = 0; c.MaxY = 1 }},
		{"pinned out of range", func(c *Config) { c.Pinned = []topology.NodeID{9} }},
		{"pinned negative", func(c *Config) { c.Pinned = []topology.NodeID{-1} }},
		{"pinned duplicate", func(c *Config) { c.Pinned = []topology.NodeID{1, 1} }},
	}
	for _, tc := range cases {
		cfg := baseConfig(RandomWaypoint)
		tc.mut(&cfg)
		if err := cfg.Validate(4); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	groupCases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero groups", func(c *Config) { c.Groups = 0 }},
		{"too many groups", func(c *Config) { c.Groups = 5 }},
		{"zero radius", func(c *Config) { c.GroupRadius = 0 }},
	}
	for _, tc := range groupCases {
		cfg := baseConfig(Group)
		tc.mut(&cfg)
		if err := cfg.Validate(4); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	for _, m := range []Model{RandomWaypoint, RandomWalk, Group} {
		cfg := baseConfig(m)
		if err := cfg.Validate(4); err != nil {
			t.Errorf("valid %v config rejected: %v", m, err)
		}
	}
}

// run drives one engine for d of virtual time and returns it.
func run(t *testing.T, pos []geom.Point, cfg Config, seed int64, d time.Duration) *Engine {
	t.Helper()
	sched := sim.NewScheduler()
	e, err := Start(sched, pos, cfg, sim.NewRand(seed), nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.Run(d)
	return e
}

func TestTrajectoriesAreDeterministic(t *testing.T) {
	for _, m := range []Model{RandomWaypoint, RandomWalk, Group} {
		cfg := baseConfig(m)
		pos := linePositions(6, 150)
		a := run(t, pos, cfg, 42, 30*time.Second)
		b := run(t, pos, cfg, 42, 30*time.Second)
		c := run(t, pos, cfg, 43, 30*time.Second)
		if a.Epochs() != 30 {
			t.Fatalf("%v: %d epochs, want 30", m, a.Epochs())
		}
		diverged := false
		for i := range pos {
			n := topology.NodeID(i)
			if a.Position(n) != b.Position(n) {
				t.Fatalf("%v: same seed diverged at node %d", m, i)
			}
			if a.Position(n) != c.Position(n) {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%v: different seeds gave identical trajectories", m)
		}
	}
}

func TestBoundsAndPinsRespected(t *testing.T) {
	for _, m := range []Model{RandomWaypoint, RandomWalk, Group} {
		cfg := baseConfig(m)
		cfg.MinX, cfg.MaxX = 0, 500
		cfg.MinY, cfg.MaxY = -100, 100
		cfg.MaxSpeed = 80
		cfg.Pinned = []topology.NodeID{2}
		pos := linePositions(6, 100)
		e := run(t, pos, cfg, 7, 60*time.Second)
		if e.Position(2) != pos[2] {
			t.Fatalf("%v: pinned node moved to %v", m, e.Position(2))
		}
		for i := range pos {
			if topology.NodeID(i) == 2 {
				continue
			}
			p := e.Position(topology.NodeID(i))
			if p.X < cfg.MinX-1e-9 || p.X > cfg.MaxX+1e-9 || p.Y < cfg.MinY-1e-9 || p.Y > cfg.MaxY+1e-9 {
				t.Fatalf("%v: node %d escaped to %v", m, i, p)
			}
			if m != RandomWaypoint && p == pos[i] {
				t.Errorf("%v: node %d never moved", m, i)
			}
		}
	}
}

// TestDerivedBoundsWidenDegenerateBox: a chain is one-dimensional, so the
// derived field must widen the Y span instead of collapsing motion onto
// the line.
func TestDerivedBoundsWidenDegenerateBox(t *testing.T) {
	cfg := baseConfig(RandomWalk)
	cfg.MaxSpeed = 50
	e := run(t, linePositions(5, 200), cfg, 3, 60*time.Second)
	if e.minY >= e.maxY {
		t.Fatalf("degenerate Y bounds kept: [%v,%v]", e.minY, e.maxY)
	}
	sawOffAxis := false
	for i := 0; i < 5; i++ {
		if e.Position(topology.NodeID(i)).Y != 0 {
			sawOffAxis = true
		}
	}
	if !sawOffAxis {
		t.Error("no node ever left the chain axis")
	}
}

func TestStartStopWindow(t *testing.T) {
	cfg := baseConfig(RandomWalk)
	cfg.Start = 10 * time.Second
	cfg.Stop = 20 * time.Second
	var epochTimes []time.Duration
	sched := sim.NewScheduler()
	e, err := Start(sched, linePositions(4, 100), cfg, sim.NewRand(1), func([]topology.NodeID, []geom.Point) {
		epochTimes = append(epochTimes, sched.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(60 * time.Second)
	if e.Epochs() != 10 {
		t.Fatalf("%d epochs, want 10 (11s..20s)", e.Epochs())
	}
	for _, at := range epochTimes {
		if at <= cfg.Start || at > cfg.Stop {
			t.Fatalf("epoch fired at %v outside (%v,%v]", at, cfg.Start, cfg.Stop)
		}
	}
}

// TestWaypointPauseHolds: with a pause far longer than the run, a
// random-waypoint node stops for good once it reaches its first target.
func TestWaypointPauseHolds(t *testing.T) {
	cfg := baseConfig(RandomWaypoint)
	cfg.MinSpeed, cfg.MaxSpeed = 1000, 1000 // reach the first waypoint within one epoch
	cfg.Pause = time.Hour
	e := run(t, linePositions(3, 50), cfg, 5, 30*time.Second)
	for i := 0; i < 3; i++ {
		n := topology.NodeID(i)
		got := e.Position(n)
		want := e.walkers[i].target
		if got != want {
			t.Fatalf("node %d at %v, want parked at waypoint %v", i, got, want)
		}
	}
}

func TestValidateMessageMentionsField(t *testing.T) {
	cfg := baseConfig(RandomWaypoint)
	cfg.MaxSpeed = math.NaN()
	err := cfg.Validate(3)
	if err == nil || !strings.Contains(err.Error(), "max speed") {
		t.Fatalf("err = %v, want mention of max speed", err)
	}
}
