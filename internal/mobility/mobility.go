// Package mobility drives node motion for the wireless simulator. Three
// classic models are provided — random waypoint, random walk, and a
// simplified reference-point group model — all advanced on fixed epoch
// boundaries by the discrete-event kernel and drawing exclusively from an
// injected *rand.Rand, so runs stay byte-for-byte deterministic for a
// given seed.
//
// The engine owns only positions. On every epoch whose motion changed at
// least one position it invokes the caller's hook with the moved set;
// the simulator layers the incremental topology update, clique
// maintenance, radio re-indexing and route repair on top of that hook.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gmp/internal/geom"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// Model selects the motion model.
type Model int

// The supported motion models.
const (
	// RandomWaypoint: each node picks a uniform waypoint in the field and
	// a uniform speed in [MinSpeed, MaxSpeed], travels there in a straight
	// line, pauses for Pause, and repeats.
	RandomWaypoint Model = iota + 1
	// RandomWalk: each epoch every node picks a fresh uniform heading and
	// speed and moves for one epoch, reflecting off the field boundary.
	RandomWalk
	// Group: a simplified reference-point group model. Nodes are split
	// into Groups contiguous groups; each group's reference point follows
	// a random waypoint trajectory and every member sits at a fresh
	// uniform offset of at most GroupRadius from it each epoch.
	Group
)

// String renders the model in the scenario-JSON spelling.
func (m Model) String() string {
	switch m {
	case RandomWaypoint:
		return "random-waypoint"
	case RandomWalk:
		return "random-walk"
	case Group:
		return "group"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel parses a model name. The canonical spellings are
// "random-waypoint", "random-walk" and "group"; "rwp" and "walk" are
// accepted as shorthands.
func ParseModel(s string) (Model, error) {
	switch s {
	case "random-waypoint", "rwp":
		return RandomWaypoint, nil
	case "random-walk", "walk":
		return RandomWalk, nil
	case "group":
		return Group, nil
	default:
		return 0, fmt.Errorf("mobility: unknown model %q", s)
	}
}

// Config parameterizes one mobility process.
type Config struct {
	// Model selects the motion model. Required.
	Model Model
	// Epoch is the interval between position updates. Required positive.
	Epoch time.Duration
	// Start delays the first motion epoch; the first update fires at
	// Start+Epoch. Stop, when positive, is the last instant an epoch may
	// fire; zero means motion continues for the whole run.
	Start, Stop time.Duration
	// MinSpeed and MaxSpeed bound the per-leg (waypoint) or per-epoch
	// (walk) speed draw, in meters per second. MaxSpeed must be positive.
	MinSpeed, MaxSpeed float64
	// Pause is how long a random-waypoint node rests at each waypoint.
	Pause time.Duration
	// MinX..MaxY bound the field. All-zero means "derive from the initial
	// placement": the bounding box of the positions, with degenerate
	// dimensions widened to a 200 m span.
	MinX, MinY, MaxX, MaxY float64
	// Groups and GroupRadius parameterize the group model: the number of
	// contiguous node groups and the members' maximum offset from their
	// group's reference point.
	Groups      int
	GroupRadius float64
	// Pinned lists nodes that never move (gateways, anchors — and test
	// rigs that want exactly one wanderer).
	Pinned []topology.NodeID
}

// boundsSet reports whether the field bounds were given explicitly.
func (c *Config) boundsSet() bool {
	return c.MinX != 0 || c.MinY != 0 || c.MaxX != 0 || c.MaxY != 0
}

// Validate checks the configuration against a node count. It is the
// hardening layer behind the scenario-JSON "mobility" block, so it must
// reject every non-finite or out-of-range numeric field.
func (c *Config) Validate(numNodes int) error {
	switch c.Model {
	case RandomWaypoint, RandomWalk, Group:
	default:
		return fmt.Errorf("mobility: unknown model %d", int(c.Model))
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("mobility: non-positive epoch %v", c.Epoch)
	}
	if c.Start < 0 {
		return fmt.Errorf("mobility: negative start %v", c.Start)
	}
	if c.Stop < 0 {
		return fmt.Errorf("mobility: negative stop %v", c.Stop)
	}
	if c.Stop > 0 && c.Stop <= c.Start {
		return fmt.Errorf("mobility: stop %v not after start %v", c.Stop, c.Start)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"min speed", c.MinSpeed}, {"max speed", c.MaxSpeed},
		{"min x", c.MinX}, {"min y", c.MinY}, {"max x", c.MaxX}, {"max y", c.MaxY},
		{"group radius", c.GroupRadius},
	} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("mobility: %s is not finite", v.name)
		}
	}
	if c.MinSpeed < 0 {
		return fmt.Errorf("mobility: negative min speed %v", c.MinSpeed)
	}
	if c.MaxSpeed <= 0 {
		return fmt.Errorf("mobility: non-positive max speed %v", c.MaxSpeed)
	}
	if c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: max speed %v below min speed %v", c.MaxSpeed, c.MinSpeed)
	}
	if c.boundsSet() && (c.MaxX <= c.MinX || c.MaxY <= c.MinY) {
		return fmt.Errorf("mobility: empty field [%v,%v]x[%v,%v]", c.MinX, c.MaxX, c.MinY, c.MaxY)
	}
	if c.Model == Group {
		if c.Groups < 1 || c.Groups > numNodes {
			return fmt.Errorf("mobility: %d groups for %d nodes", c.Groups, numNodes)
		}
		if c.GroupRadius <= 0 {
			return fmt.Errorf("mobility: non-positive group radius %v", c.GroupRadius)
		}
	}
	seen := make(map[topology.NodeID]bool, len(c.Pinned))
	for _, n := range c.Pinned {
		if n < 0 || int(n) >= numNodes {
			return fmt.Errorf("mobility: pinned node %d out of range [0,%d)", n, numNodes)
		}
		if seen[n] {
			return fmt.Errorf("mobility: pinned node %d listed twice", n)
		}
		seen[n] = true
	}
	return nil
}

// wpState is one random-waypoint walker (a node, or a group reference
// point).
type wpState struct {
	target geom.Point
	speed  float64 // m/s, per leg
	pause  float64 // seconds of rest remaining
	has    bool    // target/speed drawn
}

// Engine advances one mobility process on the simulation clock.
type Engine struct {
	sched   *sim.Scheduler
	cfg     Config
	rng     *rand.Rand
	onEpoch func(moved []topology.NodeID, pos []geom.Point)

	pos    []geom.Point
	mobile []topology.NodeID // non-pinned nodes, ascending

	minX, minY, maxX, maxY float64

	walkers []wpState // RandomWaypoint: indexed like mobile
	refs    []wpState // Group: per-group reference point
	refPos  []geom.Point
	group   []int // Group: mobile index -> group index

	epochs     int
	totalMoved int
}

// Start validates cfg, seeds the model state, and schedules the epoch
// chain on sched. positions is copied (node i at positions[i]). onEpoch
// is invoked, inside the event kernel, on every epoch where at least one
// node moved: moved lists the nodes ascending and pos[i] is moved[i]'s
// new position. All randomness comes from rng, drawn in a fixed order, so
// equal seeds give equal trajectories.
func Start(sched *sim.Scheduler, positions []geom.Point, cfg Config, rng *rand.Rand,
	onEpoch func(moved []topology.NodeID, pos []geom.Point)) (*Engine, error) {
	if err := cfg.Validate(len(positions)); err != nil {
		return nil, err
	}
	e := &Engine{
		sched:   sched,
		cfg:     cfg,
		rng:     rng,
		onEpoch: onEpoch,
		pos:     append([]geom.Point(nil), positions...),
	}
	pinned := make([]bool, len(positions))
	for _, n := range cfg.Pinned {
		pinned[n] = true
	}
	for i := range positions {
		if !pinned[i] {
			e.mobile = append(e.mobile, topology.NodeID(i))
		}
	}
	e.deriveBounds()
	switch cfg.Model {
	case RandomWaypoint:
		e.walkers = make([]wpState, len(e.mobile))
	case Group:
		e.group = make([]int, len(e.mobile))
		e.refs = make([]wpState, cfg.Groups)
		e.refPos = make([]geom.Point, cfg.Groups)
		counts := make([]int, cfg.Groups)
		for i := range e.mobile {
			g := i * cfg.Groups / len(e.mobile)
			e.group[i] = g
			e.refPos[g].X += e.pos[e.mobile[i]].X
			e.refPos[g].Y += e.pos[e.mobile[i]].Y
			counts[g]++
		}
		// Reference points start at their group's centroid.
		for g := range e.refPos {
			if counts[g] > 0 {
				e.refPos[g].X /= float64(counts[g])
				e.refPos[g].Y /= float64(counts[g])
			}
		}
	}
	if len(e.mobile) > 0 {
		e.schedule(cfg.Start + cfg.Epoch)
	}
	return e, nil
}

// deriveBounds fills the field rectangle, defaulting to the bounding box
// of the initial placement with degenerate dimensions widened so linear
// topologies (chains) still get a 2-D field to roam.
func (e *Engine) deriveBounds() {
	c := &e.cfg
	if c.boundsSet() {
		e.minX, e.minY, e.maxX, e.maxY = c.MinX, c.MinY, c.MaxX, c.MaxY
		return
	}
	e.minX, e.minY = math.Inf(1), math.Inf(1)
	e.maxX, e.maxY = math.Inf(-1), math.Inf(-1)
	for _, p := range e.pos {
		e.minX = math.Min(e.minX, p.X)
		e.maxX = math.Max(e.maxX, p.X)
		e.minY = math.Min(e.minY, p.Y)
		e.maxY = math.Max(e.maxY, p.Y)
	}
	const minSpan = 200.0
	if e.maxX-e.minX < minSpan {
		mid := (e.minX + e.maxX) / 2
		e.minX, e.maxX = mid-minSpan/2, mid+minSpan/2
	}
	if e.maxY-e.minY < minSpan {
		mid := (e.minY + e.maxY) / 2
		e.minY, e.maxY = mid-minSpan/2, mid+minSpan/2
	}
}

func (e *Engine) schedule(at time.Duration) {
	if e.cfg.Stop > 0 && at > e.cfg.Stop {
		return
	}
	e.sched.At(at, e.tick)
}

// tick advances every mobile node by one epoch and fires the hook.
func (e *Engine) tick() {
	dt := e.cfg.Epoch.Seconds()
	var moved []topology.NodeID
	var newPos []geom.Point
	record := func(n topology.NodeID, p geom.Point) {
		if p != e.pos[n] {
			e.pos[n] = p
			moved = append(moved, n)
			newPos = append(newPos, p)
		}
	}
	switch e.cfg.Model {
	case RandomWaypoint:
		for i, n := range e.mobile {
			record(n, e.advanceWaypoint(&e.walkers[i], e.pos[n], dt))
		}
	case RandomWalk:
		for _, n := range e.mobile {
			theta := e.rng.Float64() * 2 * math.Pi
			speed := e.drawSpeed()
			p := e.pos[n]
			p.X = reflect1D(p.X+speed*dt*math.Cos(theta), e.minX, e.maxX)
			p.Y = reflect1D(p.Y+speed*dt*math.Sin(theta), e.minY, e.maxY)
			record(n, p)
		}
	case Group:
		// Reference points first (ascending group), then member offsets
		// (ascending node): a fixed draw order keeps runs reproducible.
		for g := range e.refs {
			e.refPos[g] = e.advanceWaypoint(&e.refs[g], e.refPos[g], dt)
		}
		for i, n := range e.mobile {
			ref := e.refPos[e.group[i]]
			r := e.cfg.GroupRadius * math.Sqrt(e.rng.Float64())
			phi := e.rng.Float64() * 2 * math.Pi
			p := geom.Point{
				X: reflect1D(ref.X+r*math.Cos(phi), e.minX, e.maxX),
				Y: reflect1D(ref.Y+r*math.Sin(phi), e.minY, e.maxY),
			}
			record(n, p)
		}
	}
	e.epochs++
	e.totalMoved += len(moved)
	if len(moved) > 0 && e.onEpoch != nil {
		e.onEpoch(moved, newPos)
	}
	e.schedule(e.sched.Now() + e.cfg.Epoch)
}

// advanceWaypoint moves one random-waypoint walker for dt seconds:
// consume any remaining pause, then travel toward the target (drawing a
// new target and per-leg speed whenever the previous one is reached).
func (e *Engine) advanceWaypoint(s *wpState, p geom.Point, dt float64) geom.Point {
	rem := dt
	for iter := 0; rem > 1e-12 && iter < 64; iter++ {
		if s.pause > 0 {
			if s.pause >= rem {
				s.pause -= rem
				return p
			}
			rem -= s.pause
			s.pause = 0
		}
		if !s.has {
			s.target = geom.Point{
				X: e.minX + e.rng.Float64()*(e.maxX-e.minX),
				Y: e.minY + e.rng.Float64()*(e.maxY-e.minY),
			}
			s.speed = e.drawSpeed()
			s.has = true
		}
		if s.speed <= 0 {
			return p // zero-speed leg: parked until the next draw
		}
		d := geom.Dist(p, s.target)
		reach := s.speed * rem
		if reach >= d {
			p = s.target
			rem -= d / s.speed
			s.has = false
			s.pause = e.cfg.Pause.Seconds()
			continue
		}
		frac := reach / d
		p.X += (s.target.X - p.X) * frac
		p.Y += (s.target.Y - p.Y) * frac
		return p
	}
	return p
}

func (e *Engine) drawSpeed() float64 {
	return e.cfg.MinSpeed + e.rng.Float64()*(e.cfg.MaxSpeed-e.cfg.MinSpeed)
}

// reflect1D folds v into [lo, hi] by mirroring at the boundaries, the
// standard boundary rule for random-walk mobility. It is total: any
// finite v (even one starting far outside the field) lands inside.
func reflect1D(v, lo, hi float64) float64 {
	span := hi - lo
	if span <= 0 {
		return lo
	}
	v = math.Mod(v-lo, 2*span)
	if v < 0 {
		v += 2 * span
	}
	if v > span {
		v = 2*span - v
	}
	return lo + v
}

// Epochs returns how many motion epochs have fired.
func (e *Engine) Epochs() int { return e.epochs }

// TotalMoved returns the cumulative number of node moves across all
// epochs.
func (e *Engine) TotalMoved() int { return e.totalMoved }

// Position returns the engine's current position for node n.
func (e *Engine) Position(n topology.NodeID) geom.Point { return e.pos[n] }
