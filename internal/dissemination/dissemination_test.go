package dissemination

import (
	"math/rand"
	"testing"
	"time"

	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/mac"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// stack wires a full medium + MAC + forwarding + dissemination network.
type stack struct {
	sched  *sim.Scheduler
	topo   *topology.Topology
	medium *radio.Medium
	agents []*Agent
}

func newStack(t *testing.T, pos []geom.Point) *stack {
	t.Helper()
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	rng := sim.NewRand(1)
	medium := radio.NewMedium(sched, topo, radio.DefaultParams(), sim.NewRand(rng.Int63()))
	routes := routing.Build(topo)
	st := &stack{sched: sched, topo: topo, medium: medium}
	for _, id := range topo.Nodes() {
		node := forwarding.NewNode(id, sched, forwarding.DefaultConfig(), routes, nil, nil)
		station := mac.NewStation(id, sched, medium, mac.DefaultConfig(), sim.NewRand(rng.Int63()), node)
		node.SetMAC(station)
		agent := NewAgent(id, topo, station)
		node.SetBroadcastHandler(agent.OnBroadcast)
		st.agents = append(st.agents, agent)
	}
	return st
}

func chainPositions(n int) []geom.Point {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 200}
	}
	return pos
}

func TestBroadcastReachesTwoHopNeighborhood(t *testing.T) {
	st := newStack(t, chainPositions(6))
	// Stagger origins so group-addressed frames (which have no
	// recovery) do not collide in this correctness test.
	for i, a := range st.agents {
		a := a
		st.sched.At(time.Duration(i)*50*time.Millisecond, func() {
			a.Broadcast("state", 2)
		})
	}
	st.sched.Run(time.Second)

	for _, origin := range st.topo.Nodes() {
		for _, m := range st.topo.TwoHopNeighbors(origin) {
			records, ok := st.agents[m].Known(origin)
			if !ok {
				t.Errorf("node %d missing link state of two-hop neighbor %d", m, origin)
				continue
			}
			if records != "state" {
				t.Errorf("node %d has wrong records for %d: %v", m, origin, records)
			}
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	st := newStack(t, chainPositions(4))
	updates := make(map[topology.NodeID]int)
	for i, a := range st.agents {
		id := topology.NodeID(i)
		a.SetUpdateHandler(func(origin topology.NodeID, _ any) {
			if id == 2 {
				updates[origin]++
			}
		})
	}
	// Node 1 broadcasts; node 2 hears both the original (1 is its
	// neighbor) and possibly node 0/2's relays — but must accept once.
	st.agents[1].Broadcast("v1", 1)
	st.sched.Run(500 * time.Millisecond)
	if updates[1] != 1 {
		t.Errorf("node 2 accepted origin 1's state %d times, want 1", updates[1])
	}
	// A fresh broadcast is accepted again.
	st.agents[1].Broadcast("v2", 1)
	st.sched.Run(time.Second)
	if updates[1] != 2 {
		t.Errorf("second epoch accepted %d times total, want 2", updates[1])
	}
	if got, _ := st.agents[2].Known(1); got != "v2" {
		t.Errorf("node 2 has %v, want v2", got)
	}
}

func TestRelayScopeIsTwoHops(t *testing.T) {
	// On a 6-chain, node 0's state must reach nodes 1 and 2 but NOT
	// node 3 (the flood depth is exactly one relay).
	st := newStack(t, chainPositions(6))
	st.agents[0].Broadcast("edge", 1)
	st.sched.Run(time.Second)
	if _, ok := st.agents[2].Known(0); !ok {
		t.Error("two-hop neighbor missed the state")
	}
	if _, ok := st.agents[3].Known(0); ok {
		t.Error("three-hop node received the state: flood not bounded")
	}
}

func TestControlAirtimeAccounted(t *testing.T) {
	st := newStack(t, chainPositions(4))
	for i, a := range st.agents {
		a := a
		st.sched.At(time.Duration(i)*50*time.Millisecond, func() { a.Broadcast(1, 1) })
	}
	st.sched.Run(time.Second)
	stats := st.medium.Stats()
	if stats.ControlFrames == 0 {
		t.Fatal("no control frames accounted")
	}
	if stats.ControlAirtime <= 0 {
		t.Fatal("no control airtime accounted")
	}
	// 4 originals + relays; each relay comes from a dominating-set
	// member, so the total is bounded by originals x (1 + neighbors).
	if stats.ControlFrames > 16 {
		t.Errorf("unexpected broadcast storm: %d frames", stats.ControlFrames)
	}
}

func TestRandomTopologyCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		var pos []geom.Point
		for {
			pos = pos[:0]
			n := 6 + rng.Intn(8)
			for i := 0; i < n; i++ {
				pos = append(pos, geom.Point{X: rng.Float64() * 700, Y: rng.Float64() * 700})
			}
			topo, err := topology.New(pos, topology.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if topo.Connected() {
				break
			}
		}
		st := newStack(t, pos)
		for i, a := range st.agents {
			a := a
			st.sched.At(time.Duration(i)*100*time.Millisecond, func() { a.Broadcast(i, 1) })
		}
		st.sched.Run(5 * time.Second)
		for _, origin := range st.topo.Nodes() {
			for _, m := range st.topo.TwoHopNeighbors(origin) {
				if _, ok := st.agents[m].Known(origin); !ok {
					t.Errorf("trial %d: node %d missing state of %d", trial, m, origin)
				}
			}
		}
	}
}
