// Package dissemination implements §6.2 step 2 in-band: every node
// broadcasts its link state at the end of a measurement period, and the
// members of its dominating set rebroadcast it so the information
// reaches the full two-hop neighborhood. Duplicate suppression uses
// per-origin sequence numbers.
//
// The GMP engine in this repository consumes measurement state through
// an out-of-band oracle with exactly two-hop scoping (DESIGN.md,
// substitution 2); this package exists to make the *cost* of the real
// protocol measurable: with in-band control enabled, every link-state
// broadcast consumes genuine channel airtime, and the delivery tests
// verify that the dominating-set flood actually reaches every two-hop
// neighbor within a period.
package dissemination

import (
	"fmt"

	"gmp/internal/mac"
	"gmp/internal/topology"
)

// Message is one link-state broadcast.
type Message struct {
	// Origin produced the records; Seq is its per-origin sequence
	// number (§6.2 gives each new state a fresh broadcast).
	Origin topology.NodeID
	Seq    int64
	// Records is the opaque link-state payload.
	Records any
	// Relayed marks a dominating-set rebroadcast (relays are not
	// rebroadcast again; the flood depth is exactly two hops).
	Relayed bool
}

// headerBytes approximates the fixed per-broadcast framing cost and
// RecordBytes the per-link-record cost (link id, occupancy, normalized
// rate), used to size the on-air payload.
const (
	headerBytes = 8
	RecordBytes = 12
)

// PayloadBytes sizes a broadcast carrying n link records.
func PayloadBytes(n int) int { return headerBytes + n*RecordBytes }

// Agent runs the dissemination protocol for one node.
type Agent struct {
	id   topology.NodeID
	send func(payload any, payloadBytes int)

	// relayFor marks neighbors whose dominating set includes this node:
	// their broadcasts must be rebroadcast (§6.2).
	relayFor map[topology.NodeID]bool

	seen map[topology.NodeID]int64
	db   map[topology.NodeID]any
	seq  int64

	// onUpdate, when set, observes every new record set accepted.
	onUpdate func(origin topology.NodeID, records any)

	relayed int64
}

// NewAgent builds the dissemination agent for node id, sending through
// the MAC's group-addressed broadcasts (in-band: real airtime, no
// collision recovery). It derives the relay duties from the topology:
// node m relays for neighbor n exactly when m belongs to n's dominating
// set.
func NewAgent(id topology.NodeID, topo *topology.Topology, station *mac.Station) *Agent {
	a := newAgent(id, topo)
	a.send = func(payload any, payloadBytes int) {
		station.QueueBroadcast(payload, payloadBytes)
	}
	return a
}

// Bus is an out-of-band transport with the exact scoping of the in-band
// protocol: a broadcast reaches the sender's one-hop neighbors
// instantly and dominating-set members still relay, so information
// travels exactly two hops — but nothing is lost to collisions and no
// airtime is consumed. It exists because group-addressed 802.11 frames
// have no recovery: under heavy congestion the in-band control channel
// starves exactly where control is most needed (see EXPERIMENTS.md).
type Bus struct {
	topo   *topology.Topology
	agents map[topology.NodeID]*Agent
}

// NewBus builds an out-of-band transport over the topology.
func NewBus(topo *topology.Topology) *Bus {
	return &Bus{topo: topo, agents: make(map[topology.NodeID]*Agent)}
}

// NewAgent builds and registers a dissemination agent that sends through
// the bus.
func (b *Bus) NewAgent(id topology.NodeID, topo *topology.Topology) *Agent {
	a := newAgent(id, topo)
	a.send = func(payload any, payloadBytes int) {
		for _, nb := range b.topo.Neighbors(id) {
			if peer, ok := b.agents[nb]; ok {
				peer.OnBroadcast(id, payload)
			}
		}
	}
	b.agents[id] = a
	return a
}

func newAgent(id topology.NodeID, topo *topology.Topology) *Agent {
	a := &Agent{
		id:       id,
		relayFor: make(map[topology.NodeID]bool),
		seen:     make(map[topology.NodeID]int64),
		db:       make(map[topology.NodeID]any),
	}
	a.RefreshTopology(topo)
	return a
}

// RefreshTopology recomputes the agent's relay responsibilities from the
// (possibly mutated) topology: the agent relays for neighbor n when it
// belongs to n's dominating set. Called on mobility epochs.
func (a *Agent) RefreshTopology(topo *topology.Topology) {
	a.relayFor = make(map[topology.NodeID]bool)
	for _, n := range topo.Neighbors(a.id) {
		for _, d := range topo.DominatingSet(n) {
			if d == a.id {
				a.relayFor[n] = true
			}
		}
	}
}

// SetUpdateHandler registers a callback for accepted record sets.
func (a *Agent) SetUpdateHandler(fn func(origin topology.NodeID, records any)) {
	a.onUpdate = fn
}

// Broadcast floods this node's current link-state records (n of them)
// to the two-hop neighborhood.
func (a *Agent) Broadcast(records any, n int) {
	a.seq++
	a.send(Message{
		Origin:  a.id,
		Seq:     a.seq,
		Records: records,
	}, PayloadBytes(n))
}

// OnBroadcast implements the receive side: store fresh state, invoke the
// update handler, and rebroadcast first-hand messages when this node is
// in the sender's dominating set. It is wired to mac.BroadcastReceiver
// by the owning forwarding node.
func (a *Agent) OnBroadcast(from topology.NodeID, payload any) {
	msg, ok := payload.(Message)
	if !ok {
		panic(fmt.Sprintf("dissemination: node %d received %T", a.id, payload))
	}
	if last, ok := a.seen[msg.Origin]; ok && msg.Seq <= last {
		return // duplicate (e.g. heard both the original and a relay)
	}
	a.seen[msg.Origin] = msg.Seq
	a.db[msg.Origin] = msg.Records
	if a.onUpdate != nil {
		a.onUpdate(msg.Origin, msg.Records)
	}
	// Relay first-hand broadcasts from neighbors we serve; the relayed
	// copy keeps the origin and sequence so two-hop receivers dedup.
	if !msg.Relayed && from == msg.Origin && a.relayFor[from] {
		relay := msg
		relay.Relayed = true
		n := 0
		if cnt, ok := msg.Records.(int); ok {
			n = cnt
		}
		a.send(relay, PayloadBytes(n))
		a.relayed++
	}
}

// Known returns the latest records accepted from origin, if any.
func (a *Agent) Known(origin topology.NodeID) (any, bool) {
	r, ok := a.db[origin]
	return r, ok
}

// Relayed reports how many broadcasts this agent rebroadcast.
func (a *Agent) Relayed() int64 { return a.relayed }
