package span

import (
	"sort"
	"time"

	"gmp/internal/packet"
	"gmp/internal/topology"
)

// HopBreakdown decomposes one hop of a sampled packet's life: the
// window from its admission at Node to its admission at Next (or
// delivery/drop), split into queue wait, backoff countdown, contention
// deferral, airtime, and everything else (DIFS/SIFS, control-frame
// exchanges, ack waits of earlier retries). Child spans that outlive
// the hop window — the MAC span stays open until the ack, which lands
// after the next hop's admission — are clipped to the window, so the
// parts always sum to at most the hop duration.
type HopBreakdown struct {
	Node    topology.NodeID
	Next    topology.NodeID // -1 when the hop ended in a drop or the run's end
	Start   time.Duration
	End     time.Duration
	Queue   time.Duration
	Backoff time.Duration
	Defer   time.Duration
	Airtime time.Duration
	Other   time.Duration // End-Start minus the four parts above
	Retries int64
	// DeferBy attributes contention-deferral time to the neighbor whose
	// transmission held our carrier sense busy (-1 for NAV/response
	// waits with no attributable transmitter).
	DeferBy map[topology.NodeID]time.Duration
}

// PathReport is the reconstructed critical path of one sampled packet.
type PathReport struct {
	Flow    packet.FlowID
	Seq     int64
	Outcome string // "delivered", "drop:<reason>", "inflight"
	Created time.Duration
	Done    time.Duration
	E2E     time.Duration
	Blocked time.Duration // pre-admission source backpressure
	Hops    []HopBreakdown
	// Exact reports that the hop windows tile [Created, Done) with no
	// gaps or overlaps, i.e. Σ hop durations == E2E to the nanosecond.
	Exact bool
}

func clip(s *Span, lo, hi time.Duration) time.Duration {
	a, b := s.Start, s.End
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// CriticalPaths reconstructs the per-hop latency breakdown of every
// sampled packet of the flow (all flows when flow < 0), in (flow, seq)
// order.
func CriticalPaths(t *Trace, flow packet.FlowID) []PathReport {
	children := make(map[int64][]int, len(t.Spans))
	for i := range t.Spans {
		if p := t.Spans[i].Parent; p != 0 {
			children[p] = append(children[p], i)
		}
	}
	blocked := make(map[pktKey]time.Duration)
	var roots []int
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Parent != 0 {
			continue
		}
		switch s.Kind {
		case KindPacket:
			if flow < 0 || s.Flow == flow {
				roots = append(roots, i)
			}
		case KindBlocked:
			blocked[pktKey{s.Flow, s.Seq}] += s.End - s.Start
		}
	}
	sort.SliceStable(roots, func(a, b int) bool {
		sa, sb := &t.Spans[roots[a]], &t.Spans[roots[b]]
		if sa.Flow != sb.Flow {
			return sa.Flow < sb.Flow
		}
		return sa.Seq < sb.Seq
	})

	reports := make([]PathReport, 0, len(roots))
	for _, ri := range roots {
		root := &t.Spans[ri]
		rep := PathReport{
			Flow:    root.Flow,
			Seq:     root.Seq,
			Outcome: root.Detail,
			Created: root.Start,
			Done:    root.End,
			E2E:     root.End - root.Start,
			Blocked: blocked[pktKey{root.Flow, root.Seq}],
		}
		for _, hi := range children[root.ID] {
			hop := &t.Spans[hi]
			if hop.Kind != KindHop {
				continue
			}
			hb := HopBreakdown{
				Node:  hop.Node,
				Next:  hop.Peer,
				Start: hop.Start,
				End:   hop.End,
			}
			// Walk the hop's descendants (queue directly, the rest under
			// the MAC span), clipping each to the hop window.
			stack := append([]int(nil), children[hop.ID]...)
			for len(stack) > 0 {
				ci := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				c := &t.Spans[ci]
				stack = append(stack, children[c.ID]...)
				d := clip(c, hop.Start, hop.End)
				switch c.Kind {
				case KindQueue:
					hb.Queue += d
				case KindBackoff:
					hb.Backoff += d
				case KindDefer:
					hb.Defer += d
					if hb.DeferBy == nil {
						hb.DeferBy = make(map[topology.NodeID]time.Duration)
					}
					hb.DeferBy[c.Peer] += d
				case KindAirtime:
					hb.Airtime += d
				case KindRetry:
					hb.Retries++
				}
			}
			hb.Other = (hb.End - hb.Start) - hb.Queue - hb.Backoff - hb.Defer - hb.Airtime
			rep.Hops = append(rep.Hops, hb)
		}
		sort.SliceStable(rep.Hops, func(a, b int) bool { return rep.Hops[a].Start < rep.Hops[b].Start })
		rep.Exact = len(rep.Hops) > 0 && rep.Hops[0].Start == rep.Created && rep.Hops[len(rep.Hops)-1].End == rep.Done
		for i := 1; i < len(rep.Hops); i++ {
			if rep.Hops[i].Start != rep.Hops[i-1].End {
				rep.Exact = false
			}
		}
		reports = append(reports, rep)
	}
	return reports
}

// WaitStat aggregates time spent in one wait state at one node.
type WaitStat struct {
	Node  topology.NodeID
	Kind  Kind
	Total time.Duration
	Count int64
}

// TopWaits aggregates queue, backoff, defer, and source-blocked time
// by (node, kind) across all sampled packets, sorted by total
// descending (ties broken by node then kind for determinism).
func TopWaits(t *Trace) []WaitStat {
	type key struct {
		node topology.NodeID
		kind Kind
	}
	agg := make(map[key]*WaitStat)
	for i := range t.Spans {
		s := &t.Spans[i]
		switch s.Kind {
		case KindQueue, KindBackoff, KindDefer, KindBlocked:
		default:
			continue
		}
		k := key{s.Node, s.Kind}
		w := agg[k]
		if w == nil {
			w = &WaitStat{Node: s.Node, Kind: s.Kind}
			agg[k] = w
		}
		w.Total += s.End - s.Start
		w.Count++
	}
	out := make([]WaitStat, 0, len(agg))
	for _, w := range agg {
		out = append(out, *w)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Total != out[b].Total {
			return out[a].Total > out[b].Total
		}
		if out[a].Node != out[b].Node {
			return out[a].Node < out[b].Node
		}
		return out[a].Kind < out[b].Kind
	})
	return out
}

// LimitChain returns the flow's limit-change provenance records in
// order (all flows when flow < 0).
func LimitChain(t *Trace, flow packet.FlowID) []LimitSpan {
	var out []LimitSpan
	for i := range t.Limits {
		if flow < 0 || t.Limits[i].Flow == flow {
			out = append(out, t.Limits[i])
		}
	}
	return out
}
