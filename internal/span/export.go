package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gmp/internal/packet"
	"gmp/internal/topology"
)

// JSONL schema. Each line is one record tagged by "type": a single
// "meta" line first, then "span" and "limit" lines in ID order. The
// format is append-friendly (gmpd streams it tail-follow) and strictly
// validated by ValidateJSONL.

type metaLine struct {
	Type string `json:"type"`
	Meta
}

type spanLine struct {
	Type   string          `json:"type"`
	ID     int64           `json:"id"`
	Parent int64           `json:"parent"`
	Kind   string          `json:"kind"`
	Flow   packet.FlowID   `json:"flow"`
	Seq    int64           `json:"seq"`
	Node   topology.NodeID `json:"node"`
	Peer   topology.NodeID `json:"peer"`
	Start  time.Duration   `json:"start_ns"`
	End    time.Duration   `json:"end_ns"`
	Val    int64           `json:"val,omitempty"`
	Detail string          `json:"detail,omitempty"`
}

type limitLine struct {
	Type      string          `json:"type"`
	ID        int64           `json:"id"`
	At        time.Duration   `json:"at_ns"`
	Flow      packet.FlowID   `json:"flow"`
	Action    string          `json:"action"`
	Before    float64         `json:"before"`
	After     float64         `json:"after"`
	Cond      string          `json:"cond,omitempty"`
	Node      topology.NodeID `json:"node"`
	CondAt    time.Duration   `json:"cond_at_ns"`
	Factor    float64         `json:"factor,omitempty"`
	Clique    string          `json:"clique,omitempty"`
	Occupancy []float64       `json:"occupancy,omitempty"`
	MaxOcc    float64         `json:"max_occ,omitempty"`
}

// WriteJSONL writes the trace as one JSON record per line: meta first,
// then spans, then limit-change records, each in ID order. The byte
// stream is deterministic for a given trace.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(metaLine{Type: "meta", Meta: t.Meta}); err != nil {
		return err
	}
	for i := range t.Spans {
		s := &t.Spans[i]
		line := spanLine{
			Type: "span", ID: s.ID, Parent: s.Parent, Kind: s.Kind.String(),
			Flow: s.Flow, Seq: s.Seq, Node: s.Node, Peer: s.Peer,
			Start: s.Start, End: s.End, Val: s.Val, Detail: s.Detail,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for i := range t.Limits {
		l := &t.Limits[i]
		line := limitLine{
			Type: "limit", ID: l.ID, At: l.At, Flow: l.Flow, Action: l.Action,
			Before: l.Before, After: l.After, Cond: l.Cond, Node: l.Node,
			CondAt: l.CondAt, Factor: l.Factor, Clique: l.Clique,
			Occupancy: l.Occupancy, MaxOcc: l.MaxOcc,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

var validActions = map[string]bool{"reduce": true, "increase": true, "probe": true, "remove": true}

// ReadJSONL parses and strictly validates a span JSONL stream,
// returning the reconstructed trace and per-type record counts. It
// fails on the first malformed record: unknown or missing fields,
// out-of-order or duplicate IDs, a parent that is not an earlier span,
// an end before a start, or an unknown kind/action enum.
func ReadJSONL(r io.Reader) (*Trace, map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	counts := make(map[string]int)
	t := &Trace{}
	sawMeta := false
	lineNo := 0
	var lastSpanID, lastLimitID int64
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, counts, fmt.Errorf("line %d: not a JSON object: %w", lineNo, err)
		}
		if !sawMeta && head.Type != "meta" {
			return nil, counts, fmt.Errorf("line %d: first record must be meta, got %q", lineNo, head.Type)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		switch head.Type {
		case "meta":
			if sawMeta {
				return nil, counts, fmt.Errorf("line %d: duplicate meta record", lineNo)
			}
			var m metaLine
			if err := dec.Decode(&m); err != nil {
				return nil, counts, fmt.Errorf("line %d: meta: %w", lineNo, err)
			}
			if m.SampleEvery < 1 {
				return nil, counts, fmt.Errorf("line %d: meta: sample_every %d < 1", lineNo, m.SampleEvery)
			}
			if m.Nodes < 0 || m.Flows < 0 || m.Duration < 0 {
				return nil, counts, fmt.Errorf("line %d: meta: negative nodes/flows/duration", lineNo)
			}
			t.Meta = m.Meta
			sawMeta = true
		case "span":
			var s spanLine
			if err := dec.Decode(&s); err != nil {
				return nil, counts, fmt.Errorf("line %d: span: %w", lineNo, err)
			}
			if s.ID != lastSpanID+1 {
				return nil, counts, fmt.Errorf("line %d: span id %d out of order (want %d)", lineNo, s.ID, lastSpanID+1)
			}
			kind := ParseKind(s.Kind)
			if kind == 0 {
				return nil, counts, fmt.Errorf("line %d: span %d: unknown kind %q", lineNo, s.ID, s.Kind)
			}
			if s.Parent < 0 || s.Parent >= s.ID {
				return nil, counts, fmt.Errorf("line %d: span %d: parent %d not an earlier span", lineNo, s.ID, s.Parent)
			}
			if s.End < s.Start {
				return nil, counts, fmt.Errorf("line %d: span %d: end %d before start %d", lineNo, s.ID, s.End, s.Start)
			}
			if s.Val < 0 {
				return nil, counts, fmt.Errorf("line %d: span %d: negative val %d", lineNo, s.ID, s.Val)
			}
			lastSpanID = s.ID
			t.Spans = append(t.Spans, Span{
				ID: s.ID, Parent: s.Parent, Kind: kind, Flow: s.Flow, Seq: s.Seq,
				Node: s.Node, Peer: s.Peer, Start: s.Start, End: s.End,
				Val: s.Val, Detail: s.Detail,
			})
		case "limit":
			var l limitLine
			if err := dec.Decode(&l); err != nil {
				return nil, counts, fmt.Errorf("line %d: limit: %w", lineNo, err)
			}
			if l.ID != lastLimitID+1 {
				return nil, counts, fmt.Errorf("line %d: limit id %d out of order (want %d)", lineNo, l.ID, lastLimitID+1)
			}
			if !validActions[l.Action] {
				return nil, counts, fmt.Errorf("line %d: limit %d: unknown action %q", lineNo, l.ID, l.Action)
			}
			if l.Before < -1 || l.After < -1 {
				return nil, counts, fmt.Errorf("line %d: limit %d: limit below -1", lineNo, l.ID)
			}
			for i, o := range l.Occupancy {
				if o < 0 {
					return nil, counts, fmt.Errorf("line %d: limit %d: negative occupancy[%d]", lineNo, l.ID, i)
				}
			}
			lastLimitID = l.ID
			t.Limits = append(t.Limits, LimitSpan{
				ID: l.ID, At: l.At, Flow: l.Flow, Action: l.Action,
				Before: l.Before, After: l.After, Cond: l.Cond, Node: l.Node,
				CondAt: l.CondAt, Factor: l.Factor, Clique: l.Clique,
				Occupancy: l.Occupancy, MaxOcc: l.MaxOcc,
			})
		default:
			return nil, counts, fmt.Errorf("line %d: unknown record type %q", lineNo, head.Type)
		}
		counts[head.Type]++
	}
	if err := sc.Err(); err != nil {
		return nil, counts, err
	}
	if !sawMeta {
		return nil, counts, fmt.Errorf("empty stream: no meta record")
	}
	return t, counts, nil
}

// ValidateJSONL strictly validates a span JSONL stream and returns
// per-type record counts, failing on the first malformed record.
func ValidateJSONL(r io.Reader) (map[string]int, error) {
	_, counts, err := ReadJSONL(r)
	return counts, err
}
