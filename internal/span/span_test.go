package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gmp/internal/packet"
)

// fakeClock is a settable virtual clock for driving a Recorder directly.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func pkt(flow packet.FlowID, seq int64) *packet.Packet {
	return &packet.Packet{Flow: flow, Src: 0, Dst: 3, Seq: seq, Created: 0}
}

// TestNilRecorderZeroAllocs pins the spans-off contract: every hook on a
// nil *Recorder is a no-op with zero allocations, so leaving tracing
// disabled costs the producers nothing but a branch.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	p := pkt(0, 0)
	allocs := testing.AllocsPerRun(100, func() {
		r.Sampled(0, 0)
		r.SourceBlocked(p)
		r.Admitted(1, p)
		r.Dropped(1, p, "overflow")
		r.Delivered(p)
		r.Requeued(1, p)
		r.MACPulled(1, p)
		r.BackoffStart(1, p, 7)
		r.BackoffEnd(1, p)
		r.MACDeferred(1, p)
		r.MACResumed(1, p)
		r.MACRetry(1, p, 1)
		r.DataAirtime(p, 1, 2, 0, 0)
		r.DataCorrupted(p, 1, 2)
		r.NodeBusy(1, 2)
		r.NodeIdle(1)
		r.Condition(0, 1, "bandwidth", true, 0.9, "c", nil, 0.5)
		r.LimitChange(0, 0, "reduce", 100, 90)
		r.Finalize("s", "p", time.Second)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder hooks allocated %v times per run, want 0", allocs)
	}
}

// TestUnsampledZeroAllocs pins that a live recorder ignores unsampled
// packets without allocating: at the default 1-in-64 stride the hot path
// must stay allocation free for 63 of 64 packets.
func TestUnsampledZeroAllocs(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(4, 2, 1, 64, clk.now)
	// Find a seq the per-flow phase does not sample.
	var p *packet.Packet
	for seq := int64(0); seq < 64; seq++ {
		if !r.Sampled(0, seq) {
			p = pkt(0, seq)
			break
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.SourceBlocked(p)
		r.Admitted(1, p)
		r.MACPulled(1, p)
		r.BackoffStart(1, p, 7)
		r.MACDeferred(1, p)
		r.DataAirtime(p, 1, 2, 0, 0)
		r.Delivered(p)
	})
	if allocs != 0 {
		t.Fatalf("unsampled-packet hooks allocated %v times per run, want 0", allocs)
	}
}

// TestSamplingDeterministic pins that the sampled set is a pure function
// of (seed, flow, stride) and never empty.
func TestSamplingDeterministic(t *testing.T) {
	clk := &fakeClock{}
	a := NewRecorder(4, 8, 42, 64, clk.now)
	b := NewRecorder(4, 8, 42, 64, clk.now)
	for f := packet.FlowID(0); f < 8; f++ {
		hits := 0
		for seq := int64(0); seq < 256; seq++ {
			if a.Sampled(f, seq) != b.Sampled(f, seq) {
				t.Fatalf("flow %d seq %d: same seed disagrees", f, seq)
			}
			if a.Sampled(f, seq) {
				hits++
			}
		}
		if hits != 4 {
			t.Fatalf("flow %d: %d hits in 256 seqs at stride 64, want 4", f, hits)
		}
	}
	// Different seeds must shift at least one flow's phase.
	c := NewRecorder(4, 8, 43, 64, clk.now)
	same := true
	for f := packet.FlowID(0); f < 8 && same; f++ {
		for seq := int64(0); seq < 64; seq++ {
			if a.Sampled(f, seq) != c.Sampled(f, seq) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 sample identical sets across 8 flows")
	}
	if a.Sampled(-1, 0) || a.Sampled(99, 0) {
		t.Fatal("out-of-range flows must never sample")
	}
	if NewRecorder(4, 2, 1, 0, clk.now).SampleEvery() != DefaultSampleEvery {
		t.Fatalf("stride < 1 must fall back to DefaultSampleEvery")
	}
}

// TestConditionTieBreakOrderIndependent pins that same-instant conditions
// retain the same provenance regardless of arrival order (the engine
// iterates Go maps while evaluating).
func TestConditionTieBreakOrderIndependent(t *testing.T) {
	clk := &fakeClock{t: time.Second}
	condA := func(r *Recorder) {
		r.Condition(0, 3, "bandwidth", true, 0.9, "1.0", []float64{0.77, 0.86}, 0.86)
	}
	condB := func(r *Recorder) {
		r.Condition(0, 3, "bandwidth", true, 0.9, "1.0", []float64{0.86}, 0.86)
	}
	record := func(first, second func(*Recorder)) LimitSpan {
		r := NewRecorder(4, 1, 1, 1, clk.now)
		first(r)
		second(r)
		r.LimitChange(0, 0, "reduce", 100, 90)
		return r.Finalize("s", "p", time.Second).Limits[0]
	}
	ab := record(condA, condB)
	ba := record(condB, condA)
	if ab.Clique != ba.Clique || ab.MaxOcc != ba.MaxOcc || len(ab.Occupancy) != len(ba.Occupancy) {
		t.Fatalf("provenance depends on arrival order: %+v vs %+v", ab, ba)
	}
	for i := range ab.Occupancy {
		if ab.Occupancy[i] != ba.Occupancy[i] {
			t.Fatalf("occupancy depends on arrival order: %v vs %v", ab.Occupancy, ba.Occupancy)
		}
	}
	// A strictly newer condition must win regardless of canonical order.
	r := NewRecorder(4, 1, 1, 1, clk.now)
	condB(r)
	clk.t = 2 * time.Second
	r.Condition(0, 9, "source", true, 0.5, "", nil, 0)
	r.LimitChange(0, 0, "reduce", 100, 50)
	got := r.Finalize("s", "p", 2*time.Second).Limits[0]
	if got.Cond != "source" || got.Node != 9 {
		t.Fatalf("newer condition lost to an older one: %+v", got)
	}
}

// buildTrace drives a recorder through one delivered two-hop packet, a
// dropped packet, and a limit change, returning the finalized trace.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	clk := &fakeClock{}
	r := NewRecorder(4, 2, 1, 1, clk.now) // stride 1: everything sampled
	p := pkt(0, 0)

	// The flow layer regenerates a refused packet with a fresh Created
	// stamp, so creation coincides with admission and the blocked span
	// precedes the root window.
	clk.t = 1 * time.Millisecond
	p.Created = clk.t
	r.SourceBlocked(p)
	clk.t = 2 * time.Millisecond
	p.Created = clk.t
	r.Admitted(0, p)
	clk.t = 3 * time.Millisecond
	r.MACPulled(0, p)
	r.BackoffStart(0, p, 7)
	clk.t = 4 * time.Millisecond
	r.BackoffEnd(0, p)
	r.NodeBusy(0, 2)
	r.MACDeferred(0, p)
	clk.t = 5 * time.Millisecond
	r.NodeIdle(0)
	r.MACResumed(0, p)
	r.MACRetry(0, p, 1)
	r.DataAirtime(p, 0, 1, clk.t, clk.t+time.Millisecond)
	clk.t = 6 * time.Millisecond
	r.Admitted(1, p)
	clk.t = 7 * time.Millisecond
	r.MACPulled(1, p)
	r.DataAirtime(p, 1, 3, clk.t, clk.t+time.Millisecond)
	r.DataCorrupted(p, 1, 3)
	clk.t = 8 * time.Millisecond
	r.Delivered(p)

	q := pkt(1, 0)
	clk.t = 9 * time.Millisecond
	r.Admitted(0, q)
	clk.t = 10 * time.Millisecond
	r.Dropped(0, q, "overflow")

	r.Condition(0, 3, "bandwidth", true, 0.9, "1.0", []float64{0.86}, 0.86)
	r.LimitChange(0, 0, "reduce", 100, 90)

	return r.Finalize("unit", "gmp", 10*time.Millisecond)
}

// TestJSONLRoundTrip pins the export format: writing, re-reading, and
// re-writing a trace must reproduce the byte stream exactly.
func TestJSONLRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var a bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	back, counts, err := ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("round trip rejected its own output: %v", err)
	}
	if counts["meta"] != 1 || counts["span"] != len(tr.Spans) || counts["limit"] != len(tr.Limits) {
		t.Fatalf("counts %v do not match trace (%d spans, %d limits)", counts, len(tr.Spans), len(tr.Limits))
	}
	var b bytes.Buffer
	if err := back.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("write → read → write is not byte identical")
	}
}

// TestTraceShape pins the semantic content of the recorded tree.
func TestTraceShape(t *testing.T) {
	tr := buildTrace(t)
	byKind := make(map[Kind][]*Span)
	for i := range tr.Spans {
		s := &tr.Spans[i]
		byKind[s.Kind] = append(byKind[s.Kind], s)
		if s.End < s.Start {
			t.Fatalf("span %d: end %v before start %v", s.ID, s.End, s.Start)
		}
		if s.Parent >= s.ID {
			t.Fatalf("span %d: parent %d is not an earlier span", s.ID, s.Parent)
		}
	}
	if n := len(byKind[KindPacket]); n != 2 {
		t.Fatalf("want 2 packet roots, got %d", n)
	}
	if got := byKind[KindPacket][0].Detail; got != "delivered" {
		t.Fatalf("first root outcome %q, want delivered", got)
	}
	if got := byKind[KindPacket][1].Detail; got != "drop:overflow" {
		t.Fatalf("second root outcome %q, want drop:overflow", got)
	}
	if n := len(byKind[KindHop]); n != 3 {
		t.Fatalf("want 3 hop spans (2 delivered + 1 dropped), got %d", n)
	}
	if d := byKind[KindDefer]; len(d) != 1 || d[0].Peer != 2 || d[0].Detail != "cs" {
		t.Fatalf("defer span should attribute node 2 via cs, got %+v", d)
	}
	if b := byKind[KindBackoff]; len(b) != 1 || b[0].Val != 7 {
		t.Fatalf("backoff span should carry drawn slots 7, got %+v", b)
	}

	paths := CriticalPaths(tr, 0)
	if len(paths) != 1 {
		t.Fatalf("want 1 critical path for flow 0, got %d", len(paths))
	}
	p := paths[0]
	if !p.Exact {
		t.Fatalf("two-hop delivery should tile exactly: %+v", p)
	}
	if len(p.Hops) != 2 || p.Hops[0].Node != 0 || p.Hops[0].Next != 1 || p.Hops[1].Node != 1 || p.Hops[1].Next != 3 {
		t.Fatalf("hop sequence wrong: %+v", p.Hops)
	}
	if p.Blocked != time.Millisecond {
		t.Fatalf("blocked time %v, want 1ms", p.Blocked)
	}
	if p.Hops[0].Retries != 1 {
		t.Fatalf("first hop retries %d, want 1", p.Hops[0].Retries)
	}
	if p.Hops[0].DeferBy[2] != time.Millisecond {
		t.Fatalf("defer attribution %v, want 1ms to node 2", p.Hops[0].DeferBy)
	}

	waits := TopWaits(tr)
	if len(waits) == 0 {
		t.Fatal("no wait stats")
	}
	for i := 1; i < len(waits); i++ {
		if waits[i].Total > waits[i-1].Total {
			t.Fatalf("TopWaits not sorted descending: %+v", waits)
		}
	}

	chain := LimitChain(tr, 0)
	if len(chain) != 1 || chain[0].Cond != "bandwidth" || chain[0].Clique != "1.0" {
		t.Fatalf("limit chain provenance wrong: %+v", chain)
	}
}

// TestValidateJSONLRejects pins the strictness of the schema validator:
// each malformed stream must fail with an error naming the problem.
func TestValidateJSONLRejects(t *testing.T) {
	meta := `{"type":"meta","scenario":"s","protocol":"p","seed":1,"sample_every":64,"nodes":4,"flows":2,"duration_ns":1000}`
	span1 := `{"type":"span","id":1,"parent":0,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10}`
	cases := []struct {
		name    string
		stream  string
		wantErr string
	}{
		{"empty", "", "no meta"},
		{"meta not first", span1 + "\n" + meta, "first record must be meta"},
		{"duplicate meta", meta + "\n" + meta, "duplicate meta"},
		{"bad sample_every", `{"type":"meta","scenario":"s","protocol":"p","seed":1,"sample_every":0,"nodes":4,"flows":2,"duration_ns":1000}`, "sample_every"},
		{"not json", "not json at all", "not a JSON object"},
		{"unknown type", meta + "\n" + `{"type":"mystery"}`, "unknown record type"},
		{"unknown field", meta + "\n" + `{"type":"span","id":1,"parent":0,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10,"bogus":1}`, "unknown field"},
		{"span id gap", meta + "\n" + `{"type":"span","id":2,"parent":0,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10}`, "out of order"},
		{"unknown kind", meta + "\n" + `{"type":"span","id":1,"parent":0,"kind":"warp","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10}`, "unknown kind"},
		{"parent not earlier", meta + "\n" + `{"type":"span","id":1,"parent":1,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":0,"end_ns":10}`, "not an earlier span"},
		{"end before start", meta + "\n" + `{"type":"span","id":1,"parent":0,"kind":"packet","flow":0,"seq":0,"node":0,"peer":3,"start_ns":10,"end_ns":0}`, "before start"},
		{"negative val", meta + "\n" + `{"type":"span","id":1,"parent":0,"kind":"backoff","flow":0,"seq":0,"node":0,"peer":-1,"start_ns":0,"end_ns":10,"val":-1}`, "negative val"},
		{"unknown action", meta + "\n" + `{"type":"limit","id":1,"at_ns":0,"flow":0,"action":"teleport","before":1,"after":2,"node":0,"cond_at_ns":0}`, "unknown action"},
		{"limit below -1", meta + "\n" + `{"type":"limit","id":1,"at_ns":0,"flow":0,"action":"reduce","before":-2,"after":2,"node":0,"cond_at_ns":0}`, "below -1"},
		{"negative occupancy", meta + "\n" + `{"type":"limit","id":1,"at_ns":0,"flow":0,"action":"reduce","before":1,"after":2,"node":0,"cond_at_ns":0,"occupancy":[-0.5]}`, "negative occupancy"},
		{"limit id gap", meta + "\n" + `{"type":"limit","id":3,"at_ns":0,"flow":0,"action":"reduce","before":1,"after":2,"node":0,"cond_at_ns":0}`, "out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(tc.stream))
			if err == nil {
				t.Fatalf("validator accepted %q", tc.stream)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// And the valid minimal stream must pass.
	if _, err := ValidateJSONL(strings.NewReader(meta + "\n" + span1)); err != nil {
		t.Fatalf("validator rejected a valid stream: %v", err)
	}
}

// TestPerfettoWellFormed pins that the Chrome trace-event export is a
// valid JSON array of complete/metadata events.
func TestPerfettoWellFormed(t *testing.T) {
	tr := buildTrace(t)
	var b bytes.Buffer
	if err := tr.WriteTraceEvent(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("trace-event output is not valid JSON:\n%s", b.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	sawComplete, sawMeta := false, false
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			sawComplete = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		case "M":
			sawMeta = true
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if !sawComplete || !sawMeta {
		t.Fatal("export should contain both complete (X) and metadata (M) events")
	}
}
