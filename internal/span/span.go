// Package span is the causal tracing layer: a deterministic, sampled
// flight recorder that follows individual packets through flow →
// forwarding → MAC → radio and links every §5.3 rate-limit change to
// the condition, clique, and utilization figures that triggered it.
//
// Like the telemetry recorder (internal/obs), the Recorder only
// observes: it draws no randomness, mutates no protocol state, and
// schedules no events, so enabling it cannot change simulation
// behavior. Every producer gates its hooks on a nil check, and all
// Recorder methods are additionally safe on a nil receiver, so the
// spans-off hot path pays one branch and zero allocations.
//
// Memory is bounded by deterministic 1-in-k per-flow sampling: packet
// seq is sampled when seq ≡ offset (mod k), where offset is a seeded
// per-flow hash. Sampling never consults the simulation's random
// sources, so the sampled set is a pure function of (seed, flow, k)
// and spans-on runs reproduce byte for byte.
package span

import (
	"time"

	"gmp/internal/packet"
	"gmp/internal/topology"
)

// DefaultSampleEvery is the default per-flow sampling stride.
const DefaultSampleEvery = 64

// Config enables causal span tracing for a run.
type Config struct {
	// SampleEvery records one packet in every SampleEvery per flow
	// (default DefaultSampleEvery). 1 records every packet.
	SampleEvery int
}

// Kind classifies a span.
type Kind int

// Span kinds. Packet is the root of each sampled packet's tree; Hop
// spans tile the packet's lifetime exactly (each hop runs from the
// packet's admission at a node to its admission at the next node, or
// to delivery/drop), so the hop durations of a delivered packet sum to
// its end-to-end latency.
const (
	KindPacket  Kind = iota + 1 // whole lifetime: creation → delivery/drop
	KindBlocked                 // source held by local backpressure before admission
	KindHop                     // admission at a node → admission at the next
	KindQueue                   // waiting in the node's queue before the MAC pulled it
	KindMAC                     // MAC service: pulled → handed to the next hop
	KindBackoff                 // one DCF backoff countdown segment
	KindDefer                   // access frozen (carrier sense / NAV / response)
	KindAirtime                 // one data-frame transmission carrying the packet
	KindRetry                   // point event: CTS/ACK timeout, exchange retried
	KindCorrupt                 // point event: data frame corrupted at the receiver
)

// String names the kind in exports; ParseKind is its inverse.
func (k Kind) String() string {
	switch k {
	case KindPacket:
		return "packet"
	case KindBlocked:
		return "blocked"
	case KindHop:
		return "hop"
	case KindQueue:
		return "queue"
	case KindMAC:
		return "mac"
	case KindBackoff:
		return "backoff"
	case KindDefer:
		return "defer"
	case KindAirtime:
		return "airtime"
	case KindRetry:
		return "retry"
	case KindCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// ParseKind maps an export name back to its Kind (0 for unknown).
func ParseKind(s string) Kind {
	for k := KindPacket; k <= KindCorrupt; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Span is one node of a sampled packet's causal tree. IDs are assigned
// in creation order starting at 1; Parent is 0 for roots. A span's
// parent always has a smaller ID (parents open before their children).
type Span struct {
	ID     int64
	Parent int64
	Kind   Kind
	Flow   packet.FlowID
	Seq    int64
	// Node is where the span happened; Peer is the other party when one
	// exists (next hop for hop/airtime spans, the transmitting neighbor
	// whose carrier deferred us for defer spans), else -1.
	Node  topology.NodeID
	Peer  topology.NodeID
	Start time.Duration
	End   time.Duration
	// Val is a kind-specific scalar: drawn backoff slots for backoff
	// spans, the retry ordinal for retry spans, 0 otherwise.
	Val int64
	// Detail carries the outcome ("delivered", "drop:overflow",
	// "inflight") or the defer cause ("cs", "wait").
	Detail string
}

// LimitSpan is the decision-provenance record for one §5.3 rate-limit
// change: what the engine did, and the condition, bottleneck clique,
// and clique-occupancy figures it acted on.
type LimitSpan struct {
	ID     int64
	At     time.Duration
	Flow   packet.FlowID
	Action string // "reduce" | "increase" | "probe" | "remove"
	// Before and After are the limit in pkt/s around the change; -1
	// encodes "no limit".
	Before float64
	After  float64
	// Cond names the triggering §5.3 condition ("source", "buffer",
	// "bandwidth", "rate-limit"; "" when the engine recorded none), Node
	// the node that raised it, CondAt when it fired, and Factor the
	// requested adjustment factor.
	Cond   string
	Node   topology.NodeID
	CondAt time.Duration
	Factor float64
	// Clique identifies the bottleneck clique for bandwidth conditions
	// ("" otherwise); Occupancy holds the per-candidate-clique channel
	// occupancies the engine compared and MaxOcc their maximum.
	Clique    string
	Occupancy []float64
	MaxOcc    float64
}

// Meta describes the run a trace came from.
type Meta struct {
	Scenario    string        `json:"scenario"`
	Protocol    string        `json:"protocol"`
	Seed        int64         `json:"seed"`
	SampleEvery int           `json:"sample_every"`
	Nodes       int           `json:"nodes"`
	Flows       int           `json:"flows"`
	Duration    time.Duration `json:"duration_ns"`
}

// Trace is a finalized span recording.
type Trace struct {
	Meta   Meta
	Spans  []Span
	Limits []LimitSpan
}

type pktKey struct {
	flow packet.FlowID
	seq  int64
}

// pktState tracks a sampled packet's currently open spans. Slot values
// are span IDs (0 = slot empty); the *Node fields guard against
// cross-hop interleaving (a sender retransmitting after a lost ACK must
// not touch the slots the next hop already owns).
type pktState struct {
	root    int64
	blocked int64
	hop     int64
	queue   int64
	mac     int64
	backoff int64
	defr    int64

	hopNode     topology.NodeID
	queueNode   topology.NodeID
	macNode     topology.NodeID
	backoffNode topology.NodeID
	deferNode   topology.NodeID
}

// condRef is the per-flow memory of the most recent §5.3 condition, the
// provenance attached to the next limit change.
type condRef struct {
	at     time.Duration // -1 = none seen
	cond   string
	node   topology.NodeID
	factor float64
	clique string
	occ    []float64
	maxOcc float64
}

// Recorder accumulates spans during a run. Construct with NewRecorder;
// a nil *Recorder is valid and ignores every call.
type Recorder struct {
	nodes int
	flows int
	seed  int64
	every int64
	now   func() time.Duration

	spans  []Span
	limits []LimitSpan
	states map[pktKey]*pktState

	// offsets is the seeded per-flow sampling phase in [0, every).
	offsets []int64

	// busySrc[n] is the neighbor whose transmission currently holds
	// node n's carrier sense busy (-1 when idle), for defer attribution.
	busySrc []topology.NodeID

	lastReduce   []condRef
	lastIncrease []condRef
}

// NewRecorder builds a recorder for a run with the given node and flow
// counts. seed seeds the per-flow sampling phases; every is the
// sampling stride (values < 1 become DefaultSampleEvery). now reads
// the virtual clock.
func NewRecorder(nodes, flows int, seed int64, every int, now func() time.Duration) *Recorder {
	if every < 1 {
		every = DefaultSampleEvery
	}
	r := &Recorder{
		nodes:        nodes,
		flows:        flows,
		seed:         seed,
		every:        int64(every),
		now:          now,
		states:       make(map[pktKey]*pktState),
		offsets:      make([]int64, flows),
		busySrc:      make([]topology.NodeID, nodes),
		lastReduce:   make([]condRef, flows),
		lastIncrease: make([]condRef, flows),
	}
	for f := range r.offsets {
		r.offsets[f] = int64(splitmix64(uint64(seed)^(uint64(f)+1)*0x9E3779B97F4A7C15) % uint64(every))
	}
	for n := range r.busySrc {
		r.busySrc[n] = -1
	}
	for f := range r.lastReduce {
		r.lastReduce[f].at = -1
		r.lastIncrease[f].at = -1
	}
	return r
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash for
// the per-flow sampling phases.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SampleEvery returns the sampling stride (0 on a nil recorder).
func (r *Recorder) SampleEvery() int {
	if r == nil {
		return 0
	}
	return int(r.every)
}

// Sampled reports whether packet seq of the flow is traced.
func (r *Recorder) Sampled(flow packet.FlowID, seq int64) bool {
	if r == nil || int(flow) >= len(r.offsets) || flow < 0 {
		return false
	}
	return seq%r.every == r.offsets[flow]
}

// open appends a new span and returns its ID. End is provisionally -1
// ("still open"); closeAt or Finalize sets it.
func (r *Recorder) open(kind Kind, parent int64, flow packet.FlowID, seq int64, node, peer topology.NodeID, start time.Duration) int64 {
	r.spans = append(r.spans, Span{
		ID:     int64(len(r.spans) + 1),
		Parent: parent,
		Kind:   kind,
		Flow:   flow,
		Seq:    seq,
		Node:   node,
		Peer:   peer,
		Start:  start,
		End:    -1,
	})
	return int64(len(r.spans))
}

func (r *Recorder) closeAt(id int64, end time.Duration) {
	if id <= 0 || id > int64(len(r.spans)) {
		return
	}
	s := &r.spans[id-1]
	if s.End < 0 {
		s.End = end
	}
}

func (r *Recorder) state(p *packet.Packet) (*pktState, bool) {
	if !r.Sampled(p.Flow, p.Seq) {
		return nil, false
	}
	key := pktKey{flow: p.Flow, seq: p.Seq}
	st := r.states[key]
	if st == nil {
		st = &pktState{}
		r.states[key] = st
	}
	return st, true
}

// SourceBlocked records that the flow source could not admit the
// sampled packet (local queue full) and is waiting for the queue to
// open. Called from the flow layer on every refused generation attempt;
// only the first opens the span.
func (r *Recorder) SourceBlocked(p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.blocked != 0 {
		return
	}
	st.blocked = r.open(KindBlocked, 0, p.Flow, p.Seq, p.Src, -1, r.now())
}

// Admitted records the sampled packet entering node's queues: at the
// source this opens the packet root (anchored at the packet's creation
// time) and the first hop; at a relay it closes the previous hop and
// the sender's MAC span (the hand-off instant is the hop boundary) and
// opens the next. A queue-wait span opens either way.
func (r *Recorder) Admitted(node topology.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok {
		return
	}
	now := r.now()
	if st.root == 0 {
		st.root = r.open(KindPacket, 0, p.Flow, p.Seq, p.Src, p.Dst, p.Created)
	}
	if st.blocked != 0 {
		r.closeAt(st.blocked, now)
		st.blocked = 0
	}
	// The hand-off closes everything the previous hop had open.
	r.closeHopState(st, node, now)
	st.hop = r.open(KindHop, st.root, p.Flow, p.Seq, node, -1, now)
	st.hopNode = node
	st.queue = r.open(KindQueue, st.hop, p.Flow, p.Seq, node, -1, now)
	st.queueNode = node
}

// closeHopState closes the open hop and all its open descendants at
// end, recording next as the hop's peer (-1 when unknown).
func (r *Recorder) closeHopState(st *pktState, next topology.NodeID, end time.Duration) {
	for _, slot := range []*int64{&st.defr, &st.backoff, &st.mac, &st.queue} {
		if *slot != 0 {
			r.closeAt(*slot, end)
			*slot = 0
		}
	}
	if st.hop != 0 {
		r.closeAt(st.hop, end)
		r.spans[st.hop-1].Peer = next
		st.hop = 0
	}
}

// Dropped records the sampled packet's loss at node and closes its tree.
func (r *Recorder) Dropped(node topology.NodeID, p *packet.Packet, reason string) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok {
		return
	}
	now := r.now()
	if st.blocked != 0 {
		r.closeAt(st.blocked, now)
		st.blocked = 0
	}
	r.closeHopState(st, -1, now)
	if st.root != 0 {
		r.closeAt(st.root, now)
		r.spans[st.root-1].Detail = "drop:" + reason
	}
	delete(r.states, pktKey{flow: p.Flow, seq: p.Seq})
}

// Delivered records the sampled packet reaching its destination and
// closes its tree. The delivery instant equals the last data frame's
// end of air, so the final hop ends exactly at the recorded end-to-end
// latency.
func (r *Recorder) Delivered(p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok {
		return
	}
	now := r.now()
	r.closeHopState(st, p.Dst, now)
	if st.root != 0 {
		r.closeAt(st.root, now)
		r.spans[st.root-1].Detail = "delivered"
	}
	delete(r.states, pktKey{flow: p.Flow, seq: p.Seq})
}

// Requeued records the MAC abandoning the sampled packet at node (retry
// limit or crash) with the forwarding layer requeueing it: the MAC span
// closes and a fresh queue-wait span opens.
func (r *Recorder) Requeued(node topology.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.hop == 0 {
		return
	}
	now := r.now()
	for _, slot := range []*int64{&st.defr, &st.backoff} {
		if *slot != 0 {
			r.closeAt(*slot, now)
			*slot = 0
		}
	}
	if st.mac != 0 {
		r.closeAt(st.mac, now)
		r.spans[st.mac-1].Detail = "abandon"
		st.mac = 0
	}
	st.queue = r.open(KindQueue, st.hop, p.Flow, p.Seq, node, -1, now)
	st.queueNode = node
}

// MACPulled records the MAC at node taking the sampled packet as its
// current outgoing: the queue wait ends and MAC service begins.
func (r *Recorder) MACPulled(node topology.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.hop == 0 {
		return
	}
	now := r.now()
	if st.queue != 0 && st.queueNode == node {
		r.closeAt(st.queue, now)
		st.queue = 0
	}
	if st.mac == 0 {
		st.mac = r.open(KindMAC, st.hop, p.Flow, p.Seq, node, -1, now)
		st.macNode = node
	}
}

// BackoffStart records a DCF backoff countdown segment beginning at
// node with the given remaining slots.
func (r *Recorder) BackoffStart(node topology.NodeID, p *packet.Packet, slots int) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.mac == 0 || st.macNode != node || st.backoff != 0 {
		return
	}
	id := r.open(KindBackoff, st.mac, p.Flow, p.Seq, node, -1, r.now())
	r.spans[id-1].Val = int64(slots)
	st.backoff = id
	st.backoffNode = node
}

// BackoffEnd closes the open backoff segment at node (countdown
// completed or frozen).
func (r *Recorder) BackoffEnd(node topology.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.backoff == 0 || st.backoffNode != node {
		return
	}
	r.closeAt(st.backoff, r.now())
	st.backoff = 0
}

// MACDeferred records channel access freezing at node while it holds
// the sampled packet. The deferral is attributed to the neighbor whose
// transmission holds the node's carrier sense busy ("cs"); with no such
// neighbor (NAV reservation, SIFS response duty) the cause is "wait".
func (r *Recorder) MACDeferred(node topology.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.mac == 0 || st.macNode != node || st.defr != 0 {
		return
	}
	peer := topology.NodeID(-1)
	if int(node) < len(r.busySrc) {
		peer = r.busySrc[node]
	}
	detail := "wait"
	if peer >= 0 {
		detail = "cs"
	}
	id := r.open(KindDefer, st.mac, p.Flow, p.Seq, node, peer, r.now())
	r.spans[id-1].Detail = detail
	st.defr = id
	st.deferNode = node
}

// MACResumed closes the open defer span at node (access progressed to
// DIFS again).
func (r *Recorder) MACResumed(node topology.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.defr == 0 || st.deferNode != node {
		return
	}
	r.closeAt(st.defr, r.now())
	st.defr = 0
}

// MACRetry records a CTS/ACK timeout for the sampled packet at node as
// a point event carrying the retry ordinal.
func (r *Recorder) MACRetry(node topology.NodeID, p *packet.Packet, retries int) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.mac == 0 || st.macNode != node {
		return
	}
	now := r.now()
	id := r.open(KindRetry, st.mac, p.Flow, p.Seq, node, -1, now)
	r.closeAt(id, now)
	r.spans[id-1].Val = int64(retries)
}

// DataAirtime records one data-frame transmission carrying the sampled
// packet: [start, end) on the air from node from toward to. Called by
// the radio layer at transmit time (the end of air is known up front).
func (r *Recorder) DataAirtime(p *packet.Packet, from, to topology.NodeID, start, end time.Duration) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.mac == 0 || st.macNode != from {
		return
	}
	id := r.open(KindAirtime, st.mac, p.Flow, p.Seq, from, to, start)
	r.closeAt(id, end)
}

// DataCorrupted records the sampled packet's data frame arriving
// corrupted at its intended receiver (collision, half-duplex overlap,
// or injected loss) as a point event.
func (r *Recorder) DataCorrupted(p *packet.Packet, from, at topology.NodeID) {
	if r == nil {
		return
	}
	st, ok := r.state(p)
	if !ok || st.mac == 0 || st.macNode != from {
		return
	}
	now := r.now()
	id := r.open(KindCorrupt, st.mac, p.Flow, p.Seq, at, from, now)
	r.closeAt(id, now)
}

// NodeBusy notes that node's carrier sense went busy because src
// started transmitting (defer attribution state; no span).
func (r *Recorder) NodeBusy(node, src topology.NodeID) {
	if r == nil || int(node) >= len(r.busySrc) {
		return
	}
	r.busySrc[node] = src
}

// NodeIdle notes that node's carrier sense went idle.
func (r *Recorder) NodeIdle(node topology.NodeID) {
	if r == nil || int(node) >= len(r.busySrc) {
		return
	}
	r.busySrc[node] = -1
}

// Condition records a §5.3 condition evaluation touching the flow, as
// provenance for the flow's next limit change. clique names the
// bottleneck clique ("" when not applicable), occ the candidate-clique
// occupancies the engine compared, and maxOcc their maximum.
//
// Engines iterate Go maps while evaluating, so two conditions for the
// same flow can arrive in either order within one boundary; the slot
// keeps the canonically smallest of the newest ones, which makes the
// retained provenance independent of map iteration order.
func (r *Recorder) Condition(flow packet.FlowID, node topology.NodeID, cond string, reduce bool, factor float64, clique string, occ []float64, maxOcc float64) {
	if r == nil || flow < 0 || int(flow) >= r.flows {
		return
	}
	slot := &r.lastIncrease[flow]
	if reduce {
		slot = &r.lastReduce[flow]
	}
	now := r.now()
	next := condRef{at: now, cond: cond, node: node, factor: factor, clique: clique, maxOcc: maxOcc}
	if len(occ) > 0 {
		next.occ = append([]float64(nil), occ...)
	}
	if slot.at == now && !condLess(next, *slot) {
		return
	}
	*slot = next
}

// condLess is the canonical order used to break same-instant condition
// ties deterministically.
func condLess(a, b condRef) bool {
	if a.cond != b.cond {
		return a.cond < b.cond
	}
	if a.node != b.node {
		return a.node < b.node
	}
	if a.clique != b.clique {
		return a.clique < b.clique
	}
	if a.factor != b.factor {
		return a.factor < b.factor
	}
	// Same-instant conditions from different wireless links can name the
	// same clique with occupancy vectors over different owner sets (the
	// engine iterates links in map order); compare the vectors so the
	// retained condition is canonical regardless of arrival order.
	if a.maxOcc != b.maxOcc {
		return a.maxOcc < b.maxOcc
	}
	if len(a.occ) != len(b.occ) {
		return len(a.occ) < len(b.occ)
	}
	for i := range a.occ {
		if a.occ[i] != b.occ[i] {
			return a.occ[i] < b.occ[i]
		}
	}
	return false
}

// LimitChange records a rate-limit change for the flow, attaching the
// provenance of the most recent matching condition: reduce actions link
// the last reduce condition, increase actions the last increase
// condition, and probe/remove actions the §5.3 rate-limit condition
// (which the engine enforces at the source, src).
func (r *Recorder) LimitChange(flow packet.FlowID, src topology.NodeID, action string, before, after float64) {
	if r == nil || flow < 0 || int(flow) >= r.flows {
		return
	}
	now := r.now()
	ls := LimitSpan{
		ID:     int64(len(r.limits) + 1),
		At:     now,
		Flow:   flow,
		Action: action,
		Before: before,
		After:  after,
		Node:   -1,
		CondAt: -1,
	}
	var ref *condRef
	switch action {
	case "reduce":
		ref = &r.lastReduce[flow]
	case "increase":
		ref = &r.lastIncrease[flow]
	case "probe", "remove":
		ls.Cond = "rate-limit"
		ls.Node = src
		ls.CondAt = now
		if action == "probe" && before > 0 && after > 0 {
			ls.Factor = after / before
		}
	}
	if ref != nil && ref.at >= 0 {
		ls.Cond = ref.cond
		ls.Node = ref.node
		ls.CondAt = ref.at
		ls.Factor = ref.factor
		ls.Clique = ref.clique
		ls.MaxOcc = ref.maxOcc
		if len(ref.occ) > 0 {
			ls.Occupancy = append([]float64(nil), ref.occ...)
		}
	}
	r.limits = append(r.limits, ls)
}

// Finalize closes every still-open span at the run's end and returns
// the trace. Open packet roots are marked "inflight". The span slice is
// already in deterministic creation order (the scheduler is single
// threaded), so no sort is needed; patching ends via the states map is
// order independent (each patch touches only its own span).
func (r *Recorder) Finalize(scenario, protocol string, duration time.Duration) *Trace {
	if r == nil {
		return nil
	}
	for _, st := range r.states {
		for _, id := range []int64{st.blocked, st.queue, st.backoff, st.defr, st.mac, st.hop, st.root} {
			r.closeAt(id, duration)
		}
		if st.root != 0 && r.spans[st.root-1].Detail == "" {
			r.spans[st.root-1].Detail = "inflight"
		}
	}
	r.states = make(map[pktKey]*pktState)
	for i := range r.spans {
		if r.spans[i].End < 0 {
			r.spans[i].End = duration
		}
	}
	return &Trace{
		Meta: Meta{
			Scenario:    scenario,
			Protocol:    protocol,
			Seed:        r.seed,
			SampleEvery: int(r.every),
			Nodes:       r.nodes,
			Flows:       r.flows,
			Duration:    duration,
		},
		Spans:  r.spans,
		Limits: r.limits,
	}
}
