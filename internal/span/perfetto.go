package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export (the JSON array format), loadable in
// Perfetto and chrome://tracing. Each sampled packet becomes a
// "process" (pid = flow+1) whose "threads" are the nodes it visited,
// so a packet's hop/queue/MAC/backoff spans nest visually per node.
// Limit-change provenance lands on pid 0 ("gmp engine") with one
// thread per flow.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  *float64       `json:"dur,omitempty"` // microseconds; nil for metadata events
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func durp(us float64) *float64 { return &us }

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteTraceEvent writes the trace as a Chrome trace-event JSON array.
func (t *Trace) WriteTraceEvent(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}

	meta := func(pid int64, name string) error {
		return emit(traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	if len(t.Limits) > 0 {
		if err := meta(0, "gmp engine ("+t.Meta.Scenario+"/"+t.Meta.Protocol+")"); err != nil {
			return err
		}
	}
	seenFlow := make(map[int64]bool)
	for i := range t.Spans {
		s := &t.Spans[i]
		pid := int64(s.Flow) + 1
		if !seenFlow[pid] {
			seenFlow[pid] = true
			if err := meta(pid, fmt.Sprintf("flow %d", s.Flow)); err != nil {
				return err
			}
		}
		name := s.Kind.String()
		if s.Detail != "" {
			name += ":" + s.Detail
		}
		ev := traceEvent{
			Name: name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   usec(int64(s.Start)),
			Dur:  durp(usec(int64(s.End - s.Start))),
			PID:  pid,
			TID:  int64(s.Node),
			Args: map[string]any{"id": s.ID, "seq": s.Seq},
		}
		if s.Parent != 0 {
			ev.Args["parent"] = s.Parent
		}
		if s.Peer >= 0 {
			ev.Args["peer"] = int64(s.Peer)
		}
		if s.Val != 0 {
			ev.Args["val"] = s.Val
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	for i := range t.Limits {
		l := &t.Limits[i]
		args := map[string]any{
			"action": l.Action, "before": l.Before, "after": l.After,
		}
		if l.Cond != "" {
			args["cond"] = l.Cond
			args["cond_node"] = int64(l.Node)
			args["cond_at_us"] = usec(int64(l.CondAt))
		}
		if l.Clique != "" {
			args["clique"] = l.Clique
			args["max_occ"] = l.MaxOcc
		}
		if err := emit(traceEvent{
			Name: fmt.Sprintf("limit %s flow %d", l.Action, l.Flow),
			Cat:  "limit",
			Ph:   "X",
			TS:   usec(int64(l.At)),
			Dur:  durp(1), // instant-ish; 1µs keeps it clickable
			PID:  0,
			TID:  int64(l.Flow),
			Args: args,
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
