// Package flow models end-to-end flows: their specifications, the
// rate-limited packet sources that drive them, normalized-rate stamping
// (§6.2), and delivery accounting at the sinks.
package flow

import (
	"fmt"
	"math/rand"
	"time"

	"gmp/internal/forwarding"
	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
)

// Spec declares one end-to-end flow.
type Spec struct {
	ID     packet.FlowID
	Src    topology.NodeID
	Dst    topology.NodeID
	Weight float64
	// DesiredRate is d(f) in packets per second (§2.1; the paper uses
	// 800 pkt/s everywhere).
	DesiredRate float64
	SizeBytes   int
	// Start delays packet generation until the given virtual time, and
	// Stop (when positive) ends it — flow churn, an extension beyond
	// the paper's static flow sets. Zero values mean the whole session.
	Start time.Duration
	Stop  time.Duration
}

// Validate checks the spec for obvious mistakes.
func (s Spec) Validate() error {
	if s.Src == s.Dst {
		return fmt.Errorf("flow %d: source equals destination %d", s.ID, s.Src)
	}
	if s.Weight <= 0 {
		return fmt.Errorf("flow %d: non-positive weight %v", s.ID, s.Weight)
	}
	if s.DesiredRate <= 0 {
		return fmt.Errorf("flow %d: non-positive desired rate %v", s.ID, s.DesiredRate)
	}
	if s.SizeBytes <= 0 {
		return fmt.Errorf("flow %d: non-positive packet size %d", s.ID, s.SizeBytes)
	}
	if s.Start < 0 || s.Stop < 0 {
		return fmt.Errorf("flow %d: negative start/stop time", s.ID)
	}
	if s.Stop > 0 && s.Stop <= s.Start {
		return fmt.Errorf("flow %d: stop %v not after start %v", s.ID, s.Stop, s.Start)
	}
	return nil
}

// ActiveAt reports whether the flow generates packets at time t.
func (s Spec) ActiveAt(t time.Duration) bool {
	if t < s.Start {
		return false
	}
	return s.Stop == 0 || t < s.Stop
}

// MinRate floors the self-imposed rate limit so a repeatedly halved flow
// can always probe its way back up (liveness of the rate-limit condition).
const MinRate = 1.0 // packets per second

// Source generates a flow's packets at min(desired rate, rate limit) and
// implements the source half of buffer-based backpressure: when the local
// queue is full it pauses until the queue opens.
//
// Per §6.2 the source measures the flow's rate and stamps outgoing
// packets with the resulting normalized rate. The paper measures in the
// first half of each period and stamps during the second half; this
// implementation stamps every packet with the rate of the last complete
// period — the same one-period-stale quantity with half the measurement
// noise (see DESIGN.md).
type Source struct {
	spec  Spec
	sched *sim.Scheduler
	node  *forwarding.Node
	rng   *rand.Rand

	period time.Duration
	cbr    bool

	limited bool
	limit   float64

	seq      int64
	nextSend sim.Timer
	waiting  bool // paused on a full local queue
	started  bool // Start/StartNow was called (churn flows may never start)
	stopped  bool // past the spec's Stop time or torn down
	halted   bool // source node crashed (fault injection)

	stamped  bool // at least one period has completed
	normRate float64

	periodCount    int64 // packets injected in the current full period
	lastPeriodRate float64

	injectedTotal int64

	// qid is the local queue the flow's packets land in; the forwarding
	// mode's QueueKey depends only on (Flow, Dst), so it is fixed for the
	// flow's lifetime. generateFn and queueOpenFn are prebound so the
	// steady-state reschedule path allocates no closures.
	qid         packet.QueueID
	generateFn  func()
	queueOpenFn func()

	// spans, when non-nil, receives causal-trace events for sampled
	// packets (source backpressure). Purely observational.
	spans *span.Recorder
}

// NewSource builds the generator for spec, injecting into node (which must
// be the forwarding engine at spec.Src). period is the measurement period
// driving the stamping schedule.
func NewSource(spec Spec, sched *sim.Scheduler, node *forwarding.Node, period time.Duration, rng *rand.Rand) *Source {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if node.ID() != spec.Src {
		panic(fmt.Sprintf("flow %d: source node %d attached to engine of node %d", spec.ID, spec.Src, node.ID()))
	}
	s := &Source{
		spec:   spec,
		sched:  sched,
		node:   node,
		rng:    rng,
		period: period,
	}
	s.qid = node.Config().Mode.QueueKey(&packet.Packet{Flow: spec.ID, Dst: spec.Dst})
	s.generateFn = s.generate
	s.queueOpenFn = func() {
		if !s.waiting {
			return
		}
		s.waiting = false
		s.generate()
	}
	return s
}

// Spec returns the flow's specification.
func (s *Source) Spec() Spec { return s.spec }

// SetSpans installs a causal-trace recorder (nil disables, the default).
func (s *Source) SetSpans(r *span.Recorder) { s.spans = r }

// SetCBR switches the generator from Poisson arrivals (the default) to
// constant-bit-rate generation. Poisson is the default because phase lock
// between deterministic sources and MAC service cycles produces artifacts
// (e.g. a relayed packet at a full shared FIFO is always overwritten by
// the co-located source before the next dequeue).
func (s *Source) SetCBR(cbr bool) { s.cbr = cbr }

// Start begins packet generation, honoring the spec's Start and Stop
// times. Generation begins at a random phase within one packet interval
// so concurrent flows do not tick in lockstep.
func (s *Source) Start() {
	s.started = true
	offset := s.spec.Start + time.Duration(s.rng.Float64()*float64(s.interval()))
	s.nextSend = s.sched.After(offset, s.generateFn)
	if s.spec.Stop > 0 {
		s.sched.At(s.spec.Stop, s.Teardown)
	}
}

// StartNow begins packet generation immediately — the admission path
// for churn flows, whose spec Start has already elapsed when the
// admission decision lands. Only the random phase offset is applied;
// the spec's Stop time still registers the teardown. A halted source
// (its node crashed between arrival and admission) stays silent until
// recovery resumes it.
func (s *Source) StartNow() {
	s.started = true
	if s.spec.Stop > 0 {
		s.sched.At(s.spec.Stop, s.Teardown)
	}
	if s.halted {
		return
	}
	s.nextSend = s.sched.After(time.Duration(s.rng.Float64()*float64(s.interval())), s.generateFn)
}

// Teardown permanently stops the source (flow departure or watchdog
// shed): generation ceases, any queue-open wait is abandoned, and the
// rate-limit/stamping state is cleared so no stale limit survives the
// flow. Irreversible, unlike SetHalted.
func (s *Source) Teardown() {
	s.stopped = true
	s.waiting = false
	s.nextSend.Cancel()
	s.RemoveLimit()
	s.normRate = 0
	s.stamped = false
}

// Started reports whether Start or StartNow has been called.
func (s *Source) Started() bool { return s.started }

// Stopped reports whether the source has permanently stopped.
func (s *Source) Stopped() bool { return s.stopped }

func (s *Source) rate() float64 {
	r := s.spec.DesiredRate
	if s.limited && s.limit < r {
		r = s.limit
	}
	if r < MinRate {
		r = MinRate
	}
	return r
}

func (s *Source) interval() time.Duration {
	mean := float64(time.Second) / s.rate()
	if s.cbr {
		return time.Duration(mean)
	}
	return time.Duration(s.rng.ExpFloat64() * mean)
}

// SetHalted pauses (halted=true) or resumes packet generation when the
// source's node crashes and recovers. Unlike Stop this is reversible:
// on resume the generator reschedules itself, honoring a Start time
// still in the future. The halted check in generate() also defuses any
// pending queue-open waiter from before the crash.
func (s *Source) SetHalted(halted bool) {
	if halted == s.halted {
		return
	}
	s.halted = halted
	if halted {
		s.nextSend.Cancel()
		s.waiting = false
		return
	}
	if s.stopped || !s.started {
		return
	}
	delay := s.interval()
	if wait := s.spec.Start - s.sched.Now(); wait > delay {
		delay = wait
	}
	s.nextSend = s.sched.After(delay, s.generateFn)
}

// Halted reports whether the source is paused by fault injection.
func (s *Source) Halted() bool { return s.halted }

func (s *Source) generate() {
	if s.stopped || s.halted {
		return
	}
	p := &packet.Packet{
		Flow:      s.spec.ID,
		Src:       s.spec.Src,
		Dst:       s.spec.Dst,
		Seq:       s.seq,
		SizeBytes: s.spec.SizeBytes,
		Weight:    s.spec.Weight,
		NormRate:  s.normRate,
		Stamped:   s.stamped,
		Created:   s.sched.Now(),
	}
	if !s.node.Enqueue(p) {
		// Local queue full: the source slows down (§2.2). Resume when the
		// queue opens; the unsent packet is regenerated then.
		if s.spans != nil {
			s.spans.SourceBlocked(p)
		}
		s.waiting = true
		s.node.NotifyQueueOpen(s.qid, s.queueOpenFn)
		return
	}
	s.seq++
	s.periodCount++
	s.injectedTotal++
	s.nextSend = s.sched.After(s.interval(), s.generateFn)
}

// NormRate returns the flow's current normalized rate μ(f) as measured at
// the source.
func (s *Source) NormRate() float64 { return s.normRate }

// Limited reports whether the source currently has a self-imposed rate
// limit, and its value in packets per second.
func (s *Source) Limited() (float64, bool) { return s.limit, s.limited }

// SetLimit installs (or tightens/loosens) the self-imposed rate limit.
func (s *Source) SetLimit(pps float64) {
	if pps < MinRate {
		pps = MinRate
	}
	if pps >= s.spec.DesiredRate {
		s.RemoveLimit()
		return
	}
	s.limited = true
	s.limit = pps
}

// RemoveLimit clears the rate limit (the "Removing Unnecessary Rate
// Limits" step of §6.3).
func (s *Source) RemoveLimit() {
	s.limited = false
	s.limit = 0
}

// EndPeriod closes the current full measurement period, returning the
// flow's actual injection rate r(f) over it and refreshing the normalized
// rate stamped into outgoing packets (§6.2 "Normalized Rate").
func (s *Source) EndPeriod() float64 {
	s.lastPeriodRate = float64(s.periodCount) / s.period.Seconds()
	s.periodCount = 0
	s.normRate = s.lastPeriodRate / s.spec.Weight
	s.stamped = true
	return s.lastPeriodRate
}

// LastPeriodRate returns the rate computed by the previous EndPeriod call.
func (s *Source) LastPeriodRate() float64 { return s.lastPeriodRate }

// InjectedTotal returns the number of packets the source has injected.
func (s *Source) InjectedTotal() int64 { return s.injectedTotal }

// Registry tracks all flows of a simulation and their delivery counters.
type Registry struct {
	specs   []Spec
	sources []*Source

	delivered []int64
	dropped   []int64
	droppedBy []map[forwarding.DropReason]int64

	markTime      time.Duration
	markDelivered []int64
	markInjected  []int64
}

// NewRegistry builds a registry for the given flow specs. Flow IDs must be
// dense: specs[i].ID == i.
func NewRegistry(specs []Spec) (*Registry, error) {
	for i, s := range specs {
		if int(s.ID) != i {
			return nil, fmt.Errorf("flow: spec %d has non-dense ID %d", i, s.ID)
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return &Registry{
		specs:         append([]Spec(nil), specs...),
		sources:       make([]*Source, len(specs)),
		delivered:     make([]int64, len(specs)),
		dropped:       make([]int64, len(specs)),
		droppedBy:     make([]map[forwarding.DropReason]int64, len(specs)),
		markDelivered: make([]int64, len(specs)),
		markInjected:  make([]int64, len(specs)),
	}, nil
}

// Specs returns the flow specifications.
func (r *Registry) Specs() []Spec { return r.specs }

// NumFlows returns the flow count.
func (r *Registry) NumFlows() int { return len(r.specs) }

// AttachSource records the source driving flow id.
func (r *Registry) AttachSource(id packet.FlowID, s *Source) { r.sources[id] = s }

// Source returns the generator of flow id.
func (r *Registry) Source(id packet.FlowID) *Source { return r.sources[id] }

// Sources returns all flow sources in flow-ID order.
func (r *Registry) Sources() []*Source { return r.sources }

// OnDeliver is the sink callback: counts an end-to-end delivery.
func (r *Registry) OnDeliver(p *packet.Packet, _ topology.NodeID) {
	r.delivered[p.Flow]++
}

// OnDrop counts a packet loss anywhere along the path, classified by
// reason so fault experiments can separate crash losses from
// congestion losses.
func (r *Registry) OnDrop(p *packet.Packet, reason forwarding.DropReason) {
	r.dropped[p.Flow]++
	if r.droppedBy[p.Flow] == nil {
		r.droppedBy[p.Flow] = make(map[forwarding.DropReason]int64)
	}
	r.droppedBy[p.Flow][reason]++
}

// Delivered returns the end-to-end deliveries of flow id so far.
func (r *Registry) Delivered(id packet.FlowID) int64 { return r.delivered[id] }

// Dropped returns the packets of flow id lost so far.
func (r *Registry) Dropped(id packet.FlowID) int64 { return r.dropped[id] }

// DroppedBy returns a copy of flow id's losses classified by reason
// (nil-safe: flows without losses return an empty map).
func (r *Registry) DroppedBy(id packet.FlowID) map[forwarding.DropReason]int64 {
	out := make(map[forwarding.DropReason]int64, len(r.droppedBy[id]))
	for k, v := range r.droppedBy[id] {
		out[k] = v
	}
	return out
}

// Limits returns each flow's current self-imposed rate limit in packets
// per second, with -1 for unlimited flows (telemetry sampling; -1 keeps
// the vector JSON-encodable, unlike +Inf).
func (r *Registry) Limits() []float64 {
	out := make([]float64, len(r.sources))
	for i, src := range r.sources {
		if l, ok := src.Limited(); ok {
			out[i] = l
		} else {
			out[i] = -1
		}
	}
	return out
}

// Mark snapshots delivery and injection counters at virtual time now;
// MeasuredRates later reports rates over [now, then]. Used to exclude
// warmup from reported rates.
func (r *Registry) Mark(now time.Duration) {
	r.markTime = now
	for i := range r.specs {
		r.markDelivered[i] = r.delivered[i]
		if r.sources[i] != nil {
			r.markInjected[i] = r.sources[i].InjectedTotal()
		}
	}
}

// MeasuredRates returns each flow's end-to-end delivery rate in packets
// per second over [mark, now].
func (r *Registry) MeasuredRates(now time.Duration) []float64 {
	window := (now - r.markTime).Seconds()
	rates := make([]float64, len(r.specs))
	if window <= 0 {
		return rates
	}
	for i := range r.specs {
		rates[i] = float64(r.delivered[i]-r.markDelivered[i]) / window
	}
	return rates
}
