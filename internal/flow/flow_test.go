package flow

import (
	"math"
	"testing"
	"time"

	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

const testPeriod = 4 * time.Second

func harness(t *testing.T, queueSlots int) (*forwarding.Node, *sim.Scheduler) {
	t.Helper()
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 400}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := forwarding.DefaultConfig()
	cfg.QueueSlots = queueSlots
	sched := sim.NewScheduler()
	node := forwarding.NewNode(0, sched, cfg, routing.Build(topo), nil, nil)
	return node, sched
}

func spec(rate float64, weight float64) Spec {
	return Spec{ID: 0, Src: 0, Dst: 2, Weight: weight, DesiredRate: rate, SizeBytes: 1024}
}

// drain empties the node's queues on a fixed interval so the source never
// blocks.
func drain(node *forwarding.Node, sched *sim.Scheduler, every time.Duration) {
	var tick func()
	tick = func() {
		for node.NextOutgoing() != nil {
			// discard
		}
		sched.After(every, tick)
	}
	sched.After(every, tick)
}

func TestSpecValidate(t *testing.T) {
	good := spec(800, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{ID: 0, Src: 1, Dst: 1, Weight: 1, DesiredRate: 1, SizeBytes: 1},
		{ID: 0, Src: 0, Dst: 1, Weight: 0, DesiredRate: 1, SizeBytes: 1},
		{ID: 0, Src: 0, Dst: 1, Weight: 1, DesiredRate: 0, SizeBytes: 1},
		{ID: 0, Src: 0, Dst: 1, Weight: 1, DesiredRate: 1, SizeBytes: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSourceGeneratesAtDesiredRate(t *testing.T) {
	node, sched := harness(t, 300)
	src := NewSource(spec(100, 1), sched, node, testPeriod, sim.NewRand(3))
	drain(node, sched, 10*time.Millisecond)
	src.Start()
	sched.Run(10 * time.Second)
	got := float64(src.InjectedTotal()) / 10
	if math.Abs(got-100) > 10 {
		t.Errorf("injection rate %.1f, want ~100", got)
	}
}

func TestSourceCBRIsExact(t *testing.T) {
	node, sched := harness(t, 300)
	src := NewSource(spec(100, 1), sched, node, testPeriod, sim.NewRand(3))
	src.SetCBR(true)
	drain(node, sched, 10*time.Millisecond)
	src.Start()
	sched.Run(10 * time.Second)
	if got := src.InjectedTotal(); got < 999 || got > 1001 {
		t.Errorf("CBR injected %d packets in 10s at 100/s", got)
	}
}

func TestRateLimitCapsGeneration(t *testing.T) {
	node, sched := harness(t, 300)
	src := NewSource(spec(800, 1), sched, node, testPeriod, sim.NewRand(3))
	src.SetLimit(50)
	drain(node, sched, 10*time.Millisecond)
	src.Start()
	sched.Run(10 * time.Second)
	got := float64(src.InjectedTotal()) / 10
	if math.Abs(got-50) > 8 {
		t.Errorf("limited rate %.1f, want ~50", got)
	}
}

func TestSetLimitBounds(t *testing.T) {
	node, sched := harness(t, 300)
	src := NewSource(spec(800, 1), sched, node, testPeriod, sim.NewRand(3))
	src.SetLimit(0.01)
	if l, ok := src.Limited(); !ok || l != MinRate {
		t.Errorf("limit = %v,%v; want floor %v", l, ok, MinRate)
	}
	src.SetLimit(900) // above desire: limit is meaningless
	if _, ok := src.Limited(); ok {
		t.Error("limit at/above desired rate should be removed")
	}
	src.SetLimit(100)
	src.RemoveLimit()
	if _, ok := src.Limited(); ok {
		t.Error("RemoveLimit did not clear")
	}
}

func TestBackpressurePausesSource(t *testing.T) {
	// Queue of 5 slots, nobody drains: the source must stop at 5.
	node, sched := harness(t, 5)
	src := NewSource(spec(800, 1), sched, node, testPeriod, sim.NewRand(3))
	src.Start()
	sched.Run(2 * time.Second)
	if got := src.InjectedTotal(); got != 5 {
		t.Fatalf("injected %d with a 5-slot blocked queue", got)
	}
	// Drain two slots: exactly two more get in.
	node.NextOutgoing()
	node.NextOutgoing()
	sched.Run(4 * time.Second)
	if got := src.InjectedTotal(); got != 7 {
		t.Fatalf("injected %d after freeing 2 slots, want 7", got)
	}
}

func TestEndPeriodRatesAndStamping(t *testing.T) {
	node, sched := harness(t, 300) // deep queue: no draining needed
	src := NewSource(spec(50, 2), sched, node, testPeriod, sim.NewRand(3))
	src.Start()
	sched.Run(testPeriod)
	r := src.EndPeriod()
	if math.Abs(r-50) > 10 {
		t.Fatalf("period rate %.1f, want ~50", r)
	}
	// Normalized rate divides by the weight.
	if math.Abs(src.NormRate()-r/2) > 1e-9 {
		t.Errorf("norm rate %v, want %v", src.NormRate(), r/2)
	}
	if src.LastPeriodRate() != r {
		t.Error("LastPeriodRate mismatch")
	}
	// Drain everything generated so far, then let one more period of
	// packets accumulate: they must carry the stamp.
	for node.NextOutgoing() != nil {
		// discard pre-period packets
	}
	sched.Run(2 * testPeriod)
	out := node.NextOutgoing()
	if out == nil {
		t.Fatal("no post-period packet generated")
	}
	if !out.Pkt.Stamped {
		t.Fatal("post-period packet not stamped")
	}
	if math.Abs(out.Pkt.NormRate-src.NormRate()) > 1e-9 {
		t.Errorf("stamp %v, want %v", out.Pkt.NormRate, src.NormRate())
	}
}

func TestPacketsBeforeFirstPeriodUnstamped(t *testing.T) {
	node, sched := harness(t, 300)
	src := NewSource(spec(100, 1), sched, node, testPeriod, sim.NewRand(3))
	src.Start()
	sched.Run(100 * time.Millisecond)
	out := node.NextOutgoing()
	if out == nil {
		t.Fatal("no packet generated")
	}
	if out.Pkt.Stamped {
		t.Error("packet stamped before any period completed")
	}
}

func TestRegistryAccounting(t *testing.T) {
	specs := []Spec{
		{ID: 0, Src: 0, Dst: 2, Weight: 1, DesiredRate: 100, SizeBytes: 1024},
		{ID: 1, Src: 1, Dst: 2, Weight: 1, DesiredRate: 100, SizeBytes: 1024},
	}
	reg, err := NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{Flow: 1, Src: 1, Dst: 2}
	reg.OnDeliver(p, 2)
	reg.OnDeliver(p, 2)
	reg.OnDrop(p, forwarding.DropRetry)
	if reg.Delivered(1) != 2 || reg.Delivered(0) != 0 {
		t.Error("delivery counts wrong")
	}
	if reg.Dropped(1) != 1 {
		t.Error("drop count wrong")
	}
}

func TestRegistryRejectsNonDenseIDs(t *testing.T) {
	_, err := NewRegistry([]Spec{{ID: 1, Src: 0, Dst: 2, Weight: 1, DesiredRate: 1, SizeBytes: 1}})
	if err == nil {
		t.Error("non-dense IDs accepted")
	}
}

func TestMarkAndMeasuredRates(t *testing.T) {
	specs := []Spec{{ID: 0, Src: 0, Dst: 2, Weight: 1, DesiredRate: 100, SizeBytes: 1024}}
	reg, err := NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{Flow: 0, Src: 0, Dst: 2}
	for i := 0; i < 100; i++ {
		reg.OnDeliver(p, 2)
	}
	reg.Mark(10 * time.Second)
	for i := 0; i < 50; i++ {
		reg.OnDeliver(p, 2)
	}
	rates := reg.MeasuredRates(20 * time.Second)
	if math.Abs(rates[0]-5) > 1e-9 {
		t.Errorf("windowed rate %v, want 5 (50 pkts / 10 s)", rates[0])
	}
}

func TestSpecActiveAt(t *testing.T) {
	s := spec(100, 1)
	s.Start = 10 * time.Second
	s.Stop = 20 * time.Second
	if s.ActiveAt(5 * time.Second) {
		t.Error("active before start")
	}
	if !s.ActiveAt(15 * time.Second) {
		t.Error("inactive inside window")
	}
	if s.ActiveAt(25 * time.Second) {
		t.Error("active after stop")
	}
	forever := spec(100, 1)
	if !forever.ActiveAt(time.Hour) {
		t.Error("zero stop should mean forever")
	}
}

func TestSpecChurnValidation(t *testing.T) {
	s := spec(100, 1)
	s.Start = 10 * time.Second
	s.Stop = 5 * time.Second
	if err := s.Validate(); err == nil {
		t.Error("stop before start accepted")
	}
	s.Start = -time.Second
	if err := s.Validate(); err == nil {
		t.Error("negative start accepted")
	}
}

func TestSourceChurnWindow(t *testing.T) {
	node, sched := harness(t, 300)
	sp := spec(100, 1)
	sp.Start = 2 * time.Second
	sp.Stop = 6 * time.Second
	src := NewSource(sp, sched, node, testPeriod, sim.NewRand(3))
	drain(node, sched, 10*time.Millisecond)
	src.Start()

	sched.Run(2 * time.Second)
	if src.InjectedTotal() != 0 {
		t.Fatalf("injected %d before start", src.InjectedTotal())
	}
	sched.Run(6 * time.Second)
	active := src.InjectedTotal()
	if active < 300 || active > 500 {
		t.Fatalf("injected %d during 4s active window at 100/s", active)
	}
	sched.Run(20 * time.Second)
	if src.InjectedTotal() != active {
		t.Errorf("injection continued after stop: %d vs %d", src.InjectedTotal(), active)
	}
}

func TestStoppedSourceIgnoresQueueOpen(t *testing.T) {
	// A source blocked on a full queue at its stop time must not resume
	// when the queue later opens.
	node, sched := harness(t, 2)
	sp := spec(800, 1)
	sp.Stop = time.Second
	src := NewSource(sp, sched, node, testPeriod, sim.NewRand(3))
	src.Start()
	sched.Run(time.Second) // fills the 2-slot queue, source waiting
	injected := src.InjectedTotal()
	node.NextOutgoing() // open the queue after the stop time
	sched.Run(2 * time.Second)
	if src.InjectedTotal() != injected {
		t.Error("stopped source resumed on queue open")
	}
}

func TestSetHaltedStopsAndResumesGeneration(t *testing.T) {
	node, sched := harness(t, 300)
	src := NewSource(spec(100, 1), sched, node, testPeriod, sim.NewRand(3))
	src.SetCBR(true)
	drain(node, sched, 10*time.Millisecond)
	src.Start()
	sched.Run(5 * time.Second)

	src.SetHalted(true)
	if !src.Halted() {
		t.Fatal("Halted not reported")
	}
	atHalt := src.InjectedTotal()
	if atHalt == 0 {
		t.Fatal("no injections before halt")
	}
	sched.Run(10 * time.Second)
	if got := src.InjectedTotal(); got != atHalt {
		t.Errorf("halted source injected: %d -> %d", atHalt, got)
	}

	src.SetHalted(false)
	sched.Run(15 * time.Second)
	injected := src.InjectedTotal() - atHalt
	// ~5 s of live generation at 100 pps CBR.
	if injected < 450 || injected > 550 {
		t.Errorf("resumed source injected %d packets in ~5s at 100/s", injected)
	}
}

// TestSetHaltedDefusesQueueOpenWaiter halts a source while it is
// blocked on a full queue, then drains the queue: the pending waiter
// must not re-arm generation on a halted source.
func TestSetHaltedDefusesQueueOpenWaiter(t *testing.T) {
	node, sched := harness(t, 1)
	src := NewSource(spec(100, 1), sched, node, testPeriod, sim.NewRand(3))
	src.SetCBR(true)
	src.Start()
	sched.Run(2 * time.Second) // fills the 1-slot queue, source now waiting

	src.SetHalted(true)
	atHalt := src.InjectedTotal()
	for node.NextOutgoing() != nil {
		// queue-open transition fires here
	}
	sched.Run(5 * time.Second)
	if got := src.InjectedTotal(); got != atHalt {
		t.Errorf("queue-open waiter revived a halted source: %d -> %d", atHalt, got)
	}
}

// TestSetHaltedBeforeStartTime revives a source before its scheduled
// start: generation must still begin at Start, not immediately.
func TestSetHaltedBeforeStartTime(t *testing.T) {
	node, sched := harness(t, 300)
	sp := spec(100, 1)
	sp.Start = 10 * time.Second
	src := NewSource(sp, sched, node, testPeriod, sim.NewRand(3))
	src.SetCBR(true)
	drain(node, sched, 10*time.Millisecond)
	src.Start()
	sched.Run(2 * time.Second)

	src.SetHalted(true)
	src.SetHalted(false)       // revive at t=2s, well before Start
	sched.Run(9 * time.Second) // Run takes an absolute deadline
	if got := src.InjectedTotal(); got != 0 {
		t.Errorf("source injected %d packets before its start time", got)
	}
	sched.Run(15 * time.Second)
	if got := src.InjectedTotal(); got == 0 {
		t.Error("source never started after its start time")
	}
}

func TestRegistryDroppedBy(t *testing.T) {
	reg, err := NewRegistry([]Spec{
		{ID: 0, Src: 0, Dst: 2, Weight: 1, DesiredRate: 10, SizeBytes: 1024},
		{ID: 1, Src: 1, Dst: 2, Weight: 1, DesiredRate: 10, SizeBytes: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	p0 := &packet.Packet{Flow: 0, Src: 0, Dst: 2, SizeBytes: 1024, Weight: 1}
	reg.OnDrop(p0, forwarding.DropNodeDown)
	reg.OnDrop(p0, forwarding.DropNodeDown)
	reg.OnDrop(p0, forwarding.DropNoRoute)

	by := reg.DroppedBy(0)
	if by[forwarding.DropNodeDown] != 2 || by[forwarding.DropNoRoute] != 1 {
		t.Errorf("DroppedBy(0) = %v", by)
	}
	if reg.Dropped(0) != 3 {
		t.Errorf("Dropped(0) = %d, want 3", reg.Dropped(0))
	}
	// A flow with no drops returns an empty, non-nil-safe-to-read map.
	if got := reg.DroppedBy(1); len(got) != 0 {
		t.Errorf("DroppedBy(1) = %v, want empty", got)
	}
	// The returned map is a copy: mutating it must not corrupt accounting.
	by[forwarding.DropNodeDown] = 99
	if reg.DroppedBy(0)[forwarding.DropNodeDown] != 2 {
		t.Error("DroppedBy returned a live reference")
	}
}
