package trace

import (
	"reflect"
	"testing"
	"time"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"", 0},
		{"tx", KindTransmit},
		{"rx", KindDeliver},
		{"col", KindCorrupt},
		{"drop", KindDrop},
	}
	for _, tc := range cases {
		got, err := ParseKind(tc.in)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseKind(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) did not fail")
	}
}

func filterFixture() []Event {
	return []Event{
		{At: 1 * time.Millisecond, Kind: KindTransmit, Node: 1, Peer: 2, Detail: "DATA"},
		{At: 2 * time.Millisecond, Kind: KindDeliver, Node: 2, Peer: 1, Detail: "DATA"},
		{At: 3 * time.Millisecond, Kind: KindCorrupt, Node: 3, Peer: 1, Detail: "DATA"},
		{At: 4 * time.Millisecond, Kind: KindDrop, Node: 2, Peer: -1, Detail: "overflow"},
		{At: 5 * time.Millisecond, Kind: KindTransmit, Node: 3, Peer: 4, Detail: "RTS"},
	}
}

func TestFilterByNode(t *testing.T) {
	events := filterFixture()
	got := Filter(events, 2, 0)
	want := []Event{events[0], events[1], events[3]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filter(node=2) = %v, want %v", got, want)
	}
}

func TestFilterByKind(t *testing.T) {
	events := filterFixture()
	got := Filter(events, -1, KindTransmit)
	want := []Event{events[0], events[4]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filter(kind=tx) = %v, want %v", got, want)
	}
}

func TestFilterByNodeAndKind(t *testing.T) {
	events := filterFixture()
	got := Filter(events, 3, KindTransmit)
	want := []Event{events[4]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filter(node=3, kind=tx) = %v, want %v", got, want)
	}
}

func TestFilterNoRestriction(t *testing.T) {
	events := filterFixture()
	got := Filter(events, -1, 0)
	if !reflect.DeepEqual(got, events) {
		t.Errorf("Filter(any, any) changed the slice: %v", got)
	}
}

func TestFilterNoMatches(t *testing.T) {
	if got := Filter(filterFixture(), 99, 0); len(got) != 0 {
		t.Errorf("Filter(node=99) = %v, want empty", got)
	}
}

func TestRingFiltered(t *testing.T) {
	r := NewRing(4)
	for _, e := range filterFixture() {
		r.Record(e) // capacity 4: evicts the first event
	}
	got := r.Filtered(1, 0)
	events := filterFixture()
	want := []Event{events[1], events[2]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filtered(node=1) = %v, want %v", got, want)
	}
}
