// Package trace provides an optional event recorder for simulations: a
// bounded ring of channel-level events (frame transmissions and their
// outcomes) that tools can dump for debugging protocol behavior, in the
// spirit of ns-2 trace files.
package trace

import (
	"fmt"
	"io"
	"time"

	"gmp/internal/topology"
)

// Kind classifies a recorded event.
type Kind int

// Event kinds.
const (
	KindTransmit Kind = iota + 1 // frame put on the air
	KindDeliver                  // frame decoded at a node
	KindCorrupt                  // frame corrupted at a node
	KindDrop                     // packet dropped by the network layer
)

// String names the kind in the trace output.
func (k Kind) String() string {
	switch k {
	case KindTransmit:
		return "tx"
	case KindDeliver:
		return "rx"
	case KindCorrupt:
		return "col"
	case KindDrop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   time.Duration
	Kind Kind
	// Node is where the event happened (transmitter or receiver).
	Node topology.NodeID
	// Peer is the other end (intended receiver for tx, transmitter for
	// rx/col), or -1.
	Peer topology.NodeID
	// Detail is a short free-form description (frame kind, packet
	// identity, drop reason).
	Detail string
}

// String renders one trace line.
func (e Event) String() string {
	return fmt.Sprintf("%12s %-4s n%-3d peer %-3d %s",
		e.At, e.Kind, e.Node, e.Peer, e.Detail)
}

// ParseKind maps a trace output name back to its Kind. The empty string
// parses to 0, which Filter treats as "any kind".
func ParseKind(s string) (Kind, error) {
	switch s {
	case "":
		return 0, nil
	case "tx":
		return KindTransmit, nil
	case "rx":
		return KindDeliver, nil
	case "col":
		return KindCorrupt, nil
	case "drop":
		return KindDrop, nil
	default:
		return 0, fmt.Errorf("trace: unknown event kind %q (want tx|rx|col|drop)", s)
	}
}

// Filter returns the events involving node with the given kind, oldest
// order preserved. node < 0 matches any node; otherwise an event matches
// when the node is either endpoint (Node or Peer). kind 0 matches any
// kind. The input slice is never modified.
func Filter(events []Event, node topology.NodeID, kind Kind) []Event {
	if node < 0 && kind == 0 {
		return events
	}
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if node >= 0 && e.Node != node && e.Peer != node {
			continue
		}
		if kind != 0 && e.Kind != kind {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Filtered returns the ring's held events restricted by Filter's rules,
// oldest first. It walks the ring in place and allocates only once a
// matching event is found, so a miss costs nothing — callers can probe
// large rings for rare events (a node's drops, say) on a hot path.
func (r *Ring) Filtered(node topology.NodeID, kind Kind) []Event {
	n := r.Len()
	start := 0
	if r.full {
		start = r.next
	}
	var out []Event
	for i := 0; i < n; i++ {
		e := &r.events[(start+i)%len(r.events)]
		if node >= 0 && e.Node != node && e.Peer != node {
			continue
		}
		if kind != 0 && e.Kind != kind {
			continue
		}
		if out == nil {
			out = make([]Event, 0, n-i)
		}
		out = append(out, *e)
	}
	return out
}

// Ring is a bounded in-memory event recorder. The zero value is unusable;
// construct with NewRing. It keeps the most recent Cap events.
type Ring struct {
	events []Event
	next   int
	full   bool
}

// NewRing builds a recorder holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive capacity %d", capacity))
	}
	return &Ring{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many events are held.
func (r *Ring) Len() int {
	if r.full {
		return len(r.events)
	}
	return r.next
}

// Events returns the held events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the held events, one per line, oldest first.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
