package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"gmp/internal/topology"
)

func ev(i int) Event {
	return Event{At: time.Duration(i) * time.Millisecond, Kind: KindTransmit, Node: 1, Peer: 2, Detail: "RTS"}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(10)
	for i := 0; i < 3; i++ {
		r.Record(ev(i))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if e.At != time.Duration(i)*time.Millisecond {
			t.Fatalf("order wrong: %v", events)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(i))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	events := r.Events()
	want := []int{6, 7, 8, 9}
	for i, e := range events {
		if e.At != time.Duration(want[i])*time.Millisecond {
			t.Fatalf("events = %v, want ms offsets %v", events, want)
		}
	}
}

func TestRingExactWrap(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 3; i++ {
		r.Record(ev(i))
	}
	events := r.Events()
	if len(events) != 3 || events[0].At != 0 {
		t.Fatalf("exact-capacity events = %v", events)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRing(2)
	r.Record(Event{At: time.Second, Kind: KindCorrupt, Node: 3, Peer: 0, Detail: "DATA pkt{f0 0->3 #7}"})
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"col", "n3", "DATA", "#7"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump %q missing %q", out, want)
		}
	}
}

// TestDumpWraparoundGolden pins Dump's exact output after the ring has
// wrapped: eviction order, column layout, and padding are all part of
// the contract tools parse.
func TestDumpWraparoundGolden(t *testing.T) {
	r := NewRing(3)
	kinds := []Kind{KindTransmit, KindDeliver, KindCorrupt, KindDrop, KindTransmit}
	for i, k := range kinds {
		peer := topologyPeer(i)
		r.Record(Event{
			At:     time.Duration(i+1) * 250 * time.Microsecond,
			Kind:   k,
			Node:   topology.NodeID(i % 3),
			Peer:   peer,
			Detail: fmt.Sprintf("DATA #%d", i),
		})
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"       750µs col  n2   peer 3   DATA #2\n" +
		"         1ms drop n0   peer -1  DATA #3\n" +
		"      1.25ms tx   n1   peer 5   DATA #4\n"
	if sb.String() != want {
		t.Errorf("wrapped dump:\n got: %q\nwant: %q", sb.String(), want)
	}
}

// topologyPeer gives event i a distinguishable peer; drops have none.
func topologyPeer(i int) topology.NodeID {
	if i == 3 {
		return -1
	}
	return topology.NodeID(i + 1)
}

// TestFilteredNoMatchZeroAllocs pins the hot-path guarantee: probing a
// full, wrapped ring for events that are not there allocates nothing.
func TestFilteredNoMatchZeroAllocs(t *testing.T) {
	r := NewRing(512)
	for i := 0; i < 800; i++ {
		r.Record(ev(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if got := r.Filtered(99, 0); got != nil {
			t.Fatalf("unexpected match: %v", got)
		}
		if got := r.Filtered(1, KindDrop); got != nil {
			t.Fatalf("unexpected match: %v", got)
		}
	})
	if allocs != 0 {
		t.Errorf("Filtered miss allocates %v times per run, want 0", allocs)
	}
}

// TestFilteredSingleAllocOnHit: one output slice, sized to the worst
// case remaining, is the only allocation on a match.
func TestFilteredSingleAllocOnHit(t *testing.T) {
	r := NewRing(256)
	for i := 0; i < 400; i++ {
		r.Record(ev(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if got := r.Filtered(1, KindTransmit); len(got) != 256 {
			t.Fatalf("matches = %d, want 256", len(got))
		}
	})
	if allocs != 1 {
		t.Errorf("Filtered hit allocates %v times per run, want 1", allocs)
	}
}

func TestNewRingValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	NewRing(0)
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindTransmit: "tx", KindDeliver: "rx", KindCorrupt: "col", KindDrop: "drop",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", int(k), k.String())
		}
	}
}
