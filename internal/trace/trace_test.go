package trace

import (
	"strings"
	"testing"
	"time"
)

func ev(i int) Event {
	return Event{At: time.Duration(i) * time.Millisecond, Kind: KindTransmit, Node: 1, Peer: 2, Detail: "RTS"}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(10)
	for i := 0; i < 3; i++ {
		r.Record(ev(i))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if e.At != time.Duration(i)*time.Millisecond {
			t.Fatalf("order wrong: %v", events)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(i))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	events := r.Events()
	want := []int{6, 7, 8, 9}
	for i, e := range events {
		if e.At != time.Duration(want[i])*time.Millisecond {
			t.Fatalf("events = %v, want ms offsets %v", events, want)
		}
	}
}

func TestRingExactWrap(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 3; i++ {
		r.Record(ev(i))
	}
	events := r.Events()
	if len(events) != 3 || events[0].At != 0 {
		t.Fatalf("exact-capacity events = %v", events)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRing(2)
	r.Record(Event{At: time.Second, Kind: KindCorrupt, Node: 3, Peer: 0, Detail: "DATA pkt{f0 0->3 #7}"})
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"col", "n3", "DATA", "#7"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump %q missing %q", out, want)
		}
	}
}

func TestNewRingValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	NewRing(0)
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindTransmit: "tx", KindDeliver: "rx", KindCorrupt: "col", KindDrop: "drop",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", int(k), k.String())
		}
	}
}
