// Package routing builds static shortest-path routing tables for the
// simulated network. The paper assumes a routing protocol has already
// established a table at each node (§2.1); any loop-free table works, and
// minimum-hop routing with deterministic tie-breaking is used here.
package routing

import (
	"fmt"

	"gmp/internal/topology"
)

// NoRoute marks an unreachable (node, destination) pair.
const NoRoute topology.NodeID = -1

// Table holds, for every destination, each node's next hop and distance.
//
// Eager tables (Build, BuildExcluding, BuildGeographic*) carry every row
// up front. Lazy tables (BuildLazy, BuildLazyExcluding) materialize a
// destination's row on first access, so a simulation that routes to a
// handful of flow destinations pays one BFS per destination actually
// used instead of one per node — the difference between O(N·(N+E)) and
// O(F·(N+E)) at city scale.
type Table struct {
	next [][]topology.NodeID // [dest][node] -> next hop (NoRoute if none)
	dist [][]int             // [dest][node] -> hop count (-1 if unreachable)

	// Lazy mode only: the topology rows are computed from, and the
	// excluded-node set frozen at build time. nil for eager tables.
	// A lazy Table is not safe for concurrent use, and the topology
	// must not be mutated while the table is alive — callers with
	// mobility build eagerly.
	topo *topology.Topology
	down []bool
}

// Build computes minimum-hop routes between all node pairs via one BFS per
// destination. Ties break toward the lowest-numbered neighbor, which keeps
// tables deterministic and, being destination-rooted shortest paths,
// loop-free (a requirement for the congestion-avoidance scheme, §2.2).
func Build(topo *topology.Topology) *Table {
	return BuildExcluding(topo, nil)
}

// BuildExcluding computes the same minimum-hop tables as Build but
// treats every node n with down[n] true as absent from the network: it
// relays nothing, and no routes lead to or through it (all entries for
// a down node or destination stay NoRoute). A nil down slice excludes
// nothing. This is the route-repair primitive of the fault subsystem:
// on a topology-change epoch the current down set is excluded and the
// new table installed on every live node.
func BuildExcluding(topo *topology.Topology, down []bool) *Table {
	t := newTable(topo.NumNodes())
	for dest := 0; dest < topo.NumNodes(); dest++ {
		buildRow(topo, down, dest, t)
	}
	return t
}

// BuildLazy returns a table whose per-destination rows are computed on
// first access. It is interchangeable with Build for read access — every
// materialized row is byte-identical to the eager one — under two
// restrictions documented on Table: no concurrent use, and no topology
// mutation while the table is alive.
func BuildLazy(topo *topology.Topology) *Table {
	return BuildLazyExcluding(topo, nil)
}

// BuildLazyExcluding is BuildExcluding with lazy row materialization.
// The down set is copied, so later changes by the caller do not leak
// into rows built afterward.
func BuildLazyExcluding(topo *topology.Topology, down []bool) *Table {
	t := newTable(topo.NumNodes())
	t.topo = topo
	if down != nil {
		t.down = append([]bool(nil), down...)
	}
	return t
}

// newTable allocates the row tables with every row unmaterialized.
func newTable(n int) *Table {
	return &Table{
		next: make([][]topology.NodeID, n),
		dist: make([][]int, n),
	}
}

// buildRow runs the destination-rooted BFS for dest and installs the
// resulting next-hop and distance rows into t.
func buildRow(topo *topology.Topology, down []bool, dest int, t *Table) {
	isDown := func(id topology.NodeID) bool { return down != nil && down[id] }
	n := topo.NumNodes()
	next := make([]topology.NodeID, n)
	dist := make([]int, n)
	for i := range next {
		next[i] = NoRoute
		dist[i] = -1
	}
	t.next[dest], t.dist[dest] = next, dist
	if isDown(topology.NodeID(dest)) {
		return // a crashed destination is unreachable from everywhere
	}
	// BFS outward from the destination.
	dist[dest] = 0
	queue := []topology.NodeID{topology.NodeID(dest)}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range topo.Neighbors(cur) {
			if dist[nb] == -1 && !isDown(nb) {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	// Next hop: the lowest-ID neighbor one step closer to dest.
	for i := 0; i < n; i++ {
		if i == dest || dist[i] <= 0 {
			continue
		}
		for _, nb := range topo.Neighbors(topology.NodeID(i)) {
			if !isDown(nb) && dist[nb] == dist[i]-1 {
				next[i] = nb
				break // neighbors are sorted ascending
			}
		}
	}
}

// ensure materializes dest's row if the table is lazy and the row has
// not been built yet. Eager rows are always present, so this is a
// nil-check on the hot path.
func (t *Table) ensure(dest topology.NodeID) {
	if t.next[dest] == nil {
		buildRow(t.topo, t.down, int(dest), t)
	}
}

// NextHop returns the next hop from node `from` toward dest. ok is false
// when dest is unreachable or from == dest.
func (t *Table) NextHop(from, dest topology.NodeID) (topology.NodeID, bool) {
	t.ensure(dest)
	nh := t.next[dest][from]
	return nh, nh != NoRoute
}

// HopCount returns the number of hops from node to dest, or -1 if
// unreachable.
func (t *Table) HopCount(from, dest topology.NodeID) int {
	t.ensure(dest)
	return t.dist[dest][from]
}

// Path returns the full node sequence from src to dest, inclusive.
func (t *Table) Path(src, dest topology.NodeID) ([]topology.NodeID, error) {
	if src == dest {
		return []topology.NodeID{src}, nil
	}
	path := []topology.NodeID{src}
	cur := src
	for cur != dest {
		nh, ok := t.NextHop(cur, dest)
		if !ok {
			return nil, fmt.Errorf("routing: no route from %d to %d (stuck at %d)", src, dest, cur)
		}
		path = append(path, nh)
		cur = nh
		if len(path) > len(t.next)+1 {
			return nil, fmt.Errorf("routing: loop detected from %d to %d", src, dest)
		}
	}
	return path, nil
}

// Links returns the directed links of the path from src to dest.
func (t *Table) Links(src, dest topology.NodeID) ([]topology.Link, error) {
	path, err := t.Path(src, dest)
	if err != nil {
		return nil, err
	}
	links := make([]topology.Link, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		links = append(links, topology.Link{From: path[i], To: path[i+1]})
	}
	return links, nil
}
