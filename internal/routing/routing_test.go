package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmp/internal/geom"
	"gmp/internal/topology"
)

func chainTopo(t *testing.T, n int, spacing float64) *topology.Topology {
	t.Helper()
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * spacing}
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestChainRouting(t *testing.T) {
	topo := chainTopo(t, 5, 200)
	tbl := Build(topo)
	nh, ok := tbl.NextHop(0, 4)
	if !ok || nh != 1 {
		t.Fatalf("NextHop(0,4) = %d,%v; want 1,true", nh, ok)
	}
	if got := tbl.HopCount(0, 4); got != 4 {
		t.Errorf("HopCount(0,4) = %d, want 4", got)
	}
	path, err := tbl.Path(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.NodeID{0, 1, 2, 3, 4}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Path = %v, want %v", path, want)
		}
	}
}

func TestSelfRoute(t *testing.T) {
	tbl := Build(chainTopo(t, 3, 200))
	if _, ok := tbl.NextHop(1, 1); ok {
		t.Error("NextHop to self should not exist")
	}
	if got := tbl.HopCount(1, 1); got != 0 {
		t.Errorf("HopCount(1,1) = %d, want 0", got)
	}
	path, err := tbl.Path(1, 1)
	if err != nil || len(path) != 1 {
		t.Errorf("Path(1,1) = %v, %v", path, err)
	}
}

func TestUnreachable(t *testing.T) {
	topo, err := topology.New([]geom.Point{{X: 0}, {X: 1000}}, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Build(topo)
	if _, ok := tbl.NextHop(0, 1); ok {
		t.Error("route across partition")
	}
	if got := tbl.HopCount(0, 1); got != -1 {
		t.Errorf("HopCount = %d, want -1", got)
	}
	if _, err := tbl.Path(0, 1); err == nil {
		t.Error("Path across partition did not error")
	}
}

func TestShortcutPreferred(t *testing.T) {
	// Triangle: 0-1, 1-2, 0-2 all in range; direct hop wins.
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 100, Y: 150}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Build(topo)
	if got := tbl.HopCount(0, 2); got != 1 {
		t.Errorf("HopCount(0,2) = %d, want 1", got)
	}
	nh, _ := tbl.NextHop(0, 2)
	if nh != 2 {
		t.Errorf("NextHop(0,2) = %d, want 2", nh)
	}
}

func TestLinksHelper(t *testing.T) {
	tbl := Build(chainTopo(t, 4, 200))
	links, err := tbl.Links(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.Link{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}
	if len(links) != len(want) {
		t.Fatalf("Links = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("Links = %v, want %v", links, want)
		}
	}
}

// Property: routes are loop-free, hop counts consistent, and next hops
// strictly decrease distance — on random connected topologies.
func TestRoutingInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 700, Y: rng.Float64() * 700}
		}
		topo, err := topology.New(pos, topology.DefaultConfig())
		if err != nil {
			return false
		}
		tbl := Build(topo)
		for _, src := range topo.Nodes() {
			for _, dst := range topo.Nodes() {
				if src == dst {
					continue
				}
				d := tbl.HopCount(src, dst)
				nh, ok := tbl.NextHop(src, dst)
				if d == -1 {
					if ok {
						return false
					}
					continue
				}
				if !ok {
					return false
				}
				if !topo.InTxRange(src, nh) {
					return false // next hop must be a neighbor
				}
				if tbl.HopCount(nh, dst) != d-1 {
					return false // distance must strictly decrease
				}
				path, err := tbl.Path(src, dst)
				if err != nil || len(path) != d+1 {
					return false
				}
				seen := make(map[topology.NodeID]bool)
				for _, p := range path {
					if seen[p] {
						return false // loop
					}
					seen[p] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Node 0 can reach 3 via 1 or 2 (both 2-hop); the lower ID wins.
	pos := []geom.Point{
		{X: 0, Y: 0},
		{X: 200, Y: 100},
		{X: 200, Y: -100},
		{X: 400, Y: 0},
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Build(topo)
	nh, ok := tbl.NextHop(0, 3)
	if !ok || nh != 1 {
		t.Errorf("NextHop(0,3) = %d, want 1 (lowest-ID tie-break)", nh)
	}
}

func TestGeographicOnChain(t *testing.T) {
	topo := chainTopo(t, 5, 200)
	tbl, err := BuildGeographic(topo)
	if err != nil {
		t.Fatal(err)
	}
	// On a chain greedy and shortest-path agree exactly.
	bfs := Build(topo)
	for _, src := range topo.Nodes() {
		for _, dst := range topo.Nodes() {
			if src == dst {
				continue
			}
			g, _ := tbl.NextHop(src, dst)
			b, _ := bfs.NextHop(src, dst)
			if g != b {
				t.Fatalf("greedy next hop %d->%d = %d, bfs = %d", src, dst, g, b)
			}
			if tbl.HopCount(src, dst) != bfs.HopCount(src, dst) {
				t.Fatalf("hop counts differ for %d->%d", src, dst)
			}
		}
	}
}

func TestGeographicOnGrid(t *testing.T) {
	var pos []geom.Point
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pos = append(pos, geom.Point{X: float64(c) * 200, Y: float64(r) * 200})
		}
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := BuildGeographic(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Every pair must be routable and loop-free (verified by Path).
	for _, src := range topo.Nodes() {
		for _, dst := range topo.Nodes() {
			if src == dst {
				continue
			}
			if _, err := tbl.Path(src, dst); err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
		}
	}
}

func TestGeographicDeadEndDetected(t *testing.T) {
	// A concave "C" shape: greedy from the lower arm toward the upper
	// arm dead-ends at the tip (the closest neighbor to the target is
	// farther than the current node).
	pos := []geom.Point{
		{X: 0, Y: 0},     // 0 lower-left
		{X: 200, Y: 0},   // 1 lower arm tip
		{X: 0, Y: 200},   // 2 middle of the C
		{X: 0, Y: 400},   // 3 upper-left
		{X: 200, Y: 400}, // 4 upper arm tip (target)
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGeographic(topo); err == nil {
		t.Error("void topology accepted by greedy routing")
	}
}

// ringTopo builds a 4-node square ring (200 m sides, 283 m diagonals
// out of the 250 m default range), so 0-1-2-3-0 are the only links.
func ringTopo(t *testing.T) *topology.Topology {
	t.Helper()
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 200, Y: 200}, {X: 0, Y: 200}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuildExcludingNilMatchesBuild(t *testing.T) {
	topo := chainTopo(t, 5, 200)
	a, b := Build(topo), BuildExcluding(topo, nil)
	for _, s := range topo.Nodes() {
		for _, d := range topo.Nodes() {
			nhA, okA := a.NextHop(s, d)
			nhB, okB := b.NextHop(s, d)
			if nhA != nhB || okA != okB {
				t.Fatalf("NextHop(%d,%d): %d,%v vs %d,%v", s, d, nhA, okA, nhB, okB)
			}
		}
	}
}

func TestBuildExcludingReroutesAroundDownRelay(t *testing.T) {
	topo := ringTopo(t)
	down := make([]bool, 4)
	down[1] = true
	tbl := BuildExcluding(topo, down)
	path, err := tbl.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.NodeID{0, 3, 2}
	if len(path) != 3 || path[1] != 3 {
		t.Errorf("Path(0,2) = %v, want %v", path, want)
	}
	// No route may traverse the down node in either direction.
	if nh, ok := tbl.NextHop(2, 0); !ok || nh != 3 {
		t.Errorf("NextHop(2,0) = %d,%v, want 3,true", nh, ok)
	}
}

func TestBuildExcludingDownDestinationUnreachable(t *testing.T) {
	topo := chainTopo(t, 3, 200)
	down := make([]bool, 3)
	down[2] = true
	tbl := BuildExcluding(topo, down)
	if _, ok := tbl.NextHop(0, 2); ok {
		t.Error("route exists to a down destination")
	}
	if _, ok := tbl.NextHop(1, 2); ok {
		t.Error("neighbor routes to a down destination")
	}
	// Routes among live nodes are unaffected.
	if nh, ok := tbl.NextHop(0, 1); !ok || nh != 1 {
		t.Errorf("NextHop(0,1) = %d,%v", nh, ok)
	}
}

func TestBuildExcludingPartition(t *testing.T) {
	// Killing the middle of a chain partitions it.
	topo := chainTopo(t, 5, 200)
	down := make([]bool, 5)
	down[2] = true
	tbl := BuildExcluding(topo, down)
	if _, ok := tbl.NextHop(0, 4); ok {
		t.Error("route crosses a partition")
	}
	if nh, ok := tbl.NextHop(0, 1); !ok || nh != 1 {
		t.Errorf("intra-partition route broken: %d,%v", nh, ok)
	}
	if nh, ok := tbl.NextHop(3, 4); !ok || nh != 4 {
		t.Errorf("far-side route broken: %d,%v", nh, ok)
	}
}

func TestBuildGeographicExcludingReroutes(t *testing.T) {
	topo := ringTopo(t)
	down := make([]bool, 4)
	down[1] = true
	tbl, err := BuildGeographicExcluding(topo, down)
	if err != nil {
		t.Fatal(err)
	}
	path, err := tbl.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 3 {
		t.Errorf("geographic Path(0,2) = %v, want [0 3 2]", path)
	}
	if _, ok := tbl.NextHop(0, 1); ok {
		t.Error("geographic route exists to the down node")
	}
}

func TestBuildGeographicExcludingDeadEnd(t *testing.T) {
	// T-shape: 0-1-2 chain with 3 hanging off 1. Greedy from 0 toward 3
	// works via 1; with 1 down, node 3 is unreachable and greedy must
	// report the void rather than emit a looping table.
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 200, Y: 200}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	down := make([]bool, 4)
	down[1] = true
	if _, err := BuildGeographicExcluding(topo, down); err == nil {
		t.Error("expected a greedy dead-end error on a partitioned topology")
	}
}
