package routing

import (
	"math/rand"
	"testing"

	"gmp/internal/geom"
	"gmp/internal/topology"
)

// TestLazyMatchesEager materializes every row of a lazy table through
// the public accessors and checks each entry against the eager build,
// with and without an excluded-node set.
func TestLazyMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 80
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1500, Y: rng.Float64() * 1500}
	}
	topo, err := topology.New(pts, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	down := make([]bool, n)
	down[7], down[20], down[41] = true, true, true
	for _, tc := range []struct {
		name  string
		eager *Table
		lazy  *Table
	}{
		{"all-up", Build(topo), BuildLazy(topo)},
		{"excluding", BuildExcluding(topo, down), BuildLazyExcluding(topo, down)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for dest := 0; dest < n; dest++ {
				for i := 0; i < n; i++ {
					from, to := topology.NodeID(i), topology.NodeID(dest)
					gotN, gotOK := tc.lazy.NextHop(from, to)
					wantN, wantOK := tc.eager.NextHop(from, to)
					if gotN != wantN || gotOK != wantOK {
						t.Fatalf("NextHop(%d,%d): lazy (%d,%v) eager (%d,%v)", i, dest, gotN, gotOK, wantN, wantOK)
					}
					if g, w := tc.lazy.HopCount(from, to), tc.eager.HopCount(from, to); g != w {
						t.Fatalf("HopCount(%d,%d): lazy %d eager %d", i, dest, g, w)
					}
				}
			}
		})
	}
}

// TestLazyCopiesDownSet verifies the frozen-exclusion contract: rows
// materialized after the caller flips a down bit must still reflect the
// set as it was at build time.
func TestLazyCopiesDownSet(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 200}, {X: 400}} // chain 0-1-2
	topo, err := topology.New(pts, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	down := make([]bool, 3)
	lazy := BuildLazyExcluding(topo, down)
	down[1] = true // must not leak into the table
	if nh, ok := lazy.NextHop(0, 2); !ok || nh != 1 {
		t.Fatalf("NextHop(0,2) = (%d,%v), want relay via 1", nh, ok)
	}
}
