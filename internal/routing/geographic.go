package routing

import (
	"fmt"

	"gmp/internal/geom"
	"gmp/internal/topology"
)

// BuildGeographic computes greedy geographic routing tables (the
// position-based forwarding of GPSR's greedy mode, ref [9] of the
// paper): each node forwards toward the neighbor geographically closest
// to the destination, provided it is strictly closer than the node
// itself. The paper's network model explicitly allows an implicit
// routing table under geographic routing (§2.1).
//
// Greedy forwarding dead-ends at local minima (voids). Because GMP
// requires loop-free established routes, BuildGeographic returns an
// error naming the first (source, destination) pair that dead-ends;
// callers fall back to shortest-path routing in that case.
func BuildGeographic(topo *topology.Topology) (*Table, error) {
	return BuildGeographicExcluding(topo, nil)
}

// BuildGeographicExcluding is BuildGeographic with every node n where
// down[n] is true treated as absent: crashed nodes are never chosen as
// next hops, originate no routes, and are unreachable destinations. A
// nil down slice excludes nothing. Removing nodes can open greedy voids
// that did not exist in the full topology, so callers (the fault
// subsystem's route repair) fall back to BuildExcluding on error — the
// GPSR-style greedy-failure fallback.
func BuildGeographicExcluding(topo *topology.Topology, down []bool) (*Table, error) {
	isDown := func(id topology.NodeID) bool { return down != nil && down[id] }
	n := topo.NumNodes()
	t := &Table{
		next: make([][]topology.NodeID, n),
		dist: make([][]int, n),
	}
	for dest := 0; dest < n; dest++ {
		t.next[dest] = make([]topology.NodeID, n)
		t.dist[dest] = make([]int, n)
		for i := range t.next[dest] {
			t.next[dest][i] = NoRoute
			t.dist[dest][i] = -1
		}
		if !isDown(topology.NodeID(dest)) {
			t.dist[dest][dest] = 0
		}
	}

	// Per-destination distance memo: each node's distance to dest is
	// needed once as "self" and once per incident link as a neighbor, so
	// computing it a single time here drops the geometry work from
	// O(N·E) to O(N²) calls of geom.Dist. The memo stores geom.Dist
	// itself, not a squared variant — the strict < comparison below must
	// break ties exactly as the unmemoized code did.
	dd := make([]float64, n)
	for dest := 0; dest < n; dest++ {
		if isDown(topology.NodeID(dest)) {
			continue // a crashed destination is unreachable from everywhere
		}
		dpos := topo.Position(topology.NodeID(dest))
		for i := 0; i < n; i++ {
			dd[i] = geom.Dist(topo.Position(topology.NodeID(i)), dpos)
		}
		for i := 0; i < n; i++ {
			if i == dest || isDown(topology.NodeID(i)) {
				continue
			}
			best := NoRoute
			bestDist := dd[i]
			for _, nb := range topo.Neighbors(topology.NodeID(i)) {
				if isDown(nb) {
					continue
				}
				if d := dd[nb]; d < bestDist {
					bestDist = d
					best = nb
				}
			}
			t.next[dest][i] = best
		}
		// Derive hop counts by walking; a dead end or loop fails the
		// whole table (greedy distances strictly decrease, so loops
		// cannot actually form, but the walk guards regardless).
		for i := 0; i < n; i++ {
			if i == dest || isDown(topology.NodeID(i)) {
				continue
			}
			hops := 0
			cur := topology.NodeID(i)
			for cur != topology.NodeID(dest) {
				nh := t.next[dest][cur]
				if nh == NoRoute {
					return nil, fmt.Errorf("routing: greedy geographic forwarding dead-ends from %d toward %d at %d", i, dest, cur)
				}
				cur = nh
				hops++
				if hops > n {
					return nil, fmt.Errorf("routing: greedy geographic loop from %d toward %d", i, dest)
				}
			}
			t.dist[dest][i] = hops
		}
	}
	return t, nil
}
