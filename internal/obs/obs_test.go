package obs

import (
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/topology"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Microsecond) // bucket 0 (<= 1ms)
	h.Observe(1 * time.Millisecond)   // bucket 0 (bounds are inclusive)
	h.Observe(3 * time.Millisecond)   // bucket 2 (<= 5ms)
	h.Observe(2 * time.Minute)        // overflow bucket

	if h.Count != 4 {
		t.Fatalf("Count = %d, want 4", h.Count)
	}
	if got := h.Counts[0]; got != 2 {
		t.Errorf("Counts[0] = %d, want 2", got)
	}
	if got := h.Counts[2]; got != 1 {
		t.Errorf("Counts[2] = %d, want 1", got)
	}
	if got := h.Counts[len(h.Counts)-1]; got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	if h.Min != 500*time.Microsecond || h.Max != 2*time.Minute {
		t.Errorf("Min/Max = %v/%v", h.Min, h.Max)
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 3*time.Millisecond + 2*time.Minute
	if h.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum, wantSum)
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	var empty Histogram
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zero mean/quantile")
	}

	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Millisecond) // bucket 2: bound 5ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Millisecond) // bucket 8: bound 500ms
	}
	if got := h.Quantile(0.5); got != 5*time.Millisecond {
		t.Errorf("p50 = %v, want 5ms (bucket upper bound)", got)
	}
	if got := h.Quantile(0.99); got != 500*time.Millisecond {
		t.Errorf("p99 = %v, want 500ms", got)
	}
	wantMean := (90*3*time.Millisecond + 10*300*time.Millisecond) / 100
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}

	// Observations beyond the last bound: quantile falls back to Max.
	o := NewHistogram()
	o.Observe(2 * time.Minute)
	if got := o.Quantile(0.99); got != 2*time.Minute {
		t.Errorf("overflow quantile = %v, want Max", got)
	}
}

// TestNilRecorderSafe pins the disabled-state contract: every method of
// a nil *Recorder is a no-op, so producers may call hooks without their
// own nil gate (they add one anyway, to skip argument evaluation).
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.HopForwarded(0, 0, time.Millisecond)
	r.MACService(0, 0, time.Millisecond)
	r.MACRetry(0, 0)
	r.Delivered(0, time.Millisecond)
	r.PacketDropped(0, 0)
	r.LinkAirtime(0, time.Millisecond)
	r.AddSample(Sample{})
	r.Condition(0, 0, CondBandwidth, true, 0.9)
	r.LimitChange(0, ActionReduce, 10, 9)
	if got := r.SampleLinkUtil(time.Second); got != nil {
		t.Errorf("nil SampleLinkUtil = %v, want nil", got)
	}
	if got := r.SampleInterval(); got != 0 {
		t.Errorf("nil SampleInterval = %v, want 0", got)
	}
	if got := r.Finalize("x", "y"); got != nil {
		t.Errorf("nil Finalize = %v, want nil", got)
	}
}

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(
		[]geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}},
		topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestFinalizeCanonicalOrder checks that condition events recorded in a
// map-iteration-dependent order come out of Finalize in the canonical
// (At, Flow, Node, Cond, Reduce, Factor) order.
func TestFinalizeCanonicalOrder(t *testing.T) {
	now := time.Duration(0)
	r := NewRecorder(testTopo(t), 3, time.Second, func() time.Duration { return now })

	now = 2 * time.Second
	r.Condition(2, 1, CondBandwidth, true, 0.9)
	r.Condition(0, 1, CondBandwidth, true, 0.9)
	r.Condition(1, 0, CondSource, true, 0.8)
	now = time.Second
	// Recorded later but timestamped... no: the recorder stamps its own
	// clock, so this event is at t=1s and must sort first.
	r.Condition(2, 2, CondBuffer, false, 1.1)

	tel := r.Finalize("s", "p")
	want := []ConditionEvent{
		{At: time.Second, Flow: 2, Node: 2, Cond: CondBuffer, Reduce: false, Factor: 1.1},
		{At: 2 * time.Second, Flow: 0, Node: 1, Cond: CondBandwidth, Reduce: true, Factor: 0.9},
		{At: 2 * time.Second, Flow: 1, Node: 0, Cond: CondSource, Reduce: true, Factor: 0.8},
		{At: 2 * time.Second, Flow: 2, Node: 1, Cond: CondBandwidth, Reduce: true, Factor: 0.9},
	}
	if len(tel.Conditions) != len(want) {
		t.Fatalf("got %d events, want %d", len(tel.Conditions), len(want))
	}
	for i, ev := range tel.Conditions {
		if ev != want[i] {
			t.Errorf("Conditions[%d] = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestFlowConditionCountsAndBottleneck(t *testing.T) {
	now := time.Duration(0)
	r := NewRecorder(testTopo(t), 2, time.Second, func() time.Duration { return now })
	now = time.Second
	r.Condition(0, 1, CondBandwidth, true, 0.9)
	now = 2 * time.Second
	r.Condition(0, 0, CondSource, true, 0.8)
	r.Condition(0, 0, CondRateLimit, false, 1.1)
	tel := r.Finalize("s", "p")

	counts := tel.FlowConditionCounts(0)
	if counts != [4]int64{1, 0, 1, 1} {
		t.Errorf("counts = %v, want [1 0 1 1]", counts)
	}
	if got := tel.FinalBottleneck(0); got != CondSource {
		t.Errorf("FinalBottleneck(0) = %v, want source (last reducing event)", got)
	}
	if got := tel.FinalBottleneck(1); got != 0 {
		t.Errorf("FinalBottleneck(1) = %v, want 0 (never reduced)", got)
	}
}

func TestSampleLinkUtil(t *testing.T) {
	r := NewRecorder(testTopo(t), 1, time.Second, func() time.Duration { return 0 })
	idx := r.topo.LinkIndex(0, 1)
	if idx < 0 {
		t.Fatal("no link 0-1 in test topology")
	}
	r.LinkAirtime(idx, 250*time.Millisecond)
	r.LinkAirtime(-1, time.Hour) // unknown link: ignored

	links := r.SampleLinkUtil(time.Second)
	if len(links) != 1 {
		t.Fatalf("links = %v, want one entry", links)
	}
	if links[0].From != 0 || links[0].To != 1 || links[0].Util != 0.25 {
		t.Errorf("links[0] = %+v, want {0 1 0.25}", links[0])
	}
	// The accumulator resets on sampling.
	if links = r.SampleLinkUtil(time.Second); len(links) != 0 {
		t.Errorf("second sample = %v, want empty", links)
	}
}
