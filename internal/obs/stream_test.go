package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sweepMeta() Meta {
	return Meta{
		Scenario:       "fig3",
		Protocol:       "gmp",
		Flows:          3,
		Nodes:          4,
		SampleInterval: time.Second,
		BucketBounds:   DefaultLatencyBounds,
	}
}

func TestStreamWriterValidates(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.WriteMeta(sweepMeta()); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		s := RunSummary{
			Scenario: "fig3", Protocol: "gmp", Samples: 10, Conditions: 2,
			Flows: []FlowSummary{{Flow: 0, Delivered: 100, Bottleneck: "bandwidth"}},
		}
		if err := sw.WriteRun(seed, s); err != nil {
			t.Fatal(err)
		}
		// The stream is incrementally valid: every prefix ending on a
		// record boundary passes the schema.
		counts, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("after %d runs: %v", seed, err)
		}
		if counts["run"] != int(seed) || counts["meta"] != 1 {
			t.Fatalf("after %d runs: counts = %v", seed, counts)
		}
	}
}

func TestStreamWriterOrdering(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.WriteRun(1, RunSummary{}); err == nil {
		t.Fatal("run record accepted before meta")
	}
	if err := sw.WriteMeta(sweepMeta()); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteMeta(sweepMeta()); err == nil {
		t.Fatal("duplicate meta accepted")
	}
}

func TestValidateJSONLRejectsBadRun(t *testing.T) {
	meta := `{"type":"meta","scenario":"s","protocol":"gmp","flows":1,"nodes":2,"sample_interval_ns":0,"bucket_bounds_ns":[1000]}`
	for name, lines := range map[string]string{
		"run before meta": `{"type":"run","seed":1,"scenario":"s","protocol":"gmp","samples":0,"conditions":0,"flows":null}`,
		"unknown field":   meta + "\n" + `{"type":"run","seed":1,"scenario":"s","protocol":"gmp","samples":0,"conditions":0,"flows":null,"bogus":1}`,
		"bad bottleneck": meta + "\n" + `{"type":"run","seed":1,"scenario":"s","protocol":"gmp","samples":0,"conditions":0,` +
			`"flows":[{"flow":0,"delivered":1,"retries":0,"mean_latency_ns":0,"p50_latency_ns":0,"p99_latency_ns":0,"conditions":[0,0,0,0],"bottleneck":"gremlins","limit_changes":0}]}`,
	} {
		if _, err := ValidateJSONL(strings.NewReader(lines)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
