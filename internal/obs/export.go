package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"gmp/internal/packet"
	"gmp/internal/topology"
)

// JSONL schema. Every line is one JSON object with a "type" field
// naming its record kind; the remaining fields are fixed per kind. The
// encoder emits struct fields in declaration order, so output is
// deterministic for a given Telemetry. ValidateJSONL is the schema's
// executable definition.

type metaLine struct {
	Type string `json:"type"`
	Meta
}

type flowLine struct {
	Type string `json:"type"`
	FlowStats
}

type nodeLine struct {
	Type string `json:"type"`
	NodeStats
}

type sampleLine struct {
	Type string `json:"type"`
	Sample
}

type conditionLine struct {
	Type   string          `json:"type"`
	At     time.Duration   `json:"at_ns"`
	Flow   packet.FlowID   `json:"flow"`
	Node   topology.NodeID `json:"node"`
	Cond   string          `json:"cond"`
	Reduce bool            `json:"reduce"`
	Factor float64         `json:"factor"`
}

type limitLine struct {
	Type string `json:"type"`
	LimitEvent
}

type admissionLine struct {
	Type string `json:"type"`
	AdmissionEvent
}

// WriteJSONL exports the telemetry as JSON Lines: one meta line, then
// one line per flow, node, sample, condition event, and limit event, in
// that order. Output is deterministic: identical telemetry produces
// identical bytes.
func (t *Telemetry) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(metaLine{Type: "meta", Meta: t.Meta}); err != nil {
		return err
	}
	for _, f := range t.Flows {
		if err := enc.Encode(flowLine{Type: "flow", FlowStats: f}); err != nil {
			return err
		}
	}
	for _, n := range t.Nodes {
		if err := enc.Encode(nodeLine{Type: "node", NodeStats: n}); err != nil {
			return err
		}
	}
	for _, s := range t.Samples {
		if err := enc.Encode(sampleLine{Type: "sample", Sample: s}); err != nil {
			return err
		}
	}
	for _, c := range t.Conditions {
		if err := enc.Encode(conditionLine{
			Type: "condition", At: c.At, Flow: c.Flow, Node: c.Node,
			Cond: c.Cond.String(), Reduce: c.Reduce, Factor: c.Factor,
		}); err != nil {
			return err
		}
	}
	for _, l := range t.Limits {
		if err := enc.Encode(limitLine{Type: "limit", LimitEvent: l}); err != nil {
			return err
		}
	}
	for _, a := range t.Admissions {
		if err := enc.Encode(admissionLine{Type: "admission", AdmissionEvent: a}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSamplesCSV exports the periodic samples as CSV: one row per
// sample with the time in seconds, every node's queue depth, and every
// flow's rate limit (-1 when unlimited). Link utilizations stay in the
// JSONL (their set varies per sample).
func (t *Telemetry) WriteSamplesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := []string{"at_s"}
	for n := 0; n < t.Meta.Nodes; n++ {
		cols = append(cols, fmt.Sprintf("queue_n%d", n))
	}
	for f := 0; f < t.Meta.Flows; f++ {
		cols = append(cols, fmt.Sprintf("limit_f%d", f))
	}
	if _, err := fmt.Fprintln(bw, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, s := range t.Samples {
		row := make([]string, 0, len(cols))
		row = append(row, fmt.Sprintf("%.3f", s.At.Seconds()))
		for _, q := range s.Queues {
			row = append(row, fmt.Sprintf("%d", q))
		}
		for _, l := range s.Limits {
			row = append(row, fmt.Sprintf("%.3f", l))
		}
		if _, err := fmt.Fprintln(bw, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ValidateJSONL strictly decodes a telemetry JSONL stream, rejecting
// unknown record types, unknown fields, and structural violations
// (missing meta line, histogram bucket-count mismatches, sample vectors
// of the wrong length). It returns the record count per type. This is
// the executable schema definition used by the schema test and CI.
func ValidateJSONL(r io.Reader) (map[string]int, error) {
	counts := make(map[string]int)
	var meta *Meta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return counts, fmt.Errorf("line %d: %w", line, err)
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		switch head.Type {
		case "meta":
			if meta != nil {
				return counts, fmt.Errorf("line %d: duplicate meta record", line)
			}
			var m metaLine
			if err := dec.Decode(&m); err != nil {
				return counts, fmt.Errorf("line %d (meta): %w", line, err)
			}
			if m.Flows < 0 || m.Nodes <= 0 || len(m.BucketBounds) == 0 {
				return counts, fmt.Errorf("line %d: malformed meta record", line)
			}
			meta = &m.Meta
		case "flow":
			var f flowLine
			if err := dec.Decode(&f); err != nil {
				return counts, fmt.Errorf("line %d (flow): %w", line, err)
			}
			if meta == nil {
				return counts, fmt.Errorf("line %d: flow record before meta", line)
			}
			if len(f.Latency.Counts) != len(meta.BucketBounds)+1 {
				return counts, fmt.Errorf("line %d: flow %d latency histogram has %d buckets, want %d",
					line, f.Flow, len(f.Latency.Counts), len(meta.BucketBounds)+1)
			}
		case "node":
			var n nodeLine
			if err := dec.Decode(&n); err != nil {
				return counts, fmt.Errorf("line %d (node): %w", line, err)
			}
			if meta == nil {
				return counts, fmt.Errorf("line %d: node record before meta", line)
			}
			if len(n.Sojourn.Counts) != len(meta.BucketBounds)+1 ||
				len(n.MACService.Counts) != len(meta.BucketBounds)+1 {
				return counts, fmt.Errorf("line %d: node %d histogram bucket count mismatch", line, n.Node)
			}
		case "sample":
			var s sampleLine
			if err := dec.Decode(&s); err != nil {
				return counts, fmt.Errorf("line %d (sample): %w", line, err)
			}
			if meta == nil {
				return counts, fmt.Errorf("line %d: sample record before meta", line)
			}
			if len(s.Queues) != meta.Nodes {
				return counts, fmt.Errorf("line %d: sample has %d queue depths, want %d", line, len(s.Queues), meta.Nodes)
			}
			if len(s.Limits) != meta.Flows {
				return counts, fmt.Errorf("line %d: sample has %d limits, want %d", line, len(s.Limits), meta.Flows)
			}
		case "condition":
			var c conditionLine
			if err := dec.Decode(&c); err != nil {
				return counts, fmt.Errorf("line %d (condition): %w", line, err)
			}
			switch c.Cond {
			case "source", "buffer", "bandwidth", "rate-limit":
			default:
				return counts, fmt.Errorf("line %d: unknown condition %q", line, c.Cond)
			}
		case "limit":
			var l limitLine
			if err := dec.Decode(&l); err != nil {
				return counts, fmt.Errorf("line %d (limit): %w", line, err)
			}
			switch l.Action {
			case ActionReduce, ActionIncrease, ActionProbe, ActionRemove:
			default:
				return counts, fmt.Errorf("line %d: unknown limit action %q", line, l.Action)
			}
		case "run":
			var rl runLine
			if err := dec.Decode(&rl); err != nil {
				return counts, fmt.Errorf("line %d (run): %w", line, err)
			}
			if meta == nil {
				return counts, fmt.Errorf("line %d: run record before meta", line)
			}
			for _, f := range rl.Flows {
				switch f.Bottleneck {
				case "", "source", "buffer", "bandwidth", "rate-limit":
				default:
					return counts, fmt.Errorf("line %d: run seed %d flow %d has unknown bottleneck %q",
						line, rl.Seed, f.Flow, f.Bottleneck)
				}
			}
		case "admission":
			var a admissionLine
			if err := dec.Decode(&a); err != nil {
				return counts, fmt.Errorf("line %d (admission): %w", line, err)
			}
			switch {
			case a.Admitted && a.Reason != "":
				return counts, fmt.Errorf("line %d: admitted flow %d carries refusal reason %q", line, a.Flow, a.Reason)
			case !a.Admitted && a.Reason == "":
				return counts, fmt.Errorf("line %d: refused flow %d without a reason", line, a.Flow)
			}
		default:
			return counts, fmt.Errorf("line %d: unknown record type %q", line, head.Type)
		}
		counts[head.Type]++
	}
	if err := sc.Err(); err != nil {
		return counts, err
	}
	if meta == nil {
		return counts, fmt.Errorf("no meta record found")
	}
	return counts, nil
}

// FlowSummary is one flow's compressed telemetry for per-seed sweep
// summaries.
type FlowSummary struct {
	Flow         packet.FlowID `json:"flow"`
	Delivered    int64         `json:"delivered"`
	Retries      int64         `json:"retries"`
	MeanLatency  time.Duration `json:"mean_latency_ns"`
	P50Latency   time.Duration `json:"p50_latency_ns"`
	P99Latency   time.Duration `json:"p99_latency_ns"`
	Conditions   [4]int64      `json:"conditions"` // source, buffer, bandwidth, rate-limit
	Bottleneck   string        `json:"bottleneck"` // final reducing condition, "" if never reduced
	LimitChanges int           `json:"limit_changes"`
}

// RunSummary compresses one run's telemetry to a single record.
type RunSummary struct {
	Scenario   string        `json:"scenario"`
	Protocol   string        `json:"protocol"`
	Samples    int           `json:"samples"`
	Conditions int           `json:"conditions"`
	Admitted   int           `json:"admitted,omitempty"`
	Rejected   int           `json:"rejected,omitempty"`
	Flows      []FlowSummary `json:"flows"`
}

// Summarize compresses the telemetry for per-seed sweep reporting.
func (t *Telemetry) Summarize() RunSummary {
	s := RunSummary{
		Scenario:   t.Meta.Scenario,
		Protocol:   t.Meta.Protocol,
		Samples:    len(t.Samples),
		Conditions: len(t.Conditions),
	}
	for _, a := range t.Admissions {
		if a.Admitted {
			s.Admitted++
		} else {
			s.Rejected++
		}
	}
	for _, f := range t.Flows {
		fs := FlowSummary{
			Flow:        f.Flow,
			Delivered:   f.Delivered,
			Retries:     f.Retries,
			MeanLatency: f.Latency.Mean(),
			P50Latency:  f.Latency.Quantile(0.50),
			P99Latency:  f.Latency.Quantile(0.99),
			Conditions:  t.FlowConditionCounts(f.Flow),
		}
		if c := t.FinalBottleneck(f.Flow); c != 0 {
			fs.Bottleneck = c.String()
		}
		for _, l := range t.Limits {
			if l.Flow == f.Flow {
				fs.LimitChanges++
			}
		}
		s.Flows = append(s.Flows, fs)
	}
	return s
}
