package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// runLine is the JSONL "run" record: one completed run's compressed
// summary inside a multi-run sweep stream. Unlike the single-run export
// (WriteJSONL), a sweep stream carries one meta record for the whole
// sweep followed by one run record per seed as runs complete.
type runLine struct {
	Type string `json:"type"`
	Seed int64  `json:"seed"`
	RunSummary
}

// StreamWriter emits a telemetry JSONL stream for a multi-run sweep
// incrementally: exactly one meta record up front, then one "run"
// record per completed run, flushed per record so a follower (the gmpd
// telemetry endpoint) sees each run as soon as it finishes rather than
// after the sweep. The emitted stream validates under ValidateJSONL.
// Methods are safe for concurrent use; callers wanting a deterministic
// stream must still serialize runs into seed order themselves.
type StreamWriter struct {
	mu        sync.Mutex
	bw        *bufio.Writer
	enc       *json.Encoder
	wroteMeta bool
}

// NewStreamWriter wraps w in a sweep-stream encoder.
func NewStreamWriter(w io.Writer) *StreamWriter {
	bw := bufio.NewWriter(w)
	return &StreamWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteMeta writes the stream's single meta record. It must be called
// exactly once, before any run record.
func (sw *StreamWriter) WriteMeta(m Meta) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.wroteMeta {
		return fmt.Errorf("obs: duplicate meta record in sweep stream")
	}
	sw.wroteMeta = true
	if err := sw.enc.Encode(metaLine{Type: "meta", Meta: m}); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// WriteRun appends one completed run's summary and flushes it through
// to the underlying writer.
func (sw *StreamWriter) WriteRun(seed int64, s RunSummary) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if !sw.wroteMeta {
		return fmt.Errorf("obs: run record before meta in sweep stream")
	}
	if err := sw.enc.Encode(runLine{Type: "run", Seed: seed, RunSummary: s}); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// Flush forces any buffered bytes through to the underlying writer.
func (sw *StreamWriter) Flush() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.bw.Flush()
}
