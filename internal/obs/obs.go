// Package obs is the simulator's telemetry layer: packet-lifecycle
// histograms, periodic channel/queue samples, and the GMP
// condition-state timeline, recorded during a run and exported as
// deterministic JSONL/CSV.
//
// The layer is strictly zero-cost when disabled. Every producer (the
// radio medium, the MAC stations, the forwarding nodes, the protocol
// engines) holds a *Recorder that is nil in an untelemetered run; hooks
// are gated on a nil check and every Recorder method is additionally
// nil-receiver-safe. A nil Recorder therefore adds one predictable
// branch per hook and no allocations — the determinism goldens and the
// AllocsPerRun regressions of the hot paths are unaffected (see the
// zero-cost contract in DESIGN.md "Observability").
//
// When enabled, the Recorder only *observes*: it draws no randomness,
// schedules no protocol events, and mutates no protocol state, so a
// telemetry-on run produces byte-identical simulation results to the
// same run with telemetry off.
package obs

import (
	"fmt"
	"sort"
	"time"

	"gmp/internal/packet"
	"gmp/internal/topology"
)

// Config enables telemetry for a run (gmp.Config.Telemetry).
type Config struct {
	// SampleInterval is the spacing of periodic queue-depth and
	// link-utilization samples. Zero means one sample per GMP period.
	SampleInterval time.Duration
}

// Condition enumerates the paper's four local conditions (§5.3).
type Condition int

// The four local conditions. An event tagged with a condition records
// that the condition was *violated* at the flow's bottleneck node and
// generated a rate adjustment request; rounds in which a flow has no
// events are rounds in which every condition held for it.
const (
	CondSource    Condition = iota + 1 // source condition (§5.3 c1)
	CondBuffer                         // buffer-saturated condition (c2)
	CondBandwidth                      // bandwidth-saturated condition (c3)
	CondRateLimit                      // rate-limit condition (c4)
)

// String names the condition as in the JSONL schema.
func (c Condition) String() string {
	switch c {
	case CondSource:
		return "source"
	case CondBuffer:
		return "buffer"
	case CondBandwidth:
		return "bandwidth"
	case CondRateLimit:
		return "rate-limit"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// DefaultLatencyBounds are the fixed histogram bucket upper bounds used
// for every duration histogram: roughly logarithmic from 1 ms to 60 s.
// Fixed buckets keep recording allocation-free and the export schema
// stable across runs.
var DefaultLatencyBounds = []time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	5 * time.Second,
	10 * time.Second,
	20 * time.Second,
	60 * time.Second,
}

// Histogram is a fixed-bucket duration histogram. Counts[i] holds
// observations d <= Bounds[i] (and above Bounds[i-1]); the final slot
// is the overflow bucket, so len(Counts) == len(Bounds)+1.
type Histogram struct {
	Bounds []time.Duration `json:"-"`
	Counts []int64         `json:"counts"`
	Count  int64           `json:"count"`
	Sum    time.Duration   `json:"sum_ns"`
	Min    time.Duration   `json:"min_ns"`
	Max    time.Duration   `json:"max_ns"`
}

// NewHistogram builds a histogram over the default bounds.
func NewHistogram() Histogram {
	return Histogram{
		Bounds: DefaultLatencyBounds,
		Counts: make([]int64, len(DefaultLatencyBounds)+1),
	}
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.Bounds) && d > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.Sum += d
	if h.Count == 1 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
}

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// bucket boundary at or above which the cumulative count reaches
// q*Count. The overflow bucket reports the observed maximum. Returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// FlowStats is one flow's accumulated lifecycle telemetry.
type FlowStats struct {
	Flow packet.FlowID `json:"flow"`
	// Latency is the end-to-end delivery latency histogram (packet
	// creation at the source to consumption at the destination).
	Latency Histogram `json:"latency"`
	// Retries counts MAC-layer retransmission timeouts attributed to
	// the flow's packets anywhere along its route.
	Retries int64 `json:"retries"`
	// Delivered counts end-to-end deliveries observed by the recorder.
	Delivered int64 `json:"delivered"`
}

// NodeStats is one node's accumulated per-hop telemetry.
type NodeStats struct {
	Node topology.NodeID `json:"node"`
	// Sojourn is the per-hop span histogram: admission of a packet into
	// this node's queues (or its creation, at the source) until the
	// next hop acknowledged it.
	Sojourn Histogram `json:"sojourn"`
	// MACService is the MAC-only slice of the sojourn: the span from
	// the MAC pulling a packet until its ACK, including every retry.
	MACService Histogram `json:"mac_service"`
	// Retries counts retransmission timeouts at this node's MAC.
	Retries int64 `json:"retries"`
	// Drops counts network-layer packet drops at this node.
	Drops int64 `json:"drops"`
}

// LinkUtil is one directed link's airtime fraction over a sample
// interval.
type LinkUtil struct {
	From topology.NodeID `json:"from"`
	To   topology.NodeID `json:"to"`
	Util float64         `json:"util"`
}

// Sample is one periodic observation of queue depths, per-link channel
// utilization, and per-flow rate limits.
type Sample struct {
	At time.Duration `json:"at_ns"`
	// Queues is the total queued packet count per node.
	Queues []int `json:"queues"`
	// Links lists the directed links that carried airtime since the
	// previous sample, in dense link-index order.
	Links []LinkUtil `json:"links"`
	// Limits is the per-flow self-imposed rate limit in pkt/s (-1 when
	// the flow is unlimited).
	Limits []float64 `json:"limits"`
}

// ConditionEvent records one local-condition violation: at time At the
// condition Cond, tested at bottleneck node Node, generated a rate
// adjustment request for Flow (Reduce/Factor per §6.3).
type ConditionEvent struct {
	At     time.Duration   `json:"at_ns"`
	Flow   packet.FlowID   `json:"flow"`
	Node   topology.NodeID `json:"node"`
	Cond   Condition       `json:"-"`
	Reduce bool            `json:"reduce"`
	Factor float64         `json:"factor"`
}

// LimitAction classifies a rate-limit change.
type LimitAction string

// Limit actions: a granted reduction or increase request, the
// rate-limit condition's additive upward probe, and limit removal.
const (
	ActionReduce   LimitAction = "reduce"
	ActionIncrease LimitAction = "increase"
	ActionProbe    LimitAction = "probe"
	ActionRemove   LimitAction = "remove"
)

// LimitEvent records one applied rate-limit change for a flow. Before
// and After are pkt/s; -1 encodes "no limit".
type LimitEvent struct {
	At     time.Duration `json:"at_ns"`
	Flow   packet.FlowID `json:"flow"`
	Action LimitAction   `json:"action"`
	Before float64       `json:"before"`
	After  float64       `json:"after"`
}

// AdmissionEvent records one admission-control decision for an arriving
// churn flow, or a later watchdog shed of an admitted one. Reason is the
// typed refusal reason's string form ("" when admitted).
type AdmissionEvent struct {
	At       time.Duration `json:"at_ns"`
	Flow     packet.FlowID `json:"flow"`
	Admitted bool          `json:"admitted"`
	Reason   string        `json:"reason,omitempty"`
}

// Meta describes the run a Telemetry belongs to.
type Meta struct {
	Scenario       string        `json:"scenario"`
	Protocol       string        `json:"protocol"`
	Flows          int           `json:"flows"`
	Nodes          int           `json:"nodes"`
	SampleInterval time.Duration `json:"sample_interval_ns"`
	// BucketBounds are the histogram bucket upper bounds shared by
	// every histogram in the telemetry, in nanoseconds.
	BucketBounds []time.Duration `json:"bucket_bounds_ns"`
}

// Telemetry is the full recorded output of one run (Result.Telemetry).
type Telemetry struct {
	Meta       Meta
	Flows      []FlowStats
	Nodes      []NodeStats
	Samples    []Sample
	Conditions []ConditionEvent
	Limits     []LimitEvent
	Admissions []AdmissionEvent
}

// Recorder accumulates telemetry during a run. A nil *Recorder is the
// disabled state: every method is a no-op on a nil receiver, and the
// hot-path producers additionally gate their hook calls on a nil check
// so the disabled cost is a single branch.
type Recorder struct {
	now  func() time.Duration
	topo *topology.Topology

	flows []FlowStats
	nodes []NodeStats

	// linkAir accumulates on-air time per dense link index since the
	// last SampleLinkUtil call. linkAirFar parks airtime whose link
	// vanished in a topology change before the interval closed.
	linkAir    []time.Duration
	linkAirFar map[topology.Link]time.Duration

	samples    []Sample
	conditions []ConditionEvent
	limits     []LimitEvent
	admissions []AdmissionEvent

	sampleInterval time.Duration
}

// NewRecorder builds an enabled recorder for a run over the given
// topology with numFlows flows. now is the virtual clock (the
// scheduler's Now).
func NewRecorder(topo *topology.Topology, numFlows int, sampleInterval time.Duration, now func() time.Duration) *Recorder {
	r := &Recorder{
		now:            now,
		topo:           topo,
		flows:          make([]FlowStats, numFlows),
		nodes:          make([]NodeStats, topo.NumNodes()),
		linkAir:        make([]time.Duration, topo.NumLinks()),
		sampleInterval: sampleInterval,
	}
	for i := range r.flows {
		r.flows[i].Flow = packet.FlowID(i)
		r.flows[i].Latency = NewHistogram()
	}
	for i := range r.nodes {
		r.nodes[i].Node = topology.NodeID(i)
		r.nodes[i].Sojourn = NewHistogram()
		r.nodes[i].MACService = NewHistogram()
	}
	return r
}

// SampleInterval returns the configured sampling spacing.
func (r *Recorder) SampleInterval() time.Duration {
	if r == nil {
		return 0
	}
	return r.sampleInterval
}

// HopForwarded records that node forwarded one of flow's packets to an
// acknowledging next hop after holding it for sojourn.
func (r *Recorder) HopForwarded(node topology.NodeID, flow packet.FlowID, sojourn time.Duration) {
	if r == nil {
		return
	}
	r.nodes[node].Sojourn.Observe(sojourn)
}

// MACService records one completed MAC exchange at node: pull to ACK,
// retries included.
func (r *Recorder) MACService(node topology.NodeID, flow packet.FlowID, d time.Duration) {
	if r == nil {
		return
	}
	r.nodes[node].MACService.Observe(d)
}

// MACRetry records one retransmission timeout at node for flow.
func (r *Recorder) MACRetry(node topology.NodeID, flow packet.FlowID) {
	if r == nil {
		return
	}
	r.nodes[node].Retries++
	if int(flow) < len(r.flows) {
		r.flows[flow].Retries++
	}
}

// Delivered records an end-to-end delivery of flow with the given
// source-to-sink latency.
func (r *Recorder) Delivered(flow packet.FlowID, latency time.Duration) {
	if r == nil {
		return
	}
	r.flows[flow].Delivered++
	r.flows[flow].Latency.Observe(latency)
}

// PacketDropped records a network-layer drop at node.
func (r *Recorder) PacketDropped(node topology.NodeID, flow packet.FlowID) {
	if r == nil {
		return
	}
	r.nodes[node].Drops++
}

// LinkAirtime accumulates on-air time for the dense link index idx
// (negative indices — off-topology test frames — are ignored).
func (r *Recorder) LinkAirtime(idx int, d time.Duration) {
	if r == nil || idx < 0 {
		return
	}
	r.linkAir[idx] += d
}

// OnTopologyChange re-keys the per-link airtime accumulators after the
// recorder's topology was mutated in place (node motion). oldLinks is
// the pre-move dense link slice: airtime recorded under the old indices
// moves to the link's new index, or — when the link vanished — into a
// side map so the interval's sample still reports it.
func (r *Recorder) OnTopologyChange(oldLinks []topology.Link) {
	if r == nil {
		return
	}
	newAir := make([]time.Duration, r.topo.NumLinks())
	for idx, d := range r.linkAir {
		if d == 0 {
			continue
		}
		l := oldLinks[idx]
		if ni := r.topo.LinkIndex(l.From, l.To); ni >= 0 {
			newAir[ni] = d
		} else {
			if r.linkAirFar == nil {
				r.linkAirFar = make(map[topology.Link]time.Duration)
			}
			r.linkAirFar[l] += d
		}
	}
	for l, d := range r.linkAirFar {
		if ni := r.topo.LinkIndex(l.From, l.To); ni >= 0 {
			newAir[ni] += d
			delete(r.linkAirFar, l)
		}
	}
	r.linkAir = newAir
}

// SampleLinkUtil closes one sampling interval: it converts the per-link
// airtime accumulated since the previous call into utilization
// fractions, resets the accumulators, and returns the non-zero entries
// in dense link-index order. Airtime of links that vanished mid-interval
// (node motion) follows, ordered by (From, To).
func (r *Recorder) SampleLinkUtil(interval time.Duration) []LinkUtil {
	if r == nil || interval <= 0 {
		return nil
	}
	var out []LinkUtil
	for idx, d := range r.linkAir {
		if d == 0 {
			continue
		}
		l := r.topo.LinkAt(idx)
		out = append(out, LinkUtil{
			From: l.From,
			To:   l.To,
			Util: float64(d) / float64(interval),
		})
		r.linkAir[idx] = 0
	}
	if len(r.linkAirFar) > 0 {
		base := len(out)
		for l, d := range r.linkAirFar {
			out = append(out, LinkUtil{
				From: l.From,
				To:   l.To,
				Util: float64(d) / float64(interval),
			})
		}
		gone := out[base:]
		sort.Slice(gone, func(i, j int) bool {
			if gone[i].From != gone[j].From {
				return gone[i].From < gone[j].From
			}
			return gone[i].To < gone[j].To
		})
		r.linkAirFar = nil
	}
	return out
}

// AddSample appends one periodic sample (built by the run loop, which
// owns the queue and rate-limit accessors).
func (r *Recorder) AddSample(s Sample) {
	if r == nil {
		return
	}
	r.samples = append(r.samples, s)
}

// Condition records one local-condition violation for flow at its
// bottleneck node.
func (r *Recorder) Condition(flow packet.FlowID, node topology.NodeID, cond Condition, reduce bool, factor float64) {
	if r == nil {
		return
	}
	r.conditions = append(r.conditions, ConditionEvent{
		At:     r.now(),
		Flow:   flow,
		Node:   node,
		Cond:   cond,
		Reduce: reduce,
		Factor: factor,
	})
}

// LimitChange records one applied rate-limit change. Pass -1 for
// "no limit" on either side.
func (r *Recorder) LimitChange(flow packet.FlowID, action LimitAction, before, after float64) {
	if r == nil {
		return
	}
	r.limits = append(r.limits, LimitEvent{
		At:     r.now(),
		Flow:   flow,
		Action: action,
		Before: before,
		After:  after,
	})
}

// Admission records one admission decision (or watchdog shed). Churn
// flows are recorded by the single churn engine in event order, which
// is already deterministic — no canonicalizing sort needed.
func (r *Recorder) Admission(flow packet.FlowID, admitted bool, reason string) {
	if r == nil {
		return
	}
	r.admissions = append(r.admissions, AdmissionEvent{
		At:       r.now(),
		Flow:     flow,
		Admitted: admitted,
		Reason:   reason,
	})
}

// Finalize assembles the accumulated telemetry. The recorder may keep
// recording afterwards, but the returned value owns its slices.
//
// Condition events are put into a canonical total order (time, flow,
// node, condition, direction, factor): the protocol engines iterate Go
// maps while testing conditions, so the raw recording order of
// same-instant events is not reproducible across runs even though the
// event *set* is. Events identical under every key are interchangeable,
// so the sorted stream is byte-deterministic.
func (r *Recorder) Finalize(scenario, protocol string) *Telemetry {
	if r == nil {
		return nil
	}
	conds := append([]ConditionEvent(nil), r.conditions...)
	sort.SliceStable(conds, func(i, j int) bool {
		a, b := conds[i], conds[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Cond != b.Cond {
			return a.Cond < b.Cond
		}
		if a.Reduce != b.Reduce {
			return a.Reduce
		}
		return a.Factor < b.Factor
	})
	return &Telemetry{
		Meta: Meta{
			Scenario:       scenario,
			Protocol:       protocol,
			Flows:          len(r.flows),
			Nodes:          len(r.nodes),
			SampleInterval: r.sampleInterval,
			BucketBounds:   DefaultLatencyBounds,
		},
		Flows:      append([]FlowStats(nil), r.flows...),
		Nodes:      append([]NodeStats(nil), r.nodes...),
		Samples:    append([]Sample(nil), r.samples...),
		Conditions: conds,
		Limits:     append([]LimitEvent(nil), r.limits...),
		Admissions: append([]AdmissionEvent(nil), r.admissions...),
	}
}

// FlowConditionCounts tallies flow's condition events by condition:
// [source, buffer, bandwidth, rate-limit].
func (t *Telemetry) FlowConditionCounts(flow packet.FlowID) [4]int64 {
	var out [4]int64
	for _, ev := range t.Conditions {
		if ev.Flow == flow && ev.Cond >= CondSource && ev.Cond <= CondRateLimit {
			out[ev.Cond-CondSource]++
		}
	}
	return out
}

// FinalBottleneck returns the condition of flow's last *reducing*
// condition event — the binding constraint the protocol last enforced
// against the flow — or 0 when the flow was never asked down.
func (t *Telemetry) FinalBottleneck(flow packet.FlowID) Condition {
	for i := len(t.Conditions) - 1; i >= 0; i-- {
		ev := t.Conditions[i]
		if ev.Flow == flow && ev.Reduce {
			return ev.Cond
		}
	}
	return 0
}
