package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleTelemetry builds a small synthetic telemetry through the
// recorder, the same way a run does.
func sampleTelemetry(t *testing.T) *Telemetry {
	t.Helper()
	now := time.Duration(0)
	r := NewRecorder(testTopo(t), 2, time.Second, func() time.Duration { return now })

	now = time.Second
	r.HopForwarded(0, 0, 3*time.Millisecond)
	r.MACService(0, 0, time.Millisecond)
	r.MACRetry(1, 0)
	r.Delivered(0, 8*time.Millisecond)
	r.PacketDropped(1, 1)
	r.AddSample(Sample{At: now, Queues: []int{1, 0, 2}, Limits: []float64{-1, 40}})
	r.Condition(0, 1, CondBandwidth, true, 0.9)
	r.LimitChange(0, ActionReduce, -1, 36)
	now = 2 * time.Second
	r.AddSample(Sample{At: now, Queues: []int{0, 0, 0}, Limits: []float64{36, 40}})
	r.Condition(0, 0, CondRateLimit, false, 1.1)
	r.LimitChange(0, ActionProbe, 36, 40)

	return r.Finalize("test", "GMP")
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tel := sampleTelemetry(t)
	var buf bytes.Buffer
	if err := tel.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	counts, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL rejected WriteJSONL output: %v\n%s", err, buf.String())
	}
	want := map[string]int{
		"meta": 1, "flow": 2, "node": 3, "sample": 2, "condition": 2, "limit": 2,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("record count %q = %d, want %d", k, counts[k], n)
		}
	}

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := tel.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated WriteJSONL produced different bytes")
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	meta := `{"type":"meta","scenario":"s","protocol":"p","flows":1,"nodes":2,"sample_interval_ns":1,"bucket_bounds_ns":[1000]}`
	cases := []struct {
		name string
		doc  string
	}{
		{"no meta", `{"type":"condition","at_ns":1,"flow":0,"node":0,"cond":"source","reduce":true,"factor":0.9}`},
		{"duplicate meta", meta + "\n" + meta},
		{"unknown type", meta + "\n" + `{"type":"mystery"}`},
		{"unknown field", meta + "\n" + `{"type":"limit","at_ns":1,"flow":0,"action":"reduce","before":1,"after":0.9,"extra":1}`},
		{"unknown condition", meta + "\n" + `{"type":"condition","at_ns":1,"flow":0,"node":0,"cond":"gremlins","reduce":true,"factor":0.9}`},
		{"unknown action", meta + "\n" + `{"type":"limit","at_ns":1,"flow":0,"action":"explode","before":1,"after":0.9}`},
		{"bucket mismatch", meta + "\n" + `{"type":"flow","flow":0,"latency":{"counts":[1],"count":1,"sum_ns":1,"min_ns":1,"max_ns":1},"retries":0,"delivered":1}`},
		{"queue length", meta + "\n" + `{"type":"sample","at_ns":1,"queues":[0],"links":null,"limits":[-1]}`},
		{"limits length", meta + "\n" + `{"type":"sample","at_ns":1,"queues":[0,0],"links":null,"limits":[]}`},
		{"sample before meta", `{"type":"sample","at_ns":1,"queues":[0],"links":null,"limits":[]}`},
		{"not json", "pigeon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ValidateJSONL(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("ValidateJSONL accepted %s", tc.name)
			}
		})
	}

	// The minimal valid document is just the meta line.
	if _, err := ValidateJSONL(strings.NewReader(meta)); err != nil {
		t.Errorf("ValidateJSONL rejected minimal document: %v", err)
	}
}

func TestWriteSamplesCSV(t *testing.T) {
	tel := sampleTelemetry(t)
	var buf bytes.Buffer
	if err := tel.WriteSamplesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 samples:\n%s", len(lines), buf.String())
	}
	if lines[0] != "at_s,queue_n0,queue_n1,queue_n2,limit_f0,limit_f1" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.000,1,0,2,-1.000,40.000" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestSummarize(t *testing.T) {
	tel := sampleTelemetry(t)
	s := tel.Summarize()
	if s.Scenario != "test" || s.Protocol != "GMP" {
		t.Errorf("meta = %q/%q", s.Scenario, s.Protocol)
	}
	if s.Samples != 2 || s.Conditions != 2 {
		t.Errorf("samples/conditions = %d/%d, want 2/2", s.Samples, s.Conditions)
	}
	if len(s.Flows) != 2 {
		t.Fatalf("flow summaries = %d, want 2", len(s.Flows))
	}
	f0 := s.Flows[0]
	if f0.Delivered != 1 || f0.Bottleneck != "bandwidth" || f0.LimitChanges != 2 {
		t.Errorf("flow 0 summary = %+v", f0)
	}
	if f0.Conditions != [4]int64{0, 0, 1, 1} {
		t.Errorf("flow 0 conditions = %v", f0.Conditions)
	}
	if f1 := s.Flows[1]; f1.Bottleneck != "" || f1.LimitChanges != 0 {
		t.Errorf("flow 1 summary = %+v", f1)
	}
}
