package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxminIndex(t *testing.T) {
	tests := []struct {
		name  string
		rates []float64
		want  float64
	}{
		{"equal rates", []float64{5, 5, 5}, 1},
		{"half", []float64{1, 2}, 0.5},
		{"paper table 3 shape", []float64{80.63, 220.07, 174.09}, 80.63 / 220.07},
		{"zero min", []float64{0, 10}, 0},
		{"single flow", []float64{7}, 1},
		{"empty", nil, 0},
		{"all zero", []float64{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MaxminIndex(tt.rates); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("MaxminIndex(%v) = %v, want %v", tt.rates, got, tt.want)
			}
		})
	}
}

func TestEqualityIndex(t *testing.T) {
	tests := []struct {
		name  string
		rates []float64
		want  float64
	}{
		{"equal rates", []float64{3, 3, 3, 3}, 1},
		{"one active of two", []float64{10, 0}, 0.5},
		{"single flow", []float64{7}, 1},
		{"empty", nil, 0},
		{"all zero", []float64{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EqualityIndex(tt.rates); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("EqualityIndex(%v) = %v, want %v", tt.rates, got, tt.want)
			}
		})
	}
}

func TestEqualityIndexMatchesPaperTable3(t *testing.T) {
	// Table 3 reports I_eq = 0.882 for the 802.11 rates.
	got := EqualityIndex([]float64{80.63, 220.07, 174.09})
	if math.Abs(got-0.882) > 0.001 {
		t.Errorf("I_eq = %.4f, want 0.882 (paper Table 3)", got)
	}
}

func TestMaxminIndexMatchesPaperTable4(t *testing.T) {
	// Table 4 reports I_mm = 0.125 for the 2PP rates.
	rates := []float64{43.31, 347.81, 43.33, 86.67, 43.39, 86.70, 43.36, 346.96}
	if got := MaxminIndex(rates); math.Abs(got-0.125) > 0.001 {
		t.Errorf("I_mm = %.4f, want 0.125 (paper Table 4)", got)
	}
}

func TestEffectiveThroughput(t *testing.T) {
	u := EffectiveThroughput([]float64{100, 50}, []int{3, 1})
	if u != 350 {
		t.Errorf("U = %v, want 350", u)
	}
}

func TestEffectiveThroughputMatchesPaperTable3(t *testing.T) {
	// Flows <0,3>, <1,3>, <2,3> have 3, 2, 1 hops; the paper's 802.11
	// row gives U = 856.11.
	u := EffectiveThroughput([]float64{80.63, 220.07, 174.09}, []int{3, 2, 1})
	if math.Abs(u-856.12) > 0.02 {
		t.Errorf("U = %.2f, want 856.11 (paper Table 3)", u)
	}
}

func TestEffectiveThroughputPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	EffectiveThroughput([]float64{1}, []int{1, 2})
}

func TestNormalizedRates(t *testing.T) {
	got := NormalizedRates([]float64{100, 200, 300}, []float64{1, 2, 3})
	for i, want := range []float64{100, 100, 100} {
		if got[i] != want {
			t.Errorf("NormalizedRates[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// Properties: both indices live in [0,1]; 1 iff all rates equal (for
// positive rates); scale-invariance.
func TestIndexProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		rates := make([]float64, len(raw))
		for i, r := range raw {
			rates[i] = float64(r) + 1 // strictly positive
		}
		imm, ieq := MaxminIndex(rates), EqualityIndex(rates)
		if imm < 0 || imm > 1+1e-12 || ieq < 0 || ieq > 1+1e-12 {
			return false
		}
		// Scale invariance.
		scaled := make([]float64, len(rates))
		for i := range rates {
			scaled[i] = rates[i] * 3.7
		}
		if math.Abs(MaxminIndex(scaled)-imm) > 1e-9 || math.Abs(EqualityIndex(scaled)-ieq) > 1e-9 {
			return false
		}
		// I_mm <= I_eq is not generally true; but I_mm == 1 implies I_eq == 1.
		if imm == 1 && math.Abs(ieq-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
