// Package metrics computes the evaluation metrics of §7.2: the maxmin
// fairness index I_mm, the equality (Jain) fairness index I_eq, and the
// effective network throughput U.
package metrics

// MaxminIndex returns I_mm = min(rates) / max(rates): the ratio of the
// smallest to the largest flow rate. It is 1 for perfectly equal rates.
// Degenerate inputs (no flows, or an all-zero maximum) return 0.
func MaxminIndex(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	lo, hi := rates[0], rates[0]
	for _, r := range rates[1:] {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi <= 0 {
		return 0
	}
	return lo / hi
}

// EqualityIndex returns Jain's fairness index
// I_eq = (Σ r)² / (|F| · Σ r²), which approaches 1 as rates equalize.
// Degenerate inputs return 0.
func EqualityIndex(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, r := range rates {
		sum += r
		sumSq += r * r
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sumSq)
}

// EffectiveThroughput returns U = Σ r(f) · l_f, the sum of each flow's
// end-to-end rate times its hop count. Packets dropped before reaching
// the destination contribute nothing, so U measures useful spectrum use.
// rates and hops must be parallel slices.
func EffectiveThroughput(rates []float64, hops []int) float64 {
	if len(rates) != len(hops) {
		panic("metrics: rates and hops length mismatch")
	}
	var u float64
	for i, r := range rates {
		u += r * float64(hops[i])
	}
	return u
}

// NormalizedRates divides each rate by the corresponding weight,
// producing the μ(f) values the maxmin objective equalizes (§2.1).
func NormalizedRates(rates, weights []float64) []float64 {
	if len(rates) != len(weights) {
		panic("metrics: rates and weights length mismatch")
	}
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = r / weights[i]
	}
	return out
}
