// Package core implements GMP, the paper's primary contribution: the
// distributed Global Maxmin Protocol (§6). Time is divided into
// alternating measurement and adjustment periods. At the end of each
// measurement period the engine classifies links from the collected
// measurements (§3) and tests the four local conditions (§5.3):
//
//  1. Source condition — at a saturated virtual node that hosts flow
//     sources, no upstream link or co-located flow may exceed the local
//     flows' normalized rates.
//  2. Buffer-saturated condition — a buffer-saturated virtual link must
//     carry the largest normalized rate into its downstream virtual node.
//  3. Bandwidth-saturated condition — a bandwidth-saturated virtual link
//     must have the largest normalized rate in at least one saturated
//     clique it belongs to.
//  4. Rate-limit condition — sources not asked to adjust probe upward
//     (additive increase), and limits that are not binding are removed.
//
// Violations generate rate adjustment requests for the primary flows of
// the offending links; requests are aggregated per flow with the paper's
// control-packet rule (any reduction overrides all increases; the largest
// reduction / smallest increase wins) and applied at the end of the
// following adjustment period.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gmp/internal/clique"
	"gmp/internal/flow"
	"gmp/internal/measure"
	"gmp/internal/obs"
	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
)

// Params are GMP's protocol constants (§6, §7).
type Params struct {
	// Period is the length of one measurement or adjustment period
	// (4 s in §7).
	Period time.Duration
	// Beta is the equality tolerance: values within Beta (fractionally)
	// are "equal", and adjustments step by Beta (10% in §7).
	Beta float64
	// OmegaThreshold is the buffer-saturation threshold (25% in §6.2).
	OmegaThreshold float64
	// AdditiveIncrease is the rate-limit probe step in packets/second
	// (§6.3 "a small amount").
	AdditiveIncrease float64
	// HalveGap is the L1/S1 ratio beyond which requests halve or double
	// rates instead of stepping by Beta (3 in §6.3).
	HalveGap float64
}

// DefaultParams mirrors the paper's simulation setup.
func DefaultParams() Params {
	return Params{
		Period:           4 * time.Second,
		Beta:             0.10,
		OmegaThreshold:   measure.DefaultOmegaThreshold,
		AdditiveIncrease: 4,
		HalveGap:         3,
	}
}

// Validate sanity-checks the parameters.
func (p Params) Validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("core: non-positive period %v", p.Period)
	}
	if p.Beta <= 0 || p.Beta >= 1 {
		return fmt.Errorf("core: beta %v outside (0,1)", p.Beta)
	}
	if p.OmegaThreshold <= 0 || p.OmegaThreshold >= 1 {
		return fmt.Errorf("core: omega threshold %v outside (0,1)", p.OmegaThreshold)
	}
	if p.AdditiveIncrease <= 0 {
		return fmt.Errorf("core: non-positive additive increase %v", p.AdditiveIncrease)
	}
	if p.HalveGap <= 1 {
		return fmt.Errorf("core: halve gap %v must exceed 1", p.HalveGap)
	}
	return nil
}

// Request is one aggregated rate adjustment for a flow (§6.3). Factor
// multiplies the flow's current rate: 0.5 and 2 for the halve/double fast
// path, 1±Beta otherwise.
type Request struct {
	Reduce bool
	Factor float64
}

// Round records one adjustment round for convergence traces.
type Round struct {
	Time time.Duration
	// Rates are the flows' injection rates over the period just ended.
	Rates []float64
	// Limits are the flows' rate limits after applying requests
	// (math.Inf(1) when unlimited).
	Limits []float64
	// Requests counts flows that received an adjustment request.
	Requests int
	// SaturatedVNodes counts buffer-saturated virtual nodes observed.
	SaturatedVNodes int
	// DownNodes lists the nodes crashed by fault injection at the moment
	// the round closed (nil in fault-free runs).
	DownNodes []topology.NodeID
}

// Engine drives GMP over a running simulation.
type Engine struct {
	sched     *sim.Scheduler
	topo      *topology.Topology
	cliques   *clique.Set
	registry  *flow.Registry
	collector *measure.Collector
	params    Params

	boundary int
	pending  map[packet.FlowID]Request
	lastSat  int
	// slack counts consecutive rounds a flow ran under its limit with an
	// unsaturated source queue; the limit is removed only after two, so a
	// single noisy period cannot unleash a burst.
	slack map[packet.FlowID]int

	// faultProbe, when set, reports the currently crashed nodes so each
	// trace Round records the fault state it was measured under.
	faultProbe func() []topology.NodeID

	// overloadNotifier, when set, receives after every round the cliques
	// whose §5.3 reduce-conditions fired (sorted, deduplicated; empty
	// slice on calm rounds so streak-based consumers can reset). The
	// admission watchdog sheds flows from persistently overloaded
	// cliques through it.
	overloadNotifier func([]clique.ID)
	overloaded       map[clique.ID]bool

	// rec is the telemetry recorder (nil when telemetry is off). The
	// engine records which local condition generated each adjustment
	// request and every applied limit change.
	rec *obs.Recorder

	// spans is the causal-trace recorder (nil when tracing is off). It
	// receives the same condition/limit events with decision provenance
	// attached (bottleneck clique and occupancy figures).
	spans *span.Recorder

	trace []Round
}

// NewEngine wires the protocol over the simulation components. Flows must
// use per-destination queueing (forwarding.PerDestination); the engine's
// virtual-node bookkeeping assumes QueueID == destination.
func NewEngine(sched *sim.Scheduler, topo *topology.Topology, cliques *clique.Set, registry *flow.Registry, collector *measure.Collector, params Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		sched:     sched,
		topo:      topo,
		cliques:   cliques,
		registry:  registry,
		collector: collector,
		params:    params,
		slack:     make(map[packet.FlowID]int),
	}, nil
}

// Start schedules the alternating period boundaries.
func (e *Engine) Start() {
	e.sched.After(e.params.Period, e.onBoundary)
}

// Trace returns the recorded adjustment rounds.
func (e *Engine) Trace() []Round { return e.trace }

// SetCliques replaces the clique decomposition the engine consults when
// testing the bandwidth-saturated condition. Called on mobility epochs
// after the incremental clique update; takes effect from the next round.
func (e *Engine) SetCliques(s *clique.Set) { e.cliques = s }

// SetFaultProbe installs a callback reporting the currently crashed
// nodes (fault injection); each recorded Round carries its result.
func (e *Engine) SetFaultProbe(fn func() []topology.NodeID) { e.faultProbe = fn }

// SetRecorder installs the telemetry recorder (nil disables). The
// recorder only observes condition outcomes and limit changes; it never
// alters the requests themselves.
func (e *Engine) SetRecorder(rec *obs.Recorder) { e.rec = rec }

// SetSpans installs the causal-trace recorder (nil disables, the
// default). Like the telemetry recorder it only observes.
func (e *Engine) SetSpans(r *span.Recorder) { e.spans = r }

// SetOverloadNotifier installs the per-round overload callback (nil
// disables). It observes which cliques generated reduce requests; it
// cannot alter the requests.
func (e *Engine) SetOverloadNotifier(fn func([]clique.ID)) { e.overloadNotifier = fn }

// OnFlowDeparted drops the engine's per-flow adjustment state when a
// flow leaves mid-run (churn): its pending request and slack streak
// must not outlive it — flow IDs are never reused, but the maps would
// otherwise grow without bound under sustained churn.
func (e *Engine) OnFlowDeparted(f packet.FlowID) {
	delete(e.slack, f)
	delete(e.pending, f)
}

// markOverloaded notes a clique as having generated a reduce this round.
func (e *Engine) markOverloaded(id clique.ID) {
	if e.overloaded == nil {
		e.overloaded = make(map[clique.ID]bool)
	}
	e.overloaded[id] = true
}

// recordAll logs one condition event per flow in the set, in flow-ID
// order so the telemetry stream does not inherit map iteration order.
// cliqueID, occ, and maxOcc carry the bandwidth-condition provenance
// for the span recorder (empty/nil for source and buffer conditions).
func (e *Engine) recordAll(flows map[packet.FlowID]topology.NodeID, node topology.NodeID, cond obs.Condition, reduce bool, factor float64, cliqueID string, occ []float64, maxOcc float64) {
	if e.rec == nil && e.spans == nil {
		return
	}
	ids := make([]packet.FlowID, 0, len(flows))
	for f := range flows {
		ids = append(ids, f)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, f := range ids {
		if e.rec != nil {
			e.rec.Condition(f, node, cond, reduce, factor)
		}
		e.spans.Condition(f, node, cond.String(), reduce, factor, cliqueID, occ, maxOcc)
	}
}

func (e *Engine) onBoundary() {
	e.boundary++
	rates := make([]float64, e.registry.NumFlows())
	for i, src := range e.registry.Sources() {
		rates[i] = src.EndPeriod()
	}
	snap := e.collector.Collect(e.params.Period)

	// Requests evaluated from the previous period's measurements are
	// delivered now (the paper's adjustment period), then this period's
	// measurements are evaluated for the next round. Periods therefore
	// alternate roles exactly as in §6.1, pipelined so that every
	// boundary closes one measurement period and one adjustment period.
	e.apply(e.pending, rates, snap)
	e.pending = e.evaluate(snap)
	e.lastSat = len(snap.Saturated)
	if e.overloadNotifier != nil {
		ids := make([]clique.ID, 0, len(e.overloaded))
		for id := range e.overloaded {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].Owner != ids[j].Owner {
				return ids[i].Owner < ids[j].Owner
			}
			return ids[i].Seq < ids[j].Seq
		})
		e.overloadNotifier(ids)
	}
	e.sched.After(e.params.Period, e.onBoundary)
}

// eq reports β-equality (§6.3): a and b differ by less than Beta of the
// larger magnitude.
func (e *Engine) eq(a, b float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= e.params.Beta*m
}

type reqSet map[packet.FlowID]Request

func (r reqSet) addReduce(f packet.FlowID, factor float64) {
	cur, ok := r[f]
	if ok && cur.Reduce && cur.Factor <= factor {
		return // keep the larger reduction
	}
	r[f] = Request{Reduce: true, Factor: factor}
}

func (r reqSet) addIncrease(f packet.FlowID, factor float64) {
	cur, ok := r[f]
	if ok && (cur.Reduce || cur.Factor <= factor) {
		return // reductions override; keep the smaller increase
	}
	r[f] = Request{Factor: factor}
}

func (r reqSet) addReduceAll(flows map[packet.FlowID]topology.NodeID, factor float64) {
	for f := range flows {
		r.addReduce(f, factor)
	}
}

func (r reqSet) addIncreaseAll(flows map[packet.FlowID]topology.NodeID, factor float64) {
	for f := range flows {
		r.addIncrease(f, factor)
	}
}

// evaluate tests conditions 1–3 on the snapshot and returns the
// aggregated per-flow requests.
func (e *Engine) evaluate(snap *measure.Snapshot) map[packet.FlowID]Request {
	e.augmentWithLimitPressure(snap)
	e.overloaded = nil
	reqs := make(reqSet)
	e.testSourceAndBufferConditions(snap, reqs)
	e.testBandwidthCondition(snap, reqs)
	return reqs
}

// augmentWithLimitPressure treats a source virtual node as saturated when
// one of its flows runs against a binding rate limit. In the paper the
// rate limit paces the *release* of packets, so a constrained source's
// buffer stays full (§2.2) and its links classify as saturated; our
// limiter paces generation instead, which would otherwise hide the
// pressure and permanently exclude limited flows from the
// bandwidth-saturated condition's rebalancing. Link types are re-derived
// after marking (§3.2's rules, unchanged).
func (e *Engine) augmentWithLimitPressure(snap *measure.Snapshot) {
	changed := false
	for _, src := range e.registry.Sources() {
		limit, limited := src.Limited()
		if !limited {
			continue
		}
		if src.LastPeriodRate() < limit*(1-e.params.Beta) {
			continue // limit not binding this period
		}
		spec := src.Spec()
		v := measure.VNodeID{Node: spec.Src, Queue: packet.QueueForDest(spec.Dst)}
		if !snap.Saturated[v] {
			snap.Saturated[v] = true
			changed = true
		}
	}
	if !changed {
		return
	}
	for _, st := range snap.VLinks {
		sender := measure.VNodeID{Node: st.Key.From, Queue: st.Key.Queue}
		receiver := measure.VNodeID{Node: st.Key.To, Queue: st.Key.Queue}
		switch {
		case !snap.Saturated[sender]:
			st.Type = measure.Unsaturated
		case snap.Saturated[receiver]:
			st.Type = measure.BufferSaturated
		default:
			st.Type = measure.BandwidthSaturated
		}
	}
}

// localFlows returns the flows originating at virtual node v, i.e. flows
// with source v.Node destined to the node v.Queue identifies.
func (e *Engine) localFlows(v measure.VNodeID) []flow.Spec {
	var out []flow.Spec
	for _, spec := range e.registry.Specs() {
		if spec.Src == v.Node && packet.QueueForDest(spec.Dst) == v.Queue {
			out = append(out, spec)
		}
	}
	return out
}

// testSourceAndBufferConditions walks every saturated virtual node and
// enforces §5.3's source and buffer-saturated conditions: the largest
// normalized rate L1 feeding the node must equal the smallest normalized
// rate S1 among its local flows and buffer-saturated upstream links.
func (e *Engine) testSourceAndBufferConditions(snap *measure.Snapshot, reqs reqSet) {
	for v := range snap.Saturated {
		ups := snap.Upstream(v)
		locals := e.localFlows(v)

		l1 := 0.0
		s1 := math.Inf(1)
		for _, up := range ups {
			if up.NormRate > l1 {
				l1 = up.NormRate
			}
			if up.Type == measure.BufferSaturated && up.NormRate > 0 && up.NormRate < s1 {
				s1 = up.NormRate
			}
		}
		for _, spec := range locals {
			mu := e.registry.Source(spec.ID).NormRate()
			if mu == 0 {
				continue // no completed measurement period yet
			}
			if mu > l1 {
				l1 = mu
			}
			if mu < s1 {
				s1 = mu
			}
		}
		if math.IsInf(s1, 1) || l1 == 0 || e.eq(s1, l1) {
			continue // nothing to equalize, or already equal
		}
		wide := l1 > e.params.HalveGap*s1
		down, up := 1-e.params.Beta, 1+e.params.Beta
		if wide {
			down, up = 0.5, 2
		}
		// Telemetry attribution: a saturated virtual node hosting flow
		// sources enforces the source condition; a pure relay enforces
		// the buffer-saturated condition.
		cond := obs.CondBuffer
		if len(locals) > 0 {
			cond = obs.CondSource
		}
		for _, ul := range ups {
			if e.eq(ul.NormRate, l1) {
				reqs.addReduceAll(ul.Primaries, down)
				e.recordAll(ul.Primaries, v.Node, cond, true, down, "", nil, 0)
				if e.overloadNotifier != nil && len(ul.Primaries) > 0 {
					wl := topology.Link{From: ul.Key.From, To: ul.Key.To}
					for _, c := range e.cliques.Of(wl) {
						e.markOverloaded(c.ID)
					}
				}
			}
			if ul.Type == measure.BufferSaturated && e.eq(ul.NormRate, s1) {
				reqs.addIncreaseAll(ul.Primaries, up)
				e.recordAll(ul.Primaries, v.Node, cond, false, up, "", nil, 0)
			}
		}
		for _, spec := range locals {
			src := e.registry.Source(spec.ID)
			mu := src.NormRate()
			if e.eq(mu, l1) {
				reqs.addReduce(spec.ID, down)
				if e.rec != nil {
					e.rec.Condition(spec.ID, v.Node, cond, true, down)
				}
				e.spans.Condition(spec.ID, v.Node, cond.String(), true, down, "", nil, 0)
			}
			if _, limited := src.Limited(); limited && e.eq(mu, s1) {
				reqs.addIncrease(spec.ID, up)
				if e.rec != nil {
					e.rec.Condition(spec.ID, v.Node, cond, false, up)
				}
				e.spans.Condition(spec.ID, v.Node, cond.String(), false, up, "", nil, 0)
			}
		}
	}
}

// testBandwidthCondition enforces §5.3's bandwidth-saturated condition on
// every wireless link carrying at least one bandwidth-saturated virtual
// link: that link's most penalized virtual link must carry the largest
// normalized rate in at least one saturated clique, otherwise the clique's
// top flows are asked down and the penalized link's primaries up.
func (e *Engine) testBandwidthCondition(snap *measure.Snapshot, reqs reqSet) {
	// Group virtual links by directed wireless link.
	byWLink := make(map[topology.Link][]*measure.VLinkState)
	for key, st := range snap.VLinks {
		wl := topology.Link{From: key.From, To: key.To}
		byWLink[wl] = append(byWLink[wl], st)
	}

	for wl, vlinks := range byWLink {
		// The bandwidth-saturated virtual link with the smallest
		// normalized rate is the one the condition protects.
		var worst *measure.VLinkState
		for _, st := range vlinks {
			if st.Type != measure.BandwidthSaturated || st.NormRate == 0 {
				continue
			}
			if worst == nil || st.NormRate < worst.NormRate {
				worst = st
			}
		}
		if worst == nil {
			continue
		}

		owners := e.cliques.Of(wl)
		if len(owners) == 0 {
			continue
		}
		// Saturated cliques: β-largest channel occupancy (§6.3).
		maxOcc := 0.0
		occ := make([]float64, len(owners))
		for i, c := range owners {
			for _, l := range c.Links {
				occ[i] += snap.UndirectedOccupancy(l)
			}
			if occ[i] > maxOcc {
				maxOcc = occ[i]
			}
		}
		var saturated []*clique.Clique
		for i, c := range owners {
			if e.eq(occ[i], maxOcc) {
				saturated = append(saturated, c)
			}
		}

		// Satisfied if worst's rate tops at least one saturated clique.
		topped := false
		l2 := 0.0
		for _, c := range saturated {
			cliqueMax := 0.0
			for _, l := range c.Links {
				if nr := snap.UndirectedNormRate(l); nr > cliqueMax {
					cliqueMax = nr
				}
			}
			if cliqueMax > l2 {
				l2 = cliqueMax
			}
			if worst.NormRate >= cliqueMax || e.eq(worst.NormRate, cliqueMax) {
				topped = true
				break
			}
		}
		if topped || l2 == 0 {
			continue
		}

		// Violation: ask the top flows of the saturated cliques down by β
		// and the penalized link's peers up by β (§6.3).
		if e.overloadNotifier != nil {
			for _, c := range saturated {
				e.markOverloaded(c.ID)
			}
		}
		down, up := 1-e.params.Beta, 1+e.params.Beta
		seen := make(map[topology.Link]bool)
		for _, c := range saturated {
			for _, l := range c.Links {
				for _, dir := range []topology.Link{l, l.Reverse()} {
					if seen[dir] {
						continue
					}
					seen[dir] = true
					for _, kv := range byWLink[dir] {
						if e.eq(kv.NormRate, l2) && kv.NormRate > 0 {
							reqs.addReduceAll(kv.Primaries, down)
							e.recordAll(kv.Primaries, kv.Key.From, obs.CondBandwidth, true, down, c.ID.String(), occ, maxOcc)
						}
						if kv.Type == measure.BandwidthSaturated && e.eq(kv.NormRate, worst.NormRate) {
							reqs.addIncreaseAll(kv.Primaries, up)
							e.recordAll(kv.Primaries, kv.Key.From, obs.CondBandwidth, false, up, c.ID.String(), occ, maxOcc)
						}
					}
				}
			}
		}
	}
}

// apply delivers the aggregated requests to the flow sources and runs the
// rate-limit condition (§6.3): limited flows with no request probe upward
// additively, and limits that are not binding are removed. A limit counts
// as "not binding" only while the flow's source queue is unsaturated: a
// backpressured source running below its limit is congested, not
// undemanding, and removing its limit would let it burst past its peers
// the moment congestion eases.
func (e *Engine) apply(reqs map[packet.FlowID]Request, rates []float64, snap *measure.Snapshot) {
	limits := make([]float64, e.registry.NumFlows())
	for i, src := range e.registry.Sources() {
		f := packet.FlowID(i)
		if src.Stopped() {
			// A departed churn flow's final partial period can still show
			// a nonzero rate crossing a saturated clique; installing a
			// limit on it would persist forever (the stale-limit bug).
			limits[i] = math.Inf(1)
			delete(e.slack, f)
			continue
		}
		spec := src.Spec()
		req, has := reqs[f]
		limit, limited := src.Limited()
		// before/action feed the telemetry limit timeline; -1 encodes
		// "no limit" (JSON-encodable, unlike +Inf).
		before := -1.0
		if limited {
			before = limit
		}
		var action obs.LimitAction
		switch {
		case has && req.Reduce:
			base := rates[i]
			if limited && limit < base {
				base = limit
			}
			src.SetLimit(base * req.Factor)
			action = obs.ActionReduce
		case has && !req.Reduce:
			if limited {
				src.SetLimit(limit * req.Factor)
				action = obs.ActionIncrease
			}
		default:
			if limited {
				// "Unnecessary" means the flow is not even touching its
				// constraint: it runs under the limit AND its source
				// queue is essentially never full. A queue full even a
				// modest fraction of the time (below the Ω classification
				// threshold) already throttles the source below its
				// limit, which must not be mistaken for low demand.
				const idleOmega = 0.05
				srcVNode := measure.VNodeID{Node: spec.Src, Queue: packet.QueueForDest(spec.Dst)}
				if rates[i] < limit*(1-e.params.Beta) && snap.Omega[srcVNode] < idleOmega {
					e.slack[f]++
					if e.slack[f] >= 2 {
						// The limit is persistently not binding: remove it.
						src.RemoveLimit()
						e.slack[f] = 0
						action = obs.ActionRemove
					}
				} else {
					e.slack[f] = 0
					src.SetLimit(limit + e.params.AdditiveIncrease)
					action = obs.ActionProbe
				}
			}
		}
		after := -1.0
		if l, ok := src.Limited(); ok {
			limits[i] = l
			after = l
		} else {
			limits[i] = math.Inf(1)
		}
		if action != "" {
			if e.rec != nil {
				e.rec.LimitChange(f, action, before, after)
				if action == obs.ActionProbe || action == obs.ActionRemove {
					// The rate-limit condition (§5.3 c4): a source with a
					// non-binding limit probes upward or sheds the limit.
					factor := 0.0
					if action == obs.ActionProbe && before > 0 && after > 0 {
						factor = after / before
					}
					e.rec.Condition(f, spec.Src, obs.CondRateLimit, false, factor)
				}
			}
			e.spans.LimitChange(f, spec.Src, string(action), before, after)
		}
	}
	round := Round{
		Time:            e.sched.Now(),
		Rates:           rates,
		Limits:          limits,
		Requests:        len(reqs),
		SaturatedVNodes: e.lastSat,
	}
	if e.faultProbe != nil {
		round.DownNodes = e.faultProbe()
	}
	e.trace = append(e.trace, round)
}
