package core

import (
	"testing"
	"time"

	"gmp/internal/clique"
	"gmp/internal/dissemination"
	"gmp/internal/flow"
	"gmp/internal/forwarding"
	"gmp/internal/mac"
	"gmp/internal/measure"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/scenario"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// distStack wires the full distributed runtime over a scenario with the
// out-of-band control bus.
type distStack struct {
	sched *sim.Scheduler
	reg   *flow.Registry
	dist  *Distributed
}

func newDistStack(t *testing.T, sc scenario.Scenario) *distStack {
	t.Helper()
	topo, err := sc.Topology()
	if err != nil {
		t.Fatal(err)
	}
	routes := routing.Build(topo)
	sched := sim.NewScheduler()
	master := sim.NewRand(1)
	medium := radio.NewMedium(sched, topo, radio.DefaultParams(), sim.NewRand(master.Int63()))
	reg, err := flow.NewRegistry(sc.Flows)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := forwarding.Config{
		Mode: forwarding.PerDestination, QueueSlots: 10,
		CongestionAvoidance: true, StaleAfter: 50 * time.Millisecond,
		RequeueOnFailure: true,
	}
	nodes := make([]*forwarding.Node, topo.NumNodes())
	for _, id := range topo.Nodes() {
		n := forwarding.NewNode(id, sched, fcfg, routes, reg.OnDeliver, reg.OnDrop)
		st := mac.NewStation(id, sched, medium, mac.DefaultConfig(), sim.NewRand(master.Int63()), n)
		n.SetMAC(st)
		nodes[id] = n
	}
	for _, spec := range sc.Flows {
		src := flow.NewSource(spec, sched, nodes[spec.Src], 4*time.Second, sim.NewRand(master.Int63()))
		reg.AttachSource(spec.ID, src)
		src.Start()
	}
	bus := dissemination.NewBus(topo)
	diss := make([]*dissemination.Agent, topo.NumNodes())
	for _, id := range topo.Nodes() {
		diss[id] = bus.NewAgent(id, topo)
	}
	board := measure.NewOccupancyBoard(medium, 4*time.Second)
	dist, err := StartDistributed(sched, topo, clique.Build(topo), board, nodes, diss,
		reg, DefaultParams(), sim.NewRand(master.Int63()))
	if err != nil {
		t.Fatal(err)
	}
	return &distStack{sched: sched, reg: reg, dist: dist}
}

func TestDistributedEqualizesFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	st := newDistStack(t, scenario.Fig3())
	st.sched.Run(300 * time.Second)
	st.reg.Mark(300 * time.Second)
	st.sched.Run(400 * time.Second)
	rates := st.reg.MeasuredRates(400 * time.Second)
	lo, hi := rates[0], rates[0]
	for _, r := range rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo <= 0 {
		t.Fatalf("a flow starved: %v", rates)
	}
	if lo/hi < 0.55 {
		t.Errorf("distributed GMP failed to equalize: %v (I_mm %.3f)", rates, lo/hi)
	}
}

func TestDistributedAgentsExchangeState(t *testing.T) {
	st := newDistStack(t, scenario.Fig3())
	st.sched.Run(20 * time.Second)
	// After a few periods, node 0's agent must know the state of link
	// (2,3) — two hops away — through dissemination.
	a0 := st.dist.Agents[0]
	if _, ok := a0.lsdb[topology.Link{From: 2, To: 3}]; !ok {
		t.Error("agent 0 missing two-hop link state")
	}
	// And the saturation bit of node 1's queue for destination 3.
	if _, ok := a0.satdb[measure.VNodeID{Node: 1, Queue: packet.QueueForDest(3)}]; !ok {
		t.Error("agent 0 missing neighbor vnode saturation bit")
	}
}

func TestDistributedViolationsFire(t *testing.T) {
	st := newDistStack(t, scenario.Fig2([4]float64{1, 1, 1, 1}))
	st.sched.Run(120 * time.Second)
	// Node 1 hosts the structurally starved flow f2: its agent must have
	// originated bandwidth-condition violations.
	if st.dist.Agents[1].Violations() == 0 {
		t.Error("agent 1 never flagged the bandwidth-saturated condition")
	}
	// Other agents must have processed them.
	processed := int64(0)
	for _, a := range st.dist.Agents {
		processed += a.ViolationsReceived()
	}
	if processed == 0 {
		t.Error("no agent processed a violation")
	}
}

func TestDistributedTraceRecorded(t *testing.T) {
	st := newDistStack(t, scenario.Fig3())
	st.sched.Run(40 * time.Second)
	trace := st.dist.Trace()
	if len(trace) < 8 {
		t.Fatalf("trace rounds = %d, want ~10", len(trace))
	}
	if len(trace[0].Rates) != 3 {
		t.Errorf("trace rates per round = %d, want 3", len(trace[0].Rates))
	}
}

func TestNewAgentValidation(t *testing.T) {
	sc := scenario.Fig3()
	topo, err := sc.Topology()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewAgent(0, sim.NewScheduler(), topo, clique.Build(topo), nil, nil, nil, DefaultParams(), nil)
	if err == nil {
		t.Error("nil deliver accepted")
	}
	bad := DefaultParams()
	bad.Beta = 0
	_, err = NewAgent(0, sim.NewScheduler(), topo, clique.Build(topo), nil, nil, nil, bad, func(packet.FlowID, Request) {})
	if err == nil {
		t.Error("invalid params accepted")
	}
}
