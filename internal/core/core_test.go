package core

import (
	"math"
	"testing"
	"time"

	"gmp/internal/clique"
	"gmp/internal/flow"
	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/measure"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Period: 0, Beta: 0.1, OmegaThreshold: 0.25, AdditiveIncrease: 2, HalveGap: 3},
		{Period: time.Second, Beta: 0, OmegaThreshold: 0.25, AdditiveIncrease: 2, HalveGap: 3},
		{Period: time.Second, Beta: 1, OmegaThreshold: 0.25, AdditiveIncrease: 2, HalveGap: 3},
		{Period: time.Second, Beta: 0.1, OmegaThreshold: 0, AdditiveIncrease: 2, HalveGap: 3},
		{Period: time.Second, Beta: 0.1, OmegaThreshold: 0.25, AdditiveIncrease: 0, HalveGap: 3},
		{Period: time.Second, Beta: 0.1, OmegaThreshold: 0.25, AdditiveIncrease: 2, HalveGap: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestBetaEquality(t *testing.T) {
	e := &Engine{params: Params{Beta: 0.10}}
	tests := []struct {
		a, b float64
		want bool
	}{
		{100, 100, true},
		{100, 91, true},   // 9% below
		{100, 89, false},  // 11% below
		{91, 100, true},   // symmetric
		{0, 0, true},      // degenerate
		{0, 1, false},     // zero vs positive
		{1000, 905, true}, // scales with magnitude
	}
	for _, tt := range tests {
		if got := e.eq(tt.a, tt.b); got != tt.want {
			t.Errorf("eq(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRequestAggregation(t *testing.T) {
	r := make(reqSet)
	// Increases keep the smallest factor.
	r.addIncrease(0, 2.0)
	r.addIncrease(0, 1.1)
	if req := r[0]; req.Reduce || req.Factor != 1.1 {
		t.Errorf("increase aggregation = %+v", req)
	}
	r.addIncrease(0, 1.5)
	if req := r[0]; req.Factor != 1.1 {
		t.Errorf("larger increase overwrote smaller: %+v", req)
	}
	// A reduction overrides any increase.
	r.addReduce(0, 0.9)
	if req := r[0]; !req.Reduce || req.Factor != 0.9 {
		t.Errorf("reduce did not override: %+v", req)
	}
	// Later increases cannot displace a reduction.
	r.addIncrease(0, 1.1)
	if req := r[0]; !req.Reduce {
		t.Errorf("increase displaced a reduction: %+v", req)
	}
	// Among reductions the largest cut (smallest factor) wins.
	r.addReduce(0, 0.5)
	if req := r[0]; req.Factor != 0.5 {
		t.Errorf("reduce aggregation = %+v", req)
	}
	r.addReduce(0, 0.9)
	if req := r[0]; req.Factor != 0.5 {
		t.Errorf("weaker reduce overwrote stronger: %+v", req)
	}
}

func TestAddAllHelpers(t *testing.T) {
	r := make(reqSet)
	flows := map[packet.FlowID]topology.NodeID{1: 10, 2: 20}
	r.addReduceAll(flows, 0.9)
	if len(r) != 2 || !r[1].Reduce || !r[2].Reduce {
		t.Errorf("addReduceAll = %v", r)
	}
	r2 := make(reqSet)
	r2.addIncreaseAll(flows, 1.1)
	if len(r2) != 2 || r2[1].Reduce {
		t.Errorf("addIncreaseAll = %v", r2)
	}
}

// engineHarness wires a minimal two-node network with one flow so apply()
// can be exercised against real sources.
type engineHarness struct {
	sched  *sim.Scheduler
	engine *Engine
	reg    *flow.Registry
	src    *flow.Source
}

func newEngineHarness(t *testing.T) *engineHarness {
	t.Helper()
	pos := []geom.Point{{X: 0}, {X: 200}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	routes := routing.Build(topo)
	node := forwarding.NewNode(0, sched, forwarding.DefaultConfig(), routes, nil, nil)
	specs := []flow.Spec{{ID: 0, Src: 0, Dst: 1, Weight: 1, DesiredRate: 800, SizeBytes: 1024}}
	reg, err := flow.NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	src := flow.NewSource(specs[0], sched, node, 4*time.Second, sim.NewRand(1))
	reg.AttachSource(0, src)

	medium := radio.NewMedium(sched, topo, radio.DefaultParams(), sim.NewRand(2))
	collector := measure.NewCollector([]*forwarding.Node{node}, medium, 0.25)
	engine, err := NewEngine(sched, topo, clique.Build(topo), reg, collector, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &engineHarness{sched: sched, engine: engine, reg: reg, src: src}
}

func emptySnap() *measure.Snapshot {
	return &measure.Snapshot{
		Omega:     map[measure.VNodeID]float64{},
		Saturated: map[measure.VNodeID]bool{},
		VLinks:    map[forwarding.VLinkKey]*measure.VLinkState{},
		WLinks:    map[topology.Link]*measure.WLinkState{},
	}
}

func TestApplyReduceSetsLimitFromRate(t *testing.T) {
	h := newEngineHarness(t)
	reqs := map[packet.FlowID]Request{0: {Reduce: true, Factor: 0.5}}
	h.engine.apply(reqs, []float64{200}, emptySnap())
	limit, ok := h.src.Limited()
	if !ok || math.Abs(limit-100) > 1e-9 {
		t.Errorf("limit = %v,%v; want 100", limit, ok)
	}
}

func TestApplyReduceUsesTighterOfRateAndLimit(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(50)
	reqs := map[packet.FlowID]Request{0: {Reduce: true, Factor: 0.9}}
	h.engine.apply(reqs, []float64{200}, emptySnap())
	limit, _ := h.src.Limited()
	if math.Abs(limit-45) > 1e-9 {
		t.Errorf("limit = %v, want 45 (0.9 x min(200, 50))", limit)
	}
}

func TestApplyIncreaseScalesLimit(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(100)
	reqs := map[packet.FlowID]Request{0: {Factor: 1.1}}
	h.engine.apply(reqs, []float64{100}, emptySnap())
	limit, _ := h.src.Limited()
	if math.Abs(limit-110) > 1e-9 {
		t.Errorf("limit = %v, want 110", limit)
	}
}

func TestApplyIncreaseNoOpWhenUnlimited(t *testing.T) {
	h := newEngineHarness(t)
	reqs := map[packet.FlowID]Request{0: {Factor: 2}}
	h.engine.apply(reqs, []float64{100}, emptySnap())
	if _, ok := h.src.Limited(); ok {
		t.Error("increase created a limit out of nothing")
	}
}

func TestRateLimitConditionAdditiveIncrease(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(100)
	snap := emptySnap()
	// Running at the limit: probe upward by the additive step.
	h.engine.apply(nil, []float64{99}, snap)
	limit, _ := h.src.Limited()
	want := 100 + DefaultParams().AdditiveIncrease
	if math.Abs(limit-want) > 1e-9 {
		t.Errorf("limit = %v, want %v", limit, want)
	}
}

func TestUnnecessaryLimitRemovedAfterTwoSlackRounds(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(100)
	snap := emptySnap() // source queue idle (omega 0)
	h.engine.apply(nil, []float64{50}, snap)
	if _, ok := h.src.Limited(); !ok {
		t.Fatal("limit removed after a single slack round")
	}
	h.engine.apply(nil, []float64{50}, snap)
	if _, ok := h.src.Limited(); ok {
		t.Error("limit not removed after two slack rounds")
	}
}

func TestLimitKeptWhileSourceQueueSaturated(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(100)
	snap := emptySnap()
	v := measure.VNodeID{Node: 0, Queue: packet.QueueForDest(1)}
	snap.Omega[v] = 0.5
	snap.Saturated[v] = true
	for i := 0; i < 5; i++ {
		h.engine.apply(nil, []float64{50}, snap)
	}
	if _, ok := h.src.Limited(); !ok {
		t.Error("limit removed while the source was backpressured")
	}
}

func TestSlackCounterResets(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(100)
	idle := emptySnap()
	h.engine.apply(nil, []float64{50}, idle) // slack 1
	h.engine.apply(nil, []float64{99}, idle) // at limit: resets slack
	h.engine.apply(nil, []float64{50}, idle) // slack 1 again
	if _, ok := h.src.Limited(); !ok {
		t.Error("limit removed despite the slack streak being broken")
	}
}

func TestTraceRecordsRounds(t *testing.T) {
	h := newEngineHarness(t)
	h.src.SetLimit(100)
	h.engine.apply(nil, []float64{100}, emptySnap())
	trace := h.engine.Trace()
	if len(trace) != 1 {
		t.Fatalf("trace rounds = %d, want 1", len(trace))
	}
	if len(trace[0].Rates) != 1 || trace[0].Rates[0] != 100 {
		t.Errorf("trace rates = %v", trace[0].Rates)
	}
	if math.IsInf(trace[0].Limits[0], 1) {
		t.Error("limit missing from trace")
	}
}

func TestEvaluateSourceConditionGeneratesRequests(t *testing.T) {
	h := newEngineHarness(t)
	// Craft a snapshot: virtual node 0_1 saturated; a local flow at
	// mu=100 and a buffer-saturated upstream link at mu=10. The engine
	// must ask the local flow down and the upstream primary up.
	snap := emptySnap()
	q := packet.QueueForDest(1)
	v := measure.VNodeID{Node: 0, Queue: q}
	snap.Saturated[v] = true
	snap.Omega[v] = 0.9
	up := &measure.VLinkState{
		Key:       forwarding.VLinkKey{From: 1, To: 0, Queue: q},
		Rate:      10,
		NormRate:  10,
		Primaries: map[packet.FlowID]topology.NodeID{5: 1},
		Type:      measure.BufferSaturated,
	}
	snap.VLinks[up.Key] = up
	snap.InsertUpstream(v, up)

	// The local flow's source must report mu=100: fabricate by running
	// a period at 100 pps.
	h.sched.Run(time.Millisecond)
	// flow.Source has no setter for normRate; drive via EndPeriod with a
	// synthetic count is not possible either. Instead rely on the
	// engine reading NormRate() == 0 for the local flow, making the
	// upstream link (mu=10) the L1 candidate: L1=10, S1=10 -> satisfied.
	// So instead give the upstream a big mu and check the reduce lands
	// on its primary flow 5.
	up.NormRate = 100
	up2 := &measure.VLinkState{
		Key:       forwarding.VLinkKey{From: 2, To: 0, Queue: q},
		Rate:      10,
		NormRate:  10,
		Primaries: map[packet.FlowID]topology.NodeID{6: 2},
		Type:      measure.BufferSaturated,
	}
	snap.VLinks[up2.Key] = up2
	snap.InsertUpstream(v, up2)

	reqs := h.engine.evaluate(snap)
	if req, ok := reqs[5]; !ok || !req.Reduce {
		t.Errorf("primary of the fat upstream link not reduced: %v", reqs)
	}
	if req, ok := reqs[6]; !ok || req.Reduce {
		t.Errorf("primary of the starved upstream link not increased: %v", reqs)
	}
	// Gap 100:10 exceeds HalveGap: expect halve/double.
	if reqs[5].Factor != 0.5 || reqs[6].Factor != 2 {
		t.Errorf("factors = %v / %v, want 0.5 / 2", reqs[5].Factor, reqs[6].Factor)
	}
}

func TestEvaluateBandwidthConditionGeneratesRequests(t *testing.T) {
	// Two contending links on the chain 0-1-2-3 (one clique): link (2,3)
	// bandwidth-saturated at mu=10 while link (0,1) carries mu=100.
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	routes := routing.Build(topo)
	node := forwarding.NewNode(0, sched, forwarding.DefaultConfig(), routes, nil, nil)
	specs := []flow.Spec{{ID: 0, Src: 0, Dst: 1, Weight: 1, DesiredRate: 800, SizeBytes: 1024}}
	reg, err := flow.NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	reg.AttachSource(0, flow.NewSource(specs[0], sched, node, 4*time.Second, sim.NewRand(1)))
	medium := radio.NewMedium(sched, topo, radio.DefaultParams(), sim.NewRand(2))
	collector := measure.NewCollector([]*forwarding.Node{node}, medium, 0.25)
	engine, err := NewEngine(sched, topo, clique.Build(topo), reg, collector, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	snap := emptySnap()
	q1 := packet.QueueForDest(1)
	q3 := packet.QueueForDest(3)
	fat := &measure.VLinkState{
		Key:       forwarding.VLinkKey{From: 0, To: 1, Queue: q1},
		NormRate:  100,
		Primaries: map[packet.FlowID]topology.NodeID{0: 0},
		Type:      measure.BandwidthSaturated,
	}
	starved := &measure.VLinkState{
		Key:       forwarding.VLinkKey{From: 2, To: 3, Queue: q3},
		NormRate:  10,
		Primaries: map[packet.FlowID]topology.NodeID{7: 2},
		Type:      measure.BandwidthSaturated,
	}
	snap.VLinks[fat.Key] = fat
	snap.VLinks[starved.Key] = starved
	snap.WLinks[topology.Link{From: 0, To: 1}] = &measure.WLinkState{
		Link: topology.Link{From: 0, To: 1}, Occupancy: 0.4, NormRate: 100,
	}
	snap.WLinks[topology.Link{From: 2, To: 3}] = &measure.WLinkState{
		Link: topology.Link{From: 2, To: 3}, Occupancy: 0.3, NormRate: 10,
	}

	reqs := engine.evaluate(snap)
	if req, ok := reqs[0]; !ok || !req.Reduce {
		t.Errorf("clique-topping flow not reduced: %v", reqs)
	}
	if req, ok := reqs[7]; !ok || req.Reduce {
		t.Errorf("starved bandwidth-saturated flow not increased: %v", reqs)
	}
}
