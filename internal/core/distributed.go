// Distributed runtime: the same four local conditions as the central
// Engine, but executed the way §6 describes — one Agent per node, acting
// only on information a real node has:
//
//   - its own queues' buffer-full fractions Ω and its local flow sources;
//   - sender- and receiver-side virtual-link meters learned from the
//     packets themselves (rates, normalized rates, primary-flow sources);
//   - neighbors' per-queue saturation bits and two-hop link state
//     (normalized rate and channel occupancy per wireless link) received
//     through the in-band dissemination protocol of §6.2 step 2 —
//     broadcasts plus dominating-set relays that consume real airtime
//     and can be lost to collisions;
//   - bandwidth-saturated-condition violations flooded two hops (§6.3)
//     as further in-band broadcasts.
//
// Only two simplifications remain relative to a deployment: the
// end-of-period control packet that carries a flow's aggregated rate
// adjustment request along its route is delivered instantly and without
// airtime (DESIGN.md substitution 3), and channel occupancy is sampled
// from a shared board that agents read only for their adjacent links
// (a real node measures those locally).

package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"gmp/internal/clique"
	"gmp/internal/dissemination"
	"gmp/internal/flow"
	"gmp/internal/forwarding"
	"gmp/internal/measure"
	"gmp/internal/obs"
	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
)

// linkStateRecord is one disseminated wireless-link state (§6.2: "the
// normalized rate and the channel occupancy of a wireless link").
type linkStateRecord struct {
	Link      topology.Link
	Occupancy float64
	Mu        float64
}

// vnodeRecord carries one virtual node's period-level buffer state
// (the "saturated or not" bit of §6.2).
type vnodeRecord struct {
	Queue     packet.QueueID
	Saturated bool
}

// stateRecords is an agent's per-period dissemination payload.
type stateRecords struct {
	Links  []linkStateRecord
	VNodes []vnodeRecord
}

// violationMsg floods a bandwidth-saturated-condition violation to the
// two-hop neighborhood (§6.3): nodes with links in the listed saturated
// cliques respond by adjusting their primary flows. The paper requires
// the information to reach two hops from *either* endpoint of the
// violating link, so the To endpoint re-floods first-hand copies.
type violationMsg struct {
	Link    topology.Link
	L2      float64
	MuStar  float64
	Cliques []clique.ID
	// Refloods counts how many endpoint re-floods this copy went
	// through (at most one, by the To endpoint).
	Refloods int
}

// Agent is one node's GMP instance in the distributed runtime.
type Agent struct {
	id     topology.NodeID
	params Params
	sched  *sim.Scheduler
	topo   *topology.Topology
	node   *forwarding.Node
	diss   *dissemination.Agent
	board  *measure.OccupancyBoard

	// myCliques holds, per adjacent outgoing link, the cliques that
	// contain it (precomputed from two-hop topology, §6.3).
	myCliques map[topology.Link][]*clique.Clique
	// cliqueByID resolves clique identifiers from violation messages;
	// only cliques touching this node's two-hop neighborhood resolve.
	cliqueByID map[clique.ID]*clique.Clique

	localFlows   []flow.Spec
	localSources []*flow.Source

	// deliver hands an aggregated rate adjustment request to a flow's
	// source agent (the end-of-period control packet walk).
	deliver func(f packet.FlowID, req Request)

	lsdb  map[topology.Link]linkStateRecord
	satdb map[measure.VNodeID]bool

	outMeters map[forwarding.VLinkKey]*forwarding.VLinkMeter
	inMeters  map[forwarding.VLinkKey]*forwarding.VLinkMeter
	saturated map[packet.QueueID]bool
	rates     map[packet.FlowID]float64

	pending reqSet
	slack   map[packet.FlowID]int

	violations int64 // bandwidth-condition violations originated (stats)
	vReceived  int64 // violation messages processed (stats)

	// rec is the telemetry recorder (nil when telemetry is off).
	rec *obs.Recorder
	// spans is the causal-trace recorder (nil when tracing is off).
	spans *span.Recorder
}

// ViolationsReceived reports processed violation messages.
func (a *Agent) ViolationsReceived() int64 { return a.vReceived }

// Violations reports how many bandwidth-saturated-condition violations
// this agent originated.
func (a *Agent) Violations() int64 { return a.violations }

// NewAgent builds the GMP agent for one node of the distributed runtime.
func NewAgent(id topology.NodeID, sched *sim.Scheduler, topo *topology.Topology, cliques *clique.Set,
	node *forwarding.Node, diss *dissemination.Agent, board *measure.OccupancyBoard,
	params Params, deliver func(packet.FlowID, Request)) (*Agent, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("core: agent %d needs a request delivery path", id)
	}
	a := &Agent{
		id:         id,
		params:     params,
		sched:      sched,
		topo:       topo,
		node:       node,
		diss:       diss,
		board:      board,
		myCliques:  make(map[topology.Link][]*clique.Clique),
		cliqueByID: make(map[clique.ID]*clique.Clique),
		deliver:    deliver,
		lsdb:       make(map[topology.Link]linkStateRecord),
		satdb:      make(map[measure.VNodeID]bool),
		pending:    make(reqSet),
		slack:      make(map[packet.FlowID]int),
		rates:      make(map[packet.FlowID]float64),
	}
	a.RefreshCliques(cliques)
	diss.SetUpdateHandler(a.onDissemination)
	return a, nil
}

// RefreshCliques rebuilds the agent's local clique views — the cliques
// owning each adjacent outgoing link and the identifier resolution map —
// from a new decomposition after node motion changed the topology.
func (a *Agent) RefreshCliques(cliques *clique.Set) {
	a.myCliques = make(map[topology.Link][]*clique.Clique)
	a.cliqueByID = make(map[clique.ID]*clique.Clique)
	for _, nb := range a.topo.Neighbors(a.id) {
		l := topology.Link{From: a.id, To: nb}
		owners := cliques.Of(l)
		a.myCliques[l] = owners
		for _, c := range owners {
			a.cliqueByID[c.ID] = c
		}
	}
}

// AttachLocalFlow registers a flow originating at this node.
func (a *Agent) AttachLocalFlow(spec flow.Spec, src *flow.Source) {
	if spec.Src != a.id {
		panic(fmt.Sprintf("core: flow %d (src %d) attached to agent %d", spec.ID, spec.Src, a.id))
	}
	a.localFlows = append(a.localFlows, spec)
	a.localSources = append(a.localSources, src)
}

// Enqueue records an incoming rate adjustment request for a local flow
// (the delivery side of the control packet), applying §6.3's
// aggregation rule.
func (a *Agent) Enqueue(f packet.FlowID, req Request) {
	if req.Reduce {
		a.pending.addReduce(f, req.Factor)
	} else {
		a.pending.addIncrease(f, req.Factor)
	}
}

// Start schedules the agent's period boundaries; offset desynchronizes
// nodes ("loosely synchronized clocks", §6.1).
func (a *Agent) Start(offset time.Duration) {
	a.sched.After(a.params.Period+offset, a.onBoundary)
}

func (a *Agent) onBoundary() {
	a.measure()
	a.applyPending()
	a.broadcastState()
	a.evaluate()
	a.sched.After(a.params.Period, a.onBoundary)
}

// measure closes the local measurement period (§6.2 step 1).
func (a *Agent) measure() {
	a.outMeters = a.node.TakeMeters()
	a.inMeters = a.node.TakeReceived()
	a.saturated = make(map[packet.QueueID]bool)
	for _, qid := range a.node.Queues() {
		omega := a.node.FullFraction(qid, a.params.Period)
		if omega >= a.params.OmegaThreshold {
			a.saturated[qid] = true
		}
	}
	// Limit pressure (see augmentWithLimitPressure): a binding rate
	// limit keeps the paper's source buffer full.
	for i, src := range a.localSources {
		limit, limited := src.Limited()
		if !limited {
			continue
		}
		if src.LastPeriodRate() >= limit*(1-a.params.Beta) {
			a.saturated[packet.QueueForDest(a.localFlows[i].Dst)] = true
		}
	}
	for i, src := range a.localSources {
		a.rates[a.localFlows[i].ID] = src.EndPeriod()
	}
}

// applyPending delivers the aggregated requests to the local sources and
// runs the rate-limit condition (§6.3).
func (a *Agent) applyPending() {
	for i, src := range a.localSources {
		f := a.localFlows[i].ID
		if src.Stopped() {
			// Never install a limit on a departed flow: its final
			// partial period's rate would freeze into a stale limit.
			delete(a.slack, f)
			continue
		}
		req, has := a.pending[f]
		limit, limited := src.Limited()
		rate := a.rates[f]
		before := -1.0
		if limited {
			before = limit
		}
		var action obs.LimitAction
		switch {
		case has && req.Reduce:
			base := rate
			if limited && limit < base {
				base = limit
			}
			src.SetLimit(base * req.Factor)
			action = obs.ActionReduce
		case has && !req.Reduce:
			if limited {
				src.SetLimit(limit * req.Factor)
				action = obs.ActionIncrease
			}
		default:
			if limited {
				const idleOmega = 0.05
				if rate < limit*(1-a.params.Beta) && a.node.FullFraction(packet.QueueForDest(a.localFlows[i].Dst), a.params.Period) < idleOmega && !a.saturated[packet.QueueForDest(a.localFlows[i].Dst)] {
					a.slack[f]++
					if a.slack[f] >= 2 {
						src.RemoveLimit()
						a.slack[f] = 0
						action = obs.ActionRemove
					}
				} else {
					a.slack[f] = 0
					src.SetLimit(limit + a.params.AdditiveIncrease)
					action = obs.ActionProbe
				}
			}
		}
		if action != "" {
			after := -1.0
			if l, ok := src.Limited(); ok {
				after = l
			}
			if a.rec != nil {
				a.rec.LimitChange(f, action, before, after)
				if action == obs.ActionProbe || action == obs.ActionRemove {
					factor := 0.0
					if action == obs.ActionProbe && before > 0 && after > 0 {
						factor = after / before
					}
					a.rec.Condition(f, a.id, obs.CondRateLimit, false, factor)
				}
			}
			a.spans.LimitChange(f, a.id, string(action), before, after)
		}
	}
	a.pending = make(reqSet)
}

// broadcastState floods this node's measured link state and vnode bits
// to the two-hop neighborhood via the in-band dissemination layer. Both
// directions of every adjacent link are included (the sender direction
// from the node's own meters, the incoming direction from its
// receiver-side meters), which realizes the paper's requirement that a
// link's state reach every node within two hops of *either* endpoint —
// each endpoint's flood covers its own side.
func (a *Agent) broadcastState() {
	var recs stateRecords
	for _, nb := range a.topo.Neighbors(a.id) {
		out := topology.Link{From: a.id, To: nb}
		recs.Links = append(recs.Links, linkStateRecord{
			Link:      out,
			Occupancy: a.board.Fraction(out),
			Mu:        a.linkMu(out),
		})
		in := out.Reverse()
		recs.Links = append(recs.Links, linkStateRecord{
			Link:      in,
			Occupancy: a.board.Fraction(in),
			Mu:        a.inboundMu(in),
		})
	}
	for qid, sat := range a.saturated {
		recs.VNodes = append(recs.VNodes, vnodeRecord{Queue: qid, Saturated: sat})
	}
	a.diss.Broadcast(recs, len(recs.Links)+len(recs.VNodes))
}

// inboundMu is the largest normalized rate this node observed on an
// incoming wireless link (receiver-side meters, §6.2: both endpoints of
// a virtual link learn its normalized rate from the packets).
func (a *Agent) inboundMu(l topology.Link) float64 {
	mu := 0.0
	for key, m := range a.inMeters {
		if key.From == l.From && key.To == l.To && m.Primary.NormRate > mu {
			mu = m.Primary.NormRate
		}
	}
	return mu
}

// linkMu is the largest normalized rate among the virtual links this
// node sends on wireless link l (§4.2, measured from passing packets).
func (a *Agent) linkMu(l topology.Link) float64 {
	mu := 0.0
	for key, m := range a.outMeters {
		if key.From == l.From && key.To == l.To && m.Primary.NormRate > mu {
			mu = m.Primary.NormRate
		}
	}
	return mu
}

// onDissemination handles accepted broadcasts: link-state records update
// the local databases; violation floods trigger §6.3's response.
func (a *Agent) onDissemination(origin topology.NodeID, records any) {
	switch recs := records.(type) {
	case stateRecords:
		for _, r := range recs.Links {
			a.lsdb[r.Link] = r
		}
		for _, v := range recs.VNodes {
			a.satdb[measure.VNodeID{Node: origin, Queue: v.Queue}] = v.Saturated
		}
	case violationMsg:
		a.onViolation(recs)
	case int:
		// Plain overhead-measurement broadcasts (Run's InBandControl
		// without the distributed runtime) carry record counts only.
	default:
		panic(fmt.Sprintf("core: agent %d received unknown records %T", a.id, records))
	}
}

func (a *Agent) eq(x, y float64) bool {
	m := math.Max(math.Abs(x), math.Abs(y))
	return math.Abs(x-y) <= a.params.Beta*m
}

// vnodeSaturated resolves a virtual node's saturation bit: own queues
// from local measurement, neighbors' from the disseminated bits. The
// final destination consumes instantly and is never saturated.
func (a *Agent) vnodeSaturated(v measure.VNodeID) bool {
	if v.Node == a.id {
		return a.saturated[v.Queue]
	}
	if packet.QueueForDest(v.Node) == v.Queue {
		return false
	}
	return a.satdb[v]
}

// vlinkType classifies a virtual link by the §3.2 rules.
func (a *Agent) vlinkType(key forwarding.VLinkKey) measure.LinkType {
	sender := measure.VNodeID{Node: key.From, Queue: key.Queue}
	receiver := measure.VNodeID{Node: key.To, Queue: key.Queue}
	switch {
	case !a.vnodeSaturated(sender):
		return measure.Unsaturated
	case a.vnodeSaturated(receiver):
		return measure.BufferSaturated
	default:
		return measure.BandwidthSaturated
	}
}

// evaluate runs conditions 1-3 on this node's view (§6.3).
func (a *Agent) evaluate() {
	a.testSourceAndBuffer()
	a.testBandwidth()
}

// testSourceAndBuffer checks the source and buffer-saturated conditions
// at every saturated virtual node owned by this node, using the
// receiver-side meters for upstream links.
func (a *Agent) testSourceAndBuffer() {
	for _, qid := range a.node.Queues() {
		if !a.saturated[qid] {
			continue
		}
		var ups []*forwarding.VLinkMeter
		var upKeys []forwarding.VLinkKey
		for key, m := range a.inMeters {
			if key.Queue == qid && key.To == a.id {
				ups = append(ups, m)
				upKeys = append(upKeys, key)
			}
		}
		l1 := 0.0
		s1 := math.Inf(1)
		for i, up := range ups {
			mu := up.Primary.NormRate
			if mu > l1 {
				l1 = mu
			}
			if a.vlinkType(upKeys[i]) == measure.BufferSaturated && mu > 0 && mu < s1 {
				s1 = mu
			}
		}
		var localMu []float64
		for i := range a.localFlows {
			if packet.QueueForDest(a.localFlows[i].Dst) != qid {
				localMu = append(localMu, -1)
				continue
			}
			mu := a.localSources[i].NormRate()
			localMu = append(localMu, mu)
			if mu == 0 {
				continue
			}
			if mu > l1 {
				l1 = mu
			}
			if mu < s1 {
				s1 = mu
			}
		}
		if math.IsInf(s1, 1) || l1 == 0 || a.eq(s1, l1) {
			continue
		}
		wide := l1 > a.params.HalveGap*s1
		down, up := 1-a.params.Beta, 1+a.params.Beta
		if wide {
			down, up = 0.5, 2
		}
		// Telemetry attribution: the source condition when this queue
		// hosts local flow sources, the buffer-saturated one otherwise.
		cond := obs.CondBuffer
		for i := range a.localFlows {
			if packet.QueueForDest(a.localFlows[i].Dst) == qid {
				cond = obs.CondSource
				break
			}
		}
		for i, upm := range ups {
			mu := upm.Primary.NormRate
			if a.eq(mu, l1) {
				a.deliverAll(upm.Primary.Flows, Request{Reduce: true, Factor: down}, cond, "")
			}
			if a.vlinkType(upKeys[i]) == measure.BufferSaturated && a.eq(mu, s1) {
				a.deliverAll(upm.Primary.Flows, Request{Factor: up}, cond, "")
			}
		}
		for i := range a.localFlows {
			mu := localMu[i]
			if mu <= 0 {
				continue
			}
			f := a.localFlows[i].ID
			if a.eq(mu, l1) {
				if a.rec != nil {
					a.rec.Condition(f, a.id, cond, true, down)
				}
				a.spans.Condition(f, a.id, cond.String(), true, down, "", nil, 0)
				a.deliver(f, Request{Reduce: true, Factor: down})
			}
			if _, limited := a.localSources[i].Limited(); limited && a.eq(mu, s1) {
				if a.rec != nil {
					a.rec.Condition(f, a.id, cond, false, up)
				}
				a.spans.Condition(f, a.id, cond.String(), false, up, "", nil, 0)
				a.deliver(f, Request{Factor: up})
			}
		}
	}
}

// testBandwidth checks the bandwidth-saturated condition for every
// adjacent outgoing wireless link and floods a violation when found.
func (a *Agent) testBandwidth() {
	for _, nb := range a.topo.Neighbors(a.id) {
		wl := topology.Link{From: a.id, To: nb}
		var worstMu float64 = math.Inf(1)
		found := false
		for key, m := range a.outMeters {
			if key.From != wl.From || key.To != wl.To {
				continue
			}
			if a.vlinkType(key) != measure.BandwidthSaturated {
				continue
			}
			if mu := m.Primary.NormRate; mu > 0 && mu < worstMu {
				worstMu = mu
				found = true
			}
		}
		if !found {
			continue
		}
		owners := a.myCliques[wl]
		if len(owners) == 0 {
			continue
		}
		maxOcc := 0.0
		occ := make([]float64, len(owners))
		for i, c := range owners {
			for _, l := range c.Links {
				occ[i] += a.occupancyOf(l) + a.occupancyOf(l.Reverse())
			}
			if occ[i] > maxOcc {
				maxOcc = occ[i]
			}
		}
		var saturated []*clique.Clique
		for i, c := range owners {
			if a.eq(occ[i], maxOcc) {
				saturated = append(saturated, c)
			}
		}
		// Toppedness is judged with a doubled tolerance: the remote
		// normalized rates in this view are a dissemination round stale,
		// and an originator that keeps crying wolf inside the noise band
		// feeds a see-saw of increases that blocks the joint ratchet
		// toward the condition's fixed point.
		topped := false
		l2 := 0.0
		for _, c := range saturated {
			cliqueMax := 0.0
			for _, l := range c.Links {
				if mu := a.muOf(l); mu > cliqueMax {
					cliqueMax = mu
				}
			}
			if cliqueMax > l2 {
				l2 = cliqueMax
			}
			if worstMu >= cliqueMax*(1-2*a.params.Beta) {
				topped = true
				break
			}
		}
		if topped || l2 == 0 {
			continue
		}
		ids := make([]clique.ID, len(saturated))
		for i, c := range saturated {
			ids[i] = c.ID
		}
		msg := violationMsg{Link: wl, L2: l2, MuStar: worstMu, Cliques: ids}
		a.violations++
		a.diss.Broadcast(msg, 2+len(ids))
		a.onViolation(msg) // the originator reacts too
	}
}

// occupancyOf reads a directed link's channel occupancy: locally for
// adjacent links, from the dissemination database otherwise.
func (a *Agent) occupancyOf(l topology.Link) float64 {
	if l.From == a.id || l.To == a.id {
		return a.board.Fraction(l)
	}
	return a.lsdb[l].Occupancy
}

// muOf reads a wireless link's normalized rate (max of both directions).
func (a *Agent) muOf(l topology.Link) float64 {
	best := 0.0
	for _, dir := range []topology.Link{l, l.Reverse()} {
		if dir.From == a.id {
			if mu := a.linkMu(dir); mu > best {
				best = mu
			}
		} else if rec, ok := a.lsdb[dir]; ok && rec.Mu > best {
			best = rec.Mu
		}
	}
	return best
}

// onViolation implements §6.3's response to a bandwidth-condition
// violation: every node with a wireless link in one of the saturated
// cliques adjusts the primary flows of its virtual links. The To
// endpoint of the violating link re-floods the message once so it
// reaches two hops from either endpoint.
func (a *Agent) onViolation(v violationMsg) {
	a.vReceived++
	if a.id == v.Link.To && v.Refloods == 0 {
		reflood := v
		reflood.Refloods = 1
		a.diss.Broadcast(reflood, 2+len(v.Cliques))
	}
	for _, id := range v.Cliques {
		c, ok := a.cliqueByID[id]
		if !ok {
			continue // clique outside this node's two-hop knowledge
		}
		// The originator's L2 is a dissemination round stale, so exact
		// matching against it misses moving targets. Each receiver
		// instead judges toppedness with its own freshest view of the
		// clique: reduce own primaries at (or within β of) the local
		// maximum, and raise own bandwidth-saturated links at or below
		// the starved rate μ*. Both rules are monotone toward the
		// bandwidth-saturated condition's fixed point.
		localMax := 0.0
		for _, l := range c.Links {
			if mu := a.muOf(l); mu > localMax {
				localMax = mu
			}
		}
		if localMax == 0 {
			continue
		}
		for _, l := range c.Links {
			for _, dir := range []topology.Link{l, l.Reverse()} {
				if dir.From != a.id {
					continue
				}
				for key, m := range a.outMeters {
					if key.From != dir.From || key.To != dir.To {
						continue
					}
					mu := m.Primary.NormRate
					if mu > 0 && mu >= localMax*(1-a.params.Beta) && mu > v.MuStar*(1+a.params.Beta) {
						a.deliverAll(m.Primary.Flows, Request{Reduce: true, Factor: 1 - a.params.Beta}, obs.CondBandwidth, id.String())
					}
					if a.vlinkType(key) == measure.BandwidthSaturated && mu > 0 && mu <= v.MuStar*(1+a.params.Beta) {
						a.deliverAll(m.Primary.Flows, Request{Factor: 1 + a.params.Beta}, obs.CondBandwidth, id.String())
					}
				}
			}
		}
	}
}

// deliverAll hands a request to every flow in the set and, with
// telemetry or tracing on, records the condition that generated it —
// in flow-ID order so neither stream inherits map iteration order.
// cliqueID carries the bandwidth-condition provenance for the span
// recorder ("" for source and buffer conditions).
func (a *Agent) deliverAll(flows map[packet.FlowID]topology.NodeID, req Request, cond obs.Condition, cliqueID string) {
	if a.rec == nil && a.spans == nil {
		for f := range flows {
			a.deliver(f, req)
		}
		return
	}
	ids := make([]packet.FlowID, 0, len(flows))
	for f := range flows {
		ids = append(ids, f)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, f := range ids {
		if a.rec != nil {
			a.rec.Condition(f, a.id, cond, req.Reduce, req.Factor)
		}
		a.spans.Condition(f, a.id, cond.String(), req.Reduce, req.Factor, cliqueID, nil, 0)
		a.deliver(f, req)
	}
}

// Distributed is the handle returned by StartDistributed.
type Distributed struct {
	Agents []*Agent
	trace  []Round

	// faultProbe, when set, reports the currently crashed nodes so each
	// trace Round records the fault state it was measured under.
	faultProbe func() []topology.NodeID
}

// Trace returns per-period flow rates recorded at the shared boundary
// ticks (for convergence inspection; limits are not tracked here because
// they live inside each agent).
func (d *Distributed) Trace() []Round { return d.trace }

// SetFaultProbe installs a callback reporting the currently crashed
// nodes (fault injection). Install it before the first boundary tick
// (i.e. right after StartDistributed returns, before sched.Run).
func (d *Distributed) SetFaultProbe(fn func() []topology.NodeID) { d.faultProbe = fn }

// SetRecorder installs the telemetry recorder on every agent (nil
// disables). Install it before sched.Run, like SetFaultProbe.
func (d *Distributed) SetRecorder(rec *obs.Recorder) {
	for _, a := range d.Agents {
		a.rec = rec
	}
}

// SetSpans installs the causal-trace recorder on every agent (nil
// disables). Install it before sched.Run, like SetRecorder.
func (d *Distributed) SetSpans(r *span.Recorder) {
	for _, a := range d.Agents {
		a.spans = r
	}
}

// OnFlowDeparted drops the per-flow adjustment state a departed churn
// flow left on its source's agent (pending request, slack streak), so
// long churn runs do not accumulate state for dead flows.
func (d *Distributed) OnFlowDeparted(f packet.FlowID, src topology.NodeID) {
	a := d.Agents[src]
	delete(a.slack, f)
	delete(a.pending, f)
}

// RefreshCliques pushes a new clique decomposition to every agent after
// a topology change under mobility.
func (d *Distributed) RefreshCliques(cliques *clique.Set) {
	for _, a := range d.Agents {
		a.RefreshCliques(cliques)
	}
}

// StartDistributed builds and starts the full distributed runtime: a
// dissemination agent and a GMP agent per node, a shared occupancy board
// sampled at exact period boundaries, and the control-packet delivery
// path between agents. The mediumBoard must be constructed over the
// simulation's radio medium. Agents start with small random offsets
// ("loosely synchronized clocks", §6.1).
func StartDistributed(sched *sim.Scheduler, topo *topology.Topology, cliques *clique.Set,
	board *measure.OccupancyBoard, nodes []*forwarding.Node,
	dissAgents []*dissemination.Agent, registry *flow.Registry,
	params Params, rng *rand.Rand) (*Distributed, error) {

	d := &Distributed{Agents: make([]*Agent, topo.NumNodes())}
	deliver := func(f packet.FlowID, req Request) {
		src := registry.Specs()[f].Src
		d.Agents[src].Enqueue(f, req)
	}
	for _, id := range topo.Nodes() {
		agent, err := NewAgent(id, sched, topo, cliques, nodes[id], dissAgents[id], board, params, deliver)
		if err != nil {
			return nil, err
		}
		nodes[id].SetBroadcastHandler(dissAgents[id].OnBroadcast)
		d.Agents[id] = agent
	}
	for _, spec := range registry.Specs() {
		d.Agents[spec.Src].AttachLocalFlow(spec, registry.Source(spec.ID))
	}

	// The board samples at exact boundaries; agents follow within the
	// first tenth of the period so they read the fresh sample.
	var tick func()
	tick = func() {
		board.Sample()
		rates := make([]float64, registry.NumFlows())
		for i, src := range registry.Sources() {
			rates[i] = src.LastPeriodRate()
		}
		round := Round{Time: sched.Now(), Rates: rates}
		if d.faultProbe != nil {
			round.DownNodes = d.faultProbe()
		}
		d.trace = append(d.trace, round)
		sched.After(params.Period, tick)
	}
	sched.After(params.Period, tick)
	for _, agent := range d.Agents {
		offset := time.Millisecond + time.Duration(rng.Float64()*float64(params.Period)/10)
		agent.Start(offset)
	}
	return d, nil
}
