// Package jobs is the gmpd service's job engine: a FIFO queue of
// long-running work items executed by a bounded worker pool, with
// per-job status tracking, cooperative cancellation, panic containment
// (via internal/runner's capture semantics), and graceful drain on
// shutdown.
//
// Lifecycle: Submit places a job at the tail of the queue in state
// Queued. A free worker moves it to Running and invokes its function
// with a per-job context. The function's return decides the terminal
// state: nil → Done; the job context's error (after Cancel) →
// Cancelled; anything else (including a captured panic) → Failed.
// Cancel on a queued job takes effect immediately without occupying a
// worker. Drain stops intake and dispatch, cancels everything still
// queued with the typed ReasonShutdown, and waits for running jobs to
// finish — the running set is *drained*, not killed.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gmp/internal/runner"
)

// Status is a job's lifecycle state.
type Status int

// The job lifecycle. Queued and Running are transient; Done, Failed and
// Cancelled are terminal.
const (
	Queued Status = iota + 1
	Running
	Done
	Failed
	Cancelled
)

// String names the status as in the HTTP API.
func (s Status) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// CancelReason types a cancellation: an explicit user request (the
// DELETE endpoint) or the queue draining at shutdown.
type CancelReason string

// Cancellation reasons.
const (
	ReasonRequested CancelReason = "requested"
	ReasonShutdown  CancelReason = "shutdown"
)

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("jobs: queue is draining")

// Job is one tracked work item.
type Job struct {
	id  string
	run func(context.Context) error

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   Status
	err      error
	reason   CancelReason
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the job's terminal error (nil unless Failed, or Cancelled
// with a context error).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Reason returns the typed cancellation reason ("" unless Cancelled).
func (j *Job) Reason() CancelReason {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reason
}

// Times returns the submission, start and finish timestamps (zero when
// the phase has not been reached).
func (j *Job) Times() (created, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.created, j.started, j.finished
}

// Context returns the job's context, cancelled by Cancel/Drain. Job
// functions receive it as their argument; auxiliary readers (e.g. a
// telemetry stream following a running job) may also watch it.
func (j *Job) Context() context.Context { return j.ctx }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx expires,
// and returns the terminal status (0 on ctx expiry).
func (j *Job) Wait(ctx context.Context) (Status, error) {
	select {
	case <-j.done:
		return j.Status(), nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(s Status, err error, reason CancelReason) {
	j.mu.Lock()
	if j.status == Done || j.status == Failed || j.status == Cancelled {
		j.mu.Unlock()
		return
	}
	j.status = s
	j.err = err
	j.reason = reason
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Stats are the queue's monotonic counters plus current occupancy.
type Stats struct {
	Submitted int64
	Done      int64
	Failed    int64
	Cancelled int64
	// Depth is the number of jobs waiting; Running the number
	// currently executing.
	Depth   int
	Running int
}

// Queue is a FIFO job queue with a bounded worker pool.
type Queue struct {
	workers int
	timeout time.Duration

	mu       sync.Mutex
	fifo     []*Job
	byID     map[string]*Job
	draining bool
	wake     *sync.Cond
	wg       sync.WaitGroup

	submitted, finished, failed, cancelled int64
	running                                int
}

// NewQueue starts a queue with the given worker-pool size (minimum 1)
// and optional per-job timeout (0 = unbounded).
func NewQueue(workers int, timeout time.Duration) *Queue {
	if workers < 1 {
		workers = 1
	}
	q := &Queue{
		workers: workers,
		timeout: timeout,
		byID:    make(map[string]*Job),
	}
	q.wake = sync.NewCond(&q.mu)
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit enqueues a job. IDs must be unique; resubmitting a live or
// finished ID is an error. Fails with ErrDraining after Drain began.
func (q *Queue) Submit(id string, run func(context.Context) error) (*Job, error) {
	if run == nil {
		return nil, fmt.Errorf("jobs: job %q has no function", id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:      id,
		run:     run,
		ctx:     ctx,
		cancel:  cancel,
		status:  Queued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	if _, dup := q.byID[id]; dup {
		q.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("jobs: duplicate job id %q", id)
	}
	q.byID[id] = j
	q.fifo = append(q.fifo, j)
	q.submitted++
	q.wake.Signal()
	q.mu.Unlock()
	return j, nil
}

// Get returns the job with the given ID (queued, running or finished).
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	return j, ok
}

// Cancel cancels the job with the given ID and reports whether it was
// still live. A queued job is finalized immediately; a running job's
// context is cancelled and the job reaches Cancelled when its function
// returns (cooperative, like gmp.RunContext).
func (q *Queue) Cancel(id string, reason CancelReason) bool {
	q.mu.Lock()
	j, ok := q.byID[id]
	q.mu.Unlock()
	if !ok {
		return false
	}
	return q.cancelJob(j, reason)
}

func (q *Queue) cancelJob(j *Job, reason CancelReason) bool {
	j.mu.Lock()
	switch j.status {
	case Done, Failed, Cancelled:
		j.mu.Unlock()
		return false
	case Queued:
		j.status = Cancelled
		j.err = context.Canceled
		j.reason = reason
		j.finished = time.Now()
		j.mu.Unlock()
		j.cancel()
		close(j.done)
		q.mu.Lock()
		q.cancelled++
		q.mu.Unlock()
		return true
	default: // Running: the worker finalizes when run returns.
		j.mu.Unlock()
		j.cancel()
		return true
	}
}

// Drain performs a graceful shutdown: new submissions fail, jobs still
// queued are cancelled with ReasonShutdown, and running jobs are waited
// for until they finish or ctx expires. Idempotent.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	pending := q.fifo
	q.fifo = nil
	q.wake.Broadcast()
	q.mu.Unlock()

	for _, j := range pending {
		q.cancelJob(j, ReasonShutdown)
	}

	workersDone := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain interrupted with jobs still running: %w", ctx.Err())
	}
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Submitted: q.submitted,
		Done:      q.finished,
		Failed:    q.failed,
		Cancelled: q.cancelled,
		Depth:     len(q.fifo),
		Running:   q.running,
	}
}

// worker pops jobs in FIFO order until the queue drains.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.fifo) == 0 && !q.draining {
			q.wake.Wait()
		}
		if len(q.fifo) == 0 {
			// Draining with nothing queued: exit.
			q.mu.Unlock()
			return
		}
		j := q.fifo[0]
		q.fifo = q.fifo[1:]
		q.mu.Unlock()

		q.execute(j)
	}
}

// execute runs one job with panic containment and finalizes its state.
func (q *Queue) execute(j *Job) {
	j.mu.Lock()
	if j.status != Queued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.status = Running
	j.started = time.Now()
	j.mu.Unlock()

	q.mu.Lock()
	q.running++
	q.mu.Unlock()

	// runner.Run contains panics (a corrupt job costs one job, not the
	// service) and applies the per-job timeout.
	res := runner.Run(j.ctx, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, j.run(ctx)
	}, q.timeout)

	var status Status
	var reason CancelReason
	switch {
	case res.Err == nil:
		status = Done
	case j.ctx.Err() != nil && errors.Is(res.Err, j.ctx.Err()):
		status = Cancelled
		reason = ReasonRequested
	default:
		status = Failed
	}
	j.finish(status, res.Err, reason)

	q.mu.Lock()
	q.running--
	switch status {
	case Done:
		q.finished++
	case Failed:
		q.failed++
	case Cancelled:
		q.cancelled++
	}
	q.mu.Unlock()
}
