package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gmp/internal/runner"
)

func waitStatus(t *testing.T, j *Job) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s never finished: %v", j.ID(), err)
	}
	return s
}

func TestSubmitRunsFIFO(t *testing.T) {
	q := NewQueue(1, 0) // one worker => strict FIFO execution order
	var order []string
	ch := make(chan string, 3)
	for _, id := range []string{"a", "b", "c"} {
		id := id
		if _, err := q.Submit(id, func(ctx context.Context) error {
			ch <- id
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		order = append(order, <-ch)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("execution order %v, want [a b c]", order)
	}
	j, _ := q.Get("c")
	if s := waitStatus(t, j); s != Done {
		t.Fatalf("job c finished %v, want done", s)
	}
	if st := q.Stats(); st.Submitted != 3 || st.Done != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateID(t *testing.T) {
	q := NewQueue(1, 0)
	if _, err := q.Submit("x", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("x", func(context.Context) error { return nil }); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestFailedJob(t *testing.T) {
	q := NewQueue(1, 0)
	boom := errors.New("boom")
	j, err := q.Submit("f", func(context.Context) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if s := waitStatus(t, j); s != Failed {
		t.Fatalf("status %v, want failed", s)
	}
	if !errors.Is(j.Err(), boom) {
		t.Fatalf("err = %v, want boom", j.Err())
	}
}

func TestPanicCapture(t *testing.T) {
	q := NewQueue(1, 0)
	j, err := q.Submit("p", func(context.Context) error { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	if s := waitStatus(t, j); s != Failed {
		t.Fatalf("status %v, want failed", s)
	}
	var pe *runner.PanicError
	if !errors.As(j.Err(), &pe) || pe.Value != "kaboom" {
		t.Fatalf("err = %v, want PanicError(kaboom)", j.Err())
	}
	// The worker survived the panic.
	j2, err := q.Submit("after", func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if s := waitStatus(t, j2); s != Done {
		t.Fatalf("post-panic job finished %v, want done", s)
	}
}

func TestCancelQueued(t *testing.T) {
	q := NewQueue(1, 0)
	gate := make(chan struct{})
	if _, err := q.Submit("blocker", func(ctx context.Context) error {
		<-gate
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	j, err := q.Submit("victim", func(ctx context.Context) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel("victim", ReasonRequested) {
		t.Fatal("Cancel reported the queued job as not live")
	}
	if s := j.Status(); s != Cancelled {
		t.Fatalf("queued job cancel is not immediate: %v", s)
	}
	if r := j.Reason(); r != ReasonRequested {
		t.Fatalf("reason %q, want %q", r, ReasonRequested)
	}
	close(gate)
	blocker, _ := q.Get("blocker")
	waitStatus(t, blocker)
	if ran.Load() {
		t.Fatal("cancelled queued job still executed")
	}
}

func TestCancelRunning(t *testing.T) {
	q := NewQueue(1, 0)
	started := make(chan struct{})
	j, err := q.Submit("r", func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel("r", ReasonRequested) {
		t.Fatal("Cancel reported the running job as not live")
	}
	if s := waitStatus(t, j); s != Cancelled {
		t.Fatalf("status %v, want cancelled", s)
	}
	if !errors.Is(j.Err(), context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", j.Err())
	}
}

func TestDrain(t *testing.T) {
	q := NewQueue(1, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Bool
	running, err := q.Submit("running", func(ctx context.Context) error {
		close(started)
		<-release
		finished.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := q.Submit("queued", func(ctx context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- q.Drain(ctx)
	}()

	// The queued job is cancelled with the typed shutdown reason
	// without waiting for the running one.
	if s := waitStatus(t, queued); s != Cancelled {
		t.Fatalf("queued job drained as %v, want cancelled", s)
	}
	if r := queued.Reason(); r != ReasonShutdown {
		t.Fatalf("queued job reason %q, want %q", r, ReasonShutdown)
	}

	// New submissions are refused while draining.
	if _, err := q.Submit("late", func(context.Context) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}

	// The running job is drained, not killed.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) before the running job finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if s := running.Status(); s != Done || !finished.Load() {
		t.Fatalf("running job drained as %v (finished=%v), want done", s, finished.Load())
	}
}

func TestDrainTimeout(t *testing.T) {
	q := NewQueue(1, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := q.Submit("stuck", func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a job still running")
	}
	close(release)
}

func TestManyWorkers(t *testing.T) {
	q := NewQueue(4, 0)
	var n atomic.Int64
	var last *Job
	for i := 0; i < 32; i++ {
		j, err := q.Submit(fmt.Sprintf("j%d", i), func(ctx context.Context) error {
			n.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_ = last
	st := q.Stats()
	if st.Done+st.Cancelled != 32 || st.Done != n.Load() {
		t.Fatalf("stats = %+v with %d executions", st, n.Load())
	}
}
