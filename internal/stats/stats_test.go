package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean of 1,2,3")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
}

func TestStdDev(t *testing.T) {
	// Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1380899) > 1e-6 {
		t.Errorf("stddev = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 11, 13, 9, 10, 12, 11}
	// Student-t with 7 degrees of freedom: t = 2.365.
	want := 2.365 * StdDev(xs) / math.Sqrt(8)
	if !approx(CI95(xs), want) {
		t.Error("ci95")
	}
	if CI95([]float64{1}) != 0 {
		t.Error("single-sample ci")
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{0: 0, 1: 12.706, 7: 2.365, 30: 2.042, 45: 2.000, 1000: 1.960}
	for df, want := range cases {
		if got := TCritical95(df); got != want {
			t.Errorf("TCritical95(%d) = %v, want %v", df, got, want)
		}
	}
	// The critical value must decrease monotonically toward 1.96.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		got := TCritical95(df)
		if got > prev {
			t.Fatalf("TCritical95 not monotone at df=%d: %v > %v", df, got, prev)
		}
		if got < 1.960 {
			t.Fatalf("TCritical95(%d) = %v below the normal quantile", df, got)
		}
		prev = got
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{4, 8, 6, 2}
	s := Summarize(xs)
	if s.N != 4 || !approx(s.Mean, 5) || s.Min != 2 || s.Max != 8 {
		t.Errorf("summary %+v", s)
	}
	if !approx(s.StdDev, StdDev(xs)) || !approx(s.CI95, CI95(xs)) {
		t.Errorf("summary spread %+v", s)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("empty summary %+v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %v, %v", lo, hi)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		if StdDev(xs) < 0 {
			return false
		}
		lo, hi := MinMax(xs)
		m := Mean(xs)
		if len(xs) > 0 && (m < lo-1e-9 || m > hi+1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
