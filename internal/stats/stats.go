// Package stats provides the cross-seed summary statistics the
// experiment runner and benchmark tools report: mean, sample standard
// deviation, Student-t 95% confidence half-widths, extremes, and a
// Summary type bundling all of them for one metric.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCritical95 holds the two-sided 95% Student-t critical values for
// 1..30 degrees of freedom (index 0 unused).
var tCritical95 = [31]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom (df < 1 returns 0; large df approaches
// the normal quantile 1.96).
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= 30:
		return tCritical95[df]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// CI95 returns the half-width of a Student-t 95% confidence interval
// for the mean: t_{0.975, n-1} · s / √n. Experiment sweeps average a
// handful of seeds, where the normal approximation understates the
// interval badly (n=3 by a factor of 2.2); the t quantile is exact for
// normally distributed per-seed metrics.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return TCritical95(len(xs)-1) * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the sample extremes (0, 0 for an empty sample).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Summary aggregates one metric across repeated observations (typically
// one value per seed).
type Summary struct {
	// N is the number of observations.
	N int
	// Mean is the arithmetic mean.
	Mean float64
	// StdDev is the sample standard deviation.
	StdDev float64
	// CI95 is the Student-t 95% confidence half-width for the mean, so
	// the interval is Mean ± CI95.
	CI95 float64
	// Min and Max are the sample extremes.
	Min float64
	Max float64
}

// Summarize computes the Summary of a sample (the zero Summary for an
// empty one).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		CI95:   CI95(xs),
		Min:    lo,
		Max:    hi,
	}
}
