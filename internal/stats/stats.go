// Package stats provides the small summary statistics the benchmark
// tools report across seeds: mean, sample standard deviation, and a
// normal-approximation 95% confidence half-width.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the sample extremes (0, 0 for an empty sample).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
