package baseline

import (
	"math"
	"testing"

	"gmp/internal/clique"
	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/maxminref"
	"gmp/internal/routing"
	"gmp/internal/topology"
)

func chainTopo(t *testing.T, n int) (*routing.Table, *clique.Set) {
	t.Helper()
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 200}
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return routing.Build(topo), clique.Build(topo)
}

func TestPlain80211ForwardingConfig(t *testing.T) {
	cfg := Plain80211Forwarding(300)
	if cfg.Mode != forwarding.Shared || !cfg.OverwriteTail || cfg.CongestionAvoidance {
		t.Errorf("unexpected config %+v", cfg)
	}
	if cfg.QueueSlots != 300 {
		t.Errorf("slots = %d", cfg.QueueSlots)
	}
}

func TestTwoPPForwardingConfig(t *testing.T) {
	cfg := TwoPPForwarding(10)
	if cfg.Mode != forwarding.PerFlow || !cfg.CongestionAvoidance || cfg.OverwriteTail {
		t.Errorf("unexpected config %+v", cfg)
	}
	if cfg.StaleAfter <= 0 {
		t.Error("stale timeout unset")
	}
}

func TestTwoPPAllocationFig3Shape(t *testing.T) {
	// Chain 0-1-2-3, flows <0,3>, <1,3>, <2,3>: one clique, three flows,
	// crossings 3/2/1. Basic shares C/(3*3), C/(3*2), C/(3*1); the whole
	// capacity is then consumed, so the allocation is exactly the basic
	// shares with no remainder for long flows but (the clique is tight)
	// none for the short one either.
	routes, cliques := chainTopo(t, 4)
	flows := []maxminref.FlowSpec{
		{Src: 0, Dst: 3, Weight: 1, Demand: 800},
		{Src: 1, Dst: 3, Weight: 1, Demand: 800},
		{Src: 2, Dst: 3, Weight: 1, Demand: 800},
	}
	const c = 520.0
	rates, err := TwoPPAllocation(flows, routes, cliques, UniformCliqueCapacity(c))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{c / 9, c / 6, c / 3}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-6 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
	// The signature bias: short flow gets 3x the 3-hop flow.
	if rates[2]/rates[0] < 2.5 {
		t.Errorf("short-flow bias missing: %v", rates)
	}
}

func TestTwoPPRemainderGoesToShortFlows(t *testing.T) {
	// Two disjoint single-link cliques... build a 2-link chain with one
	// 2-hop flow and one 1-hop flow on the second link.
	routes, cliques := chainTopo(t, 3)
	flows := []maxminref.FlowSpec{
		{Src: 0, Dst: 2, Weight: 1, Demand: 800}, // 2 hops
		{Src: 1, Dst: 2, Weight: 1, Demand: 800}, // 1 hop
	}
	const c = 520.0
	rates, err := TwoPPAllocation(flows, routes, cliques, UniformCliqueCapacity(c))
	if err != nil {
		t.Fatal(err)
	}
	// Basic shares: f0 = C/(2*2) = 130, f1 = C/(2*1) = 260. Load =
	// 2*130 + 260 = 520 = C; no remainder. Short flow gets double.
	if math.Abs(rates[0]-130) > 1e-6 || math.Abs(rates[1]-260) > 1e-6 {
		t.Fatalf("rates = %v, want [130 260]", rates)
	}
}

func TestTwoPPFeasibility(t *testing.T) {
	routes, cliques := chainTopo(t, 6)
	flows := []maxminref.FlowSpec{
		{Src: 0, Dst: 5, Weight: 1, Demand: 800},
		{Src: 1, Dst: 4, Weight: 1, Demand: 800},
		{Src: 2, Dst: 3, Weight: 1, Demand: 800},
		{Src: 4, Dst: 5, Weight: 1, Demand: 800},
	}
	const c = 520.0
	rates, err := TwoPPAllocation(flows, routes, cliques, UniformCliqueCapacity(c))
	if err != nil {
		t.Fatal(err)
	}
	problem, err := maxminref.BuildProblem(flows, routes, cliques, UniformCliqueCapacity(c))
	if err != nil {
		t.Fatal(err)
	}
	for q, row := range problem.Usage {
		load := 0.0
		for f, u := range row {
			load += u * rates[f]
		}
		if load > problem.Capacities[q]+1e-6 {
			t.Errorf("clique %d overloaded: %v > %v", q, load, problem.Capacities[q])
		}
	}
	for f, r := range rates {
		if r <= 0 {
			t.Errorf("flow %d got nothing", f)
		}
		if r > flows[f].Demand+1e-9 {
			t.Errorf("flow %d exceeds demand", f)
		}
	}
}

func TestTwoPPDemandCap(t *testing.T) {
	routes, cliques := chainTopo(t, 2)
	flows := []maxminref.FlowSpec{{Src: 0, Dst: 1, Weight: 1, Demand: 50}}
	rates, err := TwoPPAllocation(flows, routes, cliques, UniformCliqueCapacity(520))
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 50 {
		t.Errorf("rate = %v, want demand cap 50", rates[0])
	}
}

func TestTwoPPEmptyFlows(t *testing.T) {
	routes, cliques := chainTopo(t, 2)
	rates, err := TwoPPAllocation(nil, routes, cliques, UniformCliqueCapacity(520))
	if err != nil || rates != nil {
		t.Errorf("empty allocation = %v, %v", rates, err)
	}
}

func TestTwoPPBasicShareBelowMaxmin(t *testing.T) {
	// On the fig3 chain the 2PP basic share of the 3-hop flow (C/9) is
	// well below its maxmin rate (C/6) — the conservatism §1 criticizes.
	routes, cliques := chainTopo(t, 4)
	flows := []maxminref.FlowSpec{
		{Src: 0, Dst: 3, Weight: 1, Demand: 800},
		{Src: 1, Dst: 3, Weight: 1, Demand: 800},
		{Src: 2, Dst: 3, Weight: 1, Demand: 800},
	}
	const c = 520.0
	twopp, err := TwoPPAllocation(flows, routes, cliques, UniformCliqueCapacity(c))
	if err != nil {
		t.Fatal(err)
	}
	problem, err := maxminref.BuildProblem(flows, routes, cliques, UniformCliqueCapacity(c))
	if err != nil {
		t.Fatal(err)
	}
	maxmin, err := problem.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if twopp[0] >= maxmin[0] {
		t.Errorf("2PP long-flow rate %v not below maxmin %v", twopp[0], maxmin[0])
	}
}

func TestPathCost(t *testing.T) {
	routes, _ := chainTopo(t, 4)
	if got := PathCost(routes, 0, 3); got != 3 {
		t.Errorf("PathCost = %d, want 3", got)
	}
}
