// Package baseline implements the two comparison protocols of §7.2:
//
//   - Plain IEEE 802.11: no rate control, one shared FIFO per node with
//     tail overwrite on overflow. Realized entirely by forwarding-layer
//     configuration; this package provides that configuration.
//
//   - 2PP, the two-phase protocol of ref [11] (Li, ICDCS'05): per-flow
//     queueing, a conservative "basic fair share" guaranteed to every
//     flow, and the remaining bandwidth allocated to maximize aggregate
//     throughput, which biases it heavily toward short flows. [11]'s
//     exact linear program is not public; this package reproduces its two
//     documented properties with a clique-capacity basic share plus a
//     short-flow-first greedy fill (see DESIGN.md, substitution 4).
package baseline

import (
	"fmt"
	"sort"

	"gmp/internal/clique"
	"gmp/internal/forwarding"
	"gmp/internal/maxminref"
	"gmp/internal/routing"
	"gmp/internal/topology"
)

// Plain80211Forwarding returns the forwarding configuration of the plain
// 802.11 baseline: one shared FIFO holding queueSlots packets, tail
// overwrite on overflow, no congestion-avoidance backpressure.
func Plain80211Forwarding(queueSlots int) forwarding.Config {
	return forwarding.Config{
		Mode:                forwarding.Shared,
		QueueSlots:          queueSlots,
		CongestionAvoidance: false,
		OverwriteTail:       true,
	}
}

// TwoPPForwarding returns the forwarding configuration of 2PP: one queue
// per flow holding queueSlots packets (10 in §7.2), with backpressure so
// the precomputed allocation is not eroded by drops.
func TwoPPForwarding(queueSlots int) forwarding.Config {
	return forwarding.Config{
		Mode:                forwarding.PerFlow,
		QueueSlots:          queueSlots,
		CongestionAvoidance: true,
		StaleAfter:          forwarding.DefaultConfig().StaleAfter,
	}
}

// TwoPPAllocation computes 2PP's per-flow rates in two phases.
//
// Phase 1 (basic fair share): every clique's capacity is divided equally
// among the flows crossing it, and a flow crossing a clique with n links
// of its path can sustain only 1/n of its clique share end-to-end, so
// bs_f = min over cliques Q of C_Q / (N_Q · n_f(Q)) with N_Q the number
// of crossing flows. This matches [11]'s conservative guarantee — it can
// be far below the maxmin rate (§1, §7.2), especially for multihop flows.
//
// Phase 2 (throughput maximization): the residual capacity is handed out
// greedily to flows in ascending order of resource cost (total clique
// crossings, i.e. short flows first), each flow taking as much as its
// path's tightest clique allows. This reproduces the strong short-flow
// bias of [11]'s linear program.
func TwoPPAllocation(flows []maxminref.FlowSpec, routes *routing.Table, cliques *clique.Set, capacity func(*clique.Clique) float64) ([]float64, error) {
	problem, err := maxminref.BuildProblem(flows, routes, cliques, capacity)
	if err != nil {
		return nil, err
	}
	n := len(flows)
	if n == 0 {
		return nil, nil
	}

	// Phase 1: basic fair share.
	rates := make([]float64, n)
	for f := 0; f < n; f++ {
		share := flows[f].Demand
		for q, row := range problem.Usage {
			if row[f] == 0 {
				continue
			}
			crossers := 0.0
			for _, u := range row {
				if u > 0 {
					crossers++
				}
			}
			if s := problem.Capacities[q] / (crossers * row[f]); s < share {
				share = s
			}
		}
		rates[f] = share
	}

	// Current load per clique.
	load := make([]float64, len(problem.Usage))
	for q, row := range problem.Usage {
		for f, u := range row {
			load[q] += u * rates[f]
		}
	}

	// Phase 2: short flows first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	cost := func(f int) float64 {
		c := 0.0
		for _, row := range problem.Usage {
			c += row[f]
		}
		return c
	}
	sort.SliceStable(order, func(i, j int) bool { return cost(order[i]) < cost(order[j]) })

	for _, f := range order {
		extra := flows[f].Demand - rates[f]
		for q, row := range problem.Usage {
			if row[f] == 0 {
				continue
			}
			if room := (problem.Capacities[q] - load[q]) / row[f]; room < extra {
				extra = room
			}
		}
		if extra <= 0 {
			continue
		}
		rates[f] += extra
		for q, row := range problem.Usage {
			load[q] += row[f] * extra
		}
	}

	for f, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("baseline: negative 2PP rate %v for flow %d", r, f)
		}
	}
	return rates, nil
}

// UniformCliqueCapacity returns a capacity function assigning every clique
// the same effective capacity in packets per second (e.g. the estimated
// single-link saturation rate from radio.Params.SaturationRate).
func UniformCliqueCapacity(pps float64) func(*clique.Clique) float64 {
	return func(*clique.Clique) float64 { return pps }
}

// PathCost returns the number of links of the flow's path, for reporting.
func PathCost(routes *routing.Table, src, dst topology.NodeID) int {
	return routes.HopCount(src, dst)
}
