// Package measure implements §6.2's measurement period: per-virtual-node
// buffer state (the fraction Ω of time the queue stayed full), virtual
// link rates and normalized rates, link-type classification (§3.2), and
// per-wireless-link channel occupancy.
//
// In the paper every node measures its own links and disseminates the
// results two hops out; this package plays the role of those measurements
// plus the dissemination, producing one coherent Snapshot per period that
// the protocol engine then consults with exactly the two-hop scoping the
// paper prescribes.
package measure

import (
	"fmt"
	"time"

	"gmp/internal/forwarding"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/topology"
)

// DefaultOmegaThreshold is the buffer-saturation threshold from §6.2: a
// queue full more than 25% of a period is saturated.
const DefaultOmegaThreshold = 0.25

// VNodeID names a virtual node i_t: the queue at physical node Node
// identified by Queue (the destination t under per-destination queueing).
type VNodeID struct {
	Node  topology.NodeID
	Queue packet.QueueID
}

// String renders the paper's i_t notation.
func (v VNodeID) String() string { return fmt.Sprintf("%d_%d", v.Node, v.Queue) }

// LinkType classifies a (virtual) link per §3.2.
type LinkType int

// Link types. A link (i,j) is classified by the buffer states of its two
// endpoint virtual nodes: sender saturated + receiver unsaturated means
// the link itself is the bottleneck (bandwidth-saturated); both saturated
// means a downstream bottleneck throttles it (buffer-saturated); sender
// unsaturated means nothing constrains it here (unsaturated).
const (
	Unsaturated LinkType = iota + 1
	BufferSaturated
	BandwidthSaturated
)

// String names the link type.
func (t LinkType) String() string {
	switch t {
	case Unsaturated:
		return "unsaturated"
	case BufferSaturated:
		return "buffer-saturated"
	case BandwidthSaturated:
		return "bandwidth-saturated"
	default:
		return fmt.Sprintf("LinkType(%d)", int(t))
	}
}

// VLinkState is the measured state of one virtual link over a period.
type VLinkState struct {
	Key forwarding.VLinkKey
	// Rate is the delivered packet rate r(i_t, j_t) in packets/second.
	Rate float64
	// NormRate is μ(i_t,j_t): the largest stamped normalized rate of any
	// flow that crossed the link this period.
	NormRate float64
	// Primaries maps the link's primary flows to their source nodes.
	Primaries map[packet.FlowID]topology.NodeID
	// Type is the §3.2 classification.
	Type LinkType
}

// WLinkState is the measured state of one directed wireless link.
type WLinkState struct {
	Link topology.Link
	// Occupancy is the fraction of the period the channel carried this
	// link's RTS/CTS/DATA/ACK frames.
	Occupancy float64
	// NormRate is the largest normalized rate among the link's virtual
	// links.
	NormRate float64
}

// Snapshot is the network-wide measurement of one period.
type Snapshot struct {
	Period time.Duration
	// Omega is each virtual node's buffer-full fraction.
	Omega map[VNodeID]float64
	// Saturated marks virtual nodes whose Ω exceeded the threshold.
	Saturated map[VNodeID]bool
	// VLinks holds every virtual link that carried traffic this period.
	VLinks map[forwarding.VLinkKey]*VLinkState
	// WLinks holds every directed wireless link that carried traffic.
	WLinks map[topology.Link]*WLinkState
	// upstream indexes incoming virtual links per virtual node.
	upstream map[VNodeID][]*VLinkState
}

// Upstream returns the virtual links that delivered traffic into virtual
// node v this period (the "upstream links" of §2.1).
func (s *Snapshot) Upstream(v VNodeID) []*VLinkState { return s.upstream[v] }

// InsertUpstream registers st as an upstream link of virtual node v.
// The collector does this automatically; it is exported so tests and
// tools can construct snapshots by hand.
func (s *Snapshot) InsertUpstream(v VNodeID, st *VLinkState) {
	if s.upstream == nil {
		s.upstream = make(map[VNodeID][]*VLinkState)
	}
	s.upstream[v] = append(s.upstream[v], st)
}

// VNodeSaturated reports whether virtual node v had a saturated buffer.
func (s *Snapshot) VNodeSaturated(v VNodeID) bool { return s.Saturated[v] }

// UndirectedNormRate returns the larger normalized rate of the two
// directions of wireless link l, which is the paper's normalized rate of
// the (undirected-for-contention) wireless link.
func (s *Snapshot) UndirectedNormRate(l topology.Link) float64 {
	u := l.Undirected()
	best := 0.0
	if st, ok := s.WLinks[u]; ok {
		best = st.NormRate
	}
	if st, ok := s.WLinks[u.Reverse()]; ok && st.NormRate > best {
		best = st.NormRate
	}
	return best
}

// UndirectedOccupancy returns the combined channel occupancy of both
// directions of wireless link l.
func (s *Snapshot) UndirectedOccupancy(l topology.Link) float64 {
	u := l.Undirected()
	occ := 0.0
	if st, ok := s.WLinks[u]; ok {
		occ += st.Occupancy
	}
	if st, ok := s.WLinks[u.Reverse()]; ok {
		occ += st.Occupancy
	}
	return occ
}

// OccupancyBoard samples the medium's per-link airtime once per period
// for the distributed runtime. A real node measures the occupancy of its
// adjacent links locally (§6.2 "Channel Occupancy"); the board centralizes
// the bookkeeping while agents, by convention, read only the entries for
// their own adjacent links.
type OccupancyBoard struct {
	medium *radio.Medium
	period time.Duration
	frac   map[topology.Link]float64
}

// NewOccupancyBoard builds a board sampling the given medium.
func NewOccupancyBoard(medium *radio.Medium, period time.Duration) *OccupancyBoard {
	if period <= 0 {
		panic(fmt.Sprintf("measure: non-positive period %v", period))
	}
	return &OccupancyBoard{
		medium: medium,
		period: period,
		frac:   make(map[topology.Link]float64),
	}
}

// Sample closes the current period: it reads and resets the medium's
// per-link airtime accumulators. Call exactly once per period boundary.
func (b *OccupancyBoard) Sample() {
	b.frac = make(map[topology.Link]float64)
	for link, airtime := range b.medium.TakeOccupancy() {
		b.frac[link] = float64(airtime) / float64(b.period)
	}
}

// Fraction returns the directed link's channel occupancy over the last
// sampled period.
func (b *OccupancyBoard) Fraction(l topology.Link) float64 { return b.frac[l] }

// Collector gathers one Snapshot per measurement period.
type Collector struct {
	nodes     []*forwarding.Node
	medium    *radio.Medium
	threshold float64
}

// NewCollector builds a collector over all forwarding nodes and the
// shared medium. threshold is the Ω saturation threshold (0.25 in §6.2).
func NewCollector(nodes []*forwarding.Node, medium *radio.Medium, threshold float64) *Collector {
	if threshold <= 0 || threshold >= 1 {
		panic(fmt.Sprintf("measure: Ω threshold %v outside (0,1)", threshold))
	}
	return &Collector{nodes: nodes, medium: medium, threshold: threshold}
}

// Collect closes the current measurement period: reads and resets every
// per-period counter and returns the classified snapshot.
func (c *Collector) Collect(period time.Duration) *Snapshot {
	s := &Snapshot{
		Period:    period,
		Omega:     make(map[VNodeID]float64),
		Saturated: make(map[VNodeID]bool),
		VLinks:    make(map[forwarding.VLinkKey]*VLinkState),
		WLinks:    make(map[topology.Link]*WLinkState),
		upstream:  make(map[VNodeID][]*VLinkState),
	}

	// Buffer states.
	for _, n := range c.nodes {
		for _, qid := range n.Queues() {
			v := VNodeID{Node: n.ID(), Queue: qid}
			omega := n.FullFraction(qid, period)
			s.Omega[v] = omega
			if omega >= c.threshold {
				s.Saturated[v] = true
			}
		}
	}

	// Virtual link meters (sender side is canonical).
	for _, n := range c.nodes {
		for key, m := range n.TakeMeters() {
			st := &VLinkState{
				Key:       key,
				Rate:      float64(m.Sent) / period.Seconds(),
				NormRate:  m.Primary.NormRate,
				Primaries: m.Primary.Flows,
			}
			sender := VNodeID{Node: key.From, Queue: key.Queue}
			receiver := VNodeID{Node: key.To, Queue: key.Queue}
			switch {
			case !s.Saturated[sender]:
				st.Type = Unsaturated
			case s.Saturated[receiver]:
				st.Type = BufferSaturated
			default:
				st.Type = BandwidthSaturated
			}
			s.VLinks[key] = st
			s.upstream[receiver] = append(s.upstream[receiver], st)
		}
		n.TakeReceived() // reset receiver-side counters each period
	}

	// Wireless link occupancy and normalized rate.
	for link, airtime := range c.medium.TakeOccupancy() {
		s.WLinks[link] = &WLinkState{
			Link:      link,
			Occupancy: float64(airtime) / float64(period),
		}
	}
	for key, st := range s.VLinks {
		wl := topology.Link{From: key.From, To: key.To}
		w, ok := s.WLinks[wl]
		if !ok {
			w = &WLinkState{Link: wl}
			s.WLinks[wl] = w
		}
		if st.NormRate > w.NormRate {
			w.NormRate = st.NormRate
		}
	}
	return s
}
