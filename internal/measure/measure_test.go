package measure

import (
	"math"
	"testing"
	"time"

	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/mac"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

const period = 4 * time.Second

// harness builds forwarding nodes on a chain with a shared medium (for
// occupancy) but drives traffic by hand rather than through the MAC.
type harness struct {
	sched  *sim.Scheduler
	nodes  []*forwarding.Node
	medium *radio.Medium
	col    *Collector
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 200}
	}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	medium := radio.NewMedium(sched, topo, radio.DefaultParams(), sim.NewRand(1))
	routes := routing.Build(topo)
	h := &harness{sched: sched, medium: medium}
	for _, id := range topo.Nodes() {
		h.nodes = append(h.nodes, forwarding.NewNode(id, sched, forwarding.DefaultConfig(), routes, nil, nil))
	}
	h.col = NewCollector(h.nodes, medium, DefaultOmegaThreshold)
	return h
}

func pk(flow packet.FlowID, src, dst topology.NodeID, mu float64) *packet.Packet {
	return &packet.Packet{
		Flow: flow, Src: src, Dst: dst, SizeBytes: 1024, Weight: 1,
		NormRate: mu, Stamped: mu > 0,
	}
}

// sendAcked simulates n acknowledged transmissions of stamped packets on
// the virtual link (from -> next hop toward dst).
func (h *harness) sendAcked(node topology.NodeID, flow packet.FlowID, dst topology.NodeID, mu float64, n int) {
	for i := 0; i < n; i++ {
		p := pk(flow, node, dst, mu)
		if !h.nodes[node].Enqueue(p) {
			h.nodes[node].NextOutgoing() // make room
			h.nodes[node].Enqueue(p)
		}
		out := h.nodes[node].NextOutgoing()
		h.nodes[node].OnSendComplete(out, true)
	}
}

func TestCollectorVLinkRates(t *testing.T) {
	h := newHarness(t, 4)
	h.sendAcked(0, 0, 3, 50, 200)
	h.sched.Run(period)
	snap := h.col.Collect(period)

	key := forwarding.VLinkKey{From: 0, To: 1, Queue: packet.QueueForDest(3)}
	st := snap.VLinks[key]
	if st == nil {
		t.Fatal("virtual link missing from snapshot")
	}
	if math.Abs(st.Rate-50) > 1e-9 {
		t.Errorf("rate = %v, want 50 (200 packets / 4 s)", st.Rate)
	}
	if st.NormRate != 50 {
		t.Errorf("norm rate = %v, want 50", st.NormRate)
	}
	if src, ok := st.Primaries[0]; !ok || src != 0 {
		t.Errorf("primaries = %v", st.Primaries)
	}
}

func TestCollectorUpstreamIndex(t *testing.T) {
	h := newHarness(t, 4)
	h.sendAcked(0, 0, 3, 10, 40)
	h.sendAcked(2, 1, 3, 20, 40)
	h.sched.Run(period)
	snap := h.col.Collect(period)

	ups := snap.Upstream(VNodeID{Node: 1, Queue: packet.QueueForDest(3)})
	if len(ups) != 1 || ups[0].Key.From != 0 {
		t.Fatalf("upstream of 1_3 = %v", ups)
	}
	ups3 := snap.Upstream(VNodeID{Node: 3, Queue: packet.QueueForDest(3)})
	if len(ups3) != 1 || ups3[0].Key.From != 2 {
		t.Fatalf("upstream of 3_3 = %v", ups3)
	}
}

func TestLinkClassification(t *testing.T) {
	h := newHarness(t, 4)
	q3 := packet.QueueForDest(3)

	// Saturate node 0's queue for the full period; keep node 1's empty.
	for i := 0; i < forwarding.DefaultConfig().QueueSlots; i++ {
		h.nodes[0].Enqueue(pk(0, 0, 3, 10))
	}
	// One acked packet so the link appears in the snapshot.
	out := h.nodes[0].NextOutgoing()
	h.nodes[0].OnSendComplete(out, true)
	h.nodes[0].Enqueue(pk(0, 0, 3, 10)) // refill to stay full

	// Saturate node 2's queue too, with traffic to 3 (sender of (2,3)).
	for i := 0; i < forwarding.DefaultConfig().QueueSlots; i++ {
		h.nodes[2].Enqueue(pk(1, 2, 3, 20))
	}
	out2 := h.nodes[2].NextOutgoing()
	h.nodes[2].OnSendComplete(out2, true)
	h.nodes[2].Enqueue(pk(1, 2, 3, 20))

	h.sched.Run(period)
	snap := h.col.Collect(period)

	if !snap.VNodeSaturated(VNodeID{Node: 0, Queue: q3}) {
		t.Fatal("node 0's queue should be saturated")
	}
	if snap.VNodeSaturated(VNodeID{Node: 1, Queue: q3}) {
		t.Fatal("node 1's queue should be unsaturated")
	}

	// (0,1): sender saturated, receiver not -> bandwidth-saturated.
	st01 := snap.VLinks[forwarding.VLinkKey{From: 0, To: 1, Queue: q3}]
	if st01.Type != BandwidthSaturated {
		t.Errorf("(0_3,1_3) type = %v, want bandwidth-saturated", st01.Type)
	}
	// (2,3): receiver is the destination (never saturated) ->
	// bandwidth-saturated as well.
	st23 := snap.VLinks[forwarding.VLinkKey{From: 2, To: 3, Queue: q3}]
	if st23.Type != BandwidthSaturated {
		t.Errorf("(2_3,3_3) type = %v, want bandwidth-saturated", st23.Type)
	}
}

func TestBufferSaturatedClassification(t *testing.T) {
	h := newHarness(t, 4)
	q3 := packet.QueueForDest(3)
	slots := forwarding.DefaultConfig().QueueSlots

	// Both node 0 and node 1 queues full all period.
	for i := 0; i < slots; i++ {
		h.nodes[0].Enqueue(pk(0, 0, 3, 10))
		h.nodes[1].Enqueue(pk(0, 0, 3, 10))
	}
	out := h.nodes[0].NextOutgoing()
	h.nodes[0].OnSendComplete(out, true)
	h.nodes[0].Enqueue(pk(0, 0, 3, 10))

	h.sched.Run(period)
	snap := h.col.Collect(period)
	st01 := snap.VLinks[forwarding.VLinkKey{From: 0, To: 1, Queue: q3}]
	if st01 == nil {
		t.Fatal("(0,1) missing")
	}
	if st01.Type != BufferSaturated {
		t.Errorf("type = %v, want buffer-saturated", st01.Type)
	}
}

func TestUnsaturatedClassification(t *testing.T) {
	h := newHarness(t, 4)
	h.sendAcked(0, 0, 3, 10, 8) // light traffic, queue never lingers full
	h.sched.Run(period)
	snap := h.col.Collect(period)
	st := snap.VLinks[forwarding.VLinkKey{From: 0, To: 1, Queue: packet.QueueForDest(3)}]
	if st.Type != Unsaturated {
		t.Errorf("type = %v, want unsaturated", st.Type)
	}
}

func TestOmegaThreshold(t *testing.T) {
	h := newHarness(t, 4)
	q3 := packet.QueueForDest(3)
	slots := forwarding.DefaultConfig().QueueSlots
	// Fill node 0's queue only for 20% of the period: below the 25%
	// threshold.
	for i := 0; i < slots; i++ {
		h.nodes[0].Enqueue(pk(0, 0, 3, 10))
	}
	h.sched.At(period/5, func() { h.nodes[0].NextOutgoing() })
	h.sched.Run(period)
	snap := h.col.Collect(period)
	omega := snap.Omega[VNodeID{Node: 0, Queue: q3}]
	if math.Abs(omega-0.2) > 0.01 {
		t.Fatalf("omega = %v, want 0.2", omega)
	}
	if snap.VNodeSaturated(VNodeID{Node: 0, Queue: q3}) {
		t.Error("20% full classified as saturated at 25% threshold")
	}
}

func TestWirelessLinkAggregation(t *testing.T) {
	h := newHarness(t, 4)
	// Two destinations through the same wireless link (0,1).
	h.sendAcked(0, 0, 3, 30, 20)
	h.sendAcked(0, 1, 2, 70, 20)
	h.sched.Run(period)
	snap := h.col.Collect(period)
	wl := snap.WLinks[topology.Link{From: 0, To: 1}]
	if wl == nil {
		t.Fatal("wireless link missing")
	}
	if wl.NormRate != 70 {
		t.Errorf("wireless link norm rate = %v, want max(30,70)", wl.NormRate)
	}
	if got := snap.UndirectedNormRate(topology.Link{From: 1, To: 0}); got != 70 {
		t.Errorf("undirected lookup = %v, want 70", got)
	}
}

func TestOccupancyFromMedium(t *testing.T) {
	h := newHarness(t, 4)
	// Full MAC wiring: every node needs a registered station.
	var stations []*mac.Station
	for i, n := range h.nodes {
		st := mac.NewStation(topology.NodeID(i), h.sched, h.medium, mac.DefaultConfig(), sim.NewRand(int64(i+2)), n)
		n.SetMAC(st)
		stations = append(stations, st)
	}
	for i := 0; i < 10; i++ {
		h.nodes[0].Enqueue(pk(0, 0, 3, 10))
	}
	stations[0].Kick()
	h.sched.Run(period)
	snap := h.col.Collect(period)
	occ := snap.UndirectedOccupancy(topology.Link{From: 0, To: 1})
	if occ <= 0 || occ > 0.1 {
		t.Errorf("occupancy = %v, want small positive fraction", occ)
	}
}

func TestCollectResetsCounters(t *testing.T) {
	h := newHarness(t, 4)
	h.sendAcked(0, 0, 3, 10, 40)
	h.sched.Run(period)
	first := h.col.Collect(period)
	if len(first.VLinks) == 0 {
		t.Fatal("first snapshot empty")
	}
	h.sched.Run(2 * period)
	second := h.col.Collect(period)
	if len(second.VLinks) != 0 {
		t.Error("second snapshot not empty after reset")
	}
}

func TestNewCollectorValidatesThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid threshold accepted")
		}
	}()
	NewCollector(nil, nil, 1.5)
}

func TestLinkTypeStrings(t *testing.T) {
	for lt, want := range map[LinkType]string{
		Unsaturated:        "unsaturated",
		BufferSaturated:    "buffer-saturated",
		BandwidthSaturated: "bandwidth-saturated",
	} {
		if lt.String() != want {
			t.Errorf("%d = %q", int(lt), lt.String())
		}
	}
}

func TestOccupancyBoard(t *testing.T) {
	h := newHarness(t, 2)
	board := NewOccupancyBoard(h.medium, period)
	// Put one data frame on the air via the raw medium through a MAC
	// station pair.
	var stations []*mac.Station
	for i, n := range h.nodes {
		st := mac.NewStation(topology.NodeID(i), h.sched, h.medium, mac.DefaultConfig(), sim.NewRand(int64(i+7)), n)
		n.SetMAC(st)
		stations = append(stations, st)
	}
	h.nodes[0].Enqueue(pk(0, 0, 1, 10))
	stations[0].Kick()
	h.sched.Run(period)
	board.Sample()
	if board.Fraction(topology.Link{From: 0, To: 1}) <= 0 {
		t.Error("board missed the transmission")
	}
	// Sampling again over an idle period resets to zero.
	h.sched.Run(2 * period)
	board.Sample()
	if board.Fraction(topology.Link{From: 0, To: 1}) != 0 {
		t.Error("board not reset")
	}
}

func TestNewOccupancyBoardValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period accepted")
		}
	}()
	NewOccupancyBoard(nil, 0)
}
