package paperdata

import (
	"math"
	"testing"

	"gmp/internal/metrics"
)

// The paper's tables publish both raw rates and the derived indices;
// recomputing the indices from the rates cross-checks our transcription
// (and the index implementations) against the published values.

func TestTable3IndicesMatchRates(t *testing.T) {
	hops := []int{3, 2, 1}
	for name, row := range Table3.Protocols {
		imm := metrics.MaxminIndex(row.Rates)
		ieq := metrics.EqualityIndex(row.Rates)
		u := metrics.EffectiveThroughput(row.Rates, hops)
		if math.Abs(imm-row.Imm) > 0.002 {
			t.Errorf("%s: recomputed I_mm %.3f, published %.3f", name, imm, row.Imm)
		}
		if math.Abs(ieq-row.Ieq) > 0.002 {
			t.Errorf("%s: recomputed I_eq %.3f, published %.3f", name, ieq, row.Ieq)
		}
		if math.Abs(u-row.U) > 0.5 {
			t.Errorf("%s: recomputed U %.2f, published %.2f", name, u, row.U)
		}
	}
}

func TestTable4IndicesMatchRates(t *testing.T) {
	// f1, f3, f5, f7 are two-hop; the rest one-hop (DESIGN.md derives
	// this from the 2PP row's exact U identity).
	hops := []int{2, 1, 2, 1, 2, 1, 2, 1}
	for name, row := range Table4.Protocols {
		imm := metrics.MaxminIndex(row.Rates)
		ieq := metrics.EqualityIndex(row.Rates)
		if math.Abs(imm-row.Imm) > 0.002 {
			t.Errorf("%s: recomputed I_mm %.3f, published %.3f", name, imm, row.Imm)
		}
		if math.Abs(ieq-row.Ieq) > 0.005 {
			t.Errorf("%s: recomputed I_eq %.3f, published %.3f", name, ieq, row.Ieq)
		}
		u := metrics.EffectiveThroughput(row.Rates, hops)
		switch name {
		case "2PP":
			// Exact match: this identity is how the hop counts were
			// recovered in the first place.
			if math.Abs(u-row.U) > 0.5 {
				t.Errorf("2PP: recomputed U %.2f, published %.2f", u, row.U)
			}
		case "GMP":
			if math.Abs(u-row.U) > 25 {
				t.Errorf("GMP: recomputed U %.2f, published %.2f", u, row.U)
			}
		case "802.11":
			// The 802.11 row's published U (1976.54) is ~5% below the
			// rate-weighted sum (2082.5): the paper's source rates
			// exceed delivered rates under drops. Document, don't fail.
			if u < row.U {
				t.Errorf("802.11: recomputed U %.2f below published %.2f", u, row.U)
			}
		}
	}
}

func TestTableShapes(t *testing.T) {
	if len(Table1.Rates) != 4 || len(Table2.Rates) != 4 {
		t.Fatal("table 1/2 must have four flows")
	}
	if len(Table3.Flows) != 3 || len(Table4.Flows) != 8 {
		t.Fatal("table 3/4 flow counts")
	}
	for name, row := range Table3.Protocols {
		if len(row.Rates) != 3 {
			t.Errorf("%s: %d rates", name, len(row.Rates))
		}
	}
	for name, row := range Table4.Protocols {
		if len(row.Rates) != 8 {
			t.Errorf("%s: %d rates", name, len(row.Rates))
		}
	}
	// Table 2's weighted rates should be roughly proportional to the
	// weights within clique 1 (f2 : f3 : f4 across weights 2 : 1 : 3).
	mu2 := Table2.Rates[1] / Table2.Weights[1]
	mu3 := Table2.Rates[2] / Table2.Weights[2]
	mu4 := Table2.Rates[3] / Table2.Weights[3]
	lo := math.Min(mu2, math.Min(mu3, mu4))
	hi := math.Max(mu2, math.Max(mu3, mu4))
	if lo < 0.85*hi {
		t.Errorf("paper's weighted normalized rates spread: %.1f..%.1f", lo, hi)
	}
}
