// Package paperdata records the numbers published in the paper's tables
// (Zhang, Chen, Jian, ICDCS 2008, §7) so that benchmarks and the
// benchtables tool can print reproduction results side by side with the
// original values.
package paperdata

// Table1 is the paper's Table 1: GMP flow rates on the Figure 2 topology
// with unit weights (pkt/s).
var Table1 = struct {
	Flows []string
	Rates []float64
}{
	Flows: []string{"f1", "f2", "f3", "f4"},
	Rates: []float64{563.96, 196.96, 217.57, 221.41},
}

// Table2 is the paper's Table 2: weighted maxmin on Figure 2 with weights
// (1, 2, 1, 3).
var Table2 = struct {
	Flows   []string
	Weights []float64
	Rates   []float64
}{
	Flows:   []string{"f1", "f2", "f3", "f4"},
	Weights: []float64{1, 2, 1, 3},
	Rates:   []float64{527.58, 225.40, 121.90, 377.20},
}

// ProtocolRow holds one protocol's column of Tables 3 and 4.
type ProtocolRow struct {
	Rates []float64
	U     float64
	Imm   float64
	Ieq   float64
}

// Table3 is the paper's Table 3: the three-link chain of Figure 3 under
// 802.11, 2PP, and GMP. Flow order: <0,3>, <1,3>, <2,3>.
var Table3 = struct {
	Flows     []string
	Protocols map[string]ProtocolRow
}{
	Flows: []string{"<0,3>", "<1,3>", "<2,3>"},
	Protocols: map[string]ProtocolRow{
		"802.11": {Rates: []float64{80.63, 220.07, 174.09}, U: 856.11, Imm: 0.366, Ieq: 0.882},
		"2PP":    {Rates: []float64{131.86, 188.76, 240.85}, U: 1013.96, Imm: 0.547, Ieq: 0.946},
		"GMP":    {Rates: []float64{164.75, 176.04, 179.21}, U: 1025.54, Imm: 0.919, Ieq: 0.999},
	},
}

// Table4 is the paper's Table 4: the four-cell topology of Figure 4.
// Flow order: f1..f8 (odd flows are two-hop, even flows one-hop).
var Table4 = struct {
	Flows     []string
	Protocols map[string]ProtocolRow
}{
	Flows: []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"},
	Protocols: map[string]ProtocolRow{
		"802.11": {
			Rates: []float64{221.81, 221.81, 107.29, 107.28, 106.36, 106.36, 223.39, 223.39},
			U:     1976.54, Imm: 0.476, Ieq: 0.890,
		},
		"2PP": {
			Rates: []float64{43.31, 347.81, 43.33, 86.67, 43.39, 86.70, 43.36, 346.96},
			U:     1214.93, Imm: 0.125, Ieq: 0.514,
		},
		"GMP": {
			Rates: []float64{145.46, 145.94, 134.26, 132.38, 135.44, 133.04, 141.69, 149.07},
			U:     1674.13, Imm: 0.888, Ieq: 0.998,
		},
	},
}
