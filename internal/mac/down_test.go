package mac

import (
	"testing"
	"time"
)

import "gmp/internal/geom"

// TestSetDownStopsStation crashes a station mid-stream: the in-flight
// packet is handed back failed, nothing further is transmitted, frames
// addressed to it go unanswered, and recovery resumes pulling.
func TestSetDownStopsStation(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	for i := 0; i < 20; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
	}
	h.stations[0].Kick()
	h.sched.Run(20 * time.Millisecond) // a few exchanges complete

	sentBefore := h.stations[0].Stats().DataSent
	if sentBefore == 0 {
		t.Fatal("no traffic before the crash")
	}
	h.stations[0].SetDown(true)
	if !h.stations[0].Down() {
		t.Fatal("Down not reported")
	}
	// The packet the MAC held (if any) must have come back failed so the
	// forwarding layer can purge it with the rest of the buffers.
	for i, ok := range h.clients[0].results {
		if !ok && i < len(h.clients[0].completed) && h.clients[0].completed[i] == nil {
			t.Error("failed completion without a packet")
		}
	}

	h.sched.Run(100 * time.Millisecond)
	if got := h.stations[0].Stats().DataSent; got != sentBefore {
		t.Errorf("down station transmitted: DataSent %d -> %d", sentBefore, got)
	}

	// Kick is ignored while down.
	h.stations[0].Kick()
	h.sched.Run(150 * time.Millisecond)
	if got := h.stations[0].Stats().DataSent; got != sentBefore {
		t.Error("Kick restarted a down station")
	}

	// Recovery pulls the remaining queue and drains it.
	h.stations[0].SetDown(false)
	h.sched.Run(2 * time.Second)
	if h.stations[0].Down() {
		t.Error("still down after SetDown(false)")
	}
	if got := h.stations[0].Stats().DataSent; got <= sentBefore {
		t.Error("recovered station did not resume transmitting")
	}
	if len(h.clients[0].outgoing) != 0 {
		t.Errorf("%d packets never pulled after recovery", len(h.clients[0].outgoing))
	}
}

// TestSetDownDropsBroadcastsAndIgnoresQueueing verifies control
// broadcasts queued before a crash are abandoned and ones queued while
// down are refused.
func TestSetDownDropsBroadcastsAndIgnoresQueueing(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.stations[0].SetDown(true)
	h.stations[0].QueueBroadcast("payload", 64)
	h.sched.Run(time.Second)
	if got := h.stations[0].Stats().Broadcasts; got != 0 {
		t.Errorf("down station broadcast %d frames", got)
	}
	if len(h.clients[1].overheard) != 0 {
		t.Error("neighbor overheard a frame from a down node")
	}

	h.stations[0].SetDown(false)
	h.stations[0].QueueBroadcast("payload", 64)
	h.sched.Run(2 * time.Second)
	if got := h.stations[0].Stats().Broadcasts; got != 1 {
		t.Errorf("recovered station broadcasts = %d, want 1", got)
	}
}

// TestSetDownIdempotent double-crashes and double-revives; both must be
// no-ops rather than corrupting phase state.
func TestSetDownIdempotent(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.stations[0].SetDown(true)
	h.stations[0].SetDown(true)
	if !h.stations[0].Down() {
		t.Error("not down after double SetDown(true)")
	}
	h.stations[0].SetDown(false)
	h.stations[0].SetDown(false)
	if h.stations[0].Down() {
		t.Error("down after double SetDown(false)")
	}
	// Station still works.
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.sched.Run(100 * time.Millisecond)
	if len(h.clients[1].received) != 1 {
		t.Error("exchange failed after idempotent down/up cycles")
	}
}
