package mac

import (
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// fakeClient is a scriptable upper layer for one station.
type fakeClient struct {
	outgoing  []*Outgoing
	completed []*Outgoing
	results   []bool
	received  []*packet.Packet
	overheard map[topology.NodeID][]packet.QueueState
	accept    func(packet.QueueID, topology.NodeID) bool
	states    []packet.QueueState
}

func newFakeClient() *fakeClient {
	return &fakeClient{overheard: make(map[topology.NodeID][]packet.QueueState)}
}

func (c *fakeClient) NextOutgoing() *Outgoing {
	if len(c.outgoing) == 0 {
		return nil
	}
	out := c.outgoing[0]
	c.outgoing = c.outgoing[1:]
	return out
}

func (c *fakeClient) OnSendComplete(out *Outgoing, ok bool) {
	c.completed = append(c.completed, out)
	c.results = append(c.results, ok)
}

func (c *fakeClient) OnReceive(p *packet.Packet, _ topology.NodeID) {
	c.received = append(c.received, p)
}

func (c *fakeClient) Piggyback() []packet.QueueState { return c.states }

func (c *fakeClient) OnOverhear(from topology.NodeID, states []packet.QueueState) {
	if len(states) > 0 {
		c.overheard[from] = states
	}
}

func (c *fakeClient) AcceptQueue(q packet.QueueID, from topology.NodeID) bool {
	if c.accept == nil {
		return true
	}
	return c.accept(q, from)
}

type macHarness struct {
	sched    *sim.Scheduler
	medium   *radio.Medium
	stations []*Station
	clients  []*fakeClient
}

func newMACHarness(t *testing.T, pos []geom.Point, cfg Config) *macHarness {
	t.Helper()
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return newMACHarnessParams(t, topo, cfg, radio.DefaultParams())
}

func newMACHarnessParams(t *testing.T, topo *topology.Topology, cfg Config, par radio.Params) *macHarness {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRand(1)
	medium := radio.NewMedium(sched, topo, par, sim.NewRand(rng.Int63()))
	h := &macHarness{sched: sched, medium: medium}
	for _, id := range topo.Nodes() {
		c := newFakeClient()
		st := NewStation(id, sched, medium, cfg, sim.NewRand(rng.Int63()), c)
		h.stations = append(h.stations, st)
		h.clients = append(h.clients, c)
	}
	return h
}

func pkt(flow packet.FlowID, src, dst topology.NodeID, seq int64) *packet.Packet {
	return &packet.Packet{Flow: flow, Src: src, Dst: dst, Seq: seq, SizeBytes: 1024, Weight: 1}
}

func TestSinglePacketExchange(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.sched.Run(100 * time.Millisecond)

	if len(h.clients[0].results) != 1 || !h.clients[0].results[0] {
		t.Fatalf("send not completed ok: %v", h.clients[0].results)
	}
	if len(h.clients[1].received) != 1 {
		t.Fatalf("receiver got %d packets, want 1", len(h.clients[1].received))
	}
	st := h.stations[0].Stats()
	if st.RTSSent != 1 || st.DataSent != 1 || st.DataAcked != 1 {
		t.Errorf("sender stats = %+v", st)
	}
}

func TestBackToBackPackets(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	const n = 50
	for i := 0; i < n; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
	}
	h.stations[0].Kick()
	h.sched.Run(time.Second)
	if got := len(h.clients[1].received); got != n {
		t.Fatalf("received %d, want %d", got, n)
	}
	for i, p := range h.clients[1].received {
		if p.Seq != int64(i) {
			t.Fatalf("out-of-order delivery at %d: seq %d", i, p.Seq)
		}
	}
}

func TestNoRTSMode(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, Config{UseRTS: false})
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.sched.Run(100 * time.Millisecond)
	if len(h.clients[1].received) != 1 {
		t.Fatal("packet not delivered without RTS")
	}
	if h.stations[0].Stats().RTSSent != 0 {
		t.Error("RTS sent in no-RTS mode")
	}
}

func TestRetryLimitDropsPacket(t *testing.T) {
	// The receiver refuses every queue: no CTS ever comes back.
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.clients[1].accept = func(packet.QueueID, topology.NodeID) bool { return false }
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.sched.Run(5 * time.Second)

	if len(h.clients[0].results) != 1 || h.clients[0].results[0] {
		t.Fatalf("expected failed completion, got %v", h.clients[0].results)
	}
	st := h.stations[0].Stats()
	if st.Drops != 1 {
		t.Errorf("drops = %d, want 1", st.Drops)
	}
	if st.Retries != int64(h.medium.Params().RetryLimit)+1 {
		t.Errorf("retries = %d, want %d", st.Retries, h.medium.Params().RetryLimit+1)
	}
	if len(h.clients[1].received) != 0 {
		t.Error("refused packet was delivered")
	}
}

func TestAdmissionRecoversWhenQueueOpens(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	full := true
	h.clients[1].accept = func(packet.QueueID, topology.NodeID) bool { return !full }
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.sched.After(20*time.Millisecond, func() { full = false })
	h.sched.Run(time.Second)
	if len(h.clients[1].received) != 1 {
		t.Fatal("packet not delivered after queue opened")
	}
	if h.stations[0].Stats().Retries == 0 {
		t.Error("expected at least one retry while the queue was full")
	}
}

func TestContendingSendersBothDeliver(t *testing.T) {
	// 0 and 2 both in range of 1 and of each other: carrier sense plus
	// backoff shares the channel; both complete.
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 150, Y: 130}}, DefaultConfig())
	const n = 20
	for i := 0; i < n; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
		h.clients[2].outgoing = append(h.clients[2].outgoing, &Outgoing{Pkt: pkt(1, 2, 1, int64(i)), NextHop: 1})
	}
	h.stations[0].Kick()
	h.stations[2].Kick()
	h.sched.Run(2 * time.Second)
	if got := len(h.clients[1].received); got != 2*n {
		t.Fatalf("received %d, want %d", got, 2*n)
	}
}

func TestDuplicateSuppressionUnderAckLoss(t *testing.T) {
	topo, err := topology.New([]geom.Point{{X: 0}, {X: 200}}, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	par := radio.DefaultParams()
	par.LossProb = 0.15
	h := newMACHarnessParams(t, topo, DefaultConfig(), par)
	const n = 100
	for i := 0; i < n; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
	}
	h.stations[0].Kick()
	h.sched.Run(30 * time.Second)

	seen := make(map[int64]bool)
	last := int64(-1)
	for _, p := range h.clients[1].received {
		if seen[p.Seq] {
			t.Fatalf("duplicate delivery of seq %d", p.Seq)
		}
		seen[p.Seq] = true
		if p.Seq <= last {
			t.Fatalf("reordered delivery: %d after %d", p.Seq, last)
		}
		last = p.Seq
	}
	// With retries, the vast majority must get through.
	if len(seen) < n*9/10 {
		t.Errorf("only %d/%d delivered under 15%% loss", len(seen), n)
	}
}

func TestPiggybackOverheard(t *testing.T) {
	// Node 2 is in range of node 0 but not addressed: it must still
	// learn node 0's buffer states.
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 100, Y: 150}}, DefaultConfig())
	h.clients[0].states = []packet.QueueState{{Queue: 7, Free: false}}
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.sched.Run(100 * time.Millisecond)

	got, ok := h.clients[2].overheard[0]
	if !ok || len(got) != 1 || got[0].Queue != 7 || got[0].Free {
		t.Errorf("overheard states = %v", got)
	}
}

func TestHiddenTerminalEventuallyDelivers(t *testing.T) {
	// Chain 0-1-2-3 with both 0->1 and 2->3 backlogged: the hidden
	// terminal makes 0's life hard, but retries and NAV keep both flows
	// moving (the unfairness shows in the counts).
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	h := newMACHarness(t, pos, DefaultConfig())
	const n = 200
	for i := 0; i < n; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
		h.clients[2].outgoing = append(h.clients[2].outgoing, &Outgoing{Pkt: pkt(1, 2, 3, int64(i)), NextHop: 3})
	}
	h.stations[0].Kick()
	h.stations[2].Kick()
	h.sched.Run(10 * time.Second)

	got01 := len(h.clients[1].received)
	got23 := len(h.clients[3].received)
	if got23 != n {
		t.Errorf("unhindered flow delivered %d/%d", got23, n)
	}
	if got01 == 0 {
		t.Error("hidden-terminal flow completely starved in MAC test")
	}
	if got01 >= got23 {
		t.Errorf("expected hidden-terminal disadvantage: %d vs %d", got01, got23)
	}
}

func TestKickWhileBusyIsSafe(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	for i := 1; i <= 10; i++ {
		h.sched.At(time.Duration(i)*100*time.Microsecond, h.stations[0].Kick)
	}
	h.sched.Run(100 * time.Millisecond)
	if len(h.clients[1].received) != 1 {
		t.Fatalf("received %d, want exactly 1", len(h.clients[1].received))
	}
}

func TestLatePacketArrival(t *testing.T) {
	// MAC idles with an empty client, then a packet shows up.
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.stations[0].Kick() // nothing to send
	h.sched.After(50*time.Millisecond, func() {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, 0), NextHop: 1})
		h.stations[0].Kick()
	})
	h.sched.Run(time.Second)
	if len(h.clients[1].received) != 1 {
		t.Fatal("late packet not delivered")
	}
}

func TestThroughputNearSaturationEstimate(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	const n = 400
	for i := 0; i < n; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
	}
	h.stations[0].Kick()
	dur := 500 * time.Millisecond
	h.sched.Run(dur)
	got := float64(len(h.clients[1].received)) / dur.Seconds()
	want := h.medium.Params().SaturationRate(1024, true)
	if got < want*0.85 || got > want*1.15 {
		t.Errorf("measured saturation %.1f pkt/s, estimate %.1f", got, want)
	}
}

func TestNAVSuppressesThirdParty(t *testing.T) {
	// 0 transmits to 1; node 2 (in range of both) has a packet for 1.
	// Its access must not corrupt the ongoing exchange — everything is
	// eventually delivered collision-free under carrier sense + NAV.
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 100, Y: 140}}, DefaultConfig())
	for i := 0; i < 10; i++ {
		h.clients[0].outgoing = append(h.clients[0].outgoing, &Outgoing{Pkt: pkt(0, 0, 1, int64(i)), NextHop: 1})
	}
	h.clients[2].outgoing = []*Outgoing{{Pkt: pkt(1, 2, 1, 0), NextHop: 1}}
	h.stations[0].Kick()
	h.stations[2].Kick()
	h.sched.Run(time.Second)
	if got := len(h.clients[1].received); got != 11 {
		t.Fatalf("received %d, want 11", got)
	}
	if h.medium.Stats().Corrupted > 2 {
		// An occasional simultaneous backoff expiry can collide, but NAV
		// plus carrier sense keeps it rare on this tiny scenario.
		t.Errorf("too many corrupted deliveries: %+v", h.medium.Stats())
	}
}
