// Package mac implements IEEE 802.11 DCF: CSMA/CA channel access with
// binary exponential backoff, virtual carrier sense (NAV), and the
// RTS/CTS/DATA/ACK exchange, per node, on top of the radio medium.
//
// The upper layer (the forwarding engine) is attached through the Client
// interface using a pull model: whenever the MAC is ready to transmit it
// asks the client for the next eligible packet. This is where the paper's
// congestion-avoidance gating plugs in — a packet whose downstream buffer
// is full is simply not offered to the MAC.
package mac

import (
	"fmt"
	"math/rand"
	"time"

	"gmp/internal/obs"
	"gmp/internal/packet"
	"gmp/internal/radio"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
)

// Outgoing is one packet handed by the client to the MAC for transmission
// to a specific next hop.
type Outgoing struct {
	Pkt     *packet.Packet
	NextHop topology.NodeID
	// Queue is the queue the packet joins at the next hop (advertised in
	// the RTS so the receiver can run its admission check).
	Queue packet.QueueID
	// Origin is the node the packet was received from (or this node for
	// local traffic); the forwarding layer uses it to requeue a failed
	// packet into the right fair-aggregation sub-queue.
	Origin topology.NodeID
}

// Client is the upper layer attached to a MAC station.
type Client interface {
	// NextOutgoing returns the next packet eligible for transmission, or
	// nil if none. Ownership transfers to the MAC until OnSendComplete.
	NextOutgoing() *Outgoing
	// OnSendComplete reports the fate of a previously pulled packet:
	// ok=true when the next hop acknowledged it, ok=false when the retry
	// limit was exhausted and the packet was dropped.
	OnSendComplete(out *Outgoing, ok bool)
	// OnReceive delivers a data packet addressed to this node (either to
	// forward or, at the destination, to consume). Duplicates from ACK
	// loss are filtered by the MAC before this call.
	OnReceive(pkt *packet.Packet, from topology.NodeID)
	// Piggyback returns the node's current buffer-state advertisement to
	// attach to an outgoing frame (§2.2).
	Piggyback() []packet.QueueState
	// OnOverhear processes a buffer-state advertisement overheard from a
	// neighbor's frame.
	OnOverhear(from topology.NodeID, states []packet.QueueState)
	// AcceptQueue reports whether queue q can admit one more packet from
	// the given sender. A receiver withholds CTS when it cannot
	// (congestion avoidance, ref [3] of the paper).
	AcceptQueue(q packet.QueueID, from topology.NodeID) bool
}

// Config controls MAC behavior beyond the shared radio parameters.
type Config struct {
	// UseRTS enables the RTS/CTS handshake before data (the paper's
	// model). When false, DATA is sent directly after backoff.
	UseRTS bool
}

// DefaultConfig enables RTS/CTS, matching the paper's network model.
func DefaultConfig() Config { return Config{UseRTS: true} }

// Stats counts per-station MAC events.
type Stats struct {
	DataSent     int64 // data frames put on air (incl. retries)
	DataAcked    int64 // packets successfully acknowledged
	DataReceived int64 // unique data packets delivered up
	Duplicates   int64 // duplicate data frames suppressed
	RTSSent      int64
	Retries      int64
	Drops        int64 // packets dropped at retry limit
	Broadcasts   int64 // control broadcasts transmitted
}

// BroadcastReceiver is an optional extension of Client: implementations
// receive decoded control broadcasts (link-state dissemination, §6.2).
type BroadcastReceiver interface {
	OnBroadcast(from topology.NodeID, payload any)
}

type phase int

const (
	phaseIdle      phase = iota + 1 // nothing to send
	phaseWaitIdle                   // have packet, medium busy or NAV set
	phaseDIFS                       // sensing idle, DIFS running
	phaseCountdown                  // backoff slots counting down
	phaseTxRTS                      // RTS on the air
	phaseAwaitCTS                   // RTS sent, CTS pending
	phaseTxData                     // DATA on the air
	phaseAwaitAck                   // DATA sent, ACK pending
	phaseDown                       // node crashed (fault injection)
)

func (p phase) String() string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseWaitIdle:
		return "wait-idle"
	case phaseDIFS:
		return "difs"
	case phaseCountdown:
		return "countdown"
	case phaseTxRTS:
		return "tx-rts"
	case phaseAwaitCTS:
		return "await-cts"
	case phaseTxData:
		return "tx-data"
	case phaseAwaitAck:
		return "await-ack"
	case phaseDown:
		return "down"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Station is the per-node DCF entity. It implements radio.Station.
type Station struct {
	id     topology.NodeID
	sched  *sim.Scheduler
	medium *radio.Medium
	par    radio.Params
	cfg    Config
	rng    *rand.Rand
	client Client

	cur     *Outgoing
	ctrl    []*radio.Frame // pending control broadcasts (priority)
	retries int
	cw      int
	ph      phase

	// Precomputed control-frame airtimes (constants of the PHY params).
	ctsAir time.Duration
	ackAir time.Duration

	backoffSlots   int
	countdownStart time.Duration
	countdownTimer sim.Timer
	difsTimer      sim.Timer
	respTimer      sim.Timer
	waitTimer      sim.Timer
	navTimer       sim.Timer

	navUntil   time.Duration
	responding bool
	pulling    bool // reentrancy guard: inside client.NextOutgoing

	// Prebound timer callbacks: method values allocate a closure per
	// use, so the recurring ones are bound once at construction.
	onDIFSDoneFn        func()
	onBackoffDoneFn     func()
	onExchangeTimeoutFn func()
	evaluateFn          func()
	onRTSAiredFn        func()
	onDataAiredFn       func()
	onBroadcastAiredFn  func()
	onCTSSIFSDoneFn     func()
	onResponseAiredFn   func()

	lastSeq map[packet.FlowID]int64

	stats Stats

	// rec is the telemetry recorder (nil when telemetry is off); curSince
	// is the virtual time the current packet was pulled from the client,
	// for MAC service-time spans. Only maintained while rec is set.
	rec      *obs.Recorder
	curSince time.Duration

	// spans is the causal-trace recorder (nil when tracing is off). It
	// observes pulls, backoff segments, deferrals, and retries for
	// sampled packets; it never feeds back into channel access.
	spans *span.Recorder
}

var _ radio.Station = (*Station)(nil)

// NewStation creates the MAC for node id and registers it with the medium.
func NewStation(id topology.NodeID, sched *sim.Scheduler, medium *radio.Medium, cfg Config, rng *rand.Rand, client Client) *Station {
	s := &Station{
		id:      id,
		sched:   sched,
		medium:  medium,
		par:     medium.Params(),
		cfg:     cfg,
		rng:     rng,
		client:  client,
		cw:      medium.Params().CWMin,
		ctsAir:  medium.Params().Airtime(radio.FrameCTS, 0),
		ackAir:  medium.Params().Airtime(radio.FrameAck, 0),
		ph:      phaseIdle,
		lastSeq: make(map[packet.FlowID]int64),
	}
	s.onDIFSDoneFn = s.onDIFSDone
	s.onBackoffDoneFn = s.onBackoffDone
	s.onExchangeTimeoutFn = s.onExchangeTimeout
	s.evaluateFn = s.evaluate
	s.onRTSAiredFn = s.onRTSAired
	s.onDataAiredFn = s.onDataAired
	s.onBroadcastAiredFn = s.onBroadcastAired
	s.onCTSSIFSDoneFn = s.onCTSSIFSDone
	s.onResponseAiredFn = s.onResponseAired
	medium.Register(id, s)
	return s
}

// ID returns the node this station belongs to.
func (s *Station) ID() topology.NodeID { return s.id }

// Stats returns a snapshot of the station's counters.
func (s *Station) Stats() Stats { return s.stats }

// SetRecorder installs the telemetry recorder (nil disables). The
// recorder only observes completed exchanges and retries; it never
// feeds back into channel access, so enabling it cannot change
// simulation behavior.
func (s *Station) SetRecorder(rec *obs.Recorder) { s.rec = rec }

// SetSpans installs the causal-trace recorder (nil disables, the
// default). Like the telemetry recorder it only observes.
func (s *Station) SetSpans(r *span.Recorder) { s.spans = r }

// Down reports whether the station is currently crashed.
func (s *Station) Down() bool { return s.ph == phaseDown }

// SetDown crashes (down=true) or recovers (down=false) the station.
//
// Crashing cancels every pending timer, abandons queued control
// broadcasts, clears the NAV and contention state, and hands any
// in-flight packet back to the client via OnSendComplete(out, false) —
// after the phase is already phaseDown, so a client that requeues the
// packet cannot restart channel access. A frame the station already put
// on the air completes at the medium (propagation is not recalled).
// While down, the station initiates nothing and ignores Kick; the
// medium additionally suppresses all receptions at a down node.
//
// Recovering resets the station to a clean idle state (fresh CWMin, no
// NAV memory) and immediately pulls from the client.
func (s *Station) SetDown(down bool) {
	if down == (s.ph == phaseDown) {
		return
	}
	if down {
		s.difsTimer.Cancel()
		s.countdownTimer.Cancel()
		s.respTimer.Cancel()
		s.waitTimer.Cancel()
		s.navTimer.Cancel()
		s.responding = false
		s.navUntil = 0
		s.ctrl = nil
		s.retries = 0
		s.backoffSlots = 0
		s.cw = s.par.CWMin
		out := s.cur
		s.cur = nil
		s.ph = phaseDown
		if out != nil {
			s.client.OnSendComplete(out, false)
		}
		return
	}
	s.ph = phaseIdle
	s.pullNext()
}

// Kick notifies the MAC that the client may now have an eligible packet
// (new arrival or a downstream buffer opened up). Safe to call anytime.
func (s *Station) Kick() {
	if s.ph != phaseIdle || s.cur != nil || s.pulling {
		return
	}
	s.pullNext()
}

// QueueBroadcast schedules a control broadcast carrying payload
// (payloadBytes long on the air). Broadcasts take priority over data,
// use the normal DIFS+backoff access, and are neither RTS-protected nor
// acknowledged, per 802.11 group-addressed frames.
func (s *Station) QueueBroadcast(payload any, payloadBytes int) {
	if s.ph == phaseDown {
		return // crashed nodes broadcast nothing
	}
	s.ctrl = append(s.ctrl, &radio.Frame{
		Kind:         radio.FrameBroadcast,
		To:           radio.Broadcast,
		LinkFrom:     s.id,
		LinkTo:       s.id,
		Control:      payload,
		ControlBytes: payloadBytes,
	})
	s.Kick()
}

func (s *Station) pullNext() {
	if len(s.ctrl) > 0 {
		s.cur = nil
		s.retries = 0
		s.startAccess()
		return
	}
	s.pulling = true
	s.cur = s.client.NextOutgoing()
	s.pulling = false
	if s.cur == nil {
		s.ph = phaseIdle
		return
	}
	if s.rec != nil {
		s.curSince = s.sched.Now()
	}
	if s.spans != nil {
		s.spans.MACPulled(s.id, s.cur.Pkt)
	}
	s.retries = 0
	s.startAccess()
}

// startAccess begins a fresh channel-access cycle for s.cur: draw a
// backoff, then wait for DIFS idle and count it down.
func (s *Station) startAccess() {
	s.backoffSlots = s.rng.Intn(s.cw + 1)
	s.ph = phaseWaitIdle
	s.evaluate()
}

// virtualIdle reports whether channel access may progress: physical
// carrier idle, NAV expired, not transmitting, no pending SIFS response.
func (s *Station) virtualIdle() bool {
	return !s.medium.BusyAt(s.id) &&
		!s.medium.Transmitting(s.id) &&
		!s.responding &&
		s.sched.Now() >= s.navUntil
}

// evaluate advances the access state machine when in a waiting phase.
func (s *Station) evaluate() {
	if s.ph != phaseWaitIdle {
		return
	}
	if !s.virtualIdle() {
		if s.spans != nil && s.cur != nil {
			s.spans.MACDeferred(s.id, s.cur.Pkt)
		}
		s.armNAVTimer()
		return
	}
	if s.spans != nil && s.cur != nil {
		s.spans.MACResumed(s.id, s.cur.Pkt)
	}
	s.ph = phaseDIFS
	s.difsTimer = s.sched.After(s.par.DIFS, s.onDIFSDoneFn)
}

// armNAVTimer schedules a re-evaluation at NAV expiry when the NAV is the
// blocking condition (the medium will not deliver an OnIdle for it).
func (s *Station) armNAVTimer() {
	now := s.sched.Now()
	if s.navUntil <= now {
		return
	}
	if s.navTimer.Pending() {
		return
	}
	s.navTimer = s.sched.At(s.navUntil, s.evaluateFn)
}

func (s *Station) onDIFSDone() {
	if s.ph != phaseDIFS {
		return
	}
	if !s.virtualIdle() {
		s.ph = phaseWaitIdle
		s.evaluate()
		return
	}
	s.ph = phaseCountdown
	s.countdownStart = s.sched.Now()
	if s.spans != nil && s.cur != nil {
		s.spans.BackoffStart(s.id, s.cur.Pkt, s.backoffSlots)
	}
	s.countdownTimer = s.sched.After(time.Duration(s.backoffSlots)*s.par.SlotTime, s.onBackoffDoneFn)
}

// freeze suspends DIFS or backoff countdown when the channel turns busy.
func (s *Station) freeze() {
	switch s.ph {
	case phaseDIFS:
		s.difsTimer.Cancel()
		s.ph = phaseWaitIdle
	case phaseCountdown:
		elapsed := s.sched.Now() - s.countdownStart
		consumed := int(elapsed / s.par.SlotTime)
		if consumed > s.backoffSlots {
			consumed = s.backoffSlots
		}
		s.backoffSlots -= consumed
		s.countdownTimer.Cancel()
		if s.spans != nil && s.cur != nil {
			s.spans.BackoffEnd(s.id, s.cur.Pkt)
		}
		s.ph = phaseWaitIdle
	default:
		return
	}
	if s.spans != nil && s.cur != nil {
		s.spans.MACDeferred(s.id, s.cur.Pkt)
	}
}

func (s *Station) onBackoffDone() {
	if s.ph != phaseCountdown {
		return
	}
	if !s.virtualIdle() {
		// A busy transition at this exact instant was processed first.
		s.ph = phaseWaitIdle
		s.evaluate()
		return
	}
	s.backoffSlots = 0
	if s.spans != nil && s.cur != nil {
		s.spans.BackoffEnd(s.id, s.cur.Pkt)
	}
	if len(s.ctrl) > 0 {
		s.sendBroadcast()
		return
	}
	if s.cfg.UseRTS {
		s.sendRTS()
	} else {
		s.sendData()
	}
}

// sendBroadcast transmits the next queued control frame: fire and
// forget, no handshake, no retry (group-addressed 802.11 semantics).
func (s *Station) sendBroadcast() {
	f := s.ctrl[0]
	s.ctrl = s.ctrl[1:]
	f.States = s.client.Piggyback()
	s.ph = phaseTxData
	air := s.medium.Airtime(f)
	s.stats.Broadcasts++
	s.medium.Transmit(s.id, f)
	s.sched.After(air, s.onBroadcastAiredFn)
}

// onBroadcastAired completes a control broadcast once it leaves the air.
func (s *Station) onBroadcastAired() {
	if s.ph != phaseTxData {
		return
	}
	s.ph = phaseIdle
	s.pullNext()
}

// exchangeNAV returns the channel reservation that an RTS announces:
// everything after the RTS itself.
func (s *Station) exchangeNAV() time.Duration {
	dataAir := s.medium.DataAirtime(s.cur.Pkt.SizeBytes)
	return 3*s.par.SIFS + s.ctsAir + dataAir + s.ackAir
}

func (s *Station) sendRTS() {
	s.ph = phaseTxRTS
	f := &radio.Frame{
		Kind:     radio.FrameRTS,
		To:       s.cur.NextHop,
		LinkFrom: s.id,
		LinkTo:   s.cur.NextHop,
		NAV:      s.exchangeNAV(),
		States:   s.client.Piggyback(),
		Queue:    s.cur.Queue,
	}
	s.stats.RTSSent++
	air := s.medium.Airtime(f)
	s.medium.Transmit(s.id, f)
	s.sched.After(air, s.onRTSAiredFn)
}

// onRTSAired arms the CTS timeout once the RTS leaves the air.
func (s *Station) onRTSAired() {
	if s.ph != phaseTxRTS {
		return
	}
	s.ph = phaseAwaitCTS
	timeout := s.par.SIFS + s.ctsAir + 2*s.par.SlotTime
	s.waitTimer = s.sched.After(timeout, s.onExchangeTimeoutFn)
}

// onDataAired arms the ACK timeout once a data frame leaves the air.
func (s *Station) onDataAired() {
	if s.ph != phaseTxData {
		return
	}
	s.ph = phaseAwaitAck
	timeout := s.par.SIFS + s.ackAir + 2*s.par.SlotTime
	s.waitTimer = s.sched.After(timeout, s.onExchangeTimeoutFn)
}

func (s *Station) sendData() {
	s.ph = phaseTxData
	dataAir := s.medium.DataAirtime(s.cur.Pkt.SizeBytes)
	ackAir := s.ackAir
	f := &radio.Frame{
		Kind:     radio.FrameData,
		To:       s.cur.NextHop,
		LinkFrom: s.id,
		LinkTo:   s.cur.NextHop,
		NAV:      s.par.SIFS + ackAir,
		Data:     s.cur.Pkt,
		States:   s.client.Piggyback(),
		Queue:    s.cur.Queue,
	}
	s.stats.DataSent++
	s.medium.Transmit(s.id, f)
	s.sched.After(dataAir, s.onDataAiredFn)
}

// onExchangeTimeout fires when an expected CTS or ACK did not arrive.
func (s *Station) onExchangeTimeout() {
	if s.ph != phaseAwaitCTS && s.ph != phaseAwaitAck {
		return
	}
	s.retries++
	s.stats.Retries++
	if s.rec != nil {
		s.rec.MACRetry(s.id, s.cur.Pkt.Flow)
	}
	if s.spans != nil {
		s.spans.MACRetry(s.id, s.cur.Pkt, s.retries)
	}
	if s.retries > s.par.RetryLimit {
		s.stats.Drops++
		out := s.cur
		s.cur = nil
		s.cw = s.par.CWMin
		s.ph = phaseIdle
		s.client.OnSendComplete(out, false)
		if s.cur == nil && s.ph == phaseIdle {
			s.pullNext()
		}
		return
	}
	s.cw = min(2*s.cw+1, s.par.CWMax)
	s.startAccess()
}

// OnBusy implements radio.Station.
func (s *Station) OnBusy() { s.freeze() }

// OnIdle implements radio.Station.
func (s *Station) OnIdle() { s.evaluate() }

// OnFrame implements radio.Station: frame reception and overhearing.
func (s *Station) OnFrame(f *radio.Frame, ok bool) {
	if s.ph == phaseDown {
		// Defensive: the medium already suppresses delivery to down nodes.
		return
	}
	if !ok {
		// Corrupted frames carry no usable information. (EIFS deferral
		// is not modeled; see DESIGN.md.)
		return
	}
	s.client.OnOverhear(f.From, f.States)

	if f.Kind == radio.FrameBroadcast {
		if br, ok := s.client.(BroadcastReceiver); ok {
			br.OnBroadcast(f.From, f.Control)
		}
		return
	}
	if f.To != s.id {
		// Overheard frame: honor its channel reservation.
		if f.NAV > 0 {
			until := s.sched.Now() + f.NAV
			if until > s.navUntil {
				s.navUntil = until
				s.freeze()
				if s.ph == phaseWaitIdle {
					s.armNAVTimer()
				}
			}
		}
		return
	}

	switch f.Kind {
	case radio.FrameRTS:
		s.handleRTS(f)
	case radio.FrameCTS:
		s.handleCTS(f)
	case radio.FrameData:
		s.handleData(f)
	case radio.FrameAck:
		s.handleAck(f)
	}
}

func (s *Station) handleRTS(f *radio.Frame) {
	// Respond only when free to: NAV clear, medium idle, not mid-exchange.
	if s.responding || s.medium.Transmitting(s.id) || s.medium.BusyAt(s.id) {
		return
	}
	if s.sched.Now() < s.navUntil {
		return
	}
	if s.ph == phaseTxRTS || s.ph == phaseAwaitCTS || s.ph == phaseTxData || s.ph == phaseAwaitAck {
		return
	}
	if !s.client.AcceptQueue(f.Queue, f.From) {
		// Congestion-avoidance admission check: no buffer space for the
		// announced queue, so stay silent and let the sender back off.
		return
	}
	s.freeze()
	cts := &radio.Frame{
		Kind:     radio.FrameCTS,
		To:       f.From,
		LinkFrom: f.LinkFrom,
		LinkTo:   f.LinkTo,
		NAV:      f.NAV - s.par.SIFS - s.ctsAir,
		States:   s.client.Piggyback(),
	}
	if cts.NAV < 0 {
		cts.NAV = 0
	}
	s.respond(cts)
}

func (s *Station) handleCTS(f *radio.Frame) {
	if s.ph != phaseAwaitCTS || f.From != s.cur.NextHop {
		return
	}
	s.waitTimer.Cancel()
	s.ph = phaseTxData
	s.sched.After(s.par.SIFS, s.onCTSSIFSDoneFn)
}

// onCTSSIFSDone transmits the data frame one SIFS after the CTS.
func (s *Station) onCTSSIFSDone() {
	if s.ph != phaseTxData {
		return
	}
	s.transmitDataAfterCTS()
}

func (s *Station) transmitDataAfterCTS() {
	dataAir := s.medium.DataAirtime(s.cur.Pkt.SizeBytes)
	ackAir := s.ackAir
	f := &radio.Frame{
		Kind:     radio.FrameData,
		To:       s.cur.NextHop,
		LinkFrom: s.id,
		LinkTo:   s.cur.NextHop,
		NAV:      s.par.SIFS + ackAir,
		Data:     s.cur.Pkt,
		States:   s.client.Piggyback(),
		Queue:    s.cur.Queue,
	}
	s.stats.DataSent++
	s.medium.Transmit(s.id, f)
	s.sched.After(dataAir, s.onDataAiredFn)
}

func (s *Station) handleData(f *radio.Frame) {
	ack := &radio.Frame{
		Kind:     radio.FrameAck,
		To:       f.From,
		LinkFrom: f.LinkFrom,
		LinkTo:   f.LinkTo,
		States:   s.client.Piggyback(),
	}
	s.freeze()
	s.respond(ack)

	pkt := f.Data
	last, seen := s.lastSeq[pkt.Flow]
	if seen && pkt.Seq <= last {
		s.stats.Duplicates++
		return
	}
	s.lastSeq[pkt.Flow] = pkt.Seq
	s.stats.DataReceived++
	s.client.OnReceive(pkt, f.From)
}

func (s *Station) handleAck(f *radio.Frame) {
	if s.ph != phaseAwaitAck || f.From != s.cur.NextHop {
		return
	}
	s.waitTimer.Cancel()
	s.stats.DataAcked++
	if s.rec != nil {
		s.rec.MACService(s.id, s.cur.Pkt.Flow, s.sched.Now()-s.curSince)
	}
	out := s.cur
	s.cur = nil
	s.cw = s.par.CWMin
	s.retries = 0
	s.ph = phaseIdle
	s.client.OnSendComplete(out, true)
	if s.cur == nil && s.ph == phaseIdle {
		s.pullNext()
	}
}

// respond transmits a SIFS-scheduled control response (CTS or ACK).
func (s *Station) respond(f *radio.Frame) {
	s.responding = true
	s.respTimer = s.sched.After(s.par.SIFS, func() {
		if s.medium.Transmitting(s.id) {
			// Should not happen: SIFS responses never overlap own tx.
			s.responding = false
			return
		}
		air := s.medium.Airtime(f)
		s.medium.Transmit(s.id, f)
		s.sched.After(air, s.onResponseAiredFn)
	})
}

// onResponseAired clears the SIFS-response guard once the CTS/ACK is off
// the air and resumes this node's own channel access.
func (s *Station) onResponseAired() {
	s.responding = false
	s.evaluate()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
