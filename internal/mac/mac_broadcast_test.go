package mac

import (
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/topology"
)

// broadcastClient extends fakeClient with broadcast reception.
type broadcastClient struct {
	*fakeClient
	broadcasts []any
	from       []topology.NodeID
}

func (c *broadcastClient) OnBroadcast(from topology.NodeID, payload any) {
	c.broadcasts = append(c.broadcasts, payload)
	c.from = append(c.from, from)
}

func TestBroadcastDelivery(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 100, Y: 150}}, DefaultConfig())
	rx1 := &broadcastClient{fakeClient: h.clients[1]}
	rx2 := &broadcastClient{fakeClient: h.clients[2]}
	h.stations[1].client = rx1
	h.stations[2].client = rx2

	h.stations[0].QueueBroadcast("hello", 20)
	h.sched.Run(100 * time.Millisecond)

	for i, rx := range []*broadcastClient{rx1, rx2} {
		if len(rx.broadcasts) != 1 || rx.broadcasts[0] != "hello" {
			t.Fatalf("receiver %d: broadcasts = %v", i+1, rx.broadcasts)
		}
		if rx.from[0] != 0 {
			t.Errorf("receiver %d: from = %d, want 0", i+1, rx.from[0])
		}
	}
	if got := h.stations[0].Stats().Broadcasts; got != 1 {
		t.Errorf("broadcast count = %d", got)
	}
}

func TestBroadcastHasNoRetries(t *testing.T) {
	// A broadcast with no receivers in range must complete without
	// retries or drops (group-addressed frames are fire-and-forget).
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 1000}}, DefaultConfig())
	h.stations[0].QueueBroadcast(42, 8)
	h.sched.Run(100 * time.Millisecond)
	st := h.stations[0].Stats()
	if st.Broadcasts != 1 || st.Retries != 0 || st.Drops != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBroadcastPriorityOverData(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	rx := &broadcastClient{fakeClient: h.clients[1]}
	h.stations[1].client = rx
	// Data first, then a broadcast before the MAC starts: the broadcast
	// (control priority) must be transmitted first.
	h.clients[0].outgoing = []*Outgoing{{Pkt: pkt(0, 0, 1, 0), NextHop: 1}}
	h.stations[0].QueueBroadcast("ctl", 8)
	h.sched.Run(time.Second)
	if len(rx.broadcasts) != 1 {
		t.Fatal("broadcast lost")
	}
	if len(rx.fakeClient.received) != 1 {
		t.Fatal("data packet lost")
	}
}

func TestBroadcastClientWithoutReceiverInterface(t *testing.T) {
	// A client that does not implement BroadcastReceiver must simply not
	// see broadcasts (no panic).
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.stations[0].QueueBroadcast(1, 8)
	h.sched.Run(100 * time.Millisecond)
	if h.medium.Stats().ControlFrames != 1 {
		t.Error("control frame not accounted")
	}
}

func TestBroadcastCarriesPiggyback(t *testing.T) {
	h := newMACHarness(t, []geom.Point{{X: 0}, {X: 200}}, DefaultConfig())
	h.clients[0].states = []packet.QueueState{{Queue: 3, Free: false}}
	h.stations[0].QueueBroadcast(1, 8)
	h.sched.Run(100 * time.Millisecond)
	got, ok := h.clients[1].overheard[0]
	if !ok || len(got) != 1 || got[0].Queue != 3 {
		t.Errorf("piggyback on broadcast = %v", got)
	}
}
