package churn

import (
	"math"
	"testing"
	"time"

	"gmp/internal/admission"
	"gmp/internal/packet"
	"gmp/internal/sim"
)

func validPoisson() Config {
	return Config{Process: Poisson, Rate: 2}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	cfg := validPoisson()
	if err := cfg.Validate(9); err != nil {
		t.Fatalf("minimal poisson config rejected: %v", err)
	}
	d := Config{
		Process: Diurnal, Rate: 1, DiurnalPeriod: 100 * time.Second, DiurnalAmplitude: 0.8,
		Admission: &admission.Params{MinShare: 50},
	}
	if err := d.Validate(9); err != nil {
		t.Fatalf("diurnal config rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() Config { return validPoisson() }
	cases := map[string]func(*Config){
		"zero rate":           func(c *Config) { c.Rate = 0 },
		"huge rate":           func(c *Config) { c.Rate = 1e7 },
		"nan rate":            func(c *Config) { c.Rate = math.NaN() },
		"inf amplitude":       func(c *Config) { c.Process = Diurnal; c.DiurnalPeriod = time.Second; c.DiurnalAmplitude = math.Inf(1) },
		"negative start":      func(c *Config) { c.Start = -time.Second },
		"stop before start":   func(c *Config) { c.Start = 10 * time.Second; c.Stop = 5 * time.Second },
		"diurnal no period":   func(c *Config) { c.Process = Diurnal },
		"amplitude above 1":   func(c *Config) { c.Process = Diurnal; c.DiurnalPeriod = time.Second; c.DiurnalAmplitude = 1.5 },
		"diurnal on poisson":  func(c *Config) { c.DiurnalAmplitude = 0.5 },
		"bad process":         func(c *Config) { c.Process = 99 },
		"bad matrix":          func(c *Config) { c.Matrix = 99 },
		"negative alpha":      func(c *Config) { c.Alpha = -1 },
		"zero min size":       func(c *Config) { c.MinSizePkts = -1 },
		"max below min":       func(c *Config) { c.MinSizePkts = 100; c.MaxSizePkts = 10 },
		"negative weight":     func(c *Config) { c.Weight = -1 },
		"gateway out of range": func(c *Config) { c.GatewayNode = 9 },
		"negative gateway":    func(c *Config) { c.GatewayNode = -1 },
		"bad admission":       func(c *Config) { c.Admission = &admission.Params{MinShare: -1} },
	}
	for name, mutate := range cases {
		cfg := base()
		mutate(&cfg)
		if err := cfg.Validate(9); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
	one := validPoisson()
	if err := one.Validate(1); err == nil {
		t.Error("Validate accepted a 1-node network")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Process: Diurnal, Rate: 3, DiurnalPeriod: 40 * time.Second, DiurnalAmplitude: 0.6}
	a := Generate(cfg, 9, 120*time.Second, sim.NewRand(7))
	b := Generate(cfg, 9, 120*time.Second, sim.NewRand(7))
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(cfg, 9, 120*time.Second, sim.NewRand(8))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

func TestGeneratePoissonCount(t *testing.T) {
	// λ=2/s over 200s → 400 expected arrivals; across seeds the count
	// must land well inside ±5σ (σ=20).
	cfg := Config{Process: Poisson, Rate: 2, MaxFlows: 4096}
	for seed := int64(1); seed <= 5; seed++ {
		got := len(Generate(cfg, 9, 200*time.Second, sim.NewRand(seed)))
		if got < 300 || got > 500 {
			t.Fatalf("seed %d: %d arrivals, want ≈400", seed, got)
		}
	}
}

func TestGenerateBoundsAndMatrix(t *testing.T) {
	cfg := Config{
		Process: Poisson, Rate: 5, MaxFlows: 4096,
		MinSizePkts: 100, MaxSizePkts: 5000, GatewayNode: 2,
	}
	flows := Generate(cfg, 6, 100*time.Second, sim.NewRand(3))
	if len(flows) == 0 {
		t.Fatal("no arrivals")
	}
	var prev time.Duration
	srcs := map[int]bool{}
	for _, f := range flows {
		if f.At < prev {
			t.Fatalf("arrivals out of order: %v after %v", f.At, prev)
		}
		prev = f.At
		if f.SizePkts < 100 || f.SizePkts > 5000 {
			t.Fatalf("size %d outside [100,5000]", f.SizePkts)
		}
		if f.Dst != 2 {
			t.Fatalf("gateway matrix produced dst %d", f.Dst)
		}
		if f.Src == 2 || f.Src < 0 || f.Src > 5 {
			t.Fatalf("bad source %d", f.Src)
		}
		srcs[int(f.Src)] = true
		wantLife := time.Duration(float64(f.SizePkts) / DefaultDesiredRate * float64(time.Second))
		if f.Lifetime != wantLife {
			t.Fatalf("lifetime %v, want %v for %d pkts", f.Lifetime, wantLife, f.SizePkts)
		}
	}
	if len(srcs) < 3 {
		t.Fatalf("sources not spread: %v", srcs)
	}

	cfg.Matrix = Random
	for _, f := range Generate(cfg, 6, 100*time.Second, sim.NewRand(3)) {
		if f.Src == f.Dst {
			t.Fatalf("random matrix produced self-flow %d→%d", f.Src, f.Dst)
		}
	}
}

func TestGenerateWindowAndCap(t *testing.T) {
	cfg := Config{Process: Poisson, Rate: 10, Start: 20 * time.Second, Stop: 40 * time.Second, MaxFlows: 4096}
	flows := Generate(cfg, 4, 400*time.Second, sim.NewRand(1))
	for _, f := range flows {
		if f.At < 20*time.Second || f.At >= 40*time.Second {
			t.Fatalf("arrival at %v outside [20s,40s)", f.At)
		}
	}
	cfg.MaxFlows = 7
	if got := len(Generate(cfg, 4, 400*time.Second, sim.NewRand(1))); got != 7 {
		t.Fatalf("cap ignored: %d arrivals, want 7", got)
	}
}

func TestGenerateDiurnalModulation(t *testing.T) {
	// Amplitude 1: intensity is 2λ at the peak quarter-period and ~0 at
	// the trough. Compare arrival mass in the first vs second half of
	// one full period starting at phase 0: sin>0 in the first half.
	cfg := Config{
		Process: Diurnal, Rate: 4, DiurnalPeriod: 100 * time.Second,
		DiurnalAmplitude: 1, MaxFlows: 4096,
	}
	var firstHalf, secondHalf int
	for seed := int64(1); seed <= 5; seed++ {
		for _, f := range Generate(cfg, 9, 100*time.Second, sim.NewRand(seed)) {
			if f.At < 50*time.Second {
				firstHalf++
			} else {
				secondHalf++
			}
		}
	}
	if firstHalf <= 2*secondHalf {
		t.Fatalf("diurnal modulation absent: %d arrivals in peak half vs %d in trough half", firstHalf, secondHalf)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	rng := sim.NewRand(5)
	const lo, hi = 100, 1000000
	small, n := 0, 20000
	for i := 0; i < n; i++ {
		x := boundedPareto(rng, 1.5, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("draw %d outside bounds", x)
		}
		if x < 10*lo {
			small++
		}
	}
	// α=1.5: P(X < 10·L) = 1 − (L/10L)^1.5 ≈ 0.968 — mice dominate.
	if frac := float64(small) / float64(n); frac < 0.9 || frac > 0.99 {
		t.Fatalf("mice fraction %v, want ≈0.97", frac)
	}
}

func TestEngineLifecycle(t *testing.T) {
	sched := sim.NewScheduler()
	flows := []Flow{
		{At: 1 * time.Second, Lifetime: 5 * time.Second, Src: 1, Dst: 0},
		{At: 2 * time.Second, Lifetime: 100 * time.Second, Src: 2, Dst: 0},
		{At: 3 * time.Second, Lifetime: 2 * time.Second, Src: 3, Dst: 0},
	}
	var admits, departs, sheds, rejects []packet.FlowID
	eng := Start(sched, flows, 10, Hooks{
		Admit: func(id packet.FlowID, f Flow) admission.Reason {
			if f.Src == 3 {
				return admission.CliqueOverload
			}
			return 0
		},
		OnAdmit:  func(id packet.FlowID, f Flow) { admits = append(admits, id) },
		OnReject: func(id packet.FlowID, f Flow, r admission.Reason) { rejects = append(rejects, id) },
		OnDepart: func(id packet.FlowID, f Flow) { departs = append(departs, id) },
		OnShed:   func(id packet.FlowID, f Flow) { sheds = append(sheds, id) },
	})
	// Shed flow 11 at t=4s, before its natural departure at 102s.
	sched.At(4*time.Second, func() { eng.Shed(11) })
	sched.Run(200 * time.Second)

	arr, adm, rej, shed := eng.Counts()
	if arr != 3 || adm != 2 || rej != 1 || shed != 1 {
		t.Fatalf("counts = %d,%d,%d,%d want 3,2,1,1", arr, adm, rej, shed)
	}
	if len(admits) != 2 || admits[0] != 10 || admits[1] != 11 {
		t.Fatalf("admits = %v", admits)
	}
	if len(rejects) != 1 || rejects[0] != 12 {
		t.Fatalf("rejects = %v", rejects)
	}
	if len(departs) != 1 || departs[0] != 10 {
		t.Fatalf("departs = %v (shed flow must not also depart)", departs)
	}
	if len(sheds) != 1 || sheds[0] != 11 {
		t.Fatalf("sheds = %v", sheds)
	}
	if eng.Active(10) || eng.Active(11) || eng.Active(12) {
		t.Fatal("flows still active after run")
	}
	decs := eng.Decisions()
	if len(decs) != 4 {
		t.Fatalf("decisions = %+v, want 4 entries", decs)
	}
	last := decs[3]
	if last.Flow != 11 || last.Admitted || last.Reason != admission.Shed {
		t.Fatalf("shed decision = %+v", last)
	}
}
