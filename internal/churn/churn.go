// Package churn generates and drives deterministic flow-arrival/
// departure workloads: Poisson and diurnal arrival processes,
// heavy-tailed (bounded-Pareto) flow sizes, and gateway-oriented
// mesh-ISP traffic matrices.
//
// The paper's experiments use a handful of static flows; a production
// mesh sees users arriving and leaving continuously. Generate expands a
// Config into a concrete arrival schedule up front — drawing only from
// the injected *rand.Rand, so equal seeds reproduce the workload byte
// for byte — and Start registers every arrival and departure with the
// event kernel, the same pattern internal/faults and internal/mobility
// use. The simulator layers admission control (internal/admission),
// source start/teardown, and telemetry on the engine's hooks.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gmp/internal/admission"
	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// Process selects the arrival process.
type Process int

// The supported arrival processes.
const (
	// Poisson: arrivals form a homogeneous Poisson process at Rate.
	Poisson Process = iota + 1
	// Diurnal: a nonhomogeneous Poisson process whose intensity follows
	// a sinusoid λ(t) = Rate·(1 + Amplitude·sin(2πt/DiurnalPeriod)),
	// sampled by thinning — the classic day/night load shape compressed
	// to simulation time scales.
	Diurnal
)

// String renders the process in the scenario-JSON spelling.
func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// ParseProcess parses a process name.
func ParseProcess(s string) (Process, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "diurnal":
		return Diurnal, nil
	default:
		return 0, fmt.Errorf("churn: unknown arrival process %q", s)
	}
}

// Matrix selects the traffic matrix: where arriving flows go.
type Matrix int

// The supported traffic matrices.
const (
	// Gateway: every arrival sends to the Gateway node from a uniform
	// non-gateway source — the mesh-ISP workload (§1: "many flows may
	// destine for the same destination, i.e., the gateway").
	Gateway Matrix = iota + 1
	// Random: uniform ordered source/destination pairs.
	Random
)

// String renders the matrix in the scenario-JSON spelling.
func (m Matrix) String() string {
	switch m {
	case Gateway:
		return "gateway"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Matrix(%d)", int(m))
	}
}

// ParseMatrix parses a matrix name.
func ParseMatrix(s string) (Matrix, error) {
	switch s {
	case "gateway":
		return Gateway, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("churn: unknown traffic matrix %q", s)
	}
}

// Defaults for the optional Config fields.
const (
	DefaultAlpha       = 1.5    // bounded-Pareto shape (heavy-tailed, infinite variance)
	DefaultMinSizePkts = 4000   // ≈5 s at the default desired rate
	DefaultMaxSizePkts = 400000 // ≈500 s at the default desired rate
	DefaultDesiredRate = 800    // pkt/s, the paper's d(f)
	DefaultPacketBytes = 1024
	DefaultMaxFlows    = 256
)

// maxRate bounds the arrival intensity: beyond ~1000 arrivals per
// simulated second the schedule, not the network, is the bottleneck.
const maxRate = 1000.0

// Config parameterizes one churn workload.
type Config struct {
	// Process selects the arrival process. Required.
	Process Process
	// Rate is the mean arrival intensity λ in flows per second (the
	// diurnal baseline). Required positive.
	Rate float64
	// Start delays the first arrival; Stop (when positive) ends the
	// arrival window. Zero values mean the whole run. Flows admitted
	// before Stop still run to their own departure times.
	Start, Stop time.Duration
	// DiurnalPeriod is the sinusoid period (Diurnal only; required
	// positive there). DiurnalAmplitude is the relative swing in [0,1]:
	// 1 means intensity oscillates between 0 and 2·Rate.
	DiurnalPeriod    time.Duration
	DiurnalAmplitude float64
	// Alpha, MinSizePkts, MaxSizePkts parameterize the bounded-Pareto
	// flow-size draw in packets; a flow's lifetime is its size divided
	// by its desired rate. Zero values take the defaults above.
	Alpha       float64
	MinSizePkts int64
	MaxSizePkts int64
	// Matrix selects the traffic matrix (default Gateway); GatewayNode
	// is the common destination under Gateway.
	Matrix      Matrix
	GatewayNode topology.NodeID
	// Weight, DesiredRate, SizeBytes apply to every generated flow.
	// Zero values take the defaults (weight 1, 800 pkt/s, 1024 B).
	Weight      float64
	DesiredRate float64
	SizeBytes   int
	// MaxFlows caps the number of generated arrivals (default 256) so a
	// hot λ cannot explode the schedule.
	MaxFlows int
	// Admission, when non-nil, enables the admission test and overload
	// watchdog (see internal/admission). Nil admits everything.
	Admission *admission.Params
}

// WithDefaults returns a copy with zero optional fields replaced by the
// package defaults. Load-time and run-time both normalize through it,
// so a defaulted config saved to JSON reloads as a fixed point.
func (c Config) WithDefaults() Config {
	if c.Matrix == 0 {
		c.Matrix = Gateway
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.MinSizePkts == 0 {
		c.MinSizePkts = DefaultMinSizePkts
	}
	if c.MaxSizePkts == 0 {
		c.MaxSizePkts = DefaultMaxSizePkts
	}
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.DesiredRate == 0 {
		c.DesiredRate = DefaultDesiredRate
	}
	if c.SizeBytes == 0 {
		c.SizeBytes = DefaultPacketBytes
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = DefaultMaxFlows
	}
	if c.Admission != nil {
		p := c.Admission.WithDefaults()
		c.Admission = &p
	}
	return c
}

// Validate checks the configuration against a node count. It is the
// hardening layer behind the scenario-JSON "churn" block, so it must
// reject every non-finite or out-of-range numeric field. Zero-valued
// optional fields are defaulted before checking.
func (c *Config) Validate(numNodes int) error {
	cc := c.WithDefaults()
	switch cc.Process {
	case Poisson, Diurnal:
	default:
		return fmt.Errorf("churn: unknown arrival process %d", int(cc.Process))
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"rate", cc.Rate}, {"amplitude", cc.DiurnalAmplitude}, {"alpha", cc.Alpha},
		{"weight", cc.Weight}, {"desired rate", cc.DesiredRate},
	} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("churn: %s is not finite", v.name)
		}
	}
	if cc.Rate <= 0 || cc.Rate > maxRate {
		return fmt.Errorf("churn: arrival rate %v outside (0,%g] /s", cc.Rate, maxRate)
	}
	if cc.Start < 0 {
		return fmt.Errorf("churn: negative start %v", cc.Start)
	}
	if cc.Stop < 0 {
		return fmt.Errorf("churn: negative stop %v", cc.Stop)
	}
	if cc.Stop > 0 && cc.Stop <= cc.Start {
		return fmt.Errorf("churn: stop %v not after start %v", cc.Stop, cc.Start)
	}
	if cc.Process == Diurnal {
		if cc.DiurnalPeriod <= 0 {
			return fmt.Errorf("churn: diurnal process needs a positive period, got %v", cc.DiurnalPeriod)
		}
		if cc.DiurnalAmplitude < 0 || cc.DiurnalAmplitude > 1 {
			return fmt.Errorf("churn: diurnal amplitude %v outside [0,1]", cc.DiurnalAmplitude)
		}
	} else if cc.DiurnalPeriod != 0 || cc.DiurnalAmplitude != 0 {
		return fmt.Errorf("churn: diurnal fields set on a %s process", cc.Process)
	}
	if cc.Alpha <= 0 {
		return fmt.Errorf("churn: non-positive pareto alpha %v", cc.Alpha)
	}
	if cc.MinSizePkts < 1 {
		return fmt.Errorf("churn: min size %d below 1 packet", cc.MinSizePkts)
	}
	if cc.MaxSizePkts < cc.MinSizePkts {
		return fmt.Errorf("churn: max size %d below min size %d", cc.MaxSizePkts, cc.MinSizePkts)
	}
	if cc.Weight <= 0 {
		return fmt.Errorf("churn: non-positive weight %v", cc.Weight)
	}
	if cc.DesiredRate <= 0 {
		return fmt.Errorf("churn: non-positive desired rate %v", cc.DesiredRate)
	}
	if cc.SizeBytes <= 0 {
		return fmt.Errorf("churn: non-positive packet size %d", cc.SizeBytes)
	}
	if cc.MaxFlows < 1 {
		return fmt.Errorf("churn: non-positive flow cap %d", cc.MaxFlows)
	}
	if numNodes < 2 {
		return fmt.Errorf("churn: need at least 2 nodes, got %d", numNodes)
	}
	if cc.GatewayNode < 0 || int(cc.GatewayNode) >= numNodes {
		return fmt.Errorf("churn: gateway %d outside [0,%d)", cc.GatewayNode, numNodes)
	}
	if cc.Matrix != Gateway && cc.Matrix != Random {
		return fmt.Errorf("churn: unknown traffic matrix %d", int(cc.Matrix))
	}
	if cc.Admission != nil {
		if err := cc.Admission.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Flow is one generated arrival.
type Flow struct {
	// At is the arrival time; Lifetime = SizePkts / DesiredRate is how
	// long the flow generates once admitted.
	At       time.Duration
	Lifetime time.Duration
	Src, Dst topology.NodeID
	Weight   float64
	// DesiredRate and SizeBytes mirror flow.Spec.
	DesiredRate float64
	SizeBytes   int
	// SizePkts is the bounded-Pareto size draw behind Lifetime.
	SizePkts int64
}

// Generate expands the config into a concrete arrival schedule over a
// run of the given duration, drawing only from rng (per arrival: the
// exponential gap, the thinning coin under Diurnal, the endpoint draws,
// then the size draw — a fixed order, so the schedule is a pure
// function of the seed). The config must already validate.
func Generate(cfg Config, numNodes int, duration time.Duration, rng *rand.Rand) []Flow {
	cc := cfg.WithDefaults()
	end := duration
	if cc.Stop > 0 && cc.Stop < end {
		end = cc.Stop
	}
	// Thinning needs the intensity envelope λmax ≥ λ(t).
	lambdaMax := cc.Rate
	if cc.Process == Diurnal {
		lambdaMax = cc.Rate * (1 + cc.DiurnalAmplitude)
	}
	var out []Flow
	t := cc.Start
	for len(out) < cc.MaxFlows {
		t += time.Duration(rng.ExpFloat64() / lambdaMax * float64(time.Second))
		if t >= end {
			break
		}
		if cc.Process == Diurnal {
			phase := 2 * math.Pi * float64(t) / float64(cc.DiurnalPeriod)
			intensity := cc.Rate * (1 + cc.DiurnalAmplitude*math.Sin(phase))
			if rng.Float64()*lambdaMax >= intensity {
				continue // thinned out
			}
		}
		var src, dst topology.NodeID
		switch cc.Matrix {
		case Gateway:
			dst = cc.GatewayNode
			src = topology.NodeID(rng.Intn(numNodes - 1))
			if src >= dst {
				src++ // uniform over the non-gateway nodes
			}
		case Random:
			src = topology.NodeID(rng.Intn(numNodes))
			dst = topology.NodeID(rng.Intn(numNodes - 1))
			if dst >= src {
				dst++
			}
		}
		size := boundedPareto(rng, cc.Alpha, cc.MinSizePkts, cc.MaxSizePkts)
		out = append(out, Flow{
			At:          t,
			Lifetime:    time.Duration(float64(size) / cc.DesiredRate * float64(time.Second)),
			Src:         src,
			Dst:         dst,
			Weight:      cc.Weight,
			DesiredRate: cc.DesiredRate,
			SizeBytes:   cc.SizeBytes,
			SizePkts:    size,
		})
	}
	return out
}

// boundedPareto draws from the bounded Pareto distribution on [lo, hi]
// with shape alpha by inverse-CDF sampling — the standard heavy-tailed
// flow-size model (most flows are mice, a few elephants dominate).
func boundedPareto(rng *rand.Rand, alpha float64, lo, hi int64) int64 {
	l, h := float64(lo), float64(hi)
	u := rng.Float64()
	ratio := math.Pow(l/h, alpha)
	x := l / math.Pow(1-u*(1-ratio), 1/alpha)
	size := int64(math.Round(x))
	if size < lo {
		size = lo
	}
	if size > hi {
		size = hi
	}
	return size
}

// Decision records one admission outcome (including watchdog sheds,
// which appear as a second decision for the flow at shed time).
type Decision struct {
	Flow     packet.FlowID
	At       time.Duration
	Admitted bool
	Reason   admission.Reason // zero when admitted
}

// Hooks are the engine's handles into the simulation. All are optional
// except OnAdmit (an engine that admits flows nobody starts is a bug).
type Hooks struct {
	// Admit decides an arrival; nil admits everything. A non-zero
	// reason rejects the flow.
	Admit func(id packet.FlowID, f Flow) admission.Reason
	// OnAdmit starts the admitted flow's source.
	OnAdmit func(id packet.FlowID, f Flow)
	// OnReject observes a refused arrival.
	OnReject func(id packet.FlowID, f Flow, reason admission.Reason)
	// OnDepart tears an admitted flow down when its lifetime ends.
	OnDepart func(id packet.FlowID, f Flow)
	// OnShed tears a watchdog-shed flow down.
	OnShed func(id packet.FlowID, f Flow)
}

// Engine drives a generated churn schedule over a running simulation.
// All work happens in scheduled callbacks on the simulation goroutine;
// the engine draws no randomness of its own.
type Engine struct {
	sched  *sim.Scheduler
	flows  []Flow
	baseID packet.FlowID
	hooks  Hooks

	active    map[packet.FlowID]int // admitted, not yet departed/shed → schedule index
	decisions []Decision

	arrivals, admitted, rejected, shed int
}

// Start registers every arrival with the scheduler. baseID is the flow
// ID of the first churn flow (schedule index i maps to baseID+i; the
// static flows occupy the IDs below).
func Start(sched *sim.Scheduler, flows []Flow, baseID packet.FlowID, hooks Hooks) *Engine {
	e := &Engine{
		sched:  sched,
		flows:  flows,
		baseID: baseID,
		hooks:  hooks,
		active: make(map[packet.FlowID]int),
	}
	for i := range flows {
		i := i
		sched.At(flows[i].At, func() { e.arrive(i) })
	}
	return e
}

func (e *Engine) arrive(i int) {
	f := e.flows[i]
	id := e.baseID + packet.FlowID(i)
	e.arrivals++
	var reason admission.Reason
	if e.hooks.Admit != nil {
		reason = e.hooks.Admit(id, f)
	}
	if reason != 0 {
		e.rejected++
		e.decisions = append(e.decisions, Decision{Flow: id, At: e.sched.Now(), Reason: reason})
		if e.hooks.OnReject != nil {
			e.hooks.OnReject(id, f, reason)
		}
		return
	}
	e.admitted++
	e.active[id] = i
	e.decisions = append(e.decisions, Decision{Flow: id, At: e.sched.Now(), Admitted: true})
	if e.hooks.OnAdmit != nil {
		e.hooks.OnAdmit(id, f)
	}
	e.sched.At(f.At+f.Lifetime, func() { e.depart(id) })
}

func (e *Engine) depart(id packet.FlowID) {
	i, ok := e.active[id]
	if !ok {
		return // shed before its natural departure
	}
	delete(e.active, id)
	if e.hooks.OnDepart != nil {
		e.hooks.OnDepart(id, e.flows[i])
	}
}

// Shed removes an admitted flow ahead of its departure (the overload
// watchdog's action). Inactive IDs are a no-op.
func (e *Engine) Shed(id packet.FlowID) {
	i, ok := e.active[id]
	if !ok {
		return
	}
	delete(e.active, id)
	e.shed++
	e.decisions = append(e.decisions, Decision{Flow: id, At: e.sched.Now(), Reason: admission.Shed})
	if e.hooks.OnShed != nil {
		e.hooks.OnShed(id, e.flows[i])
	}
}

// Active reports whether the flow is admitted and not yet departed.
func (e *Engine) Active(id packet.FlowID) bool { _, ok := e.active[id]; return ok }

// Schedule returns the generated arrivals.
func (e *Engine) Schedule() []Flow { return e.flows }

// BaseID returns the first churn flow's ID.
func (e *Engine) BaseID() packet.FlowID { return e.baseID }

// Decisions returns every admission decision so far, in event order.
func (e *Engine) Decisions() []Decision { return append([]Decision(nil), e.decisions...) }

// Counts returns (arrivals fired, admitted, rejected, shed).
func (e *Engine) Counts() (arrivals, admitted, rejected, shed int) {
	return e.arrivals, e.admitted, e.rejected, e.shed
}
