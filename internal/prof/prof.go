// Package prof adds optional pprof profiling flags to the command-line
// tools. Every binary that calls Register gains -cpuprofile and
// -memprofile flags; profiles are written in the format consumed by
// `go tool pprof`.
//
// Usage:
//
//	fs := flag.NewFlagSet(...)
//	pf := prof.Register(fs)
//	fs.Parse(args)
//	stop, err := pf.Start()
//	if err != nil { return err }
//	defer stop()
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations parsed from the command line.
type Flags struct {
	CPUProfile string
	MemProfile string
}

// Register adds -cpuprofile and -memprofile to fs and returns the
// struct the parsed values land in.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// Start begins CPU profiling if requested. The returned stop function
// ends CPU profiling and writes the heap profile if requested; call it
// exactly once (typically via defer) after the workload completes. When
// neither flag is set, Start is a no-op returning a no-op stop.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing CPU profile:", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: creating heap profile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
			}
			if err := mf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing heap profile:", err)
			}
		}
	}, nil
}
