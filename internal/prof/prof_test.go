package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestNoFlagsIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	pf := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	pf := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles are non-trivial.
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i
	}
	_ = sink
	stop()
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestBadPathErrors(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	pf := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "/does/not/exist/cpu.out"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Start(); err == nil {
		t.Error("unwritable CPU profile path did not error")
	}
}
