// Package maxminref provides a centralized weighted maxmin reference
// solver: progressive filling ("water-filling") over clique capacity
// constraints. GMP is a distributed protocol that should converge to the
// same allocation; the solver provides the ground truth that tests and
// EXPERIMENTS.md compare against.
package maxminref

import (
	"fmt"
	"math"

	"gmp/internal/clique"
	"gmp/internal/routing"
	"gmp/internal/topology"
)

// Problem is a weighted maxmin allocation instance: maximize rates r_f
// lexicographically in normalized order μ_f = r_f / w_f subject to
// r_f ≤ d_f and, for every constraint q, Σ_f Usage[q][f]·r_f ≤ Cap[q].
type Problem struct {
	Weights    []float64
	Demands    []float64
	Usage      [][]float64 // [constraint][flow]
	Capacities []float64
}

// Validate checks dimensions and signs.
func (p *Problem) Validate() error {
	n := len(p.Weights)
	if len(p.Demands) != n {
		return fmt.Errorf("maxminref: %d weights but %d demands", n, len(p.Demands))
	}
	if len(p.Usage) != len(p.Capacities) {
		return fmt.Errorf("maxminref: %d usage rows but %d capacities", len(p.Usage), len(p.Capacities))
	}
	for i, w := range p.Weights {
		if w <= 0 {
			return fmt.Errorf("maxminref: flow %d has non-positive weight %v", i, w)
		}
		if p.Demands[i] <= 0 {
			return fmt.Errorf("maxminref: flow %d has non-positive demand %v", i, p.Demands[i])
		}
	}
	for q, row := range p.Usage {
		if len(row) != n {
			return fmt.Errorf("maxminref: usage row %d has %d entries, want %d", q, len(row), n)
		}
		if p.Capacities[q] <= 0 {
			return fmt.Errorf("maxminref: constraint %d has non-positive capacity %v", q, p.Capacities[q])
		}
		for f, u := range row {
			if u < 0 {
				return fmt.Errorf("maxminref: usage[%d][%d] negative: %v", q, f, u)
			}
		}
	}
	return nil
}

// Solve runs progressive filling and returns the weighted maxmin rates.
// All unfrozen flows rise at normalized level λ (rate w_f·λ) until a flow
// reaches its demand or a constraint saturates; saturated-constraint
// crossers freeze; repeat.
func (p *Problem) Solve() ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Weights)
	rates := make([]float64, n)
	frozen := make([]bool, n)
	lambda := 0.0

	for remaining := n; remaining > 0; {
		// Next level at which an unfrozen flow caps out on demand.
		next := math.Inf(1)
		for f := 0; f < n; f++ {
			if !frozen[f] {
				if lf := p.Demands[f] / p.Weights[f]; lf < next {
					next = lf
				}
			}
		}
		// Next level at which a constraint saturates.
		for q, row := range p.Usage {
			frozenLoad, slope := 0.0, 0.0
			for f := 0; f < n; f++ {
				if row[f] == 0 {
					continue
				}
				if frozen[f] {
					frozenLoad += row[f] * rates[f]
				} else {
					slope += row[f] * p.Weights[f]
				}
			}
			if slope == 0 {
				continue
			}
			lq := (p.Capacities[q] - frozenLoad) / slope
			if lq < lambda {
				lq = lambda // numerical guard: levels never decrease
			}
			if lq < next {
				next = lq
			}
		}
		if math.IsInf(next, 1) {
			break
		}
		lambda = next

		// Freeze every flow that hit its demand or crosses a now-tight
		// constraint at this level.
		for f := 0; f < n; f++ {
			if frozen[f] {
				continue
			}
			if p.Demands[f]/p.Weights[f] <= lambda+1e-12 {
				rates[f] = p.Demands[f]
				frozen[f] = true
				remaining--
			}
		}
		for q, row := range p.Usage {
			frozenLoad, slope := 0.0, 0.0
			for f := 0; f < n; f++ {
				if row[f] == 0 {
					continue
				}
				if frozen[f] {
					frozenLoad += row[f] * rates[f]
				} else {
					slope += row[f] * p.Weights[f]
				}
			}
			if slope == 0 {
				continue
			}
			if frozenLoad+slope*lambda >= p.Capacities[q]-1e-9 {
				for f := 0; f < n; f++ {
					if !frozen[f] && row[f] > 0 {
						rates[f] = p.Weights[f] * lambda
						frozen[f] = true
						remaining--
					}
				}
			}
		}
	}
	// Any flow never constrained gets its full demand.
	for f := 0; f < n; f++ {
		if !frozen[f] {
			rates[f] = p.Demands[f]
		}
	}
	return rates, nil
}

// FlowSpec is the slice of a flow the builder needs.
type FlowSpec struct {
	Src    topology.NodeID
	Dst    topology.NodeID
	Weight float64
	Demand float64
}

// BuildProblem assembles a Problem from routed flows and the clique
// decomposition. Each clique is one constraint; a flow consumes one unit
// of a clique's capacity per link of its path inside the clique (packet
// transmissions on clique links are serialized, §3.3). capacity gives a
// clique's effective capacity in packets per second.
func BuildProblem(flows []FlowSpec, routes *routing.Table, cliques *clique.Set, capacity func(*clique.Clique) float64) (*Problem, error) {
	p := &Problem{
		Weights: make([]float64, len(flows)),
		Demands: make([]float64, len(flows)),
	}
	pathLinks := make([][]topology.Link, len(flows))
	for i, f := range flows {
		p.Weights[i] = f.Weight
		p.Demands[i] = f.Demand
		links, err := routes.Links(f.Src, f.Dst)
		if err != nil {
			return nil, fmt.Errorf("maxminref: flow %d: %w", i, err)
		}
		pathLinks[i] = links
	}
	for _, c := range cliques.All() {
		row := make([]float64, len(flows))
		used := false
		for i, links := range pathLinks {
			for _, l := range links {
				if c.Contains(l) {
					row[i]++
					used = true
				}
			}
		}
		if !used {
			continue
		}
		p.Usage = append(p.Usage, row)
		p.Capacities = append(p.Capacities, capacity(c))
	}
	return p, nil
}
