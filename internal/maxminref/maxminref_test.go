package maxminref

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gmp/internal/clique"
	"gmp/internal/geom"
	"gmp/internal/routing"
	"gmp/internal/topology"
)

func solve(t *testing.T, p *Problem) []float64 {
	t.Helper()
	rates, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return rates
}

func TestSingleConstraintEqualSplit(t *testing.T) {
	p := &Problem{
		Weights:    []float64{1, 1, 1},
		Demands:    []float64{100, 100, 100},
		Usage:      [][]float64{{1, 1, 1}},
		Capacities: []float64{30},
	}
	for i, r := range solve(t, p) {
		if math.Abs(r-10) > 1e-9 {
			t.Errorf("flow %d rate %v, want 10", i, r)
		}
	}
}

func TestWeightedSplit(t *testing.T) {
	p := &Problem{
		Weights:    []float64{1, 2, 3},
		Demands:    []float64{100, 100, 100},
		Usage:      [][]float64{{1, 1, 1}},
		Capacities: []float64{60},
	}
	want := []float64{10, 20, 30}
	for i, r := range solve(t, p) {
		if math.Abs(r-want[i]) > 1e-9 {
			t.Errorf("flow %d rate %v, want %v", i, r, want[i])
		}
	}
}

func TestDemandCapFreesCapacity(t *testing.T) {
	// Flow 0 wants only 5; the remaining 25 splits between flows 1, 2.
	p := &Problem{
		Weights:    []float64{1, 1, 1},
		Demands:    []float64{5, 100, 100},
		Usage:      [][]float64{{1, 1, 1}},
		Capacities: []float64{30},
	}
	rates := solve(t, p)
	want := []float64{5, 12.5, 12.5}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Errorf("rates = %v, want %v", rates, want)
			break
		}
	}
}

func TestTwoBottlenecksClassicMaxmin(t *testing.T) {
	// Classic wired example: flow A crosses both links, flow B link 1,
	// flow C link 2; link 1 capacity 10, link 2 capacity 20.
	p := &Problem{
		Weights: []float64{1, 1, 1},
		Demands: []float64{100, 100, 100},
		Usage: [][]float64{
			{1, 1, 0},
			{1, 0, 1},
		},
		Capacities: []float64{10, 20},
	}
	rates := solve(t, p)
	want := []float64{5, 5, 15}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestFig2StructurePrediction(t *testing.T) {
	// Clique 0 holds flows f1, f2; clique 1 holds f2, f3, f4 (§7.1).
	// Maxmin: f2=f3=f4=C/3, f1 = C - f2.
	p := &Problem{
		Weights: []float64{1, 1, 1, 1},
		Demands: []float64{800, 800, 800, 800},
		Usage: [][]float64{
			{1, 1, 0, 0},
			{0, 1, 1, 1},
		},
		Capacities: []float64{520, 520},
	}
	rates := solve(t, p)
	third := 520.0 / 3
	want := []float64{520 - third, third, third, third}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-6 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestFig2WeightedPrediction(t *testing.T) {
	// Table 2 weights (1,2,1,3): clique-1 rates split 2:1:3.
	p := &Problem{
		Weights: []float64{1, 2, 1, 3},
		Demands: []float64{800, 800, 800, 800},
		Usage: [][]float64{
			{1, 1, 0, 0},
			{0, 1, 1, 1},
		},
		Capacities: []float64{520, 520},
	}
	rates := solve(t, p)
	lambda := 520.0 / 6
	want := []float64{520 - 2*lambda, 2 * lambda, lambda, 3 * lambda}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-6 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMultiHopCrossings(t *testing.T) {
	// One 3-hop flow alone in one clique: rate = C/3 (three serialized
	// transmissions per packet).
	p := &Problem{
		Weights:    []float64{1},
		Demands:    []float64{800},
		Usage:      [][]float64{{3}},
		Capacities: []float64{520},
	}
	rates := solve(t, p)
	if math.Abs(rates[0]-520.0/3) > 1e-9 {
		t.Errorf("rate = %v, want %v", rates[0], 520.0/3)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []*Problem{
		{Weights: []float64{1}, Demands: []float64{1, 2}},
		{Weights: []float64{0}, Demands: []float64{1}},
		{Weights: []float64{1}, Demands: []float64{-1}},
		{Weights: []float64{1}, Demands: []float64{1}, Usage: [][]float64{{1}}, Capacities: []float64{0}},
		{Weights: []float64{1}, Demands: []float64{1}, Usage: [][]float64{{1, 2}}, Capacities: []float64{5}},
		{Weights: []float64{1}, Demands: []float64{1}, Usage: [][]float64{{-1}}, Capacities: []float64{5}},
	}
	for i, p := range bad {
		if _, err := p.Solve(); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

// maxminProperties checks feasibility and maxmin optimality of a solution:
// no constraint violated, and every demand-unsatisfied flow has a
// bottleneck in the Bertsekas-Gallager sense — a tight constraint on
// which its normalized rate is maximal, so raising it would necessarily
// lower an equal-or-poorer flow.
func maxminProperties(p *Problem, rates []float64) string {
	const eps = 1e-6
	for q, row := range p.Usage {
		load := 0.0
		for f, u := range row {
			load += u * rates[f]
		}
		if load > p.Capacities[q]+eps {
			return "constraint violated"
		}
	}
	for f := range rates {
		if rates[f] > p.Demands[f]+eps {
			return "demand exceeded"
		}
		if rates[f] < -eps {
			return "negative rate"
		}
		if rates[f] >= p.Demands[f]-eps {
			continue // demand-satisfied flows need no bottleneck
		}
		// Unsatisfied flow must cross a tight constraint where every
		// other flow with positive usage has normalized rate <= its own
		// (raising f there would only hurt equal-or-poorer flows).
		mu := rates[f] / p.Weights[f]
		hasBottleneck := false
		for q, row := range p.Usage {
			if row[f] == 0 {
				continue
			}
			load := 0.0
			for g, u := range row {
				load += u * rates[g]
			}
			if load < p.Capacities[q]-eps {
				continue // not tight
			}
			ok := true
			for g, u := range row {
				if g == f || u == 0 {
					continue
				}
				if rates[g]/p.Weights[g] > mu+eps {
					ok = false
					break
				}
			}
			if ok {
				hasBottleneck = true
				break
			}
		}
		if !hasBottleneck {
			return "flow without a maxmin bottleneck"
		}
	}
	return ""
}

func TestMaxminOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		p := &Problem{
			Weights:    make([]float64, n),
			Demands:    make([]float64, n),
			Usage:      make([][]float64, m),
			Capacities: make([]float64, m),
		}
		for i := 0; i < n; i++ {
			p.Weights[i] = 0.5 + rng.Float64()*3
			p.Demands[i] = 50 + rng.Float64()*800
		}
		for q := 0; q < m; q++ {
			p.Usage[q] = make([]float64, n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					p.Usage[q][i] = float64(1 + rng.Intn(3))
				}
			}
			p.Capacities[q] = 100 + rng.Float64()*900
		}
		rates, err := p.Solve()
		if err != nil {
			return false
		}
		if msg := maxminProperties(p, rates); msg != "" {
			t.Logf("seed %d: %s (rates=%v)", seed, msg, rates)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildProblemOnChain(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	routes := routing.Build(topo)
	cliques := clique.Build(topo)
	flows := []FlowSpec{
		{Src: 0, Dst: 3, Weight: 1, Demand: 800},
		{Src: 1, Dst: 3, Weight: 1, Demand: 800},
		{Src: 2, Dst: 3, Weight: 1, Demand: 800},
	}
	p, err := BuildProblem(flows, routes, cliques, func(*clique.Clique) float64 { return 520 })
	if err != nil {
		t.Fatal(err)
	}
	// The 4-node chain has one clique holding all three links; flow 0
	// crosses it 3 times, flow 1 twice, flow 2 once.
	if len(p.Usage) != 1 {
		t.Fatalf("got %d constraints, want 1 (cliques: %d)", len(p.Usage), len(cliques.All()))
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if p.Usage[0][i] != want[i] {
			t.Fatalf("usage = %v, want %v", p.Usage[0], want)
		}
	}
	rates := solve(t, p)
	for i, r := range rates {
		if math.Abs(r-520.0/6) > 1e-9 {
			t.Errorf("flow %d rate %v, want %v", i, r, 520.0/6)
		}
	}
}

func TestBuildProblemNoRoute(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1000}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	routes := routing.Build(topo)
	cliques := clique.Build(topo)
	_, err = BuildProblem([]FlowSpec{{Src: 0, Dst: 1, Weight: 1, Demand: 10}}, routes, cliques, func(*clique.Clique) float64 { return 1 })
	if err == nil {
		t.Error("unreachable flow accepted")
	}
}
