package maxminref

import (
	"math/rand"
	"testing"
)

// Property-based tests: on randomized problems the solver's allocation
// must be (1) feasible, (2) weighted-maxmin — no flow's rate can be
// raised without lowering a flow of equal or smaller normalized rate —
// and (3) invariant under permutation of the flows.

const (
	feasEps = 1e-6 // absolute slack tolerated on capacities/demands
	relEps  = 1e-6 // relative tolerance when comparing normalized rates
)

// randomProblem generates a valid Problem with up to 8 flows and 6
// constraints. Usage entries are small integers (a flow crossing a
// clique on k links consumes k units), with at least one constraint
// touching at least one flow.
func randomProblem(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(8)
	m := 1 + rng.Intn(6)
	p := &Problem{
		Weights: make([]float64, n),
		Demands: make([]float64, n),
	}
	for f := 0; f < n; f++ {
		p.Weights[f] = 0.25 + 4*rng.Float64()
		p.Demands[f] = 1 + 999*rng.Float64()
	}
	for q := 0; q < m; q++ {
		row := make([]float64, n)
		used := false
		for f := 0; f < n; f++ {
			switch rng.Intn(4) {
			case 0:
				row[f] = 1
				used = true
			case 1:
				row[f] = float64(1 + rng.Intn(3))
				used = true
			}
		}
		if !used {
			row[rng.Intn(n)] = 1
		}
		p.Usage = append(p.Usage, row)
		p.Capacities = append(p.Capacities, 10+1990*rng.Float64())
	}
	return p
}

// load returns Σ_f usage[q][f]·r_f for constraint q.
func load(p *Problem, q int, rates []float64) float64 {
	sum := 0.0
	for f, u := range p.Usage[q] {
		sum += u * rates[f]
	}
	return sum
}

func assertFeasible(t *testing.T, p *Problem, rates []float64) {
	t.Helper()
	for f, r := range rates {
		if r < 0 {
			t.Fatalf("flow %d: negative rate %v", f, r)
		}
		if r > p.Demands[f]+feasEps {
			t.Fatalf("flow %d: rate %v exceeds demand %v", f, r, p.Demands[f])
		}
	}
	for q := range p.Usage {
		if l := load(p, q, rates); l > p.Capacities[q]+feasEps {
			t.Fatalf("constraint %d: load %v exceeds capacity %v", q, l, p.Capacities[q])
		}
	}
}

// assertMaxmin checks the bottleneck condition: every flow not capped
// by its demand must cross a saturated constraint in which its
// normalized rate is maximal. That is exactly the weighted-maxmin
// optimality certificate — raising such a flow forces a decrease on a
// flow whose normalized rate is no larger.
func assertMaxmin(t *testing.T, p *Problem, rates []float64) {
	t.Helper()
	norm := func(f int) float64 { return rates[f] / p.Weights[f] }
	for f := range rates {
		if rates[f] >= p.Demands[f]-feasEps {
			continue // demand-capped: cannot be raised at all
		}
		bottlenecked := false
		for q, row := range p.Usage {
			if row[f] == 0 {
				continue
			}
			if load(p, q, rates) < p.Capacities[q]-feasEps {
				continue // slack constraint cannot block f
			}
			maximal := true
			for g, u := range row {
				if u > 0 && norm(g) > norm(f)*(1+relEps)+feasEps {
					maximal = false
					break
				}
			}
			if maximal {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %d (rate %v, norm %v) has no saturated bottleneck where it is maximal:\nrates %v\nproblem %+v",
				f, rates[f], norm(f), rates, p)
		}
	}
}

func TestSolvePropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20080619)) // ICDCS'08, deterministic corpus
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		rates, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rates) != len(p.Weights) {
			t.Fatalf("trial %d: %d rates for %d flows", trial, len(rates), len(p.Weights))
		}
		assertFeasible(t, p, rates)
		assertMaxmin(t, p, rates)
	}
}

// permuteProblem returns a copy of p with flows reordered by perm
// (column f of the copy is column perm[f] of the original).
func permuteProblem(p *Problem, perm []int) *Problem {
	n := len(p.Weights)
	q := &Problem{
		Weights:    make([]float64, n),
		Demands:    make([]float64, n),
		Capacities: append([]float64(nil), p.Capacities...),
	}
	for f, src := range perm {
		q.Weights[f] = p.Weights[src]
		q.Demands[f] = p.Demands[src]
	}
	for _, row := range p.Usage {
		newRow := make([]float64, n)
		for f, src := range perm {
			newRow[f] = row[src]
		}
		q.Usage = append(q.Usage, newRow)
	}
	return q
}

func TestSolveOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng)
		base, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(p.Weights))
		permuted, err := permuteProblem(p, perm).Solve()
		if err != nil {
			t.Fatal(err)
		}
		for f, src := range perm {
			got, want := permuted[f], base[src]
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			tol := relEps * (1 + want)
			if diff > tol {
				t.Fatalf("trial %d: flow %d (orig %d) rate %v != %v under permutation %v",
					trial, f, src, got, want, perm)
			}
		}
	}
}
