package resultcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestSumFraming(t *testing.T) {
	a := Sum([]byte("ab"), []byte("c"))
	b := Sum([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("section boundaries are not part of the key: Sum(ab,c) == Sum(a,bc)")
	}
	if Sum([]byte("x")) != Sum([]byte("x")) {
		t.Fatal("Sum is not deterministic")
	}
	if Sum([]byte("x")) == Sum([]byte("x"), nil) {
		t.Fatal("trailing empty section must change the key")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	k := Sum([]byte("hello"))
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != k {
		t.Fatalf("ParseKey(%q) = %v, want %v", k.String(), parsed, k)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted junk")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("ParseKey accepted a short key")
	}
}

func TestMemoryGetPut(t *testing.T) {
	c, err := New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	k := Sum([]byte("job"))
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(k, []byte("result")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(k)
	if !ok || string(v) != "result" {
		t.Fatalf("Get = %q,%v want result,true", v, ok)
	}
	// The cache owns its copy: mutating the returned slice must not
	// corrupt the stored value.
	v[0] = 'X'
	v2, _ := c.Get(k)
	if string(v2) != "result" {
		t.Fatalf("stored value corrupted through returned slice: %q", v2)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	k := func(i int) Key { return Sum([]byte(fmt.Sprintf("k%d", i))) }
	c.Put(k(0), []byte("v0"))
	c.Put(k(1), []byte("v1"))
	c.Get(k(0)) // refresh 0; 1 becomes LRU
	c.Put(k(2), []byte("v2"))
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(k(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskLayer(t *testing.T) {
	dir := t.TempDir()
	c, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := Sum([]byte("a")), Sum([]byte("b"))
	c.Put(k0, []byte("v0"))
	c.Put(k1, []byte("v1")) // evicts k0 from memory; it stays on disk
	if c.Len() != 1 {
		t.Fatalf("memory holds %d entries, want 1", c.Len())
	}
	v, ok := c.Get(k0)
	if !ok || string(v) != "v0" {
		t.Fatalf("disk layer lost evicted entry: %q,%v", v, ok)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", st)
	}

	// A fresh cache over the same directory sees earlier writes.
	c2, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.Get(k1); !ok || string(v) != "v1" {
		t.Fatalf("new process missed persisted entry: %q,%v", v, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(16, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := Sum([]byte(fmt.Sprintf("k%d", i%20)))
				want := []byte(fmt.Sprintf("v%d", i%20))
				c.Put(k, want)
				if v, ok := c.Get(k); ok && !bytes.Equal(v, want) {
					t.Errorf("goroutine %d: Get = %q want %q", g, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
