// Package resultcache is a content-addressed store for simulation
// results: values are byte blobs keyed by the SHA-256 of a canonical
// serialization of everything that determines the result (scenario,
// run configuration, seed, version salt). Because the simulator is
// deterministic, a key collision-free hash of its full input *is* the
// result's identity — a second request for the same work can be served
// from the cache with zero simulation runs.
//
// The store is a bounded in-memory LRU with an optional write-through
// on-disk layer. Evicted entries survive on disk (when a directory is
// configured) and are promoted back into memory on the next Get, so the
// memory bound caps the working set, not the total corpus. All methods
// are safe for concurrent use; hit/miss/eviction counters feed the
// service's /metrics endpoint.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key is a content address: the SHA-256 of the canonical serialization
// of a result's full input.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("resultcache: parsing key: %w", err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("resultcache: key has %d bytes, want %d", len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Sum derives a key from an ordered list of byte sections. Each section
// is length-prefixed (8-byte big-endian) before hashing, so section
// boundaries are part of the identity: Sum("ab","c") != Sum("a","bc").
// Callers hash labeled canonical encodings — e.g. (salt, scenario,
// config, seed) — so that any input change moves the key.
func Sum(sections ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	for _, s := range sections {
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write(s)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats are the cache's monotonic counters plus the current entry count.
type Stats struct {
	// Hits counts Gets served from memory or disk; Misses the rest.
	Hits   int64
	Misses int64
	// DiskHits counts the subset of Hits that had to read the disk
	// layer (the entry had been evicted from memory, or was written by
	// an earlier process).
	DiskHits int64
	// Puts counts stores; Evictions counts memory-LRU evictions (the
	// evicted entry survives on disk when a directory is configured).
	Puts      int64
	Evictions int64
	// Entries is the current in-memory entry count.
	Entries int
}

type entry struct {
	key   Key
	value []byte
}

// Cache is a bounded LRU of result blobs with an optional disk layer.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	dir   string

	hits, misses, diskHits, puts, evictions int64
}

// New builds a cache holding at most maxEntries blobs in memory
// (maxEntries <= 0 means an effectively unbounded memory layer). dir,
// when non-empty, enables the write-through disk layer under that
// directory (created if missing).
func New(maxEntries int, dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: creating %s: %w", dir, err)
		}
	}
	return &Cache{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
		dir:   dir,
	}, nil
}

// path shards entries by the first key byte so no single directory
// accumulates the whole corpus.
func (c *Cache) path(k Key) string {
	hexk := k.String()
	return filepath.Join(c.dir, hexk[:2], hexk+".bin")
}

// Get returns a copy of the blob stored under k. A memory miss falls
// through to the disk layer; a disk hit is promoted back into memory.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		v := append([]byte(nil), el.Value.(*entry).value...)
		c.hits++
		c.mu.Unlock()
		return v, true
	}
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		if v, err := os.ReadFile(c.path(k)); err == nil {
			c.mu.Lock()
			c.hits++
			c.diskHits++
			c.insertLocked(k, v)
			c.mu.Unlock()
			return append([]byte(nil), v...), true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a copy of v under k, evicting the least recently used
// in-memory entries beyond the bound. With a disk layer the write is
// atomic (temp file + rename), so a concurrent reader sees either the
// old blob or the new one, never a torn file.
func (c *Cache) Put(k Key, v []byte) error {
	c.mu.Lock()
	c.puts++
	c.insertLocked(k, append([]byte(nil), v...))
	dir := c.dir
	c.mu.Unlock()

	if dir == "" {
		return nil
	}
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// insertLocked adds or refreshes the in-memory entry and enforces the
// LRU bound. Caller holds c.mu.
func (c *Cache) insertLocked(k Key, v []byte) {
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).value = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, value: v})
	for c.max > 0 && c.ll.Len() > c.max {
		last := c.ll.Back()
		if last == nil {
			break
		}
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the current in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		DiskHits:  c.diskHits,
		Puts:      c.puts,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
	}
}
