package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"horizontal", Point{0, 0}, Point{3, 0}, 3},
		{"vertical", Point{0, 0}, Point{0, 4}, 4},
		{"pythagorean", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSqConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float32) bool {
		a, b := Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}
		d := Dist(a, b)
		return math.Abs(DistSq(a, b)-d*d) <= 1e-6*math.Max(1, d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithinRange(t *testing.T) {
	a, b := Point{0, 0}, Point{250, 0}
	if !WithinRange(a, b, 250) {
		t.Error("boundary distance should be within range (inclusive)")
	}
	if WithinRange(a, b, 249.999) {
		t.Error("beyond range reported within")
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Point{0, 0}, Point{10, 20})
	if m.X != 5 || m.Y != 10 {
		t.Errorf("Midpoint = %v, want {5 10}", m)
	}
}

// Property: triangle inequality.
func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float32) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
