package geom

import "math"

// Grid is a uniform spatial hash over an indexed set of points: point i
// lives in the bucket of the square cell containing it, and range
// queries inspect only the cells overlapping the query disc instead of
// every point. With cell edge equal to the query radius a Near call
// reads the 3×3 cell neighborhood, so candidate counts track local
// density rather than the population size — the O(N·density) topology
// construction and incremental updates are built on this.
//
// The grid's bounds are fixed at construction from the initial point
// set. Points moved outside the bounds are clamped to the border cells;
// clamping is monotone and non-expansive in each coordinate, so the
// cell-distance bound behind Near still holds and its candidate set
// stays a superset of the true in-range points (border buckets merely
// grow, degrading constants, never correctness).
//
// A Grid is not safe for concurrent mutation.
type Grid struct {
	cell       float64
	minX, minY float64
	cols, rows int
	buckets    [][]int32
	cellOf     []int32 // point id -> bucket index
	slotOf     []int32 // point id -> slot within its bucket (swap-remove)
}

// NewGrid builds a grid over pts with the given cell edge in meters.
// Callers index points by their position in pts; positions are not
// retained (Move supplies the new coordinates explicitly). The cell
// edge must be positive; it is grown as needed to cap the cell count
// at O(len(pts)), which bounds memory when the bounding box is huge
// relative to the population.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 {
		panic("geom: non-positive grid cell edge")
	}
	g := &Grid{cell: cell}
	if len(pts) > 0 {
		g.minX, g.minY = pts[0].X, pts[0].Y
		maxX, maxY := pts[0].X, pts[0].Y
		for _, p := range pts[1:] {
			g.minX = math.Min(g.minX, p.X)
			g.minY = math.Min(g.minY, p.Y)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
		limit := 4*len(pts) + 64
		for {
			g.cols = int((maxX-g.minX)/g.cell) + 1
			g.rows = int((maxY-g.minY)/g.cell) + 1
			if g.cols*g.rows <= limit {
				break
			}
			g.cell *= 2
		}
	} else {
		g.cols, g.rows = 1, 1
	}
	g.buckets = make([][]int32, g.cols*g.rows)
	g.cellOf = make([]int32, len(pts))
	g.slotOf = make([]int32, len(pts))
	// Count first so each bucket is allocated exactly once.
	counts := make([]int32, len(g.buckets))
	for i, p := range pts {
		b := g.bucketIndex(p)
		g.cellOf[i] = int32(b)
		counts[b]++
	}
	for i := range pts {
		b := g.cellOf[i]
		if g.buckets[b] == nil {
			g.buckets[b] = make([]int32, 0, counts[b])
		}
		g.slotOf[i] = int32(len(g.buckets[b]))
		g.buckets[b] = append(g.buckets[b], int32(i))
	}
	return g
}

// Cell returns the effective cell edge in meters (the requested edge,
// possibly grown by the construction-time cell-count cap).
func (g *Grid) Cell() float64 { return g.cell }

// bucketIndex maps a point to its (clamped) bucket.
func (g *Grid) bucketIndex(p Point) int {
	cx := int((p.X - g.minX) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	cy := int((p.Y - g.minY) / g.cell)
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Move rebuckets point id at its new position p. O(1) amortized: a
// swap-remove from the old bucket and an append to the new one; a
// no-op when the point stays inside its cell.
func (g *Grid) Move(id int, p Point) {
	old := g.cellOf[id]
	nb := int32(g.bucketIndex(p))
	if nb == old {
		return
	}
	b := g.buckets[old]
	s := g.slotOf[id]
	last := int32(len(b) - 1)
	if s != last {
		movedID := b[last]
		b[s] = movedID
		g.slotOf[movedID] = s
	}
	g.buckets[old] = b[:last]
	g.cellOf[id] = nb
	g.slotOf[id] = int32(len(g.buckets[nb]))
	g.buckets[nb] = append(g.buckets[nb], int32(id))
}

// Near appends to dst the ids of every point bucketed within the cell
// neighborhood covering the disc of radius r around p, and returns the
// extended slice. The result is a duplicate-free superset of the points
// within distance r of p (including p's own id if p is a grid point);
// callers filter by the exact geometric predicate. Order is
// unspecified — callers needing determinism sort the result. Reuse dst
// across calls (dst[:0]) to avoid allocation.
func (g *Grid) Near(p Point, r float64, dst []int32) []int32 {
	rr := int(math.Ceil(r / g.cell))
	// Clamp the query cell exactly as bucketIndex clamps stored points:
	// the superset guarantee compares clamped coordinates on both sides.
	b := g.bucketIndex(p)
	cx, cy := b%g.cols, b/g.cols
	x0, x1 := clampRange(cx-rr, cx+rr, g.cols)
	y0, y1 := clampRange(cy-rr, cy+rr, g.rows)
	for y := y0; y <= y1; y++ {
		base := y * g.cols
		for x := x0; x <= x1; x++ {
			dst = append(dst, g.buckets[base+x]...)
		}
	}
	return dst
}

// clampRange clips [lo, hi] to [0, n-1].
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	return lo, hi
}
