package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteNear is the oracle: every point within distance r of p.
func bruteNear(pts []Point, p Point, r float64) []int {
	var out []int
	for i, q := range pts {
		if WithinRange(p, q, r) {
			out = append(out, i)
		}
	}
	return out
}

// checkSuperset asserts the grid's candidate set covers the oracle and
// contains no duplicates.
func checkSuperset(t *testing.T, g *Grid, pts []Point, p Point, r float64) {
	t.Helper()
	cand := g.Near(p, r, nil)
	seen := make(map[int32]bool, len(cand))
	for _, id := range cand {
		if seen[id] {
			t.Fatalf("Near(%v, %v): duplicate candidate %d", p, r, id)
		}
		seen[id] = true
	}
	for _, id := range bruteNear(pts, p, r) {
		if !seen[int32(id)] {
			t.Fatalf("Near(%v, %v): in-range point %d (at %v) missing from candidates", p, r, id, pts[id])
		}
	}
}

func TestGridNearCoversBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(120)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 2000, Y: rng.Float64() * 1500}
		}
		cell := 50 + rng.Float64()*400
		g := NewGrid(pts, cell)
		for q := 0; q < 20; q++ {
			p := Point{X: rng.Float64()*2400 - 200, Y: rng.Float64()*1900 - 200}
			r := rng.Float64() * 600
			checkSuperset(t, g, pts, p, r)
		}
		// Query at every stored point too (the topology build pattern).
		for _, p := range pts {
			checkSuperset(t, g, pts, p, cell)
		}
	}
}

func TestGridMoveRebuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 80
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	g := NewGrid(pts, 250)
	for step := 0; step < 500; step++ {
		id := rng.Intn(n)
		// Include far out-of-bounds destinations: clamped border cells
		// must keep serving these points.
		pts[id] = Point{X: rng.Float64()*3000 - 1000, Y: rng.Float64()*3000 - 1000}
		g.Move(id, pts[id])
		p := Point{X: rng.Float64()*3000 - 1000, Y: rng.Float64()*3000 - 1000}
		checkSuperset(t, g, pts, p, 250)
	}
	// After the churn every id must still be bucketed exactly once.
	var all []int32
	all = g.Near(Point{X: 500, Y: 500}, 1e9, all)
	if len(all) != n {
		t.Fatalf("after moves: %d ids bucketed, want %d", len(all), n)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, id := range all {
		if int32(i) != id {
			t.Fatalf("after moves: bucketed ids %v not a permutation of 0..%d", all, n-1)
		}
	}
}

func TestGridCellCountCap(t *testing.T) {
	// A tiny cell over a huge bounding box must not allocate a huge
	// grid: the edge grows until the cell count is O(N).
	pts := []Point{{0, 0}, {1e6, 1e6}, {5e5, 2e5}}
	g := NewGrid(pts, 1)
	if cells := g.cols * g.rows; cells > 4*len(pts)+64 {
		t.Fatalf("cell count %d exceeds cap", cells)
	}
	if g.Cell() <= 1 {
		t.Fatalf("cell edge %v not grown under the cap", g.Cell())
	}
	checkSuperset(t, g, pts, Point{X: 5e5, Y: 2e5}, 1e5)
}

func TestGridSinglePointAndEmpty(t *testing.T) {
	g := NewGrid([]Point{{3, 4}}, 250)
	if got := g.Near(Point{3, 4}, 250, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Near on single-point grid = %v, want [0]", got)
	}
	empty := NewGrid(nil, 250)
	if got := empty.Near(Point{0, 0}, 250, nil); len(got) != 0 {
		t.Fatalf("Near on empty grid = %v, want empty", got)
	}
}
