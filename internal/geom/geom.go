// Package geom provides the small amount of planar geometry needed to
// model node placement and radio ranges in a multihop wireless network.
package geom

import "math"

// Point is a position on the simulation plane, in meters.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between p and q in meters.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and sufficient for range comparisons.
func DistSq(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// WithinRange reports whether p and q are no farther apart than r meters.
func WithinRange(p, q Point, r float64) bool {
	return DistSq(p, q) <= r*r
}

// Midpoint returns the point halfway between p and q.
func Midpoint(p, q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}
