package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	for _, base := range []int64{0, 1, -7, 1 << 40} {
		for i := 0; i < 100; i++ {
			a := DeriveSeed(base, i)
			b := DeriveSeed(base, i)
			if a != b {
				t.Fatalf("DeriveSeed(%d, %d) not stable: %d vs %d", base, i, a, b)
			}
			if a == 0 {
				t.Fatalf("DeriveSeed(%d, %d) = 0 (collides with config defaults)", base, i)
			}
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d derive the same seed %d", prev, i, s)
		}
		seen[s] = i
	}
	// Different bases must decorrelate.
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("bases 1 and 2 derive the same seed for index 0")
	}
}

func TestMapOrderedResults(t *testing.T) {
	const n = 50
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	for _, workers := range []int{1, 4, 16} {
		res, err := Map(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestMapWorkerCountIndependence(t *testing.T) {
	jobs := make([]Job[int64], 64)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int64, error) { return DeriveSeed(9, i), nil }
	}
	serial, err := Map(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), jobs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Value != parallel[i].Value {
			t.Fatalf("job %d: serial %d != parallel %d", i, serial[i].Value, parallel[i].Value)
		}
	}
}

func TestMapCapturesPanic(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { panic("boom") },
		func(context.Context) (int, error) { return 3, nil },
	}
	res, err := Map(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", res[0].Err, res[2].Err)
	}
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("panicking job's error = %v, want PanicError", res[1].Err)
	}
	if pe.Value != "boom" || !strings.Contains(string(pe.Stack), "runner") {
		t.Errorf("panic capture lost detail: %v", pe)
	}
}

func TestMapPerJobErrors(t *testing.T) {
	sentinel := errors.New("bad config")
	jobs := []Job[string]{
		func(context.Context) (string, error) { return "", sentinel },
		func(context.Context) (string, error) { return "ok", nil },
	}
	res, err := Map(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatalf("per-job failure escalated to batch failure: %v", err)
	}
	if !errors.Is(res[0].Err, sentinel) || res[1].Err != nil || res[1].Value != "ok" {
		t.Fatalf("results %+v", res)
	}
}

func TestMapTimeout(t *testing.T) {
	jobs := []Job[int]{
		func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return 1, nil
			}
		},
		func(context.Context) (int, error) { return 2, nil },
	}
	res, err := Map(context.Background(), jobs, Options{Workers: 2, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want deadline exceeded", res[0].Err)
	}
	if res[1].Err != nil || res[1].Value != 2 {
		t.Errorf("fast job suffered from sibling timeout: %+v", res[1])
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job[int], 32)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			if started.Add(1) == 1 {
				cancel() // cancel the batch as soon as the first job runs
			}
			<-release
			return 0, ctx.Err()
		}
	}
	done := make(chan struct{})
	var res []Result[int]
	var err error
	go func() {
		res, err = Map(ctx, jobs, Options{Workers: 2})
		close(done)
	}()
	// Unblock the in-flight jobs once cancellation has propagated.
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
	undispatched := 0
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) && r.Elapsed == 0 {
			undispatched++
		}
	}
	if undispatched == 0 {
		t.Error("cancellation dispatched every job anyway")
	}
}

func TestMapNilJob(t *testing.T) {
	res, err := Map(context.Background(), []Job[int]{nil}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Error("nil job accepted")
	}
}

func TestMapEmpty(t *testing.T) {
	res, err := Map[int](context.Background(), nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

func TestMapParallelism(t *testing.T) {
	// With W workers, at least min(W, n) jobs must be in flight
	// simultaneously: each job waits until `peak` reaches 2.
	var inFlight, peak atomic.Int32
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			deadline := time.Now().Add(2 * time.Second)
			for peak.Load() < 2 {
				if time.Now().After(deadline) {
					return 0, fmt.Errorf("never saw 2 concurrent jobs")
				}
				time.Sleep(time.Millisecond)
			}
			return 0, nil
		}
	}
	res, err := Map(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want >= 2", peak.Load())
	}
}
