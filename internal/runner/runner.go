// Package runner executes batches of independent jobs across a worker
// pool. It is the experiment engine behind gmp.RunMany: N simulation
// configurations (seeds × scenarios × protocols × parameter values) fan
// out over GOMAXPROCS goroutines while the results stay byte-identical
// to a serial execution.
//
// The determinism contract has three legs:
//
//   - Seed derivation depends only on (base seed, job index) — see
//     DeriveSeed — never on worker count or completion order.
//   - Results are collected into a slice indexed by job position, so the
//     caller observes them in submission order.
//   - Jobs must not share mutable state; the pool adds none of its own.
//
// A panicking job is captured (PanicError carries the value and stack)
// instead of taking the process down, so one corrupt configuration in a
// thousand-run sweep costs one result, not the batch.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// DeriveSeed derives the simulation seed for the job at the given index
// from a base seed using the splitmix64 finalizer. The derivation is a
// pure function of (base, index): results cannot depend on how many
// workers ran the batch or in what order jobs completed. Distinct
// indices map to distinct seeds (splitmix64 is a bijection on the
// 64-bit state), and the returned seed is never 0, so it survives
// "zero means default" config fields.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15 // golden-ratio increment
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return int64(z)
}

// Job is one unit of work. The context is cancelled when the batch is
// cancelled or the per-job timeout elapses; long-running jobs should
// honor it.
type Job[T any] func(ctx context.Context) (T, error)

// Options configures a batch execution.
type Options struct {
	// Workers is the pool size. Zero (or negative) means
	// runtime.GOMAXPROCS(0). Workers has no effect on results, only on
	// wall-clock time.
	Workers int
	// Timeout bounds each job's execution (0 = unbounded). A job that
	// overruns gets context.DeadlineExceeded as its Result.Err.
	Timeout time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result pairs one job's outcome with its submission index.
type Result[T any] struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Value is the job's return value (zero when Err is non-nil).
	Value T
	// Err is the job's error, a PanicError if it panicked, or the
	// context error if the batch was cancelled before or while it ran.
	Err error
	// Elapsed is the job's wall-clock execution time (0 for jobs never
	// started). Diagnostic only — not covered by the determinism
	// contract.
	Elapsed time.Duration
}

// PanicError is the Result.Err of a job that panicked.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v", e.Value)
}

// Map executes the jobs across the worker pool and returns one Result
// per job, ordered by job index regardless of completion order. Map
// itself returns an error only when ctx is cancelled (jobs that never
// ran carry ctx.Err() in their Result.Err); per-job failures are
// reported in the corresponding Result only.
func Map[T any](ctx context.Context, jobs []Job[T], opts Options) ([]Result[T], error) {
	results := make([]Result[T], len(jobs))
	for i := range results {
		results[i].Index = i
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = runOne(ctx, i, jobs[i], opts.Timeout)
			}
		}()
	}

dispatch:
	for i := range jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			// Jobs not yet dispatched fail with the batch's error.
			for j := i; j < len(jobs); j++ {
				if results[j].Err == nil {
					results[j].Err = ctx.Err()
				}
			}
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	return results, ctx.Err()
}

// Run executes a single job in the calling goroutine with the pool's
// panic capture and optional deadline: a panicking job yields a
// PanicError instead of unwinding the caller. It is the one-job form of
// Map, used by long-running services (the gmpd job queue) that manage
// their own dispatch but want the same containment semantics.
func Run[T any](ctx context.Context, job Job[T], timeout time.Duration) Result[T] {
	return runOne(ctx, 0, job, timeout)
}

// runOne executes a single job with panic capture and the optional
// per-job deadline.
func runOne[T any](ctx context.Context, index int, job Job[T], timeout time.Duration) (res Result[T]) {
	res.Index = index
	if job == nil {
		res.Err = fmt.Errorf("runner: job %d is nil", index)
		return res
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Value = *new(T)
			res.Err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = job(ctx)
	return res
}
