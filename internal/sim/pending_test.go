package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestPendingMatchesBruteForce drives the scheduler through a random
// interleaving of schedules, cancellations, and clock advances, checking
// Pending() after every operation against an independently maintained
// count of live events.
func TestPendingMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		var live []Timer // timers believed pending
		fired := 0

		check := func(op string) {
			// Brute force: a timer is pending iff its handle says so, and
			// the scheduler's count must equal the number of such handles.
			n := 0
			for _, tm := range live {
				if tm.Pending() {
					n++
				}
			}
			if got := s.Pending(); got != n {
				t.Fatalf("seed %d after %s: Pending() = %d, brute force count = %d", seed, op, got, n)
			}
		}

		for op := 0; op < 500; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // schedule
				live = append(live, s.After(time.Duration(rng.Intn(100))*time.Microsecond, func() { fired++ }))
				check("schedule")
			case r < 8: // cancel a random timer (possibly already dead)
				if len(live) > 0 {
					tm := live[rng.Intn(len(live))]
					was := tm.Pending()
					if got := tm.Cancel(); got != was {
						t.Fatalf("seed %d: Cancel() = %v on timer with Pending() = %v", seed, got, was)
					}
					check("cancel")
				}
			default: // advance the clock, firing some events
				s.Run(s.Now() + time.Duration(rng.Intn(50))*time.Microsecond)
				check("run")
			}
		}
		s.Run(s.Now() + time.Millisecond)
		check("drain")
		if s.Pending() != 0 {
			t.Fatalf("seed %d: queue not drained: %d left", seed, s.Pending())
		}
	}
}

// TestSchedulerSteadyStateAllocs pins the event-pool behavior: once the
// free list is primed, the arm/fire and arm/cancel cycles allocate
// nothing.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}

	// Prime the pool.
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, fn)
	}
	s.Run(s.Now() + time.Millisecond)

	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.After(time.Duration(i)*time.Microsecond, fn)
		}
		s.Run(s.Now() + time.Millisecond)
	}); avg > 0 {
		t.Errorf("arm/fire cycle allocates %.1f objects per run, want 0", avg)
	}

	if avg := testing.AllocsPerRun(200, func() {
		var tms [32]Timer
		for i := range tms {
			tms[i] = s.After(time.Duration(i+1)*time.Microsecond, fn)
		}
		for _, tm := range tms {
			tm.Cancel()
		}
	}); avg > 0 {
		t.Errorf("arm/cancel cycle allocates %.1f objects per run, want 0", avg)
	}
}

// BenchmarkSchedulerTimers measures the MAC-like timer churn pattern:
// arm a handful of timers, cancel some, fire the rest.
func BenchmarkSchedulerTimers(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tms [4]Timer
		for j := range tms {
			tms[j] = s.After(time.Duration(j+1)*time.Microsecond, fn)
		}
		tms[1].Cancel()
		tms[3].Cancel()
		s.Run(s.Now() + 10*time.Microsecond)
	}
}
