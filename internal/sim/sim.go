// Package sim implements the discrete-event simulation kernel used by the
// wireless network simulator: a virtual clock, an event heap with stable
// FIFO ordering among simultaneous events, and cancellable timers.
//
// The kernel is single-threaded by design. All protocol state machines run
// as event callbacks on one goroutine, which makes simulations fully
// deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Scheduler owns the virtual clock and the pending event queue.
//
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
}

// NewScheduler returns a scheduler with the clock at zero and no pending
// events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Pending returns the number of scheduled events that have not yet fired
// or been cancelled.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t earlier than Now) is a programming error and panics. Events scheduled
// for the same instant fire in scheduling order.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v in the past (now %v)", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time. Negative
// durations panic.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Step fires the earliest pending event and advances the clock to its
// timestamp. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		ev, _ := heap.Pop(&s.queue).(*event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run fires events in timestamp order until the queue drains or the next
// event lies beyond until. The clock finishes exactly at until (if events
// drained earlier the clock is still advanced to until).
func (s *Scheduler) Run(until time.Duration) {
	if until < s.now {
		panic(fmt.Sprintf("sim: Run until %v is before now %v", until, s.now))
	}
	s.stopped = false
	for !s.stopped && s.queue.Len() > 0 {
		ev := s.queue[0]
		if ev.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		ev.fn()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
}

// Stop aborts a Run in progress after the current event callback returns.
func (s *Scheduler) Stop() {
	s.stopped = true
}

// Timer is a handle to a scheduled event that allows cancellation.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from firing. Cancelling an already
// fired or already cancelled timer is a no-op. It reports whether the
// callback was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// NewRand returns a deterministic pseudo-random source for the simulation.
// Every stochastic component of the simulator draws from a *rand.Rand so
// that runs are reproducible for a given seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: eventQueue.Push called with non-event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	ev.fired = true
	*q = old[:n-1]
	return ev
}
