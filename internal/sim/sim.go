// Package sim implements the discrete-event simulation kernel used by the
// wireless network simulator: a virtual clock, an event heap with stable
// FIFO ordering among simultaneous events, and cancellable timers.
//
// The kernel is single-threaded by design. All protocol state machines run
// as event callbacks on one goroutine, which makes simulations fully
// deterministic for a given seed.
//
// Events are pooled: fired and cancelled events return to a free list and
// are recycled by later schedules, so steady-state timer churn (the MAC
// layer arms and cancels several timers per frame exchange) allocates
// nothing. The pending queue is an indexed 4-ary heap ordered by
// (timestamp, schedule sequence), which both halves the sift depth of a
// binary heap and lets Cancel remove an event immediately instead of
// leaving a tombstone to skip at pop time.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Scheduler owns the virtual clock and the pending event queue.
//
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now     time.Duration
	queue   []*event // 4-ary min-heap of live events
	seq     uint64
	stopped bool
	free    []*event // recycled events
}

// NewScheduler returns a scheduler with the clock at zero and no pending
// events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Pending returns the number of scheduled events that have not yet fired
// or been cancelled. O(1): cancelled events leave the queue immediately.
func (s *Scheduler) Pending() int {
	return len(s.queue)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t earlier than Now) is a programming error and panics. Events scheduled
// for the same instant fire in scheduling order.
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v in the past (now %v)", t, s.now))
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current virtual time. Negative
// durations panic.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// release returns a dequeued event to the free list. Bumping the
// generation invalidates every Timer handle still pointing at it.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	s.free = append(s.free, ev)
}

// Step fires the earliest pending event and advances the clock to its
// timestamp. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.popMin()
	s.now = ev.at
	fn := ev.fn
	s.release(ev)
	fn()
	return true
}

// Run fires events in timestamp order until the queue drains or the next
// event lies beyond until. The clock finishes exactly at until (if events
// drained earlier the clock is still advanced to until).
func (s *Scheduler) Run(until time.Duration) {
	if until < s.now {
		panic(fmt.Sprintf("sim: Run until %v is before now %v", until, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 {
		if s.queue[0].at > until {
			break
		}
		ev := s.popMin()
		s.now = ev.at
		fn := ev.fn
		s.release(ev)
		fn()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
}

// Stop aborts a Run in progress after the current event callback returns.
func (s *Scheduler) Stop() {
	s.stopped = true
}

// Timer is a handle to a scheduled event that allows cancellation. The
// zero Timer is valid and behaves like an already-fired timer. Handles
// stay safe after their event fires and is recycled: a generation
// counter distinguishes the original event from its reincarnations.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from firing. Cancelling an already
// fired or already cancelled timer is a no-op. It reports whether the
// callback was still pending.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	t.ev.sched.removeAt(t.ev.index)
	t.ev.sched.release(t.ev)
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// NewRand returns a deterministic pseudo-random source for the simulation.
// Every stochastic component of the simulator draws from a *rand.Rand so
// that runs are reproducible for a given seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int
	gen   uint64
	sched *Scheduler
}

// less orders events by (timestamp, schedule sequence): FIFO among
// simultaneous events.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The queue is a 4-ary heap: children of slot i live at 4i+1..4i+4.

func (s *Scheduler) push(ev *event) {
	ev.sched = s
	ev.index = len(s.queue)
	s.queue = append(s.queue, ev)
	s.up(ev.index)
}

func (s *Scheduler) popMin() *event {
	ev := s.queue[0]
	s.removeAt(0)
	return ev
}

// removeAt deletes the event at heap slot i, preserving heap order.
func (s *Scheduler) removeAt(i int) {
	last := len(s.queue) - 1
	s.queue[i] = s.queue[last]
	s.queue[i].index = i
	s.queue[last] = nil
	s.queue = s.queue[:last]
	if i < last {
		s.down(i)
		s.up(i)
	}
}

func (s *Scheduler) up(i int) {
	ev := s.queue[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := s.queue[parent]
		if !less(ev, p) {
			break
		}
		s.queue[i] = p
		p.index = i
		i = parent
	}
	s.queue[i] = ev
	ev.index = i
}

func (s *Scheduler) down(i int) {
	n := len(s.queue)
	ev := s.queue[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(s.queue[c], s.queue[best]) {
				best = c
			}
		}
		if !less(s.queue[best], ev) {
			break
		}
		s.queue[i] = s.queue[best]
		s.queue[i].index = i
		i = best
	}
	s.queue[i] = ev
	ev.index = i
}
