package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimestampOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(time.Second)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOAmongSimultaneousEvents(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(42*time.Millisecond, func() { at = s.Now() })
	s.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Errorf("callback saw Now() = %v, want 42ms", at)
	}
	if s.Now() != time.Second {
		t.Errorf("after Run, Now() = %v, want 1s", s.Now())
	}
}

func TestSchedulerRunStopsAtBoundary(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Error("event beyond Run boundary fired")
	}
	if s.Now() != time.Second {
		t.Errorf("Now() = %v, want 1s", s.Now())
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Error("event not fired by later Run")
	}
}

func TestSchedulerAfterIsRelative(t *testing.T) {
	s := NewScheduler()
	var second time.Duration
	s.At(100*time.Millisecond, func() {
		s.After(50*time.Millisecond, func() { second = s.Now() })
	})
	s.Run(time.Second)
	if second != 150*time.Millisecond {
		t.Errorf("After fired at %v, want 150ms", second)
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(10*time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending before firing")
	}
	if !tm.Cancel() {
		t.Error("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	s.Run(time.Second)
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(10*time.Millisecond, func() {})
	s.Run(time.Second)
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestZeroTimerSafe(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Error("zero timer pending")
	}
	if tm.Cancel() {
		t.Error("zero timer cancel reported true")
	}
}

func TestSchedulerStep(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(time.Millisecond, func() { n++ })
	s.At(2*time.Millisecond, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(time.Millisecond, func() { n++; s.Stop() })
	s.At(2*time.Millisecond, func() { n++ })
	s.Run(time.Second)
	if n != 1 {
		t.Errorf("Stop did not abort Run: n=%d", n)
	}
}

func TestSchedulerPanicsOnPastEvent(t *testing.T) {
	s := NewScheduler()
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run(time.Second)
}

func TestSchedulerPanicsOnNilCallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	NewScheduler().At(0, nil)
}

func TestSchedulerPending(t *testing.T) {
	s := NewScheduler()
	a := s.At(time.Millisecond, func() {})
	s.At(2*time.Millisecond, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	a.Cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1", got)
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			s.After(time.Millisecond, recurse)
		}
	}
	s.After(time.Millisecond, recurse)
	s.Run(time.Second)
	if depth != 100 {
		t.Errorf("chained events: depth = %d, want 100", depth)
	}
}

// Property: for any set of event times, callbacks observe a
// non-decreasing clock and every event within the horizon fires.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		var seen []time.Duration
		for _, off := range offsets {
			s.At(time.Duration(off)*time.Microsecond, func() { seen = append(seen, s.Now()) })
		}
		s.Run(time.Second)
		if len(seen) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random interleavings of scheduling and cancellation never fire
// a cancelled event and always fire the rest.
func TestSchedulerCancellationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		fired := make([]bool, 50)
		timers := make([]Timer, 50)
		cancelled := make([]bool, 50)
		for i := 0; i < 50; i++ {
			i := i
			timers[i] = s.At(time.Duration(rng.Intn(1000))*time.Microsecond, func() { fired[i] = true })
		}
		for i := 0; i < 50; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = timers[i].Cancel()
			}
		}
		s.Run(time.Second)
		for i := 0; i < 50; i++ {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRunBoundaryEventFires(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(time.Second, func() { fired = true })
	s.Run(time.Second) // event exactly at the boundary fires
	if !fired {
		t.Error("event at Run boundary did not fire")
	}
}

func TestAfterZeroDuration(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(0, func() { fired = true })
	s.Run(time.Millisecond)
	if !fired {
		t.Error("zero-delay event did not fire")
	}
}

func TestRunBackwardsPanics(t *testing.T) {
	s := NewScheduler()
	s.Run(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("Run into the past did not panic")
		}
	}()
	s.Run(time.Millisecond)
}
