package packet

import "testing"

func TestQueueIDHelpers(t *testing.T) {
	if QueueForDest(7) != QueueID(7) {
		t.Error("QueueForDest mismatch")
	}
	if QueueForFlow(3) != QueueID(3) {
		t.Error("QueueForFlow mismatch")
	}
	if SharedQueue != QueueID(0) {
		t.Error("SharedQueue not zero")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 2, Src: 1, Dst: 5, Seq: 9}
	if got := p.String(); got != "pkt{f2 1->5 #9}" {
		t.Errorf("String() = %q", got)
	}
}
