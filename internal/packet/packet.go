// Package packet defines the data units and piggybacked control fields
// shared by the MAC, forwarding, and protocol layers.
package packet

import (
	"fmt"
	"time"

	"gmp/internal/topology"
)

// FlowID identifies an end-to-end flow. IDs are dense, starting at zero.
type FlowID int

// Packet is one network-layer data packet traveling along a flow's route.
// A packet is created once at the flow source and the same value travels
// hop by hop (the simulator never copies payload bytes).
type Packet struct {
	// Flow identifies the end-to-end flow the packet belongs to.
	Flow FlowID
	// Src is the flow's source node; Dst is the flow's final destination.
	Src topology.NodeID
	Dst topology.NodeID
	// Seq is the per-flow sequence number, starting at zero.
	Seq int64
	// SizeBytes is the payload length (the paper uses 1024-byte packets).
	SizeBytes int
	// Weight is the flow's weight, carried so relays can normalize rates.
	Weight float64
	// NormRate is the flow's normalized end-to-end rate (packets per
	// second per unit weight) stamped by the source. Per §6.2, sources
	// measure rates during the first half of a measurement period and
	// stamp packets during the second half; Stamped marks validity.
	NormRate float64
	Stamped  bool
	// Created is the virtual time the source generated the packet.
	Created time.Duration
	// ArrivedAt is the virtual time the packet was admitted into the
	// current hop's queues (telemetry only: no protocol logic reads it,
	// so stamping it cannot change simulation behavior).
	ArrivedAt time.Duration
}

// String renders a compact identity for tracing.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{f%d %d->%d #%d}", p.Flow, p.Src, p.Dst, p.Seq)
}

// QueueID names one packet queue at a node. Under GMP's per-destination
// queueing a queue is identified by the destination node; under 2PP's
// per-flow queueing by the flow; under plain 802.11 all packets share
// queue 0. The interpretation is uniform network-wide for a given run.
type QueueID int64

// QueueForDest returns the QueueID for per-destination queueing.
func QueueForDest(dest topology.NodeID) QueueID { return QueueID(dest) }

// QueueForFlow returns the QueueID for per-flow queueing.
func QueueForFlow(flow FlowID) QueueID { return QueueID(flow) }

// SharedQueue is the single QueueID used when all traffic shares one FIFO.
const SharedQueue QueueID = 0

// QueueState is a piggybacked buffer-state advertisement: whether the
// sender's queue identified by Queue currently has at least one free slot
// (§2.2: "one bit to indicate whether there is at least one free buffer
// slot"). Every frame a node transmits carries its current states so that
// upstream neighbors can overhear them.
type QueueState struct {
	Queue QueueID
	Free  bool
}
