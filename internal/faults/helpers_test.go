package faults

import (
	"testing"

	"gmp/internal/forwarding"
	"gmp/internal/geom"
	"gmp/internal/mac"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// newTestTopo builds a 4-node square ring (200 m sides): every node has
// exactly two neighbors, so a single crash leaves an alternate path.
func newTestTopo(t *testing.T) *topology.Topology {
	t.Helper()
	pos := []geom.Point{{X: 0}, {X: 200}, {X: 200, Y: 200}, {X: 0, Y: 200}}
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newTestMedium(sched *sim.Scheduler, topo *topology.Topology) *radio.Medium {
	return radio.NewMedium(sched, topo, radio.DefaultParams(), sim.NewRand(1))
}

// newTestStack wires forwarding nodes and MAC stations onto the medium,
// mirroring the production wiring in gmp.RunContext.
func newTestStack(t *testing.T, sched *sim.Scheduler, topo *topology.Topology, medium *radio.Medium) ([]*mac.Station, []*forwarding.Node) {
	t.Helper()
	routes := routing.Build(topo)
	rng := sim.NewRand(2)
	nodes := make([]*forwarding.Node, topo.NumNodes())
	stations := make([]*mac.Station, topo.NumNodes())
	for _, id := range topo.Nodes() {
		n := forwarding.NewNode(id, sched, forwarding.DefaultConfig(), routes, nil, nil)
		st := mac.NewStation(id, sched, medium, mac.DefaultConfig(), sim.NewRand(rng.Int63()), n)
		n.SetMAC(st)
		nodes[id] = n
		stations[id] = st
	}
	return stations, nodes
}
