package faults

import (
	"strings"
	"testing"
	"time"

	"gmp/internal/routing"
	"gmp/internal/sim"
)

func TestKindStringParseRoundTrip(t *testing.T) {
	kinds := []Kind{NodeDown, NodeUp, LinkDegrade, LinkRestore, NodeDegrade, NodeRestore}
	for _, k := range kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("node-explodes"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
	if s := Kind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestEventValidate(t *testing.T) {
	const n = 4
	good := []Event{
		{At: time.Second, Kind: NodeDown, Node: 2},
		{At: 0, Kind: NodeUp, Node: 0},
		{At: time.Minute, Kind: LinkDegrade, From: 0, To: 3, LossProb: 0.5},
		{At: time.Minute, Kind: LinkRestore, From: 3, To: 0},
		{At: time.Second, Kind: NodeDegrade, Node: 1, LossProb: 0.99},
		{At: time.Second, Kind: NodeRestore, Node: 1},
	}
	for i, e := range good {
		if err := e.Validate(n); err != nil {
			t.Errorf("good event %d rejected: %v", i, err)
		}
	}
	bad := []Event{
		{At: -time.Second, Kind: NodeDown, Node: 1},                        // negative time
		{At: 0, Kind: NodeDown, Node: 4},                                   // node out of range
		{At: 0, Kind: NodeDown, Node: -1},                                  // node out of range
		{At: 0, Kind: NodeDown, Node: 1, To: 2},                            // stray link field
		{At: 0, Kind: NodeDown, Node: 1, LossProb: 0.5},                    // stray loss
		{At: 0, Kind: LinkDegrade, From: 0, To: 4, LossProb: 0.5},          // link out of range
		{At: 0, Kind: LinkDegrade, From: 2, To: 2, LossProb: 0.5},          // self-link
		{At: 0, Kind: LinkDegrade, From: 0, To: 1},                         // missing loss
		{At: 0, Kind: LinkDegrade, From: 0, To: 1, LossProb: 1},            // loss out of (0,1)
		{At: 0, Kind: LinkDegrade, From: 0, To: 1, Node: 2, LossProb: 0.5}, // stray node
		{At: 0, Kind: NodeDegrade, Node: 1},                                // missing loss
		{At: 0, Kind: NodeRestore, Node: 1, LossProb: 0.5},                 // restore carries loss
		{At: 0, Kind: Kind(0), Node: 1},                                    // zero kind
		{At: 0, Kind: Kind(7)},                                             // unknown kind
	}
	for i, e := range bad {
		if err := e.Validate(n); err == nil {
			t.Errorf("bad event %d accepted: %+v", i, e)
		}
	}
}

func TestValidateScheduleChurnSequencing(t *testing.T) {
	const n = 3
	ok := []Event{
		{At: 2 * time.Second, Kind: NodeUp, Node: 1},
		{At: time.Second, Kind: NodeDown, Node: 1}, // order in the slice is irrelevant
		{At: 3 * time.Second, Kind: NodeDown, Node: 1},
	}
	if err := ValidateSchedule(ok, n); err != nil {
		t.Errorf("valid down/up/down schedule rejected: %v", err)
	}
	if err := ValidateSchedule([]Event{
		{At: time.Second, Kind: NodeDown, Node: 1},
		{At: 2 * time.Second, Kind: NodeDown, Node: 1},
	}, n); err == nil {
		t.Error("double crash accepted")
	}
	if err := ValidateSchedule([]Event{
		{At: time.Second, Kind: NodeUp, Node: 1},
	}, n); err == nil {
		t.Error("revive of a live node accepted")
	}
	// Same-instant events keep slice order: down then up at t=1 is legal...
	if err := ValidateSchedule([]Event{
		{At: time.Second, Kind: NodeDown, Node: 1},
		{At: time.Second, Kind: NodeUp, Node: 1},
	}, n); err != nil {
		t.Errorf("same-instant down/up rejected: %v", err)
	}
	// ...and up then down at t=1 is not.
	if err := ValidateSchedule([]Event{
		{At: time.Second, Kind: NodeUp, Node: 1},
		{At: time.Second, Kind: NodeDown, Node: 1},
	}, n); err == nil {
		t.Error("same-instant up-before-down accepted")
	}
}

func TestStartRejectsBadSchedule(t *testing.T) {
	sched := sim.NewScheduler()
	_, err := Start(sched, 3, []Event{{At: 0, Kind: NodeUp, Node: 1}}, Hooks{})
	if err == nil {
		t.Fatal("Start accepted an invalid schedule")
	}
}

// TestEngineAppliesScheduleInOrder drives a loss-only schedule (needing
// only the Medium hook) through a real scheduler and checks timing,
// bookkeeping, and the medium's resulting loss state.
func TestEngineAppliesScheduleInOrder(t *testing.T) {
	topo := newTestTopo(t)
	sched := sim.NewScheduler()
	medium := newTestMedium(sched, topo)
	events := []Event{
		{At: 4 * time.Second, Kind: LinkRestore, From: 0, To: 1},
		{At: 2 * time.Second, Kind: LinkDegrade, From: 0, To: 1, LossProb: 0.5},
		{At: 6 * time.Second, Kind: NodeDegrade, Node: 2, LossProb: 0.25},
	}
	eng, err := Start(sched, topo.NumNodes(), events, Hooks{Medium: medium})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Schedule(); got[0].Kind != LinkDegrade || got[2].Kind != NodeDegrade {
		t.Errorf("Schedule not sorted: %+v", got)
	}

	sched.Run(time.Second)
	if eng.Applied() != 0 {
		t.Fatal("event fired early")
	}
	sched.Run(3 * time.Second)
	if eng.Applied() != 1 || eng.LastFaultTime() != 2*time.Second {
		t.Errorf("after 3s: applied=%d last=%v", eng.Applied(), eng.LastFaultTime())
	}
	sched.Run(10 * time.Second)
	if eng.Applied() != 3 || eng.LastFaultTime() != 6*time.Second {
		t.Errorf("after 10s: applied=%d last=%v", eng.Applied(), eng.LastFaultTime())
	}
	if eng.DownNodes() != nil {
		t.Errorf("loss faults marked nodes down: %v", eng.DownNodes())
	}
}

// TestEngineChurnTracksDownSetAndRebuilds crashes and revives nodes
// via a full stack (medium, MAC, forwarding) and checks the down set,
// the medium gating, and that every churn event triggers a rebuild
// with the correct down set.
func TestEngineChurnTracksDownSetAndRebuilds(t *testing.T) {
	topo := newTestTopo(t)
	sched := sim.NewScheduler()
	medium := newTestMedium(sched, topo)
	stations, nodes := newTestStack(t, sched, topo, medium)

	var rebuilds [][]bool
	rebuild := func(down []bool) *routing.Table {
		rebuilds = append(rebuilds, append([]bool(nil), down...))
		return routing.BuildExcluding(topo, down)
	}
	events := []Event{
		{At: 1 * time.Second, Kind: NodeDown, Node: 1},
		{At: 2 * time.Second, Kind: NodeDown, Node: 2},
		{At: 3 * time.Second, Kind: NodeUp, Node: 1},
	}
	eng, err := Start(sched, topo.NumNodes(), events, Hooks{
		Medium: medium, Stations: stations, Nodes: nodes, Rebuild: rebuild,
	})
	if err != nil {
		t.Fatal(err)
	}

	sched.Run(1500 * time.Millisecond)
	if !eng.Down(1) || eng.Down(2) {
		t.Fatalf("down set after first crash: %v", eng.DownNodes())
	}
	if !medium.NodeDown(1) || !stations[1].Down() {
		t.Error("crash did not propagate to medium and MAC")
	}

	sched.Run(2500 * time.Millisecond)
	got := eng.DownNodes()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DownNodes = %v, want [1 2]", got)
	}

	sched.Run(10 * time.Second)
	if eng.Down(1) || !eng.Down(2) {
		t.Fatalf("down set after revive: %v", eng.DownNodes())
	}
	if medium.NodeDown(1) || stations[1].Down() {
		t.Error("revive did not propagate to medium and MAC")
	}

	want := [][]bool{
		{false, true, false, false},
		{false, true, true, false},
		{false, false, true, false},
	}
	if len(rebuilds) != len(want) {
		t.Fatalf("%d rebuilds, want %d", len(rebuilds), len(want))
	}
	for i := range want {
		for n := range want[i] {
			if rebuilds[i][n] != want[i][n] {
				t.Errorf("rebuild %d down set %v, want %v", i, rebuilds[i], want[i])
			}
		}
	}
}
