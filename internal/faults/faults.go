// Package faults is the fault-injection and network-dynamics subsystem:
// a deterministic fault-schedule engine driven by the simulation clock.
//
// The paper (§2.1) assumes a static network, so GMP's convergence is
// only ever exercised from a clean start. This package perturbs a run
// mid-flight with three fault families and lets experiments measure how
// the protocol re-converges:
//
//   - Node churn: NodeDown crashes a node (its MAC halts, its queued
//     packets drop, the medium delivers nothing to it) and NodeUp
//     revives it with clean state.
//   - Loss episodes: LinkDegrade/LinkRestore and NodeDegrade/NodeRestore
//     open and close scheduled windows of extra injected loss on one
//     directed link or at one receiver, generalizing the radio's global
//     LossProb.
//   - Route repair: every churn event is a topology-change epoch — the
//     engine recomputes static routes excluding the current down set
//     (greedy geographic first where configured, shortest-path
//     fallback) and installs the new table on every node, so flows
//     reroute mid-run.
//
// The engine draws no randomness of its own: a given schedule applied
// to a given seed yields a byte-identical run. Schedules are plain
// []Event values, carried in gmp.Config and in scenario JSON files.
package faults

import (
	"fmt"
	"sort"
	"time"

	"gmp/internal/flow"
	"gmp/internal/forwarding"
	"gmp/internal/mac"
	"gmp/internal/radio"
	"gmp/internal/routing"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// Kind enumerates the fault event types.
type Kind int

// Fault kinds. Down/Degrade open a fault; Up/Restore close it.
const (
	NodeDown    Kind = iota + 1 // crash a node
	NodeUp                      // revive a crashed node
	LinkDegrade                 // add loss probability on one directed link
	LinkRestore                 // clear that link's extra loss
	NodeDegrade                 // add loss probability at one receiver
	NodeRestore                 // clear that receiver's extra loss
)

// String returns the canonical schedule-file name of the kind.
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case LinkDegrade:
		return "link-degrade"
	case LinkRestore:
		return "link-restore"
	case NodeDegrade:
		return "node-degrade"
	case NodeRestore:
		return "node-restore"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String, for schedule files.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "node-down":
		return NodeDown, nil
	case "node-up":
		return NodeUp, nil
	case "link-degrade":
		return LinkDegrade, nil
	case "link-restore":
		return LinkRestore, nil
	case "node-degrade":
		return NodeDegrade, nil
	case "node-restore":
		return NodeRestore, nil
	default:
		return 0, fmt.Errorf("faults: unknown event kind %q", s)
	}
}

// Event is one scheduled fault. Which fields are meaningful depends on
// Kind: Node for the four node events, From/To for the two link events,
// LossProb for the two degrade events. Irrelevant fields must be zero.
type Event struct {
	// At is the virtual time the fault fires.
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// Node is the affected node (NodeDown/NodeUp/NodeDegrade/NodeRestore).
	Node topology.NodeID
	// From, To name the directed link (LinkDegrade/LinkRestore).
	From, To topology.NodeID
	// LossProb is the injected loss probability in (0,1) for
	// LinkDegrade/NodeDegrade, composing independently with the global
	// LossProb and each other.
	LossProb float64
}

// usesNode reports whether the kind addresses a single node.
func (k Kind) usesNode() bool {
	return k == NodeDown || k == NodeUp || k == NodeDegrade || k == NodeRestore
}

// usesLink reports whether the kind addresses a directed link.
func (k Kind) usesLink() bool { return k == LinkDegrade || k == LinkRestore }

// usesLoss reports whether the kind carries a loss probability.
func (k Kind) usesLoss() bool { return k == LinkDegrade || k == NodeDegrade }

// Validate checks a single event against a network of numNodes nodes.
func (e Event) Validate(numNodes int) error {
	if e.At < 0 {
		return fmt.Errorf("faults: event at negative time %v", e.At)
	}
	switch {
	case e.Kind.usesNode():
		if e.Node < 0 || int(e.Node) >= numNodes {
			return fmt.Errorf("faults: %s node %d outside [0,%d)", e.Kind, e.Node, numNodes)
		}
		if e.From != 0 || e.To != 0 {
			return fmt.Errorf("faults: %s carries link endpoints", e.Kind)
		}
	case e.Kind.usesLink():
		if e.From < 0 || int(e.From) >= numNodes || e.To < 0 || int(e.To) >= numNodes {
			return fmt.Errorf("faults: %s link (%d,%d) outside [0,%d)", e.Kind, e.From, e.To, numNodes)
		}
		if e.From == e.To {
			return fmt.Errorf("faults: %s link from node %d to itself", e.Kind, e.From)
		}
		if e.Node != 0 {
			return fmt.Errorf("faults: %s carries a node", e.Kind)
		}
	default:
		return fmt.Errorf("faults: invalid kind %d", int(e.Kind))
	}
	if e.Kind.usesLoss() {
		if !(e.LossProb > 0 && e.LossProb < 1) {
			return fmt.Errorf("faults: %s loss probability %v outside (0,1)", e.Kind, e.LossProb)
		}
	} else if e.LossProb != 0 {
		return fmt.Errorf("faults: %s carries a loss probability", e.Kind)
	}
	return nil
}

// ValidateSchedule checks every event and the churn sequencing: sorted
// by time, a node must alternate NodeDown/NodeUp (crashing a crashed
// node or reviving a live one is a schedule bug, not a tolerated no-op).
func ValidateSchedule(events []Event, numNodes int) error {
	for i, e := range events {
		if err := e.Validate(numNodes); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	down := make(map[topology.NodeID]bool)
	for _, e := range sortedByTime(events) {
		switch e.Kind {
		case NodeDown:
			if down[e.Node] {
				return fmt.Errorf("faults: node %d crashed twice (second at %v)", e.Node, e.At)
			}
			down[e.Node] = true
		case NodeUp:
			if !down[e.Node] {
				return fmt.Errorf("faults: node %d revived while up (at %v)", e.Node, e.At)
			}
			down[e.Node] = false
		}
	}
	return nil
}

// sortedByTime returns a copy of events stably sorted by At, so
// same-instant events keep their schedule order.
func sortedByTime(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Hooks are the engine's handles into the simulation layers it
// perturbs. All slices are indexed by node ID except Sources (one per
// flow, in flow-ID order). Rebuild recomputes the routing table for the
// given down set; the engine installs its result on every node after
// each churn event.
type Hooks struct {
	Medium   *radio.Medium
	Stations []*mac.Station
	Nodes    []*forwarding.Node
	Sources  []*flow.Source
	Rebuild  func(down []bool) *routing.Table
}

// Engine applies a fault schedule to a running simulation. Create it
// with Start before sched.Run; all work happens in scheduled callbacks
// on the simulation goroutine.
type Engine struct {
	sched *sim.Scheduler
	hooks Hooks
	down  []bool

	lastFault time.Duration
	applied   int
	schedule  []Event
}

// Start validates the schedule, registers every event with the
// scheduler, and returns the engine. numNodes is the network size the
// events are checked against.
func Start(sched *sim.Scheduler, numNodes int, events []Event, hooks Hooks) (*Engine, error) {
	if err := ValidateSchedule(events, numNodes); err != nil {
		return nil, err
	}
	e := &Engine{
		sched:    sched,
		hooks:    hooks,
		down:     make([]bool, numNodes),
		schedule: sortedByTime(events),
	}
	for _, ev := range e.schedule {
		ev := ev
		sched.At(ev.At, func() { e.apply(ev) })
	}
	return e, nil
}

// Schedule returns the engine's events, sorted by time.
func (e *Engine) Schedule() []Event { return append([]Event(nil), e.schedule...) }

// Down reports whether node n is currently crashed.
func (e *Engine) Down(n topology.NodeID) bool { return e.down[n] }

// DownNodes returns the currently crashed nodes in ascending order
// (nil when none — the common case allocates nothing).
func (e *Engine) DownNodes() []topology.NodeID {
	var out []topology.NodeID
	for n, d := range e.down {
		if d {
			out = append(out, topology.NodeID(n))
		}
	}
	return out
}

// DownSet returns a copy of the per-node crashed flags, indexed by
// NodeID. It is the composition point for mobility route repair: routes
// rebuilt on a motion epoch must still exclude crashed nodes.
func (e *Engine) DownSet() []bool { return append([]bool(nil), e.down...) }

// LastFaultTime returns the virtual time of the last fault applied so
// far (0 if none yet). After a run it anchors recovery-time analysis.
func (e *Engine) LastFaultTime() time.Duration { return e.lastFault }

// Applied returns how many events have fired.
func (e *Engine) Applied() int { return e.applied }

func (e *Engine) apply(ev Event) {
	e.lastFault = e.sched.Now()
	e.applied++
	switch ev.Kind {
	case NodeDown:
		e.crash(ev.Node)
	case NodeUp:
		e.revive(ev.Node)
	case LinkDegrade:
		e.hooks.Medium.SetLinkLoss(ev.From, ev.To, ev.LossProb)
	case LinkRestore:
		e.hooks.Medium.SetLinkLoss(ev.From, ev.To, 0)
	case NodeDegrade:
		e.hooks.Medium.SetNodeLoss(ev.Node, ev.LossProb)
	case NodeRestore:
		e.hooks.Medium.SetNodeLoss(ev.Node, 0)
	}
}

// crash takes node n down. Order matters: sources halt first so the
// queue-open waiters fired by the buffer purge cannot regenerate
// packets at a dead node; the MAC goes down next (handing any in-flight
// packet back, where it lands in a queue the purge then empties); the
// medium stops deliveries; finally routes recompute around the hole.
func (e *Engine) crash(n topology.NodeID) {
	if e.down[n] {
		return
	}
	e.down[n] = true
	for _, src := range e.hooks.Sources {
		if src != nil && src.Spec().Src == n {
			src.SetHalted(true)
		}
	}
	e.hooks.Stations[n].SetDown(true)
	e.hooks.Nodes[n].DropAll(forwarding.DropNodeDown)
	e.hooks.Medium.SetNodeDown(n, true)
	e.epoch()
}

// revive brings node n back with clean state and re-runs route repair
// so traffic may shift back onto it.
func (e *Engine) revive(n topology.NodeID) {
	if !e.down[n] {
		return
	}
	e.down[n] = false
	e.hooks.Medium.SetNodeDown(n, false)
	e.hooks.Stations[n].SetDown(false)
	for _, src := range e.hooks.Sources {
		if src != nil && src.Spec().Src == n {
			src.SetHalted(false)
		}
	}
	e.epoch()
}

// epoch is the topology-change notification: recompute routes for the
// current down set, install them everywhere, and flush every node's
// cached neighbor buffer states (stale "full" bits from before the
// change would suppress transmissions on the repaired routes).
func (e *Engine) epoch() {
	if e.hooks.Rebuild == nil {
		return
	}
	table := e.hooks.Rebuild(e.down)
	for _, node := range e.hooks.Nodes {
		node.ResetNeighborState()
		node.SetRoutes(table)
	}
}
