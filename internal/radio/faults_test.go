package radio

import (
	"math"
	"sync"
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// trianglePositions places three mutually in-range nodes, so every
// transmission reaches two receivers.
func trianglePositions() []geom.Point {
	return []geom.Point{{X: 0}, {X: 200}, {X: 100, Y: 150}}
}

// TestInjectedLossCountsPerReceiver pins the documented semantics of
// Stats.InjectedLosses: it counts corruption events at individual
// receivers, not lost frames. With two in-range receivers and lossy
// delivery, one frame can contribute two InjectedLosses, and the
// counter must equal the per-receiver failure count exactly.
func TestInjectedLossCountsPerReceiver(t *testing.T) {
	topo, err := topology.New(trianglePositions(), topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	par := DefaultParams()
	par.LossProb = 0.5
	m := NewMedium(sched, topo, par, sim.NewRand(7))
	recorders := make([]*recorder, 3)
	for _, id := range topo.Nodes() {
		recorders[id] = &recorder{}
		m.Register(id, recorders[id])
	}

	const n = 300
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 10 * time.Millisecond // spaced: no collisions
		sched.At(at, func() { m.Transmit(0, dataFrame(0, 1)) })
	}
	sched.Run(10 * time.Second)

	failures := int64(0)
	for _, r := range []*recorder{recorders[1], recorders[2]} {
		if len(r.frames) != n {
			t.Fatalf("receiver saw %d frames, want %d", len(r.frames), n)
		}
		for _, ok := range r.oks {
			if !ok {
				failures++
			}
		}
	}
	st := m.Stats()
	if st.InjectedLosses != failures {
		t.Errorf("InjectedLosses = %d, want the per-receiver failure count %d", st.InjectedLosses, failures)
	}
	// Two receivers per frame: the counter must be able to exceed the
	// frame count, which it will at p=0.5 with 2n delivery events.
	if st.InjectedLosses <= n/2 {
		t.Errorf("InjectedLosses = %d suspiciously low for %d deliveries at p=0.5", st.InjectedLosses, 2*n)
	}
	if st.Delivered+st.Corrupted != 2*n {
		t.Errorf("Delivered+Corrupted = %d, want %d", st.Delivered+st.Corrupted, 2*n)
	}
}

// TestLinkLossIsPerLink injects loss on the 0→1 link only: node 1 must
// lose frames while node 2, overhearing the same transmissions, loses
// none (the rng is only consulted where effective loss is positive).
func TestLinkLossIsPerLink(t *testing.T) {
	h := newHarness(t, trianglePositions())
	h.medium.SetLinkLoss(0, 1, 0.9)

	const n = 100
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		h.sched.At(at, func() { h.medium.Transmit(0, dataFrame(0, 1)) })
	}
	h.sched.Run(5 * time.Second)

	lost := 0
	for _, ok := range h.nodes[1].oks {
		if !ok {
			lost++
		}
	}
	if lost < n/2 {
		t.Errorf("node 1 lost %d/%d frames on a 0.9-loss link", lost, n)
	}
	for i, ok := range h.nodes[2].oks {
		if !ok {
			t.Fatalf("node 2 lost frame %d despite no loss on 0→2", i)
		}
	}
	if got := h.medium.Stats().InjectedLosses; got != int64(lost) {
		t.Errorf("InjectedLosses = %d, want %d", got, lost)
	}

	// Clearing the loss restores lossless delivery.
	h.medium.SetLinkLoss(0, 1, 0)
	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.Run(6 * time.Second)
	if ok := h.nodes[1].oks[len(h.nodes[1].oks)-1]; !ok {
		t.Error("frame lost after link loss cleared")
	}
}

// TestLossComposition checks lossAt's independent composition of
// global, per-link, and per-receiver probabilities.
func TestLossComposition(t *testing.T) {
	topo, err := topology.New(trianglePositions(), topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams()
	par.LossProb = 0.2
	m := NewMedium(sim.NewScheduler(), topo, par, sim.NewRand(1))
	m.SetLinkLoss(0, 1, 0.5)
	m.SetNodeLoss(1, 0.5)

	want := 1 - (1-0.2)*(1-0.5)*(1-0.5) // 0.8
	if got := m.lossAt(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("lossAt(0,1) = %v, want %v", got, want)
	}
	// Other receivers see only the global probability.
	if got := m.lossAt(0, 2); got != 0.2 {
		t.Errorf("lossAt(0,2) = %v, want 0.2", got)
	}
	// The link entry is directional.
	if got := m.lossAt(1, 0); math.Abs(got-(1-(1-0.2)*(1-0.0))) > 1e-12 {
		t.Errorf("lossAt(1,0) = %v, want 0.2", got)
	}
}

func TestSetLossValidation(t *testing.T) {
	topo, err := topology.New(trianglePositions(), topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMedium(sim.NewScheduler(), topo, DefaultParams(), sim.NewRand(1))
	for _, p := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLinkLoss accepted %v", p)
				}
			}()
			m.SetLinkLoss(0, 1, p)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetNodeLoss accepted %v", p)
				}
			}()
			m.SetNodeLoss(0, p)
		}()
	}
}

// TestDownNodeReceivesNothing crashes a receiver: frames that would
// reach it are suppressed entirely (no OnFrame, counted in DownSkipped)
// while other receivers are unaffected, and recovery restores delivery.
func TestDownNodeReceivesNothing(t *testing.T) {
	h := newHarness(t, trianglePositions())
	h.medium.SetNodeDown(1, true)
	if !h.medium.NodeDown(1) {
		t.Fatal("NodeDown not reported")
	}

	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.Run(time.Second)
	if len(h.nodes[1].frames) != 0 {
		t.Error("down node received a frame")
	}
	if len(h.nodes[2].frames) != 1 || !h.nodes[2].oks[0] {
		t.Error("live node's overhearing was affected by the crash")
	}
	if got := h.medium.Stats().DownSkipped; got != 1 {
		t.Errorf("DownSkipped = %d, want 1", got)
	}

	h.medium.SetNodeDown(1, false)
	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.Run(2 * time.Second)
	if len(h.nodes[1].frames) != 1 || !h.nodes[1].oks[0] {
		t.Error("recovered node did not receive")
	}
}

func TestDownNodeTransmitPanics(t *testing.T) {
	h := newHarness(t, trianglePositions())
	h.medium.SetNodeDown(0, true)
	defer func() {
		if recover() == nil {
			t.Error("transmit from a down node did not panic")
		}
	}()
	h.medium.Transmit(0, dataFrame(0, 1))
}

// TestStatsConcurrentReads polls Stats from other goroutines while the
// simulation transmits. Run with -race (as CI does) this pins the
// satellite requirement: stats retrieval without data races.
func TestStatsConcurrentReads(t *testing.T) {
	h := newHarness(t, trianglePositions())
	const n = 200
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		h.sched.At(at, func() { h.medium.Transmit(0, dataFrame(0, 1)) })
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := h.medium.Stats()
					if st.Transmissions < 0 || st.Transmissions > n {
						t.Errorf("implausible snapshot %+v", st)
						return
					}
				}
			}
		}()
	}
	h.sched.Run(5 * time.Second)
	close(stop)
	wg.Wait()
	if got := h.medium.Stats().Transmissions; got != n {
		t.Errorf("Transmissions = %d, want %d", got, n)
	}
}
