package radio

import (
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// deliverOne transmits a unicast data frame on a two-node link and runs
// the clock past its airtime, exercising carrier sense, occupancy
// accounting, delivery, and the idle transition.
func deliverOne(h *harness, f *Frame) {
	h.medium.Transmit(0, f)
	h.sched.Run(h.sched.Now() + 2*time.Millisecond)
}

// TestDeliveryAllocs pins the steady-state allocation count of the frame
// delivery hot path. The transmission record, its end-of-air closure, and
// the scheduler event are all pooled, so a warm medium should allocate at
// most a handful of objects per frame (the occupancy bookkeeping); the
// pre-optimization kernel allocated on every layer.
func TestDeliveryAllocs(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}})
	f := dataFrame(0, 1)

	// Warm the pools.
	for i := 0; i < 16; i++ {
		deliverOne(h, f)
	}

	avg := testing.AllocsPerRun(200, func() { deliverOne(h, f) })
	const maxAllocs = 2
	if avg > maxAllocs {
		t.Errorf("frame delivery allocates %.1f objects per frame, want <= %d", avg, maxAllocs)
	}
	if got := h.nodes[1].frames; len(got) == 0 {
		t.Fatal("no frames delivered")
	}
}

// TestDeliveryAllocsNilRecorder pins the telemetry layer's zero-cost
// contract on the frame-delivery hot path: with the recorder explicitly
// nil (the disabled state every untelemetered run uses), delivery
// allocates no more than the pre-telemetry baseline measured alongside.
func TestDeliveryAllocsNilRecorder(t *testing.T) {
	baseline := newHarness(t, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}})
	disabled := newHarness(t, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}})
	disabled.medium.SetRecorder(nil)
	f := dataFrame(0, 1)

	for i := 0; i < 16; i++ {
		deliverOne(baseline, f)
		deliverOne(disabled, f)
	}
	base := testing.AllocsPerRun(200, func() { deliverOne(baseline, f) })
	got := testing.AllocsPerRun(200, func() { deliverOne(disabled, f) })
	if got > base {
		t.Errorf("delivery with nil recorder allocates %.1f objects per frame, baseline %.1f", got, base)
	}
}

// BenchmarkMediumDelivery measures the per-frame cost of the medium in
// isolation: one data frame across a two-node link, including carrier
// sense, busy/idle callbacks, and occupancy accounting.
func BenchmarkMediumDelivery(b *testing.B) {
	topo, err := topology.New([]geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sched := sim.NewScheduler()
	m := NewMedium(sched, topo, DefaultParams(), sim.NewRand(1))
	h := &harness{sched: sched, medium: m}
	for _, id := range topo.Nodes() {
		r := &recorder{}
		m.Register(id, r)
		h.nodes = append(h.nodes, r)
	}
	f := dataFrame(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(0, f)
		sched.Run(sched.Now() + 2*time.Millisecond)
		if i%1024 == 0 {
			// Keep the recorder slices from growing without bound.
			h.nodes[1].frames = h.nodes[1].frames[:0]
			h.nodes[1].oks = h.nodes[1].oks[:0]
		}
	}
}
