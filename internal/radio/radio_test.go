package radio

import (
	"testing"
	"time"

	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/topology"
)

// recorder is a minimal Station that logs channel events.
type recorder struct {
	busy    int
	idle    int
	frames  []*Frame
	oks     []bool
	busyNow bool
}

func (r *recorder) OnBusy() { r.busy++; r.busyNow = true }
func (r *recorder) OnIdle() { r.idle++; r.busyNow = false }
func (r *recorder) OnFrame(f *Frame, ok bool) {
	r.frames = append(r.frames, f)
	r.oks = append(r.oks, ok)
}

type harness struct {
	sched  *sim.Scheduler
	medium *Medium
	nodes  []*recorder
}

func newHarness(t *testing.T, pos []geom.Point) *harness {
	t.Helper()
	topo, err := topology.New(pos, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	m := NewMedium(sched, topo, DefaultParams(), sim.NewRand(1))
	h := &harness{sched: sched, medium: m}
	for _, id := range topo.Nodes() {
		r := &recorder{}
		m.Register(id, r)
		h.nodes = append(h.nodes, r)
	}
	return h
}

func dataFrame(from, to topology.NodeID) *Frame {
	return &Frame{
		Kind:     FrameData,
		To:       to,
		LinkFrom: from,
		LinkTo:   to,
		Data:     &packet.Packet{Flow: 0, Src: from, Dst: to, SizeBytes: 1024},
	}
}

func TestAirtimeValues(t *testing.T) {
	p := DefaultParams()
	rts := p.Airtime(FrameRTS, 0)
	cts := p.Airtime(FrameCTS, 0)
	data := p.Airtime(FrameData, 1024)
	if rts <= p.Preamble || cts <= p.Preamble {
		t.Error("control airtime should exceed the preamble")
	}
	if data <= rts {
		t.Error("1024-byte data frame should outlast an RTS")
	}
	// 1052 bytes at 11 Mbps is ~765 us plus 96 us preamble.
	bits := float64((1024 + 28) * 8)
	want := 96*time.Microsecond + time.Duration(bits/11)*time.Microsecond
	if data != want {
		t.Errorf("data airtime = %v, want %v", data, want)
	}
}

func TestAirtimePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown frame kind")
		}
	}()
	DefaultParams().Airtime(FrameKind(0), 0)
}

func TestSingleTransmissionDelivery(t *testing.T) {
	// 0 --- 1 --- 2: node 0 transmits to 1; node 2 overhears nothing
	// (out of 0's range) but is out of range, node 1 decodes.
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.Run(time.Second)

	if len(h.nodes[1].frames) != 1 || !h.nodes[1].oks[0] {
		t.Fatalf("node 1: frames=%d", len(h.nodes[1].frames))
	}
	if len(h.nodes[2].frames) != 0 {
		t.Error("node 2 decoded a frame from out of range")
	}
	st := h.medium.Stats()
	if st.Transmissions != 1 || st.Delivered != 1 || st.Corrupted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBusyIdleTransitions(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.Run(time.Second)
	if h.nodes[1].busy != 1 || h.nodes[1].idle != 1 {
		t.Errorf("node 1 busy/idle = %d/%d, want 1/1", h.nodes[1].busy, h.nodes[1].idle)
	}
	// Node 2 is 400 m from node 0: outside carrier sense.
	if h.nodes[2].busy != 0 {
		t.Error("node 2 sensed an out-of-range carrier")
	}
	if h.medium.BusyAt(1) {
		t.Error("medium still busy after transmission end")
	}
}

func TestOverhearingDelivery(t *testing.T) {
	// Both 1 and 2 are in range of 0; frame addressed to 1 is also
	// delivered (as overheard) to 2.
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 100, Y: 150}})
	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.Run(time.Second)
	if len(h.nodes[2].frames) != 1 {
		t.Fatal("in-range node did not overhear")
	}
	if h.nodes[2].frames[0].To != 1 {
		t.Error("overheard frame lost addressing")
	}
}

func TestCollisionBetweenInRangeSenders(t *testing.T) {
	// 0 and 2 both within range of 1; simultaneous transmissions collide
	// at 1.
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	h.medium.Transmit(0, dataFrame(0, 1))
	h.medium.Transmit(2, dataFrame(2, 1))
	h.sched.Run(time.Second)
	for _, ok := range h.nodes[1].oks {
		if ok {
			t.Error("overlapping transmissions decoded successfully at node 1")
		}
	}
	if got := len(h.nodes[1].frames); got != 2 {
		t.Errorf("node 1 got %d frames, want 2 (both corrupted)", got)
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// Chain 0-1-2: 0 and 2 are hidden from each other (400 m) but both
	// reach 1. Overlap corrupts at 1; each sender's frame is fine at its
	// own other neighbors.
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}})
	h.medium.Transmit(0, dataFrame(0, 1))
	h.medium.Transmit(2, dataFrame(2, 3))
	h.sched.Run(time.Second)
	if h.nodes[1].oks[0] || h.nodes[1].oks[1] {
		t.Error("hidden-terminal overlap not corrupted at node 1")
	}
	// Node 3 hears only node 2 (node 0 is 600 m away): clean.
	if len(h.nodes[3].frames) != 1 || !h.nodes[3].oks[0] {
		t.Error("node 3 should decode node 2's frame cleanly")
	}
}

func TestPartialOverlapStillCorrupts(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	h.medium.Transmit(0, dataFrame(0, 1))
	// Start the second transmission shortly before the first ends.
	h.sched.After(100*time.Microsecond, func() {
		h.medium.Transmit(2, dataFrame(2, 1))
	})
	h.sched.Run(time.Second)
	for i := range h.nodes[1].frames {
		if h.nodes[1].oks[i] {
			t.Error("partially overlapping frame decoded at node 1")
		}
	}
}

func TestSequentialTransmissionsDoNotCollide(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	f := dataFrame(0, 1)
	air := h.medium.Airtime(f)
	h.medium.Transmit(0, f)
	h.sched.After(air+time.Microsecond, func() {
		h.medium.Transmit(2, dataFrame(2, 1))
	})
	h.sched.Run(time.Second)
	if len(h.nodes[1].oks) != 2 || !h.nodes[1].oks[0] || !h.nodes[1].oks[1] {
		t.Errorf("sequential frames corrupted: %v", h.nodes[1].oks)
	}
}

func TestHalfDuplexReceiverCorruption(t *testing.T) {
	// Node 1 starts transmitting while node 0's frame is in flight to
	// it: node 1 must not decode that frame.
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	h.medium.Transmit(0, dataFrame(0, 1))
	h.sched.After(50*time.Microsecond, func() {
		h.medium.Transmit(1, dataFrame(1, 2))
	})
	h.sched.Run(time.Second)
	if len(h.nodes[1].frames) != 1 {
		t.Fatalf("node 1 frames = %d, want 1", len(h.nodes[1].frames))
	}
	if h.nodes[1].oks[0] {
		t.Error("half-duplex node decoded a frame while transmitting")
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}})
	h.medium.Transmit(0, dataFrame(0, 1))
	defer func() {
		if recover() == nil {
			t.Error("double transmit did not panic")
		}
	}()
	h.medium.Transmit(0, dataFrame(0, 1))
}

func TestOccupancyAccounting(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}})
	f := dataFrame(0, 1)
	air := h.medium.Airtime(f)
	h.medium.Transmit(0, f)
	h.sched.Run(time.Second)
	occ := h.medium.TakeOccupancy()
	if got := occ[topology.Link{From: 0, To: 1}]; got != air {
		t.Errorf("occupancy = %v, want %v", got, air)
	}
	// TakeOccupancy resets.
	if len(h.medium.TakeOccupancy()) != 0 {
		t.Error("occupancy not reset")
	}
}

func TestInjectedLoss(t *testing.T) {
	topo, err := topology.New([]geom.Point{{X: 0}, {X: 200}}, topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	par := DefaultParams()
	par.LossProb = 0.5
	m := NewMedium(sched, topo, par, sim.NewRand(42))
	rx := &recorder{}
	m.Register(0, &recorder{})
	m.Register(1, rx)
	const n = 400
	air := par.Airtime(FrameData, 1024)
	for i := 0; i < n; i++ {
		i := i
		sched.At(time.Duration(i)*2*air, func() { m.Transmit(0, dataFrame(0, 1)) })
	}
	sched.Run(time.Hour)
	okCount := 0
	for _, ok := range rx.oks {
		if ok {
			okCount++
		}
	}
	if okCount < n/4 || okCount > 3*n/4 {
		t.Errorf("with 50%% loss, %d/%d delivered", okCount, n)
	}
	if m.Stats().InjectedLosses != int64(n-okCount) {
		t.Errorf("loss accounting mismatch: %d vs %d", m.Stats().InjectedLosses, n-okCount)
	}
}

func TestSaturationRate(t *testing.T) {
	p := DefaultParams()
	withRTS := p.SaturationRate(1024, true)
	noRTS := p.SaturationRate(1024, false)
	if withRTS <= 0 || noRTS <= 0 {
		t.Fatal("non-positive saturation rate")
	}
	if withRTS >= noRTS {
		t.Error("RTS/CTS overhead should lower the saturation rate")
	}
	// 11 Mbps, 1024 B packets: hundreds of packets per second.
	if withRTS < 300 || withRTS > 900 {
		t.Errorf("saturation rate %v outside plausible range", withRTS)
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}})
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	h.medium.Register(0, &recorder{})
}

func TestFrameKindString(t *testing.T) {
	kinds := map[FrameKind]string{FrameRTS: "RTS", FrameCTS: "CTS", FrameData: "DATA", FrameAck: "ACK"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestThreeWayBusyCounting(t *testing.T) {
	// Node 1 hears both 0 and 2; it must go idle only after BOTH end.
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}, {X: 400}})
	short := &Frame{Kind: FrameRTS, To: 1, LinkFrom: 0, LinkTo: 1}
	long := dataFrame(2, 1)
	h.medium.Transmit(0, short)
	h.medium.Transmit(2, long)
	h.sched.Run(time.Second)
	if h.nodes[1].busy != 1 {
		t.Errorf("node 1 OnBusy fired %d times, want 1 (continuous busy)", h.nodes[1].busy)
	}
	if h.nodes[1].idle != 1 {
		t.Errorf("node 1 OnIdle fired %d times, want 1", h.nodes[1].idle)
	}
}

func TestBroadcastFrameAccounting(t *testing.T) {
	h := newHarness(t, []geom.Point{{X: 0}, {X: 200}})
	bc := &Frame{Kind: FrameBroadcast, To: Broadcast, LinkFrom: 0, LinkTo: 0, ControlBytes: 24}
	air := h.medium.Airtime(bc)
	h.medium.Transmit(0, bc)
	h.sched.Run(time.Second)
	st := h.medium.Stats()
	if st.ControlFrames != 1 || st.ControlAirtime != air {
		t.Errorf("control accounting = %+v, want airtime %v", st, air)
	}
	// Broadcasts do not pollute per-link occupancy.
	if len(h.medium.TakeOccupancy()) != 0 {
		t.Error("broadcast airtime counted as link occupancy")
	}
	// But they are delivered like any frame.
	if len(h.nodes[1].frames) != 1 || h.nodes[1].frames[0].Kind != FrameBroadcast {
		t.Error("broadcast not delivered")
	}
}

func TestBroadcastAirtimeScalesWithPayload(t *testing.T) {
	p := DefaultParams()
	small := p.Airtime(FrameBroadcast, 8)
	big := p.Airtime(FrameBroadcast, 256)
	if big <= small {
		t.Error("payload size does not affect broadcast airtime")
	}
}
