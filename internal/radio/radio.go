// Package radio models the shared wireless channel: frame airtimes, the
// broadcast medium with carrier sensing, and overlap-based collisions.
//
// The model is the standard "protocol model" used by packet-level 802.11
// simulators: a frame from node s is decodable at node n within the
// transmission range, and is corrupted at n if any other transmission
// whose source lies within interference (carrier-sense) range of n
// overlaps it in time, or if n itself transmits during the reception.
// Hidden-terminal collisions therefore emerge from geometry rather than
// being scripted.
package radio

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"gmp/internal/obs"
	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/span"
	"gmp/internal/topology"
	"gmp/internal/trace"
)

// FrameKind enumerates the four 802.11 DCF frame types the simulator uses.
type FrameKind int

// Frame kinds, in exchange order, plus the broadcast control frame used
// by the link-state dissemination protocol (§6.2 step 2).
const (
	FrameRTS FrameKind = iota + 1
	FrameCTS
	FrameData
	FrameAck
	FrameBroadcast
)

// Broadcast is the pseudo-receiver of broadcast frames.
const Broadcast topology.NodeID = -1

// String returns the conventional frame-type name.
func (k FrameKind) String() string {
	switch k {
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameData:
		return "DATA"
	case FrameAck:
		return "ACK"
	case FrameBroadcast:
		return "BCAST"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// Frame is one physical transmission on the channel.
type Frame struct {
	Kind FrameKind
	// From transmits the frame; To is the intended receiver.
	From topology.NodeID
	To   topology.NodeID
	// LinkFrom/LinkTo name the directed data link the frame serves (for
	// a CTS or ACK this is the reverse of From->To). Used for
	// channel-occupancy accounting per wireless link (§6.2).
	LinkFrom topology.NodeID
	LinkTo   topology.NodeID
	// NAV is the duration, beyond the end of this frame, for which the
	// rest of the exchange reserves the channel. Overhearing nodes set
	// their network-allocation vector from it (virtual carrier sense).
	NAV time.Duration
	// Data is the network-layer packet (FrameData only).
	Data *packet.Packet
	// Queue names the receiver-side queue the pending data packet will
	// enter (RTS and DATA frames). The receiver withholds its CTS when
	// that queue is full — the congestion-avoidance admission check of
	// ref [3] ("send ... only when j has enough free buffer space").
	Queue packet.QueueID
	// States is the transmitter's piggybacked buffer-state advertisement
	// (§2.2), attached to every frame.
	States []packet.QueueState
	// Control is the payload of a FrameBroadcast (link-state records or
	// other protocol control content); ControlBytes sizes its airtime.
	Control      any
	ControlBytes int
	// ID is unique per transmission, usable for duplicate detection.
	ID int64
}

// Station is the per-node MAC entity's view of the channel. The medium
// invokes these callbacks; all run on the simulation goroutine.
type Station interface {
	// OnBusy fires when the medium at this node transitions from idle to
	// busy due to another node's transmission within carrier-sense range.
	OnBusy()
	// OnIdle fires on the reverse transition. The node's own
	// transmissions are not part of this signal.
	OnIdle()
	// OnFrame delivers a frame whose transmitter is within transmission
	// range, at the instant the transmission ends. ok is false when the
	// frame was corrupted at this node (collision, self-transmission
	// overlap, or injected loss). Frames not addressed to the node are
	// still delivered (overhearing) so it can set its NAV and read
	// piggybacked state.
	OnFrame(f *Frame, ok bool)
}

// Params are the PHY/MAC timing constants.
type Params struct {
	DataRateMbps   float64       // payload bit rate (paper: 11 Mbps)
	CtrlRateMbps   float64       // RTS/CTS/ACK bit rate (basic rate)
	Preamble       time.Duration // PLCP preamble+header per frame
	MACHeaderBytes int           // MAC overhead added to data payloads
	RTSBytes       int
	CTSBytes       int
	ACKBytes       int
	SlotTime       time.Duration
	SIFS           time.Duration
	DIFS           time.Duration
	CWMin          int // initial contention window (slots-1), e.g. 31
	CWMax          int // maximum contention window, e.g. 1023
	RetryLimit     int // attempts before a frame is dropped
	// LossProb corrupts each frame-at-receiver independently with the
	// given probability (failure injection; 0 in the paper's setup).
	LossProb float64
}

// DefaultParams returns IEEE 802.11b DCF constants matching the paper's
// 11 Mbps channel with 1024-byte data packets.
func DefaultParams() Params {
	return Params{
		DataRateMbps:   11,
		CtrlRateMbps:   1,
		Preamble:       96 * time.Microsecond,
		MACHeaderBytes: 28,
		RTSBytes:       20,
		CTSBytes:       14,
		ACKBytes:       14,
		SlotTime:       20 * time.Microsecond,
		SIFS:           10 * time.Microsecond,
		DIFS:           50 * time.Microsecond,
		CWMin:          31,
		CWMax:          1023,
		RetryLimit:     7,
	}
}

// Airtime returns the on-air duration of a frame of the given kind
// carrying dataBytes of payload (data frames only).
func (p Params) Airtime(kind FrameKind, dataBytes int) time.Duration {
	bits := 0
	rate := p.CtrlRateMbps
	switch kind {
	case FrameRTS:
		bits = p.RTSBytes * 8
	case FrameCTS:
		bits = p.CTSBytes * 8
	case FrameAck:
		bits = p.ACKBytes * 8
	case FrameData:
		bits = (p.MACHeaderBytes + dataBytes) * 8
		rate = p.DataRateMbps
	case FrameBroadcast:
		// Control broadcasts go at the basic rate, like management
		// frames, so every neighbor can decode them.
		bits = (p.MACHeaderBytes + dataBytes) * 8
	default:
		panic(fmt.Sprintf("radio: unknown frame kind %d", int(kind)))
	}
	return p.Preamble + time.Duration(float64(bits)/rate)*time.Microsecond
}

// SaturationRate estimates the packet rate (packets/second) of a single
// fully backlogged link with no contenders: one DIFS, the mean initial
// backoff, and the full frame exchange per packet. It ignores collisions,
// so it is an upper bound used for capacity estimation (clique capacity in
// the 2PP baseline and the maxmin reference solver).
func (p Params) SaturationRate(dataBytes int, useRTS bool) float64 {
	exchange := p.DIFS +
		time.Duration(p.CWMin)*p.SlotTime/2 +
		p.Airtime(FrameData, dataBytes) + p.SIFS + p.Airtime(FrameAck, 0)
	if useRTS {
		exchange += p.Airtime(FrameRTS, 0) + p.Airtime(FrameCTS, 0) + 2*p.SIFS
	}
	return float64(time.Second) / float64(exchange)
}

// Stats aggregates channel-level counters for tests and reporting.
//
// All counters are per-receiver delivery events, not per-frame: one
// broadcast frame heard by k in-range nodes contributes k to
// Delivered+Corrupted. In particular InjectedLosses counts corruption
// *events at individual receivers* caused by injected loss (global
// LossProb, per-link loss, or per-node receive loss) — a single frame
// can add more than one when several receivers independently draw a
// loss. Counters are updated atomically, so Stats() may be called from
// goroutines other than the simulation goroutine (e.g. a progress
// monitor) without a data race.
type Stats struct {
	Transmissions  int64 // frames put on the air
	Corrupted      int64 // frame deliveries that failed
	Delivered      int64 // frame deliveries that succeeded (incl. overhears)
	InjectedLosses int64 // per-receiver corruptions caused by injected loss
	// DownSkipped counts deliveries suppressed because the receiver was
	// crashed (fault injection); these are neither Delivered nor Corrupted.
	DownSkipped int64
	// ControlFrames and ControlAirtime account the in-band link-state
	// dissemination traffic (zero when control runs out of band).
	ControlFrames  int64
	ControlAirtime time.Duration
}

// Medium is the shared broadcast channel.
//
// The per-frame hot path is allocation-free in steady state: propagation
// and carrier sensing iterate the topology's precomputed neighbor lists
// (O(degree) instead of O(N) node scans), per-link state lives in dense
// slices keyed by the topology's link index, frame airtimes are memoized
// per (kind, size), and transmission records are pooled across frames.
type Medium struct {
	sched    *sim.Scheduler
	topo     *topology.Topology
	params   Params
	rng      *rand.Rand
	stations []Station

	active       []*transmission
	busy         []int // per node: count of foreign carriers sensed
	transmitting []bool
	frameSeq     int64

	// Fault-injection state (see internal/faults). down nodes neither
	// transmit nor receive; linkLoss/nodeLoss add per-link and
	// per-receiver loss probabilities on top of the global params.LossProb.
	// linkLoss is indexed by the topology's dense link index, with
	// linkLossCount gating the per-delivery lookup; linkLossFar holds
	// entries for node pairs outside transmission range (settable for
	// symmetry, but such pairs never see a delivery).
	down          []bool
	linkLoss      []float64
	linkLossCount int
	linkLossFar   map[topology.Link]float64
	nodeLoss      []float64

	// occupancy accumulates per-link airtime by dense link index;
	// occupancyFar catches frames whose LinkFrom→LinkTo pair is not a
	// topology link (the MAC never produces these, but tests may).
	occupancy    []time.Duration
	occupancyFar map[topology.Link]time.Duration

	// Memoized airtimes: control frames are constants of the Params;
	// data and broadcast frames are cached per payload size.
	rtsAir, ctsAir, ackAir time.Duration
	dataAir                map[int]time.Duration
	bcastAir               map[int]time.Duration

	// txFree recycles transmission records (and their corruption
	// bitsets, corrWords words each) across frames.
	corrWords int
	txFree    []*transmission

	idleScratch []topology.NodeID // reused by finish
	busyBefore  []bool            // scratch for Begin/EndTopologyChange

	stats    Stats
	observer func(trace.Event)
	// rec is the telemetry recorder (nil when telemetry is off; the hot
	// path pays one branch per transmission, see internal/obs).
	rec *obs.Recorder
	// spans is the causal-trace recorder (nil when tracing is off). It
	// observes data-frame airtime and corruption for sampled packets and
	// tracks which transmitter holds each node's carrier sense busy.
	spans *span.Recorder
}

// NewMedium builds the channel for the given topology. Stations register
// afterwards with Register, one per node, before any transmission.
func NewMedium(sched *sim.Scheduler, topo *topology.Topology, params Params, rng *rand.Rand) *Medium {
	return &Medium{
		sched:        sched,
		topo:         topo,
		params:       params,
		rng:          rng,
		stations:     make([]Station, topo.NumNodes()),
		busy:         make([]int, topo.NumNodes()),
		transmitting: make([]bool, topo.NumNodes()),
		down:         make([]bool, topo.NumNodes()),
		nodeLoss:     make([]float64, topo.NumNodes()),
		linkLoss:     make([]float64, topo.NumLinks()),
		occupancy:    make([]time.Duration, topo.NumLinks()),
		rtsAir:       params.Airtime(FrameRTS, 0),
		ctsAir:       params.Airtime(FrameCTS, 0),
		ackAir:       params.Airtime(FrameAck, 0),
		dataAir:      make(map[int]time.Duration),
		bcastAir:     make(map[int]time.Duration),
		corrWords:    (topo.NumNodes() + 63) / 64,
	}
}

// Register installs the MAC station for node n.
func (m *Medium) Register(n topology.NodeID, st Station) {
	if m.stations[n] != nil {
		panic(fmt.Sprintf("radio: station %d registered twice", n))
	}
	m.stations[n] = st
}

// Params returns the channel constants.
func (m *Medium) Params() Params { return m.params }

// SetObserver installs a channel-event callback (nil disables). Used by
// the trace facility; adds no cost when unset.
func (m *Medium) SetObserver(fn func(trace.Event)) { m.observer = fn }

// SetRecorder installs the telemetry recorder (nil disables). The
// recorder only accumulates airtime per link; it never mutates channel
// state, so enabling it cannot change simulation behavior.
func (m *Medium) SetRecorder(rec *obs.Recorder) { m.rec = rec }

// SetSpans installs the causal-trace recorder (nil disables, the
// default). Like the telemetry recorder it only observes.
func (m *Medium) SetSpans(r *span.Recorder) { m.spans = r }

func (m *Medium) emit(kind trace.Kind, node, peer topology.NodeID, f *Frame) {
	if m.observer == nil {
		return
	}
	detail := f.Kind.String()
	if f.Data != nil {
		detail += " " + f.Data.String()
	}
	m.observer(trace.Event{
		At:     m.sched.Now(),
		Kind:   kind,
		Node:   node,
		Peer:   peer,
		Detail: detail,
	})
}

// Airtime returns the on-air duration of the given frame. Durations are
// memoized per (kind, payload size): control frames are precomputed
// constants and the data/broadcast sizes in a run form a small set.
func (m *Medium) Airtime(f *Frame) time.Duration {
	switch f.Kind {
	case FrameRTS:
		return m.rtsAir
	case FrameCTS:
		return m.ctsAir
	case FrameAck:
		return m.ackAir
	case FrameBroadcast:
		return m.memoAirtime(m.bcastAir, FrameBroadcast, f.ControlBytes)
	default:
		dataBytes := 0
		if f.Data != nil {
			dataBytes = f.Data.SizeBytes
		}
		return m.memoAirtime(m.dataAir, f.Kind, dataBytes)
	}
}

// DataAirtime returns the memoized on-air duration of a data frame
// carrying dataBytes of payload.
func (m *Medium) DataAirtime(dataBytes int) time.Duration {
	return m.memoAirtime(m.dataAir, FrameData, dataBytes)
}

func (m *Medium) memoAirtime(cache map[int]time.Duration, kind FrameKind, bytes int) time.Duration {
	if d, ok := cache[bytes]; ok {
		return d
	}
	d := m.params.Airtime(kind, bytes)
	cache[bytes] = d
	return d
}

// BusyAt reports whether node n currently senses a foreign carrier. The
// node's own transmission does not count.
func (m *Medium) BusyAt(n topology.NodeID) bool { return m.busy[n] > 0 }

// Transmitting reports whether node n is currently on the air.
func (m *Medium) Transmitting(n topology.NodeID) bool { return m.transmitting[n] }

// Stats returns a snapshot of the channel counters. Safe to call from
// any goroutine: the counters are read atomically.
func (m *Medium) Stats() Stats {
	return Stats{
		Transmissions:  atomic.LoadInt64(&m.stats.Transmissions),
		Corrupted:      atomic.LoadInt64(&m.stats.Corrupted),
		Delivered:      atomic.LoadInt64(&m.stats.Delivered),
		InjectedLosses: atomic.LoadInt64(&m.stats.InjectedLosses),
		DownSkipped:    atomic.LoadInt64(&m.stats.DownSkipped),
		ControlFrames:  atomic.LoadInt64(&m.stats.ControlFrames),
		ControlAirtime: time.Duration(atomic.LoadInt64((*int64)(&m.stats.ControlAirtime))),
	}
}

// SetNodeDown marks node n crashed (down=true) or recovered. A down
// node must not transmit (Transmit panics — the MAC layer is expected
// to be halted first) and receives nothing: frames that would reach it
// are counted in Stats.DownSkipped instead of being delivered. A frame
// already on the air when its source crashes still completes — the
// medium models propagation, not the transmitter's state.
func (m *Medium) SetNodeDown(n topology.NodeID, down bool) { m.down[n] = down }

// NodeDown reports whether node n is currently crashed.
func (m *Medium) NodeDown(n topology.NodeID) bool { return m.down[n] }

// SetLinkLoss sets an extra loss probability p in [0,1) for frames
// received over the directed link from→to, composing independently
// with the global LossProb and any per-node receive loss. p = 0 clears
// the entry.
func (m *Medium) SetLinkLoss(from, to topology.NodeID, p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("radio: link loss probability %v outside [0,1)", p))
	}
	if idx := m.topo.LinkIndex(from, to); idx >= 0 {
		if (m.linkLoss[idx] > 0) != (p > 0) {
			if p > 0 {
				m.linkLossCount++
			} else {
				m.linkLossCount--
			}
		}
		m.linkLoss[idx] = p
		return
	}
	// The pair is outside transmission range: no delivery ever consults
	// this entry, but keep it so lossAt answers consistently.
	l := topology.Link{From: from, To: to}
	if p == 0 {
		delete(m.linkLossFar, l)
		return
	}
	if m.linkLossFar == nil {
		m.linkLossFar = make(map[topology.Link]float64)
	}
	m.linkLossFar[l] = p
}

// SetNodeLoss sets an extra loss probability p in [0,1) applied to
// every frame received at node n, composing independently with the
// global and per-link probabilities. p = 0 clears it.
func (m *Medium) SetNodeLoss(n topology.NodeID, p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("radio: node loss probability %v outside [0,1)", p))
	}
	m.nodeLoss[n] = p
}

// lossAt returns the effective injected-loss probability for a frame
// from src received at dst: the independent composition
// 1 − (1−global)·(1−link)·(1−node).
func (m *Medium) lossAt(src, dst topology.NodeID) float64 {
	p := m.params.LossProb
	if m.linkLossCount > 0 || m.linkLossFar != nil {
		var lp float64
		if idx := m.topo.LinkIndex(src, dst); idx >= 0 {
			lp = m.linkLoss[idx]
		} else {
			lp = m.linkLossFar[topology.Link{From: src, To: dst}]
		}
		if lp > 0 {
			p = 1 - (1-p)*(1-lp)
		}
	}
	if np := m.nodeLoss[dst]; np > 0 {
		p = 1 - (1-p)*(1-np)
	}
	return p
}

// TakeOccupancy returns the accumulated per-link airtime since the last
// call and resets the accumulator. This feeds the per-measurement-period
// channel-occupancy measurement (§6.2).
func (m *Medium) TakeOccupancy() map[topology.Link]time.Duration {
	out := make(map[topology.Link]time.Duration)
	for idx, d := range m.occupancy {
		if d != 0 {
			out[m.topo.LinkAt(idx)] = d
			m.occupancy[idx] = 0
		}
	}
	for l, d := range m.occupancyFar {
		out[l] = d
	}
	m.occupancyFar = nil
	return out
}

// BeginTopologyChange must be called immediately before the medium's
// topology is mutated in place (topology.MoveNodes). Carrier-sense busy
// counts were raised against the old CS neighbor lists when each
// in-flight transmission started; this unwinds them (and snapshots each
// node's sensed state) so EndTopologyChange can re-raise them against
// the new lists.
func (m *Medium) BeginTopologyChange() {
	if m.busyBefore == nil {
		m.busyBefore = make([]bool, len(m.busy))
	}
	for n := range m.busy {
		m.busyBefore[n] = m.busy[n] > 0
	}
	for _, tx := range m.active {
		for _, n := range m.topo.CSNeighbors(tx.src) {
			m.busy[n]--
		}
	}
}

// EndTopologyChange completes a topology change opened with
// BeginTopologyChange, after the topology was mutated. oldLinks is the
// pre-move dense link slice (Diff.OldLinks): per-link state recorded
// under the old indices — injected link loss and occupancy accounting —
// is re-keyed through the Link values into the new index space, with
// vanished links parked in the far maps and reappeared far entries
// pulled back into the dense slices. In-flight transmissions then
// re-raise carrier sense against the new CS neighbor lists, and any
// node whose sensed state flipped (it walked into or out of an active
// transmitter's CS range) gets the corresponding OnBusy/OnIdle edge.
// Corruption already marked on in-flight frames is kept: interference
// is assessed at transmit time, delivery at the new positions.
func (m *Medium) EndTopologyChange(oldLinks []topology.Link) {
	nl := m.topo.NumLinks()
	newLoss := make([]float64, nl)
	newOcc := make([]time.Duration, nl)
	count := 0
	for idx, l := range oldLinks {
		if p := m.linkLoss[idx]; p != 0 {
			if ni := m.topo.LinkIndex(l.From, l.To); ni >= 0 {
				newLoss[ni] = p
				count++
			} else {
				if m.linkLossFar == nil {
					m.linkLossFar = make(map[topology.Link]float64)
				}
				m.linkLossFar[l] = p
			}
		}
		if d := m.occupancy[idx]; d != 0 {
			if ni := m.topo.LinkIndex(l.From, l.To); ni >= 0 {
				newOcc[ni] = d
			} else {
				if m.occupancyFar == nil {
					m.occupancyFar = make(map[topology.Link]time.Duration)
				}
				m.occupancyFar[l] += d
			}
		}
	}
	// Far entries whose pair became a live link go dense again. A pair is
	// never in both places, so no entry can collide with the remap above.
	for l, p := range m.linkLossFar {
		if ni := m.topo.LinkIndex(l.From, l.To); ni >= 0 {
			newLoss[ni] = p
			count++
			delete(m.linkLossFar, l)
		}
	}
	for l, d := range m.occupancyFar {
		if ni := m.topo.LinkIndex(l.From, l.To); ni >= 0 {
			newOcc[ni] += d
			delete(m.occupancyFar, l)
		}
	}
	m.linkLoss, m.linkLossCount, m.occupancy = newLoss, count, newOcc

	for _, tx := range m.active {
		for _, n := range m.topo.CSNeighbors(tx.src) {
			m.busy[n]++
			if m.busy[n] == 1 && m.spans != nil {
				m.spans.NodeBusy(n, tx.src)
			}
		}
	}
	if m.spans != nil {
		for n := range m.busy {
			if m.busy[n] == 0 {
				m.spans.NodeIdle(topology.NodeID(n))
			}
		}
	}
	for n := range m.busy {
		nowBusy := m.busy[n] > 0
		if nowBusy == m.busyBefore[n] || m.transmitting[n] {
			continue
		}
		if st := m.stations[n]; st != nil {
			if nowBusy {
				st.OnBusy()
			} else {
				st.OnIdle()
			}
		}
	}
}

type transmission struct {
	src   topology.NodeID
	frame *Frame
	start time.Duration
	end   time.Duration
	// corrupted is a per-node bitset, allocated lazily and recycled with
	// the transmission record.
	corrupted []uint64
	// finishFn is bound once per record so scheduling the end-of-air
	// event does not allocate a fresh closure per frame.
	finishFn func()
}

func (m *Medium) newTransmission(src topology.NodeID, f *Frame, start, end time.Duration) *transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		tx.src, tx.frame, tx.start, tx.end = src, f, start, end
		return tx
	}
	tx := &transmission{src: src, frame: f, start: start, end: end}
	tx.finishFn = func() { m.finish(tx) }
	return tx
}

// releaseTransmission returns a finished record to the pool, clearing
// its corruption bitset for reuse.
func (m *Medium) releaseTransmission(tx *transmission) {
	tx.frame = nil
	for i := range tx.corrupted {
		tx.corrupted[i] = 0
	}
	m.txFree = append(m.txFree, tx)
}

func (m *Medium) corrupt(t *transmission, n topology.NodeID) {
	if t.corrupted == nil {
		t.corrupted = make([]uint64, m.corrWords)
	}
	t.corrupted[n>>6] |= 1 << (uint(n) & 63)
}

func (t *transmission) isCorrupted(n topology.NodeID) bool {
	return t.corrupted != nil && t.corrupted[n>>6]&(1<<(uint(n)&63)) != 0
}

// Transmit puts frame f on the air from node src, immediately. The caller
// (MAC) is responsible for channel access rules; the medium only models
// propagation, carrier sensing, and collisions. The frame's ID field is
// assigned by the medium.
func (m *Medium) Transmit(src topology.NodeID, f *Frame) {
	if m.transmitting[src] {
		panic(fmt.Sprintf("radio: node %d transmit while already transmitting", src))
	}
	if m.stations[src] == nil {
		panic(fmt.Sprintf("radio: node %d transmits before registering", src))
	}
	if m.down[src] {
		panic(fmt.Sprintf("radio: crashed node %d transmits (MAC not halted?)", src))
	}
	m.frameSeq++
	f.ID = m.frameSeq
	f.From = src
	dur := m.Airtime(f)
	now := m.sched.Now()
	tx := m.newTransmission(src, f, now, now+dur)
	atomic.AddInt64(&m.stats.Transmissions, 1)
	if f.Kind == FrameBroadcast {
		atomic.AddInt64(&m.stats.ControlFrames, 1)
		atomic.AddInt64((*int64)(&m.stats.ControlAirtime), int64(dur))
	} else if idx := m.topo.LinkIndex(f.LinkFrom, f.LinkTo); idx >= 0 {
		m.occupancy[idx] += dur
		if m.rec != nil {
			m.rec.LinkAirtime(idx, dur)
		}
	} else {
		if m.occupancyFar == nil {
			m.occupancyFar = make(map[topology.Link]time.Duration)
		}
		m.occupancyFar[topology.Link{From: f.LinkFrom, To: f.LinkTo}] += dur
	}
	m.emit(trace.KindTransmit, src, f.To, f)
	if m.spans != nil && f.Kind == FrameData && f.Data != nil {
		m.spans.DataAirtime(f.Data, src, f.To, now, now+dur)
	}

	// Mark mutual corruption with every in-flight transmission. All
	// entries of m.active overlap tx in time by construction.
	for _, other := range m.active {
		m.markInterference(tx, other)
		m.markInterference(other, tx)
	}
	// A node that starts transmitting corrupts every in-flight reception
	// at itself (half duplex).
	for _, other := range m.active {
		if m.topo.InTxRange(other.src, src) {
			m.corrupt(other, src)
		}
	}
	m.active = append(m.active, tx)
	m.transmitting[src] = true

	// Carrier sensing: raise busy at every foreign node within CS range.
	for _, n := range m.topo.CSNeighbors(src) {
		m.busy[n]++
		if m.busy[n] == 1 {
			if m.spans != nil {
				m.spans.NodeBusy(n, src)
			}
			if !m.transmitting[n] {
				m.stations[n].OnBusy()
			}
		}
	}

	m.sched.At(tx.end, tx.finishFn)
}

// markInterference marks victim's frame corrupted at every potential
// receiver of victim that lies within interference range of source's
// transmitter.
func (m *Medium) markInterference(victim, source *transmission) {
	for _, n := range m.topo.Neighbors(victim.src) {
		if n == source.src || m.topo.InCSRange(source.src, n) {
			m.corrupt(victim, n)
		}
	}
}

func (m *Medium) finish(tx *transmission) {
	// Remove from the active list.
	for i, t := range m.active {
		if t == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	m.transmitting[tx.src] = false

	// Lower carrier-sense busy counts first so receivers observe an idle
	// medium when deciding SIFS responses, but defer OnIdle until after
	// frame delivery so response scheduling wins over backoff resumption.
	nowIdle := m.idleScratch[:0]
	for _, n := range m.topo.CSNeighbors(tx.src) {
		m.busy[n]--
		if m.busy[n] < 0 {
			panic("radio: negative busy count")
		}
		if m.busy[n] == 0 {
			if m.spans != nil {
				m.spans.NodeIdle(n)
			}
			nowIdle = append(nowIdle, n)
		}
	}

	// Deliver to every node in transmission range (receiver + overhearers).
	for _, n := range m.topo.Neighbors(tx.src) {
		if m.down[n] {
			// Crashed receivers hear nothing at all.
			atomic.AddInt64(&m.stats.DownSkipped, 1)
			continue
		}
		ok := !tx.isCorrupted(n)
		if ok && m.transmitting[n] {
			// Receiver is on the air itself at delivery time.
			ok = false
		}
		// The rng draw stays gated on p > 0 so schedules without loss
		// faults consume the identical random sequence as before.
		if p := m.lossAt(tx.src, n); ok && p > 0 && m.rng.Float64() < p {
			ok = false
			atomic.AddInt64(&m.stats.InjectedLosses, 1)
		}
		if ok {
			atomic.AddInt64(&m.stats.Delivered, 1)
			if n == tx.frame.To {
				m.emit(trace.KindDeliver, n, tx.src, tx.frame)
			}
		} else {
			atomic.AddInt64(&m.stats.Corrupted, 1)
			m.emit(trace.KindCorrupt, n, tx.src, tx.frame)
			if m.spans != nil && n == tx.frame.To && tx.frame.Kind == FrameData && tx.frame.Data != nil {
				m.spans.DataCorrupted(tx.frame.Data, tx.src, n)
			}
		}
		m.stations[n].OnFrame(tx.frame, ok)
	}

	for _, n := range nowIdle {
		if m.busy[n] == 0 { // may have gone busy again during delivery
			m.stations[n].OnIdle()
		}
	}
	m.idleScratch = nowIdle[:0]
	m.releaseTransmission(tx)
}
