// Package radio models the shared wireless channel: frame airtimes, the
// broadcast medium with carrier sensing, and overlap-based collisions.
//
// The model is the standard "protocol model" used by packet-level 802.11
// simulators: a frame from node s is decodable at node n within the
// transmission range, and is corrupted at n if any other transmission
// whose source lies within interference (carrier-sense) range of n
// overlaps it in time, or if n itself transmits during the reception.
// Hidden-terminal collisions therefore emerge from geometry rather than
// being scripted.
package radio

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"gmp/internal/packet"
	"gmp/internal/sim"
	"gmp/internal/topology"
	"gmp/internal/trace"
)

// FrameKind enumerates the four 802.11 DCF frame types the simulator uses.
type FrameKind int

// Frame kinds, in exchange order, plus the broadcast control frame used
// by the link-state dissemination protocol (§6.2 step 2).
const (
	FrameRTS FrameKind = iota + 1
	FrameCTS
	FrameData
	FrameAck
	FrameBroadcast
)

// Broadcast is the pseudo-receiver of broadcast frames.
const Broadcast topology.NodeID = -1

// String returns the conventional frame-type name.
func (k FrameKind) String() string {
	switch k {
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameData:
		return "DATA"
	case FrameAck:
		return "ACK"
	case FrameBroadcast:
		return "BCAST"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// Frame is one physical transmission on the channel.
type Frame struct {
	Kind FrameKind
	// From transmits the frame; To is the intended receiver.
	From topology.NodeID
	To   topology.NodeID
	// LinkFrom/LinkTo name the directed data link the frame serves (for
	// a CTS or ACK this is the reverse of From->To). Used for
	// channel-occupancy accounting per wireless link (§6.2).
	LinkFrom topology.NodeID
	LinkTo   topology.NodeID
	// NAV is the duration, beyond the end of this frame, for which the
	// rest of the exchange reserves the channel. Overhearing nodes set
	// their network-allocation vector from it (virtual carrier sense).
	NAV time.Duration
	// Data is the network-layer packet (FrameData only).
	Data *packet.Packet
	// Queue names the receiver-side queue the pending data packet will
	// enter (RTS and DATA frames). The receiver withholds its CTS when
	// that queue is full — the congestion-avoidance admission check of
	// ref [3] ("send ... only when j has enough free buffer space").
	Queue packet.QueueID
	// States is the transmitter's piggybacked buffer-state advertisement
	// (§2.2), attached to every frame.
	States []packet.QueueState
	// Control is the payload of a FrameBroadcast (link-state records or
	// other protocol control content); ControlBytes sizes its airtime.
	Control      any
	ControlBytes int
	// ID is unique per transmission, usable for duplicate detection.
	ID int64
}

// Station is the per-node MAC entity's view of the channel. The medium
// invokes these callbacks; all run on the simulation goroutine.
type Station interface {
	// OnBusy fires when the medium at this node transitions from idle to
	// busy due to another node's transmission within carrier-sense range.
	OnBusy()
	// OnIdle fires on the reverse transition. The node's own
	// transmissions are not part of this signal.
	OnIdle()
	// OnFrame delivers a frame whose transmitter is within transmission
	// range, at the instant the transmission ends. ok is false when the
	// frame was corrupted at this node (collision, self-transmission
	// overlap, or injected loss). Frames not addressed to the node are
	// still delivered (overhearing) so it can set its NAV and read
	// piggybacked state.
	OnFrame(f *Frame, ok bool)
}

// Params are the PHY/MAC timing constants.
type Params struct {
	DataRateMbps   float64       // payload bit rate (paper: 11 Mbps)
	CtrlRateMbps   float64       // RTS/CTS/ACK bit rate (basic rate)
	Preamble       time.Duration // PLCP preamble+header per frame
	MACHeaderBytes int           // MAC overhead added to data payloads
	RTSBytes       int
	CTSBytes       int
	ACKBytes       int
	SlotTime       time.Duration
	SIFS           time.Duration
	DIFS           time.Duration
	CWMin          int // initial contention window (slots-1), e.g. 31
	CWMax          int // maximum contention window, e.g. 1023
	RetryLimit     int // attempts before a frame is dropped
	// LossProb corrupts each frame-at-receiver independently with the
	// given probability (failure injection; 0 in the paper's setup).
	LossProb float64
}

// DefaultParams returns IEEE 802.11b DCF constants matching the paper's
// 11 Mbps channel with 1024-byte data packets.
func DefaultParams() Params {
	return Params{
		DataRateMbps:   11,
		CtrlRateMbps:   1,
		Preamble:       96 * time.Microsecond,
		MACHeaderBytes: 28,
		RTSBytes:       20,
		CTSBytes:       14,
		ACKBytes:       14,
		SlotTime:       20 * time.Microsecond,
		SIFS:           10 * time.Microsecond,
		DIFS:           50 * time.Microsecond,
		CWMin:          31,
		CWMax:          1023,
		RetryLimit:     7,
	}
}

// Airtime returns the on-air duration of a frame of the given kind
// carrying dataBytes of payload (data frames only).
func (p Params) Airtime(kind FrameKind, dataBytes int) time.Duration {
	bits := 0
	rate := p.CtrlRateMbps
	switch kind {
	case FrameRTS:
		bits = p.RTSBytes * 8
	case FrameCTS:
		bits = p.CTSBytes * 8
	case FrameAck:
		bits = p.ACKBytes * 8
	case FrameData:
		bits = (p.MACHeaderBytes + dataBytes) * 8
		rate = p.DataRateMbps
	case FrameBroadcast:
		// Control broadcasts go at the basic rate, like management
		// frames, so every neighbor can decode them.
		bits = (p.MACHeaderBytes + dataBytes) * 8
	default:
		panic(fmt.Sprintf("radio: unknown frame kind %d", int(kind)))
	}
	return p.Preamble + time.Duration(float64(bits)/rate)*time.Microsecond
}

// SaturationRate estimates the packet rate (packets/second) of a single
// fully backlogged link with no contenders: one DIFS, the mean initial
// backoff, and the full frame exchange per packet. It ignores collisions,
// so it is an upper bound used for capacity estimation (clique capacity in
// the 2PP baseline and the maxmin reference solver).
func (p Params) SaturationRate(dataBytes int, useRTS bool) float64 {
	exchange := p.DIFS +
		time.Duration(p.CWMin)*p.SlotTime/2 +
		p.Airtime(FrameData, dataBytes) + p.SIFS + p.Airtime(FrameAck, 0)
	if useRTS {
		exchange += p.Airtime(FrameRTS, 0) + p.Airtime(FrameCTS, 0) + 2*p.SIFS
	}
	return float64(time.Second) / float64(exchange)
}

// Stats aggregates channel-level counters for tests and reporting.
//
// All counters are per-receiver delivery events, not per-frame: one
// broadcast frame heard by k in-range nodes contributes k to
// Delivered+Corrupted. In particular InjectedLosses counts corruption
// *events at individual receivers* caused by injected loss (global
// LossProb, per-link loss, or per-node receive loss) — a single frame
// can add more than one when several receivers independently draw a
// loss. Counters are updated atomically, so Stats() may be called from
// goroutines other than the simulation goroutine (e.g. a progress
// monitor) without a data race.
type Stats struct {
	Transmissions  int64 // frames put on the air
	Corrupted      int64 // frame deliveries that failed
	Delivered      int64 // frame deliveries that succeeded (incl. overhears)
	InjectedLosses int64 // per-receiver corruptions caused by injected loss
	// DownSkipped counts deliveries suppressed because the receiver was
	// crashed (fault injection); these are neither Delivered nor Corrupted.
	DownSkipped int64
	// ControlFrames and ControlAirtime account the in-band link-state
	// dissemination traffic (zero when control runs out of band).
	ControlFrames  int64
	ControlAirtime time.Duration
}

// Medium is the shared broadcast channel.
type Medium struct {
	sched    *sim.Scheduler
	topo     *topology.Topology
	params   Params
	rng      *rand.Rand
	stations []Station

	active       []*transmission
	busy         []int // per node: count of foreign carriers sensed
	transmitting []bool
	frameSeq     int64

	// Fault-injection state (see internal/faults). down nodes neither
	// transmit nor receive; linkLoss/nodeLoss add per-link and
	// per-receiver loss probabilities on top of the global params.LossProb.
	down     []bool
	linkLoss map[topology.Link]float64
	nodeLoss []float64

	occupancy map[topology.Link]time.Duration
	stats     Stats
	observer  func(trace.Event)
}

// NewMedium builds the channel for the given topology. Stations register
// afterwards with Register, one per node, before any transmission.
func NewMedium(sched *sim.Scheduler, topo *topology.Topology, params Params, rng *rand.Rand) *Medium {
	return &Medium{
		sched:        sched,
		topo:         topo,
		params:       params,
		rng:          rng,
		stations:     make([]Station, topo.NumNodes()),
		busy:         make([]int, topo.NumNodes()),
		transmitting: make([]bool, topo.NumNodes()),
		down:         make([]bool, topo.NumNodes()),
		nodeLoss:     make([]float64, topo.NumNodes()),
		occupancy:    make(map[topology.Link]time.Duration),
	}
}

// Register installs the MAC station for node n.
func (m *Medium) Register(n topology.NodeID, st Station) {
	if m.stations[n] != nil {
		panic(fmt.Sprintf("radio: station %d registered twice", n))
	}
	m.stations[n] = st
}

// Params returns the channel constants.
func (m *Medium) Params() Params { return m.params }

// SetObserver installs a channel-event callback (nil disables). Used by
// the trace facility; adds no cost when unset.
func (m *Medium) SetObserver(fn func(trace.Event)) { m.observer = fn }

func (m *Medium) emit(kind trace.Kind, node, peer topology.NodeID, f *Frame) {
	if m.observer == nil {
		return
	}
	detail := f.Kind.String()
	if f.Data != nil {
		detail += " " + f.Data.String()
	}
	m.observer(trace.Event{
		At:     m.sched.Now(),
		Kind:   kind,
		Node:   node,
		Peer:   peer,
		Detail: detail,
	})
}

// Airtime returns the on-air duration of the given frame.
func (m *Medium) Airtime(f *Frame) time.Duration {
	dataBytes := 0
	if f.Data != nil {
		dataBytes = f.Data.SizeBytes
	}
	if f.Kind == FrameBroadcast {
		dataBytes = f.ControlBytes
	}
	return m.params.Airtime(f.Kind, dataBytes)
}

// BusyAt reports whether node n currently senses a foreign carrier. The
// node's own transmission does not count.
func (m *Medium) BusyAt(n topology.NodeID) bool { return m.busy[n] > 0 }

// Transmitting reports whether node n is currently on the air.
func (m *Medium) Transmitting(n topology.NodeID) bool { return m.transmitting[n] }

// Stats returns a snapshot of the channel counters. Safe to call from
// any goroutine: the counters are read atomically.
func (m *Medium) Stats() Stats {
	return Stats{
		Transmissions:  atomic.LoadInt64(&m.stats.Transmissions),
		Corrupted:      atomic.LoadInt64(&m.stats.Corrupted),
		Delivered:      atomic.LoadInt64(&m.stats.Delivered),
		InjectedLosses: atomic.LoadInt64(&m.stats.InjectedLosses),
		DownSkipped:    atomic.LoadInt64(&m.stats.DownSkipped),
		ControlFrames:  atomic.LoadInt64(&m.stats.ControlFrames),
		ControlAirtime: time.Duration(atomic.LoadInt64((*int64)(&m.stats.ControlAirtime))),
	}
}

// SetNodeDown marks node n crashed (down=true) or recovered. A down
// node must not transmit (Transmit panics — the MAC layer is expected
// to be halted first) and receives nothing: frames that would reach it
// are counted in Stats.DownSkipped instead of being delivered. A frame
// already on the air when its source crashes still completes — the
// medium models propagation, not the transmitter's state.
func (m *Medium) SetNodeDown(n topology.NodeID, down bool) { m.down[n] = down }

// NodeDown reports whether node n is currently crashed.
func (m *Medium) NodeDown(n topology.NodeID) bool { return m.down[n] }

// SetLinkLoss sets an extra loss probability p in [0,1) for frames
// received over the directed link from→to, composing independently
// with the global LossProb and any per-node receive loss. p = 0 clears
// the entry.
func (m *Medium) SetLinkLoss(from, to topology.NodeID, p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("radio: link loss probability %v outside [0,1)", p))
	}
	l := topology.Link{From: from, To: to}
	if p == 0 {
		delete(m.linkLoss, l)
		return
	}
	if m.linkLoss == nil {
		m.linkLoss = make(map[topology.Link]float64)
	}
	m.linkLoss[l] = p
}

// SetNodeLoss sets an extra loss probability p in [0,1) applied to
// every frame received at node n, composing independently with the
// global and per-link probabilities. p = 0 clears it.
func (m *Medium) SetNodeLoss(n topology.NodeID, p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("radio: node loss probability %v outside [0,1)", p))
	}
	m.nodeLoss[n] = p
}

// lossAt returns the effective injected-loss probability for a frame
// from src received at dst: the independent composition
// 1 − (1−global)·(1−link)·(1−node).
func (m *Medium) lossAt(src, dst topology.NodeID) float64 {
	p := m.params.LossProb
	if lp, ok := m.linkLoss[topology.Link{From: src, To: dst}]; ok {
		p = 1 - (1-p)*(1-lp)
	}
	if np := m.nodeLoss[dst]; np > 0 {
		p = 1 - (1-p)*(1-np)
	}
	return p
}

// TakeOccupancy returns the accumulated per-link airtime since the last
// call and resets the accumulator. This feeds the per-measurement-period
// channel-occupancy measurement (§6.2).
func (m *Medium) TakeOccupancy() map[topology.Link]time.Duration {
	out := m.occupancy
	m.occupancy = make(map[topology.Link]time.Duration, len(out))
	return out
}

type transmission struct {
	src       topology.NodeID
	frame     *Frame
	start     time.Duration
	end       time.Duration
	corrupted map[topology.NodeID]bool
}

func (t *transmission) corrupt(n topology.NodeID) {
	if t.corrupted == nil {
		t.corrupted = make(map[topology.NodeID]bool)
	}
	t.corrupted[n] = true
}

// Transmit puts frame f on the air from node src, immediately. The caller
// (MAC) is responsible for channel access rules; the medium only models
// propagation, carrier sensing, and collisions. The frame's ID field is
// assigned by the medium.
func (m *Medium) Transmit(src topology.NodeID, f *Frame) {
	if m.transmitting[src] {
		panic(fmt.Sprintf("radio: node %d transmit while already transmitting", src))
	}
	if m.stations[src] == nil {
		panic(fmt.Sprintf("radio: node %d transmits before registering", src))
	}
	if m.down[src] {
		panic(fmt.Sprintf("radio: crashed node %d transmits (MAC not halted?)", src))
	}
	m.frameSeq++
	f.ID = m.frameSeq
	f.From = src
	dur := m.Airtime(f)
	tx := &transmission{
		src:   src,
		frame: f,
		start: m.sched.Now(),
		end:   m.sched.Now() + dur,
	}
	atomic.AddInt64(&m.stats.Transmissions, 1)
	if f.Kind == FrameBroadcast {
		atomic.AddInt64(&m.stats.ControlFrames, 1)
		atomic.AddInt64((*int64)(&m.stats.ControlAirtime), int64(dur))
	} else {
		m.occupancy[topology.Link{From: f.LinkFrom, To: f.LinkTo}] += dur
	}
	m.emit(trace.KindTransmit, src, f.To, f)

	// Mark mutual corruption with every in-flight transmission. All
	// entries of m.active overlap tx in time by construction.
	for _, other := range m.active {
		m.markInterference(tx, other)
		m.markInterference(other, tx)
	}
	// A node that starts transmitting corrupts every in-flight reception
	// at itself (half duplex).
	for _, other := range m.active {
		if m.topo.InTxRange(other.src, src) {
			other.corrupt(src)
		}
	}
	m.active = append(m.active, tx)
	m.transmitting[src] = true

	// Carrier sensing: raise busy at every foreign node within CS range.
	for _, n := range m.topo.Nodes() {
		if n == src || !m.topo.InCSRange(src, n) {
			continue
		}
		m.busy[n]++
		if m.busy[n] == 1 && !m.transmitting[n] {
			m.stations[n].OnBusy()
		}
	}

	m.sched.At(tx.end, func() { m.finish(tx) })
}

// markInterference marks victim's frame corrupted at every potential
// receiver of victim that lies within interference range of source's
// transmitter.
func (m *Medium) markInterference(victim, source *transmission) {
	for _, n := range m.topo.Nodes() {
		if n == victim.src {
			continue
		}
		if !m.topo.InTxRange(victim.src, n) {
			continue // n cannot decode victim anyway
		}
		if n == source.src || m.topo.InCSRange(source.src, n) {
			victim.corrupt(n)
		}
	}
}

func (m *Medium) finish(tx *transmission) {
	// Remove from the active list.
	for i, t := range m.active {
		if t == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	m.transmitting[tx.src] = false

	// Lower carrier-sense busy counts first so receivers observe an idle
	// medium when deciding SIFS responses, but defer OnIdle until after
	// frame delivery so response scheduling wins over backoff resumption.
	var nowIdle []topology.NodeID
	for _, n := range m.topo.Nodes() {
		if n == tx.src || !m.topo.InCSRange(tx.src, n) {
			continue
		}
		m.busy[n]--
		if m.busy[n] < 0 {
			panic("radio: negative busy count")
		}
		if m.busy[n] == 0 {
			nowIdle = append(nowIdle, n)
		}
	}

	// Deliver to every node in transmission range (receiver + overhearers).
	for _, n := range m.topo.Nodes() {
		if n == tx.src || !m.topo.InTxRange(tx.src, n) {
			continue
		}
		if m.down[n] {
			// Crashed receivers hear nothing at all.
			atomic.AddInt64(&m.stats.DownSkipped, 1)
			continue
		}
		ok := !tx.corrupted[n]
		if ok && m.transmitting[n] {
			// Receiver is on the air itself at delivery time.
			ok = false
		}
		// The rng draw stays gated on p > 0 so schedules without loss
		// faults consume the identical random sequence as before.
		if p := m.lossAt(tx.src, n); ok && p > 0 && m.rng.Float64() < p {
			ok = false
			atomic.AddInt64(&m.stats.InjectedLosses, 1)
		}
		if ok {
			atomic.AddInt64(&m.stats.Delivered, 1)
			if n == tx.frame.To {
				m.emit(trace.KindDeliver, n, tx.src, tx.frame)
			}
		} else {
			atomic.AddInt64(&m.stats.Corrupted, 1)
			m.emit(trace.KindCorrupt, n, tx.src, tx.frame)
		}
		m.stations[n].OnFrame(tx.frame, ok)
	}

	for _, n := range nowIdle {
		if m.busy[n] == 0 { // may have gone busy again during delivery
			m.stations[n].OnIdle()
		}
	}
}
