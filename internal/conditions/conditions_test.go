package conditions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmp/internal/maxminref"
)

// waterfill solves the instance's weighted maxmin allocation through the
// reference solver.
func waterfill(t testing.TB, in *Instance) []float64 {
	t.Helper()
	p := &maxminref.Problem{
		Weights: make([]float64, len(in.Flows)),
		Demands: make([]float64, len(in.Flows)),
	}
	for i, f := range in.Flows {
		p.Weights[i] = f.Weight
		p.Demands[i] = f.Demand
	}
	for _, c := range in.Cliques {
		inClique := make(map[LinkID]bool)
		for _, l := range c.Links {
			inClique[l] = true
		}
		row := make([]float64, len(in.Flows))
		for f, flow := range in.Flows {
			for _, l := range flow.Path {
				if inClique[l] {
					row[f]++
				}
			}
		}
		p.Usage = append(p.Usage, row)
		p.Capacities = append(p.Capacities, c.Capacity)
	}
	rates, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return rates
}

// fig3Instance models the paper's Figure 3 chain: three flows into one
// destination, one clique covering all three links.
func fig3Instance() *Instance {
	return &Instance{
		Flows: []Flow{
			{Weight: 1, Demand: 800, Path: []LinkID{0, 1, 2}},
			{Weight: 1, Demand: 800, Path: []LinkID{1, 2}},
			{Weight: 1, Demand: 800, Path: []LinkID{2}},
		},
		Cliques: []CliqueSpec{{Links: []LinkID{0, 1, 2}, Capacity: 520}},
	}
}

// fig2Instance models Figure 2: four single-link flows, two overlapping
// cliques.
func fig2Instance() *Instance {
	return &Instance{
		Flows: []Flow{
			{Weight: 1, Demand: 800, Path: []LinkID{0}},
			{Weight: 1, Demand: 800, Path: []LinkID{1}},
			{Weight: 1, Demand: 800, Path: []LinkID{2}},
			{Weight: 1, Demand: 800, Path: []LinkID{3}},
		},
		Cliques: []CliqueSpec{
			{Links: []LinkID{0, 1}, Capacity: 520},
			{Links: []LinkID{1, 2, 3}, Capacity: 520},
		},
	}
}

func TestWaterfillingSatisfiesConditionsOnFig3(t *testing.T) {
	in := fig3Instance()
	r := waterfill(t, in)
	violations, err := in.Check(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("maxmin allocation violates conditions: %v", violations)
	}
}

func TestWaterfillingSatisfiesConditionsOnFig2(t *testing.T) {
	in := fig2Instance()
	r := waterfill(t, in)
	violations, err := in.Check(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("maxmin allocation violates conditions: %v (rates %v)", violations, r)
	}
}

func TestUnderAllocationViolatesRateLimitCondition(t *testing.T) {
	in := fig3Instance()
	r := waterfill(t, in)
	// Halve every rate: nothing is tight anymore, yet every flow is
	// below demand — the rate-limit condition must fire.
	for i := range r {
		r[i] /= 2
	}
	violations, err := in.Check(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("under-allocation passed all conditions")
	}
	found := false
	for _, v := range violations {
		if v.Condition == "rate-limit" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a rate-limit violation, got %v", violations)
	}
}

func TestUnfairAllocationViolatesConditions(t *testing.T) {
	in := fig3Instance()
	// Feasible but biased: flow 2 hogs the clique (3r0+2r1+r2 = 520).
	r := []float64{20, 30, 400}
	violations, err := in.Check(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Error("starved-flow allocation passed all conditions")
	}
}

func TestFig2BiasedAllocationViolates(t *testing.T) {
	in := fig2Instance()
	// Clique 1 tight but split unfairly between f2, f3, f4.
	r := []float64{200, 320, 100, 100}
	violations, err := in.Check(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Error("biased clique-1 split passed all conditions")
	}
}

func TestInfeasibleAllocationRejected(t *testing.T) {
	in := fig3Instance()
	if _, err := in.Check([]float64{500, 500, 500}, 0.01); err == nil {
		t.Error("overloaded allocation accepted")
	}
	if _, err := in.Check([]float64{900, 0, 0}, 0.01); err == nil {
		t.Error("above-demand allocation accepted")
	}
}

// TestTheoremIsOneDirectional documents that the paper's theorem has one
// direction only: the four conditions imply maxmin, but a maxmin
// allocation can still violate the buffer-saturated condition. This
// happens when a flow whose bottleneck lies strictly upstream merges
// (same destination) with a locally-sourced flow whose fair share is
// larger: the shared queue is saturated by the local flow, the upstream
// link classifies as buffer-saturated, and the condition demands
// equalization that maxmin does not want. GMP then keeps nudging rates
// around the maxmin point (the protocol's β band absorbs this in
// practice; see EXPERIMENTS.md).
func TestTheoremIsOneDirectional(t *testing.T) {
	in := &Instance{
		Flows: []Flow{
			{Weight: 1, Demand: 100, Path: []LinkID{0, 1}}, // f: bottleneck upstream
			{Weight: 1, Demand: 100, Path: []LinkID{1}},    // g: local at the merge
		},
		Cliques: []CliqueSpec{
			{Links: []LinkID{0}, Capacity: 10},  // pins f to 10
			{Links: []LinkID{1}, Capacity: 100}, // leaves g 90
		},
	}
	r := waterfill(t, in)
	if r[0] != 10 || r[1] != 90 {
		t.Fatalf("water-filling = %v, want [10 90]", r)
	}
	violations, err := in.Check(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The maxmin allocation is *expected* to violate the
	// source/buffer-saturated condition here.
	if len(violations) == 0 {
		t.Error("expected the asymmetric-merge maxmin point to violate a condition " +
			"(the theorem is one-directional); if this now passes, update the docs")
	}
}

// randomChainInstance builds a random single-destination chain: flows
// enter at random depths, cliques are random windows of consecutive
// links (which is how carrier-sense cliques look on a chain).
func randomChainInstance(rng *rand.Rand) *Instance {
	links := 2 + rng.Intn(5)
	flows := 1 + rng.Intn(4)
	in := &Instance{}
	for f := 0; f < flows; f++ {
		start := rng.Intn(links)
		path := make([]LinkID, 0, links-start)
		for l := start; l < links; l++ {
			path = append(path, LinkID(l))
		}
		in.Flows = append(in.Flows, Flow{
			Weight: 0.5 + rng.Float64()*2,
			Demand: 100 + rng.Float64()*700,
			Path:   path,
		})
	}
	cliques := 1 + rng.Intn(3)
	for q := 0; q < cliques; q++ {
		start := rng.Intn(links)
		width := 1 + rng.Intn(links-start)
		var ls []LinkID
		for l := start; l < start+width; l++ {
			ls = append(ls, LinkID(l))
		}
		in.Cliques = append(in.Cliques, CliqueSpec{Links: ls, Capacity: 200 + rng.Float64()*800})
	}
	// One covering clique so every flow has a potential constraint.
	all := make([]LinkID, links)
	for l := range all {
		all[l] = LinkID(l)
	}
	in.Cliques = append(in.Cliques, CliqueSpec{Links: all, Capacity: 300 + rng.Float64()*900})
	return in
}

// Property (contrapositive of the paper's theorem): starving one flow of
// a chain instance below its maxmin rate while the allocation stays
// "used up" produces a violation of some condition.
func TestNonMaxminViolatesConditionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomChainInstance(rng)
		r := waterfill(t, in)
		// Pick a constrained flow and starve it.
		victim := -1
		for i, rate := range r {
			if rate < in.Flows[i].Demand-1 {
				victim = i
				break
			}
		}
		if victim == -1 {
			return true // everything demand-satisfied: nothing to test
		}
		starved := append([]float64(nil), r...)
		starved[victim] *= 0.5
		violations, err := in.Check(starved, 0.01)
		if err != nil {
			return false
		}
		if len(violations) == 0 {
			t.Logf("seed %d: starved flow %d from %v undetected (rates %v)",
				seed, victim, r[victim], starved)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeClassifiesFig3(t *testing.T) {
	in := fig3Instance()
	r := waterfill(t, in)
	a, err := in.Analyze(r)
	if err != nil {
		t.Fatal(err)
	}
	// The single clique is tight; every flow's bottleneck is the last
	// link, so link 2 is bandwidth-saturated and links 0, 1 are
	// buffer-saturated (backpressure toward the sources).
	if !a.TightClique[0] {
		t.Fatal("covering clique not tight at maxmin")
	}
	if a.State[2] != BandwidthSaturated {
		t.Errorf("link 2 = %v, want bandwidth-saturated", a.State[2])
	}
	if a.State[0] != BufferSaturated || a.State[1] != BufferSaturated {
		t.Errorf("upstream links = %v/%v, want buffer-saturated", a.State[0], a.State[1])
	}
	// All flows constrained, equal normalized rates on the shared link.
	for f := range in.Flows {
		if !a.Constrained[f] {
			t.Errorf("flow %d unexpectedly satisfied", f)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Instance{
		{},
		{Flows: []Flow{{Weight: 0, Demand: 1, Path: []LinkID{0}}}},
		{Flows: []Flow{{Weight: 1, Demand: 1, Path: nil}}},
		{Flows: []Flow{{Weight: 1, Demand: 1, Path: []LinkID{0}}},
			Cliques: []CliqueSpec{{Links: []LinkID{0}, Capacity: 0}}},
		{Flows: []Flow{{Weight: 1, Demand: 1, Path: []LinkID{0}}},
			Cliques: []CliqueSpec{{Links: nil, Capacity: 5}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
