// Package conditions validates the paper's central theorem on an
// idealized fluid model: *if the four local conditions hold everywhere,
// the allocation is global (weighted) maxmin* (§4 for a single
// destination, §5 for the general case).
//
// The model strips away packets, MAC timing and measurement noise and
// keeps exactly the structure the theorem talks about: flows routed
// along a destination-rooted tree, contention cliques over tree links
// with fixed capacities, and a steady-state allocation of flow rates. A
// fluid steady state determines every §3.2 ingredient analytically:
//
//   - a clique is saturated when its capacity is (nearly) exhausted;
//   - a link is *bandwidth-saturated* when it carries pressure (some
//     flow through it wants more) and the nearest constraint at or
//     below it (toward the destination) is the link's own saturated
//     clique; it is *buffer-saturated* when the constraint is strictly
//     downstream (backpressure); it is *unsaturated* when nothing
//     through it is constrained;
//   - a virtual node is saturated when its outgoing link is.
//
// With these, the package evaluates the paper's four conditions for a
// given allocation, and the property tests check both directions of the
// theorem empirically: the weighted water-filling allocation satisfies
// all conditions, and perturbed (non-maxmin) allocations violate one.
package conditions

import (
	"fmt"
	"math"
)

// LinkID names a tree link by its upstream node: link l connects node l
// to its parent (toward the destination). IDs are dense, 0..NumNodes-1,
// with the destination's "link" unused.
type LinkID int

// Flow is one end-to-end flow in the fluid model.
type Flow struct {
	Weight float64
	Demand float64
	// Path lists the links from the source to the destination, in
	// order (Path[0] is the source's outgoing link).
	Path []LinkID
}

// CliqueSpec is one contention clique over links, with an effective
// capacity in rate units (a flow crossing k of its links consumes k per
// unit rate).
type CliqueSpec struct {
	Links    []LinkID
	Capacity float64
}

// Instance is a fluid network: flows over a destination-rooted tree
// plus clique capacity constraints.
type Instance struct {
	Flows   []Flow
	Cliques []CliqueSpec
}

// Validate checks structural sanity.
func (in *Instance) Validate() error {
	if len(in.Flows) == 0 {
		return fmt.Errorf("conditions: no flows")
	}
	for i, f := range in.Flows {
		if f.Weight <= 0 || f.Demand <= 0 {
			return fmt.Errorf("conditions: flow %d has non-positive weight or demand", i)
		}
		if len(f.Path) == 0 {
			return fmt.Errorf("conditions: flow %d has an empty path", i)
		}
	}
	for q, c := range in.Cliques {
		if c.Capacity <= 0 {
			return fmt.Errorf("conditions: clique %d has non-positive capacity", q)
		}
		if len(c.Links) == 0 {
			return fmt.Errorf("conditions: clique %d is empty", q)
		}
	}
	return nil
}

// LinkState is the fluid analog of §3.2's classification.
type LinkState int

// Link states.
const (
	Unsaturated LinkState = iota + 1
	BufferSaturated
	BandwidthSaturated
)

// String names the state.
func (s LinkState) String() string {
	switch s {
	case Unsaturated:
		return "unsaturated"
	case BufferSaturated:
		return "buffer-saturated"
	case BandwidthSaturated:
		return "bandwidth-saturated"
	default:
		return fmt.Sprintf("LinkState(%d)", int(s))
	}
}

// Analysis is the derived steady-state structure for one allocation.
type Analysis struct {
	// Mu[l] is the largest normalized rate of any flow through link l
	// (§4.2); zero for unused links.
	Mu map[LinkID]float64
	// State[l] is the link's classification; only links carrying flows
	// appear.
	State map[LinkID]LinkState
	// TightClique[q] marks cliques whose capacity is exhausted.
	TightClique []bool
	// Constrained[f] marks flows running below demand.
	Constrained []bool
}

const eps = 1e-7

// Analyze derives the fluid steady-state structure for allocation r.
// It returns an error when r is infeasible (violates a clique capacity
// or a demand).
func (in *Instance) Analyze(r []float64) (*Analysis, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(r) != len(in.Flows) {
		return nil, fmt.Errorf("conditions: %d rates for %d flows", len(r), len(in.Flows))
	}
	a := &Analysis{
		Mu:          make(map[LinkID]float64),
		State:       make(map[LinkID]LinkState),
		TightClique: make([]bool, len(in.Cliques)),
		Constrained: make([]bool, len(in.Flows)),
	}
	for f, rate := range r {
		if rate < -eps || rate > in.Flows[f].Demand+eps {
			return nil, fmt.Errorf("conditions: flow %d rate %v outside [0, demand]", f, rate)
		}
		a.Constrained[f] = rate < in.Flows[f].Demand-eps
		mu := rate / in.Flows[f].Weight
		for _, l := range in.Flows[f].Path {
			if mu > a.Mu[l] {
				a.Mu[l] = mu
			}
		}
	}
	// Clique loads.
	crossings := in.linkCliqueIndex()
	for q, c := range in.Cliques {
		load := 0.0
		inClique := make(map[LinkID]bool, len(c.Links))
		for _, l := range c.Links {
			inClique[l] = true
		}
		for f, rate := range r {
			for _, l := range in.Flows[f].Path {
				if inClique[l] {
					load += rate
				}
			}
		}
		if load > c.Capacity+1e-6 {
			return nil, fmt.Errorf("conditions: clique %d overloaded (%v > %v)", q, load, c.Capacity)
		}
		a.TightClique[q] = load >= c.Capacity-1e-6
	}

	// Classification: walk each constrained flow's path from the
	// destination backwards; the most-downstream link in a tight clique
	// is that flow's bandwidth-saturated bottleneck, everything
	// upstream of it is buffer-saturated (backpressure). Links touched
	// by no constrained flow stay unsaturated. When several flows share
	// a link, the strongest state wins (bandwidth > buffer > un-).
	for f, flow := range in.Flows {
		if !a.Constrained[f] {
			continue
		}
		bottleneck := -1
		for i := len(flow.Path) - 1; i >= 0; i-- {
			if in.linkInTightClique(flow.Path[i], crossings, a) {
				bottleneck = i
				break
			}
		}
		if bottleneck == -1 {
			// Constrained but nothing tight on the path: a self-imposed
			// rate limit holds it down. The source vnode is pressured
			// (the limit is binding) but no link is saturated by it.
			continue
		}
		for i := 0; i <= bottleneck; i++ {
			l := flow.Path[i]
			want := BufferSaturated
			if i == bottleneck {
				want = BandwidthSaturated
			}
			if cur, ok := a.State[l]; !ok || want > cur {
				a.State[l] = want
			}
		}
	}
	for f, flow := range in.Flows {
		_ = f
		for _, l := range flow.Path {
			if _, ok := a.State[l]; !ok {
				a.State[l] = Unsaturated
			}
		}
	}
	return a, nil
}

func (in *Instance) linkCliqueIndex() map[LinkID][]int {
	idx := make(map[LinkID][]int)
	for q, c := range in.Cliques {
		for _, l := range c.Links {
			idx[l] = append(idx[l], q)
		}
	}
	return idx
}

func (in *Instance) linkInTightClique(l LinkID, idx map[LinkID][]int, a *Analysis) bool {
	for _, q := range idx[l] {
		if a.TightClique[q] {
			return true
		}
	}
	return false
}

// Violation describes a failed condition.
type Violation struct {
	Condition string
	Detail    string
}

// Check evaluates the four local conditions (§5.3) for allocation r and
// returns every violation. beta is the equality tolerance (the paper's
// β); the theorem corresponds to beta -> 0.
func (in *Instance) Check(r []float64, beta float64) ([]Violation, error) {
	a, err := in.Analyze(r)
	if err != nil {
		return nil, err
	}
	eq := func(x, y float64) bool {
		m := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= beta*m+eps
	}
	var out []Violation

	// Source + buffer-saturated conditions: at every saturated virtual
	// node, the largest normalized rate feeding it must equal the
	// smallest among local flows and buffer-saturated upstream links.
	// In the tree model a virtual node is identified with its outgoing
	// link; its upstream links are the path predecessors of the flows
	// through it, and its local flows are those whose path starts there.
	type vnode struct {
		ups    map[LinkID]bool
		locals []int
	}
	vnodes := make(map[LinkID]*vnode)
	at := func(l LinkID) *vnode {
		v, ok := vnodes[l]
		if !ok {
			v = &vnode{ups: make(map[LinkID]bool)}
			vnodes[l] = v
		}
		return v
	}
	for f, flow := range in.Flows {
		at(flow.Path[0]).locals = append(at(flow.Path[0]).locals, f)
		for i := 1; i < len(flow.Path); i++ {
			at(flow.Path[i]).ups[flow.Path[i-1]] = true
		}
	}
	for l, v := range vnodes {
		if a.State[l] != BufferSaturated && a.State[l] != BandwidthSaturated {
			continue // virtual node not saturated
		}
		l1 := 0.0
		s1 := math.Inf(1)
		for up := range v.ups {
			mu := a.Mu[up]
			if mu > l1 {
				l1 = mu
			}
			if a.State[up] == BufferSaturated && mu < s1 {
				s1 = mu
			}
		}
		for _, f := range v.locals {
			mu := r[f] / in.Flows[f].Weight
			if mu > l1 {
				l1 = mu
			}
			if mu < s1 {
				s1 = mu
			}
		}
		if math.IsInf(s1, 1) || eq(s1, l1) {
			continue
		}
		out = append(out, Violation{
			Condition: "source/buffer-saturated",
			Detail:    fmt.Sprintf("vnode of link %d: L1=%.4f S1=%.4f", l, l1, s1),
		})
	}

	// Bandwidth-saturated condition: every bandwidth-saturated link must
	// carry the largest normalized rate in at least one saturated clique
	// containing it.
	idx := in.linkCliqueIndex()
	for l, st := range a.State {
		if st != BandwidthSaturated {
			continue
		}
		topped := false
		seen := false
		for _, q := range idx[l] {
			if !a.TightClique[q] {
				continue
			}
			seen = true
			maxMu := 0.0
			for _, m := range in.Cliques[q].Links {
				if a.Mu[m] > maxMu {
					maxMu = a.Mu[m]
				}
			}
			if a.Mu[l] >= maxMu-eps || eq(a.Mu[l], maxMu) {
				topped = true
				break
			}
		}
		if seen && !topped {
			out = append(out, Violation{
				Condition: "bandwidth-saturated",
				Detail:    fmt.Sprintf("link %d (mu=%.4f) tops no saturated clique", l, a.Mu[l]),
			})
		}
	}

	// Rate-limit condition: a flow below demand must be held by a real
	// constraint — some tight clique on its path. Otherwise its limit
	// should have been raised.
	for f, flow := range in.Flows {
		if !a.Constrained[f] {
			continue
		}
		held := false
		for _, l := range flow.Path {
			if in.linkInTightClique(l, idx, a) {
				held = true
				break
			}
		}
		if !held {
			out = append(out, Violation{
				Condition: "rate-limit",
				Detail:    fmt.Sprintf("flow %d below demand with no tight clique on its path", f),
			})
		}
	}
	return out, nil
}
