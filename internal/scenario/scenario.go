// Package scenario provides the network topologies and flow sets used in
// the paper's evaluation (Figures 1–4, §7) plus parametric generators
// (chains, grids, random meshes) for the extended benchmarks.
//
// All scenarios use the paper's defaults: 250 m transmission range,
// 1024-byte packets, 800 pkt/s desired rate, unit weights unless stated.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gmp/internal/churn"
	"gmp/internal/faults"
	"gmp/internal/flow"
	"gmp/internal/geom"
	"gmp/internal/mobility"
	"gmp/internal/packet"
	"gmp/internal/topology"
)

// Defaults from §7.
const (
	DefaultDesiredRate = 800  // packets per second
	DefaultPacketBytes = 1024 // bytes
)

// Scenario couples a topology with a set of flows and, optionally, a
// fault schedule (node churn and loss episodes; see internal/faults),
// a mobility model (node motion; see internal/mobility), and a flow
// churn workload (arrivals/departures; see internal/churn).
type Scenario struct {
	Name        string
	Description string
	Positions   []geom.Point
	Radio       topology.Config
	Flows       []flow.Spec
	Faults      []faults.Event
	Mobility    *mobility.Config
	Churn       *churn.Config
}

// WithFaults returns a copy of the scenario with the given fault
// schedule attached.
func (s Scenario) WithFaults(events []faults.Event) Scenario {
	out := s
	out.Faults = append([]faults.Event(nil), events...)
	return out
}

// WithMobility returns a copy of the scenario with the given mobility
// model attached (nil detaches).
func (s Scenario) WithMobility(cfg *mobility.Config) Scenario {
	out := s
	if cfg == nil {
		out.Mobility = nil
		return out
	}
	c := *cfg
	c.Pinned = append([]topology.NodeID(nil), cfg.Pinned...)
	if len(c.Pinned) == 0 {
		c.Pinned = nil
	}
	out.Mobility = &c
	return out
}

// WithChurn returns a copy of the scenario with the given churn
// workload attached (nil detaches).
func (s Scenario) WithChurn(cfg *churn.Config) Scenario {
	out := s
	if cfg == nil {
		out.Churn = nil
		return out
	}
	c := *cfg
	if cfg.Admission != nil {
		a := *cfg.Admission
		c.Admission = &a
	}
	out.Churn = &c
	return out
}

// Topology materializes the scenario's topology.
func (s Scenario) Topology() (*topology.Topology, error) {
	return topology.New(s.Positions, s.Radio)
}

// pair is a (src, dst, weight) triple for flow construction.
type pair struct {
	src, dst topology.NodeID
	weight   float64
}

func makeFlows(pairs []pair) []flow.Spec {
	specs := make([]flow.Spec, len(pairs))
	for i, p := range pairs {
		specs[i] = flow.Spec{
			ID:          packet.FlowID(i),
			Src:         p.src,
			Dst:         p.dst,
			Weight:      p.weight,
			DesiredRate: DefaultDesiredRate,
			SizeBytes:   DefaultPacketBytes,
		}
	}
	return specs
}

// Fig1 builds the two-flow topology of Figure 1, used to demonstrate why
// per-destination queueing is necessary (§5.1). Flow 0 (the paper's f1)
// travels x→i→j→z→t and is bottlenecked at link (z,t) by a contending
// interferer flow (p→q, flow 2 here); flow 1 (the paper's f2) travels
// y→i→j→v and shares only the i→j segment. With a single queue per node,
// backpressure from (z,t) wrongly throttles flow 1; with per-destination
// queues it does not.
//
// Node order: 0=x 1=y 2=i 3=j 4=z 5=t 6=v 7=p 8=q.
func Fig1() Scenario {
	return Scenario{
		Name: "fig1",
		Description: "Figure 1: per-destination vs single-queue isolation " +
			"(f1 bottlenecked at (z,t); f2 unconstrained)",
		Positions: []geom.Point{
			{X: 0, Y: 0},     // 0 = x, source of f1
			{X: 0, Y: 140},   // 1 = y, source of f2
			{X: 200, Y: 0},   // 2 = i
			{X: 400, Y: 0},   // 3 = j
			{X: 600, Y: 0},   // 4 = z
			{X: 800, Y: 0},   // 5 = t, destination of f1
			{X: 550, Y: 150}, // 6 = v, destination of f2
			{X: 800, Y: 200}, // 7 = p, interferer source
			{X: 960, Y: 200}, // 8 = q, interferer destination
		},
		Radio: topology.DefaultConfig(),
		Flows: makeFlows([]pair{
			{src: 0, dst: 5, weight: 1}, // f1: x -> t (4 hops)
			{src: 1, dst: 6, weight: 1}, // f2: y -> v (3 hops)
			{src: 7, dst: 8, weight: 1}, // interferer creating the (z,t) bottleneck
		}),
	}
}

// Fig2 builds the six-node topology of Figure 2 / Tables 1–2. The link
// contention structure is exactly the paper's: links (0,1) and (1,2) form
// clique 0; links (1,2), (3,4) and (4,5) mutually contend and form
// clique 1. Flows (in paper numbering): f1=0→1, f2=1→2, f3=3→4, f4=4→5.
// weights assigns the four flow weights (Table 1 uses {1,1,1,1}; Table 2
// uses {1,2,1,3}).
func Fig2(weights [4]float64) Scenario {
	return Scenario{
		Name: "fig2",
		Description: "Figure 2: clique0={(0,1),(1,2)}, " +
			"clique1={(1,2),(3,4),(4,5)}; f1 opportunistically exceeds the clique-1 flows",
		Positions: []geom.Point{
			{X: 0, Y: 0},     // 0
			{X: 200, Y: 0},   // 1
			{X: 400, Y: 0},   // 2
			{X: 430, Y: 390}, // 3
			{X: 430, Y: 150}, // 4
			{X: 650, Y: 80},  // 5
		},
		Radio: topology.DefaultConfig(),
		Flows: makeFlows([]pair{
			{src: 0, dst: 1, weight: weights[0]}, // f1
			{src: 1, dst: 2, weight: weights[1]}, // f2
			{src: 3, dst: 4, weight: weights[2]}, // f3
			{src: 4, dst: 5, weight: weights[3]}, // f4
		}),
	}
}

// Fig3 builds the three-link chain of Figure 3 / Table 3: nodes 0–1–2–3
// spaced 200 m apart, flows ⟨0,3⟩, ⟨1,3⟩ and ⟨2,3⟩ all destined to node 3
// (the single-destination case of §4). Senders 0 and 2 are hidden from
// each other, which starves ⟨0,3⟩ under plain 802.11.
func Fig3() Scenario {
	return Scenario{
		Name: "fig3",
		Description: "Figure 3: 3-link chain to a common sink; " +
			"hidden terminal between (0,1) and (2,3)",
		Positions: []geom.Point{
			{X: 0, Y: 0},
			{X: 200, Y: 0},
			{X: 400, Y: 0},
			{X: 600, Y: 0},
		},
		Radio: topology.DefaultConfig(),
		Flows: makeFlows([]pair{
			{src: 0, dst: 3, weight: 1}, // <0,3>, 3 hops
			{src: 1, dst: 3, weight: 1}, // <1,3>, 2 hops
			{src: 2, dst: 3, weight: 1}, // <2,3>, 1 hop
		}),
	}
}

// Fig4 builds the four-cell topology of Figure 4 / Table 4. Each cell g
// (g = 0..3) has three nodes A_g–B_g–C_g and two flows: a two-hop flow
// A_g→C_g (the paper's f1, f3, f5, f7) and a one-hop flow B_g→C_g (f2,
// f4, f6, f8). Cells are packed tightly enough (420 m pitch) that every
// link of a cell shares a contention clique with a link of the adjacent
// cell, so the middle cells compete with neighbors on both sides — the
// paper's "flows in the middle have lower rates under 802.11" effect —
// while side cells are still coupled to the interior (Table 4's GMP rates
// are nearly flat across all eight flows).
//
// Node order: cell g occupies nodes 3g, 3g+1, 3g+2 (A, B, C).
func Fig4() Scenario {
	var pos []geom.Point
	var pairs []pair
	for g := 0; g < 4; g++ {
		x := float64(g) * 420
		base := topology.NodeID(3 * g)
		pos = append(pos,
			geom.Point{X: x, Y: 0},       // A_g
			geom.Point{X: x + 180, Y: 0}, // B_g
			geom.Point{X: x + 360, Y: 0}, // C_g
		)
		pairs = append(pairs,
			pair{src: base, dst: base + 2, weight: 1},     // f_{2g+1}: A->C, 2 hops
			pair{src: base + 1, dst: base + 2, weight: 1}, // f_{2g+2}: B->C, 1 hop
		)
	}
	return Scenario{
		Name: "fig4",
		Description: "Figure 4: four 3-node cells in a line, " +
			"adjacent cells contend; one 2-hop and one 1-hop flow per cell",
		Positions: pos,
		Radio:     topology.DefaultConfig(),
		Flows:     makeFlows(pairs),
	}
}

// Chain builds an n-node chain with the given spacing and one flow from
// node 0 to node n-1.
func Chain(n int, spacing float64) (Scenario, error) {
	if n < 2 {
		return Scenario{}, fmt.Errorf("scenario: chain needs at least 2 nodes, got %d", n)
	}
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * spacing}
	}
	return Scenario{
		Name:        fmt.Sprintf("chain-%d", n),
		Description: fmt.Sprintf("%d-node chain, %gm spacing, one end-to-end flow", n, spacing),
		Positions:   pos,
		Radio:       topology.DefaultConfig(),
		Flows:       makeFlows([]pair{{src: 0, dst: topology.NodeID(n - 1), weight: 1}}),
	}, nil
}

// Grid builds a rows×cols grid with the given spacing and no flows;
// callers attach flows with WithFlows.
func Grid(rows, cols int, spacing float64) (Scenario, error) {
	if rows < 1 || cols < 1 {
		return Scenario{}, fmt.Errorf("scenario: invalid grid %dx%d", rows, cols)
	}
	pos := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos = append(pos, geom.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return Scenario{
		Name:        fmt.Sprintf("grid-%dx%d", rows, cols),
		Description: fmt.Sprintf("%dx%d grid, %gm spacing", rows, cols, spacing),
		Positions:   pos,
		Radio:       topology.DefaultConfig(),
	}, nil
}

// WithFlows returns a copy of the scenario with flows built from (src,
// dst, weight) triples.
func (s Scenario) WithFlows(triples [][3]int) Scenario {
	pairs := make([]pair, len(triples))
	for i, t := range triples {
		w := float64(t[2])
		if w <= 0 {
			w = 1
		}
		pairs[i] = pair{src: topology.NodeID(t[0]), dst: topology.NodeID(t[1]), weight: w}
	}
	out := s
	out.Flows = makeFlows(pairs)
	return out
}

// MeshGateway builds a rows×cols grid in which k nodes (chosen by the
// seeded RNG) send to a single gateway at node 0 — the wireless mesh
// workload that motivates per-destination queueing (§1, §5.1: "many flows
// may destine for the same destination, i.e., the gateway").
func MeshGateway(rows, cols, k int, spacing float64, seed int64) (Scenario, error) {
	s, err := Grid(rows, cols, spacing)
	if err != nil {
		return Scenario{}, err
	}
	n := rows * cols
	if k >= n {
		return Scenario{}, fmt.Errorf("scenario: %d senders but only %d non-gateway nodes", k, n-1)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n - 1)
	pairs := make([]pair, 0, k)
	for _, p := range perm[:k] {
		pairs = append(pairs, pair{src: topology.NodeID(p + 1), dst: 0, weight: 1})
	}
	out := s
	out.Name = fmt.Sprintf("mesh-gateway-%dx%d-k%d", rows, cols, k)
	out.Description = fmt.Sprintf("%dx%d mesh, %d flows to gateway node 0", rows, cols, k)
	out.Flows = makeFlows(pairs)
	return out, nil
}

// City builds a city-scale mesh-ISP deployment: n nodes laid out on a
// ~square street grid at the given pitch with ±pitch/22 placement
// jitter (≤ ±10 m at the default 220 m pitch, small enough that under
// the default radio config every node still links to exactly its 4
// cardinal neighbors — degree, and with it per-node topology-build
// work, stays flat as n grows). g of the nodes (seeded-RNG choice) act
// as wired gateways, and k distinct client nodes each send one
// unit-weight flow to their geographically nearest gateway, ties
// toward the lower gateway ID — the converging mesh-ISP workload of
// §1/§5.1 at the scale the spatial-grid pipeline targets.
func City(n, g, k int, spacing float64, seed int64) (Scenario, error) {
	switch {
	case n < 2:
		return Scenario{}, fmt.Errorf("scenario: city needs at least 2 nodes, got %d", n)
	case g < 1 || g >= n:
		return Scenario{}, fmt.Errorf("scenario: city with %d nodes cannot host %d gateways", n, g)
	case k < 1 || k > n-g:
		return Scenario{}, fmt.Errorf("scenario: %d flows but only %d client nodes", k, n-g)
	case spacing <= 0:
		return Scenario{}, fmt.Errorf("scenario: non-positive city grid pitch %g", spacing)
	}
	rng := rand.New(rand.NewSource(seed))
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	jitter := spacing / 22
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{
			X: float64(i%cols)*spacing + (rng.Float64()*2-1)*jitter,
			Y: float64(i/cols)*spacing + (rng.Float64()*2-1)*jitter,
		}
	}
	// Gateways first, then flow sources among the remaining clients,
	// both from one permutation so the draw order is reproducible.
	perm := rng.Perm(n)
	gateways := make([]topology.NodeID, g)
	for i := 0; i < g; i++ {
		gateways[i] = topology.NodeID(perm[i])
	}
	pairs := make([]pair, 0, k)
	for _, p := range perm[g : g+k] {
		src := topology.NodeID(p)
		best := gateways[0]
		bestDist := geom.Dist(pos[src], pos[best])
		for _, gw := range gateways[1:] {
			if d := geom.Dist(pos[src], pos[gw]); d < bestDist || (d == bestDist && gw < best) {
				bestDist = d
				best = gw
			}
		}
		pairs = append(pairs, pair{src: src, dst: best, weight: 1})
	}
	return Scenario{
		Name:        fmt.Sprintf("city-%d-g%d-k%d", n, g, k),
		Description: fmt.Sprintf("%d-node city mesh at %gm pitch, %d flows to %d gateways", n, spacing, k, g),
		Positions:   pos,
		Radio:       topology.DefaultConfig(),
		Flows:       makeFlows(pairs),
	}, nil
}

// ParallelChains builds k disjoint chains of n nodes each, stacked
// vertically with the given gap, one end-to-end flow per chain. With a
// gap below the carrier-sense range the chains contend (spatial-reuse
// stress); above it they are independent.
func ParallelChains(k, n int, spacing, gap float64) (Scenario, error) {
	if k < 1 || n < 2 {
		return Scenario{}, fmt.Errorf("scenario: invalid parallel chains %dx%d", k, n)
	}
	var pos []geom.Point
	var pairs []pair
	for c := 0; c < k; c++ {
		base := topology.NodeID(c * n)
		for i := 0; i < n; i++ {
			pos = append(pos, geom.Point{X: float64(i) * spacing, Y: float64(c) * gap})
		}
		pairs = append(pairs, pair{src: base, dst: base + topology.NodeID(n-1), weight: 1})
	}
	return Scenario{
		Name:        fmt.Sprintf("parallel-%dx%d", k, n),
		Description: fmt.Sprintf("%d parallel %d-node chains, %gm apart", k, n, gap),
		Positions:   pos,
		Radio:       topology.DefaultConfig(),
		Flows:       makeFlows(pairs),
	}, nil
}

// Cross builds two chains sharing a middle node (a "+" shape) with one
// flow along each arm, crossing at the center — the classic
// intersecting-paths workload.
func Cross(armLen int, spacing float64) (Scenario, error) {
	if armLen < 1 {
		return Scenario{}, fmt.Errorf("scenario: invalid arm length %d", armLen)
	}
	// Node 0 is the center; arms extend in four directions.
	pos := []geom.Point{{X: 0, Y: 0}}
	arm := func(dx, dy float64) []topology.NodeID {
		var ids []topology.NodeID
		for i := 1; i <= armLen; i++ {
			pos = append(pos, geom.Point{X: dx * float64(i) * spacing, Y: dy * float64(i) * spacing})
			ids = append(ids, topology.NodeID(len(pos)-1))
		}
		return ids
	}
	west := arm(-1, 0)
	east := arm(1, 0)
	north := arm(0, 1)
	south := arm(0, -1)
	pairs := []pair{
		{src: west[len(west)-1], dst: east[len(east)-1], weight: 1},
		{src: north[len(north)-1], dst: south[len(south)-1], weight: 1},
	}
	return Scenario{
		Name:        fmt.Sprintf("cross-%d", armLen),
		Description: fmt.Sprintf("two %d-hop flows crossing at a shared center node", 2*armLen),
		Positions:   pos,
		Radio:       topology.DefaultConfig(),
		Flows:       makeFlows(pairs),
	}, nil
}

// Star builds a hub with k leaves, each leaf sending to the hub — the
// single-destination case of §4 in its purest form.
func Star(k int, radius float64) (Scenario, error) {
	if k < 1 {
		return Scenario{}, fmt.Errorf("scenario: invalid star size %d", k)
	}
	pos := []geom.Point{{X: 0, Y: 0}}
	var pairs []pair
	for i := 0; i < k; i++ {
		angle := 2 * math.Pi * float64(i) / float64(k)
		pos = append(pos, geom.Point{X: radius * math.Cos(angle), Y: radius * math.Sin(angle)})
		pairs = append(pairs, pair{src: topology.NodeID(i + 1), dst: 0, weight: 1})
	}
	return Scenario{
		Name:        fmt.Sprintf("star-%d", k),
		Description: fmt.Sprintf("%d leaves sending to a hub", k),
		Positions:   pos,
		Radio:       topology.DefaultConfig(),
		Flows:       makeFlows(pairs),
	}, nil
}

// Vehicular builds a vehicular chain: n vehicles spaced along a
// straight highway segment plus a pinned roadside unit (RSU, node n)
// above the middle of the segment. The platoon carries one end-to-end
// flow (lead vehicle → tail vehicle) and both ends of the chain upload
// to the RSU. Vehicles follow a random-waypoint trajectory confined to
// a long thin box around the lane, so the chain stretches, compresses
// and occasionally partitions; the RSU never moves.
func Vehicular(n int, spacing, maxSpeed float64) (Scenario, error) {
	if n < 2 {
		return Scenario{}, fmt.Errorf("scenario: vehicular chain needs at least 2 vehicles, got %d", n)
	}
	if spacing <= 0 || maxSpeed <= 0 {
		return Scenario{}, fmt.Errorf("scenario: vehicular needs positive spacing and speed, got %g/%g", spacing, maxSpeed)
	}
	pos := make([]geom.Point, n+1)
	for i := 0; i < n; i++ {
		pos[i] = geom.Point{X: float64(i) * spacing, Y: 0}
	}
	rsu := topology.NodeID(n)
	pos[n] = geom.Point{X: float64(n-1) * spacing / 2, Y: 60}
	pairs := []pair{
		{src: 0, dst: topology.NodeID(n - 1), weight: 1}, // platoon: lead -> tail
		{src: 0, dst: rsu, weight: 1},                    // uplink from the head
		{src: topology.NodeID(n - 1), dst: rsu, weight: 1},
	}
	return Scenario{
		Name: fmt.Sprintf("vehicular-%d", n),
		Description: fmt.Sprintf("%d-vehicle highway chain at %gm pitch with a pinned RSU; "+
			"random-waypoint in a thin lane box, <=%gm/s", n, spacing, maxSpeed),
		Positions: pos,
		Radio:     topology.DefaultConfig(),
		Flows:     makeFlows(pairs),
		Mobility: &mobility.Config{
			Model:    mobility.RandomWaypoint,
			Epoch:    500 * time.Millisecond,
			MinSpeed: maxSpeed / 2,
			MaxSpeed: maxSpeed,
			Pause:    0,
			// A lane-shaped field: long in X, a few meters of lateral
			// drift in Y. The RSU sits outside the lane but is pinned,
			// so it never draws a waypoint.
			MinX: -spacing, MaxX: float64(n) * spacing,
			MinY: -10, MaxY: 10,
			Pinned: []topology.NodeID{rsu},
		},
	}, nil
}

// DroneSwarm builds a drone-swarm scenario: n drones arranged on a
// grid near a pinned ground station (node 0), moving under the
// reference-point group model in `groups` cohesive clusters of radius
// groupRadius. One drone per group streams telemetry down to the
// ground station, so traffic concentrates on a single destination (the
// §4 single-destination case) while the relay topology churns with the
// swarm's motion.
func DroneSwarm(n, groups int, groupRadius float64) (Scenario, error) {
	if n < 1 {
		return Scenario{}, fmt.Errorf("scenario: drone swarm needs at least 1 drone, got %d", n)
	}
	if groups < 1 || groups > n {
		return Scenario{}, fmt.Errorf("scenario: %d groups for %d drones", groups, n)
	}
	if groupRadius <= 0 {
		return Scenario{}, fmt.Errorf("scenario: non-positive group radius %g", groupRadius)
	}
	// Ground station at the origin; drones on a square grid starting
	// within radio range of it.
	pos := []geom.Point{{X: 0, Y: 0}}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		pos = append(pos, geom.Point{
			X: 150 + float64(i%cols)*160,
			Y: 150 + float64(i/cols)*160,
		})
	}
	// The group model splits the mobile nodes into contiguous groups;
	// pick the first member of each as its telemetry reporter.
	var pairs []pair
	for g := 0; g < groups; g++ {
		leader := topology.NodeID(1 + g*n/groups)
		pairs = append(pairs, pair{src: leader, dst: 0, weight: 1})
	}
	return Scenario{
		Name: fmt.Sprintf("drones-%d-g%d", n, groups),
		Description: fmt.Sprintf("%d drones in %d groups (radius %gm) around a pinned "+
			"ground station; one telemetry flow per group to the station", n, groups, groupRadius),
		Positions: pos,
		Radio:     topology.DefaultConfig(),
		Flows:     makeFlows(pairs),
		Mobility: &mobility.Config{
			Model:       mobility.Group,
			Epoch:       time.Second,
			MinSpeed:    3,
			MaxSpeed:    8,
			Groups:      groups,
			GroupRadius: groupRadius,
			Pinned:      []topology.NodeID{0},
		},
	}, nil
}

// RandomConnected places n nodes uniformly in a width×height field,
// re-sampling (up to 1000 attempts) until the topology is connected, and
// attaches k random-pair flows.
func RandomConnected(n, k int, width, height float64, seed int64) (Scenario, error) {
	if n < 2 {
		return Scenario{}, fmt.Errorf("scenario: need at least 2 nodes, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := topology.DefaultConfig()
	var pos []geom.Point
	for attempt := 0; ; attempt++ {
		if attempt >= 1000 {
			return Scenario{}, fmt.Errorf("scenario: no connected placement of %d nodes in %gx%g after 1000 attempts", n, width, height)
		}
		pos = make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
		}
		t, err := topology.New(pos, cfg)
		if err != nil {
			return Scenario{}, err
		}
		if t.Connected() {
			break
		}
	}
	pairs := make([]pair, 0, k)
	for len(pairs) < k {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		if src != dst {
			pairs = append(pairs, pair{src: src, dst: dst, weight: 1})
		}
	}
	return Scenario{
		Name:        fmt.Sprintf("random-%d-%d", n, k),
		Description: fmt.Sprintf("%d random nodes in %gx%gm, %d random flows", n, width, height, k),
		Positions:   pos,
		Radio:       cfg,
		Flows:       makeFlows(pairs),
	}, nil
}
